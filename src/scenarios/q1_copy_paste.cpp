// Q1: copy-and-paste error (Section 2.3, Table 2; bug class from CP-Miner
// [31]). The operator added backup web server H2 behind S3 and copied the
// forwarding rule r5 (S2 -> H1) into r7, changing the port but forgetting
// to change the switch check: r7 still tests Swi == 2. Offloaded HTTP
// requests reach S3, miss, and are dropped; H2 receives nothing.
//
// Topology (app part):        S1 --2--> S2 --1--> H1   (web primary, ip 4)
//   internet --1--> S1        S1 --3--> S3 --2--> H2   (web backup,  ip 5)
//                             S3 --3--> DNS            (dns server,  ip 6)
//   campus ----core---> S4 --3--> H3  (internal web, ip 7; HTTP toward it
//                       S4 --2--> G   (guest portal, ip 8) is intentionally
//                       blocked at S4 -- overly-general repairs re-enable it
//                       and get rejected by the KS gate)
#include "ndlog/parser.h"
#include "scenarios/scenario.h"
#include "util/rng.h"

namespace mp::scenario {

namespace {

constexpr const char* kBuggy = R"(
table FlowTable/4.
event PacketIn/4.
table WebLoadBalancer/3.
r1 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), WebLoadBalancer(@C,Src,Prt), Swi == 1, Hdr == 80.
r2 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 1, Hdr == 53, Prt := 3.
r3 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 1, Hdr != 53, Hdr != 80, Prt := -1.
r5 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 2, Hdr == 80, Prt := 1.
r6 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 3, Hdr == 53, Prt := 3.
r7 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 2, Hdr == 80, Prt := 2.
)";

}  // namespace

Scenario q1_copy_paste(const sdn::CampusOptions& campus) {
  Scenario s;
  s.id = "Q1";
  s.query = "H2 is not receiving HTTP requests (copy-and-paste error)";
  s.bug = "r7 checks Swi == 2 (copied from r5); it should check Swi == 3";
  s.campus = campus;
  s.program = ndlog::parse_program(kBuggy);
  s.fixed = s.program;
  s.fixed.find_rule("r7")->sels[0].rhs =
      ndlog::Expr::constant(Value(3));

  // Symptom: no flow entry at S3 sending HTTP (dpt 80) to port 2 (H2).
  repair::Symptom sym;
  sym.polarity = repair::Symptom::Polarity::Missing;
  sym.pattern.table = "FlowTable";
  sym.pattern.fields = {{0, ndlog::CmpOp::Eq, Value(3)},
                        {1, ndlog::CmpOp::Eq, Value(80)},
                        {3, ndlog::CmpOp::Eq, Value(2)}};
  sym.description = s.query;
  s.symptoms.push_back(std::move(sym));

  s.space.insertable_tables = {"FlowTable"};
  s.space.insert_label = "Manually installing a flow entry";
  s.space.max_const_variants = 2;
  s.space.max_var_variants = 1;
  s.space.max_cost = 9.0;

  s.config_tuples = {
      {"WebLoadBalancer", {Value::str("C"), Value(1), Value(2)}},
      {"WebLoadBalancer", {Value::str("C"), Value(2), Value(3)}},
  };

  s.wire_app = [](sdn::Network& net, const sdn::Campus&) {
    net.link(1, 2, 2, 9);  // S1 port 2 <-> S2
    net.link(1, 3, 3, 9);  // S1 port 3 <-> S3
    net.add_host({1, "H1", 4, 100004, 2, 1});
    net.add_host({2, "H2", 5, 100005, 3, 2});
    net.add_host({3, "DNS", 6, 100006, 3, 3});
    net.add_host({4, "H3", 7, 100007, 4, 3});
    net.add_host({5, "G", 8, 100008, 4, 2});
    // Proactive core routes toward the scenario servers, but reactive
    // handling on the app switches themselves.
    sdn::install_host_routes(net, {4, 5, 6, 7, 8}, {1, 2, 3, 4});
  };

  s.make_bindings = [] {
    sdn::ControllerBindings b;
    b.encode_packet_in = [](int64_t sw, int64_t, const sdn::Packet& p) {
      return eval::Tuple{
          "PacketIn", {Value::str("C"), Value(sw), Value(p.dpt), Value(p.bucket)}};
    };
    b.flow_table = "FlowTable";
    b.decode_flow = [](const eval::Tuple& t) -> std::optional<sdn::InstallSpec> {
      if (t.row.size() != 4 || !t.row[0].is_int()) return std::nullopt;
      sdn::InstallSpec spec;
      spec.sw = t.row[0].as_int();
      spec.entry.match = {{sdn::Field::Dpt, t.row[1]},
                          {sdn::Field::Bucket, t.row[2]}};
      spec.entry.priority = 0;
      const int64_t prt = t.row[3].is_int() ? t.row[3].as_int() : -1;
      spec.entry.action =
          prt < 0 ? sdn::Action::drop() : sdn::Action::output(prt);
      return spec;
    };
    return b;
  };

  s.make_workload = [campus](const sdn::Network& net) {
    std::vector<sdn::Injection> work;
    // External HTTP (buckets load-balance across H1 / offload to H2).
    sdn::IngressOptions http;
    http.flows = 40;
    http.packets_per_flow = 5;
    http.dpt = 80;
    http.dst_ip = 4;
    http.seed = 11;
    sdn::ingress_traffic(http, work);
    // External DNS.
    sdn::IngressOptions dns;
    dns.flows = 100;
    dns.packets_per_flow = 8;
    dns.dpt = 53;
    dns.dst_ip = 6;
    dns.seed = 12;
    sdn::ingress_traffic(dns, work);
    // Other ingress traffic (dropped by r3).
    sdn::IngressOptions other;
    other.flows = 12;
    other.packets_per_flow = 4;
    other.dpt = 22;
    other.dst_ip = 4;
    other.seed = 13;
    sdn::ingress_traffic(other, work);
    // Internal HTTP toward the guest-blocked server H3 (via S4).
    Rng rng(21);
    const auto& hosts = net.hosts();
    size_t guests = 0;
    for (const auto& h : hosts) {
      if (h.name.substr(0, 1) != "E") continue;
      for (int k = 0; k < 8; ++k) {
        sdn::Packet p;
        p.sip = h.ip;
        p.dip = 7;
        p.dpt = 80;
        p.spt = 40000 + static_cast<int64_t>(rng.below(1000));
        p.bucket = p.sip % 2 + 1;
        work.push_back(sdn::Injection{h.sw, h.port, p, 0});
      }
      if (++guests >= 112) break;
    }
    // Background campus load.
    sdn::background_traffic(net, 12000, 31, work);
    return work;
  };

  s.symptom_fixed = [](const backtest::ReplayOutcome& out,
                       const backtest::ReplayOutcome&, const eval::Engine&,
                       eval::TagMask) {
    return out.per_host_port.get("H2:80") > 0;
  };
  return s;
}

}  // namespace mp::scenario
