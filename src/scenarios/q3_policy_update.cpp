// Q3: uncoordinated policy update (from OFf/CoNEXT'14 [13]). The
// load-balancer app shifted clients with small source IPs onto the backup
// route through S3, but S3's firewall app still carries the stale
// whitelist Sip > 3 from before the update; the shifted clients' HTTP is
// dropped and web server H20 never sees requests from H1 (sip 3).
// Admitting sip 1 (a known scanner the whitelist exists to block) is the
// side effect that rejects the too-loose repairs (Sip > 0, deletion).
#include "ndlog/parser.h"
#include "scenarios/scenario.h"

namespace mp::scenario {

namespace {

constexpr const char* kBuggy = R"(
table FlowTable/4.
event PacketIn/4.
r1 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 1, Dpt == 80, Sip > 3, Prt := 2.
r2 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 1, Dpt == 80, Sip <= 3, Prt := 3.
r3 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 2, Dpt == 80, Prt := 1.
r5 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 3, Dpt == 80, Sip > 3, Prt := 1.
)";

}  // namespace

Scenario q3_policy_update(const sdn::CampusOptions& campus) {
  Scenario s;
  s.id = "Q3";
  s.query = "H20 is not receiving HTTP requests from H1 (stale firewall)";
  s.bug = "r5's whitelist Sip > 3 predates the LB update that moved "
          "sips <= 3 onto the S3 route; it should admit sips 2..3";
  s.campus = campus;
  s.program = ndlog::parse_program(kBuggy);
  s.fixed = s.program;
  s.fixed.find_rule("r5")->sels[2].rhs = ndlog::Expr::constant(Value(1));

  // Symptom: no flow entry at S3 forwarding H1's (sip 3) HTTP to port 1.
  repair::Symptom sym;
  sym.polarity = repair::Symptom::Polarity::Missing;
  sym.pattern.table = "FlowTable";
  sym.pattern.fields = {{0, ndlog::CmpOp::Eq, Value(3)},
                        {1, ndlog::CmpOp::Eq, Value(80)},
                        {2, ndlog::CmpOp::Eq, Value(3)},
                        {3, ndlog::CmpOp::Eq, Value(1)}};
  sym.description = s.query;
  s.symptoms.push_back(std::move(sym));

  s.space.insertable_tables = {"FlowTable"};
  s.space.max_const_variants = 4;
  s.space.max_var_variants = 3;
  s.space.max_cost = 9.0;

  s.wire_app = [](sdn::Network& net, const sdn::Campus&) {
    net.link(1, 2, 2, 9);  // primary route
    net.link(1, 3, 3, 9);  // backup route
    // H20 is dual-homed: port 1 on both server switches.
    net.add_host({1, "H20", 20, 100020, 2, 1});
    net.add_host({2, "H20b", 21, 100021, 3, 1});
    sdn::install_host_routes(net, {20, 21}, {1, 2, 3, 4});
  };

  s.make_bindings = [] {
    sdn::ControllerBindings b;
    b.encode_packet_in = [](int64_t sw, int64_t, const sdn::Packet& p) {
      return eval::Tuple{
          "PacketIn", {Value::str("C"), Value(sw), Value(p.dpt), Value(p.sip)}};
    };
    b.decode_flow = [](const eval::Tuple& t) -> std::optional<sdn::InstallSpec> {
      if (t.row.size() != 4 || !t.row[0].is_int()) return std::nullopt;
      sdn::InstallSpec spec;
      spec.sw = t.row[0].as_int();
      spec.entry.match = {{sdn::Field::Dpt, t.row[1]},
                          {sdn::Field::Sip, t.row[2]}};
      spec.entry.priority = 0;
      const int64_t prt = t.row[3].is_int() ? t.row[3].as_int() : -1;
      spec.entry.action =
          prt < 0 ? sdn::Action::drop() : sdn::Action::output(prt);
      return spec;
    };
    return b;
  };

  s.make_workload = [](const sdn::Network& net) {
    std::vector<sdn::Injection> work;
    auto http_from = [&](int64_t sip, size_t packets) {
      sdn::Packet p;
      p.sip = sip;
      p.dip = 20;
      p.dpt = 80;
      p.spt = 40000 + sip;
      p.bucket = sip % 2 + 1;
      for (size_t k = 0; k < packets; ++k) {
        work.push_back(sdn::Injection{1, 1, p, 0});
      }
    };
    http_from(1, 400);  // scanner: must STAY blocked (high volume)
    http_from(2, 25);   // offloaded legit client
    http_from(3, 30);   // H1: the reported victim
    for (int64_t sip = 4; sip <= 12; ++sip) http_from(sip, 60);  // primary
    sdn::background_traffic(net, 10000, 33, work);
    return work;
  };

  s.symptom_fixed = [](const backtest::ReplayOutcome& out,
                       const backtest::ReplayOutcome& base,
                       const eval::Engine&, eval::TagMask) {
    return out.per_host_port.get("H20b:80") > base.per_host_port.get("H20b:80");
  };
  return s;
}

}  // namespace mp::scenario
