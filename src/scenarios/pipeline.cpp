#include "scenarios/pipeline.h"

#include <algorithm>
#include <set>

#include "obs/obs.h"
#include "obs/span.h"

namespace mp::scenario {

ScenarioRun::ScenarioRun(const Scenario& s, const ndlog::Program& program,
                         eval::EngineOptions eopts)
    : scenario_(s) {
  net_ = std::make_unique<sdn::Network>();
  campus_ = sdn::build_campus(*net_, s.campus);
  if (s.wire_app) s.wire_app(*net_, campus_);
  engine_ = std::make_unique<eval::Engine>(program, eopts);
  controller_ = std::make_unique<sdn::NdlogController>(*net_, *engine_,
                                                       s.make_bindings());
  net_->set_controller(controller_.get());
}

void ScenarioRun::insert_config(
    const std::vector<std::pair<eval::Tuple, eval::TagMask>>& extra) {
  if (!config_inserted_) {
    config_inserted_ = true;
    engine_->insert_batch(scenario_.config_tuples);
  }
  engine_->insert_batch(extra);
}

void ScenarioRun::set_rule_restrictions(
    const std::map<std::string, eval::TagMask>& restrict_map) {
  for (const auto& [rule, mask] : restrict_map) {
    engine_->set_rule_restrict(rule, mask);
  }
}

void ScenarioRun::set_tag_mode(eval::TagMask active) {
  net_->set_tag_mode(true, active);
}

void ScenarioRun::replay(const std::vector<sdn::Injection>& workload) {
  sdn::replay(*net_, workload);
}

ScenarioHarness::ScenarioHarness(const Scenario& s) : scenario_(s) {
  // Workload generation needs the topology (host placement), so build a
  // throwaway network first.
  sdn::Network probe;
  sdn::Campus campus = sdn::build_campus(probe, s.campus);
  if (s.wire_app) s.wire_app(probe, campus);
  workload_ = s.make_workload(probe);
}

ScenarioRun& ScenarioHarness::buggy_run() {
  if (!buggy_) {
    buggy_ = std::make_unique<ScenarioRun>(scenario_, scenario_.program);
    buggy_->insert_config();
    buggy_->replay(workload_);
  }
  return *buggy_;
}

backtest::ReplayOutcome ScenarioHarness::replay_baseline() {
  if (!baseline_) {
    ScenarioRun& run = buggy_run();
    auto out = backtest::outcome_from_stats(run.net().stats());
    out.symptom_fixed = false;
    baseline_ = std::make_unique<backtest::ReplayOutcome>(std::move(out));
  }
  return *baseline_;
}

backtest::ReplayOutcome ScenarioHarness::replay(
    const repair::RepairCandidate& cand) {
  Timer timer;
  auto program = repair::apply_candidate(scenario_.program, cand);
  backtest::ReplayOutcome out;
  if (!program) {
    out.valid = false;
    return out;
  }
  // Provenance recording is off during backtests: we only need metrics.
  eval::EngineOptions eopts;
  eopts.record_provenance = false;
  ScenarioRun run(scenario_, *program, eopts);

  std::vector<std::pair<eval::Tuple, eval::TagMask>> inserts;
  for (const eval::Tuple& t : repair::candidate_insertions(cand)) {
    inserts.emplace_back(t, eval::kAllTags);
  }
  const auto deletions = repair::candidate_deletions(cand);
  // Config insertion honouring deletions: withheld tuples never enter.
  bool skip_config = false;
  if (!deletions.empty()) {
    skip_config = true;
    for (const eval::Tuple& t : scenario_.config_tuples) {
      bool deleted = false;
      for (const eval::Tuple& d : deletions) {
        if (d == t) deleted = true;
      }
      if (!deleted) inserts.emplace_back(t, eval::kAllTags);
    }
  }
  if (skip_config) {
    // insert only `inserts` (config already folded in).
    run.engine().insert_batch(inserts);
  } else {
    run.insert_config(inserts);
  }
  run.replay(workload_);

  out = backtest::outcome_from_stats(run.net().stats());
  const backtest::ReplayOutcome base = replay_baseline();
  out.symptom_fixed =
      scenario_.symptom_fixed
          ? scenario_.symptom_fixed(out, base, run.engine(), eval::kAllTags)
          : false;
  out.seconds = timer.seconds();
  return out;
}

std::vector<backtest::ReplayOutcome> ScenarioHarness::replay_joint(
    const std::vector<repair::RepairCandidate>& cands) {
  Timer timer;
  std::vector<backtest::ReplayOutcome> outs(cands.size());
  if (cands.empty()) return outs;

  backtest::CombinedProgram combined =
      backtest::build_backtest_program(scenario_.program, cands);

  eval::EngineOptions eopts;
  eopts.record_provenance = false;
  eopts.tag_mode = true;
  ScenarioRun run(scenario_, combined.program, eopts);
  run.set_rule_restrictions(combined.rule_restrict);
  const eval::TagMask active =
      combined.candidate_count >= eval::kMaxTags
          ? eval::kAllTags
          : (eval::TagMask{1} << combined.candidate_count) - 1;
  run.set_tag_mode(active);

  // Config tuples with deletion masks, then candidate insertions.
  std::vector<std::pair<eval::Tuple, eval::TagMask>> inserts;
  for (const eval::Tuple& t : scenario_.config_tuples) {
    inserts.emplace_back(t, combined.config_mask(t));
  }
  for (const auto& [t, mask] : combined.insertions) {
    inserts.emplace_back(t, mask);
  }
  // Bypass the untagged config path: insert everything explicitly.
  run.engine().insert_batch(inserts);
  run.replay(workload_);

  const backtest::ReplayOutcome base = replay_baseline();
  const double elapsed = timer.seconds();
  for (size_t i = 0; i < cands.size(); ++i) {
    if (i >= combined.candidate_count) break;
    backtest::ReplayOutcome o =
        backtest::outcome_from_stats(run.net().tag_stats(i));
    o.valid = std::find(combined.invalid.begin(), combined.invalid.end(), i) ==
              combined.invalid.end();
    const eval::TagMask bit = eval::TagMask{1} << i;
    o.symptom_fixed =
        o.valid && scenario_.symptom_fixed
            ? scenario_.symptom_fixed(o, base, run.engine(), bit)
            : false;
    o.seconds = elapsed / static_cast<double>(cands.size());
    outs[i] = std::move(o);
  }
  return outs;
}

PipelineResult run_pipeline(const Scenario& s, const PipelineOptions& opt) {
  static const obs::PhaseId kSpanPipeline = obs::phase_id("scenario.pipeline");
  obs::Span span(kSpanPipeline);
  const uint64_t t0 = obs::now_ns();
  PipelineResult result;
  Timer total;
  ScenarioHarness harness(s);
  ScenarioRun& buggy = harness.buggy_run();

  // Repair generation over all symptoms (merged, deduplicated).
  repair::RepairGenerator generator(buggy.engine(), s.space);
  std::set<std::string> seen;
  for (const auto& symptom : s.symptoms) {
    repair::GenerationReport rep = generator.generate(symptom);
    result.generation.phases.merge(rep.phases);
    result.generation.stats.trees_forked += rep.stats.trees_forked;
    result.generation.stats.trees_completed += rep.stats.trees_completed;
    result.generation.stats.goals_expanded += rep.stats.goals_expanded;
    result.generation.stats.history_tuples_scanned +=
        rep.stats.history_tuples_scanned;
    result.generation.stats.solver.calls += rep.stats.solver.calls;
    for (auto& cand : rep.candidates) {
      if (seen.insert(cand.description).second) {
        result.generation.candidates.push_back(std::move(cand));
      }
    }
  }
  std::sort(result.generation.candidates.begin(),
            result.generation.candidates.end(),
            [](const repair::RepairCandidate& a,
               const repair::RepairCandidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.description < b.description;
            });
  if (result.generation.candidates.size() > opt.max_backtested) {
    result.generation.candidates.resize(opt.max_backtested);
  }
  result.candidates = result.generation.candidates.size();

  // Backtest.
  Timer replay_timer;
  backtest::BacktestConfig bcfg;
  bcfg.use_multiquery = opt.multiquery;
  bcfg.shards = opt.backtest_shards;
  backtest::Backtester tester(bcfg);
  result.backtest = tester.run(harness, result.generation.candidates);
  result.phases.merge(result.generation.phases);
  static const obs::PhaseId kPhaseReplay = obs::phase_id("replay");
  result.phases.add(kPhaseReplay, replay_timer.seconds());
  result.effective = result.backtest.effective_count;
  result.accepted = result.backtest.accepted_count;
  result.total_seconds = total.seconds();
  if (obs::enabled()) {
    static obs::Histogram& lat =
        obs::Registry::global().histogram("scenario.pipeline.latency_ns");
    lat.record(obs::now_ns() - t0);
  }
  return result;
}

}  // namespace mp::scenario
