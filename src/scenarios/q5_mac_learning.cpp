// Q5: incorrect MAC learning (from the HotSDN assertion-language paper
// [4]). The learning app should install entries matching (in-port, source
// IP, destination IP) but wildcards the source: f1 assigns Sip2 := *.
// Port 1 of switch S5 aggregates a downstream segment with several hosts;
// once host A's entry is installed, host D's packets (same in-port) are
// swallowed by it, D never produces a PacketIn, and the controller never
// learns D (no Learn tuple) -- "H2's MAC address is not learned".
//
// Two symptom expansions mirror the paper's Table 6(d): the missing Learn
// tuple (manual learning-table entry, candidate I) and the missing
// source-specific flow entry (assignment rewrites on f1, candidates A-H).
#include "ndlog/parser.h"
#include "scenarios/scenario.h"

namespace mp::scenario {

namespace {

constexpr const char* kBuggy = R"(
table FlowTable5/5.
event PacketIn/6.
table Loc/3.
table Learn/3 keys(0,1).
f1 FlowTable5(@Swi,Ipt2,Sip2,Dip2,Prt) :- PacketIn(@C,Swi,Ipt,Sip,Dip,Dst), Loc(@C,Dip,Prt), Swi == 5, Ipt2 := Ipt, Sip2 := *, Dip2 := Dip.
f2 Learn(@C,Sip,Ipt) :- PacketIn(@C,Swi,Ipt,Sip,Dip,Dst), Swi == 5.
)";

constexpr int64_t kIpA = 31;
constexpr int64_t kIpD = 34;  // the never-learned host ("H2" in the paper)

}  // namespace

Scenario q5_mac_learning(const sdn::CampusOptions& campus) {
  Scenario s;
  s.id = "Q5";
  s.query = "H2's MAC address is never learned by the controller";
  s.bug = "f1 wildcards the source (Sip2 := *); it should assign Sip2 := Sip";
  s.campus = campus;
  s.program = ndlog::parse_program(kBuggy);
  s.fixed = s.program;
  s.fixed.find_rule("f1")->assigns[1].expr = ndlog::Expr::var("Sip");

  // Symptom A: the controller state lacks Learn(ipD, _).
  {
    repair::Symptom sym;
    sym.polarity = repair::Symptom::Polarity::Missing;
    sym.pattern.table = "Learn";
    sym.pattern.fields = {{1, ndlog::CmpOp::Eq, Value(kIpD)}};
    sym.description = "controller never learns H2 (ip 34)";
    s.symptoms.push_back(std::move(sym));
  }
  // Symptom B: no source-specific flow entry for H2's traffic exists.
  {
    repair::Symptom sym;
    sym.polarity = repair::Symptom::Polarity::Missing;
    sym.pattern.table = "FlowTable5";
    sym.pattern.fields = {{0, ndlog::CmpOp::Eq, Value(5)},
                          {2, ndlog::CmpOp::Eq, Value(kIpD)}};
    sym.description = "no source-specific entry for H2";
    s.symptoms.push_back(std::move(sym));
  }

  s.space.insertable_tables = {"Learn"};
  s.space.insert_label = "Manually installing a learning table entry";
  s.space.max_var_variants = 4;
  s.space.max_cost = 9.0;

  s.config_tuples = {
      {"Loc", {Value::str("C"), Value(32), Value(2)}},  // host B on port 2
      {"Loc", {Value::str("C"), Value(33), Value(3)}},  // host C on port 3
  };

  s.wire_app = [](sdn::Network& net, const sdn::Campus&) {
    // S5: the learning switch; S6: downstream segment behind S5 port 1.
    net.add_switch(5);
    net.add_switch(6);
    net.link(5, 1, 6, 9);
    net.add_host({1, "B", 32, 100032, 5, 2});
    net.add_host({2, "C", 33, 100033, 5, 3});
    net.add_host({3, "A", kIpA, 100031, 6, 1});
    net.add_host({4, "D", kIpD, 100034, 6, 2});
    // S6 forwards everything upstream to S5 (static default).
    sdn::FlowEntry up;
    up.priority = -2;
    up.action = sdn::Action::output(9);
    net.find_switch(6)->table().add(up);
    // ...but hosts attached to S6 stay locally reachable.
    sdn::install_host_routes(net, {kIpA, kIpD}, {5});
  };

  s.make_bindings = [] {
    sdn::ControllerBindings b;
    b.encode_packet_in = [](int64_t sw, int64_t in_port, const sdn::Packet& p) {
      return eval::Tuple{"PacketIn",
                         {Value::str("C"), Value(sw), Value(in_port),
                          Value(p.sip), Value(p.dip), Value(p.dpt)}};
    };
    b.flow_table = "FlowTable5";
    b.decode_flow = [](const eval::Tuple& t) -> std::optional<sdn::InstallSpec> {
      if (t.row.size() != 5 || !t.row[0].is_int()) return std::nullopt;
      sdn::InstallSpec spec;
      spec.sw = t.row[0].as_int();
      spec.entry.match = {{sdn::Field::InPort, t.row[1]},
                          {sdn::Field::Sip, t.row[2]},
                          {sdn::Field::Dip, t.row[3]}};
      spec.entry.priority = 0;
      const int64_t prt = t.row[4].is_int() ? t.row[4].as_int() : -1;
      spec.entry.action =
          prt < 0 ? sdn::Action::drop() : sdn::Action::output(prt);
      return spec;
    };
    return b;
  };

  s.make_workload = [](const sdn::Network& net) {
    std::vector<sdn::Injection> work;
    auto flow = [&](int64_t src_sw, int64_t src_port, int64_t sip, int64_t dip,
                    size_t packets) {
      sdn::Packet p;
      p.sip = sip;
      p.dip = dip;
      p.smc = sip + 100000;
      p.dmc = dip + 100000;
      p.dpt = 80;
      p.spt = 40000 + sip;
      for (size_t k = 0; k < packets; ++k) {
        work.push_back(sdn::Injection{src_sw, src_port, p, 0});
      }
    };
    flow(6, 1, kIpA, 32, 40);  // A -> B: learned, installs the coarse entry
    flow(6, 2, kIpD, 32, 40);  // D -> B: swallowed by A's wildcard entry
    flow(5, 3, 33, 32, 40);    // C -> B (different in-port)
    sdn::background_traffic(net, 8000, 35, work);
    return work;
  };

  s.symptom_fixed = [](const backtest::ReplayOutcome&,
                       const backtest::ReplayOutcome&,
                       const eval::Engine& engine, eval::TagMask tag) {
    eval::TuplePattern learned;
    learned.table = "Learn";
    learned.fields = {{1, ndlog::CmpOp::Eq, Value(kIpD)}};
    bool fixed = false;
    engine.match_tuples("Learn", learned, [&](const Value& node, const Row& row) {
      if (row.size() == 3 && (engine.tags_of(node, "Learn", row) & tag)) {
        fixed = true;
        return false;
      }
      return true;
    });
    return fixed;
  };
  return s;
}

}  // namespace mp::scenario
