// Scenario definitions (Section 5.3): each of the paper's five diagnostic
// case studies is a self-contained bundle of topology wiring, controller
// program (with the planted bug), configuration state, workload, symptom
// and repair-space settings. Scenarios drive the tests, the examples and
// every bench.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backtest/metrics.h"
#include "eval/engine.h"
#include "repair/generator.h"
#include "sdn/controller.h"
#include "sdn/topology.h"
#include "sdn/traffic.h"

namespace mp::scenario {

struct Scenario {
  std::string id;           // "Q1".."Q5"
  std::string query;        // the operator's diagnostic query (Table 1)
  std::string bug;          // one-line description of the planted bug
  ndlog::Program program;   // the buggy controller program
  ndlog::Program fixed;     // the intended (ground-truth) program

  std::vector<repair::Symptom> symptoms;   // usually one; Q5 uses two
  repair::RepairSpaceConfig space;

  sdn::CampusOptions campus;
  // Wire scenario hosts/links on the app switches (invoked after
  // build_campus); may install proactive routes for scenario hosts.
  std::function<void(sdn::Network&, const sdn::Campus&)> wire_app;
  std::function<sdn::ControllerBindings()> make_bindings;
  std::function<std::vector<sdn::Injection>(const sdn::Network&)> make_workload;
  std::vector<eval::Tuple> config_tuples;  // controller config (base tuples)

  // Effectiveness predicate: did this replay fix the operator's problem?
  // `tag` selects the candidate world when the engine ran in tag mode.
  std::function<bool(const backtest::ReplayOutcome& out,
                     const backtest::ReplayOutcome& baseline,
                     const eval::Engine& engine, eval::TagMask tag)>
      symptom_fixed;
};

// The five scenarios. `scale` lets benches grow the topology (Fig 9c);
// workload sizes scale accordingly.
Scenario q1_copy_paste(const sdn::CampusOptions& campus = {});
Scenario q2_forwarding(const sdn::CampusOptions& campus = {});
Scenario q3_policy_update(const sdn::CampusOptions& campus = {});
Scenario q4_forgotten_packets(const sdn::CampusOptions& campus = {});
Scenario q5_mac_learning(const sdn::CampusOptions& campus = {});

std::vector<Scenario> all_scenarios(const sdn::CampusOptions& campus = {});

// The scenario's engine-level tuple trace: config tuples followed by the
// PacketIn encoding of every workload injection (the same encoding the
// controller proxy applies on a flow-table miss), capped at `cap` tuples.
// This is the stream the differential/history harnesses and the sharded
// runtime drive through the engine without simulating the network.
std::vector<eval::Tuple> engine_trace(const Scenario& s, size_t cap);

}  // namespace mp::scenario
