#include "scenarios/scenario.h"

#include "sdn/topology.h"

namespace mp::scenario {

std::vector<eval::Tuple> engine_trace(const Scenario& s, size_t cap) {
  // Workload generation needs the topology (host placement), so build a
  // throwaway network first.
  sdn::Network probe;
  sdn::Campus campus = sdn::build_campus(probe, s.campus);
  if (s.wire_app) s.wire_app(probe, campus);
  const std::vector<sdn::Injection> work = s.make_workload(probe);
  const sdn::ControllerBindings bindings = s.make_bindings();
  std::vector<eval::Tuple> trace = s.config_tuples;
  trace.reserve(std::min(cap, trace.size() + work.size()));
  for (const sdn::Injection& inj : work) {
    if (trace.size() >= cap) break;
    trace.push_back(bindings.encode_packet_in(inj.sw, inj.port, inj.packet));
  }
  return trace;
}

std::vector<Scenario> all_scenarios(const sdn::CampusOptions& campus) {
  std::vector<Scenario> out;
  out.push_back(q1_copy_paste(campus));
  out.push_back(q2_forwarding(campus));
  out.push_back(q3_policy_update(campus));
  out.push_back(q4_forgotten_packets(campus));
  out.push_back(q5_mac_learning(campus));
  return out;
}

}  // namespace mp::scenario
