#include "scenarios/scenario.h"

namespace mp::scenario {

std::vector<Scenario> all_scenarios(const sdn::CampusOptions& campus) {
  std::vector<Scenario> out;
  out.push_back(q1_copy_paste(campus));
  out.push_back(q2_forwarding(campus));
  out.push_back(q3_policy_update(campus));
  out.push_back(q4_forgotten_packets(campus));
  out.push_back(q5_mac_learning(campus));
  return out;
}

}  // namespace mp::scenario
