// Q4: forgotten packets (from NICE [7]). The controller app installs flow
// entries correctly but never instructs the switches to release the
// buffered first packet of each flow: there is no rule deriving the
// PacketOut relation at all. The first packet of every HTTP flow is lost
// at each reactive hop. The repairs the meta provenance proposes
// synthesize the missing rule by copying/retargeting an existing head
// (Table 6(c)): copies preserve the FlowMods and pass; retargeting an
// existing rule's head destroys the FlowMods and floods the controller,
// which the backtester rejects via the control-load gate.
#include "ndlog/parser.h"
#include "scenarios/scenario.h"

namespace mp::scenario {

namespace {

constexpr const char* kBuggy = R"(
table FlowTable/4.
event PacketIn/4.
event PacketOut/4.
r1 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 1, Dpt == 80, Prt := 2.
r2 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 2, Dpt == 80, Prt := 1.
)";

}  // namespace

Scenario q4_forgotten_packets(const sdn::CampusOptions& campus) {
  Scenario s;
  s.id = "Q4";
  s.query = "First HTTP packet of each flow is never received (no PacketOut)";
  s.bug = "no rule derives PacketOut: buffered first packets are dropped";
  s.campus = campus;
  s.program = ndlog::parse_program(kBuggy);
  // Ground truth: copies of r1/r2 with PacketOut heads.
  s.fixed = s.program;
  s.fixed.rules.push_back(ndlog::parse_rule(
      "p1 PacketOut(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), "
      "Swi == 1, Dpt == 80, Prt := 2."));
  s.fixed.rules.push_back(ndlog::parse_rule(
      "p2 PacketOut(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), "
      "Swi == 2, Dpt == 80, Prt := 1."));

  // Symptom: no PacketOut at S1 releasing HTTP toward port 2.
  repair::Symptom sym;
  sym.polarity = repair::Symptom::Polarity::Missing;
  sym.pattern.table = "PacketOut";
  sym.pattern.fields = {{0, ndlog::CmpOp::Eq, Value(1)},
                        {1, ndlog::CmpOp::Eq, Value(80)},
                        {3, ndlog::CmpOp::Eq, Value(2)}};
  sym.description = s.query;
  s.symptoms.push_back(std::move(sym));

  s.space.insertable_tables = {"PacketOut"};
  s.space.insert_label = "Manually sending a packetOut message";
  s.space.max_head_perms = 3;
  s.space.max_cost = 12.0;

  s.wire_app = [](sdn::Network& net, const sdn::Campus&) {
    net.link(1, 2, 2, 9);
    net.add_host({1, "H20", 20, 100020, 2, 1});
    sdn::install_host_routes(net, {20}, {1, 2, 3, 4});
  };

  s.make_bindings = [] {
    sdn::ControllerBindings b;
    b.auto_packet_out = false;  // the app forgets the release
    b.encode_packet_in = [](int64_t sw, int64_t, const sdn::Packet& p) {
      return eval::Tuple{
          "PacketIn", {Value::str("C"), Value(sw), Value(p.dpt), Value(p.sip)}};
    };
    b.decode_flow = [](const eval::Tuple& t) -> std::optional<sdn::InstallSpec> {
      if (t.row.size() != 4 || !t.row[0].is_int()) return std::nullopt;
      sdn::InstallSpec spec;
      spec.sw = t.row[0].as_int();
      spec.entry.match = {{sdn::Field::Dpt, t.row[1]},
                          {sdn::Field::Sip, t.row[2]}};
      spec.entry.priority = 0;
      const int64_t prt = t.row[3].is_int() ? t.row[3].as_int() : -1;
      spec.entry.action =
          prt < 0 ? sdn::Action::drop() : sdn::Action::output(prt);
      return spec;
    };
    b.packet_out_table = "PacketOut";
    b.decode_packet_out =
        [](const eval::Tuple& t) -> std::optional<sdn::PacketOutSpec> {
      if (t.row.size() != 4 || !t.row[0].is_int() || !t.row[3].is_int()) {
        return std::nullopt;
      }
      return sdn::PacketOutSpec{t.row[0].as_int(), t.row[3].as_int()};
    };
    return b;
  };

  s.make_workload = [](const sdn::Network& net) {
    std::vector<sdn::Injection> work;
    // Many short HTTP flows: first-packet loss is a large visible share.
    sdn::IngressOptions http;
    http.flows = 150;
    http.packets_per_flow = 4;
    http.dpt = 80;
    http.dst_ip = 20;
    http.src_ip_count = 150;
    http.seed = 14;
    sdn::ingress_traffic(http, work);
    sdn::background_traffic(net, 8000, 34, work);
    return work;
  };

  s.symptom_fixed = [](const backtest::ReplayOutcome& out,
                       const backtest::ReplayOutcome& base,
                       const eval::Engine&, eval::TagMask) {
    // Effective iff previously-lost first packets now arrive.
    return out.per_host_port.get("H20:80") > base.per_host_port.get("H20:80");
  };
  return s;
}

}  // namespace mp::scenario
