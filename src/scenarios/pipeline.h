// The end-to-end pipeline: run the buggy scenario while recording,
// generate repair candidates from the meta provenance, then backtest them
// (sequentially or jointly via multi-query evaluation) and rank the
// survivors. This is the programmatic equivalent of the paper's prototype
// debugger and is what the examples and benches call.
#pragma once

#include "backtest/backtester.h"
#include "backtest/multiquery.h"
#include "scenarios/scenario.h"
#include "util/timer.h"

namespace mp::scenario {

// One concrete simulation of a scenario under a given program.
class ScenarioRun {
 public:
  ScenarioRun(const Scenario& s, const ndlog::Program& program,
              eval::EngineOptions eopts = {});

  // Extra tagged base tuples (candidate insertions) + tagged config.
  void insert_config(
      const std::vector<std::pair<eval::Tuple, eval::TagMask>>& extra = {});
  void set_rule_restrictions(
      const std::map<std::string, eval::TagMask>& restrict);
  void set_tag_mode(eval::TagMask active);
  void replay(const std::vector<sdn::Injection>& workload);

  sdn::Network& net() { return *net_; }
  eval::Engine& engine() { return *engine_; }
  const sdn::Campus& campus() const { return campus_; }

 private:
  const Scenario& scenario_;
  std::unique_ptr<sdn::Network> net_;
  std::unique_ptr<eval::Engine> engine_;
  std::unique_ptr<sdn::NdlogController> controller_;
  sdn::Campus campus_;
  bool config_inserted_ = false;
};

// ReplayHarness over a scenario; caches the workload and baseline.
class ScenarioHarness : public backtest::ReplayHarness {
 public:
  explicit ScenarioHarness(const Scenario& s);

  backtest::ReplayOutcome replay_baseline() override;
  backtest::ReplayOutcome replay(const repair::RepairCandidate& cand) override;
  std::vector<backtest::ReplayOutcome> replay_joint(
      const std::vector<repair::RepairCandidate>& cands) override;
  // Candidate replays build a private ScenarioRun each and only read the
  // shared scenario/workload (plus the baseline cached by the first
  // replay_baseline() call), so the Backtester may run them on its pool.
  bool concurrent_replays() const override { return true; }

  const std::vector<sdn::Injection>& workload() const { return workload_; }
  // The recorded buggy run (history source for repair generation).
  ScenarioRun& buggy_run();

 private:
  const Scenario& scenario_;
  std::vector<sdn::Injection> workload_;
  std::unique_ptr<ScenarioRun> buggy_;
  std::unique_ptr<backtest::ReplayOutcome> baseline_;
};

struct PipelineResult {
  repair::GenerationReport generation;   // candidates + phase breakdown
  backtest::BacktestReport backtest;
  PhaseClock phases;                     // generation phases + "replay"
  size_t candidates = 0;
  size_t effective = 0;
  size_t accepted = 0;
  double total_seconds = 0.0;
};

struct PipelineOptions {
  bool multiquery = true;
  size_t max_backtested = 16;  // candidates sent to backtesting
  // Worker threads for sequential candidate backtests (multiquery off);
  // forwarded to BacktestConfig::shards.
  size_t backtest_shards = 1;
};

PipelineResult run_pipeline(const Scenario& s, const PipelineOptions& opt = {});

}  // namespace mp::scenario
