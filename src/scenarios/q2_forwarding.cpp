// Q2: forwarding error (from ATPG [57]). An ACL at ingress switch S1
// forwards DNS queries only for clients with Sip < 6; the operator meant
// Sip < 7, so client H1 (ip 6) is silently blocked and the DNS server H17
// never sees its queries. Scanner hosts with ips 15 / 98 / 2008 populate
// the history, so the meta provenance also proposes the looser constants
// Sip < 16 / < 99 / < 2009 the paper's Table 6(a) shows -- all of which
// admit intentionally-blocked traffic and fail the KS gate.
#include "ndlog/parser.h"
#include "scenarios/scenario.h"

namespace mp::scenario {

namespace {

constexpr const char* kBuggy = R"(
table FlowTable/4.
event PacketIn/4.
r1 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 1, Dpt == 53, Sip < 6, Prt := 2.
r2 FlowTable(@Swi,Dpt,Sip,Prt) :- PacketIn(@C,Swi,Dpt,Sip), Swi == 2, Dpt == 53, Prt := 1.
)";

}  // namespace

Scenario q2_forwarding(const sdn::CampusOptions& campus) {
  Scenario s;
  s.id = "Q2";
  s.query = "H17 is not receiving DNS queries from H1 (forwarding error)";
  s.bug = "r1's ACL tests Sip < 6; the intended predicate is Sip < 7";
  s.campus = campus;
  s.program = ndlog::parse_program(kBuggy);
  s.fixed = s.program;
  s.fixed.find_rule("r1")->sels[2].rhs = ndlog::Expr::constant(Value(7));

  // Symptom: no flow entry at S1 forwarding H1's (sip 6) DNS to port 2.
  repair::Symptom sym;
  sym.polarity = repair::Symptom::Polarity::Missing;
  sym.pattern.table = "FlowTable";
  sym.pattern.fields = {{0, ndlog::CmpOp::Eq, Value(1)},
                        {1, ndlog::CmpOp::Eq, Value(53)},
                        {2, ndlog::CmpOp::Eq, Value(6)},
                        {3, ndlog::CmpOp::Eq, Value(2)}};
  sym.description = s.query;
  s.symptoms.push_back(std::move(sym));

  s.space.insertable_tables = {"FlowTable"};
  s.space.max_const_variants = 4;
  s.space.max_var_variants = 4;
  s.space.max_cost = 9.0;

  s.wire_app = [](sdn::Network& net, const sdn::Campus&) {
    net.link(1, 2, 2, 9);  // S1 port 2 <-> S2
    net.add_host({1, "H17", 17, 100017, 2, 1});
    sdn::install_host_routes(net, {17}, {1, 2, 3, 4});
  };

  s.make_bindings = [] {
    sdn::ControllerBindings b;
    b.encode_packet_in = [](int64_t sw, int64_t, const sdn::Packet& p) {
      return eval::Tuple{
          "PacketIn", {Value::str("C"), Value(sw), Value(p.dpt), Value(p.sip)}};
    };
    b.decode_flow = [](const eval::Tuple& t) -> std::optional<sdn::InstallSpec> {
      if (t.row.size() != 4 || !t.row[0].is_int()) return std::nullopt;
      sdn::InstallSpec spec;
      spec.sw = t.row[0].as_int();
      spec.entry.match = {{sdn::Field::Dpt, t.row[1]},
                          {sdn::Field::Sip, t.row[2]}};
      spec.entry.priority = 0;
      const int64_t prt = t.row[3].is_int() ? t.row[3].as_int() : -1;
      spec.entry.action =
          prt < 0 ? sdn::Action::drop() : sdn::Action::output(prt);
      return spec;
    };
    return b;
  };

  s.make_workload = [](const sdn::Network& net) {
    std::vector<sdn::Injection> work;
    auto dns_from = [&](int64_t sip, size_t packets) {
      sdn::Packet p;
      p.sip = sip;
      p.dip = 17;
      p.dpt = 53;
      p.spt = 40000 + sip;
      p.proto = static_cast<int64_t>(sdn::Proto::Udp);
      p.bucket = sip % 2 + 1;
      for (size_t k = 0; k < packets; ++k) {
        work.push_back(sdn::Injection{1, 1, p, 0});
      }
    };
    // Legitimate clients 1..5 (high volume: repairs that block them shift
    // the distribution noticeably) and H1 = client 6, the blocked one.
    for (int64_t sip = 1; sip <= 5; ++sip) dns_from(sip, 100);
    dns_from(6, 30);
    // Intentionally-blocked clients 7..14 (looser repairs re-admit them).
    for (int64_t sip = 7; sip <= 14; ++sip) dns_from(sip, 60);
    // Scanners whose sips seed the Sip<16 / Sip<99 / Sip<2009 variants.
    dns_from(15, 80);
    dns_from(98, 80);
    dns_from(2008, 80);
    // Background campus load.
    sdn::background_traffic(net, 10000, 32, work);
    return work;
  };

  s.symptom_fixed = [](const backtest::ReplayOutcome& out,
                       const backtest::ReplayOutcome& base,
                       const eval::Engine&, eval::TagMask) {
    // H1's (sip 6) queries reach H17: deliveries rise above the baseline
    // level produced by clients 1..5 alone.
    return out.per_host_port.get("H17:53") > base.per_host_port.get("H17:53");
  };
  return s;
}

}  // namespace mp::scenario
