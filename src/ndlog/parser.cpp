#include "ndlog/parser.h"

namespace mp::ndlog {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  Program program() {
    Program p;
    while (!at(TokKind::End)) {
      if (at(TokKind::KwTable) || at(TokKind::KwEvent)) {
        p.tables.push_back(decl());
      } else {
        p.rules.push_back(rule());
      }
    }
    return p;
  }

  Rule single_rule() {
    Rule r = rule();
    expect(TokKind::End);
    return r;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at(TokKind k) const { return cur().kind == k; }
  Token take() { return toks_[pos_++]; }
  Token expect(TokKind k) {
    if (!at(k)) {
      throw ParseError("expected " + to_string(k) + ", found " +
                           to_string(cur().kind) +
                           (cur().text.empty() ? "" : " ('" + cur().text + "')"),
                       cur().line, cur().col);
    }
    return take();
  }

  TableDecl decl() {
    TableDecl d;
    d.kind = take().kind == TokKind::KwEvent ? TableKind::Event
                                             : TableKind::Materialized;
    d.name = expect(TokKind::Ident).text;
    expect(TokKind::Slash);
    d.arity = static_cast<size_t>(expect(TokKind::Int).ival);
    if (at(TokKind::KwKeys)) {
      take();
      expect(TokKind::LParen);
      d.keys.push_back(static_cast<size_t>(expect(TokKind::Int).ival));
      while (at(TokKind::Comma)) {
        take();
        d.keys.push_back(static_cast<size_t>(expect(TokKind::Int).ival));
      }
      expect(TokKind::RParen);
    }
    expect(TokKind::Dot);
    return d;
  }

  Rule rule() {
    Rule r;
    r.name = expect(TokKind::Ident).text;
    r.head = atom();
    expect(TokKind::Derives);
    body_item(r);
    while (at(TokKind::Comma)) {
      take();
      body_item(r);
    }
    expect(TokKind::Dot);
    return r;
  }

  void body_item(Rule& r) {
    if (at(TokKind::Ident) && peek().kind == TokKind::LParen) {
      r.body.push_back(atom());
      return;
    }
    if (at(TokKind::Ident) && peek().kind == TokKind::Assign) {
      Assignment a;
      a.var = take().text;
      take();  // :=
      a.expr = expr();
      r.assigns.push_back(std::move(a));
      return;
    }
    Selection s;
    s.lhs = expr();
    switch (cur().kind) {
      case TokKind::EqEq: s.op = CmpOp::Eq; break;
      case TokKind::NotEq: s.op = CmpOp::Ne; break;
      case TokKind::Lt: s.op = CmpOp::Lt; break;
      case TokKind::Gt: s.op = CmpOp::Gt; break;
      case TokKind::Le: s.op = CmpOp::Le; break;
      case TokKind::Ge: s.op = CmpOp::Ge; break;
      default:
        throw ParseError("expected comparison operator, found " +
                             to_string(cur().kind),
                         cur().line, cur().col);
    }
    take();
    s.rhs = expr();
    r.sels.push_back(std::move(s));
  }

  Atom atom() {
    Atom a;
    a.table = expect(TokKind::Ident).text;
    expect(TokKind::LParen);
    expect(TokKind::At);
    a.args.push_back(expr());
    while (at(TokKind::Comma)) {
      take();
      a.args.push_back(expr());
    }
    expect(TokKind::RParen);
    return a;
  }

  ExprPtr expr() {
    ExprPtr e = term();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      const ArithOp op = take().kind == TokKind::Plus ? ArithOp::Add : ArithOp::Sub;
      e = Expr::binary(op, std::move(e), term());
    }
    return e;
  }

  ExprPtr term() {
    ExprPtr e = factor();
    while (at(TokKind::Star) || at(TokKind::Slash)) {
      // A '*' directly followed by ',' ')' or '.' would have been consumed
      // as a wildcard in factor(); here it is multiplication.
      const ArithOp op = take().kind == TokKind::Star ? ArithOp::Mul : ArithOp::Div;
      e = Expr::binary(op, std::move(e), factor());
    }
    return e;
  }

  ExprPtr factor() {
    if (at(TokKind::Int)) return Expr::constant(Value(take().ival));
    if (at(TokKind::Minus)) {
      take();
      return Expr::constant(Value(-expect(TokKind::Int).ival));
    }
    if (at(TokKind::Str)) return Expr::constant(Value::str(take().text));
    if (at(TokKind::Star)) {
      take();
      return Expr::constant(Value::wildcard());
    }
    if (at(TokKind::Ident)) return Expr::var(take().text);
    if (at(TokKind::LParen)) {
      take();
      ExprPtr e = expr();
      expect(TokKind::RParen);
      return e;
    }
    throw ParseError("expected expression, found " + to_string(cur().kind),
                     cur().line, cur().col);
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view src) { return Parser(src).program(); }

Rule parse_rule(std::string_view src) { return Parser(src).single_rule(); }

}  // namespace mp::ndlog
