// AST for the NDlog subset used by the controller programs. The grammar is
// a superset of the paper's uDlog (Figure 3): rules with located head and
// body atoms, comparison selections, := assignments, integer and string
// constants, and simple arithmetic in expressions.
//
// Expressions use shared immutable subtrees so that Program is cheap to
// copy; the repair engine produces candidate programs by copy-and-mutate.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/value.h"

namespace mp::ndlog {

enum class CmpOp : uint8_t { Eq, Ne, Lt, Gt, Le, Ge };
enum class ArithOp : uint8_t { Add, Sub, Mul, Div };

std::string to_string(CmpOp op);
std::string to_string(ArithOp op);
// Evaluate `a op b` over values; integer comparison or string equality.
bool cmp_eval(CmpOp op, const Value& a, const Value& b);
// All six comparison operators, for operator-mutation repairs.
const std::vector<CmpOp>& all_cmp_ops();
CmpOp negate(CmpOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind : uint8_t { Const, Var, Binary };

  static ExprPtr constant(Value v);
  static ExprPtr var(std::string name);
  static ExprPtr binary(ArithOp op, ExprPtr lhs, ExprPtr rhs);

  Kind kind() const { return kind_; }
  bool is_const() const { return kind_ == Kind::Const; }
  bool is_var() const { return kind_ == Kind::Var; }

  const Value& cval() const { return cval_; }
  const std::string& var_name() const { return var_; }
  ArithOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  std::string to_string() const;
  // Collect variable names (in order of first appearance).
  void collect_vars(std::vector<std::string>& out) const;
  bool equals(const Expr& o) const;

 private:
  Kind kind_ = Kind::Const;
  Value cval_;
  std::string var_;
  ArithOp op_ = ArithOp::Add;
  ExprPtr lhs_, rhs_;
};

// A selection predicate `expr op expr` (the "sel" of the uDlog grammar).
struct Selection {
  ExprPtr lhs;
  CmpOp op = CmpOp::Eq;
  ExprPtr rhs;
  std::string to_string() const;
};

// An assignment `Var := expr`.
struct Assignment {
  std::string var;
  ExprPtr expr;
  std::string to_string() const;
};

// A located atom Table(@Loc, a1, ..., an). Column 0 is the location
// specifier; args are Const or Var expressions.
struct Atom {
  std::string table;
  std::vector<ExprPtr> args;  // args[0] = location
  std::string to_string() const;
  size_t arity() const { return args.size(); }
};

struct Rule {
  std::string name;  // e.g. "r1"
  Atom head;
  std::vector<Atom> body;
  std::vector<Selection> sels;
  std::vector<Assignment> assigns;
  std::string to_string() const;
};

enum class TableKind : uint8_t {
  Materialized,  // persists until deleted (state)
  Event,         // transient: triggers rules then expires (message)
};

struct TableDecl {
  std::string name;
  size_t arity = 0;                // includes the location column
  std::vector<size_t> keys;        // primary-key columns (default: all)
  TableKind kind = TableKind::Materialized;
  std::string to_string() const;
};

struct Program {
  std::vector<TableDecl> tables;
  std::vector<Rule> rules;

  const TableDecl* find_table(const std::string& name) const;
  const Rule* find_rule(const std::string& name) const;
  Rule* find_rule(const std::string& name);
  std::string to_string() const;
  // Number of syntactic lines (decls + rules); Fig 10 sweeps program size.
  size_t line_count() const { return tables.size() + rules.size(); }
};

}  // namespace mp::ndlog
