// Catalog: fast access to table declarations plus primary-key helpers.
#pragma once

#include <unordered_map>

#include "ndlog/ast.h"
#include "util/value.h"

namespace mp::ndlog {

class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(const Program& p) {
    for (const auto& t : p.tables) add(t);
  }

  void add(const TableDecl& decl) { tables_[decl.name] = decl; }
  const TableDecl* find(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }
  bool is_event(const std::string& name) const {
    const TableDecl* d = find(name);
    return d != nullptr && d->kind == TableKind::Event;
  }
  size_t size() const { return tables_.size(); }

  // Primary-key projection of a row. If no keys are declared the whole row
  // is the key (set semantics).
  Row key_of(const std::string& table, const Row& row) const;

 private:
  std::unordered_map<std::string, TableDecl> tables_;
};

}  // namespace mp::ndlog
