// Catalog: fast access to table declarations plus primary-key helpers.
//
// Beyond the original name-keyed lookups, the catalog now acts as the
// interner for the evaluation engine: every table referenced by a program
// (declared or not) gets a dense TableId assigned in a deterministic order
// (declarations first, then rule heads/bodies in program order). The
// engine's compiled rule plans, per-node stores and secondary indexes are
// all keyed by TableId so the hot path never hashes a table name.
#pragma once

#include <deque>
#include <unordered_map>

#include "ndlog/ast.h"
#include "util/value.h"

namespace mp::ndlog {

class Catalog {
 public:
  using TableId = uint32_t;
  static constexpr TableId kNoTable = ~TableId{0};

  Catalog() = default;
  explicit Catalog(const Program& p) {
    for (const auto& t : p.tables) add(t);
    for (const auto& r : p.rules) {
      intern(r.head.table);
      for (const auto& a : r.body) intern(a.table);
    }
  }

  // Registers (or overwrites) a declaration, keeping its TableId stable.
  void add(const TableDecl& decl) {
    const TableId id = intern(decl.name);
    decls_[id] = decl;
    declared_[id] = 1;
  }

  // Dense id for `name`, creating an undeclared stub (materialized, no
  // keys) on first sight. Stable across calls.
  TableId intern(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const TableId id = static_cast<TableId>(decls_.size());
    TableDecl stub;
    stub.name = name;
    decls_.push_back(std::move(stub));
    declared_.push_back(0);
    ids_.emplace(name, id);
    return id;
  }

  TableId id_of(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kNoTable : it->second;
  }
  const TableDecl& decl(TableId id) const { return decls_[id]; }
  const std::string& name_of(TableId id) const { return decls_[id].name; }

  // Name lookup over *declared* tables only: rule-referenced but
  // undeclared stubs stay invisible, as before interning existed.
  const TableDecl* find(const std::string& name) const {
    const TableId id = id_of(name);
    return id == kNoTable || !declared_[id] ? nullptr : &decls_[id];
  }
  bool is_event(TableId id) const {
    return decls_[id].kind == TableKind::Event;
  }
  bool is_event(const std::string& name) const {
    const TableDecl* d = find(name);
    return d != nullptr && d->kind == TableKind::Event;
  }
  // Number of interned tables (declared + stubs).
  size_t size() const { return decls_.size(); }

  // Primary-key projection of a row. If no keys are declared the whole row
  // is the key (set semantics).
  Row key_of(const std::string& table, const Row& row) const;
  Row key_of(TableId id, const Row& row) const;

 private:
  std::deque<TableDecl> decls_;  // deque: pointers from find() stay stable
  std::deque<uint8_t> declared_;
  std::unordered_map<std::string, TableId> ids_;
};

}  // namespace mp::ndlog
