// Tokens shared by the NDlog lexer/parser.
#pragma once

#include <cstdint>
#include <string>

namespace mp::ndlog {

enum class TokKind : uint8_t {
  Ident,    // FlowTable, Swi, r1
  Int,      // 42, -1
  Str,      // "abc"
  LParen,
  RParen,
  Comma,
  Dot,
  At,
  Derives,  // :-
  Assign,   // :=
  EqEq,
  NotEq,
  Lt,
  Gt,
  Le,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  KwTable,
  KwEvent,
  KwKeys,
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  int64_t ival = 0;
  size_t line = 0;
  size_t col = 0;
};

std::string to_string(TokKind kind);

}  // namespace mp::ndlog
