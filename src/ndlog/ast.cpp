#include "ndlog/ast.h"

namespace mp::ndlog {

std::string to_string(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Gt: return ">";
    case CmpOp::Le: return "<=";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

std::string to_string(ArithOp op) {
  switch (op) {
    case ArithOp::Add: return "+";
    case ArithOp::Sub: return "-";
    case ArithOp::Mul: return "*";
    case ArithOp::Div: return "/";
  }
  return "?";
}

bool cmp_eval(CmpOp op, const Value& a, const Value& b) {
  switch (op) {
    case CmpOp::Eq: return a == b;
    case CmpOp::Ne: return a != b;
    case CmpOp::Lt: return a < b;
    case CmpOp::Gt: return b < a;
    case CmpOp::Le: return !(b < a);
    case CmpOp::Ge: return !(a < b);
  }
  return false;
}

const std::vector<CmpOp>& all_cmp_ops() {
  static const std::vector<CmpOp> ops = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                                         CmpOp::Gt, CmpOp::Le, CmpOp::Ge};
  return ops;
}

CmpOp negate(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return CmpOp::Ne;
    case CmpOp::Ne: return CmpOp::Eq;
    case CmpOp::Lt: return CmpOp::Ge;
    case CmpOp::Gt: return CmpOp::Le;
    case CmpOp::Le: return CmpOp::Gt;
    case CmpOp::Ge: return CmpOp::Lt;
  }
  return CmpOp::Eq;
}

ExprPtr Expr::constant(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Const;
  e->cval_ = std::move(v);
  return e;
}

ExprPtr Expr::var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Var;
  e->var_ = std::move(name);
  return e;
}

ExprPtr Expr::binary(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Binary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

std::string Expr::to_string() const {
  switch (kind_) {
    case Kind::Const: return cval_.to_string();
    case Kind::Var: return var_;
    case Kind::Binary:
      return lhs_->to_string() + " " + mp::ndlog::to_string(op_) + " " +
             rhs_->to_string();
  }
  return "?";
}

void Expr::collect_vars(std::vector<std::string>& out) const {
  switch (kind_) {
    case Kind::Const: return;
    case Kind::Var: {
      for (const auto& v : out)
        if (v == var_) return;
      out.push_back(var_);
      return;
    }
    case Kind::Binary:
      lhs_->collect_vars(out);
      rhs_->collect_vars(out);
      return;
  }
}

bool Expr::equals(const Expr& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::Const: return cval_ == o.cval_;
    case Kind::Var: return var_ == o.var_;
    case Kind::Binary:
      return op_ == o.op_ && lhs_->equals(*o.lhs_) && rhs_->equals(*o.rhs_);
  }
  return false;
}

std::string Selection::to_string() const {
  return lhs->to_string() + " " + mp::ndlog::to_string(op) + " " +
         rhs->to_string();
}

std::string Assignment::to_string() const {
  return var + " := " + expr->to_string();
}

std::string Atom::to_string() const {
  std::string out = table + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    if (i == 0) out += "@";
    out += args[i]->to_string();
  }
  out += ")";
  return out;
}

std::string Rule::to_string() const {
  std::string out = name + " " + head.to_string() + " :- ";
  std::vector<std::string> parts;
  for (const auto& a : body) parts.push_back(a.to_string());
  for (const auto& s : sels) parts.push_back(s.to_string());
  for (const auto& a : assigns) parts.push_back(a.to_string());
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ", ";
    out += parts[i];
  }
  out += ".";
  return out;
}

std::string TableDecl::to_string() const {
  std::string out = kind == TableKind::Event ? "event " : "table ";
  out += name + "/" + std::to_string(arity);
  if (!keys.empty()) {
    out += " keys(";
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(keys[i]);
    }
    out += ")";
  }
  out += ".";
  return out;
}

const TableDecl* Program::find_table(const std::string& name) const {
  for (const auto& t : tables)
    if (t.name == name) return &t;
  return nullptr;
}

const Rule* Program::find_rule(const std::string& name) const {
  for (const auto& r : rules)
    if (r.name == name) return &r;
  return nullptr;
}

Rule* Program::find_rule(const std::string& name) {
  for (auto& r : rules)
    if (r.name == name) return &r;
  return nullptr;
}

std::string Program::to_string() const {
  std::string out;
  for (const auto& t : tables) out += t.to_string() + "\n";
  for (const auto& r : rules) out += r.to_string() + "\n";
  return out;
}

}  // namespace mp::ndlog
