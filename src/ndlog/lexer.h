// Hand-written lexer for the NDlog subset. `//` comments run to end of
// line. Throws ParseError with line/column on invalid input.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ndlog/token.h"

namespace mp::ndlog {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, size_t line, size_t col)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + msg),
        line_(line),
        col_(col) {}
  size_t line() const { return line_; }
  size_t col() const { return col_; }

 private:
  size_t line_, col_;
};

std::vector<Token> lex(std::string_view src);

}  // namespace mp::ndlog
