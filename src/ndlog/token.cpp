#include "ndlog/token.h"

namespace mp::ndlog {

std::string to_string(TokKind kind) {
  switch (kind) {
    case TokKind::Ident: return "identifier";
    case TokKind::Int: return "integer";
    case TokKind::Str: return "string";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::Comma: return "','";
    case TokKind::Dot: return "'.'";
    case TokKind::At: return "'@'";
    case TokKind::Derives: return "':-'";
    case TokKind::Assign: return "':='";
    case TokKind::EqEq: return "'=='";
    case TokKind::NotEq: return "'!='";
    case TokKind::Lt: return "'<'";
    case TokKind::Gt: return "'>'";
    case TokKind::Le: return "'<='";
    case TokKind::Ge: return "'>='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::KwTable: return "'table'";
    case TokKind::KwEvent: return "'event'";
    case TokKind::KwKeys: return "'keys'";
    case TokKind::End: return "end of input";
  }
  return "?";
}

}  // namespace mp::ndlog
