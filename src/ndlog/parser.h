// Recursive-descent parser for the NDlog subset.
//
//   program    := (decl | rule)*
//   decl       := ("table"|"event") Ident "/" Int [ "keys" "(" ints ")" ] "."
//   rule       := Ident atom ":-" bodyitem ("," bodyitem)* "."
//   bodyitem   := atom | assignment | selection
//   atom       := Ident "(" "@" expr ("," expr)* ")"
//   assignment := Ident ":=" expr
//   selection  := expr cmp expr
//   expr       := term (("+"|"-") term)* ; term := factor (("*"|"/") factor)*
//   factor     := Int | "-" Int | Ident | '"'str'"' | "*" (wildcard) | "(" expr ")"
#pragma once

#include <string_view>

#include "ndlog/ast.h"
#include "ndlog/lexer.h"

namespace mp::ndlog {

// Parses a full program; throws ParseError on malformed input.
Program parse_program(std::string_view src);

// Parses a single rule (convenience for tests and repair printing).
Rule parse_rule(std::string_view src);

}  // namespace mp::ndlog
