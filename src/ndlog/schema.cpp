#include "ndlog/schema.h"

namespace mp::ndlog {

Row Catalog::key_of(const std::string& table, const Row& row) const {
  const TableId id = id_of(table);
  if (id == kNoTable) return row;
  return key_of(id, row);
}

Row Catalog::key_of(TableId id, const Row& row) const {
  const TableDecl& d = decls_[id];
  if (d.keys.empty()) return row;
  Row key;
  key.reserve(d.keys.size());
  for (size_t col : d.keys) {
    if (col < row.size()) key.push_back(row[col]);
  }
  return key;
}

}  // namespace mp::ndlog
