// Static validation of NDlog programs: declared tables, matching arities,
// bound variables, and acyclic assignment chains. The repair engine also
// validates every candidate program before backtesting it (Section 4.2:
// changes must keep the syntax valid).
#pragma once

#include <string>
#include <vector>

#include "ndlog/ast.h"

namespace mp::ndlog {

// Returns a list of human-readable problems; empty means valid.
std::vector<std::string> validate(const Program& p);

inline bool is_valid(const Program& p) { return validate(p).empty(); }

}  // namespace mp::ndlog
