#include "ndlog/lexer.h"

#include <cctype>

namespace mp::ndlog {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\''; }

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0, line = 1, col = 1;
  auto make = [&](TokKind k, std::string text) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    return t;
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (ident_start(c)) {
      size_t start = i;
      size_t scol = col;
      while (i < src.size() && ident_char(src[i])) advance(1);
      std::string text(src.substr(start, i - start));
      Token t;
      t.line = line;
      t.col = scol;
      t.text = text;
      if (text == "table") t.kind = TokKind::KwTable;
      else if (text == "event") t.kind = TokKind::KwEvent;
      else if (text == "keys") t.kind = TokKind::KwKeys;
      else t.kind = TokKind::Ident;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      size_t scol = col;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) advance(1);
      Token t;
      t.kind = TokKind::Int;
      t.text = std::string(src.substr(start, i - start));
      t.ival = std::stoll(t.text);
      t.line = line;
      t.col = scol;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      size_t scol = col;
      advance(1);
      size_t start = i;
      while (i < src.size() && src[i] != '"') advance(1);
      if (i >= src.size()) throw ParseError("unterminated string", line, scol);
      Token t;
      t.kind = TokKind::Str;
      t.text = std::string(src.substr(start, i - start));
      t.line = line;
      t.col = scol;
      advance(1);  // closing quote
      out.push_back(std::move(t));
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    if (two(':', '-')) { out.push_back(make(TokKind::Derives, ":-")); advance(2); continue; }
    if (two(':', '=')) { out.push_back(make(TokKind::Assign, ":=")); advance(2); continue; }
    if (two('=', '=')) { out.push_back(make(TokKind::EqEq, "==")); advance(2); continue; }
    if (two('!', '=')) { out.push_back(make(TokKind::NotEq, "!=")); advance(2); continue; }
    if (two('<', '=')) { out.push_back(make(TokKind::Le, "<=")); advance(2); continue; }
    if (two('>', '=')) { out.push_back(make(TokKind::Ge, ">=")); advance(2); continue; }
    switch (c) {
      case '(': out.push_back(make(TokKind::LParen, "(")); advance(1); continue;
      case ')': out.push_back(make(TokKind::RParen, ")")); advance(1); continue;
      case ',': out.push_back(make(TokKind::Comma, ",")); advance(1); continue;
      case '.': out.push_back(make(TokKind::Dot, ".")); advance(1); continue;
      case '@': out.push_back(make(TokKind::At, "@")); advance(1); continue;
      case '<': out.push_back(make(TokKind::Lt, "<")); advance(1); continue;
      case '>': out.push_back(make(TokKind::Gt, ">")); advance(1); continue;
      case '+': out.push_back(make(TokKind::Plus, "+")); advance(1); continue;
      case '-': out.push_back(make(TokKind::Minus, "-")); advance(1); continue;
      case '*': out.push_back(make(TokKind::Star, "*")); advance(1); continue;
      case '/': out.push_back(make(TokKind::Slash, "/")); advance(1); continue;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line, col);
    }
  }
  out.push_back(make(TokKind::End, ""));
  return out;
}

}  // namespace mp::ndlog
