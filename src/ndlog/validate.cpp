#include "ndlog/validate.h"

#include <set>

namespace mp::ndlog {

namespace {

void collect_atom_vars(const Atom& a, std::set<std::string>& out) {
  for (const auto& arg : a.args) {
    std::vector<std::string> vs;
    arg->collect_vars(vs);
    out.insert(vs.begin(), vs.end());
  }
}

}  // namespace

std::vector<std::string> validate(const Program& p) {
  std::vector<std::string> errors;
  std::set<std::string> table_names;
  for (const auto& t : p.tables) {
    if (!table_names.insert(t.name).second) {
      errors.push_back("duplicate table declaration: " + t.name);
    }
    if (t.arity == 0) {
      errors.push_back("table " + t.name + " must have arity >= 1 (location)");
    }
    for (size_t k : t.keys) {
      if (k >= t.arity) {
        errors.push_back("table " + t.name + ": key column " +
                         std::to_string(k) + " out of range");
      }
    }
  }

  std::set<std::string> rule_names;
  for (const auto& r : p.rules) {
    if (!rule_names.insert(r.name).second) {
      errors.push_back("duplicate rule name: " + r.name);
    }
    auto check_atom = [&](const Atom& a, const char* where) {
      const TableDecl* d = p.find_table(a.table);
      if (d == nullptr) {
        errors.push_back(r.name + ": undeclared table " + a.table + " in " + where);
        return;
      }
      if (d->arity != a.arity()) {
        errors.push_back(r.name + ": " + a.table + " arity mismatch (" +
                         std::to_string(a.arity()) + " vs declared " +
                         std::to_string(d->arity) + ")");
      }
    };
    check_atom(r.head, "head");
    if (r.body.empty()) {
      errors.push_back(r.name + ": rule has no body atoms");
    }
    for (const auto& a : r.body) check_atom(a, "body");

    // Head atom args must be vars or constants (computations go through
    // assignments), as in the uDlog grammar.
    for (const auto& arg : r.head.args) {
      if (arg->kind() == Expr::Kind::Binary) {
        errors.push_back(r.name + ": head argument must be a variable or "
                         "constant, found expression '" + arg->to_string() + "'");
      }
    }

    // Variable binding: body atoms bind; assignments bind in order; head
    // and selections must only use bound variables.
    std::set<std::string> bound;
    for (const auto& a : r.body) collect_atom_vars(a, bound);
    for (const auto& asg : r.assigns) {
      std::vector<std::string> used;
      asg.expr->collect_vars(used);
      for (const auto& v : used) {
        if (!bound.count(v)) {
          errors.push_back(r.name + ": assignment uses unbound variable " + v);
        }
      }
      bound.insert(asg.var);
    }
    for (const auto& s : r.sels) {
      std::vector<std::string> used;
      s.lhs->collect_vars(used);
      s.rhs->collect_vars(used);
      for (const auto& v : used) {
        if (!bound.count(v)) {
          errors.push_back(r.name + ": selection '" + s.to_string() +
                           "' uses unbound variable " + v);
        }
      }
    }
    std::set<std::string> head_vars;
    collect_atom_vars(r.head, head_vars);
    for (const auto& v : head_vars) {
      if (!bound.count(v)) {
        errors.push_back(r.name + ": head uses unbound variable " + v);
      }
    }
  }
  return errors;
}

}  // namespace mp::ndlog
