// Synthetic traffic generation: the stand-in for the campus traces of
// Benson et al. [5] used by the paper (Section 5.2). Deterministic (seeded)
// mixes of HTTP/DNS/ICMP flows with skewed host popularity; flows carry
// multiple packets so "first packet of a flow" effects (Q4) are visible.
#pragma once

#include <vector>

#include "sdn/network.h"
#include "sdn/recorder.h"

namespace mp::sdn {

struct TrafficMix {
  double http = 0.55;
  double dns = 0.25;
  double icmp = 0.20;
};

// Deterministic per-shard seed derivation (SplitMix64 finalizer). Shard
// workers that intentionally want *decorrelated* streams (e.g. per-shard
// warm-up noise) must not derive them as `seed ^ shard` — nearby shard
// ids barely perturb a xorshift state. Streams that must be *identical*
// to a serial run should instead slice one seeded stream (StreamSlice).
uint64_t shard_seed(uint64_t base_seed, uint32_t shard);

// Selects one deterministic slice of a generator's stream. The generator
// always draws the full seeded RNG sequence (so every slice agrees on the
// whole stream) and emits only the injections whose stream position p has
// p % of == shard. When actually slicing (of > 1) each emitted injection
// carries its global stream position (1-based) in Injection::time, so
// interleaving the slices by that position reconstructs the serial stream
// packet-for-packet — the property the sharded runtime relies on to
// replay identical injection streams serially and sharded (pinned by
// tests/runtime_test.cpp). Whole-stream generation (of == 1, the default)
// leaves time = 0: scenario workloads concatenate several generator
// streams, and per-call positions must not masquerade as the recorder's
// unique injection-clock timestamps (Network::inject_batch keeps a
// nonzero stamp in the recorded ingress log only when its explicit
// preserve_stamped_times flag is set).
struct StreamSlice {
  uint32_t shard = 0;
  uint32_t of = 1;
  bool contains(uint64_t position) const {
    // of == 0 behaves as the whole stream rather than dividing by zero,
    // and shard is normalized modulo of (as ShardPlan::place does) so an
    // out-of-range shard can never silently produce an empty slice.
    return of <= 1 || position % of == shard % of;
  }
  bool stamps_positions() const { return of > 1; }
};

// Campus-to-campus background traffic between the hosts already present in
// `net` (delivered via the proactive routes; creates realistic load and
// a stable baseline distribution for the KS gate).
std::vector<Injection> background_traffic(const Network& net, size_t packets,
                                          uint64_t seed,
                                          const TrafficMix& mix = {});
// Appending form: extends `out` in place (reserved once), so scenario
// workload assembly builds one batch without intermediate copies.
void background_traffic(const Network& net, size_t packets, uint64_t seed,
                        std::vector<Injection>& out, const TrafficMix& mix = {});
// Sliced form (see StreamSlice): emits only this shard's portion of the
// identical seeded stream.
void background_traffic(const Network& net, size_t packets, uint64_t seed,
                        const StreamSlice& slice, std::vector<Injection>& out,
                        const TrafficMix& mix = {});

struct IngressOptions {
  size_t flows = 40;
  size_t packets_per_flow = 8;
  int64_t ingress_switch = 1;
  int64_t ingress_port = 1;
  int64_t dpt = 80;
  int64_t dst_ip = 0;       // destination (e.g. the web VIP)
  int64_t src_ip_base = 10000;
  size_t src_ip_count = 24;
  size_t buckets = 2;       // load-balancer buckets (sip % buckets + 1)
  uint64_t seed = 7;
};

// External (Internet-side) request traffic entering at the ingress switch.
std::vector<Injection> ingress_traffic(const IngressOptions& opt);
// Appending form (see background_traffic above).
void ingress_traffic(const IngressOptions& opt, std::vector<Injection>& out);
// Sliced form (see StreamSlice).
void ingress_traffic(const IngressOptions& opt, const StreamSlice& slice,
                     std::vector<Injection>& out);

// Replays a recorded/synthesized workload into the network as one batch
// (Network::inject_batch).
void replay(Network& net, const std::vector<Injection>& work,
            bool record = true);

}  // namespace mp::sdn
