// Synthetic traffic generation: the stand-in for the campus traces of
// Benson et al. [5] used by the paper (Section 5.2). Deterministic (seeded)
// mixes of HTTP/DNS/ICMP flows with skewed host popularity; flows carry
// multiple packets so "first packet of a flow" effects (Q4) are visible.
#pragma once

#include <vector>

#include "sdn/network.h"
#include "sdn/recorder.h"

namespace mp::sdn {

struct TrafficMix {
  double http = 0.55;
  double dns = 0.25;
  double icmp = 0.20;
};

// Campus-to-campus background traffic between the hosts already present in
// `net` (delivered via the proactive routes; creates realistic load and
// a stable baseline distribution for the KS gate).
std::vector<Injection> background_traffic(const Network& net, size_t packets,
                                          uint64_t seed,
                                          const TrafficMix& mix = {});
// Appending form: extends `out` in place (reserved once), so scenario
// workload assembly builds one batch without intermediate copies.
void background_traffic(const Network& net, size_t packets, uint64_t seed,
                        std::vector<Injection>& out, const TrafficMix& mix = {});

struct IngressOptions {
  size_t flows = 40;
  size_t packets_per_flow = 8;
  int64_t ingress_switch = 1;
  int64_t ingress_port = 1;
  int64_t dpt = 80;
  int64_t dst_ip = 0;       // destination (e.g. the web VIP)
  int64_t src_ip_base = 10000;
  size_t src_ip_count = 24;
  size_t buckets = 2;       // load-balancer buckets (sip % buckets + 1)
  uint64_t seed = 7;
};

// External (Internet-side) request traffic entering at the ingress switch.
std::vector<Injection> ingress_traffic(const IngressOptions& opt);
// Appending form (see background_traffic above).
void ingress_traffic(const IngressOptions& opt, std::vector<Injection>& out);

// Replays a recorded/synthesized workload into the network as one batch
// (Network::inject_batch).
void replay(Network& net, const std::vector<Injection>& work,
            bool record = true);

}  // namespace mp::sdn
