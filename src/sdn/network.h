// The simulated network: switches, hosts, links, and the forwarding loop
// with reactive control. On a flow-table miss the packet is buffered and
// the controller is invoked (PacketIn); the controller may install flow
// entries (FlowMod) and/or release the buffered packet (PacketOut). If no
// PacketOut arrives the buffered packet is dropped -- exactly the failure
// mode of scenario Q4 ("forgotten packets").
//
// Tag support: in tag mode every flow entry carries a candidate mask and
// forwarding is resolved per tag; the controller is still invoked only
// once per distinct miss, with the mask of tags that missed (Section 4.4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sdn/recorder.h"
#include "sdn/switch.h"
#include "util/stats.h"

namespace mp::sdn {

struct Host {
  int64_t id = 0;
  std::string name;
  int64_t ip = 0;
  int64_t mac = 0;
  int64_t sw = 0;
  int64_t port = 0;
};

class ControllerIface {
 public:
  virtual ~ControllerIface() = default;
  // `miss_tags`: candidate worlds in which the packet missed (kAllTags in
  // normal operation).
  virtual void on_packet_in(int64_t sw, int64_t in_port, const Packet& p,
                            eval::TagMask miss_tags) = 0;
};

struct DeliveryStats {
  CountDistribution per_host;          // host name -> packets delivered
  CountDistribution per_host_port;     // "host:dpt" -> packets
  size_t delivered = 0;
  size_t dropped = 0;
  size_t external = 0;
  size_t packet_ins = 0;
  size_t flow_mods = 0;
  size_t packet_outs = 0;
  size_t hops = 0;
};

class Network {
 public:
  Switch& add_switch(int64_t id);
  Switch* find_switch(int64_t id);
  const Switch* find_switch(int64_t id) const;
  Host& add_host(Host h);  // also connects the switch port to the host
  const Host* host_by_ip(int64_t ip) const;
  const Host* host_by_id(int64_t id) const;
  const std::vector<Host>& hosts() const { return hosts_; }
  size_t switch_count() const { return switches_.size(); }

  // Bidirectional switch-to-switch link.
  void link(int64_t sw_a, int64_t port_a, int64_t sw_b, int64_t port_b);
  // Marks a port as an external uplink (e.g. the Internet).
  void external(int64_t sw, int64_t port);

  void set_controller(ControllerIface* c) { controller_ = c; }
  void set_tag_mode(bool on, eval::TagMask active = eval::kAllTags) {
    tag_mode_ = on;
    active_tags_ = active;
  }

  // Control-plane operations (called by the controller).
  void install(int64_t sw, FlowEntry entry);
  void packet_out(int64_t sw, int64_t port, eval::TagMask tags = eval::kAllTags);

  // Injects a packet at (sw, in_port) and runs it to completion, invoking
  // the controller on misses. Records ingress in the recorder when
  // `record` is true.
  void inject(int64_t sw, int64_t in_port, const Packet& p, bool record = true);
  // Batched workload injection: reserves the ingress log once, then runs
  // each packet to completion in order. Packets stay serialized — a miss
  // may install flow state the next packet's forwarding depends on — so
  // batching here amortizes recording, not control-loop round trips.
  // With preserve_stamped_times, injections carrying a nonzero time (the
  // 1-based stream positions sdn::StreamSlice generation stamps) keep it
  // in the recorded ingress log, so per-shard-sliced and serial workload
  // generations record byte-identical logs. Off by default: replaying a
  // previously *recorded* ingress log (whose times are old injection-
  // clock values) must restamp with the fresh clock, as it always has.
  void inject_batch(const std::vector<Injection>& work, bool record = true,
                    bool preserve_stamped_times = false);

  DeliveryStats& stats() { return stats_; }
  const DeliveryStats& stats() const { return stats_; }
  // Per-candidate statistics in tag mode (tag_index = bit position).
  const DeliveryStats& tag_stats(size_t tag_index) const;
  Recorder& recorder() { return recorder_; }
  const Recorder& recorder() const { return recorder_; }
  uint64_t now() const { return clock_; }

  // Clears dynamic state (flow entries, stats) but keeps the topology;
  // used between backtest runs.
  void reset_dynamic_state();

 private:
  void forward_one(int64_t sw, int64_t in_port, const Packet& p,
                   eval::TagMask tags);

  std::map<int64_t, Switch> switches_;
  std::vector<Host> hosts_;
  ControllerIface* controller_ = nullptr;
  DeliveryStats stats_;
  std::map<size_t, DeliveryStats> tag_stats_;
  Recorder recorder_;
  uint64_t clock_ = 0;
  bool tag_mode_ = false;
  eval::TagMask active_tags_ = eval::kAllTags;

  // PacketOut releases are collected during a controller invocation and
  // consumed by the inject loop for the buffered packet.
  struct PendingOut {
    int64_t sw;
    int64_t port;
    eval::TagMask tags;
  };
  std::vector<PendingOut> pending_outs_;
};

}  // namespace mp::sdn
