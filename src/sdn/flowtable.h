// Flow tables with wildcard matching, priorities and candidate-tag masks.
// A match on a field whose value is the wildcard "*" is skipped -- this is
// how the Q5 MAC-learning bug (too-coarse entries) is modelled.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "eval/tuple.h"
#include "sdn/packet.h"

namespace mp::sdn {

struct Action {
  enum class Kind : uint8_t { Output, Drop };
  Kind kind = Kind::Drop;
  int64_t port = -1;

  static Action output(int64_t port) {
    return Action{Kind::Output, port};
  }
  static Action drop() { return Action{Kind::Drop, -1}; }
  std::string to_string() const {
    return kind == Kind::Drop ? "drop" : "output-" + std::to_string(port);
  }
};

struct MatchField {
  Field field = Field::Dpt;
  Value value;  // wildcard "*" matches anything
};

struct FlowEntry {
  std::vector<MatchField> match;
  int priority = 0;
  Action action;
  eval::TagMask tags = eval::kAllTags;

  bool matches(const Packet& p, int64_t in_port) const;
  std::string to_string() const;
};

class FlowTable {
 public:
  void add(FlowEntry entry);
  // Highest-priority matching entry visible under `tag_bit`; ties resolve
  // to the earliest-installed entry (switch-like behaviour).
  const FlowEntry* lookup(const Packet& p, int64_t in_port,
                          eval::TagMask tag_bit = eval::kAllTags) const;
  // Partition `tags` by best matching entry: invokes cb(entry, submask)
  // once per distinct winning entry and returns the mask of tags with no
  // matching entry. This is what lets multi-query backtesting walk one
  // shared path for all candidates that agree (Section 4.4).
  eval::TagMask partition(
      const Packet& p, int64_t in_port, eval::TagMask tags,
      const std::function<void(const FlowEntry&, eval::TagMask)>& cb) const;
  void clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  const std::vector<FlowEntry>& entries() const { return entries_; }

 private:
  const std::vector<size_t>& ordered() const;  // priority-desc, then age
  std::vector<FlowEntry> entries_;
  mutable std::vector<size_t> ordered_;  // lazily rebuilt after add()
};

}  // namespace mp::sdn
