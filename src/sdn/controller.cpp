#include "sdn/controller.h"

namespace mp::sdn {

NdlogController::NdlogController(Network& net, eval::Engine& engine,
                                 ControllerBindings bindings)
    : net_(net), engine_(&engine), bindings_(std::move(bindings)) {
  engine_->on_appear(bindings_.flow_table, [this](const eval::Tuple& t,
                                                  eval::TagMask tags) {
    if (!bindings_.decode_flow) return;
    auto spec = bindings_.decode_flow(t);
    if (!spec) return;
    spec->entry.tags = tags;
    net_.install(spec->sw, spec->entry);
    // Common controller idiom: release the buffered packet along the entry
    // just installed for the missing switch.
    if (bindings_.auto_packet_out && ctx_.active && spec->sw == ctx_.sw &&
        ctx_.packet != nullptr &&
        spec->entry.matches(*ctx_.packet, ctx_.in_port) &&
        spec->entry.action.kind == Action::Kind::Output) {
      net_.packet_out(spec->sw, spec->entry.action.port, tags & ctx_.tags);
    }
  });
  if (!bindings_.packet_out_table.empty()) {
    engine_->on_appear(bindings_.packet_out_table,
                       [this](const eval::Tuple& t, eval::TagMask tags) {
                         if (!bindings_.decode_packet_out) return;
                         auto spec = bindings_.decode_packet_out(t);
                         if (!spec) return;
                         net_.packet_out(spec->sw, spec->port, tags);
                       });
  }
}

void NdlogController::on_packet_in(int64_t sw, int64_t in_port, const Packet& p,
                                   eval::TagMask miss_tags) {
  ctx_ = MissContext{sw, &p, in_port, miss_tags, true};
  eval::Tuple t = bindings_.encode_packet_in(sw, in_port, p);
  engine_->insert(t, miss_tags);
  ctx_.active = false;
  ctx_.packet = nullptr;
}

}  // namespace mp::sdn
