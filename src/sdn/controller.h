// The controller proxy (Section 5.1): interposes between the NDlog engine
// and the simulated network, translating PacketIn events into tuples and
// derived tuples back into OpenFlow-style FlowMod / PacketOut operations.
// The translation is scenario-specific (each scenario defines its own
// table schemas), so the proxy is parameterized with encoder/decoder
// functions.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "eval/engine.h"
#include "sdn/network.h"

namespace mp::sdn {

struct InstallSpec {
  int64_t sw = 0;
  FlowEntry entry;
};

struct PacketOutSpec {
  int64_t sw = 0;
  int64_t port = 0;
};

struct ControllerBindings {
  // Encode a PacketIn as a (transient) tuple inserted into the engine.
  std::function<eval::Tuple(int64_t sw, int64_t in_port, const Packet&)>
      encode_packet_in;
  // Tables whose derivations install flow entries; decode may reject a
  // tuple (returns nullopt) e.g. when it targets an unknown switch.
  std::string flow_table = "FlowTable";
  std::function<std::optional<InstallSpec>(const eval::Tuple&)> decode_flow;
  // Optional packet-out channel.
  std::string packet_out_table;  // empty = program never releases packets
  std::function<std::optional<PacketOutSpec>(const eval::Tuple&)>
      decode_packet_out;
  // When true (default), a PacketIn whose processing installed at least
  // one flow entry for that switch also releases the buffered packet along
  // the installed entry's action (the common OpenFlow controller idiom of
  // sending FlowMod+PacketOut together). Scenario Q4 sets this to false:
  // its buggy program forgets the release.
  bool auto_packet_out = true;
};

class NdlogController : public ControllerIface {
 public:
  NdlogController(Network& net, eval::Engine& engine,
                  ControllerBindings bindings);

  void on_packet_in(int64_t sw, int64_t in_port, const Packet& p,
                    eval::TagMask miss_tags) override;

  eval::Engine& engine() { return *engine_; }

 private:
  Network& net_;
  eval::Engine* engine_;
  ControllerBindings bindings_;
  // Per-PacketIn bookkeeping for auto packet-out.
  struct MissContext {
    int64_t sw = 0;
    const Packet* packet = nullptr;
    int64_t in_port = 0;
    eval::TagMask tags = 0;
    bool active = false;
  };
  MissContext ctx_;
};

}  // namespace mp::sdn
