// Stanford-campus-like topology generator (Section 5.2): a proactively
// configured core of operational-zone/backbone routers plus edge networks
// with end hosts; switches 1..3 are reserved for the reactive scenario
// applications (S1 = ingress with an Internet uplink, S2/S3 = server
// switches). Static (proactive) routes use negative priorities so they
// survive Network::reset_dynamic_state().
#pragma once

#include <cstdint>
#include <vector>

#include "sdn/network.h"

namespace mp::sdn {

struct CampusOptions {
  size_t total_switches = 36;  // includes the 4 app switches
  size_t core_count = 12;      // operational-zone + backbone routers
  size_t hosts_per_edge = 6;
  uint64_t seed = 1;
};

struct Campus {
  std::vector<int64_t> app_switches;   // {1, 2, 3}
  std::vector<int64_t> core_switches;
  std::vector<int64_t> edge_switches;
  std::vector<int64_t> host_ips;       // campus end hosts (ips >= 100)
  size_t static_entries = 0;
};

// Builds the topology into `net` and installs proactive Dip-based routes
// between all campus hosts. Scenario hosts/servers are added by the
// scenario builders on the app switches afterwards.
Campus build_campus(Network& net, const CampusOptions& opt = {});

// Installs proactive Dip-based routes toward the given hosts on every
// switch except `exclude` (the reactive app switches: traffic toward the
// scenario servers is routed proactively through the core but handled
// reactively on the last hops, as in the paper's mixed configuration).
// Returns the number of entries installed.
size_t install_host_routes(Network& net, const std::vector<int64_t>& ips,
                           const std::vector<int64_t>& exclude = {});

}  // namespace mp::sdn
