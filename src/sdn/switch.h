// A simulated OpenFlow switch: a flow table plus a port map. Ports connect
// to other switches, to hosts, or to the outside ("external", e.g. the
// Internet uplink).
#pragma once

#include <cstdint>
#include <map>

#include "sdn/flowtable.h"

namespace mp::sdn {

struct PortPeer {
  enum class Kind : uint8_t { None, Switch, Host, External };
  Kind kind = Kind::None;
  int64_t peer = 0;       // switch id or host id
  int64_t peer_port = 0;  // ingress port on the peer switch
};

class Switch {
 public:
  Switch() = default;
  explicit Switch(int64_t id) : id_(id) {}

  int64_t id() const { return id_; }
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }

  void connect(int64_t port, PortPeer peer) { ports_[port] = peer; }
  const PortPeer* peer(int64_t port) const {
    auto it = ports_.find(port);
    return it == ports_.end() ? nullptr : &it->second;
  }
  const std::map<int64_t, PortPeer>& ports() const { return ports_; }

 private:
  int64_t id_ = 0;
  FlowTable table_;
  std::map<int64_t, PortPeer> ports_;
};

}  // namespace mp::sdn
