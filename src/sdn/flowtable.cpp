#include "sdn/flowtable.h"

#include <algorithm>

namespace mp::sdn {

bool FlowEntry::matches(const Packet& p, int64_t in_port) const {
  for (const MatchField& m : match) {
    if (m.value.is_wildcard()) continue;
    if (!m.value.is_int()) return false;
    if (field_of(p, in_port, m.field) != m.value.as_int()) return false;
  }
  return true;
}

std::string FlowEntry::to_string() const {
  std::string out = "[";
  for (size_t i = 0; i < match.size(); ++i) {
    if (i) out += ", ";
    out += std::string(mp::sdn::to_string(match[i].field)) + "=" +
           match[i].value.to_string();
  }
  out += "] prio=" + std::to_string(priority) + " -> " + action.to_string();
  return out;
}

void FlowTable::add(FlowEntry entry) {
  entries_.push_back(std::move(entry));
  ordered_.clear();
}

const std::vector<size_t>& FlowTable::ordered() const {
  if (ordered_.size() != entries_.size()) {
    ordered_.resize(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) ordered_[i] = i;
    std::stable_sort(ordered_.begin(), ordered_.end(), [this](size_t a, size_t b) {
      return entries_[a].priority > entries_[b].priority;
    });
  }
  return ordered_;
}

const FlowEntry* FlowTable::lookup(const Packet& p, int64_t in_port,
                                   eval::TagMask tag_bit) const {
  for (size_t idx : ordered()) {
    const FlowEntry& e = entries_[idx];
    if ((e.tags & tag_bit) == 0) continue;
    if (e.matches(p, in_port)) return &e;
  }
  return nullptr;
}

eval::TagMask FlowTable::partition(
    const Packet& p, int64_t in_port, eval::TagMask tags,
    const std::function<void(const FlowEntry&, eval::TagMask)>& cb) const {
  eval::TagMask remaining = tags;
  for (size_t idx : ordered()) {
    if (remaining == 0) break;
    const FlowEntry& e = entries_[idx];
    const eval::TagMask sub = remaining & e.tags;
    if (sub == 0) continue;
    if (!e.matches(p, in_port)) continue;
    cb(e, sub);
    remaining &= ~sub;
  }
  return remaining;
}

}  // namespace mp::sdn
