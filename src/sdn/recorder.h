// Runtime recording (Section 5.1 "Controllers" + Section 5.4 storage):
// every ingress packet and control-plane message is logged with a
// timestamp. The recorder feeds (a) backtest replay -- the recorded
// ingress workload is re-injected against candidate programs -- and
// (b) the storage-overhead accounting (the paper reports ~120-byte
// entries and MB/s-per-switch logging rates).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdn/packet.h"

namespace mp::sdn {

struct Injection {
  int64_t sw = 0;
  int64_t port = 0;
  Packet packet;
  uint64_t time = 0;
};

enum class CtrlMsgKind : uint8_t { PacketIn, FlowMod, PacketOut };

struct CtrlMsg {
  CtrlMsgKind kind = CtrlMsgKind::PacketIn;
  int64_t sw = 0;
  uint64_t time = 0;
};

class Recorder {
 public:
  void record_ingress(const Injection& inj) { ingress_.push_back(inj); }
  // Pre-size the ingress log for a batched replay of `n` more packets.
  void reserve_ingress(size_t n) { ingress_.reserve(ingress_.size() + n); }
  void record_ctrl(CtrlMsgKind kind, int64_t sw, uint64_t time) {
    ctrl_.push_back(CtrlMsg{kind, sw, time});
  }

  const std::vector<Injection>& ingress() const { return ingress_; }
  const std::vector<CtrlMsg>& ctrl() const { return ctrl_; }

  size_t packet_log_bytes() const {
    // Packet header + timestamp, as in the paper: ~120 bytes per entry.
    return ingress_.size() * 120;
  }
  size_t ctrl_log_bytes() const { return ctrl_.size() * 48; }
  void clear() {
    ingress_.clear();
    ctrl_.clear();
  }

 private:
  std::vector<Injection> ingress_;
  std::vector<CtrlMsg> ctrl_;
};

}  // namespace mp::sdn
