#include "sdn/network.h"

#include <algorithm>

namespace mp::sdn {

Switch& Network::add_switch(int64_t id) {
  auto [it, inserted] = switches_.try_emplace(id, Switch(id));
  return it->second;
}

Switch* Network::find_switch(int64_t id) {
  auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second;
}

const Switch* Network::find_switch(int64_t id) const {
  auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second;
}

Host& Network::add_host(Host h) {
  Switch& sw = add_switch(h.sw);
  sw.connect(h.port, PortPeer{PortPeer::Kind::Host, h.id, 0});
  hosts_.push_back(std::move(h));
  return hosts_.back();
}

const Host* Network::host_by_ip(int64_t ip) const {
  for (const Host& h : hosts_)
    if (h.ip == ip) return &h;
  return nullptr;
}

const Host* Network::host_by_id(int64_t id) const {
  for (const Host& h : hosts_)
    if (h.id == id) return &h;
  return nullptr;
}

void Network::link(int64_t sw_a, int64_t port_a, int64_t sw_b, int64_t port_b) {
  add_switch(sw_a).connect(port_a, PortPeer{PortPeer::Kind::Switch, sw_b, port_b});
  add_switch(sw_b).connect(port_b, PortPeer{PortPeer::Kind::Switch, sw_a, port_a});
}

void Network::external(int64_t sw, int64_t port) {
  add_switch(sw).connect(port, PortPeer{PortPeer::Kind::External, 0, 0});
}

void Network::install(int64_t sw, FlowEntry entry) {
  Switch* s = find_switch(sw);
  if (s == nullptr) return;
  ++stats_.flow_mods;
  recorder_.record_ctrl(CtrlMsgKind::FlowMod, sw, clock_);
  s->table().add(std::move(entry));
}

void Network::packet_out(int64_t sw, int64_t port, eval::TagMask tags) {
  ++stats_.packet_outs;
  recorder_.record_ctrl(CtrlMsgKind::PacketOut, sw, clock_);
  pending_outs_.push_back(PendingOut{sw, port, tags});
}

void Network::reset_dynamic_state() {
  for (auto& [id, sw] : switches_) {
    // Reactive (controller-installed) entries are dropped; static
    // (pre-configured) entries carry negative priority and survive.
    std::vector<FlowEntry> keep;
    for (const FlowEntry& e : sw.table().entries()) {
      if (e.priority < 0) keep.push_back(e);
    }
    sw.table().clear();
    for (FlowEntry& e : keep) sw.table().add(std::move(e));
  }
  stats_ = DeliveryStats{};
  tag_stats_.clear();
  pending_outs_.clear();
}

const DeliveryStats& Network::tag_stats(size_t tag_index) const {
  static const DeliveryStats kEmpty;
  auto it = tag_stats_.find(tag_index);
  return it == tag_stats_.end() ? kEmpty : it->second;
}

namespace {

struct WalkOutcome {
  enum class Kind : uint8_t { Delivered, Dropped, External, Miss } kind =
      Kind::Dropped;
  int64_t host = 0;   // delivered host id
  int64_t sw = 0;     // miss location
  int64_t port = 0;   // miss in-port
};

}  // namespace

void Network::inject_batch(const std::vector<Injection>& work, bool record,
                           bool preserve_stamped_times) {
  if (record) recorder_.reserve_ingress(work.size());
  for (const Injection& inj : work) {
    if (record && preserve_stamped_times && inj.time != 0) {
      recorder_.record_ingress(inj);
      inject(inj.sw, inj.port, inj.packet, /*record=*/false);
    } else {
      inject(inj.sw, inj.port, inj.packet, record);
    }
  }
}

void Network::inject(int64_t sw, int64_t in_port, const Packet& p, bool record) {
  ++clock_;
  if (record) recorder_.record_ingress(Injection{sw, in_port, p, clock_});

  // Accounts a terminal outcome for every tag in `mask`. Outside tag mode
  // this is a single bump; in tag mode each candidate world gets its own
  // statistics (so joint outcomes equal sequential ones exactly).
  auto account = [&](const WalkOutcome& o, eval::TagMask mask) {
    auto bump = [&](DeliveryStats& st) {
      switch (o.kind) {
        case WalkOutcome::Kind::Delivered: {
          const Host* h = host_by_id(o.host);
          const std::string name = h != nullptr ? h->name : "?";
          st.per_host.add(name);
          st.per_host_port.add(name + ":" + std::to_string(p.dpt));
          ++st.delivered;
          break;
        }
        case WalkOutcome::Kind::Dropped: ++st.dropped; break;
        case WalkOutcome::Kind::External: ++st.external; break;
        case WalkOutcome::Kind::Miss: break;
      }
    };
    if (!tag_mode_) {
      bump(stats_);
      return;
    }
    for (size_t b = 0; b < eval::kMaxTags; ++b) {
      if ((mask & (eval::TagMask{1} << b)) == 0) continue;
      bump(stats_);
      bump(tag_stats_[b]);
    }
  };

  using Where = std::pair<int64_t, int64_t>;
  // Frontier of disjoint tag groups: all tags in a group sit at the same
  // position and have behaved identically so far. In normal operation the
  // frontier is a single kAllTags group, so this is exactly the plain
  // walk; in multi-query mode groups split only where candidate flow
  // tables genuinely diverge (Section 4.4's shared computation).
  std::map<Where, eval::TagMask> frontier;
  frontier[{sw, in_port}] = tag_mode_ ? active_tags_ : eval::kAllTags;

  size_t hop_budget = 4096;
  for (int wave = 0; wave < 8 && !frontier.empty(); ++wave) {
    std::map<Where, eval::TagMask> misses;
    std::vector<std::pair<Where, eval::TagMask>> work(frontier.begin(),
                                                      frontier.end());
    frontier.clear();
    while (!work.empty()) {
      auto [where, tags] = work.back();
      work.pop_back();
      if (hop_budget-- == 0) {
        account({WalkOutcome::Kind::Dropped, 0, 0, 0}, tags);
        continue;
      }
      ++stats_.hops;
      Switch* s = find_switch(where.first);
      if (s == nullptr) {
        account({WalkOutcome::Kind::Dropped, 0, 0, 0}, tags);
        continue;
      }
      const eval::TagMask missed = s->table().partition(
          p, where.second, tags,
          [&](const FlowEntry& e, eval::TagMask sub) {
            if (e.action.kind == Action::Kind::Drop) {
              account({WalkOutcome::Kind::Dropped, 0, 0, 0}, sub);
              return;
            }
            const PortPeer* peer = s->peer(e.action.port);
            if (peer == nullptr || peer->kind == PortPeer::Kind::None) {
              account({WalkOutcome::Kind::Dropped, 0, 0, 0}, sub);
            } else if (peer->kind == PortPeer::Kind::Host) {
              account({WalkOutcome::Kind::Delivered, peer->peer, 0, 0}, sub);
            } else if (peer->kind == PortPeer::Kind::External) {
              account({WalkOutcome::Kind::External, 0, 0, 0}, sub);
            } else {
              work.emplace_back(Where{peer->peer, peer->peer_port}, sub);
            }
          });
      if (missed) misses[where] |= missed;
    }

    if (misses.empty()) break;
    if (controller_ == nullptr) {
      for (const auto& [where, mask] : misses) {
        account({WalkOutcome::Kind::Dropped, 0, 0, 0}, mask);
      }
      break;
    }
    for (const auto& [where, mask] : misses) {
      ++stats_.packet_ins;
      if (tag_mode_) {
        for (size_t b = 0; b < eval::kMaxTags; ++b) {
          if (mask & (eval::TagMask{1} << b)) ++tag_stats_[b].packet_ins;
        }
      }
      recorder_.record_ctrl(CtrlMsgKind::PacketIn, where.first, clock_);
      pending_outs_.clear();
      controller_->on_packet_in(where.first, where.second, p, mask);
      // Resume the released tags along their PacketOut ports; the rest of
      // the buffered packet's worlds are lost (Q4's failure mode).
      eval::TagMask unreleased = mask;
      for (const PendingOut& out : pending_outs_) {
        if (out.sw != where.first) continue;
        const eval::TagMask sub = unreleased & out.tags;
        if (sub == 0) continue;
        unreleased &= ~sub;
        Switch* s = find_switch(where.first);
        const PortPeer* peer = s != nullptr ? s->peer(out.port) : nullptr;
        if (peer == nullptr || peer->kind == PortPeer::Kind::None) {
          account({WalkOutcome::Kind::Dropped, 0, 0, 0}, sub);
        } else if (peer->kind == PortPeer::Kind::Host) {
          account({WalkOutcome::Kind::Delivered, peer->peer, 0, 0}, sub);
        } else if (peer->kind == PortPeer::Kind::External) {
          account({WalkOutcome::Kind::External, 0, 0, 0}, sub);
        } else {
          frontier[{peer->peer, peer->peer_port}] |= sub;
        }
      }
      if (unreleased) {
        account({WalkOutcome::Kind::Dropped, 0, 0, 0}, unreleased);
      }
    }
  }
}

}  // namespace mp::sdn
