#include "sdn/traffic.h"

#include "util/rng.h"

namespace mp::sdn {

uint64_t shard_seed(uint64_t base_seed, uint32_t shard) {
  // SplitMix64 finalizer over (base, shard): adjacent shard ids land far
  // apart in seed space, unlike base ^ shard.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void background_traffic(const Network& net, size_t packets, uint64_t seed,
                        const StreamSlice& slice, std::vector<Injection>& out,
                        const TrafficMix& mix) {
  const auto& hosts = net.hosts();
  if (hosts.size() < 2) return;
  Rng rng(seed);
  out.reserve(out.size() + packets / (slice.of == 0 ? 1 : slice.of) + 1);
  // The RNG sequence is drawn in full regardless of the slice, so every
  // slice of the same seed agrees on the same serial stream.
  for (size_t i = 0; i < packets; ++i) {
    const Host& src = hosts[rng.zipf(hosts.size())];
    const Host* dst = &hosts[rng.zipf(hosts.size())];
    if (dst->ip == src.ip) dst = &hosts[(rng.below(hosts.size() - 1) + 1) % hosts.size()];
    Packet p;
    p.sip = src.ip;
    p.dip = dst->ip;
    p.smc = src.mac;
    p.dmc = dst->mac;
    const double roll = rng.uniform();
    if (roll < mix.http) {
      p.dpt = 80;
      p.spt = 32768 + static_cast<int64_t>(rng.below(16384));
      p.proto = static_cast<int64_t>(Proto::Tcp);
    } else if (roll < mix.http + mix.dns) {
      p.dpt = 53;
      p.spt = 32768 + static_cast<int64_t>(rng.below(16384));
      p.proto = static_cast<int64_t>(Proto::Udp);
    } else {
      p.dpt = 0;
      p.spt = 0;
      p.proto = static_cast<int64_t>(Proto::Icmp);
    }
    p.bucket = p.sip % 2 + 1;
    if (!slice.contains(i)) continue;
    // Sliced generation stamps the 1-based global stream position: slices
    // merge back into the serial stream by this key, and
    // Network::inject_batch preserves it in the recorded ingress log.
    // Whole-stream generation leaves time = 0 (recorder clock semantics).
    out.push_back(Injection{src.sw, src.port, p,
                            slice.stamps_positions() ? i + 1 : 0});
  }
}

void background_traffic(const Network& net, size_t packets, uint64_t seed,
                        std::vector<Injection>& out, const TrafficMix& mix) {
  background_traffic(net, packets, seed, StreamSlice{}, out, mix);
}

std::vector<Injection> background_traffic(const Network& net, size_t packets,
                                          uint64_t seed,
                                          const TrafficMix& mix) {
  std::vector<Injection> out;
  background_traffic(net, packets, seed, out, mix);
  return out;
}

void ingress_traffic(const IngressOptions& opt, const StreamSlice& slice,
                     std::vector<Injection>& out) {
  Rng rng(opt.seed);
  const size_t total = opt.flows * opt.packets_per_flow;
  out.reserve(out.size() + total / (slice.of == 0 ? 1 : slice.of) + 1);
  size_t pos = 0;
  for (size_t f = 0; f < opt.flows; ++f) {
    Packet p;
    p.sip = opt.src_ip_base + static_cast<int64_t>(rng.below(opt.src_ip_count));
    p.dip = opt.dst_ip;
    p.smc = p.sip + 100000;
    p.dmc = opt.dst_ip + 100000;
    p.spt = 32768 + static_cast<int64_t>(rng.below(16384));
    p.dpt = opt.dpt;
    p.proto = opt.dpt == 53 ? static_cast<int64_t>(Proto::Udp)
                            : static_cast<int64_t>(Proto::Tcp);
    p.bucket = p.sip % static_cast<int64_t>(opt.buckets) + 1;
    for (size_t k = 0; k < opt.packets_per_flow; ++k, ++pos) {
      if (!slice.contains(pos)) continue;
      out.push_back(Injection{opt.ingress_switch, opt.ingress_port, p,
                              slice.stamps_positions() ? pos + 1 : 0});
    }
  }
}

void ingress_traffic(const IngressOptions& opt, std::vector<Injection>& out) {
  ingress_traffic(opt, StreamSlice{}, out);
}

std::vector<Injection> ingress_traffic(const IngressOptions& opt) {
  std::vector<Injection> out;
  ingress_traffic(opt, out);
  return out;
}

void replay(Network& net, const std::vector<Injection>& work, bool record) {
  net.inject_batch(work, record);
}

}  // namespace mp::sdn
