#include "sdn/traffic.h"

#include "util/rng.h"

namespace mp::sdn {

void background_traffic(const Network& net, size_t packets, uint64_t seed,
                        std::vector<Injection>& out, const TrafficMix& mix) {
  const auto& hosts = net.hosts();
  if (hosts.size() < 2) return;
  Rng rng(seed);
  out.reserve(out.size() + packets);
  for (size_t i = 0; i < packets; ++i) {
    const Host& src = hosts[rng.zipf(hosts.size())];
    const Host* dst = &hosts[rng.zipf(hosts.size())];
    if (dst->ip == src.ip) dst = &hosts[(rng.below(hosts.size() - 1) + 1) % hosts.size()];
    Packet p;
    p.sip = src.ip;
    p.dip = dst->ip;
    p.smc = src.mac;
    p.dmc = dst->mac;
    const double roll = rng.uniform();
    if (roll < mix.http) {
      p.dpt = 80;
      p.spt = 32768 + static_cast<int64_t>(rng.below(16384));
      p.proto = static_cast<int64_t>(Proto::Tcp);
    } else if (roll < mix.http + mix.dns) {
      p.dpt = 53;
      p.spt = 32768 + static_cast<int64_t>(rng.below(16384));
      p.proto = static_cast<int64_t>(Proto::Udp);
    } else {
      p.dpt = 0;
      p.spt = 0;
      p.proto = static_cast<int64_t>(Proto::Icmp);
    }
    p.bucket = p.sip % 2 + 1;
    out.push_back(Injection{src.sw, src.port, p, 0});
  }
}

std::vector<Injection> background_traffic(const Network& net, size_t packets,
                                          uint64_t seed,
                                          const TrafficMix& mix) {
  std::vector<Injection> out;
  background_traffic(net, packets, seed, out, mix);
  return out;
}

void ingress_traffic(const IngressOptions& opt, std::vector<Injection>& out) {
  Rng rng(opt.seed);
  out.reserve(out.size() + opt.flows * opt.packets_per_flow);
  for (size_t f = 0; f < opt.flows; ++f) {
    Packet p;
    p.sip = opt.src_ip_base + static_cast<int64_t>(rng.below(opt.src_ip_count));
    p.dip = opt.dst_ip;
    p.smc = p.sip + 100000;
    p.dmc = opt.dst_ip + 100000;
    p.spt = 32768 + static_cast<int64_t>(rng.below(16384));
    p.dpt = opt.dpt;
    p.proto = opt.dpt == 53 ? static_cast<int64_t>(Proto::Udp)
                            : static_cast<int64_t>(Proto::Tcp);
    p.bucket = p.sip % static_cast<int64_t>(opt.buckets) + 1;
    for (size_t k = 0; k < opt.packets_per_flow; ++k) {
      out.push_back(Injection{opt.ingress_switch, opt.ingress_port, p, 0});
    }
  }
}

std::vector<Injection> ingress_traffic(const IngressOptions& opt) {
  std::vector<Injection> out;
  ingress_traffic(opt, out);
  return out;
}

void replay(Network& net, const std::vector<Injection>& work, bool record) {
  net.inject_batch(work, record);
}

}  // namespace mp::sdn
