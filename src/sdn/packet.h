// Packets and header fields for the simulated network. The simulator is
// the stand-in for Mininet + OpenFlow switches (see DESIGN.md): the repair
// pipeline only observes control-plane messages (PacketIn / FlowMod /
// PacketOut) and per-host delivery counts, which this model produces.
#pragma once

#include <cstdint>
#include <string>

#include "eval/tuple.h"
#include "util/value.h"

namespace mp::sdn {

enum class Proto : int64_t { Tcp = 6, Udp = 17, Icmp = 1 };

struct Packet {
  int64_t sip = 0;   // source IP (host number)
  int64_t dip = 0;   // destination IP
  int64_t smc = 0;   // source MAC
  int64_t dmc = 0;   // destination MAC
  int64_t spt = 0;   // source L4 port
  int64_t dpt = 0;   // destination L4 port (80 = HTTP, 53 = DNS)
  int64_t proto = static_cast<int64_t>(Proto::Tcp);
  int64_t bucket = 0;  // load-balancer source bucket (derived from sip)

  std::string to_string() const;
};

enum class Field : uint8_t {
  InPort,
  Sip,
  Dip,
  Smc,
  Dmc,
  Spt,
  Dpt,
  Proto,
  Bucket,
};

const char* to_string(Field f);

// Field accessor; `in_port` is pipeline metadata, not part of the packet.
int64_t field_of(const Packet& p, int64_t in_port, Field f);

}  // namespace mp::sdn
