#include "sdn/packet.h"

namespace mp::sdn {

std::string Packet::to_string() const {
  return "pkt(sip=" + std::to_string(sip) + ", dip=" + std::to_string(dip) +
         ", dpt=" + std::to_string(dpt) + ", spt=" + std::to_string(spt) +
         ", proto=" + std::to_string(proto) + ")";
}

const char* to_string(Field f) {
  switch (f) {
    case Field::InPort: return "in_port";
    case Field::Sip: return "sip";
    case Field::Dip: return "dip";
    case Field::Smc: return "smc";
    case Field::Dmc: return "dmc";
    case Field::Spt: return "spt";
    case Field::Dpt: return "dpt";
    case Field::Proto: return "proto";
    case Field::Bucket: return "bucket";
  }
  return "?";
}

int64_t field_of(const Packet& p, int64_t in_port, Field f) {
  switch (f) {
    case Field::InPort: return in_port;
    case Field::Sip: return p.sip;
    case Field::Dip: return p.dip;
    case Field::Smc: return p.smc;
    case Field::Dmc: return p.dmc;
    case Field::Spt: return p.spt;
    case Field::Dpt: return p.dpt;
    case Field::Proto: return p.proto;
    case Field::Bucket: return p.bucket;
  }
  return 0;
}

}  // namespace mp::sdn
