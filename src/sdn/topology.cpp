#include "sdn/topology.h"

#include <map>
#include <queue>

#include "util/rng.h"

namespace mp::sdn {

namespace {

// Port allocator: gives each new link a fresh port per switch.
class Ports {
 public:
  int64_t next(int64_t sw) { return ++next_[sw]; }
  void reserve(int64_t sw, int64_t up_to) {
    next_[sw] = std::max(next_[sw], up_to);
  }

 private:
  std::map<int64_t, int64_t> next_;
};

std::vector<int64_t> all_switch_ids(const Network& net) {
  std::vector<int64_t> out;
  // Switch ids are the map keys; walk via hosts+links is not enough, so we
  // conservatively probe the contiguous id ranges used by the builder.
  for (int64_t id = 1; id < 4096; ++id) {
    if (net.find_switch(id) != nullptr) out.push_back(id);
  }
  return out;
}

// next_hop[s] = egress port at s toward `dest_sw`, via BFS.
std::map<int64_t, int64_t> bfs_ports_toward(const Network& net,
                                            int64_t dest_sw) {
  std::map<int64_t, int64_t> next_hop;
  std::map<int64_t, int64_t> toward;  // sw -> neighbour switch on path
  std::queue<int64_t> q;
  std::map<int64_t, bool> seen;
  q.push(dest_sw);
  seen[dest_sw] = true;
  while (!q.empty()) {
    const int64_t cur = q.front();
    q.pop();
    const Switch* s = net.find_switch(cur);
    if (s == nullptr) continue;
    for (const auto& [port, peer] : s->ports()) {
      if (peer.kind != PortPeer::Kind::Switch) continue;
      if (seen.count(peer.peer)) continue;
      seen[peer.peer] = true;
      toward[peer.peer] = cur;
      q.push(peer.peer);
    }
  }
  for (const auto& [sw, via] : toward) {
    const Switch* s = net.find_switch(sw);
    if (s == nullptr) continue;
    for (const auto& [port, peer] : s->ports()) {
      if (peer.kind == PortPeer::Kind::Switch && peer.peer == via) {
        next_hop[sw] = port;
        break;
      }
    }
  }
  return next_hop;
}

}  // namespace

size_t install_host_routes(Network& net, const std::vector<int64_t>& ips,
                           const std::vector<int64_t>& exclude) {
  size_t installed = 0;
  const std::vector<int64_t> switches = all_switch_ids(net);
  auto excluded = [&](int64_t sw) {
    for (int64_t e : exclude)
      if (e == sw) return true;
    return false;
  };
  for (int64_t ip : ips) {
    const Host* h = net.host_by_ip(ip);
    if (h == nullptr) continue;
    const auto next_hop = bfs_ports_toward(net, h->sw);
    for (int64_t sw : switches) {
      if (excluded(sw)) continue;
      FlowEntry e;
      e.match.push_back({Field::Dip, Value(h->ip)});
      e.priority = -1;  // static / proactive
      if (sw == h->sw) {
        e.action = Action::output(h->port);
      } else {
        auto it = next_hop.find(sw);
        if (it == next_hop.end()) continue;
        e.action = Action::output(it->second);
      }
      Switch* s = net.find_switch(sw);
      if (s != nullptr) {
        s->table().add(std::move(e));
        ++installed;
      }
    }
  }
  return installed;
}

Campus build_campus(Network& net, const CampusOptions& opt) {
  Campus campus;
  Ports ports;
  Rng rng(opt.seed);

  const size_t core_count = std::max<size_t>(2, opt.core_count);
  // App switches 1..4 (S4 is the guest/branch switch used by scenarios).
  for (int64_t s = 1; s <= 4; ++s) {
    net.add_switch(s);
    campus.app_switches.push_back(s);
    ports.reserve(s, 8);  // low ports are host/app-facing
  }
  net.external(1, 1);

  // Core ring with cross-chords (backbone + operational zone routers).
  const int64_t core_base = 10;
  for (size_t i = 0; i < core_count; ++i) {
    campus.core_switches.push_back(core_base + static_cast<int64_t>(i));
    net.add_switch(campus.core_switches.back());
  }
  for (size_t i = 0; i < core_count; ++i) {
    const int64_t a = campus.core_switches[i];
    const int64_t b = campus.core_switches[(i + 1) % core_count];
    net.link(a, ports.next(a), b, ports.next(b));
  }
  for (size_t i = 0; i + core_count / 2 < core_count; i += 4) {
    const int64_t a = campus.core_switches[i];
    const int64_t b = campus.core_switches[i + core_count / 2];
    net.link(a, ports.next(a), b, ports.next(b));
  }
  // App network attachment points.
  net.link(1, ports.next(1), campus.core_switches[0],
           ports.next(campus.core_switches[0]));
  net.link(4, ports.next(4), campus.core_switches[1 % core_count],
           ports.next(campus.core_switches[1 % core_count]));

  // Edge switches fill the remaining budget, round-robin on the cores.
  const size_t used = 4 + core_count;
  const size_t edge_count =
      opt.total_switches > used ? opt.total_switches - used : 0;
  int64_t next_id = core_base + static_cast<int64_t>(core_count);
  for (size_t e = 0; e < edge_count; ++e) {
    const int64_t id = next_id++;
    campus.edge_switches.push_back(id);
    net.add_switch(id);
    const int64_t core = campus.core_switches[e % core_count];
    net.link(id, ports.next(id), core, ports.next(core));
  }

  // Campus end hosts on the edges (ips >= 100).
  int64_t next_ip = 100;
  int64_t next_host_id = 1000;
  for (int64_t edge : campus.edge_switches) {
    for (size_t h = 0; h < opt.hosts_per_edge; ++h) {
      Host host;
      host.id = next_host_id++;
      host.ip = next_ip++;
      host.mac = host.ip + 100000;
      host.name = "E" + std::to_string(host.ip);
      host.sw = edge;
      host.port = ports.next(edge);
      net.add_host(host);
      campus.host_ips.push_back(host.ip);
    }
  }

  campus.static_entries = install_host_routes(net, campus.host_ips, {});
  return campus;
}

}  // namespace mp::sdn
