// Trema stand-in (Section 5.8): a small imperative controller language.
// A program is a packet_in handler: a list of guarded blocks; each block's
// guard is a conjunction of comparisons over the switch id and packet
// fields, and its body installs flow entries (send_flow_mod_add) and/or
// releases the buffered packet (send_packet_out). This covers the part of
// Ruby/Trema the paper's 42-rule meta model describes (Appendix B.2):
// conditionals, expressions over packet attributes, and the flow-mod API.
//
// The repair space mirrors the meta model: literals and comparison
// operators in guards, literal output ports, guard deletion, and manual
// installs. Trema being imperative changes the *frontend*, not the repair
// pipeline: candidates are backtested through the same simulator and KS
// gate as NDlog ones.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ndlog/ast.h"  // CmpOp
#include "sdn/network.h"

namespace mp::imp {

struct Operand {
  enum class Kind : uint8_t { Lit, SwitchId, Field };
  Kind kind = Kind::Lit;
  int64_t lit = 0;
  sdn::Field field = sdn::Field::Dpt;

  static Operand literal(int64_t v) { return {Kind::Lit, v, sdn::Field::Dpt}; }
  static Operand switch_id() { return {Kind::SwitchId, 0, sdn::Field::Dpt}; }
  static Operand pkt(sdn::Field f) { return {Kind::Field, 0, f}; }
  int64_t eval(int64_t sw, int64_t in_port, const sdn::Packet& p) const;
  std::string to_string() const;
};

struct Cond {
  Operand lhs;
  ndlog::CmpOp op = ndlog::CmpOp::Eq;
  Operand rhs;
  bool eval(int64_t sw, int64_t in_port, const sdn::Packet& p) const;
  std::string to_string() const;
};

struct Install {
  // Match fields copied from the packet plus the literal output port.
  std::vector<sdn::Field> match_fields;
  Operand out;                // usually a literal port
  bool send_packet_out = true;
  std::string to_string() const;
};

struct Block {
  std::vector<Cond> guard;    // conjunction
  std::vector<Install> body;
  std::string to_string() const;
};

struct Program {
  std::string name;
  std::vector<Block> blocks;
  std::string to_string() const;
  size_t site_count() const;  // mutable syntactic sites (for meta counts)
};

// Controller executing an imp program reactively.
class ImpController : public sdn::ControllerIface {
 public:
  ImpController(sdn::Network& net, Program program)
      : net_(&net), program_(std::move(program)) {}
  void on_packet_in(int64_t sw, int64_t in_port, const sdn::Packet& p,
                    eval::TagMask miss_tags) override;
  const Program& program() const { return program_; }
  size_t packet_ins() const { return packet_ins_; }
  // Source ips that triggered a PacketIn (Q5's learning check).
  const std::vector<int64_t>& learned() const { return learned_; }

 private:
  sdn::Network* net_;
  Program program_;
  size_t packet_ins_ = 0;
  std::vector<int64_t> learned_;
};

// --- Repair space -----------------------------------------------------

// A symptom for imperative programs: a concrete packet at a switch that
// should have been forwarded to `want_port` but was not.
struct ImpSymptom {
  int64_t sw = 0;
  int64_t in_port = 0;
  sdn::Packet packet;
  int64_t want_port = 0;
};

enum class ImpChangeKind : uint8_t {
  ChangeLit,      // guard literal
  ChangeOp,       // guard comparison operator
  DeleteCond,     // drop one conjunct
  ChangeOut,      // output-port literal
  AddPacketOut,   // add the forgotten send_packet_out (Q4)
  AddMatchField,  // add a match field to an install (Q5)
  ManualInstall,  // operator-installed entry
};

struct ImpChange {
  ImpChangeKind kind = ImpChangeKind::ChangeLit;
  size_t block = 0;
  size_t cond = 0;
  size_t install = 0;
  int64_t new_lit = 0;
  ndlog::CmpOp new_op = ndlog::CmpOp::Eq;
  sdn::Field new_field = sdn::Field::Sip;
  sdn::FlowEntry manual;
  double cost = 0.0;
  std::string describe(const Program& p) const;
  Program apply(const Program& p) const;
};

// Cost-ordered candidate enumeration driven by the symptom: for each block
// whose body could produce the wanted forwarding, propose minimal guard
// edits (the imperative analogue of the meta-provenance expansion).
std::vector<ImpChange> generate_repairs(const Program& p,
                                        const ImpSymptom& symptom,
                                        size_t max_candidates = 16);

}  // namespace mp::imp
