#include "langs/imp/imp.h"

#include <algorithm>

namespace mp::imp {

int64_t Operand::eval(int64_t sw, int64_t in_port, const sdn::Packet& p) const {
  switch (kind) {
    case Kind::Lit: return lit;
    case Kind::SwitchId: return sw;
    case Kind::Field: return sdn::field_of(p, in_port, field);
  }
  return 0;
}

std::string Operand::to_string() const {
  switch (kind) {
    case Kind::Lit: return std::to_string(lit);
    case Kind::SwitchId: return "sw";
    case Kind::Field: return std::string("pkt.") + sdn::to_string(field);
  }
  return "?";
}

bool Cond::eval(int64_t sw, int64_t in_port, const sdn::Packet& p) const {
  return ndlog::cmp_eval(op, Value(lhs.eval(sw, in_port, p)),
                         Value(rhs.eval(sw, in_port, p)));
}

std::string Cond::to_string() const {
  return lhs.to_string() + " " + ndlog::to_string(op) + " " + rhs.to_string();
}

std::string Install::to_string() const {
  std::string out = "install(match=[";
  for (size_t i = 0; i < match_fields.size(); ++i) {
    if (i) out += ",";
    out += sdn::to_string(match_fields[i]);
  }
  out += "], out=" + this->out.to_string() + ")";
  if (send_packet_out) out += " + packet_out";
  return out;
}

std::string Block::to_string() const {
  std::string out = "if (";
  for (size_t i = 0; i < guard.size(); ++i) {
    if (i) out += " && ";
    out += guard[i].to_string();
  }
  out += ") { ";
  for (const auto& in : body) out += in.to_string() + "; ";
  out += "}";
  return out;
}

std::string Program::to_string() const {
  std::string out = "def packet_in(sw, pkt):  # " + name + "\n";
  for (const auto& b : blocks) out += "  " + b.to_string() + "\n";
  return out;
}

size_t Program::site_count() const {
  size_t n = 0;
  for (const auto& b : blocks) {
    n += b.guard.size() * 2;  // literal + operator per conjunct
    n += b.body.size();       // output port per install
  }
  return n;
}

void ImpController::on_packet_in(int64_t sw, int64_t in_port,
                                 const sdn::Packet& p,
                                 eval::TagMask miss_tags) {
  ++packet_ins_;
  if (std::find(learned_.begin(), learned_.end(), p.sip) == learned_.end()) {
    learned_.push_back(p.sip);
  }
  for (const Block& b : program_.blocks) {
    bool ok = true;
    for (const Cond& c : b.guard) {
      if (!c.eval(sw, in_port, p)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (const Install& in : b.body) {
      sdn::FlowEntry e;
      for (sdn::Field f : in.match_fields) {
        e.match.push_back({f, Value(sdn::field_of(p, in_port, f))});
      }
      e.priority = 0;
      e.tags = miss_tags;
      const int64_t port = in.out.eval(sw, in_port, p);
      e.action = port < 0 ? sdn::Action::drop() : sdn::Action::output(port);
      net_->install(sw, e);
      if (in.send_packet_out && port >= 0) {
        net_->packet_out(sw, port, miss_tags);
      }
    }
  }
}

std::string ImpChange::describe(const Program& p) const {
  auto guard_str = [&](const Cond& c) { return c.to_string(); };
  switch (kind) {
    case ImpChangeKind::ChangeLit: {
      const Cond& c = p.blocks[block].guard[cond];
      Cond after = c;
      after.rhs = Operand::literal(new_lit);
      return "Changing " + guard_str(c) + " to " + guard_str(after);
    }
    case ImpChangeKind::ChangeOp: {
      const Cond& c = p.blocks[block].guard[cond];
      Cond after = c;
      after.op = new_op;
      return "Changing " + guard_str(c) + " to " + guard_str(after);
    }
    case ImpChangeKind::DeleteCond:
      return "Deleting guard " + guard_str(p.blocks[block].guard[cond]);
    case ImpChangeKind::ChangeOut:
      return "Changing output port to " + std::to_string(new_lit);
    case ImpChangeKind::AddPacketOut:
      return "Adding the missing send_packet_out call";
    case ImpChangeKind::AddMatchField:
      return std::string("Adding match field ") + sdn::to_string(new_field) +
             " to " + p.blocks[block].body[install].to_string();
    case ImpChangeKind::ManualInstall:
      return "Manually installing a flow entry";
  }
  return "?";
}

Program ImpChange::apply(const Program& p) const {
  Program out = p;
  switch (kind) {
    case ImpChangeKind::ChangeLit:
      out.blocks[block].guard[cond].rhs = Operand::literal(new_lit);
      break;
    case ImpChangeKind::ChangeOp:
      out.blocks[block].guard[cond].op = new_op;
      break;
    case ImpChangeKind::DeleteCond:
      out.blocks[block].guard.erase(out.blocks[block].guard.begin() +
                                    static_cast<long>(cond));
      break;
    case ImpChangeKind::ChangeOut:
      out.blocks[block].body[install].out = Operand::literal(new_lit);
      break;
    case ImpChangeKind::AddPacketOut:
      out.blocks[block].body[install].send_packet_out = true;
      break;
    case ImpChangeKind::AddMatchField:
      out.blocks[block].body[install].match_fields.push_back(new_field);
      break;
    case ImpChangeKind::ManualInstall:
      break;  // applied by the harness
  }
  return out;
}

std::vector<ImpChange> generate_repairs(const Program& p,
                                        const ImpSymptom& symptom,
                                        size_t max_candidates) {
  std::vector<ImpChange> out;
  // Manual install first (cheapest structural repair, as in Table 2's A).
  {
    ImpChange c;
    c.kind = ImpChangeKind::ManualInstall;
    c.manual.match = {{sdn::Field::Dpt, Value(symptom.packet.dpt)},
                      {sdn::Field::Sip, Value(symptom.packet.sip)}};
    c.manual.priority = 0;
    c.manual.action = sdn::Action::output(symptom.want_port);
    c.cost = 2.0;
    out.push_back(std::move(c));
  }
  for (size_t bi = 0; bi < p.blocks.size(); ++bi) {
    const Block& b = p.blocks[bi];
    // The block must be capable of producing the wanted output.
    bool relevant = false;
    for (const Install& in : b.body) {
      const int64_t port =
          in.out.eval(symptom.sw, symptom.in_port, symptom.packet);
      if (port == symptom.want_port) relevant = true;
    }
    if (!relevant) continue;
    // Find the failing conjuncts for the symptom packet.
    std::vector<size_t> failing;
    for (size_t ci = 0; ci < b.guard.size(); ++ci) {
      if (!b.guard[ci].eval(symptom.sw, symptom.in_port, symptom.packet)) {
        failing.push_back(ci);
      }
    }
    if (failing.empty()) {
      // The block already fires for the symptom packet: the bug is in its
      // body. Propose the forgotten packet_out (Q4) and finer match
      // fields (Q5) for each install.
      for (size_t ii = 0; ii < b.body.size(); ++ii) {
        if (!b.body[ii].send_packet_out) {
          ImpChange ch;
          ch.kind = ImpChangeKind::AddPacketOut;
          ch.block = bi;
          ch.install = ii;
          ch.cost = 3.0;
          out.push_back(std::move(ch));
        }
        for (sdn::Field f : {sdn::Field::Sip, sdn::Field::Spt,
                             sdn::Field::Smc, sdn::Field::Proto}) {
          bool present = false;
          for (sdn::Field g : b.body[ii].match_fields) {
            if (g == f) present = true;
          }
          if (present) continue;
          ImpChange ch;
          ch.kind = ImpChangeKind::AddMatchField;
          ch.block = bi;
          ch.install = ii;
          ch.new_field = f;
          ch.cost = 2.5;
          out.push_back(std::move(ch));
        }
      }
      continue;
    }
    if (failing.size() != 1) continue;  // single-edit repairs only
    const size_t ci = failing[0];
    const Cond& c = b.guard[ci];
    const int64_t lv = c.lhs.eval(symptom.sw, symptom.in_port, symptom.packet);
    // (a) literal rewrite (rhs literal only, as in real Trema conditions).
    if (c.rhs.kind == Operand::Kind::Lit) {
      int64_t wanted = lv;
      switch (c.op) {
        case ndlog::CmpOp::Lt: wanted = lv + 1; break;
        case ndlog::CmpOp::Gt: wanted = lv - 1; break;
        default: wanted = lv; break;
      }
      if (wanted != c.rhs.lit) {
        ImpChange ch;
        ch.kind = ImpChangeKind::ChangeLit;
        ch.block = bi;
        ch.cond = ci;
        ch.new_lit = wanted;
        ch.cost = std::llabs(wanted - c.rhs.lit) == 1 ? 1.0 : 2.0;
        out.push_back(std::move(ch));
      }
    }
    // (b) operator rewrite.
    const int64_t rv = c.rhs.eval(symptom.sw, symptom.in_port, symptom.packet);
    for (ndlog::CmpOp op : ndlog::all_cmp_ops()) {
      if (op == c.op) continue;
      if (!ndlog::cmp_eval(op, Value(lv), Value(rv))) continue;
      ImpChange ch;
      ch.kind = ImpChangeKind::ChangeOp;
      ch.block = bi;
      ch.cond = ci;
      ch.new_op = op;
      ch.cost = 2.0;
      out.push_back(std::move(ch));
    }
    // (c) guard deletion.
    {
      ImpChange ch;
      ch.kind = ImpChangeKind::DeleteCond;
      ch.block = bi;
      ch.cond = ci;
      ch.cost = 4.0;
      out.push_back(std::move(ch));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ImpChange& a, const ImpChange& b) { return a.cost < b.cost; });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace mp::imp
