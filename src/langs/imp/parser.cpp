#include "langs/imp/parser.h"

#include <cctype>
#include <vector>

namespace mp::imp {

namespace {

struct Tok {
  enum class Kind : uint8_t { Ident, Int, Punct, End } kind = Kind::End;
  std::string text;
  int64_t ival = 0;
};

std::vector<Tok> lex(std::string_view src) {
  std::vector<Tok> out;
  size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      out.push_back({Tok::Kind::Ident, std::string(src.substr(start, i - start)), 0});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      ++i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      Tok t{Tok::Kind::Int, std::string(src.substr(start, i - start)), 0};
      t.ival = std::stoll(t.text);
      out.push_back(std::move(t));
      continue;
    }
    // Two-character punctuation first.
    static const char* two[] = {"==", "!=", "<=", ">=", "&&"};
    bool matched = false;
    for (const char* op : two) {
      if (src.substr(i, 2) == op) {
        out.push_back({Tok::Kind::Punct, op, 0});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.push_back({Tok::Kind::Punct, std::string(1, c), 0});
    ++i;
  }
  out.push_back({Tok::Kind::End, "", 0});
  return out;
}

sdn::Field field_by_name(const std::string& name) {
  for (sdn::Field f : {sdn::Field::InPort, sdn::Field::Sip, sdn::Field::Dip,
                       sdn::Field::Smc, sdn::Field::Dmc, sdn::Field::Spt,
                       sdn::Field::Dpt, sdn::Field::Proto, sdn::Field::Bucket}) {
    if (name == sdn::to_string(f)) return f;
  }
  throw ImpParseError("unknown packet field: " + name);
}

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  Program parse() {
    Program p;
    expect_ident("def");
    p.name = expect_ident();
    expect_punct("(");
    expect_ident("sw");
    expect_punct(",");
    expect_ident("pkt");
    expect_punct(")");
    expect_punct("{");
    while (!at_punct("}")) p.blocks.push_back(block());
    expect_punct("}");
    return p;
  }

 private:
  const Tok& cur() const { return toks_[pos_]; }
  bool at_punct(const std::string& s) const {
    return cur().kind == Tok::Kind::Punct && cur().text == s;
  }
  bool at_ident(const std::string& s) const {
    return cur().kind == Tok::Kind::Ident && cur().text == s;
  }
  void expect_punct(const std::string& s) {
    if (!at_punct(s)) throw ImpParseError("expected '" + s + "', found '" + cur().text + "'");
    ++pos_;
  }
  std::string expect_ident(const std::string& want = "") {
    if (cur().kind != Tok::Kind::Ident ||
        (!want.empty() && cur().text != want)) {
      throw ImpParseError("expected identifier" +
                          (want.empty() ? "" : " '" + want + "'") +
                          ", found '" + cur().text + "'");
    }
    return toks_[pos_++].text;
  }

  Operand operand() {
    if (cur().kind == Tok::Kind::Int) {
      return Operand::literal(toks_[pos_++].ival);
    }
    if (at_ident("sw")) {
      ++pos_;
      return Operand::switch_id();
    }
    expect_ident("pkt");
    expect_punct(".");
    return Operand::pkt(field_by_name(expect_ident()));
  }

  Cond cond() {
    Cond c;
    c.lhs = operand();
    const std::string op = cur().text;
    if (cur().kind != Tok::Kind::Punct) throw ImpParseError("expected comparison");
    ++pos_;
    if (op == "==") c.op = ndlog::CmpOp::Eq;
    else if (op == "!=") c.op = ndlog::CmpOp::Ne;
    else if (op == "<") c.op = ndlog::CmpOp::Lt;
    else if (op == ">") c.op = ndlog::CmpOp::Gt;
    else if (op == "<=") c.op = ndlog::CmpOp::Le;
    else if (op == ">=") c.op = ndlog::CmpOp::Ge;
    else throw ImpParseError("unknown comparison '" + op + "'");
    c.rhs = operand();
    return c;
  }

  Install install() {
    Install in;
    expect_ident("install");
    expect_punct("(");
    expect_ident("match");
    expect_punct("(");
    in.match_fields.push_back(field_by_name(expect_ident()));
    while (at_punct(",")) {
      ++pos_;
      in.match_fields.push_back(field_by_name(expect_ident()));
    }
    expect_punct(")");
    expect_punct(",");
    expect_ident("out");
    expect_punct("(");
    if (cur().kind != Tok::Kind::Int) throw ImpParseError("out() takes a port literal");
    in.out = Operand::literal(toks_[pos_++].ival);
    expect_punct(")");
    if (at_punct(",")) {
      ++pos_;
      expect_ident("no_packet_out");
      in.send_packet_out = false;
    }
    expect_punct(")");
    expect_punct(";");
    return in;
  }

  Block block() {
    Block b;
    expect_ident("if");
    expect_punct("(");
    b.guard.push_back(cond());
    while (at_punct("&&")) {
      ++pos_;
      b.guard.push_back(cond());
    }
    expect_punct(")");
    expect_punct("{");
    while (at_ident("install")) b.body.push_back(install());
    expect_punct("}");
    return b;
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view src) { return Parser(src).parse(); }

}  // namespace mp::imp
