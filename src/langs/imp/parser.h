// Text frontend for the Trema stand-in. Grammar:
//
//   program  := "def" "packet_in" "(" "sw" "," "pkt" ")" "{" block* "}"
//   block    := "if" "(" cond ("&&" cond)* ")" "{" install* "}"
//   cond     := operand cmp operand
//   operand  := int | "sw" | "pkt" "." field
//   install  := "install" "(" "match" "(" field ("," field)* ")" ","
//               "out" "(" int ")" [ "," "no_packet_out" ] ")" ";"
//   field    := in_port|sip|dip|smc|dmc|spt|dpt|proto|bucket
#pragma once

#include <stdexcept>
#include <string_view>

#include "langs/imp/imp.h"

namespace mp::imp {

class ImpParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

Program parse_program(std::string_view src);

}  // namespace mp::imp
