#include "langs/table3.h"

#include <functional>
#include <memory>

#include "backtest/metrics.h"
#include "langs/imp/imp.h"
#include "langs/netcore/netcore.h"
#include "scenarios/scenario.h"

namespace mp::langs {

namespace {

using backtest::ReplayOutcome;
using sdn::Field;

// A language-agnostic run: build the scenario topology + workload (reused
// from the NDlog scenarios so all three languages see identical networks),
// drive the given controller factory, return metrics.
struct LangRun {
  ReplayOutcome outcome;
  std::vector<int64_t> learned;
};

template <typename MakeController>
LangRun run_workload(const scenario::Scenario& s,
                     const std::vector<sdn::Injection>& work,
                     MakeController make_controller) {
  sdn::Network net;
  sdn::Campus campus = sdn::build_campus(net, s.campus);
  if (s.wire_app) s.wire_app(net, campus);
  auto controller = make_controller(net);
  net.set_controller(controller.first.get());
  sdn::replay(net, work, /*record=*/false);
  LangRun out;
  out.outcome = backtest::outcome_from_stats(net.stats());
  out.learned = controller.second();
  return out;
}

struct LangCase {
  imp::Program imp_program;
  imp::ImpSymptom imp_symptom;
  netcore::PolicyPtr nc_policy;
  std::vector<Field> nc_match_fields{Field::Dpt, Field::Sip, Field::Bucket};
  netcore::NetcoreSymptom nc_symptom;
  bool nc_supported = true;
  // effectiveness: (outcome, baseline outcome, learned sips) -> fixed?
  std::function<bool(const ReplayOutcome&, const ReplayOutcome&,
                     const std::vector<int64_t>&)>
      fixed;
};

// --- per-scenario translations ------------------------------------------

LangCase make_case(const scenario::Scenario& s) {
  using imp::Block;
  using imp::Cond;
  using imp::Install;
  using imp::Operand;
  using netcore::Policy;
  namespace nd = mp::ndlog;
  LangCase c;
  auto sw_is = [](int64_t v) {
    return Cond{Operand::switch_id(), nd::CmpOp::Eq, Operand::literal(v)};
  };
  auto fld = [](Field f, nd::CmpOp op, int64_t v) {
    return Cond{Operand::pkt(f), op, Operand::literal(v)};
  };
  auto inst = [](std::vector<Field> m, int64_t port, bool po = true) {
    Install i;
    i.match_fields = std::move(m);
    i.out = Operand::literal(port);
    i.send_packet_out = po;
    return i;
  };

  if (s.id == "Q1") {
    c.imp_program.name = "load-balancer (buggy r7 analogue)";
    c.imp_program.blocks = {
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 80),
          fld(Field::Bucket, nd::CmpOp::Eq, 1)},
         {inst({Field::Dpt, Field::Bucket}, 2)}},
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 80),
          fld(Field::Bucket, nd::CmpOp::Eq, 2)},
         {inst({Field::Dpt, Field::Bucket}, 3)}},
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 53)},
         {inst({Field::Dpt}, 3)}},
        {{sw_is(2), fld(Field::Dpt, nd::CmpOp::Eq, 80)},
         {inst({Field::Dpt}, 1)}},
        {{sw_is(3), fld(Field::Dpt, nd::CmpOp::Eq, 53)},
         {inst({Field::Dpt}, 3)}},
        // BUG: copied from the S2 block; should test sw == 3.
        {{sw_is(2), fld(Field::Dpt, nd::CmpOp::Eq, 80)},
         {inst({Field::Dpt}, 2)}},
    };
    c.imp_symptom.sw = 3;
    c.imp_symptom.packet.dpt = 80;
    c.imp_symptom.packet.sip = 10001;
    c.imp_symptom.packet.bucket = 2;
    c.imp_symptom.want_port = 2;

    c.nc_policy = Policy::par(
        Policy::match_sw(
            1, Policy::par(
                   Policy::match(
                       Field::Dpt, 80,
                       Policy::par(Policy::match(Field::Bucket, 1,
                                                 Policy::fwd(2)),
                                   Policy::match(Field::Bucket, 2,
                                                 Policy::fwd(3)))),
                   Policy::match(Field::Dpt, 53, Policy::fwd(3)))),
        Policy::par(
            Policy::match_sw(2, Policy::match(Field::Dpt, 80, Policy::fwd(1))),
            // BUG: should be match_sw(3).
            Policy::match_sw(2, Policy::match(Field::Dpt, 80, Policy::fwd(2)))));
    c.nc_symptom = {3, 1, c.imp_symptom.packet, 2};
    c.fixed = [](const ReplayOutcome& out, const ReplayOutcome&,
                 const std::vector<int64_t>&) {
      return out.per_host_port.get("H2:80") > 0;
    };
  } else if (s.id == "Q2") {
    c.imp_program.name = "dns acl (buggy threshold)";
    c.imp_program.blocks = {
        // BUG: should be pkt.sip < 7.
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 53),
          fld(Field::Sip, nd::CmpOp::Lt, 6)},
         {inst({Field::Dpt, Field::Sip}, 2)}},
        {{sw_is(2), fld(Field::Dpt, nd::CmpOp::Eq, 53)},
         {inst({Field::Dpt}, 1)}},
    };
    c.imp_symptom.sw = 1;
    c.imp_symptom.packet.dpt = 53;
    c.imp_symptom.packet.sip = 6;
    c.imp_symptom.want_port = 2;
    // Pyretic: the threshold becomes an enumerated whitelist; the analogue
    // of the bug is a missing match arm for sip 6.
    netcore::PolicyPtr allow = Policy::match(Field::Sip, 5, Policy::fwd(2));
    for (int64_t ip = 4; ip >= 1; --ip) {
      allow = Policy::par(Policy::match(Field::Sip, ip, Policy::fwd(2)), allow);
    }
    c.nc_policy = Policy::par(
        Policy::match_sw(1, Policy::match(Field::Dpt, 53, allow)),
        Policy::match_sw(2, Policy::match(Field::Dpt, 53, Policy::fwd(1))));
    c.nc_symptom = {1, 1, c.imp_symptom.packet, 2};
    c.fixed = [](const ReplayOutcome& out, const ReplayOutcome& base,
                 const std::vector<int64_t>&) {
      return out.per_host_port.get("H17:53") > base.per_host_port.get("H17:53");
    };
  } else if (s.id == "Q3") {
    c.imp_program.name = "lb + stale firewall";
    c.imp_program.blocks = {
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 80),
          fld(Field::Sip, nd::CmpOp::Gt, 3)},
         {inst({Field::Dpt, Field::Sip}, 2)}},
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 80),
          fld(Field::Sip, nd::CmpOp::Le, 3)},
         {inst({Field::Dpt, Field::Sip}, 3)}},
        {{sw_is(2), fld(Field::Dpt, nd::CmpOp::Eq, 80)},
         {inst({Field::Dpt}, 1)}},
        // BUG: stale whitelist -- should admit the offloaded sips 2..3.
        {{sw_is(3), fld(Field::Dpt, nd::CmpOp::Eq, 80),
          fld(Field::Sip, nd::CmpOp::Gt, 3)},
         {inst({Field::Dpt, Field::Sip}, 1)}},
    };
    c.imp_symptom.sw = 3;
    c.imp_symptom.packet.dpt = 80;
    c.imp_symptom.packet.sip = 3;
    c.imp_symptom.want_port = 1;
    netcore::PolicyPtr fw = Policy::par(
        Policy::match(Field::Sip, 4, Policy::fwd(1)),
        Policy::par(Policy::match(Field::Sip, 5, Policy::fwd(1)),
                    Policy::match(Field::Sip, 6, Policy::fwd(1))));
    c.nc_policy = Policy::par(
        Policy::match_sw(
            1, Policy::match(
                   Field::Dpt, 80,
                   Policy::par(Policy::match(Field::Sip, 3, Policy::fwd(3)),
                               Policy::match(Field::Sip, 2, Policy::fwd(3))))),
        Policy::par(
            Policy::match_sw(2, Policy::match(Field::Dpt, 80, Policy::fwd(1))),
            Policy::match_sw(3, Policy::match(Field::Dpt, 80, fw))));
    c.nc_symptom = {3, 1, c.imp_symptom.packet, 1};
    c.fixed = [](const ReplayOutcome& out, const ReplayOutcome& base,
                 const std::vector<int64_t>&) {
      return out.per_host_port.get("H20b:80") >
             base.per_host_port.get("H20b:80");
    };
  } else if (s.id == "Q4") {
    c.imp_program.name = "reactive forwarding without packet_out";
    c.imp_program.blocks = {
        {{sw_is(1), fld(Field::Dpt, nd::CmpOp::Eq, 80)},
         {inst({Field::Dpt, Field::Sip}, 2, /*po=*/false)}},  // BUG
        {{sw_is(2), fld(Field::Dpt, nd::CmpOp::Eq, 80)},
         {inst({Field::Dpt, Field::Sip}, 1, /*po=*/false)}},  // BUG
    };
    c.imp_symptom.sw = 1;
    c.imp_symptom.packet.dpt = 80;
    c.imp_symptom.packet.sip = 10001;
    c.imp_symptom.want_port = 2;
    c.nc_supported = false;  // the Pyretic runtime releases packets itself
    c.fixed = [](const ReplayOutcome& out, const ReplayOutcome& base,
                 const std::vector<int64_t>&) {
      return out.per_host_port.get("H20:80") > base.per_host_port.get("H20:80");
    };
  } else {  // Q5
    c.imp_program.name = "mac learning with too-coarse matches";
    c.imp_program.blocks = {
        {{sw_is(5), fld(Field::Dip, nd::CmpOp::Eq, 32)},
         {inst({Field::InPort, Field::Dip}, 2)}},  // BUG: no Sip match
        {{sw_is(5), fld(Field::Dip, nd::CmpOp::Eq, 33)},
         {inst({Field::InPort, Field::Dip}, 3)}},
    };
    c.imp_symptom.sw = 5;
    c.imp_symptom.in_port = 1;
    c.imp_symptom.packet.sip = 34;
    c.imp_symptom.packet.dip = 32;
    c.imp_symptom.packet.dpt = 80;
    c.imp_symptom.want_port = 2;
    c.nc_policy = Policy::match_sw(
        5, Policy::par(Policy::match(Field::Dip, 32, Policy::fwd(2)),
                       Policy::match(Field::Dip, 33, Policy::fwd(3))));
    c.nc_match_fields = {Field::InPort, Field::Dip};  // BUG: no Sip
    c.nc_symptom = {5, 1, c.imp_symptom.packet, 2};
    c.fixed = [](const ReplayOutcome&, const ReplayOutcome&,
                 const std::vector<int64_t>& learned) {
      for (int64_t ip : learned) {
        if (ip == 34) return true;
      }
      return false;
    };
  }
  return c;
}

bool gate(const ReplayOutcome& out, const ReplayOutcome& base) {
  const KsResult ks = ks_test(out.per_host, base.per_host);
  const bool ctrl_ok = out.packet_ins <= base.packet_ins * 2 + 16;
  return !ks.significant && ctrl_ok;
}

}  // namespace

std::vector<LangCell> run_trema_scenarios() {
  std::vector<LangCell> cells;
  for (const auto& s : scenario::all_scenarios()) {
    LangCase lc = make_case(s);
    LangCell cell;
    cell.scenario = s.id;

    sdn::Network probe;
    sdn::Campus campus = sdn::build_campus(probe, s.campus);
    if (s.wire_app) s.wire_app(probe, campus);
    const auto work = s.make_workload(probe);

    auto run_with = [&](const imp::Program& prog,
                        std::optional<sdn::FlowEntry> manual) {
      return run_workload(s, work, [&](sdn::Network& net) {
        if (manual) {
          net.install(lc.imp_symptom.sw, *manual);
        }
        auto ctrl = std::make_unique<imp::ImpController>(net, prog);
        auto* raw = ctrl.get();
        return std::make_pair(
            std::move(ctrl),
            std::function<std::vector<int64_t>()>(
                [raw] { return raw->learned(); }));
      });
    };

    LangRun base = run_with(lc.imp_program, std::nullopt);
    auto candidates = imp::generate_repairs(lc.imp_program, lc.imp_symptom);
    cell.generated = candidates.size();
    for (const auto& cand : candidates) {
      LangRun run =
          cand.kind == imp::ImpChangeKind::ManualInstall
              ? run_with(lc.imp_program, cand.manual)
              : run_with(cand.apply(lc.imp_program), std::nullopt);
      const bool effective =
          lc.fixed(run.outcome, base.outcome, run.learned);
      if (effective && gate(run.outcome, base.outcome)) {
        ++cell.passed;
        cell.accepted_descriptions.push_back(cand.describe(lc.imp_program));
      }
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<LangCell> run_pyretic_scenarios() {
  std::vector<LangCell> cells;
  for (const auto& s : scenario::all_scenarios()) {
    LangCase lc = make_case(s);
    LangCell cell;
    cell.scenario = s.id;
    if (!lc.nc_supported) {
      cell.supported = false;
      cells.push_back(std::move(cell));
      continue;
    }

    sdn::Network probe;
    sdn::Campus campus = sdn::build_campus(probe, s.campus);
    if (s.wire_app) s.wire_app(probe, campus);
    const auto work = s.make_workload(probe);

    auto run_with = [&](const netcore::PolicyPtr& policy,
                        std::vector<Field> fields,
                        std::optional<sdn::FlowEntry> manual) {
      return run_workload(s, work, [&](sdn::Network& net) {
        if (manual) net.install(lc.nc_symptom.sw, *manual);
        auto ctrl = std::make_unique<netcore::NetcoreController>(
            net, policy, std::move(fields));
        auto* raw = ctrl.get();
        return std::make_pair(
            std::move(ctrl),
            std::function<std::vector<int64_t>()>(
                [raw] { return raw->learned(); }));
      });
    };

    LangRun base = run_with(lc.nc_policy, lc.nc_match_fields, std::nullopt);
    auto candidates = netcore::generate_repairs(lc.nc_policy, lc.nc_symptom);
    // The wildcard-entry bug (Q5) is repaired at the runtime layer: also
    // propose adding each absent match field.
    if (s.id == "Q5") {
      for (Field f : {Field::Sip, Field::Spt, Field::Smc}) {
        netcore::NetcoreChange c;
        c.kind = netcore::NetcoreChange::Kind::AddRuntimeMatchField;
        c.new_field = f;
        c.cost = 2.5;
        candidates.push_back(std::move(c));
      }
    }
    cell.generated = candidates.size();
    for (const auto& cand : candidates) {
      LangRun run;
      if (cand.kind == netcore::NetcoreChange::Kind::ManualInstall) {
        run = run_with(lc.nc_policy, lc.nc_match_fields, cand.manual);
      } else if (cand.kind ==
                 netcore::NetcoreChange::Kind::AddRuntimeMatchField) {
        auto fields = lc.nc_match_fields;
        fields.push_back(cand.new_field);
        run = run_with(lc.nc_policy, std::move(fields), std::nullopt);
      } else {
        run = run_with(cand.apply(lc.nc_policy), lc.nc_match_fields,
                       std::nullopt);
      }
      const bool effective = lc.fixed(run.outcome, base.outcome, run.learned);
      if (effective && gate(run.outcome, base.outcome)) {
        ++cell.passed;
        cell.accepted_descriptions.push_back(cand.describe(lc.nc_policy));
      }
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace mp::langs
