// Text frontend for the Pyretic stand-in. Grammar (NetCore-style):
//
//   policy := seq ("|" seq)*                 parallel composition
//   seq    := factor (">>" factor)*          sequential composition
//   factor := "fwd" "(" int ")"
//           | "drop"
//           | "match" "(" key "=" int ")" "[" policy "]"
//           | "modify" "(" field "=" int ")" "[" policy "]"
//           | "(" policy ")"
//   key    := "switch" | field
//   field  := in_port|sip|dip|smc|dmc|spt|dpt|proto|bucket
#pragma once

#include <stdexcept>
#include <string_view>

#include "langs/netcore/netcore.h"

namespace mp::netcore {

class NetcoreParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

PolicyPtr parse_policy(std::string_view src);

}  // namespace mp::netcore
