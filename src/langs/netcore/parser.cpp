#include "langs/netcore/parser.h"

#include <cctype>
#include <vector>

namespace mp::netcore {

namespace {

struct Tok {
  enum class Kind : uint8_t { Ident, Int, Punct, End } kind = Kind::End;
  std::string text;
  int64_t ival = 0;
};

std::vector<Tok> lex(std::string_view src) {
  std::vector<Tok> out;
  size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      out.push_back({Tok::Kind::Ident, std::string(src.substr(start, i - start)), 0});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      ++i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      Tok t{Tok::Kind::Int, std::string(src.substr(start, i - start)), 0};
      t.ival = std::stoll(t.text);
      out.push_back(std::move(t));
      continue;
    }
    if (src.substr(i, 2) == ">>") {
      out.push_back({Tok::Kind::Punct, ">>", 0});
      i += 2;
      continue;
    }
    out.push_back({Tok::Kind::Punct, std::string(1, c), 0});
    ++i;
  }
  out.push_back({Tok::Kind::End, "", 0});
  return out;
}

sdn::Field field_by_name(const std::string& name) {
  for (sdn::Field f : {sdn::Field::InPort, sdn::Field::Sip, sdn::Field::Dip,
                       sdn::Field::Smc, sdn::Field::Dmc, sdn::Field::Spt,
                       sdn::Field::Dpt, sdn::Field::Proto, sdn::Field::Bucket}) {
    if (name == sdn::to_string(f)) return f;
  }
  throw NetcoreParseError("unknown field: " + name);
}

class Parser {
 public:
  explicit Parser(std::string_view src) : toks_(lex(src)) {}

  PolicyPtr parse() {
    PolicyPtr p = policy();
    if (cur().kind != Tok::Kind::End) {
      throw NetcoreParseError("trailing input: '" + cur().text + "'");
    }
    return p;
  }

 private:
  const Tok& cur() const { return toks_[pos_]; }
  bool at_punct(const std::string& s) const {
    return cur().kind == Tok::Kind::Punct && cur().text == s;
  }
  void expect_punct(const std::string& s) {
    if (!at_punct(s)) {
      throw NetcoreParseError("expected '" + s + "', found '" + cur().text + "'");
    }
    ++pos_;
  }
  std::string expect_ident() {
    if (cur().kind != Tok::Kind::Ident) {
      throw NetcoreParseError("expected identifier, found '" + cur().text + "'");
    }
    return toks_[pos_++].text;
  }
  int64_t expect_int() {
    if (cur().kind != Tok::Kind::Int) {
      throw NetcoreParseError("expected integer, found '" + cur().text + "'");
    }
    return toks_[pos_++].ival;
  }

  PolicyPtr policy() {
    PolicyPtr p = seq();
    while (at_punct("|")) {
      ++pos_;
      p = Policy::par(std::move(p), seq());
    }
    return p;
  }

  PolicyPtr seq() {
    PolicyPtr p = factor();
    while (at_punct(">>")) {
      ++pos_;
      p = Policy::seq(std::move(p), factor());
    }
    return p;
  }

  PolicyPtr factor() {
    if (at_punct("(")) {
      ++pos_;
      PolicyPtr p = policy();
      expect_punct(")");
      return p;
    }
    const std::string kw = expect_ident();
    if (kw == "drop") return Policy::drop();
    if (kw == "fwd") {
      expect_punct("(");
      const int64_t port = expect_int();
      expect_punct(")");
      return Policy::fwd(port);
    }
    if (kw == "match" || kw == "modify") {
      expect_punct("(");
      const std::string key = expect_ident();
      expect_punct("=");
      const int64_t v = expect_int();
      expect_punct(")");
      expect_punct("[");
      PolicyPtr sub = policy();
      expect_punct("]");
      if (kw == "modify") {
        if (key == "switch") throw NetcoreParseError("cannot modify the switch");
        return Policy::modify(field_by_name(key), v, std::move(sub));
      }
      if (key == "switch") return Policy::match_sw(v, std::move(sub));
      return Policy::match(field_by_name(key), v, std::move(sub));
    }
    throw NetcoreParseError("expected policy, found '" + kw + "'");
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

PolicyPtr parse_policy(std::string_view src) { return Parser(src).parse(); }

}  // namespace mp::netcore
