#include "langs/netcore/netcore.h"

#include <algorithm>

namespace mp::netcore {

namespace {

PolicyPtr make(Policy p) { return std::make_shared<Policy>(std::move(p)); }

struct Builder : Policy {};

}  // namespace

PolicyPtr Policy::fwd(int64_t port) {
  Policy p;
  p.kind_ = Kind::Fwd;
  p.value_ = port;
  return make(std::move(p));
}

PolicyPtr Policy::drop() {
  Policy p;
  p.kind_ = Kind::Drop;
  return make(std::move(p));
}

PolicyPtr Policy::modify(sdn::Field f, int64_t v, PolicyPtr then) {
  Policy p;
  p.kind_ = Kind::Modify;
  p.field_ = f;
  p.value_ = v;
  p.a_ = std::move(then);
  return make(std::move(p));
}

PolicyPtr Policy::match(sdn::Field f, int64_t v, PolicyPtr then) {
  Policy p;
  p.kind_ = Kind::Match;
  p.field_ = f;
  p.value_ = v;
  p.a_ = std::move(then);
  return make(std::move(p));
}

PolicyPtr Policy::match_sw(int64_t sw, PolicyPtr then) {
  Policy p;
  p.kind_ = Kind::Match;
  p.on_switch_ = true;
  p.value_ = sw;
  p.a_ = std::move(then);
  return make(std::move(p));
}

PolicyPtr Policy::par(PolicyPtr a, PolicyPtr b) {
  Policy p;
  p.kind_ = Kind::Parallel;
  p.a_ = std::move(a);
  p.b_ = std::move(b);
  return make(std::move(p));
}

PolicyPtr Policy::seq(PolicyPtr a, PolicyPtr b) {
  Policy p;
  p.kind_ = Kind::Sequential;
  p.a_ = std::move(a);
  p.b_ = std::move(b);
  return make(std::move(p));
}

std::string Policy::to_string() const {
  switch (kind_) {
    case Kind::Fwd: return "fwd(" + std::to_string(value_) + ")";
    case Kind::Drop: return "drop";
    case Kind::Modify:
      return std::string("modify(") + sdn::to_string(field_) + "=" +
             std::to_string(value_) + ") >> " + a_->to_string();
    case Kind::Match:
      return std::string("match(") +
             (on_switch_ ? "switch" : sdn::to_string(field_)) + "=" +
             std::to_string(value_) + ")[" + a_->to_string() + "]";
    case Kind::Parallel:
      return "(" + a_->to_string() + " | " + b_->to_string() + ")";
    case Kind::Sequential:
      return "(" + a_->to_string() + " >> " + b_->to_string() + ")";
  }
  return "?";
}

size_t Policy::size() const {
  size_t n = 1;
  if (a_) n += a_->size();
  if (b_) n += b_->size();
  return n;
}

std::vector<int64_t> eval_policy(const PolicyPtr& p, int64_t sw,
                                 int64_t in_port, const sdn::Packet& pkt) {
  if (!p) return {};
  switch (p->kind()) {
    case Policy::Kind::Fwd: return {p->value()};
    case Policy::Kind::Drop: return {};
    case Policy::Kind::Modify: {
      sdn::Packet copy = pkt;
      switch (p->field()) {
        case sdn::Field::Dpt: copy.dpt = p->value(); break;
        case sdn::Field::Sip: copy.sip = p->value(); break;
        case sdn::Field::Dip: copy.dip = p->value(); break;
        default: break;
      }
      return eval_policy(p->a(), sw, in_port, copy);
    }
    case Policy::Kind::Match: {
      const int64_t have = p->on_switch()
                               ? sw
                               : sdn::field_of(pkt, in_port, p->field());
      if (have != p->value()) return {};
      return eval_policy(p->a(), sw, in_port, pkt);
    }
    case Policy::Kind::Parallel: {
      auto xs = eval_policy(p->a(), sw, in_port, pkt);
      auto ys = eval_policy(p->b(), sw, in_port, pkt);
      xs.insert(xs.end(), ys.begin(), ys.end());
      return xs;
    }
    case Policy::Kind::Sequential: {
      // Simplified sequencing: the first policy's decision feeds the
      // second only if the first produced output (NetCore's >> on the
      // packet set).
      auto xs = eval_policy(p->a(), sw, in_port, pkt);
      if (xs.empty()) return {};
      return eval_policy(p->b(), sw, in_port, pkt);
    }
  }
  return {};
}

void NetcoreController::on_packet_in(int64_t sw, int64_t in_port,
                                     const sdn::Packet& p,
                                     eval::TagMask miss_tags) {
  if (std::find(learned_.begin(), learned_.end(), p.sip) == learned_.end()) {
    learned_.push_back(p.sip);
  }
  const auto ports = eval_policy(policy_, sw, in_port, p);
  sdn::FlowEntry e;
  for (sdn::Field f : match_fields_) {
    e.match.push_back({f, Value(sdn::field_of(p, in_port, f))});
  }
  e.priority = 0;
  e.tags = miss_tags;
  e.action = ports.empty() ? sdn::Action::drop() : sdn::Action::output(ports[0]);
  net_->install(sw, e);
  // The Pyretic runtime always handles the buffered packet itself.
  if (!ports.empty()) net_->packet_out(sw, ports[0], miss_tags);
}

namespace {

const Policy* at_path(const PolicyPtr& p, const std::vector<int>& path,
                      size_t i = 0) {
  if (!p) return nullptr;
  if (i == path.size()) return p.get();
  return at_path(path[i] == 0 ? p->a() : p->b(), path, i + 1);
}

PolicyPtr rebuild(const PolicyPtr& p, const std::vector<int>& path, size_t i,
                  const std::function<PolicyPtr(const PolicyPtr&)>& f) {
  if (!p) return p;
  if (i == path.size()) return f(p);
  Policy copy = *p;
  PolicyPtr child =
      rebuild(path[i] == 0 ? p->a() : p->b(), path, i + 1, f);
  // Reconstruct with the replaced child.
  switch (p->kind()) {
    case Policy::Kind::Modify:
      return Policy::modify(p->field(), p->value(), child);
    case Policy::Kind::Match:
      return p->on_switch() ? Policy::match_sw(p->value(), child)
                            : Policy::match(p->field(), p->value(), child);
    case Policy::Kind::Parallel:
      return path[i] == 0 ? Policy::par(child, p->b())
                          : Policy::par(p->a(), child);
    case Policy::Kind::Sequential:
      return path[i] == 0 ? Policy::seq(child, p->b())
                          : Policy::seq(p->a(), child);
    default:
      return p;
  }
}

void collect_matches(const PolicyPtr& p, std::vector<int>& path,
                     std::vector<std::vector<int>>& matches,
                     std::vector<std::vector<int>>& fwds) {
  if (!p) return;
  if (p->kind() == Policy::Kind::Match) matches.push_back(path);
  if (p->kind() == Policy::Kind::Fwd) fwds.push_back(path);
  if (p->a()) {
    path.push_back(0);
    collect_matches(p->a(), path, matches, fwds);
    path.pop_back();
  }
  if (p->b()) {
    path.push_back(1);
    collect_matches(p->b(), path, matches, fwds);
    path.pop_back();
  }
}

}  // namespace

std::string NetcoreChange::describe(const PolicyPtr& p) const {
  const Policy* node = at_path(p, path);
  switch (kind) {
    case Kind::ChangeMatchValue:
      if (node != nullptr) {
        return "Changing " +
               std::string(node->on_switch() ? "match(switch=" +
                                                   std::to_string(node->value())
                                             : "match(" +
                                                   std::string(sdn::to_string(
                                                       node->field())) +
                                                   "=" +
                                                   std::to_string(node->value())) +
               ") to =" + std::to_string(new_value);
      }
      return "Changing a match value";
    case Kind::DeleteMatch:
      return node != nullptr ? "Deleting " + std::string("match(...)") +
                                   " restriction at " + node->to_string()
                             : "Deleting a match restriction";
    case Kind::ChangeFwdPort:
      return "Changing fwd(...) to fwd(" + std::to_string(new_value) + ")";
    case Kind::AddRuntimeMatchField:
      return std::string("Matching additionally on ") +
             sdn::to_string(new_field);
    case Kind::ManualInstall:
      return "Manually installing a flow entry";
  }
  return "?";
}

PolicyPtr NetcoreChange::apply(const PolicyPtr& p) const {
  switch (kind) {
    case Kind::ChangeMatchValue:
      return rebuild(p, path, 0, [&](const PolicyPtr& n) {
        return n->on_switch() ? Policy::match_sw(new_value, n->a())
                              : Policy::match(n->field(), new_value, n->a());
      });
    case Kind::DeleteMatch:
      return rebuild(p, path, 0, [](const PolicyPtr& n) { return n->a(); });
    case Kind::ChangeFwdPort:
      return rebuild(p, path, 0, [&](const PolicyPtr&) {
        return Policy::fwd(new_value);
      });
    case Kind::AddRuntimeMatchField:
    case Kind::ManualInstall:
      return p;  // applied by the harness / runtime configuration
  }
  return p;
}

std::vector<NetcoreChange> generate_repairs(const PolicyPtr& p,
                                            const NetcoreSymptom& symptom,
                                            size_t max_candidates) {
  std::vector<NetcoreChange> out;
  {
    NetcoreChange c;
    c.kind = NetcoreChange::Kind::ManualInstall;
    c.manual.match = {{sdn::Field::Dpt, Value(symptom.packet.dpt)},
                      {sdn::Field::Sip, Value(symptom.packet.sip)}};
    c.manual.priority = 0;
    c.manual.action = sdn::Action::output(symptom.want_port);
    c.cost = 2.0;
    out.push_back(std::move(c));
  }
  std::vector<int> path;
  std::vector<std::vector<int>> matches, fwds;
  collect_matches(p, path, matches, fwds);
  for (const auto& mpath : matches) {
    const Policy* node = at_path(p, mpath);
    if (node == nullptr) continue;
    const int64_t have =
        node->on_switch()
            ? symptom.sw
            : sdn::field_of(symptom.packet, symptom.in_port, node->field());
    if (have == node->value()) continue;  // this match already passes
    // Equality-only: the lone value rewrite (no operator mutations) ...
    NetcoreChange c;
    c.kind = NetcoreChange::Kind::ChangeMatchValue;
    c.path = mpath;
    c.new_value = have;
    c.cost = std::llabs(have - node->value()) == 1 ? 1.0 : 2.0;
    out.push_back(std::move(c));
    // ... or dropping the restriction entirely.
    NetcoreChange d;
    d.kind = NetcoreChange::Kind::DeleteMatch;
    d.path = mpath;
    d.cost = 4.0;
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const NetcoreChange& a, const NetcoreChange& b) {
              return a.cost < b.cost;
            });
  if (out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace mp::netcore
