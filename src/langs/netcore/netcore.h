// Pyretic stand-in (Section 5.8, Appendix B.3): a NetCore-style policy
// algebra. Policies compose from primitive actions (fwd/drop/modify),
// equality matches (restriction), parallel (|) and sequential (>>)
// composition -- Figure 4 of the Pyretic paper, which the meta model in
// Appendix B.3 encodes. Two properties of the abstraction matter for the
// reproduction and fall out of this design naturally:
//   - matches are equality-only, so operator-mutation repairs do not
//     exist (the paper: fewer Q1 candidates for Pyretic), and
//   - the runtime releases buffered packets itself, so Q4 ("forgotten
//     packets") cannot be expressed at all.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sdn/network.h"

namespace mp::netcore {

class Policy;
using PolicyPtr = std::shared_ptr<const Policy>;

class Policy {
 public:
  enum class Kind : uint8_t { Fwd, Drop, Modify, Match, Parallel, Sequential };

  static PolicyPtr fwd(int64_t port);
  static PolicyPtr drop();
  static PolicyPtr modify(sdn::Field f, int64_t v, PolicyPtr then);
  static PolicyPtr match(sdn::Field f, int64_t v, PolicyPtr then);
  static PolicyPtr match_sw(int64_t sw, PolicyPtr then);  // switch restriction
  static PolicyPtr par(PolicyPtr a, PolicyPtr b);
  static PolicyPtr seq(PolicyPtr a, PolicyPtr b);

  Kind kind() const { return kind_; }
  sdn::Field field() const { return field_; }
  bool on_switch() const { return on_switch_; }
  int64_t value() const { return value_; }
  const PolicyPtr& a() const { return a_; }
  const PolicyPtr& b() const { return b_; }

  std::string to_string() const;
  size_t size() const;  // number of AST nodes

 private:
  Kind kind_ = Kind::Drop;
  sdn::Field field_ = sdn::Field::Dpt;
  bool on_switch_ = false;
  int64_t value_ = 0;
  PolicyPtr a_, b_;
};

// Evaluates the policy on a packet at (sw, in_port): the set of output
// ports (empty = drop). Modifications apply to copies, Pyretic-style.
std::vector<int64_t> eval_policy(const PolicyPtr& p, int64_t sw,
                                 int64_t in_port, const sdn::Packet& pkt);

// Reactive controller: on PacketIn, evaluates the policy, installs an
// exact-match entry and -- as the Pyretic runtime does -- always releases
// the buffered packet.
class NetcoreController : public sdn::ControllerIface {
 public:
  NetcoreController(sdn::Network& net, PolicyPtr policy,
                    std::vector<sdn::Field> match_fields = {sdn::Field::Dpt,
                                                            sdn::Field::Sip,
                                                            sdn::Field::Bucket})
      : net_(&net), policy_(std::move(policy)),
        match_fields_(std::move(match_fields)) {}
  void on_packet_in(int64_t sw, int64_t in_port, const sdn::Packet& p,
                    eval::TagMask miss_tags) override;
  const std::vector<int64_t>& learned() const { return learned_; }

 private:
  sdn::Network* net_;
  PolicyPtr policy_;
  std::vector<sdn::Field> match_fields_;
  std::vector<int64_t> learned_;
};

// --- Repair space -----------------------------------------------------

struct NetcoreSymptom {
  int64_t sw = 0;
  int64_t in_port = 0;
  sdn::Packet packet;
  int64_t want_port = 0;
};

struct NetcoreChange {
  enum class Kind : uint8_t { ChangeMatchValue, DeleteMatch, ChangeFwdPort,
                              AddRuntimeMatchField, ManualInstall };
  Kind kind = Kind::ChangeMatchValue;
  std::vector<int> path;  // 0 = a(), 1 = b(), from the root
  int64_t new_value = 0;
  sdn::Field new_field = sdn::Field::Sip;  // for AddRuntimeMatchField
  sdn::FlowEntry manual;
  double cost = 0.0;
  std::string describe(const PolicyPtr& p) const;
  PolicyPtr apply(const PolicyPtr& p) const;
};

// Mutation enumeration guided by the symptom. Note the absence of
// operator mutations: match() only supports equality.
std::vector<NetcoreChange> generate_repairs(const PolicyPtr& p,
                                            const NetcoreSymptom& symptom,
                                            size_t max_candidates = 16);

}  // namespace mp::netcore
