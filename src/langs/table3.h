// Table 3 runner (Section 5.8): the five scenarios re-implemented in the
// Trema stand-in ("imp") and the Pyretic stand-in ("netcore"), run through
// the same simulator, workload and backtesting gate as the NDlog versions.
// Q4 is not reproducible in netcore because the runtime releases buffered
// packets itself -- exactly the paper's observation for Pyretic.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mp::langs {

struct LangCell {
  std::string scenario;       // "Q1".."Q5"
  bool supported = true;
  size_t generated = 0;       // repair candidates produced
  size_t passed = 0;          // candidates surviving backtest
  std::vector<std::string> accepted_descriptions;
};

std::vector<LangCell> run_trema_scenarios();
std::vector<LangCell> run_pyretic_scenarios();

}  // namespace mp::langs
