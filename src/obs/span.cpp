#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/obs.h"

namespace mp::obs {

namespace {

std::atomic<bool> g_trace_enabled{true};
std::atomic<uint64_t> g_dropped{0};
std::atomic<size_t> g_capacity{8192};

// One thread's span ring. Only the owning thread writes; drains take the
// global registry mutex plus the buffer's own lock so a drain racing the
// owner is safe.
struct ThreadBuffer {
  std::mutex mu;
  uint32_t index = 0;     // registration order
  uint64_t next_seq = 0;  // per-thread sequence, survives drains
  size_t capacity = 0;
  std::vector<SpanRecord> records;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never freed
};

BufferRegistry& buffer_registry() {
  static auto* r = new BufferRegistry();  // leaked: drains at process end
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* p = owned.get();
    p->capacity = g_capacity.load(std::memory_order_relaxed);
    p->records.reserve(std::min<size_t>(p->capacity, 64));
    BufferRegistry& reg = buffer_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    p->index = static_cast<uint32_t>(reg.buffers.size());
    reg.buffers.push_back(std::move(owned));
    return p;
  }();
  return *buf;
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}
uint64_t dropped_spans() { return g_dropped.load(std::memory_order_relaxed); }
void set_span_capacity(size_t records) {
  g_capacity.store(records == 0 ? 1 : records, std::memory_order_relaxed);
}

void record_span(PhaseId phase, uint64_t start_ns, uint64_t dur_ns) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.records.size() >= buf.capacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.records.push_back(
      SpanRecord{phase, start_ns, dur_ns, buf.index, buf.next_seq++});
}

std::vector<SpanRecord> drain_all_spans() {
  std::vector<SpanRecord> out;
  BufferRegistry& reg = buffer_registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    out.insert(out.end(), buf->records.begin(), buf->records.end());
    buf->records.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.seq < b.seq;
            });
  return out;
}

std::string spans_to_json(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& s : spans) {
    out += "{\"phase\": \"" + phase_name(s.phase) + "\"";
    out += ", \"start_ns\": " + std::to_string(s.start_ns);
    out += ", \"dur_ns\": " + std::to_string(s.dur_ns);
    out += ", \"thread\": " + std::to_string(s.thread);
    out += ", \"seq\": " + std::to_string(s.seq);
    out += "}\n";
  }
  return out;
}

bool write_trace_json(const std::string& path) {
  const std::string body = spans_to_json(drain_all_spans());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mp::obs
