// Process-wide interned phase ids.
//
// The old util/timer.h PhaseClock did a std::map<std::string,double>
// lookup (a string-compare chain) for every add() — on the repair hot
// path that was one map walk per history probe. Phase names are now
// interned once into a dense process-wide id space (`phase_id`, mutex
// only on the intern itself); accumulation in PhaseClock (util/timer.h)
// is a vector index, and hot call sites cache the PhaseId in a
// function-local static. The string API survives at the edges
// (`PhaseClock::add(name, secs)`, `get(name)`, `phases()`).
//
// The same ids label obs::Span trace records (src/obs/span.h), so a
// phase breakdown and a trace of the same run share one vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mp::obs {

using PhaseId = uint32_t;

// Interns `name` into the process-wide phase id space (dense, starting at
// 0). Mutex-guarded; call once per site and cache the id.
PhaseId phase_id(std::string_view name);
// Name of an interned id ("?" for an id never interned).
std::string phase_name(PhaseId id);
size_t phase_count();

}  // namespace mp::obs
