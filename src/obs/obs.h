// Unified observability: the process-wide metrics registry.
//
// Every layer of the system registers its instruments here once, by name
// (naming convention: `layer.component.metric`, catalog in
// src/obs/README.md), and records into them lock-free on the hot path:
//
//   - Counter: monotonic u64, relaxed-atomic add. Never resets — windowed
//     numbers come from Snapshot::delta (the registry-level answer to the
//     old "Engine counters survive compact() with no way to zero them"
//     inconsistency; pinned by tests/obs_test.cpp).
//   - Gauge: last-write-wins i64 level (log sizes, shard counts).
//   - Histogram: log2-bucketed u64 distribution (latencies in ns). One
//     relaxed-atomic add per record; quantiles (p50/p99) are extracted
//     from the bucket counts at snapshot time, never on the record path.
//
// Registration takes a mutex (once per name per process); recording never
// does. Instrument addresses are stable for the life of the process, so
// call sites cache `Counter&` references in function-local statics.
//
// `snapshot()` copies every instrument's current value into a plain
// `Snapshot`; `Snapshot::delta(since)` subtracts an earlier snapshot
// (counters and histogram buckets subtract, gauges keep the current
// level) — the primitive behind per-scenario metric sections and
// "what did this window cost" queries. `to_json()` renders a snapshot as
// the stable JSON document tools/check.sh gates on and run_bench.sh
// embeds into BENCH_engine.json.
//
// `set_enabled(false)` turns off every *publishing* site (Engine's
// counter publication, span recording, latency histograms) — evaluation
// behaviour is identical either way, which the differential harness pins
// (obs-on vs obs-off event logs and repair output are byte-identical on
// all five scenarios). Instruments themselves stay registered.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mp::obs {

// Master switch for the publishing sites (default on). Recording sites
// that feed the registry check this; pure accessors do not.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void add(uint64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void inc() noexcept { add(1); }
  uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  // Raise to `v` if above the current level (peak tracking).
  void set_max(int64_t v) noexcept {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log2-bucketed histogram: bucket 0 holds the value 0, bucket b >= 1
// holds [2^(b-1), 2^b). 65 buckets cover the full u64 range, so a
// nanosecond latency needs no configuration. Recording is one relaxed
// fetch_add on the bucket plus count/sum bookkeeping; all math happens
// at snapshot time.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  // Bucket index of a value: 0 for 0, otherwise bit_width(v).
  static size_t bucket_of(uint64_t v) noexcept {
    size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  // [lower, upper) bounds of bucket b (upper is exclusive; bucket 0 is
  // the point value 0).
  static uint64_t bucket_lower(size_t b) noexcept {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static uint64_t bucket_upper(size_t b) noexcept {
    if (b == 0) return 1;
    if (b >= 64) return ~uint64_t{0};
    return uint64_t{1} << b;
  }

  void record(uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Plain-value copy of a histogram, as captured by a snapshot (and as
// produced by subtracting two snapshots).
struct HistogramData {
  std::vector<uint64_t> buckets;  // kBuckets entries
  uint64_t count = 0;
  uint64_t sum = 0;
  // q in [0,1]: rank-interpolated quantile from the bucket counts. The
  // target rank's bucket is found by cumulative count; the value is
  // linearly interpolated between the bucket's bounds by the rank's
  // position inside it. Exact for single-bucket data up to bucket width.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

enum class Kind : uint8_t { Counter, Gauge, Histogram };

struct InstrumentValue {
  Kind kind = Kind::Counter;
  int64_t value = 0;   // Counter (as u64 in range) / Gauge level
  HistogramData hist;  // Kind::Histogram only
};

struct Snapshot {
  std::map<std::string, InstrumentValue> values;

  // This snapshot minus `since`: counters subtract (clamped at 0),
  // histogram buckets/count/sum subtract, gauges keep this snapshot's
  // level. Instruments absent from `since` pass through unchanged.
  Snapshot delta(const Snapshot& since) const;

  const InstrumentValue* find(std::string_view name) const {
    auto it = values.find(std::string(name));
    return it == values.end() ? nullptr : &it->second;
  }
  uint64_t counter(std::string_view name) const {
    const InstrumentValue* v = find(name);
    return v != nullptr && v->kind == Kind::Counter
               ? static_cast<uint64_t>(v->value)
               : 0;
  }
  int64_t gauge(std::string_view name) const {
    const InstrumentValue* v = find(name);
    return v != nullptr && v->kind == Kind::Gauge ? v->value : 0;
  }
  const HistogramData* histogram(std::string_view name) const {
    const InstrumentValue* v = find(name);
    return v != nullptr && v->kind == Kind::Histogram ? &v->hist : nullptr;
  }
};

class Registry {
 public:
  // The process-wide registry every layer records into.
  static Registry& global();

  // Registered once by name: the first call creates the instrument, every
  // later call with the same name returns the same address. A name
  // re-requested as a different kind returns a process-wide dummy (never
  // exported) rather than aliasing storage of the wrong shape.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;
  size_t size() const;

 private:
  struct Entry;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> entries_;
};

// JSON rendering of a snapshot:
//   {"counters": {...}, "gauges": {...},
//    "histograms": {"name": {"count":n,"sum":s,"mean":..,"p50":..,
//                            "p90":..,"p99":..}}}
std::string to_json(const Snapshot& snap, int indent = 0);
// Shorthand: JSON of the global registry's current snapshot.
std::string snapshot_json();

}  // namespace mp::obs
