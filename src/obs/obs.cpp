#include "obs/obs.h"

#include <algorithm>
#include <cstdio>

namespace mp::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Histogram quantiles.
// ---------------------------------------------------------------------------

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count] (nearest-rank with interpolation inside the
  // bucket that crosses it).
  const double rank = q * static_cast<double>(count);
  double cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double prev = cum;
    cum += static_cast<double>(buckets[b]);
    if (cum + 1e-9 < rank) continue;
    const double lo = static_cast<double>(Histogram::bucket_lower(b));
    const double hi = static_cast<double>(Histogram::bucket_upper(b));
    const double frac =
        buckets[b] == 0 ? 0.0 : (rank - prev) / static_cast<double>(buckets[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  // rank beyond the recorded mass (rounding): the top non-empty bucket.
  for (size_t b = buckets.size(); b-- > 0;) {
    if (buckets[b] != 0) {
      return static_cast<double>(Histogram::bucket_upper(b));
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

struct Registry::Entry {
  Kind kind = Kind::Counter;
  Counter counter;
  Gauge gauge;
  Histogram hist;
};

Registry& Registry::global() {
  static Registry r;
  return r;
}

namespace {
// Kind-mismatch sinks: never registered, never exported.
Counter& dummy_counter() {
  static auto* c = new Counter();
  return *c;
}
Gauge& dummy_gauge() {
  static auto* g = new Gauge();
  return *g;
}
Histogram& dummy_histogram() {
  static auto* h = new Histogram();
  return *h;
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    auto e = std::make_unique<Entry>();
    e->kind = Kind::Counter;
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  Entry& e = *it->second;
  return e.kind == Kind::Counter ? e.counter : dummy_counter();
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    auto e = std::make_unique<Entry>();
    e->kind = Kind::Gauge;
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  Entry& e = *it->second;
  return e.kind == Kind::Gauge ? e.gauge : dummy_gauge();
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    auto e = std::make_unique<Entry>();
    e->kind = Kind::Histogram;
    it = entries_.emplace(std::string(name), std::move(e)).first;
  }
  Entry& e = *it->second;
  return e.kind == Kind::Histogram ? e.hist : dummy_histogram();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : entries_) {
    InstrumentValue v;
    v.kind = e->kind;
    switch (e->kind) {
      case Kind::Counter:
        v.value = static_cast<int64_t>(e->counter.value());
        break;
      case Kind::Gauge:
        v.value = e->gauge.value();
        break;
      case Kind::Histogram: {
        v.hist.buckets.resize(Histogram::kBuckets);
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          v.hist.buckets[b] = e->hist.bucket(b);
        }
        v.hist.count = e->hist.count();
        v.hist.sum = e->hist.sum();
        break;
      }
    }
    snap.values.emplace(name, std::move(v));
  }
  return snap;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// ---------------------------------------------------------------------------
// Snapshot delta.
// ---------------------------------------------------------------------------

Snapshot Snapshot::delta(const Snapshot& since) const {
  Snapshot out = *this;
  for (auto& [name, v] : out.values) {
    auto it = since.values.find(name);
    if (it == since.values.end() || it->second.kind != v.kind) continue;
    const InstrumentValue& old = it->second;
    switch (v.kind) {
      case Kind::Counter:
        v.value = v.value > old.value ? v.value - old.value : 0;
        break;
      case Kind::Gauge:
        break;  // gauges are levels: keep the current one
      case Kind::Histogram: {
        const size_t n = std::min(v.hist.buckets.size(),
                                  old.hist.buckets.size());
        for (size_t b = 0; b < n; ++b) {
          v.hist.buckets[b] = v.hist.buckets[b] > old.hist.buckets[b]
                                  ? v.hist.buckets[b] - old.hist.buckets[b]
                                  : 0;
        }
        v.hist.count =
            v.hist.count > old.hist.count ? v.hist.count - old.hist.count : 0;
        v.hist.sum = v.hist.sum > old.hist.sum ? v.hist.sum - old.hist.sum : 0;
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON export.
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_pad(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

std::string to_json(const Snapshot& snap, int indent) {
  // Three stable sections, each sorted by name (std::map order).
  std::string out = "{";
  const char* section_names[3] = {"counters", "gauges", "histograms"};
  const Kind kinds[3] = {Kind::Counter, Kind::Gauge, Kind::Histogram};
  for (int s = 0; s < 3; ++s) {
    append_pad(out, indent, 1);
    append_escaped(out, section_names[s]);
    out += ": {";
    bool first = true;
    for (const auto& [name, v] : snap.values) {
      if (v.kind != kinds[s]) continue;
      if (!first) out += ",";
      first = false;
      append_pad(out, indent, 2);
      append_escaped(out, name);
      out += ": ";
      if (v.kind == Kind::Histogram) {
        out += "{\"count\": " + std::to_string(v.hist.count);
        out += ", \"sum\": " + std::to_string(v.hist.sum);
        out += ", \"mean\": ";
        append_double(out, v.hist.mean());
        out += ", \"p50\": ";
        append_double(out, v.hist.p50());
        out += ", \"p90\": ";
        append_double(out, v.hist.p90());
        out += ", \"p99\": ";
        append_double(out, v.hist.p99());
        out += "}";
      } else {
        out += std::to_string(v.value);
      }
    }
    if (!first) append_pad(out, indent, 1);
    out += "}";
    if (s != 2) out += ",";
  }
  append_pad(out, indent, 0);
  out += "}";
  return out;
}

std::string snapshot_json() {
  return to_json(Registry::global().snapshot(), 2);
}

}  // namespace mp::obs
