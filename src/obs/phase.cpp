#include "obs/phase.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace mp::obs {

namespace {

struct Interner {
  std::mutex mu;
  std::unordered_map<std::string, PhaseId> ids;
  std::deque<std::string> names;  // stable addresses, indexed by id
};

Interner& interner() {
  static auto* i = new Interner();  // leaked: survives static destruction
  return *i;
}

}  // namespace

PhaseId phase_id(std::string_view name) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  auto it = in.ids.find(std::string(name));
  if (it != in.ids.end()) return it->second;
  const PhaseId id = static_cast<PhaseId>(in.names.size());
  in.names.emplace_back(name);
  in.ids.emplace(in.names.back(), id);
  return id;
}

std::string phase_name(PhaseId id) {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  return id < in.names.size() ? in.names[id] : std::string("?");
}

size_t phase_count() {
  Interner& in = interner();
  std::lock_guard<std::mutex> lock(in.mu);
  return in.names.size();
}

}  // namespace mp::obs
