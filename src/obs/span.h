// Lightweight trace spans over per-thread ring buffers.
//
// A Span is an RAII scope labelled with an interned PhaseId
// (src/obs/phase.h). On destruction it records (phase, start_ns, dur_ns)
// into the calling thread's fixed-capacity ring buffer — no lock, no
// allocation on the record path (the thread's buffer is registered once,
// under a mutex, on its first span). Buffers outlive their threads, so a
// worker pool's spans survive until drained.
//
// drain_all() collects and clears every thread's buffer and returns the
// records in a deterministic order — (start_ns, thread, seq), where
// `thread` is the buffer's registration index and `seq` the per-thread
// record sequence — so two drains over the same records always produce
// the same merged trace (pinned by tests/obs_test.cpp). write_trace_json
// renders a drain as a JSON-lines trace log.
//
// Recording honours obs::enabled() plus a trace-specific switch
// (set_trace_enabled). A full ring drops new records and counts them in
// dropped_spans() — tracing is bounded, never a memory leak. Hot-path
// sites use the MP_OBS_DETAIL_SPAN macro, which compiles to nothing
// unless the build defines MP_OBS_DETAIL (CMake option MP_OBS_DETAIL) —
// the "expensive span paths" stay out of release hot loops entirely.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/phase.h"

namespace mp::obs {

struct SpanRecord {
  PhaseId phase = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t thread = 0;  // buffer registration index
  uint64_t seq = 0;     // per-thread record sequence
};

// Trace master switch (independent of the metrics switch; both must be on
// for spans to record). Default on — span sites are cold unless
// MP_OBS_DETAIL compiled the hot ones in.
bool trace_enabled();
void set_trace_enabled(bool on);

// Monotonic nanoseconds (steady clock).
inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Records a span into the calling thread's ring buffer. Exposed directly
// (besides the RAII Span) so tests can inject records with synthetic
// timestamps.
void record_span(PhaseId phase, uint64_t start_ns, uint64_t dur_ns);

// Collects and clears every thread's buffer; deterministic order (see
// file comment).
std::vector<SpanRecord> drain_all_spans();
// Records refused because a ring was full (cumulative).
uint64_t dropped_spans();
// Per-thread ring capacity (records). Applies to buffers created after
// the call; for tests.
void set_span_capacity(size_t records);

// Renders a drain as JSON lines:
//   {"phase":"history lookups","start_ns":...,"dur_ns":...,"thread":0,"seq":1}
std::string spans_to_json(const std::vector<SpanRecord>& spans);
// drain_all_spans() + append to `path` (creating it); returns false on
// I/O failure.
bool write_trace_json(const std::string& path);

// RAII span.
class Span {
 public:
  explicit Span(PhaseId phase)
      : phase_(phase),
        active_(enabled() && trace_enabled()),
        start_ns_(active_ ? now_ns() : 0) {}
  ~Span() {
    if (active_) record_span(phase_, start_ns_, now_ns() - start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  PhaseId phase_;
  bool active_;
  uint64_t start_ns_;
};

}  // namespace mp::obs

// Hot-path span sites: compiled out unless the build defines
// MP_OBS_DETAIL (CMake -DMP_OBS_DETAIL=ON).
#if defined(MP_OBS_DETAIL)
#define MP_OBS_DETAIL_SPAN(id) ::mp::obs::Span mp_obs_span_##__LINE__(id)
#else
#define MP_OBS_DETAIL_SPAN(id) ((void)0)
#endif
