#include "solver/constraint.h"

namespace mp::solver {

std::string ConstraintPool::to_string() const {
  std::string out;
  for (size_t i = 0; i < constraints_.size(); ++i) {
    if (i) out += " && ";
    out += constraints_[i].to_string();
  }
  return out;
}

std::vector<std::string> ConstraintPool::variables() const {
  std::vector<std::string> out;
  auto push = [&](const Term& t) {
    if (!t.is_var) return;
    for (const auto& v : out)
      if (v == t.var) return;
    out.push_back(t.var);
  };
  for (const auto& c : constraints_) {
    push(c.lhs);
    push(c.rhs);
  }
  return out;
}

bool holds(const Constraint& c,
           const std::vector<std::pair<std::string, Value>>& assignment) {
  auto resolve = [&](const Term& t, Value& out) {
    if (!t.is_var) {
      out = t.val;
      return true;
    }
    for (const auto& [name, v] : assignment) {
      if (name == t.var) {
        out = v;
        return true;
      }
    }
    return false;
  };
  Value a, b;
  if (!resolve(c.lhs, a) || !resolve(c.rhs, b)) return false;
  return ndlog::cmp_eval(c.op, a, b);
}

}  // namespace mp::solver
