// The "mini-solver" (Section 5.1): decides conjunctions of binary
// comparisons over integer/string variables. The paper routes trivial
// constraint sets to a hand-rolled solver and the rest to Z3; our pools
// stay within the fragment {==, !=, <, >, <=, >=} over int64 plus string
// (dis)equality, which this solver decides completely:
//
//   1. union-find merges ==-connected variables into classes;
//   2. each class keeps an interval [lo, hi], an exclusion set, and an
//      optional pinned string;
//   3. ordering constraints between classes propagate bounds to fixpoint;
//   4. a bounded backtracking pass assigns concrete values (preferring
//      the smallest feasible, so repairs like "6 < K -> K = 7" come out
//      minimal, matching the paper's cheapest-change-first behaviour).
//
// solve_negation() finds an assignment that satisfies `keep` while
// violating at least one constraint of `negate` - used when a positive
// symptom must be made to disappear (Section 4.2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "solver/constraint.h"

namespace mp::solver {

using Assignment = std::map<std::string, Value>;

struct SolveStats {
  size_t calls = 0;
  size_t backtracks = 0;
};

class MiniSolver {
 public:
  // Satisfying assignment for the conjunction, or nullopt if UNSAT.
  static std::optional<Assignment> solve(const ConstraintPool& pool,
                                         SolveStats* stats = nullptr);

  // Assignment satisfying all of `keep` and violating >= 1 of `negate`.
  static std::optional<Assignment> solve_negation(const ConstraintPool& keep,
                                                  const ConstraintPool& negate,
                                                  SolveStats* stats = nullptr);

  // True iff the conjunction is satisfiable.
  static bool satisfiable(const ConstraintPool& pool, SolveStats* stats = nullptr);

  // Check a complete assignment against a pool.
  static bool check(const ConstraintPool& pool, const Assignment& a);
};

}  // namespace mp::solver
