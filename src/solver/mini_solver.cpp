#include "solver/mini_solver.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

namespace mp::solver {

namespace {

constexpr int64_t kLoDefault = -1'000'000'000;
constexpr int64_t kHiDefault = 1'000'000'000;

struct ClassDomain {
  int64_t lo = kLoDefault;
  int64_t hi = kHiDefault;
  std::set<int64_t> excluded;
  std::optional<std::string> pinned_str;      // class must equal this string
  std::set<std::string> excluded_str;
  bool must_be_int = false;                   // participated in an ordering
};

class UnionFind {
 public:
  size_t find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(size_t a, size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }
  size_t add() {
    parent_.push_back(parent_.size());
    return parent_.size() - 1;
  }

 private:
  std::vector<size_t> parent_;
};

struct Problem {
  std::vector<std::string> vars;
  std::unordered_map<std::string, size_t> var_idx;
  UnionFind uf;
  // Ordering / inequality constraints between classes, kept as (a, op, b).
  struct ClassCmp {
    size_t a;
    ndlog::CmpOp op;
    size_t b;
  };
  std::vector<ClassCmp> cmps;
  std::unordered_map<size_t, ClassDomain> domains;

  size_t var(const std::string& name) {
    auto it = var_idx.find(name);
    if (it != var_idx.end()) return it->second;
    const size_t idx = uf.add();
    var_idx.emplace(name, idx);
    vars.push_back(name);
    return idx;
  }
  ClassDomain& dom(size_t cls) { return domains[cls]; }
};

// Returns false on contradiction.
bool apply_const_constraint(Problem& p, size_t cls, ndlog::CmpOp op,
                            const Value& v) {
  ClassDomain& d = p.dom(cls);
  if (v.is_str()) {
    switch (op) {
      case ndlog::CmpOp::Eq:
        if (d.pinned_str && *d.pinned_str != v.as_str()) return false;
        if (d.excluded_str.count(v.as_str())) return false;
        d.pinned_str = v.as_str();
        return true;
      case ndlog::CmpOp::Ne:
        if (d.pinned_str && *d.pinned_str == v.as_str()) return false;
        d.excluded_str.insert(v.as_str());
        return true;
      default:
        return false;  // no ordering over strings
    }
  }
  const int64_t c = v.as_int();
  switch (op) {
    case ndlog::CmpOp::Eq:
      d.lo = std::max(d.lo, c);
      d.hi = std::min(d.hi, c);
      break;
    case ndlog::CmpOp::Ne:
      d.excluded.insert(c);
      break;
    case ndlog::CmpOp::Lt:
      d.hi = std::min(d.hi, c - 1);
      break;
    case ndlog::CmpOp::Le:
      d.hi = std::min(d.hi, c);
      break;
    case ndlog::CmpOp::Gt:
      d.lo = std::max(d.lo, c + 1);
      break;
    case ndlog::CmpOp::Ge:
      d.lo = std::max(d.lo, c);
      break;
  }
  if (op != ndlog::CmpOp::Eq && op != ndlog::CmpOp::Ne) d.must_be_int = true;
  if (d.pinned_str && op != ndlog::CmpOp::Ne) return false;
  return d.lo <= d.hi || d.pinned_str.has_value();
}

std::optional<Problem> build(const ConstraintPool& pool) {
  Problem p;
  // Pass 1: create vars and merge equalities.
  for (const auto& c : pool.constraints()) {
    if (c.lhs.is_var) p.var(c.lhs.var);
    if (c.rhs.is_var) p.var(c.rhs.var);
    if (c.op == ndlog::CmpOp::Eq && c.lhs.is_var && c.rhs.is_var) {
      p.uf.unite(p.var_idx[c.lhs.var], p.var_idx[c.rhs.var]);
    }
    if (!c.lhs.is_var && !c.rhs.is_var) {
      if (!ndlog::cmp_eval(c.op, c.lhs.val, c.rhs.val)) return std::nullopt;
    }
  }
  // Pass 2: domains and inter-class constraints.
  for (const auto& c : pool.constraints()) {
    if (c.lhs.is_var && c.rhs.is_var) {
      const size_t a = p.uf.find(p.var_idx[c.lhs.var]);
      const size_t b = p.uf.find(p.var_idx[c.rhs.var]);
      if (c.op == ndlog::CmpOp::Eq) continue;  // already merged
      if (a == b) {
        // x != x, x < x, x > x are contradictions; <=, >= are tautologies.
        if (c.op == ndlog::CmpOp::Ne || c.op == ndlog::CmpOp::Lt ||
            c.op == ndlog::CmpOp::Gt) {
          return std::nullopt;
        }
        continue;
      }
      p.cmps.push_back({a, c.op, b});
      if (c.op != ndlog::CmpOp::Ne) {
        p.dom(a).must_be_int = true;
        p.dom(b).must_be_int = true;
      }
    } else if (c.lhs.is_var) {
      const size_t a = p.uf.find(p.var_idx[c.lhs.var]);
      if (!apply_const_constraint(p, a, c.op, c.rhs.val)) return std::nullopt;
    } else if (c.rhs.is_var) {
      // const op var  ==  var flip(op) const
      ndlog::CmpOp flipped = c.op;
      switch (c.op) {
        case ndlog::CmpOp::Lt: flipped = ndlog::CmpOp::Gt; break;
        case ndlog::CmpOp::Gt: flipped = ndlog::CmpOp::Lt; break;
        case ndlog::CmpOp::Le: flipped = ndlog::CmpOp::Ge; break;
        case ndlog::CmpOp::Ge: flipped = ndlog::CmpOp::Le; break;
        default: break;
      }
      const size_t b = p.uf.find(p.var_idx[c.rhs.var]);
      if (!apply_const_constraint(p, b, flipped, c.lhs.val)) return std::nullopt;
    }
  }
  return p;
}

// Bound propagation over ordering constraints, to fixpoint (n^2 passes cap).
bool propagate(Problem& p) {
  const size_t passes = p.cmps.size() + 2;
  for (size_t i = 0; i < passes; ++i) {
    bool changed = false;
    for (const auto& cc : p.cmps) {
      ClassDomain& da = p.dom(cc.a);
      ClassDomain& db = p.dom(cc.b);
      auto tighten = [&changed](int64_t& slot, int64_t v, bool is_lo) {
        if (is_lo ? v > slot : v < slot) {
          slot = v;
          changed = true;
        }
      };
      switch (cc.op) {
        case ndlog::CmpOp::Lt:  // a < b
          tighten(da.hi, db.hi - 1, false);
          tighten(db.lo, da.lo + 1, true);
          break;
        case ndlog::CmpOp::Le:
          tighten(da.hi, db.hi, false);
          tighten(db.lo, da.lo, true);
          break;
        case ndlog::CmpOp::Gt:  // a > b
          tighten(da.lo, db.lo + 1, true);
          tighten(db.hi, da.hi - 1, false);
          break;
        case ndlog::CmpOp::Ge:
          tighten(da.lo, db.lo, true);
          tighten(db.hi, da.hi, false);
          break;
        case ndlog::CmpOp::Ne:
        case ndlog::CmpOp::Eq:
          break;
      }
      if (da.lo > da.hi && !da.pinned_str) return false;
      if (db.lo > db.hi && !db.pinned_str) return false;
    }
    if (!changed) return true;
  }
  return true;
}

struct ClassAssign {
  bool is_str = false;
  std::string sval;
  int64_t ival = 0;
  Value value() const { return is_str ? Value(sval) : Value(ival); }
};

bool check_cmp(const Problem::ClassCmp& cc,
               const std::unordered_map<size_t, ClassAssign>& vals) {
  auto ai = vals.find(cc.a);
  auto bi = vals.find(cc.b);
  if (ai == vals.end() || bi == vals.end()) return true;  // not yet assigned
  return ndlog::cmp_eval(cc.op, ai->second.value(), bi->second.value());
}

bool assign_classes(Problem& p, const std::vector<size_t>& classes, size_t at,
                    std::unordered_map<size_t, ClassAssign>& vals,
                    SolveStats* stats) {
  if (at == classes.size()) return true;
  const size_t cls = classes[at];
  ClassDomain& d = p.dom(cls);

  std::vector<ClassAssign> candidates;
  if (d.pinned_str) {
    if (!d.must_be_int && !d.excluded_str.count(*d.pinned_str)) {
      ClassAssign a;
      a.is_str = true;
      a.sval = *d.pinned_str;
      candidates.push_back(a);
    }
  } else {
    // Prefer small-magnitude feasible integers (0 if unconstrained), then a
    // few from the top of the interval so a<b chains can resolve.
    int64_t v = std::clamp<int64_t>(0, d.lo, d.hi);
    for (int tries = 0; tries < 64 && v <= d.hi; ++tries) {
      while (v <= d.hi && d.excluded.count(v)) ++v;
      if (v > d.hi) break;
      ClassAssign a;
      a.ival = v;
      candidates.push_back(a);
      ++v;
    }
    if (d.hi != d.lo && candidates.size() < 72 && d.hi < kHiDefault) {
      int64_t w = d.hi;
      for (int tries = 0; tries < 8 && w >= d.lo; ++tries) {
        while (w >= d.lo && d.excluded.count(w)) --w;
        if (w < d.lo) break;
        ClassAssign a;
        a.ival = w;
        bool dup = false;
        for (const auto& c : candidates) {
          if (!c.is_str && c.ival == w) { dup = true; break; }
        }
        if (!dup) candidates.push_back(a);
        --w;
      }
    }
  }

  for (const auto& cand : candidates) {
    vals[cls] = cand;
    bool ok = true;
    for (const auto& cc : p.cmps) {
      if ((cc.a == cls || cc.b == cls) && !check_cmp(cc, vals)) {
        ok = false;
        break;
      }
    }
    if (ok && assign_classes(p, classes, at + 1, vals, stats)) return true;
    if (stats != nullptr) ++stats->backtracks;
    vals.erase(cls);
  }
  return false;
}

}  // namespace

std::optional<Assignment> MiniSolver::solve(const ConstraintPool& pool,
                                            SolveStats* stats) {
  if (stats != nullptr) ++stats->calls;
  auto built = build(pool);
  if (!built) return std::nullopt;
  Problem& p = *built;
  if (!propagate(p)) return std::nullopt;

  // Collect representative classes in deterministic order.
  std::vector<size_t> classes;
  std::set<size_t> seen;
  for (const auto& name : p.vars) {
    const size_t cls = p.uf.find(p.var_idx[name]);
    if (seen.insert(cls).second) classes.push_back(cls);
  }
  std::unordered_map<size_t, ClassAssign> vals;
  if (!assign_classes(p, classes, 0, vals, stats)) return std::nullopt;

  Assignment out;
  for (const auto& name : p.vars) {
    out[name] = vals[p.uf.find(p.var_idx[name])].value();
  }
  // Final sanity check against the original pool (catches Ne-within-class
  // subtleties that the class decomposition could miss).
  if (!check(pool, out)) return std::nullopt;
  return out;
}

std::optional<Assignment> MiniSolver::solve_negation(
    const ConstraintPool& keep, const ConstraintPool& negate,
    SolveStats* stats) {
  for (size_t i = 0; i < negate.size(); ++i) {
    ConstraintPool attempt = keep;
    for (size_t j = 0; j < negate.size(); ++j) {
      const Constraint& c = negate.constraints()[j];
      if (j == i) {
        attempt.add(c.lhs, ndlog::negate(c.op), c.rhs);
      } else {
        attempt.add(c);
      }
    }
    if (auto a = solve(attempt, stats)) return a;
  }
  return std::nullopt;
}

bool MiniSolver::satisfiable(const ConstraintPool& pool, SolveStats* stats) {
  return solve(pool, stats).has_value();
}

bool MiniSolver::check(const ConstraintPool& pool, const Assignment& a) {
  std::vector<std::pair<std::string, Value>> flat(a.begin(), a.end());
  for (const auto& c : pool.constraints()) {
    if (!holds(c, flat)) return false;
  }
  return true;
}

}  // namespace mp::solver
