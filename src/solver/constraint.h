// Constraint pools (Section 3.4). While expanding a meta-provenance tree
// the repair engine collects constraints over tuple attributes and symbolic
// program constants: predicates must join (B0.x == C0.x), selections must
// hold ((Swi cmp K) == true), the head must satisfy the operator's query,
// and primary keys must stay consistent. A pool is a conjunction of binary
// comparisons over terms (variables or constants).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ndlog/ast.h"
#include "util/value.h"

namespace mp::solver {

struct Term {
  bool is_var = false;
  std::string var;  // e.g. "G0.c2" or "Const:r7/sel0"
  Value val;

  static Term variable(std::string name) {
    Term t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static Term constant(Value v) {
    Term t;
    t.val = std::move(v);
    return t;
  }
  std::string to_string() const { return is_var ? var : val.to_string(); }
  bool operator==(const Term& o) const {
    if (is_var != o.is_var) return false;
    return is_var ? var == o.var : val == o.val;
  }
};

struct Constraint {
  Term lhs;
  ndlog::CmpOp op = ndlog::CmpOp::Eq;
  Term rhs;
  std::string to_string() const {
    return lhs.to_string() + " " + ndlog::to_string(op) + " " + rhs.to_string();
  }
};

class ConstraintPool {
 public:
  void add(Constraint c) { constraints_.push_back(std::move(c)); }
  void add(Term lhs, ndlog::CmpOp op, Term rhs) {
    constraints_.push_back(Constraint{std::move(lhs), op, std::move(rhs)});
  }
  void eq(const std::string& var, Value v) {
    add(Term::variable(var), ndlog::CmpOp::Eq, Term::constant(std::move(v)));
  }
  void merge(const ConstraintPool& o) {
    constraints_.insert(constraints_.end(), o.constraints_.begin(),
                        o.constraints_.end());
  }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }
  std::string to_string() const;

  // All variable names mentioned, in first-appearance order.
  std::vector<std::string> variables() const;

 private:
  std::vector<Constraint> constraints_;
};

// Evaluate a constraint under a (complete) assignment.
bool holds(const Constraint& c,
           const std::vector<std::pair<std::string, Value>>& assignment);

}  // namespace mp::solver
