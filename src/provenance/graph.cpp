#include "provenance/graph.h"

namespace mp::prov {

const char* to_string(VertexKind k) {
  switch (k) {
    case VertexKind::Exist: return "EXIST";
    case VertexKind::Insert: return "INSERT";
    case VertexKind::Delete: return "DELETE";
    case VertexKind::Derive: return "DERIVE";
    case VertexKind::Underive: return "UNDERIVE";
    case VertexKind::Appear: return "APPEAR";
    case VertexKind::Disappear: return "DISAPPEAR";
    case VertexKind::Send: return "SEND";
    case VertexKind::Receive: return "RECEIVE";
    case VertexKind::NExist: return "NEXIST";
    case VertexKind::NDerive: return "NDERIVE";
    case VertexKind::NAppear: return "NAPPEAR";
  }
  return "?";
}

bool is_negative(VertexKind k) {
  return k == VertexKind::NExist || k == VertexKind::NDerive ||
         k == VertexKind::NAppear;
}

std::string Vertex::label() const {
  std::string out = mp::prov::to_string(kind);
  out += "[" + tuple.to_string() + " @" + node.to_string();
  if (!rule.empty()) out += ", rule " + rule;
  out += ", t=" + std::to_string(time) + "]";
  return out;
}

std::vector<size_t> ProvenanceGraph::leaves() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].children.empty()) out.push_back(i);
  }
  return out;
}

std::string ProvenanceGraph::to_string() const {
  std::string out;
  if (!vertices_.empty()) print(out, 0, 0);
  return out;
}

void ProvenanceGraph::print(std::string& out, size_t idx, int depth) const {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += vertices_[idx].label();
  out += "\n";
  for (size_t c : vertices_[idx].children) print(out, c, depth + 1);
}

}  // namespace mp::prov
