#include "provenance/query.h"

#include <set>

#include "obs/obs.h"
#include "obs/span.h"

namespace mp::prov {

namespace {

const obs::PhaseId kSpanExplainExists = obs::phase_id("prov.explain_exists");
const obs::PhaseId kSpanExplainMissing = obs::phase_id("prov.explain_missing");

void record_latency(const char* name, uint64_t t0) {
  if (!obs::enabled()) return;
  obs::Registry::global().histogram(name).record(obs::now_ns() - t0);
}

// Walks the derivation record graph on interned handles; Tuples are
// materialized only when a vertex is emitted (the graph's labels keep
// their exact pre-pool formatting).
void explain_ref(const eval::Engine& engine, ProvenanceGraph& g, size_t parent,
                 eval::TupleRef ref, size_t depth,
                 std::set<eval::TupleRef>& on_path) {
  const auto& log = engine.log();
  if (depth == 0 || on_path.count(ref)) return;
  on_path.insert(ref);

  if (!log.has_derivation_of(ref)) {
    // Base tuple: leaf INSERT vertex.
    Vertex v;
    v.kind = VertexKind::Insert;
    v.tuple = log.materialize(ref);
    v.node = v.tuple.location();
    const size_t idx = g.add(std::move(v));
    g.link(parent, idx);
  } else {
    log.for_each_derivation_of(ref, [&](size_t d) {
      const eval::DerivRecord& rec = log.derivations()[d];
      Vertex v;
      v.kind = VertexKind::Derive;
      v.tuple = log.head_of(rec);
      v.node = v.tuple.location();
      v.rule = log.rule_name(rec.rule);
      // event_time (not event()): the derive event may already have been
      // compacted into the log's checkpoint.
      v.time = log.event_time(rec.derive_event);
      const size_t idx = g.add(std::move(v));
      g.link(parent, idx);
      for (eval::TupleRef b : log.body_of(rec)) {
        Vertex bv;
        bv.kind = VertexKind::Exist;
        bv.tuple = log.materialize(b);
        bv.node = bv.tuple.location();
        const size_t bidx = g.add(std::move(bv));
        g.link(idx, bidx);
        explain_ref(engine, g, bidx, b, depth - 1, on_path);
      }
      return true;
    });
  }
  on_path.erase(ref);
}

}  // namespace

ProvenanceGraph explain_exists(const eval::Engine& engine,
                               const eval::Tuple& tuple, size_t max_depth) {
  obs::Span span(kSpanExplainExists);
  const uint64_t t0 = obs::now_ns();
  ProvenanceGraph g;
  Vertex root;
  root.kind = VertexKind::Exist;
  root.node = tuple.location();
  root.tuple = tuple;
  g.add(std::move(root));
  const eval::TupleRef ref = engine.log().find_ref(tuple);
  if (ref != eval::kNoTupleRef) {
    std::set<eval::TupleRef> on_path;
    explain_ref(engine, g, 0, ref, max_depth, on_path);
  } else if (max_depth > 0) {
    // Never recorded: no derivations exist, so the pre-pool walk emitted a
    // base-tuple INSERT leaf under the root; keep that shape.
    Vertex v;
    v.kind = VertexKind::Insert;
    v.node = tuple.location();
    v.tuple = tuple;
    const size_t idx = g.add(std::move(v));
    g.link(0, idx);
  }
  record_latency("prov.explain_exists.latency_ns", t0);
  return g;
}

ProvenanceGraph explain_missing(const eval::Engine& engine,
                                const TuplePattern& pattern,
                                size_t max_depth) {
  obs::Span span(kSpanExplainMissing);
  const uint64_t t0 = obs::now_ns();
  ProvenanceGraph g;
  Vertex root;
  root.kind = VertexKind::NExist;
  root.tuple.table = pattern.table;
  root.node = Value::str("?");
  g.add(std::move(root));
  if (max_depth == 0) {
    record_latency("prov.explain_missing.latency_ns", t0);
    return g;
  }

  const auto& program = engine.program();
  const auto& history = engine.history();
  for (const auto& rule : program.rules) {
    if (rule.head.table != pattern.table) continue;
    // NDERIVE: this rule failed to derive a matching tuple.
    Vertex nd;
    nd.kind = VertexKind::NDerive;
    nd.rule = rule.name;
    nd.tuple.table = pattern.table;
    nd.node = Value::str("?");
    const size_t nd_idx = g.add(std::move(nd));
    g.link(0, nd_idx);

    // For each body atom, record whether any historical tuple could have
    // matched it (EXIST child) or none did (NAPPEAR child).
    for (const auto& atom : rule.body) {
      TuplePattern any_of;  // unconstrained: representative lookup
      any_of.table = atom.table;
      bool any = false;
      history.probe(any_of, [&](eval::TupleRef ref) {
        // Cheap arity screen: full unification is done by the repair
        // engine; here we only build the explanatory tree.
        if (history.row_of(ref).size() != atom.args.size()) return true;
        any = true;
        Vertex ev;
        ev.kind = VertexKind::Exist;
        ev.tuple = history.materialize(ref);
        ev.node = ev.tuple.location();
        const size_t eidx = g.add(std::move(ev));
        g.link(nd_idx, eidx);
        return false;  // one representative per atom keeps the tree readable
      });
      if (!any) {
        Vertex nv;
        nv.kind = VertexKind::NAppear;
        nv.tuple.table = atom.table;
        nv.node = Value::str("?");
        const size_t nidx = g.add(std::move(nv));
        g.link(nd_idx, nidx);
      }
    }
  }
  record_latency("prov.explain_missing.latency_ns", t0);
  return g;
}

}  // namespace mp::prov
