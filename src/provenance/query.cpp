#include "provenance/query.h"

#include <set>

namespace mp::prov {

namespace {

void explain_tuple(const eval::Engine& engine, ProvenanceGraph& g,
                   size_t parent, const eval::Tuple& tuple, size_t depth,
                   std::set<std::string>& on_path) {
  const auto& log = engine.log();
  const std::string key = tuple.to_string();
  if (depth == 0 || on_path.count(key)) return;
  on_path.insert(key);

  if (!log.has_derivation_of(tuple)) {
    // Base tuple: leaf INSERT vertex.
    Vertex v;
    v.kind = VertexKind::Insert;
    v.node = tuple.location();
    v.tuple = tuple;
    const size_t idx = g.add(std::move(v));
    g.link(parent, idx);
  } else {
    log.for_each_derivation_of(tuple, [&](size_t d) {
      const eval::DerivRecord& rec = log.derivations()[d];
      Vertex v;
      v.kind = VertexKind::Derive;
      v.node = rec.head.location();
      v.tuple = rec.head;
      v.rule = rec.rule;
      // event_time (not event()): the derive event may already have been
      // compacted into the log's checkpoint.
      v.time = log.event_time(rec.derive_event);
      const size_t idx = g.add(std::move(v));
      g.link(parent, idx);
      for (const eval::Tuple& b : rec.body) {
        Vertex bv;
        bv.kind = VertexKind::Exist;
        bv.node = b.location();
        bv.tuple = b;
        const size_t bidx = g.add(std::move(bv));
        g.link(idx, bidx);
        explain_tuple(engine, g, bidx, b, depth - 1, on_path);
      }
      return true;
    });
  }
  on_path.erase(key);
}

}  // namespace

ProvenanceGraph explain_exists(const eval::Engine& engine,
                               const eval::Tuple& tuple, size_t max_depth) {
  ProvenanceGraph g;
  Vertex root;
  root.kind = VertexKind::Exist;
  root.node = tuple.location();
  root.tuple = tuple;
  g.add(std::move(root));
  std::set<std::string> on_path;
  explain_tuple(engine, g, 0, tuple, max_depth, on_path);
  return g;
}

ProvenanceGraph explain_missing(const eval::Engine& engine,
                                const TuplePattern& pattern,
                                size_t max_depth) {
  ProvenanceGraph g;
  Vertex root;
  root.kind = VertexKind::NExist;
  root.tuple.table = pattern.table;
  root.node = Value::str("?");
  g.add(std::move(root));
  if (max_depth == 0) return g;

  const auto& program = engine.program();
  for (const auto& rule : program.rules) {
    if (rule.head.table != pattern.table) continue;
    // NDERIVE: this rule failed to derive a matching tuple.
    Vertex nd;
    nd.kind = VertexKind::NDerive;
    nd.rule = rule.name;
    nd.tuple.table = pattern.table;
    nd.node = Value::str("?");
    const size_t nd_idx = g.add(std::move(nd));
    g.link(0, nd_idx);

    // For each body atom, record whether any historical tuple could have
    // matched it (EXIST child) or none did (NAPPEAR child).
    for (const auto& atom : rule.body) {
      TuplePattern any_of;  // unconstrained: representative lookup
      any_of.table = atom.table;
      bool any = false;
      engine.history().probe(any_of, [&](const eval::Tuple& t) {
        // Cheap arity screen: full unification is done by the repair
        // engine; here we only build the explanatory tree.
        if (t.row.size() != atom.args.size()) return true;
        any = true;
        Vertex ev;
        ev.kind = VertexKind::Exist;
        ev.node = t.location();
        ev.tuple = t;
        const size_t eidx = g.add(std::move(ev));
        g.link(nd_idx, eidx);
        return false;  // one representative per atom keeps the tree readable
      });
      if (!any) {
        Vertex nv;
        nv.kind = VertexKind::NAppear;
        nv.tuple.table = atom.table;
        nv.node = Value::str("?");
        const size_t nidx = g.add(std::move(nv));
        g.link(nd_idx, nidx);
      }
    }
  }
  return g;
}

}  // namespace mp::prov
