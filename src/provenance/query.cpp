#include "provenance/query.h"

#include <set>

namespace mp::prov {

std::string FieldConstraint::to_string() const {
  return "col" + std::to_string(col) + " " + ndlog::to_string(op) + " " +
         value.to_string();
}

bool TuplePattern::matches(const Row& row) const {
  for (const auto& f : fields) {
    if (f.col >= row.size()) return false;
    if (!ndlog::cmp_eval(f.op, row[f.col], f.value)) return false;
  }
  return true;
}

std::string TuplePattern::to_string() const {
  std::string out = table + "[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += fields[i].to_string();
  }
  out += "]";
  return out;
}

namespace {

void explain_tuple(const eval::Engine& engine, ProvenanceGraph& g,
                   size_t parent, const eval::Tuple& tuple, size_t depth,
                   std::set<std::string>& on_path) {
  const auto& log = engine.log();
  const std::string key = tuple.to_string();
  if (depth == 0 || on_path.count(key)) return;
  on_path.insert(key);

  auto derivs = log.derivations_of(tuple);
  if (derivs.empty()) {
    // Base tuple: leaf INSERT vertex.
    Vertex v;
    v.kind = VertexKind::Insert;
    v.node = tuple.location();
    v.tuple = tuple;
    const size_t idx = g.add(std::move(v));
    g.link(parent, idx);
  } else {
    for (size_t d : derivs) {
      const eval::DerivRecord& rec = log.derivations()[d];
      Vertex v;
      v.kind = VertexKind::Derive;
      v.node = rec.head.location();
      v.tuple = rec.head;
      v.rule = rec.rule;
      v.time = log.event(rec.derive_event).time;
      const size_t idx = g.add(std::move(v));
      g.link(parent, idx);
      for (const eval::Tuple& b : rec.body) {
        Vertex bv;
        bv.kind = VertexKind::Exist;
        bv.node = b.location();
        bv.tuple = b;
        const size_t bidx = g.add(std::move(bv));
        g.link(idx, bidx);
        explain_tuple(engine, g, bidx, b, depth - 1, on_path);
      }
    }
  }
  on_path.erase(key);
}

}  // namespace

ProvenanceGraph explain_exists(const eval::Engine& engine,
                               const eval::Tuple& tuple, size_t max_depth) {
  ProvenanceGraph g;
  Vertex root;
  root.kind = VertexKind::Exist;
  root.node = tuple.location();
  root.tuple = tuple;
  g.add(std::move(root));
  std::set<std::string> on_path;
  explain_tuple(engine, g, 0, tuple, max_depth, on_path);
  return g;
}

ProvenanceGraph explain_missing(const eval::Engine& engine,
                                const TuplePattern& pattern,
                                size_t max_depth) {
  ProvenanceGraph g;
  Vertex root;
  root.kind = VertexKind::NExist;
  root.tuple.table = pattern.table;
  root.node = Value::str("?");
  g.add(std::move(root));
  if (max_depth == 0) return g;

  const auto& program = engine.program();
  for (const auto& rule : program.rules) {
    if (rule.head.table != pattern.table) continue;
    // NDERIVE: this rule failed to derive a matching tuple.
    Vertex nd;
    nd.kind = VertexKind::NDerive;
    nd.rule = rule.name;
    nd.tuple.table = pattern.table;
    nd.node = Value::str("?");
    const size_t nd_idx = g.add(std::move(nd));
    g.link(0, nd_idx);

    // For each body atom, record whether any historical tuple could have
    // matched it (EXIST child) or none did (NAPPEAR child).
    for (const auto& atom : rule.body) {
      const auto& hist = engine.log().history(atom.table);
      bool any = false;
      for (const auto& t : hist) {
        // Cheap arity screen: full unification is done by the repair
        // engine; here we only build the explanatory tree.
        if (t.row.size() != atom.args.size()) continue;
        any = true;
        Vertex ev;
        ev.kind = VertexKind::Exist;
        ev.node = t.location();
        ev.tuple = t;
        const size_t eidx = g.add(std::move(ev));
        g.link(nd_idx, eidx);
        break;  // one representative per atom keeps the tree readable
      }
      if (!any) {
        Vertex nv;
        nv.kind = VertexKind::NAppear;
        nv.tuple.table = atom.table;
        nv.node = Value::str("?");
        const size_t nidx = g.add(std::move(nv));
        g.link(nd_idx, nidx);
      }
    }
  }
  return g;
}

}  // namespace mp::prov
