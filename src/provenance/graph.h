// Classic provenance graphs (Section 3.1): vertices are events, edges are
// direct causality. Positive vertices (EXIST/INSERT/DERIVE/APPEAR/SEND/
// RECEIVE) are materialized from the engine's event log; negative vertices
// (NEXIST/NDERIVE/...) are produced by counterfactual queries.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/event_log.h"
#include "eval/tuple.h"

namespace mp::prov {

enum class VertexKind : uint8_t {
  Exist,
  Insert,
  Delete,
  Derive,
  Underive,
  Appear,
  Disappear,
  Send,
  Receive,
  // Negative twins (negative provenance, [54]).
  NExist,
  NDerive,
  NAppear,
};

const char* to_string(VertexKind k);
bool is_negative(VertexKind k);

struct Vertex {
  VertexKind kind = VertexKind::Exist;
  Value node;
  eval::Tuple tuple;
  std::string rule;             // rule involved, if any
  eval::Time time = 0;
  std::vector<size_t> children;  // indices into ProvenanceGraph::vertices

  std::string label() const;
};

// A provenance tree/DAG rooted at the queried event. Vertices are stored
// in a flat arena; index 0 is the root.
class ProvenanceGraph {
 public:
  size_t add(Vertex v) {
    vertices_.push_back(std::move(v));
    return vertices_.size() - 1;
  }
  void link(size_t parent, size_t child) {
    vertices_[parent].children.push_back(child);
  }
  const Vertex& root() const { return vertices_.front(); }
  const Vertex& at(size_t i) const { return vertices_[i]; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  // Leaves = vertices with no children (base tuples / missing tuples).
  std::vector<size_t> leaves() const;
  // Pretty-printed tree (indented), for debugger output.
  std::string to_string() const;

 private:
  void print(std::string& out, size_t idx, int depth) const;
  std::vector<Vertex> vertices_;
};

}  // namespace mp::prov
