// Provenance queries over the engine's event log.
//
// explain_exists() reconstructs the positive provenance tree of a tuple:
// derivations recurse into their body tuples until base-inserted leaves.
//
// explain_missing() produces a negative provenance tree for a tuple
// pattern: for each rule that could have derived a matching tuple, the
// tree records which body atoms had matching historical tuples and which
// selection predicates failed — the raw material the meta-provenance
// repair engine elaborates into program changes.
#pragma once

#include <optional>

#include "eval/engine.h"
#include "eval/history.h"
#include "provenance/graph.h"

namespace mp::prov {

// The pattern types moved into the evaluation layer (eval/history.h) so
// HistoryStore::probe and Engine::match_tuples can accept them without a
// dependency cycle; these aliases keep the provenance-facing names every
// consumer (repair symptoms, scenarios, tests) already uses.
using FieldConstraint = eval::FieldConstraint;
using TuplePattern = eval::TuplePattern;

// Positive provenance of an existing tuple; returns an empty graph if the
// tuple never appeared. max_depth bounds recursion through derivations.
ProvenanceGraph explain_exists(const eval::Engine& engine,
                               const eval::Tuple& tuple, size_t max_depth = 32);

// Negative provenance of a missing tuple pattern.
ProvenanceGraph explain_missing(const eval::Engine& engine,
                                const TuplePattern& pattern,
                                size_t max_depth = 8);

}  // namespace mp::prov
