// Provenance queries over the engine's event log.
//
// explain_exists() reconstructs the positive provenance tree of a tuple:
// derivations recurse into their body tuples until base-inserted leaves.
//
// explain_missing() produces a negative provenance tree for a tuple
// pattern: for each rule that could have derived a matching tuple, the
// tree records which body atoms had matching historical tuples and which
// selection predicates failed — the raw material the meta-provenance
// repair engine elaborates into program changes.
#pragma once

#include <optional>

#include "eval/engine.h"
#include "provenance/graph.h"

namespace mp::prov {

// A pattern constrains some columns of a table's rows.
struct FieldConstraint {
  size_t col = 0;
  ndlog::CmpOp op = ndlog::CmpOp::Eq;
  Value value;
  std::string to_string() const;
};

struct TuplePattern {
  std::string table;
  std::vector<FieldConstraint> fields;
  bool matches(const Row& row) const;
  std::string to_string() const;
};

// Positive provenance of an existing tuple; returns an empty graph if the
// tuple never appeared. max_depth bounds recursion through derivations.
ProvenanceGraph explain_exists(const eval::Engine& engine,
                               const eval::Tuple& tuple, size_t max_depth = 32);

// Negative provenance of a missing tuple pattern.
ProvenanceGraph explain_missing(const eval::Engine& engine,
                                const TuplePattern& pattern,
                                size_t max_depth = 8);

}  // namespace mp::prov
