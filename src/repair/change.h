// The program-change algebra: each Change names one edit to an NDlog
// program (or a base-tuple insertion/deletion) that a completed meta-
// provenance tree proposes. apply() produces the candidate program; every
// change is validated so that repairs keep the syntax legal (Section 4.2:
// deleting a Const that would leave `Swi >` incomplete is not allowed).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "eval/tuple.h"
#include "meta/meta_tuple.h"
#include "ndlog/ast.h"

namespace mp::repair {

enum class ChangeKind : uint8_t {
  ChangeSelConst,    // replace the constant operand of a selection
  ChangeSelOp,       // replace the comparison operator of a selection
  ChangeSelVar,      // replace a variable operand of a selection
  DeleteSel,         // drop a selection predicate
  ChangeAssignConst, // replace a constant in an assignment RHS
  ChangeAssignVar,   // replace the assignment RHS with a variable
  DeleteBodyAtom,    // drop a body predicate (PredFunc deletion)
  ChangeHeadTable,   // retarget the head of an existing rule
  CopyRuleRetarget,  // copy a rule and retarget/permute its head
  DeleteRule,        // drop a whole rule
  InsertBaseTuple,   // manual state injection (e.g. install a flow entry)
  DeleteBaseTuple,   // remove a base tuple
};

const char* to_string(ChangeKind k);

struct Change {
  ChangeKind kind = ChangeKind::ChangeSelConst;
  std::string rule;          // target rule (unused for base-tuple changes)
  size_t index = 0;          // selection / assignment / body-atom ordinal
  size_t side = 0;           // 0 = lhs, 1 = rhs (selection operands)
  Value new_value;           // constant or variable name (as Str)
  ndlog::CmpOp new_op = ndlog::CmpOp::Eq;
  eval::Tuple tuple;         // for Insert/DeleteBaseTuple
  std::string new_head_table;          // for head retargeting
  std::vector<size_t> head_perm;       // argument permutation for retarget
  std::string copy_name;               // name of the copied rule

  // Human-readable description in the paper's style, e.g.
  //   "Changing Swi==2 in r7 to Swi==3".
  std::string describe(const ndlog::Program& p) const;
  // Applies to `p`; returns false if the change does not fit the program
  // (stale index, missing rule) or would break validity.
  bool apply(ndlog::Program& p) const;
};

struct RepairCandidate {
  std::vector<Change> changes;
  double cost = 0.0;
  std::string description;
  // Filled by the backtester:
  bool effective = false;
  bool accepted = false;
  double ks_statistic = 0.0;

  std::string describe(const ndlog::Program& p) const;
};

// Applies all changes of a candidate to a copy of `base`; nullopt if any
// change fails to apply or the result does not validate.
std::optional<ndlog::Program> apply_candidate(const ndlog::Program& base,
                                              const RepairCandidate& cand);

// Base tuples a candidate wants inserted (manual repairs).
std::vector<eval::Tuple> candidate_insertions(const RepairCandidate& cand);
std::vector<eval::Tuple> candidate_deletions(const RepairCandidate& cand);

}  // namespace mp::repair
