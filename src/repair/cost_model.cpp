#include "repair/cost_model.h"

namespace mp::repair {

namespace {

// Finds the constant currently at a change's target site, if any.
const Value* site_constant(const Change& c, const ndlog::Program& p) {
  const ndlog::Rule* r = p.find_rule(c.rule);
  if (r == nullptr) return nullptr;
  const ndlog::ExprPtr* slot = nullptr;
  if (c.kind == ChangeKind::ChangeSelConst && c.index < r->sels.size()) {
    slot = c.side == 0 ? &r->sels[c.index].lhs : &r->sels[c.index].rhs;
  } else if (c.kind == ChangeKind::ChangeAssignConst &&
             c.index < r->assigns.size()) {
    slot = &r->assigns[c.index].expr;
  }
  if (slot == nullptr || !*slot || !(*slot)->is_const()) return nullptr;
  return &(*slot)->cval();
}

}  // namespace

double CostModel::cost(const Change& c, const ndlog::Program& p) const {
  switch (c.kind) {
    case ChangeKind::ChangeSelConst: {
      const Value* old = site_constant(c, p);
      if (old != nullptr && old->is_int() && c.new_value.is_int() &&
          std::llabs(old->as_int() - c.new_value.as_int()) == 1) {
        return change_const_near;
      }
      return change_const_base;
    }
    case ChangeKind::ChangeSelOp: return change_op;
    case ChangeKind::ChangeSelVar: return change_var;
    case ChangeKind::DeleteSel: return delete_sel;
    case ChangeKind::ChangeAssignConst: {
      const Value* old = site_constant(c, p);
      if (old != nullptr && old->is_int() && c.new_value.is_int() &&
          std::llabs(old->as_int() - c.new_value.as_int()) == 1) {
        return change_const_near + 0.5;
      }
      return change_assign_const;
    }
    case ChangeKind::ChangeAssignVar: return change_assign_var;
    case ChangeKind::DeleteBodyAtom: return delete_atom;
    case ChangeKind::ChangeHeadTable:
    case ChangeKind::CopyRuleRetarget: {
      size_t displaced = 0;
      for (size_t i = 0; i < c.head_perm.size(); ++i) {
        if (c.head_perm[i] != i) ++displaced;
      }
      const double base =
          c.kind == ChangeKind::ChangeHeadTable ? change_head : copy_rule;
      return base + head_perm_extra * static_cast<double>(displaced);
    }
    case ChangeKind::DeleteRule: return delete_rule;
    case ChangeKind::InsertBaseTuple: return insert_tuple;
    case ChangeKind::DeleteBaseTuple: return delete_tuple;
  }
  return 10.0;
}

const CostModel& default_cost_model() {
  static const CostModel model;
  return model;
}

}  // namespace mp::repair
