#include "repair/change.h"

#include "ndlog/validate.h"

namespace mp::repair {

namespace {

using ndlog::Expr;
using ndlog::ExprPtr;

// Rewrites the constant leaf of an operand expression. For plain constants
// the whole operand is replaced; inside arithmetic the first constant leaf
// is rewritten (change sites are extracted the same way in meta/extract).
ExprPtr replace_const(const ExprPtr& e, const Value& v, bool& done) {
  if (done || !e) return e;
  if (e->is_const()) {
    done = true;
    return Expr::constant(v);
  }
  if (e->kind() == Expr::Kind::Binary) {
    ExprPtr l = replace_const(e->lhs(), v, done);
    ExprPtr r = replace_const(e->rhs(), v, done);
    if (l != e->lhs() || r != e->rhs()) {
      return Expr::binary(e->op(), std::move(l), std::move(r));
    }
  }
  return e;
}

std::string operand_desc(const ndlog::Selection& sel) { return sel.to_string(); }

}  // namespace

const char* to_string(ChangeKind k) {
  switch (k) {
    case ChangeKind::ChangeSelConst: return "change-constant";
    case ChangeKind::ChangeSelOp: return "change-operator";
    case ChangeKind::ChangeSelVar: return "change-variable";
    case ChangeKind::DeleteSel: return "delete-selection";
    case ChangeKind::ChangeAssignConst: return "change-assignment-constant";
    case ChangeKind::ChangeAssignVar: return "change-assignment-variable";
    case ChangeKind::DeleteBodyAtom: return "delete-predicate";
    case ChangeKind::ChangeHeadTable: return "change-head";
    case ChangeKind::CopyRuleRetarget: return "copy-rule";
    case ChangeKind::DeleteRule: return "delete-rule";
    case ChangeKind::InsertBaseTuple: return "insert-tuple";
    case ChangeKind::DeleteBaseTuple: return "delete-tuple";
  }
  return "?";
}

std::string Change::describe(const ndlog::Program& p) const {
  const ndlog::Rule* r = p.find_rule(rule);
  switch (kind) {
    case ChangeKind::ChangeSelConst:
    case ChangeKind::ChangeSelVar: {
      if (r == nullptr || index >= r->sels.size()) return "(stale change)";
      const ndlog::Selection& sel = r->sels[index];
      ndlog::Selection after = sel;
      const ExprPtr repl = kind == ChangeKind::ChangeSelVar
                               ? Expr::var(new_value.as_str())
                               : Expr::constant(new_value);
      if (side == 0) after.lhs = repl; else after.rhs = repl;
      return "Changing " + operand_desc(sel) + " in " + rule + " to " +
             operand_desc(after);
    }
    case ChangeKind::ChangeSelOp: {
      if (r == nullptr || index >= r->sels.size()) return "(stale change)";
      const ndlog::Selection& sel = r->sels[index];
      ndlog::Selection after = sel;
      after.op = new_op;
      return "Changing " + operand_desc(sel) + " in " + rule + " to " +
             operand_desc(after);
    }
    case ChangeKind::DeleteSel: {
      if (r == nullptr || index >= r->sels.size()) return "(stale change)";
      return "Deleting " + operand_desc(r->sels[index]) + " in " + rule;
    }
    case ChangeKind::ChangeAssignConst: {
      if (r == nullptr || index >= r->assigns.size()) return "(stale change)";
      const ndlog::Assignment& a = r->assigns[index];
      ndlog::Assignment after = a;
      bool done = false;
      after.expr = replace_const(a.expr, new_value, done);
      return "Changing " + a.to_string() + " in " + rule + " to " +
             after.to_string();
    }
    case ChangeKind::ChangeAssignVar: {
      if (r == nullptr || index >= r->assigns.size()) return "(stale change)";
      const ndlog::Assignment& a = r->assigns[index];
      return "Changing " + a.to_string() + " in " + rule + " to " + a.var +
             " := " + new_value.as_str();
    }
    case ChangeKind::DeleteBodyAtom: {
      if (r == nullptr || index >= r->body.size()) return "(stale change)";
      return "Deleting predicate " + r->body[index].table + " in " + rule;
    }
    case ChangeKind::ChangeHeadTable:
    case ChangeKind::CopyRuleRetarget: {
      std::string head = new_head_table + "(";
      if (r != nullptr) {
        for (size_t i = 0; i < head_perm.size(); ++i) {
          if (i) head += ",";
          head += head_perm[i] < r->head.args.size()
                      ? r->head.args[head_perm[i]]->to_string()
                      : "?";
        }
      }
      head += head_perm.empty() ? "...)" : ")";
      if (kind == ChangeKind::ChangeHeadTable) {
        return "Changing the head of " + rule + " to " + head;
      }
      return "Copying " + rule + " and replacing head with " + head;
    }
    case ChangeKind::DeleteRule:
      return "Deleting rule " + rule;
    case ChangeKind::InsertBaseTuple:
      return "Manually installing " + tuple.to_string();
    case ChangeKind::DeleteBaseTuple:
      return "Deleting base tuple " + tuple.to_string();
  }
  return "?";
}

bool Change::apply(ndlog::Program& p) const {
  switch (kind) {
    case ChangeKind::ChangeSelConst:
    case ChangeKind::ChangeSelVar: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr || index >= r->sels.size()) return false;
      ndlog::Selection& sel = r->sels[index];
      ExprPtr& slot = side == 0 ? sel.lhs : sel.rhs;
      if (kind == ChangeKind::ChangeSelVar) {
        if (!new_value.is_str()) return false;
        slot = Expr::var(new_value.as_str());
      } else {
        bool done = false;
        ExprPtr next = replace_const(slot, new_value, done);
        if (!done) return false;  // no constant at this site
        slot = std::move(next);
      }
      return true;
    }
    case ChangeKind::ChangeSelOp: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr || index >= r->sels.size()) return false;
      r->sels[index].op = new_op;
      return true;
    }
    case ChangeKind::DeleteSel: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr || index >= r->sels.size()) return false;
      r->sels.erase(r->sels.begin() + static_cast<long>(index));
      return true;
    }
    case ChangeKind::ChangeAssignConst: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr || index >= r->assigns.size()) return false;
      bool done = false;
      ExprPtr next = replace_const(r->assigns[index].expr, new_value, done);
      if (!done) return false;
      r->assigns[index].expr = std::move(next);
      return true;
    }
    case ChangeKind::ChangeAssignVar: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr || index >= r->assigns.size()) return false;
      if (!new_value.is_str()) return false;
      r->assigns[index].expr = Expr::var(new_value.as_str());
      return true;
    }
    case ChangeKind::DeleteBodyAtom: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr || index >= r->body.size()) return false;
      if (r->body.size() <= 1) return false;  // a rule needs a body
      r->body.erase(r->body.begin() + static_cast<long>(index));
      return true;
    }
    case ChangeKind::ChangeHeadTable: {
      ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr) return false;
      const ndlog::TableDecl* decl = p.find_table(new_head_table);
      if (decl == nullptr) return false;
      ndlog::Atom head;
      head.table = new_head_table;
      if (head_perm.empty()) {
        if (decl->arity != r->head.args.size()) return false;
        head.args = r->head.args;
      } else {
        if (head_perm.size() != decl->arity) return false;
        for (size_t src : head_perm) {
          if (src >= r->head.args.size()) return false;
          head.args.push_back(r->head.args[src]);
        }
      }
      r->head = std::move(head);
      return true;
    }
    case ChangeKind::CopyRuleRetarget: {
      const ndlog::Rule* r = p.find_rule(rule);
      if (r == nullptr) return false;
      ndlog::Rule copy = *r;
      copy.name = copy_name.empty() ? rule + "'" : copy_name;
      if (p.find_rule(copy.name) != nullptr) return false;
      const ndlog::TableDecl* decl = p.find_table(new_head_table);
      if (decl == nullptr) return false;
      ndlog::Atom head;
      head.table = new_head_table;
      if (head_perm.empty()) {
        if (decl->arity != r->head.args.size()) return false;
        head.args = r->head.args;
      } else {
        if (head_perm.size() != decl->arity) return false;
        for (size_t src : head_perm) {
          if (src >= r->head.args.size()) return false;
          head.args.push_back(r->head.args[src]);
        }
      }
      copy.head = std::move(head);
      p.rules.push_back(std::move(copy));
      return true;
    }
    case ChangeKind::DeleteRule: {
      for (size_t i = 0; i < p.rules.size(); ++i) {
        if (p.rules[i].name == rule) {
          p.rules.erase(p.rules.begin() + static_cast<long>(i));
          return true;
        }
      }
      return false;
    }
    case ChangeKind::InsertBaseTuple:
    case ChangeKind::DeleteBaseTuple:
      return true;  // applied by the replay harness, not the program
  }
  return false;
}

std::string RepairCandidate::describe(const ndlog::Program& p) const {
  if (!description.empty()) return description;
  std::string out;
  for (size_t i = 0; i < changes.size(); ++i) {
    if (i) out += " and ";
    out += changes[i].describe(p);
  }
  return out;
}

std::optional<ndlog::Program> apply_candidate(const ndlog::Program& base,
                                              const RepairCandidate& cand) {
  ndlog::Program p = base;
  for (const Change& c : cand.changes) {
    if (!c.apply(p)) return std::nullopt;
  }
  if (!ndlog::is_valid(p)) return std::nullopt;
  return p;
}

std::vector<eval::Tuple> candidate_insertions(const RepairCandidate& cand) {
  std::vector<eval::Tuple> out;
  for (const Change& c : cand.changes) {
    if (c.kind == ChangeKind::InsertBaseTuple) out.push_back(c.tuple);
  }
  return out;
}

std::vector<eval::Tuple> candidate_deletions(const RepairCandidate& cand) {
  std::vector<eval::Tuple> out;
  for (const Change& c : cand.changes) {
    if (c.kind == ChangeKind::DeleteBaseTuple) out.push_back(c.tuple);
  }
  return out;
}

}  // namespace mp::repair
