#include "repair/forest.h"

#include <algorithm>
#include <queue>
#include <set>

#include "ndlog/validate.h"
#include "obs/obs.h"
#include "obs/span.h"

namespace mp::repair {

namespace {

// Phase ids interned once per process (src/obs/phase.h); the accumulation
// paths below pay a vector index instead of the old per-call string-map
// lookup.
const obs::PhaseId kPhaseHistory = obs::phase_id("history lookups");
const obs::PhaseId kPhaseSolve = obs::phase_id("constraint solving");
const obs::PhaseId kPhasePatch = obs::phase_id("patch generation");
const obs::PhaseId kSpanExplore = obs::phase_id("repair.explore");

using eval::Env;
using eval::Tuple;
using eval::eval_expr;
using ndlog::CmpOp;
using ndlog::Expr;
using ndlog::Rule;

bool unify_atom(const ndlog::Atom& atom, const Row& row, Env& env) {
  if (atom.args.size() != row.size()) return false;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Expr& arg = *atom.args[i];
    if (arg.is_const()) {
      if (!(arg.cval() == row[i])) return false;
    } else if (arg.is_var()) {
      auto [it, inserted] = env.try_emplace(arg.var_name(), row[i]);
      if (!inserted && !(it->second == row[i])) return false;
    } else {
      return false;
    }
  }
  return true;
}

// Variables that influence selections, assignments or the head of a rule;
// join results are deduplicated on these.
std::vector<std::string> relevant_vars(const Rule& rule) {
  std::vector<std::string> vars;
  for (const auto& s : rule.sels) {
    s.lhs->collect_vars(vars);
    s.rhs->collect_vars(vars);
  }
  for (const auto& a : rule.assigns) a.expr->collect_vars(vars);
  for (const auto& arg : rule.head.args) arg->collect_vars(vars);
  return vars;
}

std::string env_signature(const Env& env, const std::vector<std::string>& vars) {
  std::string sig;
  for (const auto& v : vars) {
    auto it = env.find(v);
    sig += v + "=" + (it == env.end() ? "?" : it->second.to_string()) + ";";
  }
  return sig;
}

// The selection side that is a plain constant, if exactly one side is.
// Returns 0 (lhs), 1 (rhs) or -1.
int const_side(const ndlog::Selection& sel) {
  const bool l = sel.lhs->is_const();
  const bool r = sel.rhs->is_const();
  if (l == r) return -1;
  return l ? 0 : 1;
}

CmpOp oriented_op(const ndlog::Selection& sel, int cside) {
  // Normalise to  <value-side>  op  <const-side>.
  if (cside == 1) return sel.op;
  switch (sel.op) {
    case CmpOp::Lt: return CmpOp::Gt;
    case CmpOp::Gt: return CmpOp::Lt;
    case CmpOp::Le: return CmpOp::Ge;
    case CmpOp::Ge: return CmpOp::Le;
    default: return sel.op;
  }
}

void push_unique(std::vector<Value>& vals, const Value& v, size_t cap) {
  if (vals.size() >= cap) return;
  for (const auto& x : vals)
    if (x == v) return;
  vals.push_back(v);
}

}  // namespace

ForestExplorer::ForestExplorer(const eval::Engine& engine,
                               RepairSpaceConfig config, const CostModel& costs)
    : engine_(engine), cfg_(std::move(config)), costs_(costs) {}

std::vector<RepairCandidate> ForestExplorer::explore(const Symptom& symptom,
                                                     PhaseClock* phases,
                                                     ExploreStats* stats) {
  phases_ = phases;
  stats_ = stats;
  obs::Span span(kSpanExplore);
  const uint64_t explore_t0 = obs::now_ns();

  // Min-priority queue over (cost, pending-goal count): the paper pops the
  // cheapest tree, breaking ties toward fewer unexpanded vertexes.
  auto cheaper = [](const TreeState& a, const TreeState& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.pending.size() > b.pending.size();
  };
  std::priority_queue<TreeState, std::vector<TreeState>, decltype(cheaper)>
      queue(cheaper);

  TreeState init;
  init.pending.push_back(Goal{symptom.pattern,
                              symptom.polarity == Symptom::Polarity::Missing,
                              cfg_.max_depth});
  queue.push(std::move(init));

  std::vector<RepairCandidate> out;
  std::set<std::string> seen;
  size_t expansions = 0;

  while (!queue.empty() && expansions < cfg_.max_expansions &&
         out.size() < cfg_.max_candidates) {
    TreeState st = queue.top();
    queue.pop();
    if (st.cost > cfg_.max_cost) break;  // everything else is costlier

    if (st.pending.empty()) {
      if (st.changes.empty()) continue;
      Timer patch_timer;
      RepairCandidate cand;
      cand.changes = st.changes;
      cand.cost = st.cost;
      cand.description = cand.describe(engine_.program());
      const bool fresh = seen.insert(cand.description).second;
      bool valid = fresh;
      if (fresh) {
        // Manual-insert-only candidates have no program changes to verify.
        bool touches_program = false;
        for (const auto& c : cand.changes) {
          if (c.kind != ChangeKind::InsertBaseTuple &&
              c.kind != ChangeKind::DeleteBaseTuple) {
            touches_program = true;
          }
        }
        if (touches_program) {
          valid = apply_candidate(engine_.program(), cand).has_value();
        }
      }
      if (phases_ != nullptr) phases_->add(kPhasePatch, patch_timer.seconds());
      if (valid) {
        if (stats_ != nullptr) ++stats_->trees_completed;
        out.push_back(std::move(cand));
      }
      continue;
    }

    ++expansions;
    if (stats_ != nullptr) ++stats_->goals_expanded;
    std::vector<TreeState> children;
    expand(st, children);
    for (TreeState& child : children) {
      child.cost += costs_.expansion_epsilon;
      if (child.cost <= cfg_.max_cost) queue.push(std::move(child));
      if (stats_ != nullptr) ++stats_->trees_forked;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const RepairCandidate& a, const RepairCandidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.description < b.description;
            });
  if (obs::enabled()) {
    static obs::Histogram& lat =
        obs::Registry::global().histogram("repair.explore.latency_ns");
    lat.record(obs::now_ns() - explore_t0);
  }
  return out;
}

void ForestExplorer::expand(const TreeState& st, std::vector<TreeState>& out) {
  Goal goal = st.pending.front();
  TreeState base = st;
  base.pending.erase(base.pending.begin());
  if (goal.make_appear) {
    expand_appear(base, goal, out);
  } else {
    expand_disappear(base, goal, out);
  }
}

// ---------------------------------------------------------------------------
// Negative symptoms: make a matching tuple appear (Section 4.1).
// ---------------------------------------------------------------------------

void ForestExplorer::expand_appear(const TreeState& st, const Goal& goal,
                                   std::vector<TreeState>& out) {
  // Option 1: manual base-tuple injection.
  for (Change& c : manual_insert_options(goal)) {
    TreeState child = st;
    child.cost += costs_.cost(c, engine_.program());
    child.changes.push_back(std::move(c));
    out.push_back(std::move(child));
  }

  // Option 2: make some rule with a matching head fire.
  bool any_rule = false;
  for (const Rule& rule : engine_.program().rules) {
    if (rule.head.table != goal.pattern.table) continue;
    any_rule = true;

    for (JoinResult& jr : enumerate_joins(rule)) {
      if (!jr.unbound_atoms.empty()) {
        // Some body atom has no historical match: fork a tree that defers
        // to subgoals (the tree's constraint pool is approximated by
        // propagating the head pattern through shared variables).
        if (goal.depth == 0) continue;
        TreeState child = st;
        bool ok = true;
        for (size_t atom_idx : jr.unbound_atoms) {
          const ndlog::Atom& atom = rule.body[atom_idx];
          prov::TuplePattern sub;
          sub.table = atom.table;
          for (size_t i = 0; i < atom.args.size(); ++i) {
            const Expr& arg = *atom.args[i];
            if (arg.is_const()) {
              sub.fields.push_back({i, CmpOp::Eq, arg.cval()});
            } else if (arg.is_var()) {
              // Propagate the goal pattern through head variables.
              for (size_t h = 0; h < rule.head.args.size(); ++h) {
                if (!rule.head.args[h]->is_var() ||
                    rule.head.args[h]->var_name() != arg.var_name()) {
                  continue;
                }
                for (const auto& f : goal.pattern.fields) {
                  if (f.col == h) sub.fields.push_back({i, f.op, f.value});
                }
              }
              // ...and through variables already bound by sibling atoms.
              auto it = jr.env.find(arg.var_name());
              if (it != jr.env.end()) {
                sub.fields.push_back({i, CmpOp::Eq, it->second});
              }
            }
          }
          if (engine_.catalog().find(sub.table) == nullptr) {
            ok = false;
            break;
          }
          child.pending.push_back(Goal{std::move(sub), true, goal.depth - 1});
        }
        if (ok) out.push_back(std::move(child));
        continue;
      }

      // Fully bound join: evaluate assignments, then check the head
      // against the pattern and find the failing selections.
      Env env = jr.env;
      bool env_ok = true;
      for (const auto& asg : rule.assigns) {
        Value v;
        if (!eval_expr(*asg.expr, env, v)) {
          env_ok = false;
          break;
        }
        env[asg.var] = std::move(v);
      }
      if (!env_ok) continue;

      // Head mismatches that Eq-constraints could fix via assignments.
      std::vector<std::pair<std::string, Value>> needed_fixes;
      bool feasible = true;
      for (const auto& fc : goal.pattern.fields) {
        if (fc.col >= rule.head.args.size()) {
          feasible = false;
          break;
        }
        Value hv;
        if (!eval_expr(*rule.head.args[fc.col], env, hv)) {
          feasible = false;
          break;
        }
        if (ndlog::cmp_eval(fc.op, hv, fc.value)) continue;
        if (fc.op == CmpOp::Eq && rule.head.args[fc.col]->is_var()) {
          needed_fixes.emplace_back(rule.head.args[fc.col]->var_name(),
                                    fc.value);
        } else {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;

      std::vector<size_t> failing;
      for (size_t i = 0; i < rule.sels.size(); ++i) {
        Value a, b;
        if (!eval_expr(*rule.sels[i].lhs, env, a) ||
            !eval_expr(*rule.sels[i].rhs, env, b)) {
          failing.clear();
          feasible = false;
          break;
        }
        if (!ndlog::cmp_eval(rule.sels[i].op, a, b)) failing.push_back(i);
      }
      if (!feasible) continue;
      if (failing.empty() && needed_fixes.empty()) continue;  // fires already
      if (failing.size() > 2) continue;  // cost would exceed any cut-off

      // One repair option per failing selection and per needed head fix;
      // the tree forks over the cross product (Section 3.3).
      std::vector<std::vector<Change>> option_groups;
      bool possible = true;
      for (size_t i : failing) {
        auto opts = selection_fix_options(rule, i, env);
        if (opts.empty()) {
          possible = false;
          break;
        }
        option_groups.push_back(std::move(opts));
      }
      if (possible) {
        for (const auto& [var, needed] : needed_fixes) {
          auto opts = head_fix_options(rule, var, needed, env);
          if (opts.empty()) {
            possible = false;
            break;
          }
          option_groups.push_back(std::move(opts));
        }
      }
      if (!possible || option_groups.empty()) continue;

      // Iterative cartesian product, capped to keep forks bounded.
      std::vector<std::vector<Change>> combos{{}};
      for (const auto& group : option_groups) {
        std::vector<std::vector<Change>> next;
        for (const auto& prefix : combos) {
          for (const Change& opt : group) {
            if (next.size() >= 64) break;
            auto combo = prefix;
            combo.push_back(opt);
            next.push_back(std::move(combo));
          }
        }
        combos = std::move(next);
      }
      for (auto& combo : combos) {
        TreeState child = st;
        for (Change& c : combo) {
          child.cost += costs_.cost(c, engine_.program());
          child.changes.push_back(std::move(c));
        }
        out.push_back(std::move(child));
      }
    }
  }

  // Option 3: no rule derives this table at all -- synthesize one by
  // retargeting an existing rule's head (the paper's Q4 repairs).
  if (!any_rule) {
    for (Change& c : retarget_options(goal)) {
      TreeState child = st;
      child.cost += costs_.cost(c, engine_.program());
      child.changes.push_back(std::move(c));
      out.push_back(std::move(child));
    }
  }
}

// ---------------------------------------------------------------------------
// Positive symptoms: make matching tuples disappear (Section 4.2).
// ---------------------------------------------------------------------------

void ForestExplorer::expand_disappear(const TreeState& st, const Goal& goal,
                                      std::vector<TreeState>& out) {
  Timer history_timer;
  const eval::EventLog& log = engine_.log();
  // Indexed history probe filtered to tuples still live somewhere. Live
  // tuples are a subset of recorded history (every live tuple had an
  // Appear event), so this enumerates the same matches as the old
  // all_tuples scan — but in deterministic first-appearance order, and as
  // an index hit on the pattern's bound columns. The walk stays on
  // interned handles; Tuples materialize only inside emitted Changes.
  std::vector<eval::TupleRef> matching;
  const size_t scanned =
      engine_.history().probe(goal.pattern, [&](eval::TupleRef ref) {
        const Row& row = log.row_of(ref);
        if (!row.empty() &&
            engine_.exists(row[0], log.table_name(ref), row)) {
          matching.push_back(ref);
        }
        return matching.size() < 4;  // each match forks its own subtree
      });
  if (stats_ != nullptr) stats_->history_tuples_scanned += scanned;
  if (phases_ != nullptr) phases_->add(kPhaseHistory, history_timer.seconds());

  for (const eval::TupleRef target : matching) {
    const auto derivs = log.derivations_of(target);
    if (derivs.empty()) {
      // Base tuple: delete it.
      Change c;
      c.kind = ChangeKind::DeleteBaseTuple;
      c.tuple = log.materialize(target);
      TreeState child = st;
      child.cost += costs_.cost(c, engine_.program());
      child.changes.push_back(std::move(c));
      out.push_back(std::move(child));
      continue;
    }

    // Every live derivation must be killed; collect per-derivation options
    // and fork over their cross product.
    std::vector<std::vector<Change>> per_deriv;
    for (size_t d : derivs) {
      const eval::DerivRecord& rec = log.derivations()[d];
      const std::string& rule_name = log.rule_name(rec.rule);
      const Rule* rule = engine_.program().find_rule(rule_name);
      if (rule == nullptr) continue;
      std::vector<Change> opts;

      // Reconstruct the variable environment from the recorded body tuples
      // (symbolic re-execution of the derivation, Section 4.2). The engine
      // guarantees body[i] matches rule->body[i] regardless of which atom
      // triggered the firing.
      const std::span<const eval::TupleRef> body = log.body_of(rec);
      Env env;
      bool env_ok = body.size() == rule->body.size();
      if (env_ok) {
        for (size_t i = 0; i < body.size(); ++i) {
          if (body[i] == eval::kNoTupleRef ||
              log.table_name(body[i]) != rule->body[i].table ||
              !unify_atom(rule->body[i], log.row_of(body[i]), env)) {
            env_ok = false;
            break;
          }
        }
      }
      if (env_ok) {
        for (const auto& asg : rule->assigns) {
          Value v;
          if (!eval_expr(*asg.expr, env, v)) {
            env_ok = false;
            break;
          }
          env[asg.var] = std::move(v);
        }
      }
      if (env_ok) {
        for (size_t i = 0; i < rule->sels.size(); ++i) {
          for (Change& c : selection_break_options(*rule, i, env)) {
            opts.push_back(std::move(c));
          }
        }
      }
      // Deleting a base body tuple starves the derivation.
      for (const eval::TupleRef b : body) {
        if (b == eval::kNoTupleRef) continue;
        if (!log.has_derivation_of(b) &&
            !engine_.catalog().is_event(log.table_of(b))) {
          Change c;
          c.kind = ChangeKind::DeleteBaseTuple;
          c.tuple = log.materialize(b);
          opts.push_back(std::move(c));
        }
      }
      // Last resort: delete the whole rule.
      {
        Change c;
        c.kind = ChangeKind::DeleteRule;
        c.rule = rule_name;
        opts.push_back(std::move(c));
      }
      if (!opts.empty()) per_deriv.push_back(std::move(opts));
    }
    if (per_deriv.empty()) continue;

    std::vector<std::vector<Change>> combos{{}};
    for (const auto& group : per_deriv) {
      std::vector<std::vector<Change>> next;
      for (const auto& prefix : combos) {
        for (const Change& opt : group) {
          if (next.size() >= 64) break;
          // The same change may kill several derivations; dedupe in-place.
          bool dup = false;
          for (const Change& prev : prefix) {
            if (prev.kind == opt.kind && prev.rule == opt.rule &&
                prev.index == opt.index && prev.side == opt.side &&
                prev.new_value == opt.new_value && prev.tuple == opt.tuple) {
              dup = true;
              break;
            }
          }
          auto combo = prefix;
          if (!dup) combo.push_back(opt);
          next.push_back(std::move(combo));
        }
      }
      combos = std::move(next);
    }
    for (auto& combo : combos) {
      if (combo.empty()) continue;
      TreeState child = st;
      for (Change& c : combo) {
        child.cost += costs_.cost(c, engine_.program());
        child.changes.push_back(std::move(c));
      }
      out.push_back(std::move(child));
    }
  }
}

// ---------------------------------------------------------------------------
// Join enumeration over historical data ("history lookups").
// ---------------------------------------------------------------------------

std::vector<ForestExplorer::JoinResult> ForestExplorer::enumerate_joins(
    const Rule& rule) {
  Timer history_timer;
  std::vector<JoinResult> results;
  std::set<std::string> seen;
  const std::vector<std::string> rel_vars = relevant_vars(rule);

  struct Frame {
    Env env;
    std::vector<eval::TupleRef> bound;
    std::vector<size_t> unbound;
  };
  std::vector<Frame> frontier{Frame{}};

  for (size_t atom_idx = 0; atom_idx < rule.body.size(); ++atom_idx) {
    const ndlog::Atom& atom = rule.body[atom_idx];
    std::vector<Frame> next;
    for (Frame& f : frontier) {
      bool bound_any = false;
      // Pattern from the atom's constants plus variables already bound by
      // sibling atoms: every bound column becomes an Eq constraint, so the
      // probe is a history-index hit whenever anything is bound; only the
      // leading fully-unbound atom still walks its table's history. The
      // candidates a probe skips are exactly those unify_atom would
      // reject, and buckets keep first-appearance order, so the frontier
      // evolves identically to the old linear scan.
      prov::TuplePattern pat;
      pat.table = atom.table;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Expr& arg = *atom.args[i];
        if (arg.is_const()) {
          pat.fields.push_back({i, CmpOp::Eq, arg.cval()});
        } else if (arg.is_var()) {
          auto it = f.env.find(arg.var_name());
          if (it != f.env.end()) {
            pat.fields.push_back({i, CmpOp::Eq, it->second});
          }
        }
      }
      const size_t scanned =
          engine_.history().probe(pat, [&](eval::TupleRef ref) {
            Env env = f.env;
            if (!unify_atom(atom, engine_.history().row_of(ref), env)) {
              return true;
            }
            bound_any = true;
            Frame nf;
            nf.env = std::move(env);
            nf.bound = f.bound;
            nf.bound.push_back(ref);
            nf.unbound = f.unbound;
            next.push_back(std::move(nf));
            return next.size() < cfg_.max_join_combos * 4;
          });
      if (stats_ != nullptr) stats_->history_tuples_scanned += scanned;
      if (!bound_any) {
        Frame nf = f;
        nf.unbound.push_back(atom_idx);
        next.push_back(std::move(nf));
      }
      if (next.size() >= cfg_.max_join_combos * 4) break;
    }
    frontier = std::move(next);
  }

  for (Frame& f : frontier) {
    std::string sig = env_signature(f.env, rel_vars);
    for (size_t u : f.unbound) sig += "!" + std::to_string(u);
    if (!seen.insert(sig).second) continue;
    JoinResult jr;
    jr.env = std::move(f.env);
    jr.bound = std::move(f.bound);
    jr.unbound_atoms = std::move(f.unbound);
    results.push_back(std::move(jr));
    if (results.size() >= cfg_.max_join_combos) break;
  }
  if (phases_ != nullptr) phases_->add(kPhaseHistory, history_timer.seconds());
  return results;
}

// ---------------------------------------------------------------------------
// Per-site repair options.
// ---------------------------------------------------------------------------

std::vector<Change> ForestExplorer::selection_fix_options(const Rule& rule,
                                                          size_t sel_idx,
                                                          const Env& env) {
  std::vector<Change> out;
  const ndlog::Selection& sel = rule.sels[sel_idx];
  Value lv, rv;
  if (!eval_expr(*sel.lhs, env, lv) || !eval_expr(*sel.rhs, env, rv)) return out;

  const int cside = const_side(sel);

  // (a) Replace the constant operand so the selection holds for this join.
  if (cside >= 0) {
    const Value& x = cside == 0 ? rv : lv;  // the value-side operand
    const Value& c0 = cside == 0 ? sel.lhs->cval() : sel.rhs->cval();
    const CmpOp op = oriented_op(sel, cside);  // x op K must become true
    std::vector<Value> candidates;
    if (x.is_int()) {
      Timer solve_timer;
      // Nearest satisfying constant, via the mini solver (SATASSIGNMENT).
      solver::ConstraintPool pool;
      pool.add(solver::Term::constant(x), op, solver::Term::variable("K"));
      if (auto a = solver::MiniSolver::solve(
              pool, stats_ != nullptr ? &stats_->solver : nullptr)) {
        push_unique(candidates, a->at("K"), cfg_.max_const_variants);
      }
      if (phases_ != nullptr) {
        phases_->add(kPhaseSolve, solve_timer.seconds());
      }
      // Direct minimal-edit value.
      const int64_t xi = x.as_int();
      switch (op) {
        case CmpOp::Eq: push_unique(candidates, Value(xi), cfg_.max_const_variants); break;
        case CmpOp::Ne: push_unique(candidates, Value(xi + 1), cfg_.max_const_variants); break;
        case CmpOp::Lt: push_unique(candidates, Value(xi + 1), cfg_.max_const_variants); break;
        case CmpOp::Le: push_unique(candidates, Value(xi), cfg_.max_const_variants); break;
        case CmpOp::Gt: push_unique(candidates, Value(xi - 1), cfg_.max_const_variants); break;
        case CmpOp::Ge: push_unique(candidates, Value(xi), cfg_.max_const_variants); break;
      }
      // Domain variants: historical values of the value-side variable
      // suggest looser constants (the paper's Sip<16 / Sip<99 flavours).
      if (sel.lhs->is_var() || sel.rhs->is_var()) {
        const ndlog::ExprPtr& vside = cside == 0 ? sel.rhs : sel.lhs;
        if (vside->is_var()) {
          for (const Value& v : domain_of_var(rule, vside->var_name())) {
            if (!v.is_int()) continue;
            Value cand;
            switch (op) {
              case CmpOp::Lt: cand = Value(v.as_int() + 1); break;
              case CmpOp::Le: cand = Value(v.as_int()); break;
              case CmpOp::Gt: cand = Value(v.as_int() - 1); break;
              case CmpOp::Ge: cand = Value(v.as_int()); break;
              default: continue;
            }
            if (ndlog::cmp_eval(op, x, cand)) {
              push_unique(candidates, cand, cfg_.max_const_variants);
            }
          }
        }
      }
    } else {
      // String constant: equality fix only.
      if (op == CmpOp::Eq) push_unique(candidates, x, 1);
    }
    for (const Value& cand : candidates) {
      if (cand == c0) continue;
      Change c;
      c.kind = ChangeKind::ChangeSelConst;
      c.rule = rule.name;
      c.index = sel_idx;
      c.side = static_cast<size_t>(cside);
      c.new_value = cand;
      out.push_back(std::move(c));
    }
  }

  // (b) Swap the comparison operator.
  for (CmpOp op : ndlog::all_cmp_ops()) {
    if (op == sel.op) continue;
    if (!ndlog::cmp_eval(op, lv, rv)) continue;
    Change c;
    c.kind = ChangeKind::ChangeSelOp;
    c.rule = rule.name;
    c.index = sel_idx;
    c.new_op = op;
    out.push_back(std::move(c));
  }

  // (c) Delete the selection predicate.
  {
    Change c;
    c.kind = ChangeKind::DeleteSel;
    c.rule = rule.name;
    c.index = sel_idx;
    out.push_back(std::move(c));
  }

  // (d) Substitute the variable operand with another in-scope variable.
  // Variants that do not satisfy this join are generated too (the paper's
  // Q2 candidates J-L); backtesting weeds them out.
  if (cside >= 0) {
    const ndlog::ExprPtr& vside = cside == 0 ? sel.rhs : sel.lhs;
    if (vside->is_var()) {
      size_t emitted = 0;
      for (const auto& [var, val] : env) {
        if (var == vside->var_name()) continue;
        if (emitted >= cfg_.max_var_variants) break;
        Change c;
        c.kind = ChangeKind::ChangeSelVar;
        c.rule = rule.name;
        c.index = sel_idx;
        c.side = cside == 0 ? 1 : 0;
        c.new_value = Value::str(var);
        out.push_back(std::move(c));
        ++emitted;
      }
    }
  }
  return out;
}

std::vector<Change> ForestExplorer::selection_break_options(const Rule& rule,
                                                            size_t sel_idx,
                                                            const Env& env) {
  std::vector<Change> out;
  const ndlog::Selection& sel = rule.sels[sel_idx];
  Value lv, rv;
  if (!eval_expr(*sel.lhs, env, lv) || !eval_expr(*sel.rhs, env, rv)) return out;

  const int cside = const_side(sel);
  if (cside >= 0) {
    const Value& x = cside == 0 ? rv : lv;
    const Value& c0 = cside == 0 ? sel.lhs->cval() : sel.rhs->cval();
    const CmpOp op = oriented_op(sel, cside);
    if (x.is_int()) {
      Timer solve_timer;
      // UNSATASSIGNMENT: violate (x op K) while keeping nothing else.
      solver::ConstraintPool keep, negate;
      negate.add(solver::Term::constant(x), op, solver::Term::variable("K"));
      if (auto a = solver::MiniSolver::solve_negation(
              keep, negate, stats_ != nullptr ? &stats_->solver : nullptr)) {
        const Value cand = a->at("K");
        if (!(cand == c0)) {
          Change c;
          c.kind = ChangeKind::ChangeSelConst;
          c.rule = rule.name;
          c.index = sel_idx;
          c.side = static_cast<size_t>(cside);
          c.new_value = cand;
          out.push_back(std::move(c));
        }
      }
      if (phases_ != nullptr) {
        phases_->add(kPhaseSolve, solve_timer.seconds());
      }
    }
  }
  for (CmpOp op : ndlog::all_cmp_ops()) {
    if (op == sel.op) continue;
    if (ndlog::cmp_eval(op, lv, rv)) continue;  // must now be false
    Change c;
    c.kind = ChangeKind::ChangeSelOp;
    c.rule = rule.name;
    c.index = sel_idx;
    c.new_op = op;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Change> ForestExplorer::head_fix_options(const Rule& rule,
                                                     const std::string& head_var,
                                                     const Value& needed,
                                                     const Env& env) {
  std::vector<Change> out;
  // Plausibility order for variable substitutions: variables whose current
  // value equals the needed one first, then variables whose name resembles
  // the assignment target (programmers mistype similar names; Q5's
  // Sip2 := * should propose Sip before Dip), then the rest.
  auto ordered_vars = [&](const std::string& target,
                          const std::string& skip) {
    auto lcp = [](const std::string& x, const std::string& y) {
      size_t i = 0;
      while (i < x.size() && i < y.size() && x[i] == y[i]) ++i;
      return i;
    };
    std::vector<std::pair<std::string, Value>> ordered(env.begin(), env.end());
    std::sort(ordered.begin(), ordered.end());
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&](const auto& p1, const auto& p2) {
                       return lcp(p1.first, target) > lcp(p2.first, target);
                     });
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&](const auto& p1, const auto& p2) {
                       return (p1.second == needed) > (p2.second == needed);
                     });
    std::vector<std::string> names;
    for (const auto& [var, val] : ordered) {
      if (var != skip) names.push_back(var);
    }
    return names;
  };
  for (size_t a = 0; a < rule.assigns.size(); ++a) {
    if (rule.assigns[a].var != head_var) continue;
    const ndlog::ExprPtr& expr = rule.assigns[a].expr;
    if (expr->is_const()) {
      // Replace the assigned constant (covers the wildcard `*` case).
      if (!(expr->cval() == needed)) {
        Change c;
        c.kind = ChangeKind::ChangeAssignConst;
        c.rule = rule.name;
        c.index = a;
        c.new_value = needed;
        out.push_back(std::move(c));
      }
      // ...or assign from a variable instead. The most plausible variant
      // (matching value / similar name, Q5's Sip2 := Sip) comes first;
      // mismatching variants are generated too and die in backtesting.
      size_t emitted = 0;
      for (const std::string& var : ordered_vars(head_var, "")) {
        if (emitted >= cfg_.max_var_variants) break;
        Change c;
        c.kind = ChangeKind::ChangeAssignVar;
        c.rule = rule.name;
        c.index = a;
        c.new_value = Value::str(var);
        out.push_back(std::move(c));
        ++emitted;
      }
    } else if (expr->is_var()) {
      // Assigned from the wrong variable: swap to alternatives.
      size_t emitted = 0;
      for (const std::string& var : ordered_vars(head_var, expr->var_name())) {
        if (emitted >= cfg_.max_var_variants) break;
        Change c;
        c.kind = ChangeKind::ChangeAssignVar;
        c.rule = rule.name;
        c.index = a;
        c.new_value = Value::str(var);
        out.push_back(std::move(c));
        ++emitted;
      }
    }
    return out;
  }
  return out;  // head var comes straight from the body: no assignment to fix
}

std::vector<Change> ForestExplorer::manual_insert_options(const Goal& goal) {
  std::vector<Change> out;
  bool insertable = false;
  for (const auto& t : cfg_.insertable_tables) {
    if (t == goal.pattern.table) insertable = true;
  }
  if (!insertable) return out;
  const ndlog::TableDecl* decl = engine_.catalog().find(goal.pattern.table);
  if (decl == nullptr) return out;

  // Synthesize a concrete row: constrained columns via the constraint
  // pool + mini solver (SATASSIGNMENT in Figure 5), unconstrained columns
  // from a historical row when available.
  Timer solve_timer;
  solver::ConstraintPool pool;
  for (const auto& fc : goal.pattern.fields) {
    pool.add(solver::Term::variable("c" + std::to_string(fc.col)), fc.op,
             solver::Term::constant(fc.value));
  }
  auto assignment = solver::MiniSolver::solve(
      pool, stats_ != nullptr ? &stats_->solver : nullptr);
  if (phases_ != nullptr) phases_->add(kPhaseSolve, solve_timer.seconds());
  if (!assignment) return out;

  Timer history_timer;
  Row row(decl->arity, Value(0));
  const auto& hist = engine_.history().rows(goal.pattern.table);
  if (!hist.empty() &&
      engine_.history().row_of(hist.front()).size() == decl->arity) {
    row = engine_.history().row_of(hist.front());
  }
  if (phases_ != nullptr) {
    phases_->add(kPhaseHistory, history_timer.seconds());
  }
  for (size_t i = 0; i < decl->arity; ++i) {
    auto it = assignment->find("c" + std::to_string(i));
    if (it != assignment->end()) row[i] = it->second;
  }
  Change c;
  c.kind = ChangeKind::InsertBaseTuple;
  c.tuple = Tuple{goal.pattern.table, std::move(row)};
  out.push_back(std::move(c));
  return out;
}

std::vector<Change> ForestExplorer::retarget_options(const Goal& goal) {
  std::vector<Change> out;
  const ndlog::TableDecl* decl = engine_.catalog().find(goal.pattern.table);
  if (decl == nullptr) return out;

  for (const Rule& rule : engine_.program().rules) {
    if (rule.head.args.size() != decl->arity) continue;
    if (rule.head.table == goal.pattern.table) continue;

    // Candidate head-argument permutations: identity plus adjacent swaps
    // beyond the location column (the paper's Sip/Dip and Spt/Dpt swaps).
    std::vector<std::vector<size_t>> perms;
    std::vector<size_t> identity(decl->arity);
    for (size_t i = 0; i < decl->arity; ++i) identity[i] = i;
    perms.push_back(identity);
    for (size_t i = 1; i + 1 < decl->arity && perms.size() < cfg_.max_head_perms;
         ++i) {
      auto p = identity;
      std::swap(p[i], p[i + 1]);
      perms.push_back(std::move(p));
    }

    for (const auto& perm : perms) {
      Change copy;
      copy.kind = ChangeKind::CopyRuleRetarget;
      copy.rule = rule.name;
      copy.new_head_table = goal.pattern.table;
      copy.head_perm = perm;
      copy.copy_name = rule.name + "_" + goal.pattern.table;
      out.push_back(copy);

      Change retarget;
      retarget.kind = ChangeKind::ChangeHeadTable;
      retarget.rule = rule.name;
      retarget.new_head_table = goal.pattern.table;
      retarget.head_perm = perm;
      out.push_back(retarget);
    }
  }
  return out;
}

std::vector<Value> ForestExplorer::domain_of_var(const Rule& rule,
                                                 const std::string& var) {
  std::vector<Value> out;
  Timer history_timer;
  for (const auto& atom : rule.body) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (!atom.args[i]->is_var() || atom.args[i]->var_name() != var) continue;
      // Domain extraction has no bound columns; the probe is the ordered
      // fallback scan over this table's recorded history.
      prov::TuplePattern any;
      any.table = atom.table;
      const size_t scanned =
          engine_.history().probe(any, [&](eval::TupleRef ref) {
            const Row& row = engine_.history().row_of(ref);
            if (i < row.size()) push_unique(out, row[i], 64);
            return true;
          });
      if (stats_ != nullptr) stats_->history_tuples_scanned += scanned;
    }
  }
  if (phases_ != nullptr) phases_->add(kPhaseHistory, history_timer.seconds());
  // Descending: the loosest domain-suggested constants first (the paper's
  // Sip<2009 / Sip<99 / Sip<16 flavours), ahead of near-misses.
  std::sort(out.begin(), out.end(),
            [](const Value& a, const Value& b) { return b < a; });
  return out;
}

}  // namespace mp::repair
