// Meta-provenance forest exploration (Sections 3.3-3.5, Figure 17).
//
// The operator states a symptom: a tuple pattern that should exist but is
// missing (negative symptom) or exists but should not (positive symptom).
// The explorer maintains a priority queue of partial trees ordered by
// cost; each tree is represented by its undischarged obligations (goals),
// the program changes applied so far, and its accumulated cost. Expanding
// a goal consults
//   - the program's meta tuples (which Const / Oper / PredFunc / Assign
//     sites could change), and
//   - the engine's event log ("history lookups": which joins almost fired,
//     which historical tuples could bind each body atom),
// and emits child trees, forking once per individually-sufficient choice
// (Section 3.3). Conjunctions accumulate constraint pools that the mini
// solver discharges (Section 3.4). Completed trees yield RepairCandidates
// in cost order (Appendix D's optimality argument carries over: child cost
// >= parent cost, and every expansion pays a small epsilon).
#pragma once

#include <string>
#include <vector>

#include "eval/engine.h"
#include "provenance/query.h"
#include "repair/change.h"
#include "repair/cost_model.h"
#include "solver/mini_solver.h"
#include "util/timer.h"

namespace mp::repair {

struct Symptom {
  enum class Polarity : uint8_t { Missing, Unwanted };
  Polarity polarity = Polarity::Missing;
  prov::TuplePattern pattern;
  std::string description;
};

struct RepairSpaceConfig {
  // Tables into which a "manual" base-tuple insertion is a legitimate
  // repair (e.g. FlowTable: the operator can install an entry by hand).
  std::vector<std::string> insertable_tables;
  // Label used when describing manual insertions (paper: "Manually
  // installing a flow entry").
  std::string insert_label = "Manually installing a flow entry";

  size_t max_join_combos = 96;   // historical join enumeration cap
  size_t max_const_variants = 4; // constants proposed per failing selection
  size_t max_var_variants = 4;   // variable swaps proposed per site
  size_t max_depth = 3;          // recursion into missing body tuples
  size_t max_head_perms = 4;     // head permutations for copy/retarget
  double max_cost = 12.0;        // cut-off cost (Section 3.5)
  size_t max_candidates = 32;
  size_t max_expansions = 50'000;
};

struct ExploreStats {
  size_t trees_forked = 0;
  size_t trees_completed = 0;
  size_t goals_expanded = 0;
  size_t history_tuples_scanned = 0;
  solver::SolveStats solver;
};

class ForestExplorer {
 public:
  ForestExplorer(const eval::Engine& engine, RepairSpaceConfig config,
                 const CostModel& costs = default_cost_model());

  // Explores the forest and returns candidates sorted by cost (ascending),
  // deduplicated, validated against the program. `phases` (optional)
  // accumulates the Fig-9a breakdown; `stats` (optional) exploration
  // counters.
  std::vector<RepairCandidate> explore(const Symptom& symptom,
                                       PhaseClock* phases = nullptr,
                                       ExploreStats* stats = nullptr);

 private:
  struct Goal {
    prov::TuplePattern pattern;
    bool make_appear = true;
    size_t depth = 0;
  };
  struct TreeState {
    std::vector<Goal> pending;
    std::vector<Change> changes;
    double cost = 0.0;
    size_t expansions = 0;
  };

  void expand(const TreeState& st, std::vector<TreeState>& out);
  void expand_appear(const TreeState& st, const Goal& goal,
                     std::vector<TreeState>& out);
  void expand_disappear(const TreeState& st, const Goal& goal,
                        std::vector<TreeState>& out);

  // Join enumeration over historical tuples; returns consistent variable
  // environments (deduplicated on the variables that matter).
  struct JoinResult {
    eval::Env env;
    std::vector<eval::TupleRef> bound;    // one per bound body atom (handles)
    std::vector<size_t> unbound_atoms;    // body atoms with no history match
  };
  std::vector<JoinResult> enumerate_joins(const ndlog::Rule& rule);

  // Repair options for one failing selection under `env`; each option is a
  // single Change.
  std::vector<Change> selection_fix_options(const ndlog::Rule& rule,
                                            size_t sel_idx,
                                            const eval::Env& env);
  // Options to make a selection *fail* under `env` (positive symptoms).
  std::vector<Change> selection_break_options(const ndlog::Rule& rule,
                                              size_t sel_idx,
                                              const eval::Env& env);
  // Options to fix a head-field mismatch (assignment rewrites).
  std::vector<Change> head_fix_options(const ndlog::Rule& rule,
                                       const std::string& head_var,
                                       const Value& needed,
                                       const eval::Env& env);

  std::vector<Change> manual_insert_options(const Goal& goal);
  std::vector<Change> retarget_options(const Goal& goal);

  // Historical values observed for a variable's column, deterministic
  // order, capped.
  std::vector<Value> domain_of_var(const ndlog::Rule& rule,
                                   const std::string& var);

  const eval::Engine& engine_;
  RepairSpaceConfig cfg_;
  const CostModel& costs_;
  PhaseClock* phases_ = nullptr;
  ExploreStats* stats_ = nullptr;
};

}  // namespace mp::repair
