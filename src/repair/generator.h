// Public entry point of the repair engine (Figure 5 / Figure 17): given an
// engine whose log captured the buggy execution and a symptom, produce a
// cost-ordered list of repair candidates. Phase timings are accounted the
// way Figure 9a reports them (history lookups / constraint solving / patch
// generation); replay time is added by the backtester.
#pragma once

#include "repair/forest.h"

namespace mp::repair {

struct GenerationReport {
  std::vector<RepairCandidate> candidates;
  PhaseClock phases;
  ExploreStats stats;
};

class RepairGenerator {
 public:
  RepairGenerator(const eval::Engine& engine, RepairSpaceConfig config,
                  const CostModel& costs = default_cost_model())
      : engine_(engine), config_(std::move(config)), costs_(costs) {}

  GenerationReport generate(const Symptom& symptom) const;

  const RepairSpaceConfig& config() const { return config_; }

 private:
  const eval::Engine& engine_;
  RepairSpaceConfig config_;
  const CostModel& costs_;
};

}  // namespace mp::repair
