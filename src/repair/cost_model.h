// Cost model for program changes (Section 3.5). Costs encode the
// implausibility of an edit, following the bug-fix-pattern study of
// Pan et al. [41]: small tweaks to existing predicates (off-by-one
// constants, flipped operators) are the most common real-world fixes and
// get the lowest costs; structural edits (deleting predicates, retargeting
// heads, new rules) are progressively more expensive. The forest explorer
// pops partial trees in cost order, so candidates emerge cheapest-first.
#pragma once

#include <cstdlib>

#include "repair/change.h"

namespace mp::repair {

struct CostModel {
  double change_const_base = 2.0;     // constant replacement
  double change_const_near = 1.0;     // ...when |new - old| == 1
  double change_op = 2.0;             // operator swap (== -> !=, < -> <=)
  double change_var = 3.5;            // variable substitution
  double delete_sel = 4.0;            // drop a selection predicate
  double change_assign_const = 2.5;
  double change_assign_var = 3.0;
  double delete_atom = 5.0;           // drop a body predicate
  double change_head = 5.0;           // retarget an existing head
  double copy_rule = 6.0;             // duplicate + retarget a rule
  double delete_rule = 8.0;
  double insert_tuple = 2.0;          // manual state injection
  double delete_tuple = 2.5;
  double head_perm_extra = 0.5;       // per displaced head argument
  double expansion_epsilon = 0.01;    // per-vertex exploration cost, so the
                                      // search always makes progress (App. D)

  // Cost of one change, given the current program (to detect "near"
  // constant changes).
  double cost(const Change& c, const ndlog::Program& p) const;
};

const CostModel& default_cost_model();

}  // namespace mp::repair
