#include "repair/generator.h"

#include "obs/obs.h"
#include "obs/span.h"

namespace mp::repair {

GenerationReport RepairGenerator::generate(const Symptom& symptom) const {
  static const obs::PhaseId kPhasePatch = obs::phase_id("patch generation");
  GenerationReport report;
  Timer total;
  const uint64_t t0 = obs::now_ns();
  ForestExplorer explorer(engine_, config_, costs_);
  report.candidates =
      explorer.explore(symptom, &report.phases, &report.stats);
  // Anything not booked to a named phase is patch generation (tree
  // bookkeeping, option assembly).
  const double booked = report.phases.total();
  const double rest = total.seconds() - booked;
  if (rest > 0) report.phases.add(kPhasePatch, rest);
  if (obs::enabled()) {
    static obs::Histogram& lat =
        obs::Registry::global().histogram("repair.generate.latency_ns");
    lat.record(obs::now_ns() - t0);
  }
  return report;
}

}  // namespace mp::repair
