#include "repair/generator.h"

namespace mp::repair {

GenerationReport RepairGenerator::generate(const Symptom& symptom) const {
  GenerationReport report;
  Timer total;
  ForestExplorer explorer(engine_, config_, costs_);
  report.candidates =
      explorer.explore(symptom, &report.phases, &report.stats);
  // Anything not booked to a named phase is patch generation (tree
  // bookkeeping, option assembly).
  const double booked = report.phases.total();
  const double rest = total.seconds() - booked;
  if (rest > 0) report.phases.add("patch generation", rest);
  return report;
}

}  // namespace mp::repair
