// The uDlog meta program (Section 3.2, Figure 4) made concrete: a program
// is lowered to meta tuples (Const / Oper / PredFunc / HeadFunc / Assign
// facts), and a reference evaluator implements the meta rules' operational
// semantics *driven purely by those meta tuples* -- the program really is
// "just another kind of data". A property test (tests/core_test.cpp)
// checks that meta-level evaluation derives exactly the tuples the direct
// engine derives, for programs in the uDlog fragment (selections and
// assignments over plain variables/constants).
#pragma once

#include <string>
#include <vector>

#include "eval/tuple.h"
#include "meta/meta_tuple.h"
#include "ndlog/ast.h"

namespace mp::meta {

struct MetaProgram {
  // Program-based meta tuples as concrete facts, e.g.
  //   Const(@C, "r7", "sel0.rhs", 2)
  //   Oper(@C, "r7", "sel0", "==")
  //   PredFunc(@C, "r1", 0, "PacketIn", "C,Swi,Hdr,Src")
  std::vector<eval::Tuple> facts;
  // The structured meta tuples they were derived from.
  std::vector<MetaTuple> tuples;
  // Figure 4's meta rules, pretty-printed (for docs/inspection).
  std::string meta_rules_text;
};

MetaProgram build_meta_program(const ndlog::Program& p);

// Reference evaluation at the meta level: reconstructs the rules from the
// meta tuples alone (not the AST) and evaluates them to fixpoint over the
// given base tuples. Only the uDlog fragment is supported: body atom args,
// selection operands and assignment right-hand sides must be variables or
// constants. Table declarations are taken from `p` (schemas are meta
// tuples of their own in the full model; here they ride along).
std::vector<eval::Tuple> meta_eval(const ndlog::Program& p,
                                   const MetaProgram& meta,
                                   const std::vector<eval::Tuple>& base);

// True if `p` fits the uDlog fragment meta_eval supports.
bool in_udlog_fragment(const ndlog::Program& p);

}  // namespace mp::meta
