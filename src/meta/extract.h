// Extraction of program-based meta tuples from an NDlog program: every
// constant, operator, predicate, assignment and rule head becomes a meta
// tuple naming a mutable syntactic site. This is the "tuple generator"
// component of the prototype (Section 5.1): program-based meta tuples are
// generated once per program; runtime-based ones are materialized by the
// forest explorer from the engine's log.
#pragma once

#include <vector>

#include "meta/meta_tuple.h"
#include "ndlog/ast.h"

namespace mp::meta {

// All program-based meta tuples of `p`, in deterministic order.
std::vector<MetaTuple> program_meta_tuples(const ndlog::Program& p);

// Subsets by kind (convenience for the repair engine and tests).
std::vector<MetaTuple> constants_of(const ndlog::Program& p);
std::vector<MetaTuple> operators_of(const ndlog::Program& p);

}  // namespace mp::meta
