#include "meta/extract.h"

namespace mp::meta {

namespace {

void extract_expr_consts(const ndlog::ExprPtr& e, const std::string& rule,
                         SyntaxRef::Site site, size_t index, size_t side,
                         std::vector<MetaTuple>& out) {
  if (!e) return;
  if (e->is_const()) {
    MetaTuple t;
    t.kind = MetaKind::Const;
    t.ref = SyntaxRef{rule, site, index, side};
    t.payload = e->cval();
    out.push_back(std::move(t));
  } else if (e->kind() == ndlog::Expr::Kind::Binary) {
    // Constants inside arithmetic share the operand's site reference; the
    // change algebra rewrites whole operands, which covers nested cases.
    extract_expr_consts(e->lhs(), rule, site, index, side, out);
    extract_expr_consts(e->rhs(), rule, site, index, side, out);
  }
}

}  // namespace

std::vector<MetaTuple> program_meta_tuples(const ndlog::Program& p) {
  std::vector<MetaTuple> out;
  for (const auto& r : p.rules) {
    {
      MetaTuple t;
      t.kind = MetaKind::HeadFunc;
      t.ref = SyntaxRef{r.name, SyntaxRef::Site::HeadTable, 0, 0};
      t.table = r.head.table;
      for (const auto& a : r.head.args) {
        t.args.push_back(a->to_string());
      }
      out.push_back(std::move(t));
    }
    for (size_t b = 0; b < r.body.size(); ++b) {
      MetaTuple t;
      t.kind = MetaKind::PredFunc;
      t.ref = SyntaxRef{r.name, SyntaxRef::Site::BodyAtom, b, 0};
      t.table = r.body[b].table;
      for (const auto& a : r.body[b].args) t.args.push_back(a->to_string());
      out.push_back(std::move(t));
      for (size_t i = 0; i < r.body[b].args.size(); ++i) {
        extract_expr_consts(r.body[b].args[i], r.name,
                            SyntaxRef::Site::BodyAtomArg, b, i, out);
      }
    }
    for (size_t s = 0; s < r.sels.size(); ++s) {
      MetaTuple t;
      t.kind = MetaKind::Oper;
      t.ref = SyntaxRef{r.name, SyntaxRef::Site::SelOp, s, 0};
      t.payload = Value::str(ndlog::to_string(r.sels[s].op));
      out.push_back(std::move(t));
      extract_expr_consts(r.sels[s].lhs, r.name, SyntaxRef::Site::SelLhs, s, 0,
                          out);
      extract_expr_consts(r.sels[s].rhs, r.name, SyntaxRef::Site::SelRhs, s, 1,
                          out);
    }
    for (size_t a = 0; a < r.assigns.size(); ++a) {
      MetaTuple t;
      t.kind = MetaKind::Assign;
      t.ref = SyntaxRef{r.name, SyntaxRef::Site::AssignWhole, a, 0};
      t.table = r.assigns[a].var;
      out.push_back(std::move(t));
      extract_expr_consts(r.assigns[a].expr, r.name,
                          SyntaxRef::Site::AssignRhs, a, 0, out);
    }
    for (size_t i = 0; i < r.head.args.size(); ++i) {
      extract_expr_consts(r.head.args[i], r.name, SyntaxRef::Site::HeadArg, 0,
                          i, out);
    }
  }
  return out;
}

std::vector<MetaTuple> constants_of(const ndlog::Program& p) {
  std::vector<MetaTuple> out;
  for (auto& t : program_meta_tuples(p)) {
    if (t.kind == MetaKind::Const) out.push_back(std::move(t));
  }
  return out;
}

std::vector<MetaTuple> operators_of(const ndlog::Program& p) {
  std::vector<MetaTuple> out;
  for (auto& t : program_meta_tuples(p)) {
    if (t.kind == MetaKind::Oper) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace mp::meta
