// Meta models (Section 3.2, Section 5.8, Appendix B): for each supported
// controller language, the catalog of meta rules (operational semantics)
// and meta tuple types. The uDlog catalog mirrors Figure 4 exactly; the
// NDlog, Trema and Pyretic catalogs mirror Appendix B. The catalogs are
// real data: the forest explorer dispatches on the uDlog/NDlog rules, and
// the Table 3 bench and tests verify the counts the paper reports
// (uDlog 15 rules / 13 tuple types, NDlog 23/23, Trema 42/32, Pyretic 53/41).
#pragma once

#include <string>
#include <vector>

namespace mp::meta {

enum class Language : uint8_t { UDlog, NDlog, Trema, Pyretic };

const char* to_string(Language l);

struct MetaRuleInfo {
  std::string name;         // e.g. "h2", "j1", "fc4"
  std::string description;  // what the operational-semantics rule encodes
};

struct MetaTupleInfo {
  std::string name;         // e.g. "Sel", "HeadVal", "ExecLine"
  bool program_based = false;  // syntactic (true) vs runtime (false)
};

struct MetaModel {
  Language language = Language::UDlog;
  std::vector<MetaRuleInfo> rules;
  std::vector<MetaTupleInfo> tuples;

  size_t rule_count() const { return rules.size(); }
  size_t tuple_count() const { return tuples.size(); }
  const MetaRuleInfo* find_rule(const std::string& name) const;
};

const MetaModel& udlog_meta_model();
const MetaModel& ndlog_meta_model();
const MetaModel& trema_meta_model();
const MetaModel& pyretic_meta_model();
const MetaModel& meta_model(Language l);

}  // namespace mp::meta
