#include "meta/meta_program.h"

#include <cctype>
#include <map>
#include <set>

#include "meta/extract.h"
#include "util/strings.h"

namespace mp::meta {

namespace {

const Value kCtl = Value::str("C");

std::string join_args(const std::vector<ndlog::ExprPtr>& args) {
  std::vector<std::string> parts;
  for (const auto& a : args) parts.push_back(a->to_string());
  return join(parts, "|");
}

// Operand reconstruction: integer literal, wildcard, or variable name.
struct Operand {
  bool is_const = false;
  Value cval;
  std::string var;
};

Operand parse_operand(const std::string& s) {
  Operand op;
  if (s == "*") {
    op.is_const = true;
    op.cval = Value::wildcard();
    return op;
  }
  if (!s.empty() &&
      (std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-')) {
    op.is_const = true;
    op.cval = Value(static_cast<int64_t>(std::stoll(s)));
    return op;
  }
  op.var = s;
  return op;
}

ndlog::CmpOp parse_op(const std::string& s) {
  if (s == "==") return ndlog::CmpOp::Eq;
  if (s == "!=") return ndlog::CmpOp::Ne;
  if (s == "<") return ndlog::CmpOp::Lt;
  if (s == ">") return ndlog::CmpOp::Gt;
  if (s == "<=") return ndlog::CmpOp::Le;
  return ndlog::CmpOp::Ge;
}

// A rule reconstructed purely from meta facts.
struct MetaRule {
  std::string name;
  std::string head_table;
  std::vector<Operand> head_args;
  struct BodyAtom {
    std::string table;
    std::vector<Operand> args;
  };
  std::map<int64_t, BodyAtom> body;
  struct Sel {
    Operand lhs;
    ndlog::CmpOp op;
    Operand rhs;
  };
  std::map<int64_t, Sel> sels;
  struct Asg {
    std::string var;
    Operand rhs;
  };
  std::map<int64_t, Asg> assigns;
};

bool expr_is_operand(const ndlog::ExprPtr& e) {
  return e && (e->is_const() || e->is_var());
}

}  // namespace

bool in_udlog_fragment(const ndlog::Program& p) {
  for (const auto& r : p.rules) {
    for (const auto& a : r.head.args) {
      if (!expr_is_operand(a)) return false;
    }
    for (const auto& b : r.body) {
      for (const auto& a : b.args) {
        if (!expr_is_operand(a)) return false;
      }
    }
    for (const auto& s : r.sels) {
      if (!expr_is_operand(s.lhs) || !expr_is_operand(s.rhs)) return false;
    }
    for (const auto& asg : r.assigns) {
      if (!expr_is_operand(asg.expr)) return false;
    }
  }
  return true;
}

MetaProgram build_meta_program(const ndlog::Program& p) {
  MetaProgram out;
  out.tuples = program_meta_tuples(p);
  for (const auto& r : p.rules) {
    out.facts.push_back(eval::Tuple{
        "HeadFunc",
        {kCtl, Value::str(r.name), Value::str(r.head.table),
         Value::str(join_args(r.head.args))}});
    for (size_t b = 0; b < r.body.size(); ++b) {
      out.facts.push_back(eval::Tuple{
          "PredFunc",
          {kCtl, Value::str(r.name), Value(static_cast<int64_t>(b)),
           Value::str(r.body[b].table), Value::str(join_args(r.body[b].args))}});
    }
    for (size_t s = 0; s < r.sels.size(); ++s) {
      out.facts.push_back(eval::Tuple{
          "Oper",
          {kCtl, Value::str(r.name), Value(static_cast<int64_t>(s)),
           Value::str(ndlog::to_string(r.sels[s].op)),
           Value::str(r.sels[s].lhs->to_string()),
           Value::str(r.sels[s].rhs->to_string())}});
      // The two operands also surface as Const meta tuples when constant,
      // mirroring the Const(@C,Rul,ID,Val) facts of Figure 4.
      for (int side = 0; side < 2; ++side) {
        const ndlog::ExprPtr& e = side == 0 ? r.sels[s].lhs : r.sels[s].rhs;
        if (e->is_const()) {
          out.facts.push_back(eval::Tuple{
              "Const",
              {kCtl, Value::str(r.name),
               Value::str("sel" + std::to_string(s) +
                          (side == 0 ? ".lhs" : ".rhs")),
               e->cval()}});
        }
      }
    }
    for (size_t a = 0; a < r.assigns.size(); ++a) {
      out.facts.push_back(eval::Tuple{
          "Assign",
          {kCtl, Value::str(r.name), Value(static_cast<int64_t>(a)),
           Value::str(r.assigns[a].var),
           Value::str(r.assigns[a].expr->to_string())}});
    }
  }

  out.meta_rules_text =
      "h1 Tuple(@C,Tab,Val1,Val2) :- Base(@C,Tab,Val1,Val2).\n"
      "h2 Tuple(@L,Tab,Val1,Val2) :- HeadFunc(@C,Rul,Tab,Loc,Arg1,Arg2),\n"
      "     HeadVal(@C,Rul,JID,Loc,L), Sel(@C,Rul,JID,SID,Val), Val == True,\n"
      "     Sel(@C,Rul,JID,SID',Val'), Val' == True, SID != SID', ...\n"
      "p1 TuplePred(@C,Rul,Tab,Args,Vals) :- Tuple(@C,Tab,Vals), "
      "PredFunc(@C,Rul,Tab,Args).\n"
      "p2 PredFuncCount(@C,Rul,Count<N>) :- PredFunc(@C,Rul,Tab,Args).\n"
      "j1 Join4(...) :- TuplePred x TuplePred, PredFuncCount == 2.\n"
      "j2 Join2(...) :- TuplePred, PredFuncCount == 1.\n"
      "e1-e7 Expr(...) :- Const | Join2/Join4 columns.\n"
      "a1 HeadVal(@C,Rul,JID,Arg,Val) :- Assign(@C,Rul,Arg,ID), "
      "Expr(@C,Rul,JID,ID,Val).\n"
      "s1 Sel(@C,Rul,JID,SID,Val) :- Oper(@C,Rul,SID,ID',ID'',Opr), "
      "Expr x Expr, Val := (Val' Opr Val'').\n";
  return out;
}

std::vector<eval::Tuple> meta_eval(const ndlog::Program& p,
                                   const MetaProgram& meta,
                                   const std::vector<eval::Tuple>& base) {
  // Reconstruct the rules from the meta facts alone.
  std::map<std::string, MetaRule> rules;
  for (const eval::Tuple& f : meta.facts) {
    if (f.table == "HeadFunc") {
      MetaRule& r = rules[f.row[1].as_str()];
      r.name = f.row[1].as_str();
      r.head_table = f.row[2].as_str();
      for (const auto& s : split(f.row[3].as_str(), '|')) {
        r.head_args.push_back(parse_operand(s));
      }
    } else if (f.table == "PredFunc") {
      MetaRule& r = rules[f.row[1].as_str()];
      MetaRule::BodyAtom atom;
      atom.table = f.row[3].as_str();
      for (const auto& s : split(f.row[4].as_str(), '|')) {
        atom.args.push_back(parse_operand(s));
      }
      r.body[f.row[2].as_int()] = std::move(atom);
    } else if (f.table == "Oper") {
      MetaRule& r = rules[f.row[1].as_str()];
      MetaRule::Sel sel;
      sel.op = parse_op(f.row[3].as_str());
      sel.lhs = parse_operand(f.row[4].as_str());
      sel.rhs = parse_operand(f.row[5].as_str());
      r.sels[f.row[2].as_int()] = std::move(sel);
    } else if (f.table == "Assign") {
      MetaRule& r = rules[f.row[1].as_str()];
      r.assigns[f.row[2].as_int()] =
          MetaRule::Asg{f.row[3].as_str(), parse_operand(f.row[4].as_str())};
    }
  }
  (void)p;

  // Naive fixpoint over Base/Tuple facts (meta rules h1, p1, j1/j2,
  // e1-e7, a1, s1, h2 executed in concert per candidate join).
  std::set<std::string> seen;
  std::vector<eval::Tuple> db = base;
  for (const auto& t : db) seen.insert(t.to_string());

  using Env = std::map<std::string, Value>;
  auto bind = [](const MetaRule::BodyAtom& atom, const Row& row, Env& env) {
    if (atom.args.size() != row.size()) return false;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Operand& a = atom.args[i];
      if (a.is_const) {
        if (!(a.cval == row[i])) return false;
      } else {
        auto [it, inserted] = env.try_emplace(a.var, row[i]);
        if (!inserted && !(it->second == row[i])) return false;
      }
    }
    return true;
  };
  auto operand_value = [](const Operand& o, const Env& env, Value& out) {
    if (o.is_const) {
      out = o.cval;
      return true;
    }
    auto it = env.find(o.var);
    if (it == env.end()) return false;
    out = it->second;
    return true;
  };

  bool changed = true;
  for (int round = 0; round < 64 && changed; ++round) {
    changed = false;
    for (const auto& [name, rule] : rules) {
      // Enumerate joins over the current database (meta rules j1/j2
      // compute the cross product; s1/h2 then filter it).
      std::vector<Env> envs{Env{}};
      for (const auto& [idx, atom] : rule.body) {
        std::vector<Env> next;
        for (const Env& env : envs) {
          for (const eval::Tuple& t : db) {
            if (t.table != atom.table) continue;
            Env e2 = env;
            if (bind(atom, t.row, e2)) next.push_back(std::move(e2));
          }
        }
        envs = std::move(next);
      }
      for (Env& env : envs) {
        // a1: assignments bind HeadVals...
        bool ok = true;
        for (const auto& [idx, asg] : rule.assigns) {
          Value v;
          if (!operand_value(asg.rhs, env, v)) {
            ok = false;
            break;
          }
          env[asg.var] = std::move(v);
        }
        if (!ok) continue;
        // s1 + h2: all selections must evaluate to True.
        for (const auto& [idx, sel] : rule.sels) {
          Value a, b;
          if (!operand_value(sel.lhs, env, a) ||
              !operand_value(sel.rhs, env, b) ||
              !ndlog::cmp_eval(sel.op, a, b)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        eval::Tuple head;
        head.table = rule.head_table;
        for (const Operand& o : rule.head_args) {
          Value v;
          if (!operand_value(o, env, v)) {
            ok = false;
            break;
          }
          head.row.push_back(std::move(v));
        }
        if (!ok) continue;
        if (seen.insert(head.to_string()).second) {
          db.push_back(std::move(head));
          changed = true;
        }
      }
    }
  }

  // Return only derived tuples (drop the base facts).
  std::set<std::string> base_keys;
  for (const auto& t : base) base_keys.insert(t.to_string());
  std::vector<eval::Tuple> out;
  for (const auto& t : db) {
    if (!base_keys.count(t.to_string())) out.push_back(t);
  }
  return out;
}

}  // namespace mp::meta
