// Meta tuples (Section 3.2): the program's syntactic elements represented
// as data, so that provenance can reason about program changes. Program-
// based meta tuples (Const, Oper, PredFunc, HeadFunc, Assign) are extracted
// once per program and name the sites the repair engine may mutate;
// runtime-based meta tuples (Tuple, TuplePred, Join, Sel, Expr, HeadVal,
// Base) are materialized on demand while expanding meta-provenance trees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ndlog/ast.h"
#include "util/value.h"

namespace mp::meta {

enum class MetaKind : uint8_t {
  // Program-based.
  HeadFunc,
  PredFunc,
  Assign,
  Const,
  Oper,
  // Runtime-based.
  Base,
  TupleRt,
  TuplePred,
  Expr,
  Join2,
  Join4,
  Sel,
  HeadVal,
};

const char* to_string(MetaKind k);

// Identifies a syntactic site inside a rule. `index` is the selection /
// assignment / body-atom ordinal; `side` distinguishes the two operands of
// a selection (0 = lhs, 1 = rhs) or the argument position of an atom.
struct SyntaxRef {
  std::string rule;
  enum class Site : uint8_t {
    SelLhs,
    SelRhs,
    SelOp,
    SelWhole,
    AssignRhs,
    AssignWhole,
    BodyAtom,
    BodyAtomArg,
    HeadArg,
    HeadTable,
    RuleWhole,
  };
  Site site = Site::RuleWhole;
  size_t index = 0;
  size_t side = 0;

  std::string to_string() const;
  bool operator==(const SyntaxRef& o) const {
    return rule == o.rule && site == o.site && index == o.index && side == o.side;
  }
};

// One meta tuple instance. For program-based kinds, `ref` names the site
// and `payload` carries the syntactic content (constant value, operator
// symbol, table name...).
struct MetaTuple {
  MetaKind kind = MetaKind::Const;
  SyntaxRef ref;
  Value payload;           // Const: the value; Oper: op symbol as string
  std::string table;       // PredFunc/HeadFunc: table name
  std::vector<std::string> args;  // PredFunc/HeadFunc: argument variables
  std::string to_string() const;
};

}  // namespace mp::meta
