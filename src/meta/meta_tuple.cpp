#include "meta/meta_tuple.h"

namespace mp::meta {

const char* to_string(MetaKind k) {
  switch (k) {
    case MetaKind::HeadFunc: return "HeadFunc";
    case MetaKind::PredFunc: return "PredFunc";
    case MetaKind::Assign: return "Assign";
    case MetaKind::Const: return "Const";
    case MetaKind::Oper: return "Oper";
    case MetaKind::Base: return "Base";
    case MetaKind::TupleRt: return "Tuple";
    case MetaKind::TuplePred: return "TuplePred";
    case MetaKind::Expr: return "Expr";
    case MetaKind::Join2: return "Join2";
    case MetaKind::Join4: return "Join4";
    case MetaKind::Sel: return "Sel";
    case MetaKind::HeadVal: return "HeadVal";
  }
  return "?";
}

std::string SyntaxRef::to_string() const {
  const char* site_name = "?";
  switch (site) {
    case Site::SelLhs: site_name = "sel.lhs"; break;
    case Site::SelRhs: site_name = "sel.rhs"; break;
    case Site::SelOp: site_name = "sel.op"; break;
    case Site::SelWhole: site_name = "sel"; break;
    case Site::AssignRhs: site_name = "assign.rhs"; break;
    case Site::AssignWhole: site_name = "assign"; break;
    case Site::BodyAtom: site_name = "atom"; break;
    case Site::BodyAtomArg: site_name = "atom.arg"; break;
    case Site::HeadArg: site_name = "head.arg"; break;
    case Site::HeadTable: site_name = "head.table"; break;
    case Site::RuleWhole: site_name = "rule"; break;
  }
  std::string out = rule + "/" + site_name + "[" + std::to_string(index);
  if (site == Site::BodyAtomArg || site == Site::SelLhs ||
      site == Site::SelRhs || site == Site::HeadArg) {
    out += "." + std::to_string(side);
  }
  out += "]";
  return out;
}

std::string MetaTuple::to_string() const {
  std::string out = mp::meta::to_string(kind);
  out += "(" + ref.to_string();
  if (!table.empty()) out += ", " + table;
  if (payload.is_str() ? !payload.as_str().empty() : true) {
    out += ", " + payload.to_string();
  }
  out += ")";
  return out;
}

}  // namespace mp::meta
