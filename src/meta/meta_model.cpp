#include "meta/meta_model.h"

namespace mp::meta {

const char* to_string(Language l) {
  switch (l) {
    case Language::UDlog: return "uDlog";
    case Language::NDlog: return "NDlog";
    case Language::Trema: return "Trema (Ruby)";
    case Language::Pyretic: return "Pyretic (DSL + Python)";
  }
  return "?";
}

const MetaRuleInfo* MetaModel::find_rule(const std::string& name) const {
  for (const auto& r : rules)
    if (r.name == name) return &r;
  return nullptr;
}

// --- uDlog: Figure 4 of the paper (15 meta rules, 13 meta tuples). -------
const MetaModel& udlog_meta_model() {
  static const MetaModel model = [] {
    MetaModel m;
    m.language = Language::UDlog;
    m.rules = {
        {"h1", "base tuples exist because they were inserted"},
        {"h2", "a head tuple is derived when all selections hold on a join"},
        {"p1", "a concrete tuple satisfies a rule's body predicate"},
        {"p2", "count the body predicates of a rule"},
        {"j1", "join two body tables into a Join4 cross product"},
        {"j2", "a single body table forms a Join2"},
        {"e1", "a constant evaluates to an expression (JID wildcard)"},
        {"e2", "Join2 arg1 value flows into an expression"},
        {"e3", "Join2 arg2 value flows into an expression"},
        {"e4", "Join4 arg1 value flows into an expression"},
        {"e5", "Join4 arg2 value flows into an expression"},
        {"e6", "Join4 arg3 value flows into an expression"},
        {"e7", "Join4 arg4 value flows into an expression"},
        {"a1", "an assignment binds a head value from an expression"},
        {"s1", "a selection evaluates `expr opr expr` per join state"},
    };
    m.tuples = {
        {"HeadFunc", true},  {"PredFunc", true}, {"Assign", true},
        {"Const", true},     {"Oper", true},     {"Base", false},
        {"Tuple", false},    {"TuplePred", false}, {"Expr", false},
        {"Join2", false},    {"Join4", false},   {"Sel", false},
        {"HeadVal", false},
    };
    return m;
  }();
  return model;
}

// --- NDlog: Appendix B.1 (23 meta rules, 23 meta tuples). ----------------
const MetaModel& ndlog_meta_model() {
  static const MetaModel model = [] {
    MetaModel m;
    m.language = Language::NDlog;
    m.rules = {
        {"h1", "base insertion derives a transient Message"},
        {"h2", "base insertion derives a materialized State"},
        {"h3", "a rule head derives a Message (timeout 0)"},
        {"h4", "a rule head derives a State (timeout 1)"},
        {"h5", "head values + matched constraints derive a Head"},
        {"h6", "rules without constraints trivially match"},
        {"h7", "all k constraints true => ConstraintMatch"},
        {"p1", "runtime Message satisfies a body predicate"},
        {"p2", "runtime State satisfies a body predicate"},
        {"j1", "count Message predicates of a rule"},
        {"j2", "count State predicates of a rule"},
        {"j3", "join of state-only bodies"},
        {"j4", "join of message-only bodies"},
        {"j5", "join of mixed message/state bodies"},
        {"e1", "join columns flow into expressions"},
        {"e2", "constants flow into expressions (JID wildcard)"},
        {"e3", "operator trees compose sub-expressions"},
        {"a1", "assignments bind head values from expressions"},
        {"c1", "count the constraints of a rule"},
        {"c2", "boolean expressions act as constraints"},
        {"g1", "a join matching all constraints is an AggWrap match"},
        {"g2", "count matches per trigger (AggWrap)"},
        {"g3", "aggregate count feeds back as a predicate value"},
    };
    m.tuples = {
        {"Base", false},        {"Schema", true},
        {"Message", false},     {"State", false},
        {"Head", false},        {"HeadMeta", true},
        {"HeadValue", false},   {"ConstraintMatch", false},
        {"ConstraintCount", false}, {"Constraint", false},
        {"IsConstraint", true}, {"PredicateMeta", true},
        {"MessagePredicate", false}, {"StatePredicate", false},
        {"MessagePredicateCount", false}, {"StatePredicateCount", false},
        {"Join", false},        {"Expression", false},
        {"Constant", true},     {"Operator", true},
        {"LeftEdge", true},     {"RightEdge", true},
        {"Assignment", true},
    };
    return m;
  }();
  return model;
}

// --- Trema: Appendix B.2 (42 meta rules, 32 meta tuples). ----------------
const MetaModel& trema_meta_model() {
  static const MetaModel model = [] {
    MetaModel m;
    m.language = Language::Trema;
    auto add = [&](const char* name, const char* desc) {
      m.rules.push_back({name, desc});
    };
    // Processing PacketIn.
    add("pi1", "entering the packet_in handler");
    add("pi2", "creating the packet object");
    add("pi3", "creating attributes of the packet object");
    add("pi4", "creating the switch variable");
    // Installing flow entries.
    add("fe1", "send_flow_mod_add installs a micro flow entry");
    add("fe2", "micro flow entry adopts the PacketIn header fields");
    add("fe3", "send_flow_mod_wildcard installs a macro flow entry");
    add("fe4", "send_packet_out emits a PacketOut for the cached packet");
    add("fe5", "PacketOut adopts the PacketIn header fields");
    // If clauses.
    add("cj1", "true predicate executes the if body");
    add("cj2", "true predicate propagates variables into the if body");
    add("cj3", "false predicate skips to the else line");
    add("cj4", "false predicate propagates variables past the if body");
    // Expressions.
    add("e1", "a constant derives an expression");
    add("e2", "a local variable derives an expression");
    add("e3", "an object attribute derives an expression");
    add("e4", "operators compose sub-expressions");
    add("e5", "hash-table membership count");
    add("e6", "hash-table hit derives a true expression");
    add("e7", "hash-table miss derives a false expression");
    add("e8", "hash-table lookup derives the stored value");
    // Function calls.
    add("fc1", "a call site triggers a function execution");
    add("fc2", "arguments are copied to the callee");
    add("fc3", "object-argument attributes are copied to the callee");
    add("fc4", "execution enters the function body");
    // Function returns.
    add("fr1", "a return statement triggers a function return");
    add("fr2", "the return value is copied to the caller");
    add("fr3", "execution resumes after the call site");
    // Objects.
    add("of1", "object construction calls the constructor");
    add("of2", "constructor allocates the attributes");
    add("of3", "constructor allocates the object itself");
    add("of4", "member-function call on an object reference");
    add("of5", "object attributes are copied into the member call");
    add("of6", "member call lowers to a plain function call");
    // Assignments.
    add("a1", "assignment stores an expression into a variable");
    add("a2", "count assignments per line/variable");
    add("a3", "no assignment on this line for the variable");
    add("a4", "unassigned variables propagate to the next line");
    // Hash tables.
    add("ht1", "hash-table store updates an entry");
    add("ht2", "count hash-table writes per line");
    add("ht3", "no hash-table write on this line");
    add("ht4", "unwritten hash entries propagate to the next line");
    auto tup = [&](const char* name, bool prog) {
      m.tuples.push_back({name, prog});
    };
    tup("packetIn", false);       tup("ExecLine", false);
    tup("EntryLine", true);       tup("FuncCall", true);
    tup("FuncDecl", true);        tup("FuncExec", false);
    tup("FuncRet", false);        tup("Return", true);
    tup("NextLine", true);        tup("Expression", false);
    tup("Value", false);          tup("ClassMap", false);
    tup("Constant", true);        tup("VarName", true);
    tup("AttributeOf", true);     tup("Operator", true);
    tup("HashTableCheck", true);  tup("HashTableGet", true);
    tup("HashTableSet", true);    tup("HashTableEntry", false);
    tup("HashTableCount", false); tup("flowEntryMicro", false);
    tup("flowEntry", false);      tup("packetOutMicro", false);
    tup("packetOut", false);      tup("IfClause", true);
    tup("ObjectNew", true);       tup("ObjectDecl", true);
    tup("FuncCallObject", false); tup("Assignment", true);
    tup("AssignmentCount", false); tup("NoAssignment", false);
    return m;
  }();
  return model;
}

// --- Pyretic: Appendix B.3 (53 meta rules, 41 meta tuples). --------------
const MetaModel& pyretic_meta_model() {
  static const MetaModel model = [] {
    MetaModel m;
    m.language = Language::Pyretic;
    // Pyretic shares the imperative core with the Trema model (Appendix B:
    // "a set of imperative features of Python, similar to that of Ruby")
    // minus one PacketIn rule, plus the NetCore policy rules of Figure 16.
    const MetaModel& trema = trema_meta_model();
    for (const auto& r : trema.rules) {
      if (r.name == "pi4") continue;  // no switch variable in Pyretic
      m.rules.push_back(r);
    }
    // fe6 exists in the Pyretic model (PacketOut adoption is split).
    m.rules.push_back({"fe6", "PacketOut adopts header fields (macro path)"});
    auto add = [&](const char* name, const char* desc) {
      m.rules.push_back({name, desc});
    };
    // NetCore policies (Figure 16).
    add("pa1", "primitive action sets the output port");
    add("pa2", "primitive modify action rewrites a header field");
    add("pa3", "primitive action forwards to its sub-policies");
    add("pa4", "unmodified packet fields propagate through an action");
    add("pr1", "field predicate compares a packet field");
    add("pr2", "constant predicate (all/none)");
    add("pr3", "restricted policy applies sub-policies when true");
    add("pp1", "parallel composition builds a Para policy");
    add("pp2", "parallel policy executes both branches");
    add("ps1", "sequential composition chains policies");
    add("ps2", "sequential policy feeds actions into the successor");
    m.tuples = trema.tuples;
    auto tup = [&](const char* name, bool prog) {
      m.tuples.push_back({name, prog});
    };
    tup("Policy", true);
    tup("PredicateValue", false);
    tup("FieldPredicate", true);
    tup("ConstantPredicate", true);
    tup("ConstantAction", true);
    tup("ModifyAction", true);
    tup("Parallel", true);
    tup("Sequential", true);
    tup("NoHashTableSet", false);
    return m;
  }();
  return model;
}

const MetaModel& meta_model(Language l) {
  switch (l) {
    case Language::UDlog: return udlog_meta_model();
    case Language::NDlog: return ndlog_meta_model();
    case Language::Trema: return trema_meta_model();
    case Language::Pyretic: return pyretic_meta_model();
  }
  return udlog_meta_model();
}

}  // namespace mp::meta
