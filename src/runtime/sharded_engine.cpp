#include "runtime/sharded_engine.h"

#include <algorithm>

#include "fault/fault.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "util/threads.h"

namespace mp::runtime {

ShardedEngine::ShardedEngine(const ndlog::Program& program, ShardPlan plan,
                             ShardedOptions opt)
    : plan_(std::move(plan)), opt_(opt) {
  shards_.resize(plan_.shards());
  for (uint32_t s = 0; s < plan_.shards(); ++s) {
    Shard& sh = shards_[s];
    sh.engine = std::make_unique<eval::Engine>(program, opt_.engine);
    sh.outbox.resize(plan_.shards());
    eval::Engine::ShardHooks hooks;
    hooks.is_local = [this, s](const Value& node) {
      return plan_.shard_of(node) == s;
    };
    // The hooks run on the worker that owns shard `s` and write only into
    // that shard's outbox lanes, which are swapped into peer inboxes at
    // the round barrier — no lane is ever touched from two threads.
    hooks.forward = [this, s](eval::Tuple t, eval::TagMask tags,
                              eval::EventId send_event) {
      // Fires mid-evaluation (deep inside the shard engine's cascade):
      // the InjectedFault unwinds through Engine::run_queue — which
      // resets itself to a usable state — into the round guard, which
      // discards this round's effects shard-locally.
      MP_FAILPOINT_THROW("runtime.mailbox.enqueue");
      const uint32_t dst = plan_.shard_of(t.location());
      shards_[s].outbox[dst].push_back(Message{
          Message::Kind::Deliver, std::move(t), tags, s, send_event});
    };
    hooks.forward_retract = [this, s](eval::Tuple head) {
      MP_FAILPOINT_THROW("runtime.mailbox.enqueue");
      const uint32_t dst = plan_.shard_of(head.location());
      shards_[s].outbox[dst].push_back(Message{
          Message::Kind::Unsupport, std::move(head), 0, s, eval::kNoEvent});
    };
    sh.engine->set_shard_hooks(std::move(hooks));
  }
}

void ShardedEngine::stage(bool is_insert, const eval::Tuple& t,
                          eval::TagMask tags) {
  Shard& sh = shards_[plan_.shard_of(t.location())];
  sh.staged.push_back(StagedOp{is_insert, t, tags, gseq_++});
}

void ShardedEngine::insert(const eval::Tuple& t, eval::TagMask tags) {
  stage(true, t, tags);
  run_to_quiescence();
}

void ShardedEngine::insert_batch(std::span<const eval::Tuple> batch,
                                 eval::TagMask tags) {
  for (const eval::Tuple& t : batch) stage(true, t, tags);
  run_to_quiescence();
}

void ShardedEngine::insert_batch(
    std::span<const std::pair<eval::Tuple, eval::TagMask>> batch) {
  for (const auto& [t, tags] : batch) stage(true, t, tags);
  run_to_quiescence();
}

void ShardedEngine::remove(const eval::Tuple& t) {
  stage(false, t, eval::kAllTags);
  run_to_quiescence();
}

void ShardedEngine::remove_batch(std::span<const eval::Tuple> batch) {
  for (const eval::Tuple& t : batch) stage(false, t, eval::kAllTags);
  run_to_quiescence();
}

ShardedEngine::~ShardedEngine() { publish_obs(); }

void ShardedEngine::discard_pending() {
  for (Shard& sh : shards_) {
    sh.staged.clear();
    sh.inbox.clear();
    for (std::vector<Message>& lane : sh.outbox) lane.clear();
  }
}

ShardMetrics ShardedEngine::merged_metrics() const {
  ShardMetrics m;
  for (const Shard& sh : shards_) {
    m.rounds += sh.metrics.rounds;
    m.messages_in += sh.metrics.messages_in;
    m.messages_out += sh.metrics.messages_out;
    m.max_inbox_depth = std::max(m.max_inbox_depth, sh.metrics.max_inbox_depth);
    m.busy_ns += sh.metrics.busy_ns;
    m.barrier_wait_ns += sh.metrics.barrier_wait_ns;
  }
  return m;
}

void ShardedEngine::publish_obs() {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::global();
  auto bump = [&reg](const std::string& name, uint64_t cur, uint64_t& pub) {
    if (cur > pub) {
      reg.counter(name).add(cur - pub);
      pub = cur;
    }
  };
  // Merged view (scheduler-level rounds/messages plus per-shard sums).
  const ShardMetrics merged = merged_metrics();
  size_t sched_rounds = rounds_;
  size_t sched_messages = messages_;
  bump("runtime.sharded.rounds", sched_rounds, published_rounds_);
  bump("runtime.sharded.messages", sched_messages, published_messages_);
  bump("runtime.sharded.shard_rounds", merged.rounds,
       published_merged_.rounds);
  bump("runtime.sharded.busy_ns", merged.busy_ns, published_merged_.busy_ns);
  bump("runtime.sharded.barrier_wait_ns", merged.barrier_wait_ns,
       published_merged_.barrier_wait_ns);
  reg.gauge("runtime.sharded.max_inbox_depth")
      .set_max(static_cast<int64_t>(merged.max_inbox_depth));
  reg.gauge("runtime.sharded.shards").set(static_cast<int64_t>(shards_.size()));
  // Per-shard views, tagged by shard index in the instrument name. Engine
  // counters for each shard flow through the shard engine's own
  // publish_obs (eval.engine.*) when the engine is destroyed.
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::string prefix = "runtime.sharded.shard" + std::to_string(s);
    Shard& sh = shards_[s];
    // Per-shard published baselines live in a parallel map keyed by the
    // registry counters themselves: reuse the counter's value as the
    // baseline (counters are process-cumulative, so a second
    // ShardedEngine instance keeps adding onto the same instruments).
    const ShardMetrics& m = sh.metrics;
    ShardMetrics& pub = sh.published;
    bump(prefix + ".rounds", m.rounds, pub.rounds);
    bump(prefix + ".messages_in", m.messages_in, pub.messages_in);
    bump(prefix + ".messages_out", m.messages_out, pub.messages_out);
    bump(prefix + ".busy_ns", m.busy_ns, pub.busy_ns);
    bump(prefix + ".barrier_wait_ns", m.barrier_wait_ns, pub.barrier_wait_ns);
    reg.gauge(prefix + ".max_inbox_depth")
        .set_max(static_cast<int64_t>(m.max_inbox_depth));
  }
}

void ShardedEngine::run_shard_round(Shard& sh, uint64_t round) {
  const uint64_t t0 = obs::now_ns();
  // Fires before any effect of the round is applied: the cleanly
  // retryable failure mode (worker stillborn at round entry).
  MP_FAILPOINT_THROW("runtime.round.begin");
  eval::Engine& e = *sh.engine;
  // The whole round runs inside one bulk bracket: per-tuple application
  // (the merge needs the log position between tuples) with insert_batch's
  // deferred-index amortization. RAII so an exception unwinding out of
  // the round closes the bracket (end_batch) instead of leaving the
  // shard engine in deferred-indexing mode.
  struct BatchBracket {
    eval::Engine& e;
    explicit BatchBracket(eval::Engine& eng) : e(eng) { e.begin_batch(); }
    ~BatchBracket() { e.end_batch(); }
  } bracket(e);
  if (!sh.staged.empty()) {
    // Staged external ops, in stream order, one span per op so the
    // canonical merge can interleave shards back into stream order.
    for (StagedOp& op : sh.staged) {
      sh.spans.push_back(Span{round, op.gseq, e.log().size()});
      sh.round_work_begun = true;
      if (op.is_insert) {
        e.insert(op.tuple, op.tags);
      } else {
        e.remove(op.tuple);
      }
    }
    sh.staged.clear();
  }
  if (!sh.inbox.empty()) {
    // Fires before the drain touches the engine: with no staged ops this
    // round is still cleanly retryable (the inbox is intact).
    MP_FAILPOINT_THROW("runtime.mailbox.dequeue");
    sh.metrics.messages_in += sh.inbox.size();
    sh.metrics.max_inbox_depth =
        std::max<uint64_t>(sh.metrics.max_inbox_depth, sh.inbox.size());
    sh.spans.push_back(Span{round, 0, e.log().size()});
    for (Message& m : sh.inbox) {
      sh.round_work_begun = true;
      if (m.kind == Message::Kind::Deliver) {
        const eval::EventId recv =
            e.receive_remote(std::move(m.tuple), m.tags);
        if (recv != eval::kNoEvent && m.send_event != eval::kNoEvent) {
          sh.links.push_back(CrossLink{recv, m.src_shard, m.send_event});
        }
      } else {
        e.receive_unsupport(m.tuple);
      }
    }
    sh.inbox.clear();
  }
  sh.round_busy_ns = obs::now_ns() - t0;
  sh.metrics.busy_ns += sh.round_busy_ns;
  ++sh.metrics.rounds;
}

void ShardedEngine::run_shard_round_guarded(size_t s, uint64_t round) {
  Shard& sh = shards_[s];
  // Pre-round snapshot of the shard-local effect sinks: a failed attempt
  // truncates back to these, so no half-round span, cross-link or outbox
  // message survives into the merge or the next barrier swap.
  const size_t spans0 = sh.spans.size();
  const size_t links0 = sh.links.size();
  std::vector<size_t> outbox0(sh.outbox.size());
  for (size_t d = 0; d < sh.outbox.size(); ++d) outbox0[d] = sh.outbox[d].size();
  for (size_t attempt = 0;; ++attempt) {
    sh.round_work_begun = false;
    try {
      run_shard_round(sh, round);
      return;
    } catch (...) {
      sh.spans.resize(spans0);
      sh.links.resize(links0);
      for (size_t d = 0; d < sh.outbox.size(); ++d) {
        if (sh.outbox[d].size() > outbox0[d]) sh.outbox[d].resize(outbox0[d]);
      }
      sh.round_busy_ns = 0;
      // Retry only a round that failed before applying any engine work
      // (its staged ops and inbox are untouched): re-running a mid-round
      // failure would double-apply the prefix that already ran.
      if (!sh.round_work_begun && attempt < opt_.round_retries) {
        if (obs::enabled()) {
          obs::Registry::global().counter("runtime.sharded.round_retries")
              .inc();
        }
        continue;
      }
      sh.error = std::current_exception();
      return;
    }
  }
}

void ShardedEngine::run_to_quiescence() {
  bool work = false;
  for (const Shard& sh : shards_) work |= !sh.staged.empty();
  while (work) {
    const uint64_t round = round_counter_++;
    if (round_counter_ > opt_.max_rounds) {
      diverged_ = true;
      break;
    }
    std::vector<size_t> active;
    size_t pending = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s].staged.empty() || !shards_[s].inbox.empty()) {
        active.push_back(s);
        pending += shards_[s].staged.size() + shards_[s].inbox.size();
      }
    }
    const uint64_t round_t0 = obs::now_ns();
    if (opt_.parallel && active.size() > 1 &&
        pending >= opt_.min_parallel_work) {
      // The guarded runner never throws: a worker's exception is stashed
      // per shard and rethrown below, AFTER every worker has joined at
      // the barrier — a mid-round failure can neither deadlock the
      // barrier nor leak a joinable thread.
      std::vector<std::function<void()>> thunks;
      thunks.reserve(active.size());
      for (size_t s : active) {
        thunks.push_back(
            [this, s, round] { run_shard_round_guarded(s, round); });
      }
      run_thunks_parallel(std::move(thunks));
    } else {
      for (size_t s : active) run_shard_round_guarded(s, round);
    }
    // Post-barrier failure check: rethrow the first failed shard's
    // exception (by shard index — deterministic regardless of thread
    // timing) after discarding ALL pending work, so the engine is
    // quiescent and fully usable when the exception surfaces.
    std::exception_ptr err;
    for (Shard& sh : shards_) {
      if (sh.error != nullptr && err == nullptr) err = sh.error;
      sh.error = nullptr;
    }
    if (err != nullptr) {
      discard_pending();
      ++rounds_;
      std::rethrow_exception(err);
    }
    // Barrier wait: the slice of the round's wall time a shard spent
    // blocked on its peers (wall minus its own busy time).
    const uint64_t round_wall = obs::now_ns() - round_t0;
    for (size_t s : active) {
      Shard& sh = shards_[s];
      if (round_wall > sh.round_busy_ns) {
        sh.metrics.barrier_wait_ns += round_wall - sh.round_busy_ns;
      }
    }
    ++rounds_;
    // Barrier: swap outboxes into peer inboxes, source shards in order,
    // so every inbox drain is deterministic regardless of thread timing.
    work = false;
    for (size_t d = 0; d < shards_.size(); ++d) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        std::vector<Message>& lane = shards_[s].outbox[d];
        if (lane.empty()) continue;
        messages_ += lane.size();
        shards_[s].metrics.messages_out += lane.size();
        auto& inbox = shards_[d].inbox;
        inbox.insert(inbox.end(), std::make_move_iterator(lane.begin()),
                     std::make_move_iterator(lane.end()));
        lane.clear();
      }
      work |= !shards_[d].inbox.empty();
    }
    for (const Shard& sh : shards_) diverged_ |= sh.engine->diverged();
    if (diverged_) break;
  }
}

bool ShardedEngine::exists(const Value& node, const std::string& table,
                           const Row& row) const {
  return shard(plan_.shard_of(node)).exists(node, table, row);
}

std::vector<Row> ShardedEngine::rows(const Value& node,
                                     const std::string& table) const {
  return shard(plan_.shard_of(node)).rows(node, table);
}

std::vector<eval::Tuple> ShardedEngine::all_tuples(
    const std::string& table) const {
  std::vector<eval::Tuple> out;
  for (const Shard& sh : shards_) {
    std::vector<eval::Tuple> part = sh.engine->all_tuples(table);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

eval::TagMask ShardedEngine::tags_of(const Value& node,
                                     const std::string& table,
                                     const Row& row) const {
  return shard(plan_.shard_of(node)).tags_of(node, table, row);
}

void ShardedEngine::on_appear(
    const std::string& table,
    std::function<void(const eval::Tuple&, eval::TagMask)> cb) {
  for (Shard& sh : shards_) sh.engine->on_appear(table, cb);
}

void ShardedEngine::set_rule_restrict(const std::string& rule,
                                      eval::TagMask mask) {
  for (Shard& sh : shards_) sh.engine->set_rule_restrict(rule, mask);
}

size_t ShardedEngine::rule_firings() const {
  size_t n = 0;
  for (const Shard& sh : shards_) n += sh.engine->rule_firings();
  return n;
}

size_t ShardedEngine::steps() const {
  size_t n = 0;
  for (const Shard& sh : shards_) n += sh.engine->steps();
  return n;
}

size_t ShardedEngine::index_probes() const {
  size_t n = 0;
  for (const Shard& sh : shards_) n += sh.engine->index_probes();
  return n;
}

size_t ShardedEngine::full_scans() const {
  size_t n = 0;
  for (const Shard& sh : shards_) n += sh.engine->full_scans();
  return n;
}

eval::EventLog ShardedEngine::merged_log() const {
  const size_t n = shards_.size();
  // Per-shard event copies (the checkpointed prefix decodes back into
  // Events, so a compacted shard log merges like an uncompacted one).
  // Causes are materialized per event: a decoded scratch Event's cause
  // span only lives until the next decode.
  struct MergeEvent {
    eval::Event ev;
    std::vector<eval::EventId> causes;
  };
  std::vector<std::vector<MergeEvent>> events(n);
  for (size_t s = 0; s < n; ++s) {
    const eval::EventLog& slog = shards_[s].engine->log();
    events[s].reserve(slog.size());
    slog.for_each_event([&](const eval::Event& e) {
      const auto causes = slog.causes_of(e);
      events[s].push_back(
          MergeEvent{e, {causes.begin(), causes.end()}});
    });
  }

  // Handle remap across pools: every shard has its own TuplePool (and
  // rule interner), so shard-local TupleRefs/RuleIds are re-interned into
  // the merged log's private pool once per distinct handle, then every
  // event append is a pure handle store.
  eval::EventLog out;
  std::vector<std::vector<eval::TupleRef>> tuple_map(n);
  std::vector<std::vector<eval::RuleId>> rule_map(n);
  auto map_tuple = [&](size_t s, eval::TupleRef ref) {
    auto& m = tuple_map[s];
    if (ref >= m.size()) m.resize(ref + 1, eval::kNoTupleRef);
    if (m[ref] == eval::kNoTupleRef) {
      const eval::EventLog& slog = shards_[s].engine->log();
      m[ref] = out.intern_tuple(slog.table_name(ref), slog.row_of(ref));
    }
    return m[ref];
  };
  auto map_rule = [&](size_t s, eval::RuleId rule) {
    if (rule == eval::kNoRule) return eval::kNoRule;
    auto& m = rule_map[s];
    if (rule >= m.size()) m.resize(rule + 1, eval::kNoRule);
    if (m[rule] == eval::kNoRule) {
      m[rule] = out.intern_rule(shards_[s].engine->log().rule_name(rule));
    }
    return m[rule];
  };

  // Global span order: (round, stream position, shard); spans were
  // appended per shard with non-decreasing rounds and begins.
  struct GlobalSpan {
    uint64_t round, gseq;
    uint32_t shard;
    uint64_t begin, end;
  };
  std::vector<GlobalSpan> spans;
  for (uint32_t s = 0; s < n; ++s) {
    const auto& local = shards_[s].spans;
    for (size_t i = 0; i < local.size(); ++i) {
      const uint64_t end =
          i + 1 < local.size() ? local[i + 1].begin : events[s].size();
      spans.push_back(
          GlobalSpan{local[i].round, local[i].gseq, s, local[i].begin, end});
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const GlobalSpan& a, const GlobalSpan& b) {
                     if (a.round != b.round) return a.round < b.round;
                     if (a.gseq != b.gseq) return a.gseq < b.gseq;
                     return a.shard < b.shard;
                   });

  // Pass 1: canonical id for every (shard, local id).
  std::vector<std::vector<eval::EventId>> canon(n);
  for (size_t s = 0; s < n; ++s) {
    canon[s].assign(events[s].size(), eval::kNoEvent);
  }
  eval::EventId next = 0;
  for (const GlobalSpan& sp : spans) {
    for (uint64_t i = sp.begin; i < sp.end; ++i) canon[sp.shard][i] = next++;
  }

  // Receive -> Send cross-links, keyed by the receive's local id.
  std::vector<std::unordered_map<eval::EventId, const CrossLink*>> links(n);
  for (size_t s = 0; s < n; ++s) {
    for (const CrossLink& l : shards_[s].links) links[s][l.recv] = &l;
  }

  // Pass 2: append in canonical order, remapping causal links and handles.
  std::vector<eval::EventId> causes;
  for (const GlobalSpan& sp : spans) {
    const eval::EventLog& slog = shards_[sp.shard].engine->log();
    for (uint64_t i = sp.begin; i < sp.end; ++i) {
      const MergeEvent& me = events[sp.shard][i];
      const eval::Event& ev = me.ev;
      causes.clear();
      if (ev.kind == eval::EventKind::Receive) {
        auto it = links[sp.shard].find(ev.id);
        if (it != links[sp.shard].end()) {
          const CrossLink& l = *it->second;
          if (l.send < canon[l.src_shard].size()) {
            causes.push_back(canon[l.src_shard][l.send]);
          }
        }
      }
      if (causes.empty()) {
        for (eval::EventId c : me.causes) {
          if (c < canon[sp.shard].size() &&
              canon[sp.shard][c] != eval::kNoEvent) {
            causes.push_back(canon[sp.shard][c]);
          }
        }
      }
      // ev.node is a handle into the source shard's interner; the append
      // re-interns its Value into the merged log's private node space.
      out.append(ev.kind, slog.node_value(ev.node),
                 map_tuple(sp.shard, ev.tuple), ev.tags, causes,
                 map_rule(sp.shard, ev.rule));
    }
  }

  // Derivation records, in canonical derive-event order (== the serial
  // log's derivation order when the multisets agree). Head/body handles
  // are remapped into the merged pool.
  struct MergeRec {
    eval::EventId derive_event;
    eval::RuleId rule;
    eval::TupleRef head;
    std::vector<eval::TupleRef> body;
    bool live;
  };
  std::vector<MergeRec> recs;
  for (size_t s = 0; s < n; ++s) {
    const eval::EventLog& slog = shards_[s].engine->log();
    for (const eval::DerivRecord& r : slog.derivations()) {
      MergeRec copy;
      copy.derive_event = r.derive_event;
      if (copy.derive_event != eval::kNoEvent &&
          copy.derive_event < canon[s].size()) {
        copy.derive_event = canon[s][copy.derive_event];
      }
      copy.rule = map_rule(s, r.rule);
      copy.head = map_tuple(s, r.head);
      for (eval::TupleRef b : slog.body_of(r)) {
        copy.body.push_back(b == eval::kNoTupleRef ? eval::kNoTupleRef
                                                   : map_tuple(s, b));
      }
      copy.live = r.live;
      recs.push_back(std::move(copy));
    }
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const MergeRec& a, const MergeRec& b) {
                     return a.derive_event < b.derive_event;
                   });
  for (const MergeRec& r : recs) {
    out.add_derivation(r.rule, r.head, r.body, r.derive_event, r.live);
  }
  return out;
}

}  // namespace mp::runtime
