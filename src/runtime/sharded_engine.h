// ShardedEngine: multi-threaded evaluation over a ShardPlan partition of
// the node space (see src/runtime/README.md for the full model).
//
// Each shard owns a complete eval::Engine compiled from the same program
// (rule compilation is deterministic, so every shard shares an identical
// catalog and plan layout) evaluating only the nodes the plan assigns to
// it. The two node-crossing operations are rerouted through
// Engine::ShardHooks into per-(src,dst) mailboxes:
//   - a derivation whose head lands on a peer shard ships a Deliver
//     message (Send logged at the source, Receive at the destination),
//   - a deletion cascade reaching a peer-shard derived head ships an
//     Unsupport message (no extra events, mirroring the serial engine's
//     inline support decrement).
//
// Scheduling is round-based: every worker runs its shard to local
// fixpoint (round 0 applies the staged external inserts/removes in stream
// order; later rounds drain the shard's inbox), then a barrier swaps
// outboxes into peer inboxes in shard order. Global quiescence = a round
// that ships no messages. Workers touch only their own shard's engine and
// outboxes between barriers, so the schedule is deterministic and
// race-free by construction (opt.parallel=false runs the same schedule
// inline, byte-for-byte identically — the cross-check used in tests).
//
// After a run, merged_log() rebuilds one canonical EventLog from the
// per-shard segments in a stable deterministic order keyed by
// (round, external-stream position, shard, local sequence). External
// Insert/Delete events therefore appear in exactly the original stream
// order, which makes backtest::replay_base_stream over the merged log
// reconstruct the identical serial engine — provenance queries, repair
// exploration and replay all work unchanged on top of it
// (tests/differential_test.cpp pins byte-identical repair output).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "eval/engine.h"
#include "runtime/shard_plan.h"

namespace mp::runtime {

struct ShardedOptions {
  eval::EngineOptions engine;  // applied to every per-shard engine
  // false: run every shard's round inline on the calling thread (same
  // schedule, same logs — the determinism cross-check and the right mode
  // for callers whose on_appear callbacks are not thread-safe).
  bool parallel = true;
  // Rounds whose pending input (staged ops + inbox messages) totals fewer
  // items than this run inline even with parallel on: spawning workers
  // costs more than the evaluation (e.g. a single insert(), or the short
  // tail rounds of a message cycle). Inline and parallel execution follow
  // the identical schedule, so this is a pure latency knob.
  size_t min_parallel_work = 64;
  size_t max_rounds = 1'000'000;  // guard against runaway message cycles
  // A shard round that throws BEFORE applying any engine work (its staged
  // ops and inbox are still intact) is retried up to this many times; a
  // mid-round throw — or an exhausted budget — discards the round's
  // effects shard-locally and rethrows cleanly after the barrier (no
  // deadlock, no leaked joinable threads; all shards' pending work is
  // dropped so the engine stays quiescent and usable).
  size_t round_retries = 0;
};

// Per-shard scheduler metrics, accumulated by the owning worker between
// barriers (single-writer, no synchronization needed) and summed into the
// merged view. All fields are cumulative over the engine's lifetime.
struct ShardMetrics {
  uint64_t rounds = 0;        // rounds in which this shard was active
  uint64_t messages_in = 0;   // cross-shard messages drained from the inbox
  uint64_t messages_out = 0;  // cross-shard messages shipped from the outbox
  uint64_t max_inbox_depth = 0;  // deepest inbox seen at a drain
  uint64_t busy_ns = 0;          // time spent inside run_shard_round
  uint64_t barrier_wait_ns = 0;  // round wall time minus own busy time
};

class ShardedEngine {
 public:
  ShardedEngine(const ndlog::Program& program, ShardPlan plan,
                ShardedOptions opt = {});
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // External mutations. Each call routes the tuples to their owning
  // shards (preserving stream order per shard and recording the global
  // stream position for the canonical merge) and runs the round scheduler
  // to global quiescence before returning — the same contract as the
  // serial Engine's insert/insert_batch.
  void insert(const eval::Tuple& t, eval::TagMask tags = eval::kAllTags);
  void insert_batch(std::span<const eval::Tuple> batch,
                    eval::TagMask tags = eval::kAllTags);
  void insert_batch(
      std::span<const std::pair<eval::Tuple, eval::TagMask>> batch);
  void remove(const eval::Tuple& t);
  void remove_batch(std::span<const eval::Tuple> batch);

  // Cross-shard aggregate queries (shard-order deterministic).
  bool exists(const Value& node, const std::string& table,
              const Row& row) const;
  std::vector<Row> rows(const Value& node, const std::string& table) const;
  std::vector<eval::Tuple> all_tuples(const std::string& table) const;
  eval::TagMask tags_of(const Value& node, const std::string& table,
                        const Row& row) const;

  // Registered on every shard engine. With opt.parallel the callback runs
  // on worker threads (possibly concurrently for tuples on different
  // shards) — it must be thread-safe, or the engine must run with
  // parallel=false.
  void on_appear(const std::string& table,
                 std::function<void(const eval::Tuple&, eval::TagMask)> cb);
  void set_rule_restrict(const std::string& rule, eval::TagMask mask);

  const ShardPlan& plan() const { return plan_; }
  size_t shards() const { return shards_.size(); }
  uint32_t shard_of(const Value& node) const { return plan_.shard_of(node); }
  eval::Engine& shard(size_t i) { return *shards_[i].engine; }
  const eval::Engine& shard(size_t i) const { return *shards_[i].engine; }

  // Summed across shards.
  size_t rule_firings() const;
  size_t steps() const;
  size_t index_probes() const;
  size_t full_scans() const;
  bool diverged() const { return diverged_; }

  // Scheduler counters: rounds executed and cross-shard tuples shipped.
  size_t rounds() const { return rounds_; }
  size_t messages_shipped() const { return messages_; }

  // Per-shard scheduler metrics and the sum across shards
  // (max_inbox_depth merges with max, not sum).
  const ShardMetrics& shard_metrics(size_t i) const {
    return shards_[i].metrics;
  }
  ShardMetrics merged_metrics() const;

  // Publishes scheduler metrics into the obs registry (runtime.sharded.*
  // merged, runtime.sharded.shard<N>.* per shard) as cumulative deltas
  // since the last publish. Off the round loop: called from the
  // destructor and by exporters; no-op while obs::enabled() is false.
  void publish_obs();

  // Rebuilds the canonical merged EventLog (see file comment): events are
  // renumbered densely in merge order, within-shard causal links are
  // remapped, and each cross-shard Receive is reconnected to its Send's
  // canonical id. Derivation records are merged in canonical derive-event
  // order. O(total events) time and memory — a post-run analysis step,
  // not a hot path.
  eval::EventLog merged_log() const;

 private:
  struct Message {
    enum class Kind : uint8_t { Deliver, Unsupport };
    Kind kind = Kind::Deliver;
    eval::Tuple tuple;
    eval::TagMask tags = eval::kAllTags;
    uint32_t src_shard = 0;
    eval::EventId send_event = eval::kNoEvent;  // src-shard-local id
  };
  struct StagedOp {
    bool is_insert = true;
    eval::Tuple tuple;
    eval::TagMask tags = eval::kAllTags;
    uint64_t gseq = 0;  // position in the external stream
  };
  // One contiguous run of a shard's log: everything this shard appended
  // while processing one external op (round 0 of a run) or one inbox
  // drain (later rounds). The canonical merge sorts spans by
  // (round, gseq, shard); within a span, local log order is kept.
  struct Span {
    uint64_t round = 0;
    uint64_t gseq = 0;
    uint64_t begin = 0;  // first local event id of the span
  };
  // Send half of a cross-shard Deliver, recorded by the receiving shard:
  // at merge time the Receive's cause becomes the Send's canonical id.
  struct CrossLink {
    eval::EventId recv = eval::kNoEvent;  // local id in this shard's log
    uint32_t src_shard = 0;
    eval::EventId send = eval::kNoEvent;  // local id in src shard's log
  };
  struct Shard {
    std::unique_ptr<eval::Engine> engine;
    std::vector<StagedOp> staged;
    std::vector<std::vector<Message>> outbox;  // one lane per destination
    std::vector<Message> inbox;
    std::vector<Span> spans;
    std::vector<CrossLink> links;
    ShardMetrics metrics;
    ShardMetrics published;      // baseline for delta publication
    uint64_t round_busy_ns = 0;  // busy time of the round in flight
    // Barrier-failure state (see run_shard_round_guarded): the stashed
    // exception of a failed round, and whether the round applied any
    // engine work before throwing (false = cleanly retryable).
    std::exception_ptr error;
    bool round_work_begun = false;
  };

  void stage(bool is_insert, const eval::Tuple& t, eval::TagMask tags);
  void run_to_quiescence();
  void run_shard_round(Shard& sh, uint64_t round);
  // Wraps run_shard_round for the barrier: never throws. On an exception
  // it rolls the shard's round-local effects back (spans/links/outbox to
  // their pre-round lengths), retries per opt_.round_retries when no
  // engine work had begun, and otherwise stashes the exception in
  // Shard::error for run_to_quiescence to rethrow after the barrier.
  void run_shard_round_guarded(size_t s, uint64_t round);
  // Drops every shard's staged ops, inbox and outbox lanes (the cleanup
  // before a barrier rethrow: the engine returns to quiescence).
  void discard_pending();

  ShardPlan plan_;
  ShardedOptions opt_;
  std::vector<Shard> shards_;
  uint64_t gseq_ = 0;
  uint64_t round_counter_ = 0;
  size_t rounds_ = 0;
  size_t messages_ = 0;
  bool diverged_ = false;
  // Values already pushed into the registry, so repeated publishes add
  // only the increment (counters in the registry are process-cumulative).
  ShardMetrics published_merged_;
  uint64_t published_rounds_ = 0;
  uint64_t published_messages_ = 0;
};

}  // namespace mp::runtime
