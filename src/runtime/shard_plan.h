// ShardPlan: the node-space partition behind the sharded evaluation
// runtime (src/runtime/README.md). The paper's NDlog model makes every
// node's rule evaluation independent except for explicit Send/Receive
// pairs, so the unit of placement is the node id (a tuple's location
// value, row[0]). A plan maps every node to one of N shards: explicitly
// placed nodes first (e.g. pinning the controller away from busy
// switches), everything else by a mixed hash of the node value so that
// dense integer node ids spread evenly instead of striding.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/value.h"

namespace mp::runtime {

class ShardPlan {
 public:
  explicit ShardPlan(uint32_t shards = 1) : shards_(shards == 0 ? 1 : shards) {}

  uint32_t shards() const { return shards_; }

  // Pins `node` to `shard` (modulo the shard count), overriding the hash
  // assignment. Placement must happen before the plan is handed to a
  // ShardedEngine — the partition is immutable while evaluation runs.
  void place(const Value& node, uint32_t shard) {
    placed_[node] = shard % shards_;
  }

  uint32_t shard_of(const Value& node) const {
    if (!placed_.empty()) {
      auto it = placed_.find(node);
      if (it != placed_.end()) return it->second;
    }
    if (shards_ == 1) return 0;
    return static_cast<uint32_t>(mix(node.hash()) % shards_);
  }

  size_t placed_count() const { return placed_.size(); }

 private:
  // SplitMix64 finalizer: Value::hash of a small int is near-identity, so
  // taking it modulo N directly would correlate shard assignment with the
  // node-id layout of the topology.
  static uint64_t mix(uint64_t h) {
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
  }

  uint32_t shards_;
  std::unordered_map<Value, uint32_t, ValueHash> placed_;
};

}  // namespace mp::runtime
