// Compiled rule plans for the evaluation engine.
//
// At Engine construction every ndlog::Rule is compiled once:
//   - table names are interned to dense TableIds (ndlog::Catalog),
//   - variable names are interned to dense frame slots, so the join-time
//     environment is a flat std::vector<Value> with an undo trail instead
//     of a string-keyed map copied per candidate row,
//   - each (rule, trigger-atom) pair gets a TriggerPlan: a greedy join
//     order over the remaining body atoms with, per atom, the argument
//     positions that are constants, that bind fresh slots, or that must
//     match already-bound slots. Atoms with at least one bound column are
//     executed as hash-index probes (the column set is registered in
//     IndexSpecs and maintained by every TableStore); only atoms with
//     zero bound columns fall back to a full scan.
//   - assignments, selections and head arguments are compiled to
//     slot-indexed expression trees (SlotExpr), so rule finishing never
//     touches a string either.
//   - selections are pushed down into the join: a selection whose
//     variables are all bound by the trigger / earlier atom steps (and
//     none of which is reassigned by an `:=` assignment, whose value at
//     finish could differ) is attached to the step that binds its last
//     variable and filters candidate rows during that step's probe/scan,
//     instead of only after the full join at finish. The pushed set is
//     recorded per trigger plan (pushed_mask) so rule finishing skips
//     exactly those; EngineOptions::pushdown_selections=false restores
//     the finish-only evaluation for differential cross-checks.
#pragma once

#include <cstdint>
#include <vector>

#include "ndlog/ast.h"
#include "ndlog/schema.h"
#include "util/value.h"

namespace mp::eval {

using TableId = ndlog::Catalog::TableId;

// Flat slot frame: the join-time variable environment. Binding a slot
// appends to the trail; backtracking rewinds to a mark. A slot that was
// already bound when overwritten (assignments may shadow join variables)
// has its previous value saved for restoration. The trail is a plain u32
// per bind (high bit = "a saved Value must be restored", kept on a side
// stack) — a fresh bind, the overwhelmingly common case, never constructs
// or destroys a Value for its undo record.
struct Frame {
  static constexpr uint32_t kSavedBit = 0x80000000u;
  std::vector<Value> slots;
  std::vector<uint8_t> bound;
  std::vector<uint32_t> trail;
  std::vector<Value> saved;  // previous values for kSavedBit trail entries

  // Stale slot Values are kept when the size already fits (every read is
  // guarded by `bound`, and bind()'s copy-assign then reuses any string
  // capacity): resetting is two cheap clears, not nslots Value
  // destructions, on the per-trigger-attempt hot path.
  void reset(size_t nslots) {
    if (slots.size() != nslots) slots.resize(nslots);
    bound.assign(nslots, 0);
    trail.clear();
    saved.clear();
  }
  size_t mark() const { return trail.size(); }
  void bind(uint32_t slot, const Value& v) {
    trail.push_back(slot);
    slots[slot] = v;
    bound[slot] = 1;
  }
  // Bind that may overwrite an existing binding (assignment semantics).
  void rebind(uint32_t slot, Value v) {
    if (bound[slot]) {
      trail.push_back(slot | kSavedBit);
      saved.push_back(std::move(slots[slot]));
    } else {
      trail.push_back(slot);
      bound[slot] = 1;
    }
    slots[slot] = std::move(v);
  }
  void undo_to(size_t m) {
    while (trail.size() > m) {
      const uint32_t u = trail.back();
      trail.pop_back();
      if (u & kSavedBit) {
        slots[u & ~kSavedBit] = std::move(saved.back());
        saved.pop_back();
      } else {
        bound[u] = 0;
      }
    }
  }
};

// Slot-compiled expression tree (flattened into a node vector).
// eval() fails if a referenced slot is unbound or arithmetic is invalid,
// mirroring eval_expr over the string-keyed Env.
struct SlotExpr {
  struct Node {
    ndlog::Expr::Kind kind = ndlog::Expr::Kind::Const;
    ndlog::ArithOp op = ndlog::ArithOp::Add;
    uint32_t slot = 0;
    int32_t lhs = -1, rhs = -1;
    Value cval;
  };
  std::vector<Node> nodes;
  int32_t root = -1;

  bool eval(const Frame& f, Value& out) const { return eval_node(f, root, out); }

  // Zero-copy operand access for selection evaluation: a plain Var/Const
  // root yields a pointer into the frame/plan (scratch untouched);
  // arithmetic evaluates into `scratch`. nullptr = unbound slot or
  // invalid arithmetic (the same failures eval() reports).
  const Value* eval_ref(const Frame& f, Value& scratch) const {
    if (root < 0) return nullptr;
    const Node& n = nodes[root];
    if (n.kind == ndlog::Expr::Kind::Var) {
      return f.bound[n.slot] ? &f.slots[n.slot] : nullptr;
    }
    if (n.kind == ndlog::Expr::Kind::Const) return &n.cval;
    return eval_node(f, root, scratch) ? &scratch : nullptr;
  }

 private:
  bool eval_node(const Frame& f, int32_t idx, Value& out) const;
};

// One unification action for an atom argument position.
struct ArgOp {
  enum class Kind : uint8_t {
    Const,  // row[col] must equal cval
    Bind,   // row[col] binds a fresh slot
    Check,  // row[col] must equal the already-bound slot
  };
  Kind kind = Kind::Const;
  uint32_t col = 0;
  uint32_t slot = 0;
  Value cval;
};

// Source of one component of an index probe key.
struct KeyPart {
  bool is_const = false;
  uint32_t slot = 0;
  Value cval;
};

// One join step: how to enumerate candidate rows for a body atom once the
// preceding steps (and the trigger) have bound part of the frame.
struct AtomStep {
  enum class Access : uint8_t {
    Scan,         // no bound columns: iterate the whole store
    Probe,        // >=1 bound column: probe the secondary hash index
    TriggerSelf,  // event atom matching the triggering tuple itself
  };
  TableId table = 0;
  uint32_t body_pos = 0;  // index into rule.body
  uint32_t arity = 0;
  Access access = Access::Scan;
  int32_t index_id = -1;           // into IndexSpecs for `table` when Probe
  std::vector<KeyPart> key;        // probe key parts, in index-column order
  std::vector<ArgOp> full_ops;     // all args (scan / forced-scan path)
  std::vector<ArgOp> residual_ops; // args not covered by the probe key
  // Selections (indices into CompiledRule::sels) fully bound once this
  // step's variables are unified: evaluated per candidate row to prune
  // the join early (selection pushdown).
  std::vector<uint32_t> sels;
};

// Columnar batched-firing metadata (engine.cpp, run_batch_lane). A plan is
// `pure` when every join step is TriggerSelf: firing depends only on the
// triggering tuple, never on stored state, so a lane of same-table
// appearances can be driven plan-major over a match vector. Because every
// slot a pure plan binds comes from the trigger row itself, its entire
// unification flattens to row-local predicates: row[col] == const and
// row[col] == row[col2].
struct ColumnarPred {
  enum class Kind : uint8_t { ConstEq, ColEq };
  Kind kind = Kind::ConstEq;
  uint32_t col = 0;
  uint32_t col2 = 0;  // ColEq: the column that bound the checked slot
  Value cval;         // ConstEq
};
// One charge boundary of the scalar execution: group 0 is the trigger atom
// (its failures charge no engine step), group g+1 is steps[g] (reaching it
// costs one step per surviving row, exactly like the exec_step call it
// replaces).
struct ColumnarGroup {
  uint32_t arity = 0;  // required row size for this group's atom
  std::vector<ColumnarPred> preds;
  std::vector<uint32_t> sels;  // pushed selections evaluated at this group
};
struct ColumnarPlan {
  bool pure = false;
  std::vector<ColumnarGroup> groups;  // steps.size() + 1 when pure
  // Frame construction recipe: slot <- row[col], in binding order.
  std::vector<std::pair<uint32_t, uint32_t>> slot_cols;
  // rule.body positions this plan satisfies from the trigger tuple (the
  // trigger atom plus every TriggerSelf step); a staged firing's cause and
  // body-ref vectors fill exactly these positions.
  std::vector<uint32_t> body_positions;
  // Flat finish: when the rule has no assignments, every selection is
  // pushed into the join, and each head argument is a bare variable (bound
  // from a trigger column) or a constant, head rows are built straight
  // from the trigger row — no Frame is constructed anywhere on the
  // columnar path. head_cols is the per-argument recipe. (Only valid
  // under pushdown evaluation; the finish-only cross-check mode takes the
  // frame-based finish.)
  struct HeadCol {
    bool is_const = false;
    uint32_t col = 0;
    Value cval;
  };
  bool flat_finish = false;
  std::vector<HeadCol> head_cols;
};

// The compiled execution plan for one (rule, trigger body atom) pair.
struct TriggerPlan {
  bool dead = false;  // can never fire (e.g. unreachable event atom)
  uint32_t arity = 0;
  std::vector<ArgOp> trigger_ops;
  // Selections fully bound by the trigger atom alone (evaluated once per
  // firing attempt, before any join step runs).
  std::vector<uint32_t> trigger_sels;
  // Bit i set = selection i is evaluated inside the join (trigger_sels or
  // some step's sels) for this plan; rule finishing skips those.
  // Selections with index >= 64 are never pushed down.
  uint64_t pushed_mask = 0;
  std::vector<AtomStep> steps;  // join order chosen by the planner
  ColumnarPlan columnar;        // set when the plan is pure (see above)
};

struct CompiledAssign {
  uint32_t slot = 0;
  SlotExpr expr;
};
struct CompiledSelection {
  ndlog::CmpOp op = ndlog::CmpOp::Eq;
  SlotExpr lhs, rhs;
};

struct CompiledRule {
  uint32_t nslots = 0;
  TableId head_table = 0;   // interned rule.head.table (no hash per firing)
  uint32_t log_rule = ~0u;  // EventLog RuleId; filled in by the engine
  std::vector<CompiledAssign> assigns;
  std::vector<CompiledSelection> sels;
  std::vector<SlotExpr> head_args;
  std::vector<TriggerPlan> triggers;  // one per body atom
};

// Projection of `row` onto an index's column set; false when the row is
// too short to project. Shared by TableStore and HistoryStore so their
// buckets follow one contract: a row that cannot project can never match
// the index's atoms/patterns and is kept out of the buckets entirely.
inline bool project_key(const Row& row, const std::vector<uint32_t>& cols,
                        Row& key) {
  key.clear();
  key.reserve(cols.size());
  for (uint32_t c : cols) {
    if (c >= row.size()) return false;
    key.push_back(row[c]);
  }
  return true;
}

// Per-table registry of secondary-index column sets, fixed at engine
// construction (all plans are compiled before any TableStore exists).
class IndexSpecs {
 public:
  using Columns = std::vector<uint32_t>;

  // Registers `cols` (must be sorted ascending) for `table`, deduplicating;
  // returns the dense index id within that table.
  int32_t ensure(TableId table, Columns cols);
  // Column sets registered for `table`; nullptr if none.
  const std::vector<Columns>* for_table(TableId table) const {
    if (table >= specs_.size() || specs_[table].empty()) return nullptr;
    return &specs_[table];
  }

 private:
  std::vector<std::vector<Columns>> specs_;
};

// Compiles `rule`, interning tables into `catalog` and registering the
// index column sets its probe steps need into `specs`.
CompiledRule compile_rule(const ndlog::Rule& rule, ndlog::Catalog& catalog,
                          IndexSpecs& specs);

}  // namespace mp::eval
