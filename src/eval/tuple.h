// Tuples and candidate-tag masks used throughout the runtime.
#pragma once

#include <cstdint>
#include <string>

#include "util/value.h"

namespace mp::eval {

// Bitmask of backtest candidate tags (Section 4.4). Bit i set means the
// tuple exists in the world of candidate i. Normal evaluation uses kAllTags.
using TagMask = uint64_t;
inline constexpr TagMask kAllTags = ~0ULL;
inline constexpr size_t kMaxTags = 64;

struct Tuple {
  std::string table;
  Row row;  // row[0] is the location (node id)

  const Value& location() const { return row[0]; }
  std::string to_string() const { return table + row_to_string(row); }
  bool operator==(const Tuple& o) const {
    return table == o.table && row == o.row;
  }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return hash_combine(std::hash<std::string>{}(t.table), hash_row(t.row));
  }
};

}  // namespace mp::eval
