#include "eval/tuple_pool.h"

namespace mp::eval {

TupleRef TuplePool::probe(TableId table, const Row& row, size_t h,
                          size_t* bucket_out) const {
  size_t i = h & mask_;
  while (true) {
    const uint32_t b = buckets_[i];
    if (b == 0) {
      *bucket_out = i;
      return kNoTupleRef;
    }
    const TupleRef ref = b - 1;
    const Slot& s = slots_[ref];
    if (s.hash == h && s.table == table && s.row == row) {
      *bucket_out = i;
      return ref;
    }
    i = (i + 1) & mask_;
  }
}

void TuplePool::grow() {
  const size_t want = buckets_.empty() ? 64 : buckets_.size() * 2;
  buckets_.assign(want, 0);
  mask_ = want - 1;
  for (TupleRef ref = 0; ref < slots_.size(); ++ref) {
    size_t i = slots_[ref].hash & mask_;
    while (buckets_[i] != 0) i = (i + 1) & mask_;
    buckets_[i] = ref + 1;
  }
}

TupleRef TuplePool::intern(TableId table, const Row& row) {
  if (buckets_.empty() || slots_.size() * 4 >= buckets_.size() * 3) grow();
  const size_t h = key_hash(table, row);
  size_t bucket = 0;
  const TupleRef found = probe(table, row, h, &bucket);
  if (found != kNoTupleRef) return found;  // dedup hit: the row is not copied
  return insert_slot(bucket, h, table, Row(row));
}

TupleRef TuplePool::intern(TableId table, Row&& row) {
  if (buckets_.empty() || slots_.size() * 4 >= buckets_.size() * 3) grow();
  const size_t h = key_hash(table, row);
  size_t bucket = 0;
  const TupleRef found = probe(table, row, h, &bucket);
  if (found != kNoTupleRef) return found;
  return insert_slot(bucket, h, table, std::move(row));
}

TupleRef TuplePool::insert_slot(size_t bucket, size_t h, TableId table,
                                Row&& row) {
  const auto ref = static_cast<TupleRef>(slots_.size());
  slots_.push_back(Slot{std::move(row), h, table});
  buckets_[bucket] = ref + 1;
  return ref;
}

TupleRef TuplePool::find(TableId table, const Row& row) const {
  if (buckets_.empty()) return kNoTupleRef;
  size_t bucket = 0;
  return probe(table, row, key_hash(table, row), &bucket);
}

void TuplePool::clear() {
  slots_.clear();
  buckets_.clear();
  mask_ = 0;
}

}  // namespace mp::eval
