// Per-node storage for materialized tables: rows with derivation-support
// counts, candidate-tag masks, primary-key replacement semantics, and
// secondary hash indexes on the column sets that compiled rule plans
// probe at join time.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "eval/plan.h"
#include "eval/tuple.h"
#include "eval/tuple_pool.h"
#include "ndlog/schema.h"

namespace mp::eval {

struct Entry {
  int support = 0;        // number of live derivations (base insert counts 1)
  TagMask tags = 0;       // candidate worlds in which the row exists
  uint64_t appear_event = 0;  // event id of the most recent appearance
  // Interned handle for this (table, row) in the engine's TuplePool; set on
  // appearance when provenance recording is on (kNoTupleRef otherwise).
  // Lets the join path record body provenance without re-hashing the row.
  TupleRef ref = kNoTupleRef;
};

class TableStore {
 public:
  using RowMap = std::unordered_map<Row, Entry, RowHash>;
  using Item = RowMap::value_type;  // pair<const Row, Entry>: node-stable
  using Bucket = std::vector<const Item*>;

  // Wires up the secondary indexes this table maintains; `specs` (owned by
  // the engine, same lifetime) lists one sorted column set per index. Must
  // be called before rows are inserted (stores are created empty).
  void configure_indexes(const std::vector<std::vector<uint32_t>>* specs) {
    index_specs_ = specs;
    if (specs != nullptr) indexes_.resize(specs->size());
  }

  Entry* find(const Row& row);
  const Entry* find(const Row& row) const;
  Entry& insert(const Row& row);  // creates entry with support 0 if absent
  void erase(const Row& row);
  const RowMap& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  // Deferred index maintenance (Engine::insert_batch): while on, insert()
  // queues newly created rows in a backlog instead of updating every
  // secondary index per row; the backlog is applied in one bulk pass by
  // flush_index_backlog(), which runs automatically on the first
  // probe/erase (so index consumers can never observe a stale index) and
  // when deferral is switched off.
  void set_deferred_indexing(bool on);
  bool deferred_indexing() const { return deferred_; }
  bool has_index_backlog() const { return !index_backlog_.empty(); }
  void flush_index_backlog() const;

  // Rows whose projection onto index `index_id`'s columns equals `key`;
  // nullptr when the bucket is empty.
  const Bucket* probe(size_t index_id, const Row& key) const {
    if (!index_backlog_.empty()) flush_index_backlog();
    const auto& ix = indexes_[index_id];
    auto it = ix.find(key);
    return it == ix.end() ? nullptr : &it->second;
  }

  // Key index support: returns the currently stored row with the given
  // primary key, if any (used for key-replacement updates).
  std::optional<Row> row_with_key(const Row& key) const;
  void index_key(const Row& key, const Row& row);
  void unindex_key(const Row& key);

 private:
  void add_to_indexes(const Item& item) const;
  void remove_from_indexes(const Item& item);

  RowMap rows_;
  const std::vector<std::vector<uint32_t>>* index_specs_ = nullptr;
  // The secondary indexes are a cache over rows_: mutable so the lazy
  // backlog flush can run from const probes.
  mutable std::vector<std::unordered_map<Row, Bucket, RowHash>> indexes_;
  mutable std::vector<const Item*> index_backlog_;
  bool deferred_ = false;
  std::unordered_map<Row, Row, RowHash> key_index_;
};

// All materialized state of one simulated node. Stores are keyed by the
// catalog's dense TableId on the hot path; the string-keyed API remains
// for external consumers (scenarios, provenance, tests) and is const-only
// so a lookup can never create an empty store as a side effect.
class Database {
 public:
  // Called by the engine when the node first appears. The catalog maps
  // names to ids; the specs say which secondary indexes each new store
  // must maintain. Both outlive the database.
  void init(const ndlog::Catalog* catalog, const IndexSpecs* specs) {
    catalog_ = catalog;
    specs_ = specs;
  }

  // Store for `id`, created (and its indexes configured) on first use.
  TableStore& store(TableId id);
  // Existing store or nullptr; never creates.
  TableStore* store_if(TableId id) {
    return id < stores_.size() ? stores_[id].get() : nullptr;
  }
  const TableStore* store_if(TableId id) const {
    return id < stores_.size() ? stores_[id].get() : nullptr;
  }

  const TableStore* table(const std::string& name) const {
    if (catalog_ == nullptr) return nullptr;
    const TableId id = catalog_->id_of(name);
    return id == ndlog::Catalog::kNoTable ? nullptr : store_if(id);
  }
  bool exists(const std::string& table, const Row& row) const {
    const TableStore* t = this->table(table);
    if (t == nullptr) return false;
    const Entry* e = t->find(row);
    return e != nullptr && e->support > 0;
  }
  std::vector<Row> rows(const std::string& table) const;
  std::vector<Row> rows(TableId id) const;
  size_t tuple_count() const;

 private:
  const ndlog::Catalog* catalog_ = nullptr;
  const IndexSpecs* specs_ = nullptr;
  std::vector<std::unique_ptr<TableStore>> stores_;
};

}  // namespace mp::eval
