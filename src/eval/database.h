// Per-node storage for materialized tables: rows with derivation-support
// counts, candidate-tag masks and primary-key replacement semantics.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "eval/tuple.h"
#include "ndlog/schema.h"

namespace mp::eval {

struct Entry {
  int support = 0;        // number of live derivations (base insert counts 1)
  TagMask tags = 0;       // candidate worlds in which the row exists
  uint64_t appear_event = 0;  // event id of the most recent appearance
};

class TableStore {
 public:
  using RowMap = std::unordered_map<Row, Entry, RowHash>;

  Entry* find(const Row& row);
  const Entry* find(const Row& row) const;
  Entry& insert(const Row& row);  // creates entry with support 0 if absent
  void erase(const Row& row);
  const RowMap& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  // Key index support: returns the currently stored row with the given
  // primary key, if any (used for key-replacement updates).
  std::optional<Row> row_with_key(const Row& key) const;
  void index_key(const Row& key, const Row& row);
  void unindex_key(const Row& key);

 private:
  RowMap rows_;
  std::unordered_map<Row, Row, RowHash> key_index_;
};

// All materialized state of one simulated node.
class Database {
 public:
  TableStore& table(const std::string& name) { return tables_[name]; }
  const TableStore* table(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }
  bool exists(const std::string& table, const Row& row) const {
    const TableStore* t = this->table(table);
    if (t == nullptr) return false;
    const Entry* e = t->find(row);
    return e != nullptr && e->support > 0;
  }
  std::vector<Row> rows(const std::string& table) const;
  size_t tuple_count() const;
  const std::unordered_map<std::string, TableStore>& tables() const {
    return tables_;
  }

 private:
  std::unordered_map<std::string, TableStore> tables_;
};

}  // namespace mp::eval
