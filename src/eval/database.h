// Per-node storage for materialized tables: rows with derivation-support
// counts, candidate-tag masks, primary-key replacement semantics, and
// secondary hash indexes on the column sets that compiled rule plans
// probe at join time.
//
// Storage is keyed by TupleRef, not by Row: every stored row is interned
// in the engine's TuplePool (unconditionally — provenance on or off), so
// the appearance hot path replaces a Row hash + unordered_map probe with
// the pool's once-per-distinct-tuple hash and a u32 open-addressed ref ->
// slot lookup. Entries live in a contiguous slot vector (struct-of-slots
// layout: the Entry columns the join loop reads are one array load apart,
// and the per-slot TupleRef doubles as the tombstone mark), so full scans
// and index buckets walk dense u32 slots instead of chasing
// unordered_map nodes. Rows materialize through the pool (row_at), whose
// slots are stable forever — a Row reference obtained from a store
// survives erase() of the entry that produced it.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/plan.h"
#include "eval/tuple.h"
#include "eval/tuple_pool.h"
#include "ndlog/schema.h"

namespace mp::eval {

// Per-table hot-column sets for the struct-of-arrays mirror (sorted,
// indexed by TableId; empty = no mirror for that table). Computed once at
// engine construction from the columnar plans' predicate columns — see
// Engine's constructor — and shared by every node's TableStore.
using SoaSpecs = std::vector<std::vector<uint32_t>>;

struct Entry {
  int support = 0;        // number of live derivations (base insert counts 1)
  TagMask tags = 0;       // candidate worlds in which the row exists
  uint64_t appear_event = 0;  // event id of the most recent appearance
  // Interned handle for this (table, row) in the engine's TuplePool; the
  // slot's identity. Always set (interning is unconditional), so the join
  // path records body provenance and the retract path cascades without
  // ever re-hashing a row.
  TupleRef ref = kNoTupleRef;
};

class TableStore {
 public:
  using Bucket = std::vector<uint32_t>;  // slot indices into the store

  static constexpr uint32_t kNoSlot = ~uint32_t{0};

  // Wires the store to the engine's pool and its own dense table id; must
  // be called before the first insert. Both outlive the store.
  void attach(TuplePool* pool, TableId table) {
    pool_ = pool;
    table_ = table;
  }

  // Wires up the secondary indexes this table maintains; `specs` (owned by
  // the engine, same lifetime) lists one sorted column set per index. Must
  // be called before rows are inserted (stores are created empty).
  void configure_indexes(const std::vector<std::vector<uint32_t>>* specs) {
    index_specs_ = specs;
    if (specs != nullptr) indexes_.resize(specs->size());
  }

  // Wires up the struct-of-arrays hot-column mirror: `cols` (owned by the
  // engine, sorted ascending) lists the row columns this store keeps in
  // per-column Value vectors alongside the row storage. The mirror is
  // written on insert and read slot-indexed by the columnar batched-firing
  // pass (Engine::columnar_fire), which filters a lane predicate-major:
  // one column's values are contiguous instead of a pointer chase through
  // each row's heap vector. Must be called before rows are inserted.
  void configure_soa(const std::vector<uint32_t>* cols) {
    soa_cols_ = cols;
    if (cols != nullptr) soa_.resize(cols->size());
  }
  bool has_soa() const { return soa_cols_ != nullptr; }
  // Value of hot column k (dense position in the configured column set)
  // for the row in `slot`. Only meaningful for live slots whose row covers
  // the column — the columnar pass checks arity before reading.
  const Value& soa_at(size_t k, uint32_t slot) const {
    return soa_[k][slot];
  }

  // --- ref-keyed hot path ----------------------------------------------
  Entry* find_ref(TupleRef ref) {
    const uint32_t slot = lookup_slot(ref);
    return slot == kNoSlot ? nullptr : &entries_[slot];
  }
  const Entry* find_ref(TupleRef ref) const {
    const uint32_t slot = lookup_slot(ref);
    return slot == kNoSlot ? nullptr : &entries_[slot];
  }
  // Creates the entry (support 0, ref filled in) if absent. The returned
  // reference is invalidated by the next insert into this store — hold it
  // only across entry mutation, never across dispatch.
  Entry& insert_ref(TupleRef ref);
  void erase_ref(TupleRef ref);

  // --- row-keyed convenience (cold callers; resolve through the pool) ---
  Entry* find(const Row& row) {
    return find_ref(pool_->find(table_, row));
  }
  const Entry* find(const Row& row) const {
    return find_ref(pool_->find(table_, row));
  }
  Entry& insert(const Row& row) { return insert_ref(pool_->intern(table_, row)); }
  void erase(const Row& row) {
    const TupleRef ref = pool_->find(table_, row);
    if (ref != kNoTupleRef) erase_ref(ref);
  }

  // --- slot iteration ---------------------------------------------------
  // Slots are assigned in insertion order and reused after erase;
  // ref_at() == kNoTupleRef marks a free slot (skip it).
  uint32_t slot_count() const { return static_cast<uint32_t>(slot_refs_.size()); }
  TupleRef ref_at(uint32_t slot) const { return slot_refs_[slot]; }
  const Row& row_at(uint32_t slot) const { return pool_->row(slot_refs_[slot]); }
  const Entry& entry_at(uint32_t slot) const { return entries_[slot]; }
  Entry& entry_at(uint32_t slot) { return entries_[slot]; }
  // Slot of an entry reference obtained from insert_ref()/find_ref(); valid
  // until that entry is erased (slots survive entries_ reallocation, the
  // reference itself does not).
  uint32_t slot_of(const Entry& e) const {
    return static_cast<uint32_t>(&e - entries_.data());
  }
  size_t size() const { return live_; }

  // Deferred index maintenance (Engine::insert_batch): while on, insert()
  // queues newly created slots in a backlog instead of updating every
  // secondary index per row; the backlog is applied in one bulk pass by
  // flush_index_backlog(), which runs automatically on the first
  // probe/erase (so index consumers can never observe a stale index) and
  // when deferral is switched off.
  void set_deferred_indexing(bool on);
  bool deferred_indexing() const { return deferred_; }
  bool has_index_backlog() const { return !index_backlog_.empty(); }
  void flush_index_backlog() const;

  // Slots whose row's projection onto index `index_id`'s columns equals
  // `key`; nullptr when the bucket is empty.
  const Bucket* probe(size_t index_id, const Row& key) const {
    if (!index_backlog_.empty()) flush_index_backlog();
    const auto& ix = indexes_[index_id];
    auto it = ix.find(key);
    return it == ix.end() ? nullptr : &it->second;
  }

  // Key index support: handle of the currently stored row with the given
  // primary key, kNoTupleRef if none (used for key-replacement updates).
  TupleRef ref_with_key(const Row& key) const {
    auto it = key_index_.find(key);
    return it == key_index_.end() ? kNoTupleRef : it->second;
  }
  void index_key(const Row& key, TupleRef ref) { key_index_[key] = ref; }
  void unindex_key(const Row& key) { key_index_.erase(key); }

 private:
  void add_to_indexes(uint32_t slot) const;
  void remove_from_indexes(uint32_t slot);
  void write_soa(uint32_t slot);

  // Open-addressed ref -> slot map, following the TuplePool bucket idiom:
  // buckets hold (ref + 1, slot) with 0 = empty, power-of-two capacity,
  // linear probing, backward-shift deletion (no tombstones).
  static size_t ref_bucket(TupleRef ref, size_t mask) {
    return (ref * size_t{2654435761u}) & mask;
  }
  uint32_t lookup_slot(TupleRef ref) const;
  void map_put(TupleRef ref, uint32_t slot);
  void map_erase(TupleRef ref);
  void map_grow();

  TuplePool* pool_ = nullptr;
  TableId table_ = 0;
  std::vector<Entry> entries_;       // slot -> entry, contiguous
  std::vector<TupleRef> slot_refs_;  // slot -> ref; kNoTupleRef = free slot
  std::vector<uint32_t> free_slots_;
  size_t live_ = 0;
  std::vector<std::pair<uint32_t, uint32_t>> map_;  // (ref + 1, slot)
  size_t map_mask_ = 0;  // map_.size() - 1 (power of two), 0 when empty
  size_t map_count_ = 0;

  // Struct-of-arrays mirror of the hot columns: soa_[k][slot] == row[c]
  // for the k-th column c of *soa_cols_ (a default Value when the row is
  // too short to have the column — unreadable, because every columnar
  // read is behind an arity check). Erase clears the slot's mirror values
  // so a freed row's heap payloads are not pinned by the mirror.
  const std::vector<uint32_t>* soa_cols_ = nullptr;
  std::vector<std::vector<Value>> soa_;

  const std::vector<std::vector<uint32_t>>* index_specs_ = nullptr;
  // The secondary indexes are a cache over the slots: mutable so the lazy
  // backlog flush can run from const probes.
  mutable std::vector<std::unordered_map<Row, Bucket, RowHash>> indexes_;
  mutable std::vector<uint32_t> index_backlog_;  // slots
  bool deferred_ = false;
  std::unordered_map<Row, TupleRef, RowHash> key_index_;
};

// All materialized state of one simulated node. Stores are keyed by the
// catalog's dense TableId on the hot path; the string-keyed API remains
// for external consumers (scenarios, provenance, tests) and is const-only
// so a lookup can never create an empty store as a side effect.
class Database {
 public:
  // Called by the engine when the node first appears. The catalog maps
  // names to ids; the specs say which secondary indexes each new store
  // must maintain; `soa` lists each table's hot columns for the
  // struct-of-arrays mirror (nullptr = no mirrors); the pool interns
  // every stored row. All outlive the database.
  void init(const ndlog::Catalog* catalog, const IndexSpecs* specs,
            const SoaSpecs* soa, TuplePool* pool) {
    catalog_ = catalog;
    specs_ = specs;
    soa_ = soa;
    pool_ = pool;
  }

  // Store for `id`, created (attached and indexes configured) on first use.
  TableStore& store(TableId id);
  // Existing store or nullptr; never creates.
  TableStore* store_if(TableId id) {
    return id < stores_.size() ? stores_[id].get() : nullptr;
  }
  const TableStore* store_if(TableId id) const {
    return id < stores_.size() ? stores_[id].get() : nullptr;
  }

  const TableStore* table(const std::string& name) const {
    if (catalog_ == nullptr) return nullptr;
    const TableId id = catalog_->id_of(name);
    return id == ndlog::Catalog::kNoTable ? nullptr : store_if(id);
  }
  bool exists(const std::string& table, const Row& row) const {
    const TableStore* t = this->table(table);
    if (t == nullptr) return false;
    const Entry* e = t->find(row);
    return e != nullptr && e->support > 0;
  }
  std::vector<Row> rows(const std::string& table) const;
  std::vector<Row> rows(TableId id) const;
  size_t tuple_count() const;

 private:
  const ndlog::Catalog* catalog_ = nullptr;
  const IndexSpecs* specs_ = nullptr;
  const SoaSpecs* soa_ = nullptr;
  TuplePool* pool_ = nullptr;
  std::vector<std::unique_ptr<TableStore>> stores_;
};

}  // namespace mp::eval
