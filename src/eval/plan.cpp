#include "eval/plan.h"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace mp::eval {

bool SlotExpr::eval_node(const Frame& f, int32_t idx, Value& out) const {
  if (idx < 0) return false;
  const Node& n = nodes[idx];
  switch (n.kind) {
    case ndlog::Expr::Kind::Const:
      out = n.cval;
      return true;
    case ndlog::Expr::Kind::Var:
      if (!f.bound[n.slot]) return false;
      out = f.slots[n.slot];
      return true;
    case ndlog::Expr::Kind::Binary: {
      Value a, b;
      if (!eval_node(f, n.lhs, a) || !eval_node(f, n.rhs, b)) return false;
      if (!a.is_int() || !b.is_int()) return false;
      switch (n.op) {
        case ndlog::ArithOp::Add: out = Value(a.as_int() + b.as_int()); return true;
        case ndlog::ArithOp::Sub: out = Value(a.as_int() - b.as_int()); return true;
        case ndlog::ArithOp::Mul: out = Value(a.as_int() * b.as_int()); return true;
        case ndlog::ArithOp::Div:
          if (b.as_int() == 0) return false;
          out = Value(a.as_int() / b.as_int());
          return true;
      }
      return false;
    }
  }
  return false;
}

int32_t IndexSpecs::ensure(TableId table, Columns cols) {
  if (table >= specs_.size()) specs_.resize(table + 1);
  auto& v = specs_[table];
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == cols) return static_cast<int32_t>(i);
  }
  v.push_back(std::move(cols));
  return static_cast<int32_t>(v.size() - 1);
}

namespace {

// Variable-name -> frame-slot interner, per rule.
struct SlotMap {
  std::unordered_map<std::string, uint32_t> ids;
  uint32_t next = 0;
  uint32_t of(const std::string& name) {
    auto [it, inserted] = ids.try_emplace(name, next);
    if (inserted) ++next;
    return it->second;
  }
};

void grow(std::vector<uint8_t>& bound, uint32_t slot) {
  if (slot >= bound.size()) bound.resize(slot + 1, 0);
}

int32_t compile_expr(const ndlog::Expr& e, SlotMap& sm, SlotExpr& out) {
  SlotExpr::Node n;
  n.kind = e.kind();
  switch (e.kind()) {
    case ndlog::Expr::Kind::Const:
      n.cval = e.cval();
      break;
    case ndlog::Expr::Kind::Var:
      n.slot = sm.of(e.var_name());
      break;
    case ndlog::Expr::Kind::Binary:
      n.op = e.op();
      n.lhs = compile_expr(*e.lhs(), sm, out);
      n.rhs = compile_expr(*e.rhs(), sm, out);
      break;
  }
  out.nodes.push_back(std::move(n));
  return static_cast<int32_t>(out.nodes.size() - 1);
}

SlotExpr compile_expr(const ndlog::Expr& e, SlotMap& sm) {
  SlotExpr out;
  out.root = compile_expr(e, sm, out);
  return out;
}

// Unification ops for the trigger atom (everything is a residual check;
// marks freshly bound slots). Returns false on a non-unifiable arg.
bool trigger_ops(const ndlog::Atom& atom, SlotMap& sm,
                 std::vector<uint8_t>& bound, std::vector<ArgOp>& out) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const ndlog::Expr& arg = *atom.args[i];
    ArgOp op;
    op.col = static_cast<uint32_t>(i);
    if (arg.is_const()) {
      op.kind = ArgOp::Kind::Const;
      op.cval = arg.cval();
    } else if (arg.is_var()) {
      op.slot = sm.of(arg.var_name());
      grow(bound, op.slot);
      if (bound[op.slot]) {
        op.kind = ArgOp::Kind::Check;
      } else {
        op.kind = ArgOp::Kind::Bind;
        bound[op.slot] = 1;
      }
    } else {
      return false;  // binary exprs are not legal atom args
    }
    out.push_back(std::move(op));
  }
  return true;
}

// Number of atom args that would be bound at join time (consts plus
// variables already bound by earlier steps) — the planner's selectivity
// score. Returns -1 for atoms that can never unify.
int bound_cols(const ndlog::Atom& atom, SlotMap& sm,
               const std::vector<uint8_t>& bound) {
  int n = 0;
  for (const auto& argp : atom.args) {
    const ndlog::Expr& arg = *argp;
    if (arg.is_const()) {
      ++n;
    } else if (arg.is_var()) {
      // of() on a body var never creates a new slot here: all body vars
      // were pre-interned by compile_rule.
      const uint32_t slot = sm.of(arg.var_name());
      if (slot < bound.size() && bound[slot]) ++n;
    } else {
      return -1;
    }
  }
  return n;
}

// Builds the probe/scan step for `atom` given the bound set, registering
// the index spec; marks the atom's fresh variables bound.
bool make_step(const ndlog::Atom& atom, uint32_t body_pos, SlotMap& sm,
               std::vector<uint8_t>& bound, ndlog::Catalog& catalog,
               IndexSpecs& specs, AtomStep& st) {
  st.table = catalog.intern(atom.table);
  st.body_pos = body_pos;
  st.arity = static_cast<uint32_t>(atom.args.size());
  const std::vector<uint8_t> bound_at_entry = bound;
  std::vector<std::pair<uint32_t, KeyPart>> key_by_col;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const ndlog::Expr& arg = *atom.args[i];
    ArgOp op;
    op.col = static_cast<uint32_t>(i);
    if (arg.is_const()) {
      op.kind = ArgOp::Kind::Const;
      op.cval = arg.cval();
      KeyPart kp;
      kp.is_const = true;
      kp.cval = arg.cval();
      key_by_col.emplace_back(op.col, std::move(kp));
      st.full_ops.push_back(std::move(op));
    } else if (arg.is_var()) {
      op.slot = sm.of(arg.var_name());
      grow(bound, op.slot);
      if (bound[op.slot]) {
        op.kind = ArgOp::Kind::Check;
        if (op.slot < bound_at_entry.size() && bound_at_entry[op.slot]) {
          // Bound by an earlier step: part of the probe key.
          KeyPart kp;
          kp.slot = op.slot;
          key_by_col.emplace_back(op.col, std::move(kp));
        } else {
          // Repeated variable within this atom: checked per row.
          st.residual_ops.push_back(op);
        }
        st.full_ops.push_back(std::move(op));
      } else {
        op.kind = ArgOp::Kind::Bind;
        bound[op.slot] = 1;
        st.residual_ops.push_back(op);
        st.full_ops.push_back(std::move(op));
      }
    } else {
      return false;
    }
  }
  if (key_by_col.empty()) {
    st.access = AtomStep::Access::Scan;
    st.residual_ops = st.full_ops;
  } else {
    std::sort(key_by_col.begin(), key_by_col.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    IndexSpecs::Columns cols;
    cols.reserve(key_by_col.size());
    st.key.reserve(key_by_col.size());
    for (auto& [col, part] : key_by_col) {
      cols.push_back(col);
      st.key.push_back(std::move(part));
    }
    st.access = AtomStep::Access::Probe;
    st.index_id = specs.ensure(st.table, std::move(cols));
  }
  return true;
}

// Slots a compiled expression reads (Var nodes).
void collect_slots(const SlotExpr& e, std::vector<uint32_t>& out) {
  for (const SlotExpr::Node& n : e.nodes) {
    if (n.kind == ndlog::Expr::Kind::Var) out.push_back(n.slot);
  }
}

// Selection-pushdown analysis: for each selection, the set of slots it
// reads, and whether pushing it into the join is sound. A selection is
// pushable iff none of its variables is an assignment target — an `:=`
// may rebind (shadow) a join variable at finish, so the join-time value
// could differ from the one the finish-time evaluation would see.
struct SelInfo {
  std::vector<uint32_t> slots;
  bool pushable = true;
};

std::vector<SelInfo> analyze_sels(const CompiledRule& cr) {
  std::vector<uint8_t> assigned;
  for (const CompiledAssign& a : cr.assigns) {
    grow(assigned, a.slot);
    assigned[a.slot] = 1;
  }
  std::vector<SelInfo> out(cr.sels.size());
  for (size_t i = 0; i < cr.sels.size(); ++i) {
    collect_slots(cr.sels[i].lhs, out[i].slots);
    collect_slots(cr.sels[i].rhs, out[i].slots);
    for (uint32_t s : out[i].slots) {
      if (s < assigned.size() && assigned[s]) out[i].pushable = false;
    }
    if (i >= 64) out[i].pushable = false;  // pushed_mask is 64 bits wide
  }
  return out;
}

bool all_bound(const std::vector<uint32_t>& slots,
               const std::vector<uint8_t>& bound) {
  for (uint32_t s : slots) {
    if (s >= bound.size() || !bound[s]) return false;
  }
  return true;
}

// Single-node expression accessors for the const-fold below.
const SlotExpr::Node* single_node(const SlotExpr& e) {
  return e.nodes.size() == 1 ? &e.nodes[0] : nullptr;
}

// Folds trigger selections of the form `Var == Const` (either side) into
// a constant arg check on a trigger column that binds the variable:
// `cmp_eval(Eq, a, b)` is exactly `a == b`, so prepending
// ArgOp{Const, col, cval} to the trigger ops rejects a mismatching
// trigger tuple with one Value compare instead of running the selection
// machinery per firing. The folded selection is removed from
// trigger_sels; its pushed_mask bit stays set, so finish_rule skips it
// exactly as it would any pushed selection.
void fold_const_trigger_sels(const CompiledRule& cr, TriggerPlan& tp) {
  auto it = tp.trigger_sels.begin();
  while (it != tp.trigger_sels.end()) {
    const CompiledSelection& sel = cr.sels[*it];
    const SlotExpr::Node* l = single_node(sel.lhs);
    const SlotExpr::Node* r = single_node(sel.rhs);
    const SlotExpr::Node* var = nullptr;
    const SlotExpr::Node* cst = nullptr;
    if (sel.op == ndlog::CmpOp::Eq && l != nullptr && r != nullptr) {
      if (l->kind == ndlog::Expr::Kind::Var &&
          r->kind == ndlog::Expr::Kind::Const) {
        var = l;
        cst = r;
      } else if (r->kind == ndlog::Expr::Kind::Var &&
                 l->kind == ndlog::Expr::Kind::Const) {
        var = r;
        cst = l;
      }
    }
    uint32_t col = 0;
    bool found = false;
    if (var != nullptr) {
      // The selection was pushed to the trigger, so its variable is bound
      // by a Bind op in the trigger itself.
      for (const ArgOp& op : tp.trigger_ops) {
        if (op.kind == ArgOp::Kind::Bind && op.slot == var->slot) {
          col = op.col;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      ++it;
      continue;
    }
    ArgOp chk;
    chk.kind = ArgOp::Kind::Const;
    chk.col = col;
    chk.cval = cst->cval;
    tp.trigger_ops.insert(tp.trigger_ops.begin(), std::move(chk));
    it = tp.trigger_sels.erase(it);
  }
}

// Flattens a pure plan (every step TriggerSelf) into the row-local
// predicate groups the engine's columnar batched-firing path consumes.
// Leaves columnar.pure false — scalar fallback — on anything surprising
// (a Check against a slot no trigger column bound, a re-bind).
void build_columnar_plan(const CompiledRule& cr, TriggerPlan& tp,
                         uint32_t trigger_body_pos) {
  tp.columnar = ColumnarPlan{};
  if (tp.dead) return;
  for (const AtomStep& st : tp.steps) {
    if (st.access != AtomStep::Access::TriggerSelf) return;
  }
  ColumnarPlan cp;
  std::vector<int64_t> src;  // slot -> trigger column that bound it
  auto flatten = [&](const std::vector<ArgOp>& ops, ColumnarGroup& g) {
    for (const ArgOp& op : ops) {
      switch (op.kind) {
        case ArgOp::Kind::Const: {
          ColumnarPred p;
          p.kind = ColumnarPred::Kind::ConstEq;
          p.col = op.col;
          p.cval = op.cval;
          g.preds.push_back(std::move(p));
          break;
        }
        case ArgOp::Kind::Bind:
          if (op.slot >= src.size()) src.resize(op.slot + 1, -1);
          if (src[op.slot] >= 0) return false;
          src[op.slot] = op.col;
          cp.slot_cols.emplace_back(op.slot, op.col);
          break;
        case ArgOp::Kind::Check: {
          if (op.slot >= src.size() || src[op.slot] < 0) return false;
          ColumnarPred p;
          p.kind = ColumnarPred::Kind::ColEq;
          p.col = op.col;
          p.col2 = static_cast<uint32_t>(src[op.slot]);
          g.preds.push_back(std::move(p));
          break;
        }
      }
    }
    return true;
  };
  cp.groups.resize(tp.steps.size() + 1);
  cp.groups[0].arity = tp.arity;
  cp.groups[0].sels = tp.trigger_sels;
  if (!flatten(tp.trigger_ops, cp.groups[0])) return;
  cp.body_positions.push_back(trigger_body_pos);
  for (size_t j = 0; j < tp.steps.size(); ++j) {
    ColumnarGroup& g = cp.groups[j + 1];
    g.arity = tp.steps[j].arity;
    g.sels = tp.steps[j].sels;
    if (!flatten(tp.steps[j].full_ops, g)) return;
    cp.body_positions.push_back(tp.steps[j].body_pos);
  }
  cp.pure = true;
  // Flat finish: everything the finish evaluates must be expressible
  // straight off the trigger row.
  if (cr.assigns.empty() && cr.sels.size() <= 64 &&
      (cr.sels.empty() ||
       (tp.pushed_mask & ((~uint64_t{0}) >> (64 - cr.sels.size()))) ==
           ((~uint64_t{0}) >> (64 - cr.sels.size())))) {
    bool flat = true;
    for (const SlotExpr& arg : cr.head_args) {
      const SlotExpr::Node* n = single_node(arg);
      ColumnarPlan::HeadCol hc;
      if (n != nullptr && n->kind == ndlog::Expr::Kind::Const) {
        hc.is_const = true;
        hc.cval = n->cval;
      } else if (n != nullptr && n->kind == ndlog::Expr::Kind::Var &&
                 n->slot < src.size() && src[n->slot] >= 0) {
        hc.col = static_cast<uint32_t>(src[n->slot]);
      } else {
        flat = false;
        break;
      }
      cp.head_cols.push_back(std::move(hc));
    }
    cp.flat_finish = flat;
    if (!flat) cp.head_cols.clear();
  }
  tp.columnar = std::move(cp);
}

}  // namespace

CompiledRule compile_rule(const ndlog::Rule& rule, ndlog::Catalog& catalog,
                          IndexSpecs& specs) {
  CompiledRule cr;
  SlotMap sm;
  // Deterministic slot numbering: body variables in order of appearance,
  // then any variables introduced by assignments / selections / the head.
  for (const auto& atom : rule.body) {
    for (const auto& arg : atom.args) {
      std::vector<std::string> vars;
      arg->collect_vars(vars);
      for (const auto& v : vars) sm.of(v);
    }
  }
  for (const auto& asg : rule.assigns) {
    cr.assigns.push_back(CompiledAssign{sm.of(asg.var), compile_expr(*asg.expr, sm)});
  }
  for (const auto& sel : rule.sels) {
    cr.sels.push_back(CompiledSelection{sel.op, compile_expr(*sel.lhs, sm),
                                        compile_expr(*sel.rhs, sm)});
  }
  for (const auto& arg : rule.head.args) {
    cr.head_args.push_back(compile_expr(*arg, sm));
  }
  cr.head_table = catalog.intern(rule.head.table);
  const std::vector<SelInfo> sel_info = analyze_sels(cr);

  cr.triggers.resize(rule.body.size());
  for (size_t t = 0; t < rule.body.size(); ++t) {
    TriggerPlan& tp = cr.triggers[t];
    tp.arity = static_cast<uint32_t>(rule.body[t].args.size());
    std::vector<uint8_t> bound;
    if (!trigger_ops(rule.body[t], sm, bound, tp.trigger_ops)) {
      tp.dead = true;
      continue;
    }
    // Pushdown: attach each pushable selection to the earliest point its
    // slots are all bound — the trigger itself, or the step that binds
    // the last of them (checked again after every step below).
    auto push_ready_sels = [&](std::vector<uint32_t>& into) {
      for (uint32_t i = 0; i < sel_info.size(); ++i) {
        if (!sel_info[i].pushable || (tp.pushed_mask >> i) & 1) continue;
        if (!all_bound(sel_info[i].slots, bound)) continue;
        tp.pushed_mask |= uint64_t{1} << i;
        into.push_back(i);
      }
    };
    push_ready_sels(tp.trigger_sels);
    fold_const_trigger_sels(cr, tp);
    std::vector<size_t> remaining;
    for (size_t b = 0; b < rule.body.size(); ++b) {
      if (b != t) remaining.push_back(b);
    }
    while (!remaining.empty() && !tp.dead) {
      // Greedy join order: event self-joins first (a single candidate),
      // then the atom with the most bound columns.
      size_t pick = 0;
      int best = -2;
      for (size_t i = 0; i < remaining.size(); ++i) {
        const ndlog::Atom& a = rule.body[remaining[i]];
        const TableId tid = catalog.intern(a.table);
        int score;
        if (catalog.is_event(tid)) {
          // Transient tables only match the triggering tuple itself.
          score = a.table == rule.body[t].table
                      ? static_cast<int>(a.args.size()) + 1
                      : -1;
        } else {
          score = bound_cols(a, sm, bound);
        }
        if (score > best) {
          best = score;
          pick = i;
        }
      }
      if (best < 0) {
        // Some atom can never be satisfied from this trigger.
        tp.dead = true;
        break;
      }
      const size_t body_pos = remaining[pick];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
      const ndlog::Atom& atom = rule.body[body_pos];
      const TableId tid = catalog.intern(atom.table);
      AtomStep st;
      if (catalog.is_event(tid)) {
        st.table = tid;
        st.body_pos = static_cast<uint32_t>(body_pos);
        st.arity = static_cast<uint32_t>(atom.args.size());
        st.access = AtomStep::Access::TriggerSelf;
        if (!trigger_ops(atom, sm, bound, st.full_ops)) {
          tp.dead = true;
          break;
        }
        st.residual_ops = st.full_ops;
      } else if (!make_step(atom, static_cast<uint32_t>(body_pos), sm, bound,
                            catalog, specs, st)) {
        tp.dead = true;
        break;
      }
      push_ready_sels(st.sels);
      tp.steps.push_back(std::move(st));
    }
    build_columnar_plan(cr, tp, static_cast<uint32_t>(t));
  }
  cr.nslots = sm.next;
  return cr;
}

}  // namespace mp::eval
