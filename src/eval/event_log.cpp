#include "eval/event_log.h"

#include <cstddef>
#include <string_view>

namespace mp::eval {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Insert: return "INSERT";
    case EventKind::Delete: return "DELETE";
    case EventKind::Derive: return "DERIVE";
    case EventKind::Underive: return "UNDERIVE";
    case EventKind::Appear: return "APPEAR";
    case EventKind::Disappear: return "DISAPPEAR";
    case EventKind::Send: return "SEND";
    case EventKind::Receive: return "RECEIVE";
  }
  return "?";
}

std::string Event::to_string() const {
  std::string out = mp::eval::to_string(kind);
  out += "(t=" + std::to_string(time) + ", @" + node.to_string() + ", " +
         tuple.to_string();
  if (!rule.empty()) out += ", rule=" + rule;
  out += ")";
  return out;
}

EventId EventLog::append(EventKind kind, Value node, Tuple tuple, TagMask tags,
                         std::vector<EventId> causes, std::string rule) {
  Event e;
  e.id = size();
  e.kind = kind;
  e.time = tick();
  e.node = std::move(node);
  e.tuple = std::move(tuple);
  e.rule = std::move(rule);
  e.causes = std::move(causes);
  e.tags = tags;
  events_.push_back(std::move(e));
  return events_.back().id;
}

size_t EventLog::add_derivation(DerivRecord rec) {
  const size_t idx = derivations_.size();
  head_index_[rec.head].push_back(idx);
  for (const Tuple& b : rec.body) body_index_[b].push_back(idx);
  derivations_.push_back(std::move(rec));
  return idx;
}

std::vector<size_t> EventLog::derivations_of(const Tuple& t) const {
  std::vector<size_t> out;
  for_each_derivation_of(t, [&](size_t idx) {
    out.push_back(idx);
    return true;
  });
  return out;
}

std::vector<size_t> EventLog::derivations_using(const Tuple& t) const {
  std::vector<size_t> out;
  for_each_derivation_using(t, [&](size_t idx) {
    out.push_back(idx);
    return true;
  });
  return out;
}

void EventLog::for_each_derivation_of(
    const Tuple& t, const std::function<bool(size_t)>& fn) const {
  auto it = head_index_.find(t);
  if (it == head_index_.end()) return;
  for (size_t idx : it->second) {
    if (derivations_[idx].live && !fn(idx)) return;
  }
}

void EventLog::for_each_derivation_using(
    const Tuple& t, const std::function<bool(size_t)>& fn) const {
  auto it = body_index_.find(t);
  if (it == body_index_.end()) return;
  for (size_t idx : it->second) {
    if (derivations_[idx].live && !fn(idx)) return;
  }
}

bool EventLog::has_derivation_of(const Tuple& t) const {
  bool any = false;
  for_each_derivation_of(t, [&](size_t) {
    any = true;
    return false;
  });
  return any;
}

// --- serialization ------------------------------------------------------

namespace {

constexpr size_t kHeaderBytes = 32;

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_bytes(std::vector<uint8_t>& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}
void put_value(std::vector<uint8_t>& out, const Value& v) {
  out.push_back(v.is_int() ? 0 : 1);
  if (v.is_int()) {
    put_u64(out, static_cast<uint64_t>(v.as_int()));
  } else {
    put_u16(out, static_cast<uint16_t>(v.as_str().size()));
    put_bytes(out, v.as_str());
  }
}
size_t value_bytes(const Value& v) {
  return v.is_int() ? 1 + 8 : 1 + 2 + v.as_str().size();
}

uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t get_u32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
Value get_value(const uint8_t*& p) {
  const uint8_t tag = *p++;
  if (tag == 0) {
    const uint64_t v = get_u64(p);
    p += 8;
    return Value(static_cast<int64_t>(v));
  }
  const uint16_t len = get_u16(p);
  p += 2;
  Value v = Value::str(std::string_view(reinterpret_cast<const char*>(p), len));
  p += len;
  return v;
}

}  // namespace

size_t EventLog::serialized_bytes(const Event& e) {
  size_t sz = kHeaderBytes + value_bytes(e.node) + e.tuple.table.size() +
              e.rule.size() + 8 * e.causes.size();
  for (const Value& v : e.tuple.row) sz += value_bytes(v);
  return sz;
}

void EventLog::serialize(const Event& e, std::vector<uint8_t>& out) const {
  put_u64(out, e.time);
  put_u64(out, e.tags);
  out.push_back(static_cast<uint8_t>(e.kind));
  out.push_back(0);
  put_u16(out, static_cast<uint16_t>(e.tuple.table.size()));
  put_u16(out, static_cast<uint16_t>(e.rule.size()));
  put_u16(out, static_cast<uint16_t>(e.tuple.row.size()));
  put_u16(out, static_cast<uint16_t>(e.causes.size()));
  put_u16(out, 0);
  put_u32(out, static_cast<uint32_t>(serialized_bytes(e) - kHeaderBytes));
  put_value(out, e.node);
  for (const Value& v : e.tuple.row) put_value(out, v);
  put_bytes(out, e.tuple.table);
  put_bytes(out, e.rule);
  for (EventId c : e.causes) put_u64(out, c);
}

Event EventLog::decode(size_t entry) const {
  const uint8_t* p = ckpt_.data() + ckpt_offsets_[entry];
  Event e;
  e.id = entry;
  e.time = get_u64(p);
  e.tags = get_u64(p + 8);
  e.kind = static_cast<EventKind>(p[16]);
  const uint16_t table_len = get_u16(p + 18);
  const uint16_t rule_len = get_u16(p + 20);
  const uint16_t nvals = get_u16(p + 22);
  const uint16_t ncauses = get_u16(p + 24);
  p += kHeaderBytes;
  e.node = get_value(p);
  e.tuple.row.reserve(nvals);
  for (uint16_t i = 0; i < nvals; ++i) e.tuple.row.push_back(get_value(p));
  e.tuple.table.assign(reinterpret_cast<const char*>(p), table_len);
  p += table_len;
  e.rule.assign(reinterpret_cast<const char*>(p), rule_len);
  p += rule_len;
  e.causes.reserve(ncauses);
  for (uint16_t i = 0; i < ncauses; ++i) {
    e.causes.push_back(get_u64(p));
    p += 8;
  }
  return e;
}

namespace {

// Every length the 32-byte header stores is a u16; an event exceeding one
// (nothing the runtime produces) must stay live, not decode garbled.
bool fits_checkpoint_format(const Event& e) {
  constexpr size_t kMax = 0xffff;
  if (e.tuple.table.size() > kMax || e.rule.size() > kMax ||
      e.tuple.row.size() > kMax || e.causes.size() > kMax) {
    return false;
  }
  if (e.node.is_str() && e.node.as_str().size() > kMax) return false;
  for (const Value& v : e.tuple.row) {
    if (v.is_str() && v.as_str().size() > kMax) return false;
  }
  return true;
}

}  // namespace

size_t EventLog::compact(size_t keep_live) {
  if (events_.size() <= keep_live) return 0;
  size_t n = events_.size() - keep_live;
  for (size_t i = 0; i < n; ++i) {
    if (!fits_checkpoint_format(events_[i])) {
      n = i;  // stop at the first non-conforming event
      break;
    }
  }
  if (n == 0) return 0;
  ckpt_offsets_.reserve(ckpt_offsets_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    ckpt_offsets_.push_back(ckpt_.size());
    serialize(events_[i], ckpt_);
  }
  events_.erase(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(n));
  base_id_ += n;
  return n;
}

size_t EventLog::byte_estimate() const {
  size_t total = ckpt_.size();
  for (const Event& e : events_) total += serialized_bytes(e);
  return total;
}

Time EventLog::event_time(EventId id) const {
  if (id >= base_id_) return events_[id - base_id_].time;
  // `time` is the first header field of the serialized entry.
  return get_u64(ckpt_.data() + ckpt_offsets_[id]);
}

void EventLog::for_each_event(const std::function<void(const Event&)>& fn) const {
  for (size_t i = 0; i < ckpt_offsets_.size(); ++i) fn(decode(i));
  for (const Event& e : events_) fn(e);
}

void EventLog::clear() {
  events_.clear();
  derivations_.clear();
  head_index_.clear();
  body_index_.clear();
  ckpt_.clear();
  ckpt_offsets_.clear();
  base_id_ = 0;
  time_ = 0;
}

}  // namespace mp::eval
