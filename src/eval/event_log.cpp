#include "eval/event_log.h"

namespace mp::eval {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Insert: return "INSERT";
    case EventKind::Delete: return "DELETE";
    case EventKind::Derive: return "DERIVE";
    case EventKind::Underive: return "UNDERIVE";
    case EventKind::Appear: return "APPEAR";
    case EventKind::Disappear: return "DISAPPEAR";
    case EventKind::Send: return "SEND";
    case EventKind::Receive: return "RECEIVE";
  }
  return "?";
}

std::string Event::to_string() const {
  std::string out = mp::eval::to_string(kind);
  out += "(t=" + std::to_string(time) + ", @" + node.to_string() + ", " +
         tuple.to_string();
  if (!rule.empty()) out += ", rule=" + rule;
  out += ")";
  return out;
}

EventId EventLog::append(EventKind kind, Value node, Tuple tuple, TagMask tags,
                         std::vector<EventId> causes, std::string rule) {
  Event e;
  e.id = events_.size();
  e.kind = kind;
  e.time = tick();
  e.node = std::move(node);
  e.tuple = std::move(tuple);
  e.rule = std::move(rule);
  e.causes = std::move(causes);
  e.tags = tags;

  if (kind == EventKind::Appear) {
    if (!history_seen_.count(e.tuple)) {
      history_seen_.emplace(e.tuple, 1);
      history_[e.tuple.table].push_back(e.tuple);
      ++history_total_;
    }
  }
  events_.push_back(std::move(e));
  return events_.back().id;
}

size_t EventLog::add_derivation(DerivRecord rec) {
  const size_t idx = derivations_.size();
  head_index_[rec.head].push_back(idx);
  for (const Tuple& b : rec.body) body_index_[b].push_back(idx);
  derivations_.push_back(std::move(rec));
  return idx;
}

std::vector<size_t> EventLog::derivations_of(const Tuple& t) const {
  std::vector<size_t> out;
  auto it = head_index_.find(t);
  if (it == head_index_.end()) return out;
  for (size_t idx : it->second) {
    if (derivations_[idx].live) out.push_back(idx);
  }
  return out;
}

std::vector<size_t> EventLog::derivations_using(const Tuple& t) const {
  std::vector<size_t> out;
  auto it = body_index_.find(t);
  if (it == body_index_.end()) return out;
  for (size_t idx : it->second) {
    if (derivations_[idx].live) out.push_back(idx);
  }
  return out;
}

const std::vector<Tuple>& EventLog::history(const std::string& table) const {
  static const std::vector<Tuple> kEmpty;
  auto it = history_.find(table);
  return it == history_.end() ? kEmpty : it->second;
}

size_t EventLog::byte_estimate() const {
  // Fixed 32-byte header (id, kind, time, tag mask) + values. Strings count
  // their length; ints count 8 bytes. The paper logs ~120 B per packet.
  size_t total = 0;
  for (const Event& e : events_) {
    size_t sz = 32 + e.tuple.table.size() + e.rule.size();
    for (const Value& v : e.tuple.row) {
      sz += v.is_int() ? 8 : v.as_str().size() + 8;
    }
    total += sz;
  }
  return total;
}

void EventLog::clear() {
  events_.clear();
  derivations_.clear();
  head_index_.clear();
  body_index_.clear();
  history_.clear();
  history_seen_.clear();
  history_total_ = 0;
  time_ = 0;
}

}  // namespace mp::eval
