#include "eval/event_log.h"

#include <cstddef>
#include <string_view>

#include "eval/ckpt_format.h"

namespace mp::eval {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Insert: return "INSERT";
    case EventKind::Delete: return "DELETE";
    case EventKind::Derive: return "DERIVE";
    case EventKind::Underive: return "UNDERIVE";
    case EventKind::Appear: return "APPEAR";
    case EventKind::Disappear: return "DISAPPEAR";
    case EventKind::Send: return "SEND";
    case EventKind::Receive: return "RECEIVE";
  }
  return "?";
}

std::string EventLog::to_string(const Event& e) const {
  std::string out = mp::eval::to_string(e.kind);
  out += "(t=" + std::to_string(e.id + 1) + ", @" +
         node_value(e.node).to_string() + ", " + tuple_of(e).to_string();
  if (e.rule != kNoRule) out += ", rule=" + rule_name(e.rule);
  out += ")";
  return out;
}

RuleId EventLog::intern_rule(const std::string& name) {
  // Event::rule is 16 bits; kNoRule (0xffff) is the sentinel above the
  // usable id space. No program comes near 65534 rules.
  assert(rule_names_.size() < kNoRule);
  auto [it, inserted] =
      rule_ids_.try_emplace(name, static_cast<RuleId>(rule_names_.size()));
  if (inserted) rule_names_.push_back(name);
  return it->second;
}

TupleRef EventLog::find_ref(const Tuple& t) const {
  const TableId tid = names().id_of(t.table);
  if (tid == ndlog::Catalog::kNoTable) return kNoTupleRef;
  return pool_.find(tid, t.row);
}

EventId EventLog::append(EventKind kind, const Value& node, const Tuple& tuple,
                         TagMask tags, const std::vector<EventId>& causes,
                         const std::string& rule) {
  return append(kind, node, intern_tuple(tuple), tags,
                std::span<const EventId>(causes),
                rule.empty() ? kNoRule : intern_rule(rule));
}

std::span<const EventId> EventLog::causes_of(const Event& e) const {
  if (e.ncauses == 0) return {};
  if (e.causes_begin & kDecodedCauseTag) {
    // Checkpoint-decoded event: causes live in the producing cursor's (or
    // the spilled-prefix replay's) own buffer, published through the
    // cursor-buffer registry slot the low bits name.
    const EventId* buf = cursor_bufs_[e.causes_begin & ~kDecodedCauseTag];
    return {buf, e.ncauses};
  }
  if (e.gen != gen_) {
    // A copy of a live event taken before a cause-arena rebase: its
    // offset no longer addresses its causes. The causes are reachable
    // through the checkpoint (for_each_event) instead.
    return {};
  }
  return {cause_arena_.data() + e.causes_begin, e.ncauses};
}

size_t EventLog::add_derivation(RuleId rule, TupleRef head,
                                std::span<const TupleRef> body,
                                EventId derive_event, bool live) {
  const size_t idx = derivations_.size();
  DerivRecord rec;
  rec.derive_event = derive_event;
  rec.rule = rule;
  rec.head = head;
  rec.body_begin = body_arena_.size();
  rec.nbody = static_cast<uint16_t>(body.size());
  rec.live = live;
  // kNoTupleRef positions (provenance-off merges) carry no provenance and
  // are never looked up; indexing them would blow the dense arrays up to
  // the sentinel.
  // Chains link newest-first: the record being pushed takes the old chain
  // head as its predecessor and becomes the new head. Both stores hit hot
  // memory (this record, the per-ref head slot); the old forward-linked
  // layout wrote a next-pointer into the cold previous tail record — a
  // guaranteed cache miss per derivation on the recording hot path.
  constexpr uint32_t kNone = ~uint32_t{0};
  const uint32_t idx32 = static_cast<uint32_t>(idx);
  if (head != kNoTupleRef) {
    if (head >= head_index_.size()) head_index_.resize(head + 1, kNone);
    rec.prev_same_head = head_index_[head];
    head_index_[head] = idx32;
  }
  for (TupleRef b : body) {
    const uint32_t pos = static_cast<uint32_t>(body_links_.size());
    if (b == kNoTupleRef) {
      body_links_.push_back(BodyLink{idx32, kNone});
      continue;
    }
    if (b >= body_index_.size()) body_index_.resize(b + 1, kNone);
    body_links_.push_back(BodyLink{idx32, body_index_[b]});
    body_index_[b] = pos;
  }
  body_arena_.insert(body_arena_.end(), body.begin(), body.end());
  derivations_.push_back(rec);
  return idx;
}

std::vector<size_t> EventLog::derivations_of(TupleRef t) const {
  std::vector<size_t> out;
  for_each_derivation_of(t, [&](size_t idx) {
    out.push_back(idx);
    return true;
  });
  return out;
}

std::vector<size_t> EventLog::derivations_using(TupleRef t) const {
  std::vector<size_t> out;
  for_each_derivation_using(t, [&](size_t idx) {
    out.push_back(idx);
    return true;
  });
  return out;
}

bool EventLog::has_derivation_of(TupleRef t) const {
  bool any = false;
  for_each_derivation_of(t, [&](size_t) {
    any = true;
    return false;
  });
  return any;
}

// --- serialization ------------------------------------------------------
// Byte layout lives in eval/ckpt_format.h, shared with the standalone
// segment reader (src/storage) so the two decoders cannot drift.

namespace {

// True exactly once per id: grows `seen` on demand and records the id.
// Shared by compact() (write the name record) and byte_estimate()
// (account its size) so the string-table first-reference rule lives in
// one place.
bool first_ref(std::vector<uint8_t>& seen, uint32_t id) {
  if (id >= seen.size()) seen.resize(id + 1, 0);
  if (seen[id]) return false;
  seen[id] = 1;
  return true;
}

}  // namespace

size_t EventLog::serialized_bytes(const Event& e) const {
  size_t sz = ckpt::kHeaderBytes + 8 * e.ncauses;
  for (const Value& v : pool_.row(e.tuple)) sz += ckpt::value_bytes(v);
  return sz;
}

void EventLog::write_name_record(std::vector<uint8_t>& out, uint8_t kind,
                                 uint16_t id, const std::string& name) {
  out.push_back(kind);
  ckpt::put_u16(out, id);
  ckpt::put_u16(out, static_cast<uint16_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
}

void EventLog::write_node_record(std::vector<uint8_t>& out, uint16_t id,
                                 const Value& node) {
  out.push_back(ckpt::kNameNode);
  ckpt::put_u16(out, id);
  ckpt::put_value(out, node);
}

void EventLog::serialize(const Event& e, std::vector<uint8_t>& out) const {
  const TableId tid = pool_.table(e.tuple);
  const Row& row = pool_.row(e.tuple);
  // v2 layout: no time field — both decoders derive the id (and so the
  // time, id + 1) from the entry's position; see eval/ckpt_format.h.
  ckpt::put_u64(out, e.tags);
  out.push_back(static_cast<uint8_t>(e.kind));
  out.push_back(e.ncauses);
  ckpt::put_u16(out, static_cast<uint16_t>(tid));
  ckpt::put_u16(out, e.rule);  // u16 id space; kNoRule == kNoRuleSerialized
  ckpt::put_u16(out, static_cast<uint16_t>(row.size()));
  ckpt::put_u16(out, static_cast<uint16_t>(e.node));
  ckpt::put_u32(out,
                static_cast<uint32_t>(serialized_bytes(e) - ckpt::kHeaderBytes));
  for (const Value& v : row) ckpt::put_value(out, v);
  for (EventId c : causes_of(e)) ckpt::put_u64(out, c);
}

Event EventLog::decode(size_t entry, DecodeCursor& cur) const {
  const uint8_t* p = ckpt_.data() + ckpt_offsets_[entry];
  Event e;
  // The RAM checkpoint covers the ids immediately below base_id_ (the
  // whole compacted range when the log never spilled or loaded).
  e.id = base_id_ - ckpt_offsets_.size() + entry;
  e.tags = ckpt::get_u64(p);
  e.kind = static_cast<EventKind>(p[ckpt::kKindOffset]);
  const uint8_t ncauses = p[ckpt::kNCausesOffset];
  const uint16_t table_id = ckpt::get_u16(p + ckpt::kTableIdOffset);
  const uint16_t rule_id = ckpt::get_u16(p + ckpt::kRuleIdOffset);
  const uint16_t nvals = ckpt::get_u16(p + ckpt::kNValsOffset);
  // Entry ids are live ids here: compact() wrote this log's own ids, and
  // load_checkpoint() patched a foreign checkpoint's ids to live ones
  // through its string table before installing the bytes. The interners
  // and the pool are never truncated, so every lookup below hits.
  e.node = ckpt::get_u16(p + ckpt::kNodeIdOffset);
  p += ckpt::kHeaderBytes;
  Row row;
  row.reserve(nvals);
  for (uint16_t i = 0; i < nvals; ++i) row.push_back(ckpt::get_value(p));
  e.tuple = pool_.find(table_id, row);
  assert(e.tuple != kNoTupleRef);
  e.rule = rule_id;  // u16 id space; kNoRuleSerialized == kNoRule
  e.ncauses = ncauses;
  cur.causes_.clear();
  cur.causes_.reserve(ncauses);
  for (uint16_t i = 0; i < ncauses; ++i) {
    cur.causes_.push_back(ckpt::get_u64(p));
    p += 8;
  }
  // Publish the cursor's buffer through its registry slot (acquired on
  // first decode) so causes_of() spans stay valid across decodes through
  // other cursors.
  if (cur.owner_ == nullptr) {
    cur.owner_ = this;
    cur.slot_ = acquire_cursor_slot();
  }
  assert(cur.owner_ == this && "cursor reused across logs");
  cursor_bufs_[cur.slot_] = cur.causes_.data();
  e.causes_begin = kDecodedCauseTag | cur.slot_;
  return e;
}

bool EventLog::fits_checkpoint_format(const Event& e) const {
  // Every length/id the entry header stores is a u16 (ncauses a u8, which
  // Event::ncauses already is); an event exceeding one (nothing the
  // runtime produces) must stay live, not decode garbled.
  constexpr size_t kMax = 0xffff;
  const Row& row = pool_.row(e.tuple);
  if (pool_.table(e.tuple) >= kMax || row.size() > kMax) {
    return false;
  }
  if (e.rule != kNoRule && e.rule >= ckpt::kNoRuleSerialized) return false;
  if (e.node >= kMax) return false;
  const Value& node = node_value(e.node);
  if (node.is_str() && node.as_str().size() > kMax) return false;
  for (const Value& v : row) {
    if (v.is_str() && v.as_str().size() > kMax) return false;
  }
  return true;
}

size_t EventLog::compact(size_t keep_live) {
  if (events_.size() <= keep_live) return 0;
  size_t n = events_.size() - keep_live;
  for (size_t i = 0; i < n; ++i) {
    if (!fits_checkpoint_format(events_[i])) {
      n = i;  // stop at the first non-conforming event
      break;
    }
  }
  if (n == 0) return 0;
  // Names are written to the string-table section once, on first reference
  // by any entry of the dedup unit (whole log for the RAM checkpoint, one
  // section when spilling — each spilled section must decode standalone so
  // the sink may rotate segment files between any two sections).
  auto write_names_for = [&](const Event& e, std::vector<uint8_t>& out) {
    const TableId tid = pool_.table(e.tuple);
    if (first_ref(table_name_written_, tid)) {
      write_name_record(out, ckpt::kNameTable, static_cast<uint16_t>(tid),
                        names().name_of(tid));
    }
    if (e.rule != kNoRule && first_ref(rule_name_written_, e.rule)) {
      write_name_record(out, ckpt::kNameRule, static_cast<uint16_t>(e.rule),
                        rule_names_[e.rule]);
    }
    if (first_ref(node_written_, e.node)) {
      write_node_record(out, static_cast<uint16_t>(e.node),
                        node_value(e.node));
    }
  };
  if (spill_ != nullptr && !spill_->failed()) {
    table_name_written_.clear();
    rule_name_written_.clear();
    node_written_.clear();
    std::vector<uint8_t> entries;
    std::vector<uint8_t> names;
    std::vector<size_t> offsets;  // per-entry starts, for the RAM fallback
    offsets.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Event& e = events_[i];
      write_names_for(e, names);
      offsets.push_back(entries.size());
      serialize(e, entries);
    }
    bool accepted = false;
    try {
      accepted = spill_->append_section(base_id_, n, entries, names);
    } catch (...) {
      // A fail-stop sink threw from its post-acceptance flush. Acceptance
      // means the bytes entered the sink (they count toward its events()
      // and replay from its retained buffer), so reconcile — drop the
      // now-sink-held prefix — before letting the error surface; a
      // pre-acceptance throw leaves the events live for a later compact.
      if (spill_->events() >= base_id_ + n) drop_live_prefix(n);
      throw;
    }
    if (!accepted) {
      // Sink degraded (sticky failed(), e.g. ENOSPC after retries): fall
      // back to the in-RAM checkpoint for this and every later section.
      // The section's names blob is self-contained (dedup was reset
      // above), so the RAM string table stays complete from here on.
      const size_t base = ckpt_.size();
      ckpt_offsets_.reserve(ckpt_offsets_.size() + n);
      for (size_t off : offsets) ckpt_offsets_.push_back(base + off);
      ckpt_.insert(ckpt_.end(), entries.begin(), entries.end());
      ckpt_names_.insert(ckpt_names_.end(), names.begin(), names.end());
    }
  } else {
    ckpt_offsets_.reserve(ckpt_offsets_.size() + n);
    for (size_t i = 0; i < n; ++i) {
      const Event& e = events_[i];
      write_names_for(e, ckpt_names_);
      ckpt_offsets_.push_back(ckpt_.size());
      serialize(e, ckpt_);
    }
  }
  drop_live_prefix(n);
  return n;
}

void EventLog::drop_live_prefix(size_t n) {
  events_.erase(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(n));
  base_id_ += n;
  // Rebase: erase the cause-arena prefix the erased events owned and shift
  // the live events' offsets back down to 0 (offsets are u32 and
  // arena-relative, so the arena never creeps toward the 2^31 tag bit).
  // The generation tag bumps so Event copies taken before the rebase read
  // as stale — causes_of() returns empty — instead of aliasing whatever
  // now lives at their old offset.
  const uint32_t cut = events_.empty()
                           ? static_cast<uint32_t>(cause_arena_.size())
                           : events_.front().causes_begin;
  if (cut == 0) return;
  cause_arena_.erase(cause_arena_.begin(),
                     cause_arena_.begin() + static_cast<ptrdiff_t>(cut));
  gen_ = (gen_ + 1) & 0xf;
  for (Event& e : events_) {
    e.causes_begin -= cut;
    e.gen = gen_ & 0xf;
  }
}

size_t EventLog::byte_estimate() const {
  size_t total = spilled_bytes() + ckpt_.size() + ckpt_names_.size();
  // Name records compacting the live suffix would add. With a sink
  // attached the next compact starts a fresh self-contained section, so
  // every referenced name counts; otherwise only names not yet in the RAM
  // checkpoint's string table do.
  std::vector<uint8_t> tseen;
  std::vector<uint8_t> rseen;
  std::vector<uint8_t> nseen;
  if (spill_ == nullptr) {
    tseen = table_name_written_;
    rseen = rule_name_written_;
    nseen = node_written_;
  }
  for (const Event& e : events_) {
    total += serialized_bytes(e);
    const TableId tid = pool_.table(e.tuple);
    if (first_ref(tseen, tid)) {
      total += ckpt::name_record_bytes(names().name_of(tid));
    }
    if (e.rule != kNoRule && first_ref(rseen, e.rule)) {
      total += ckpt::name_record_bytes(rule_names_[e.rule]);
    }
    if (first_ref(nseen, e.node)) {
      total += 1 + 2 + ckpt::value_bytes(node_value(e.node));
    }
  }
  return total;
}

void EventLog::replay_spilled(
    const std::function<void(const Event&)>& fn) const {
  // A self-spilled prefix references only names/nodes/rows this log
  // interned before compacting them, and no interner is ever truncated —
  // so reconstruction is pure const lookup, never an intern. One-entry
  // caches absorb the long same-table / same-node runs typical of
  // homogeneous streams without per-event string allocation.
  std::string last_table;
  TableId last_tid = ndlog::Catalog::kNoTable;
  std::string last_rule;
  RuleId last_rule_id = kNoRule;
  Value last_node;
  NodeRef last_node_ref = kNoNode;
  const uint32_t slot = acquire_cursor_slot();
  spill_->replay_raw([&](const RawEvent& re) {
    if (last_tid == ndlog::Catalog::kNoTable || last_table != re.table) {
      last_table.assign(re.table);
      last_tid = names().id_of(last_table);
      assert(last_tid != ndlog::Catalog::kNoTable);
    }
    Event e;
    e.id = re.id;
    e.tags = re.tags;
    e.kind = re.kind;
    e.tuple = pool_.find(last_tid, *re.row);
    assert(e.tuple != kNoTupleRef);
    if (re.rule.empty()) {
      e.rule = kNoRule;
    } else {
      if (last_rule_id == kNoRule || last_rule != re.rule) {
        last_rule.assign(re.rule);
        const auto it = rule_ids_.find(last_rule);
        assert(it != rule_ids_.end());
        last_rule_id = it->second;
      }
      e.rule = last_rule_id;
    }
    if (last_node_ref == kNoNode || !(last_node == *re.node)) {
      last_node = *re.node;
      const auto it = node_ids_.find(last_node);
      assert(it != node_ids_.end());
      last_node_ref = it->second;
    }
    e.node = last_node_ref;
    e.ncauses = static_cast<uint8_t>(re.causes.size());
    // The reader's cause buffer is stable until its next decode, which
    // happens only after fn returns; publish it through a registry slot
    // held for the whole replay.
    cursor_bufs_[slot] = re.causes.data();
    e.causes_begin = kDecodedCauseTag | slot;
    fn(e);
    return true;
  });
  release_cursor_slot(slot);
}

void EventLog::for_each_event(
    const std::function<void(const Event&)>& fn) const {
  if (spill_ != nullptr) replay_spilled(fn);
  DecodeCursor cur;
  for (size_t i = 0; i < ckpt_offsets_.size(); ++i) fn(decode(i, cur));
  for (const Event& e : events_) fn(e);
}

void EventLog::load_checkpoint(std::span<const uint8_t> entries,
                               std::span<const uint8_t> names) {
  assert(size() == 0 && ckpt_.empty() && spill_ == nullptr &&
         "load_checkpoint requires an empty log");
  // Foreign 16-bit id -> this log's id, built while re-interning the
  // checkpoint's own string-table section. Decode never consults the
  // writer's id space: a checkpoint from a differently-interned engine
  // lands on whatever ids THIS log assigns.
  std::vector<uint32_t> table_map;
  std::vector<uint32_t> rule_map;
  std::vector<uint32_t> node_map;
  auto map_set = [](std::vector<uint32_t>& m, uint16_t from, uint32_t to) {
    if (from >= m.size()) m.resize(from + 1, ~uint32_t{0});
    m[from] = to;
  };
  ckpt_names_.assign(names.begin(), names.end());
  for (size_t pos = 0; pos < ckpt_names_.size();) {
    uint8_t* rec = ckpt_names_.data() + pos;
    const uint8_t kind = rec[0];
    const uint16_t foreign = ckpt::get_u16(rec + 1);
    if (kind == ckpt::kNameNode) {
      const uint8_t* vp = rec + 3;
      const Value node = ckpt::get_value(vp);
      const NodeRef live = intern_node(node);
      map_set(node_map, foreign, live);
      first_ref(node_written_, live);
      ckpt::set_u16(rec + 1, static_cast<uint16_t>(live));
      pos += static_cast<size_t>(vp - rec);
    } else {
      const uint16_t len = ckpt::get_u16(rec + 3);
      const std::string name(reinterpret_cast<const char*>(rec + 5), len);
      uint32_t live;
      if (kind == ckpt::kNameTable) {
        live = names_->intern(name);
        map_set(table_map, foreign, live);
        first_ref(table_name_written_, live);
      } else {
        live = intern_rule(name);
        map_set(rule_map, foreign, live);
        first_ref(rule_name_written_, live);
      }
      assert(live < 0xffff);
      ckpt::set_u16(rec + 1, static_cast<uint16_t>(live));
      pos += 1 + 2 + 2 + len;
    }
  }
  // Install the entry bytes, patching each header's u16 ids in place and
  // interning every row so decode()'s pool lookup hits.
  ckpt_.assign(entries.begin(), entries.end());
  for (size_t pos = 0; pos < ckpt_.size();) {
    uint8_t* h = ckpt_.data() + pos;
    const uint32_t payload_len = ckpt::get_u32(h + ckpt::kPayloadLenOffset);
    const uint16_t foreign_tid = ckpt::get_u16(h + ckpt::kTableIdOffset);
    assert(foreign_tid < table_map.size());
    const uint32_t live_tid = table_map[foreign_tid];
    ckpt::set_u16(h + ckpt::kTableIdOffset, static_cast<uint16_t>(live_tid));
    const uint16_t foreign_rule = ckpt::get_u16(h + ckpt::kRuleIdOffset);
    if (foreign_rule != ckpt::kNoRuleSerialized) {
      assert(foreign_rule < rule_map.size());
      ckpt::set_u16(h + ckpt::kRuleIdOffset,
                    static_cast<uint16_t>(rule_map[foreign_rule]));
    }
    const uint16_t foreign_node = ckpt::get_u16(h + ckpt::kNodeIdOffset);
    assert(foreign_node < node_map.size());
    ckpt::set_u16(h + ckpt::kNodeIdOffset,
                  static_cast<uint16_t>(node_map[foreign_node]));
    const uint16_t nvals = ckpt::get_u16(h + ckpt::kNValsOffset);
    const uint8_t* vp = h + ckpt::kHeaderBytes;
    Row row;
    row.reserve(nvals);
    for (uint16_t i = 0; i < nvals; ++i) row.push_back(ckpt::get_value(vp));
    pool_.intern(static_cast<TableId>(live_tid), row);
    ckpt_offsets_.push_back(pos);
    pos += ckpt::kHeaderBytes + payload_len;
  }
  base_id_ = ckpt_offsets_.size();
}

void EventLog::set_spill(CheckpointSink* sink) {
  if (sink == spill_) return;
  spill_ = sink;
  // Dedup unit changes (whole-log for RAM, per-section for a sink): reset
  // so the next compact re-emits every name it references.
  table_name_written_.clear();
  rule_name_written_.clear();
  node_written_.clear();
  if (sink == nullptr) return;
  if (!ckpt_offsets_.empty()) {
    // Drain the existing RAM checkpoint into the sink as one section.
    assert(sink->events() == 0 && "cannot merge a RAM checkpoint into a "
                                  "sink that already holds events");
    // A sink that rejects the drain (already degraded) keeps the RAM
    // checkpoint in place — clearing it would lose the events.
    if (spill_->append_section(base_id_ - ckpt_offsets_.size(),
                               ckpt_offsets_.size(), ckpt_, ckpt_names_)) {
      ckpt_.clear();
      ckpt_offsets_.clear();
      ckpt_names_.clear();
    }
  }
  // Recovery continuation: the caller recovered `sink` from disk, replayed
  // it into this engine (re-interning every tuple), and is now attaching
  // it. Events the sink already holds durably are dropped from the live
  // suffix here — the in-RAM equivalent of compacting them, minus the
  // serialization that already happened in a previous life.
  if (sink->events() > base_id_) {
    const size_t durable = sink->events() - base_id_;
    assert(durable <= events_.size() &&
           "sink holds events this log never saw");
    drop_live_prefix(durable <= events_.size() ? durable : events_.size());
  }
}

void EventLog::clear() {
  events_.clear();
  cause_arena_.clear();
  gen_ = 0;
  derivations_.clear();
  body_arena_.clear();
  head_index_.clear();
  body_index_.clear();
  body_links_.clear();
  ckpt_.clear();
  ckpt_offsets_.clear();
  ckpt_names_.clear();
  table_name_written_.clear();
  rule_name_written_.clear();
  node_written_.clear();
  spill_ = nullptr;  // caller owns the sink (and its files)
  base_id_ = 0;
}

}  // namespace mp::eval
