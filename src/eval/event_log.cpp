#include "eval/event_log.h"

#include <cstddef>
#include <string_view>

namespace mp::eval {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Insert: return "INSERT";
    case EventKind::Delete: return "DELETE";
    case EventKind::Derive: return "DERIVE";
    case EventKind::Underive: return "UNDERIVE";
    case EventKind::Appear: return "APPEAR";
    case EventKind::Disappear: return "DISAPPEAR";
    case EventKind::Send: return "SEND";
    case EventKind::Receive: return "RECEIVE";
  }
  return "?";
}

std::string EventLog::to_string(const Event& e) const {
  std::string out = mp::eval::to_string(e.kind);
  out += "(t=" + std::to_string(e.id + 1) + ", @" +
         node_value(e.node).to_string() + ", " + tuple_of(e).to_string();
  if (e.rule != kNoRule) out += ", rule=" + rule_name(e.rule);
  out += ")";
  return out;
}

RuleId EventLog::intern_rule(const std::string& name) {
  auto [it, inserted] =
      rule_ids_.try_emplace(name, static_cast<RuleId>(rule_names_.size()));
  if (inserted) rule_names_.push_back(name);
  return it->second;
}

TupleRef EventLog::find_ref(const Tuple& t) const {
  const TableId tid = names().id_of(t.table);
  if (tid == ndlog::Catalog::kNoTable) return kNoTupleRef;
  return pool_.find(tid, t.row);
}

EventId EventLog::append(EventKind kind, const Value& node, TupleRef tuple,
                         TagMask tags, std::span<const EventId> causes,
                         RuleId rule) {
  // ncauses is 16 bits wide; nothing the runtime produces comes close
  // (causes per event = rule body size or 1), so cap instead of
  // recording a mod-65536 count that would silently drop causal edges.
  assert(causes.size() <= 0xffff);
  if (causes.size() > 0xffff) causes = causes.first(0xffff);
  const EventId id = size();
  // Build the record in registers and push it in one store: emplace_back()
  // followed by field-at-a-time writes costs a zero-init plus scattered
  // stores into freshly grown heap memory on this 40%-of-profile path.
  Event e;
  e.id = id;
  e.kind = kind;
  e.node = intern_node(node);
  e.tuple = tuple;
  e.rule = rule;
  e.causes_begin = cause_base_ + cause_arena_.size();
  e.ncauses = static_cast<uint16_t>(causes.size());
  e.tags = tags;
  events_.push_back(e);
  // `causes` may alias this log's own arena (a span from causes_of(), the
  // natural way to duplicate an event): copy by index so push_back's
  // reallocation cannot invalidate the source mid-copy.
  const EventId* arena_begin = cause_arena_.data();
  if (!causes.empty() && causes.data() >= arena_begin &&
      causes.data() < arena_begin + cause_arena_.size()) {
    const size_t off = static_cast<size_t>(causes.data() - arena_begin);
    const size_t n = causes.size();
    for (size_t i = 0; i < n; ++i) cause_arena_.push_back(cause_arena_[off + i]);
  } else {
    cause_arena_.insert(cause_arena_.end(), causes.begin(), causes.end());
  }
  return id;
}

EventId EventLog::append(EventKind kind, const Value& node, const Tuple& tuple,
                         TagMask tags, const std::vector<EventId>& causes,
                         const std::string& rule) {
  return append(kind, node, intern_tuple(tuple), tags,
                std::span<const EventId>(causes),
                rule.empty() ? kNoRule : intern_rule(rule));
}

std::span<const EventId> EventLog::causes_of(const Event& e) const {
  if (e.ncauses == 0) return {};
  if (e.causes_begin == kDecodedCauses) {
    // Checkpoint-decoded scratch event: causes live in the decode buffer.
    return {decode_causes_.data(), e.ncauses};
  }
  if (e.causes_begin < cause_base_) {
    // A copy of a live event whose arena prefix has since been compacted
    // away: the causes are only reachable through the checkpoint now.
    return {};
  }
  return {cause_arena_.data() + (e.causes_begin - cause_base_), e.ncauses};
}

size_t EventLog::add_derivation(RuleId rule, TupleRef head,
                                std::span<const TupleRef> body,
                                EventId derive_event, bool live) {
  const size_t idx = derivations_.size();
  DerivRecord rec;
  rec.derive_event = derive_event;
  rec.rule = rule;
  rec.head = head;
  rec.body_begin = body_arena_.size();
  rec.nbody = static_cast<uint16_t>(body.size());
  rec.live = live;
  // kNoTupleRef positions (provenance-off merges) carry no provenance and
  // are never looked up; indexing them would blow the dense arrays up to
  // the sentinel.
  constexpr uint32_t kNone = ~uint32_t{0};
  const uint32_t idx32 = static_cast<uint32_t>(idx);
  if (head != kNoTupleRef) {
    if (head >= head_index_.size()) head_index_.resize(head + 1);
    ChainHead& ch = head_index_[head];
    if (ch.first == kNone) {
      ch.first = idx32;
    } else {
      derivations_[ch.last].next_same_head = idx32;
    }
    ch.last = idx32;
  }
  for (TupleRef b : body) {
    const uint32_t pos = static_cast<uint32_t>(body_links_.size());
    body_links_.push_back(BodyLink{idx32, kNone});
    if (b == kNoTupleRef) continue;
    if (b >= body_index_.size()) body_index_.resize(b + 1);
    ChainHead& ch = body_index_[b];
    if (ch.first == kNone) {
      ch.first = pos;
    } else {
      body_links_[ch.last].next = pos;
    }
    ch.last = pos;
  }
  body_arena_.insert(body_arena_.end(), body.begin(), body.end());
  derivations_.push_back(rec);
  return idx;
}

std::vector<size_t> EventLog::derivations_of(TupleRef t) const {
  std::vector<size_t> out;
  for_each_derivation_of(t, [&](size_t idx) {
    out.push_back(idx);
    return true;
  });
  return out;
}

std::vector<size_t> EventLog::derivations_using(TupleRef t) const {
  std::vector<size_t> out;
  for_each_derivation_using(t, [&](size_t idx) {
    out.push_back(idx);
    return true;
  });
  return out;
}

bool EventLog::has_derivation_of(TupleRef t) const {
  bool any = false;
  for_each_derivation_of(t, [&](size_t) {
    any = true;
    return false;
  });
  return any;
}

// --- serialization ------------------------------------------------------

namespace {

constexpr size_t kHeaderBytes = 32;
constexpr uint16_t kNoRuleSerialized = 0xffff;

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_value(std::vector<uint8_t>& out, const Value& v) {
  out.push_back(v.is_int() ? 0 : 1);
  if (v.is_int()) {
    put_u64(out, static_cast<uint64_t>(v.as_int()));
  } else {
    put_u16(out, static_cast<uint16_t>(v.as_str().size()));
    out.insert(out.end(), v.as_str().begin(), v.as_str().end());
  }
}
size_t value_bytes(const Value& v) {
  return v.is_int() ? 1 + 8 : 1 + 2 + v.as_str().size();
}

// True exactly once per id: grows `seen` on demand and records the id.
// Shared by compact() (write the name record) and byte_estimate()
// (account its size) so the string-table first-reference rule lives in
// one place.
bool first_ref(std::vector<uint8_t>& seen, uint32_t id) {
  if (id >= seen.size()) seen.resize(id + 1, 0);
  if (seen[id]) return false;
  seen[id] = 1;
  return true;
}

uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
Value get_value(const uint8_t*& p) {
  const uint8_t tag = *p++;
  if (tag == 0) {
    const uint64_t v = get_u64(p);
    p += 8;
    return Value(static_cast<int64_t>(v));
  }
  const uint16_t len = get_u16(p);
  p += 2;
  Value v = Value::str(std::string_view(reinterpret_cast<const char*>(p), len));
  p += len;
  return v;
}

}  // namespace

size_t EventLog::serialized_bytes(const Event& e) const {
  size_t sz = kHeaderBytes + 8 * e.ncauses;
  for (const Value& v : pool_.row(e.tuple)) sz += value_bytes(v);
  return sz;
}

void EventLog::write_name_record(uint8_t kind, uint16_t id,
                                 const std::string& name) {
  ckpt_names_.push_back(kind);
  put_u16(ckpt_names_, id);
  put_u16(ckpt_names_, static_cast<uint16_t>(name.size()));
  ckpt_names_.insert(ckpt_names_.end(), name.begin(), name.end());
}

void EventLog::write_node_record(uint16_t id, const Value& node) {
  ckpt_names_.push_back(2);
  put_u16(ckpt_names_, id);
  put_value(ckpt_names_, node);
}

void EventLog::serialize(const Event& e, std::vector<uint8_t>& out) const {
  const TableId tid = pool_.table(e.tuple);
  const Row& row = pool_.row(e.tuple);
  put_u64(out, e.id + 1);  // logical time (== id + 1, kept in the format)
  put_u64(out, e.tags);
  out.push_back(static_cast<uint8_t>(e.kind));
  out.push_back(0);
  put_u16(out, static_cast<uint16_t>(tid));
  put_u16(out, e.rule == kNoRule ? kNoRuleSerialized
                                 : static_cast<uint16_t>(e.rule));
  put_u16(out, static_cast<uint16_t>(row.size()));
  put_u16(out, e.ncauses);
  put_u16(out, static_cast<uint16_t>(e.node));
  put_u32(out, static_cast<uint32_t>(serialized_bytes(e) - kHeaderBytes));
  for (const Value& v : row) put_value(out, v);
  for (EventId c : causes_of(e)) put_u64(out, c);
}

Event EventLog::decode(size_t entry) const {
  const uint8_t* p = ckpt_.data() + ckpt_offsets_[entry];
  Event e;
  e.id = entry;
  e.tags = get_u64(p + 8);
  e.kind = static_cast<EventKind>(p[16]);
  const uint16_t table_id = get_u16(p + 18);
  const uint16_t rule_id = get_u16(p + 20);
  const uint16_t nvals = get_u16(p + 22);
  const uint16_t ncauses = get_u16(p + 24);
  // The interner is never truncated, so the 16-bit checkpoint id IS the
  // live NodeRef (compact() refuses ids that do not fit 16 bits).
  e.node = get_u16(p + 26);
  p += kHeaderBytes;
  Row row;
  row.reserve(nvals);
  for (uint16_t i = 0; i < nvals; ++i) row.push_back(get_value(p));
  // The tuple was interned when the event was appended and the pool is
  // never truncated, so the lookup always hits.
  e.tuple = pool_.find(table_id, row);
  assert(e.tuple != kNoTupleRef);
  e.rule = rule_id == kNoRuleSerialized ? kNoRule : rule_id;
  e.ncauses = ncauses;
  e.causes_begin = kDecodedCauses;  // causes_of: read the decode buffer
  decode_causes_.clear();
  decode_causes_.reserve(ncauses);
  for (uint16_t i = 0; i < ncauses; ++i) {
    decode_causes_.push_back(get_u64(p));
    p += 8;
  }
  return e;
}

bool EventLog::fits_checkpoint_format(const Event& e) const {
  // Every length/id the 32-byte header stores is a u16; an event exceeding
  // one (nothing the runtime produces) must stay live, not decode garbled.
  constexpr size_t kMax = 0xffff;
  const Row& row = pool_.row(e.tuple);
  if (pool_.table(e.tuple) >= kMax || row.size() > kMax || e.ncauses > kMax) {
    return false;
  }
  if (e.rule != kNoRule && e.rule >= kNoRuleSerialized) return false;
  if (e.node >= kMax) return false;
  const Value& node = node_value(e.node);
  if (node.is_str() && node.as_str().size() > kMax) return false;
  for (const Value& v : row) {
    if (v.is_str() && v.as_str().size() > kMax) return false;
  }
  return true;
}

size_t EventLog::compact(size_t keep_live) {
  if (events_.size() <= keep_live) return 0;
  size_t n = events_.size() - keep_live;
  for (size_t i = 0; i < n; ++i) {
    if (!fits_checkpoint_format(events_[i])) {
      n = i;  // stop at the first non-conforming event
      break;
    }
  }
  if (n == 0) return 0;
  ckpt_offsets_.reserve(ckpt_offsets_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    const Event& e = events_[i];
    // Names are written to the string-table section once, on first
    // reference by any checkpointed entry.
    const TableId tid = pool_.table(e.tuple);
    if (first_ref(table_name_written_, tid)) {
      write_name_record(0, static_cast<uint16_t>(tid), names().name_of(tid));
    }
    if (e.rule != kNoRule && first_ref(rule_name_written_, e.rule)) {
      write_name_record(1, static_cast<uint16_t>(e.rule), rule_names_[e.rule]);
    }
    if (first_ref(node_written_, e.node)) {
      write_node_record(static_cast<uint16_t>(e.node), node_value(e.node));
    }
    ckpt_offsets_.push_back(ckpt_.size());
    serialize(e, ckpt_);
  }
  events_.erase(events_.begin(), events_.begin() + static_cast<ptrdiff_t>(n));
  base_id_ += n;
  // Drop the cause-arena prefix the erased events owned.
  const uint64_t new_base =
      events_.empty() ? cause_base_ + cause_arena_.size()
                      : events_.front().causes_begin;
  if (new_base > cause_base_) {
    cause_arena_.erase(cause_arena_.begin(),
                       cause_arena_.begin() +
                           static_cast<ptrdiff_t>(new_base - cause_base_));
    cause_base_ = new_base;
  }
  return n;
}

size_t EventLog::byte_estimate() const {
  size_t total = ckpt_.size() + ckpt_names_.size();
  // Name records compacting the live suffix would add (names referenced by
  // live events and not yet in the checkpoint string table).
  std::vector<uint8_t> tseen = table_name_written_;
  std::vector<uint8_t> rseen = rule_name_written_;
  std::vector<uint8_t> nseen = node_written_;
  for (const Event& e : events_) {
    total += serialized_bytes(e);
    const TableId tid = pool_.table(e.tuple);
    if (first_ref(tseen, tid)) {
      total += name_record_bytes(names().name_of(tid));
    }
    if (e.rule != kNoRule && first_ref(rseen, e.rule)) {
      total += name_record_bytes(rule_names_[e.rule]);
    }
    if (first_ref(nseen, e.node)) {
      total += 1 + 2 + value_bytes(node_value(e.node));
    }
  }
  return total;
}

void EventLog::for_each_event(const std::function<void(const Event&)>& fn) const {
  for (size_t i = 0; i < ckpt_offsets_.size(); ++i) fn(decode(i));
  for (const Event& e : events_) fn(e);
}

void EventLog::clear() {
  events_.clear();
  cause_arena_.clear();
  cause_base_ = 0;
  derivations_.clear();
  body_arena_.clear();
  head_index_.clear();
  body_index_.clear();
  body_links_.clear();
  ckpt_.clear();
  ckpt_offsets_.clear();
  ckpt_names_.clear();
  table_name_written_.clear();
  rule_name_written_.clear();
  node_written_.clear();
  base_id_ = 0;
}

}  // namespace mp::eval
