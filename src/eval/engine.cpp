#include "eval/engine.h"

#include <algorithm>
#include <iterator>

#include "obs/obs.h"

namespace mp::eval {

bool eval_expr(const ndlog::Expr& e, const Env& env, Value& out) {
  using ndlog::Expr;
  switch (e.kind()) {
    case Expr::Kind::Const:
      out = e.cval();
      return true;
    case Expr::Kind::Var: {
      auto it = env.find(e.var_name());
      if (it == env.end()) return false;
      out = it->second;
      return true;
    }
    case Expr::Kind::Binary: {
      Value a, b;
      if (!eval_expr(*e.lhs(), env, a) || !eval_expr(*e.rhs(), env, b)) return false;
      if (!a.is_int() || !b.is_int()) return false;
      switch (e.op()) {
        case ndlog::ArithOp::Add: out = Value(a.as_int() + b.as_int()); return true;
        case ndlog::ArithOp::Sub: out = Value(a.as_int() - b.as_int()); return true;
        case ndlog::ArithOp::Mul: out = Value(a.as_int() * b.as_int()); return true;
        case ndlog::ArithOp::Div:
          if (b.as_int() == 0) return false;
          out = Value(a.as_int() / b.as_int());
          return true;
      }
      return false;
    }
  }
  return false;
}

Engine::Engine(ndlog::Program program, EngineOptions opt)
    : program_(std::move(program)), catalog_(program_), opt_(opt) {
  log_.attach(&catalog_);  // pool TableIds == catalog TableIds
  if (!opt_.segment_dir.empty()) {
    segments_ = std::make_unique<storage::SegmentStore>(opt_.segment_dir,
                                                        opt_.segment_store);
    // A store that failed at attach time (unwritable directory) stays
    // detached: the log keeps in-RAM checkpoints and the condition is
    // visible via segments()->failed() and the storage.degraded counter.
    // (Under ErrorPolicy::kFailStop the constructor above threw instead.)
    if (!segments_->failed()) log_.set_spill(segments_.get());
  }
  compiled_.reserve(program_.rules.size());
  for (const auto& rule : program_.rules) {
    compiled_.push_back(compile_rule(rule, catalog_, index_specs_));
    compiled_.back().log_rule = log_.intern_rule(rule.name);
  }
  history_.attach(&catalog_, &log_.pool(), opt_.use_indexes);
  triggers_by_table_.resize(catalog_.size());
  rule_restrict_.assign(program_.rules.size(), kAllTags);
  for (size_t r = 0; r < program_.rules.size(); ++r) {
    for (size_t b = 0; b < program_.rules[r].body.size(); ++b) {
      const TableId tid = catalog_.id_of(program_.rules[r].body[b].table);
      triggers_by_table_[tid].emplace_back(static_cast<uint32_t>(r),
                                           static_cast<uint32_t>(b));
    }
  }
  // Struct-of-arrays hot columns: for every stored table whose trigger
  // plans are all pure (the precondition for columnar lanes), the sorted
  // union of the plans' flattened predicate columns. Tables interned
  // after construction (external-only tables) have no rules, so sizing to
  // the post-compile catalog covers every table a lane can fire.
  if (opt_.batch_firing && opt_.soa_columns) {
    soa_specs_.resize(catalog_.size());
    for (TableId tid = 0; tid < soa_specs_.size(); ++tid) {
      if (catalog_.is_event(tid)) continue;
      std::vector<uint32_t>& cols = soa_specs_[tid];
      bool all_pure = true;
      for (const auto& [rule_idx, body_idx] : triggers_by_table_[tid]) {
        const TriggerPlan& tp = compiled_[rule_idx].triggers[body_idx];
        if (tp.dead) continue;
        if (!tp.columnar.pure) {
          all_pure = false;
          break;
        }
        for (const ColumnarGroup& grp : tp.columnar.groups) {
          for (const ColumnarPred& pr : grp.preds) {
            cols.push_back(pr.col);
            if (pr.kind == ColumnarPred::Kind::ColEq) cols.push_back(pr.col2);
          }
        }
      }
      if (!all_pure) {
        cols.clear();  // the lane never runs columnar for this table
        continue;
      }
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    }
  }
}

Engine::~Engine() { publish_obs(); }

void Engine::publish_obs() {
  if (!obs::enabled()) return;
  // Process-wide cumulative counters (eval.engine.*); per-engine exact
  // numbers stay in the plain members the accessors read — publication is
  // a cold-path delta add, never a hot-path atomic.
  obs::Registry& reg = obs::Registry::global();
  static obs::Counter* const counters[] = {
      &reg.counter("eval.engine.steps"),
      &reg.counter("eval.engine.rule_firings"),
      &reg.counter("eval.engine.index_probes"),
      &reg.counter("eval.engine.full_scans"),
      &reg.counter("eval.engine.batched_lanes"),
      &reg.counter("eval.engine.batched_tuples"),
      &reg.counter("eval.engine.entry_lanes"),
      &reg.counter("eval.engine.log_events_appended"),
  };
  const size_t current[] = {
      steps_,          firings_,        index_probes_, full_scans_,
      batched_lanes_,  batched_tuples_, entry_lanes_,  log_.size(),
  };
  static_assert(std::size(current) ==
                sizeof(obs_published_) / sizeof(obs_published_[0]));
  for (size_t i = 0; i < std::size(current); ++i) {
    if (current[i] > obs_published_[i]) {
      counters[i]->add(current[i] - obs_published_[i]);
      obs_published_[i] = current[i];
    }
  }
  static obs::Gauge& live_events = reg.gauge("eval.engine.log_live_events");
  live_events.set(static_cast<int64_t>(log_.live_size()));
}

Database& Engine::node_db(const Value& node) {
  if (node_cache_key_ != nullptr && *node_cache_key_ == node) {
    return *node_cache_db_;
  }
  if (node_cache_key2_ != nullptr && *node_cache_key2_ == node) {
    std::swap(node_cache_key_, node_cache_key2_);  // keep MRU first
    std::swap(node_cache_db_, node_cache_db2_);
    return *node_cache_db_;
  }
  auto [it, inserted] = nodes_.try_emplace(node);
  if (inserted) {
    it->second.init(&catalog_, &index_specs_,
                    soa_specs_.empty() ? nullptr : &soa_specs_, &log_.pool());
  }
  // Safe to cache: nodes_ is a std::map (node-stable) and never erased.
  node_cache_key2_ = node_cache_key_;
  node_cache_db2_ = node_cache_db_;
  node_cache_key_ = &it->first;
  node_cache_db_ = &it->second;
  return it->second;
}

Database* Engine::find_node_db(const Value& node) {
  if (node_cache_key_ != nullptr && *node_cache_key_ == node) {
    return node_cache_db_;
  }
  if (node_cache_key2_ != nullptr && *node_cache_key2_ == node) {
    std::swap(node_cache_key_, node_cache_key2_);
    std::swap(node_cache_db_, node_cache_db2_);
    return node_cache_db_;
  }
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return nullptr;
  node_cache_key2_ = node_cache_key_;
  node_cache_db2_ = node_cache_db_;
  node_cache_key_ = &it->first;
  node_cache_db_ = &it->second;
  return &it->second;
}

TableId Engine::intern_extern_table(const std::string& name) {
  // One-entry cache: ids are stable and names unique, so a content match
  // can never be stale; a homogeneous insert stream pays one string
  // compare instead of a catalog hash per tuple.
  if (!extern_cache_valid_ || name != extern_name_cache_) {
    extern_id_cache_ = catalog_.intern(name);
    extern_name_cache_ = name;
    extern_cache_valid_ = true;
  }
  return extern_id_cache_;
}

Row Engine::acquire_row() {
  if (row_pool_.empty()) return Row();
  Row r = std::move(row_pool_.back());
  row_pool_.pop_back();
  r.clear();  // keeps the vector's capacity for the refill
  return r;
}

void Engine::release_row(Row&& row) {
  if (row_pool_.size() < 64) row_pool_.push_back(std::move(row));
}

void Engine::dispatch_external(const Tuple& t, TableId tid, TagMask tags,
                               EventId cause, TupleRef ref, NodeRef nref) {
  if (running_ || !queue_.empty()) {
    // Re-entrant entry (from an on_appear callback): queue it so the
    // outer drain keeps sequential order.
    enqueue_appear(t, tid, tags, cause, ref, nref);
    run_queue();
    return;
  }
  // Direct dispatch: handle the external appearance in place — no queue
  // round trip, no Tuple copy — then drain the derived work it enqueued.
  // The step accounting mirrors what the queue pop would have charged;
  // running_ is held so callbacks that insert() enqueue, as they would
  // inside a queue drain.
  if (++steps_ > opt_.max_steps) {
    diverged_ = true;
    return;
  }
  running_ = true;
  try {
    handle_appear(t, tid, tags, cause, ref, nref);
  } catch (...) {
    // An exception can only come from outside the engine proper — an
    // on_appear callback, a shard hook, or an injected fault. Reset the
    // re-entrancy flag and drop the queued cascade so the engine stays
    // usable (consistent-but-partial: this op's remaining effects are
    // discarded, matching run_queue's unwind path).
    running_ = false;
    queue_.clear();
    throw;
  }
  running_ = false;
  run_queue();
}

void Engine::insert(const Tuple& t, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  const TableId tid = intern_extern_table(t.table);
  EventId cause = kNoEvent;
  TupleRef ref = kNoTupleRef;
  NodeRef nref = kNoNode;
  if (opt_.record_provenance) {
    ref = log_.pool().intern(tid, t.row);
    nref = log_.intern_node(t.location());
    cause = log_.append(EventKind::Insert, nref, ref, tags);
  }
  dispatch_external(t, tid, tags, cause, ref, nref);
  maybe_autocompact();
}

EventId Engine::receive_remote(Tuple t, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  const TableId tid = intern_extern_table(t.table);
  EventId cause = kNoEvent;
  TupleRef ref = kNoTupleRef;
  NodeRef nref = kNoNode;
  if (opt_.record_provenance) {
    ref = log_.pool().intern(tid, t.row);
    nref = log_.intern_node(t.location());
    cause = log_.append(EventKind::Receive, nref, ref, tags);
  }
  dispatch_external(t, tid, tags, cause, ref, nref);
  maybe_autocompact();
  return cause;
}

void Engine::receive_unsupport(const Tuple& head) {
  const TableId tid = catalog_.id_of(head.table);
  if (tid == ndlog::Catalog::kNoTable) return;
  auto node_it = nodes_.find(head.location());
  if (node_it == nodes_.end()) return;
  TableStore* store = node_it->second.store_if(tid);
  if (store == nullptr) return;
  Entry* e = store->find(head.row);
  if (e == nullptr || e->support <= 0) return;
  e->support -= 1;
  if (e->support <= 0) retract(head.location(), tid, e->ref);
}

void Engine::stage_insert(const Tuple& t, TagMask tags,
                          const std::string*& last_name, TableId& last_id) {
  if (last_name == nullptr || t.table != *last_name) {
    last_id = catalog_.intern(t.table);
    last_name = &t.table;
  }
  EventId cause = kNoEvent;
  TupleRef ref = kNoTupleRef;
  NodeRef nref = kNoNode;
  if (opt_.record_provenance) {
    ref = log_.pool().intern(last_id, t.row);
    nref = log_.intern_node(t.location());
    cause = log_.append(EventKind::Insert, nref, ref, tags);
  }
  dispatch_external(t, last_id, tags, cause, ref, nref);
}

// Closes the bulk bracket on unwind so an exception thrown mid-batch (a
// callback, a shard hook, an injected fault) cannot leak bulk_depth_ and
// leave stores in deferred-indexing mode forever.
struct Engine::BulkBracket {
  Engine& e;
  explicit BulkBracket(Engine& eng) : e(eng) { e.begin_bulk(); }
  ~BulkBracket() { e.end_bulk(); }
};

void Engine::insert_batch(std::span<const Tuple> batch, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  {
  BulkBracket bulk(*this);
  const std::string* last_name = nullptr;
  TableId last_id = 0;
  size_t i = 0;
  while (i < batch.size()) {
    // Lane formation at the entry point: a maximal run of >=2 consecutive
    // same-table tuples goes through the columnar path in one pass when
    // the engine is quiescent (top-level call, drained queue) and the
    // table qualifies — see try_insert_lane. Shard-hooked engines stay
    // scalar: forwarded tuples re-enter mid-run.
    if (opt_.batch_firing && !running_ && queue_.empty() && !diverged_ &&
        !hooks_.is_local && i + 1 < batch.size() &&
        batch[i + 1].table == batch[i].table) {
      size_t j = i + 2;
      while (j < batch.size() && batch[j].table == batch[i].table) ++j;
      const TableId tid = intern_extern_table(batch[i].table);
      if (try_insert_lane(batch.subspan(i, j - i), tid, tags)) {
        i = j;
        continue;
      }
      // Ineligible table: stage the whole run scalar so the run scan is
      // not repeated per tuple.
      for (; i < j; ++i) stage_insert(batch[i], tags, last_name, last_id);
      continue;
    }
    stage_insert(batch[i], tags, last_name, last_id);
    ++i;
  }
  }  // close the bulk bracket before compaction (it needs bulk_depth_ 0)
  maybe_autocompact();
}

void Engine::insert_batch(std::span<const std::pair<Tuple, TagMask>> batch) {
  {
    BulkBracket bulk(*this);
    const std::string* last_name = nullptr;
    TableId last_id = 0;
    for (const auto& [t, tags] : batch) {
      stage_insert(t, opt_.tag_mode ? tags : kAllTags, last_name, last_id);
    }
  }
  maybe_autocompact();
}

void Engine::remove(const Tuple& t) {
  remove_one(t);
  run_queue();
  maybe_autocompact();
}

void Engine::remove_batch(std::span<const Tuple> batch) {
  for (const Tuple& t : batch) remove_one(t);
  run_queue();
  maybe_autocompact();
}

void Engine::remove_one(const Tuple& t) {
  const TableId tid = catalog_.id_of(t.table);
  if (tid == ndlog::Catalog::kNoTable) return;
  auto node_it = nodes_.find(t.location());
  if (node_it == nodes_.end()) return;
  TableStore* store = node_it->second.store_if(tid);
  if (store == nullptr) return;
  Entry* e = store->find(t.row);
  if (e == nullptr || e->support <= 0) return;
  if (opt_.record_provenance) {
    // e->ref is always set: the store keys entries by their pool handle.
    log_.append(EventKind::Delete, t.location(), e->ref, e->tags);
  }
  e->support -= 1;
  if (e->support <= 0) retract(t.location(), tid, e->ref);
}

void Engine::maybe_autocompact() {
  // Only at a true top level: never mid-fixpoint (events later in the
  // drain may reference live entries) and never inside an enclosing batch
  // (the outermost end flushes once).
  if (running_ || bulk_depth_ > 0) return;
  if (opt_.compact_after_events == 0 && opt_.compact_after_bytes == 0) return;
  bool over = opt_.compact_after_events != 0 &&
              log_.live_size() > opt_.compact_after_events;
  if (!over && opt_.compact_after_bytes != 0) {
    // byte_estimate() walks the live suffix, but the policy keeps that
    // suffix bounded near the threshold, so the walk stays O(threshold).
    over = log_.byte_estimate() - log_.checkpoint_bytes() >
           opt_.compact_after_bytes;
  }
  if (over) log_.compact(opt_.compact_keep_live);
}

void Engine::begin_bulk() { ++bulk_depth_; }

void Engine::end_bulk() {
  if (--bulk_depth_ > 0) return;
  // One bulk index pass per store touched while the batch was staged.
  for (TableStore* store : bulk_stores_) store->set_deferred_indexing(false);
  bulk_stores_.clear();
}

bool Engine::exists(const Value& node, const std::string& table,
                    const Row& row) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.exists(table, row);
}

std::vector<Row> Engine::rows(const Value& node, const std::string& table) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return {};
  return it->second.rows(table);
}

std::vector<Tuple> Engine::all_tuples(const std::string& table) const {
  std::vector<Tuple> out;
  const TableId tid = catalog_.id_of(table);
  if (tid == ndlog::Catalog::kNoTable) return out;
  for (const auto& [node, db] : nodes_) {
    for (Row& row : db.rows(tid)) {
      out.push_back(Tuple{table, std::move(row)});
    }
  }
  return out;
}

size_t Engine::match_tuples(
    const std::string& table, const TuplePattern& pattern,
    const std::function<bool(const Value& node, const Row& row)>& fn) const {
  size_t matched = 0;
  const TableId tid = catalog_.id_of(table);
  if (tid == ndlog::Catalog::kNoTable) return matched;
  for (const auto& [node, db] : nodes_) {
    const TableStore* store = db.store_if(tid);
    if (store == nullptr) continue;
    for (uint32_t slot = 0; slot < store->slot_count(); ++slot) {
      if (store->ref_at(slot) == kNoTupleRef) continue;
      const Row& row = store->row_at(slot);
      if (store->entry_at(slot).support <= 0 || !pattern.matches(row)) continue;
      ++matched;
      if (!fn(node, row)) return matched;
    }
  }
  return matched;
}

TagMask Engine::tags_of(const Value& node, const std::string& table,
                        const Row& row) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  const TableStore* t = it->second.table(table);
  if (t == nullptr) return 0;
  const Entry* e = t->find(row);
  return (e != nullptr && e->support > 0) ? e->tags : 0;
}

const Database* Engine::db(const Value& node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void Engine::on_appear(const std::string& table,
                       std::function<void(const Tuple&, TagMask)> cb) {
  const TableId tid = catalog_.intern(table);
  if (tid >= callbacks_.size()) callbacks_.resize(tid + 1);
  callbacks_[tid].push_back(std::move(cb));
  // A callback makes the table ineligible for columnar batched firing
  // (the callback must observe each appearance mid-lane).
  if (tid < batch_eligible_.size()) batch_eligible_[tid] = BatchEligible::No;
  if (tid < entry_eligible_.size()) entry_eligible_[tid] = BatchEligible::No;
}

void Engine::run_callbacks(TableId tid, const Tuple& t, TagMask tags) {
  if (tid >= callbacks_.size()) return;
  for (const auto& cb : callbacks_[tid]) cb(t, tags);
}

void Engine::set_rule_restrict(const std::string& rule, TagMask mask) {
  // By name, not by index: duplicate rule names (invalid but possible in
  // candidate programs) must all be restricted.
  for (size_t r = 0; r < program_.rules.size(); ++r) {
    if (program_.rules[r].name == rule) rule_restrict_[r] = mask;
  }
}

void Engine::enqueue_appear(Tuple t, TableId tid, TagMask tags, EventId cause,
                            TupleRef ref, NodeRef nref) {
  queue_.push_back(PendingAppear{std::move(t), tid, tags, cause, ref, nref});
}

void Engine::run_queue() {
  if (running_) return;  // re-entrant insert from a callback: outer loop drains
  running_ = true;
  try {
    run_queue_body();
  } catch (...) {
    // See dispatch_external: only foreign code (callbacks, shard hooks,
    // injected faults) throws through here. Unwind to a usable engine.
    running_ = false;
    queue_.clear();
    throw;
  }
  running_ = false;
}

void Engine::run_queue_body() {
  while (!queue_.empty()) {
    // Columnar lane: two or more consecutive same-table entries at the
    // front (a cascade fan-out). The two-compare guard keeps the singleton
    // case — by far the common one — on the scalar path with no analysis.
    if (opt_.batch_firing && queue_.size() > 1 &&
        queue_[1].table_id == queue_.front().table_id && run_batch_lane()) {
      continue;
    }
    if (++steps_ > opt_.max_steps) {
      diverged_ = true;
      queue_.clear();
      break;
    }
    PendingAppear p = std::move(queue_.front());
    queue_.pop_front();
    handle_appear(p.tuple, p.table_id, p.tags, p.cause, p.ref, p.node_ref);
    release_row(std::move(p.tuple.row));
  }
}

// --- columnar batched firing --------------------------------------------
//
// A lane — consecutive queue entries for one table — is executed in three
// phases instead of tuple-at-a-time:
//   1. store pass:    support/tag bookkeeping for every lane tuple, in
//                     order, deciding which tuples actually appear;
//   2. columnar fire: each trigger plan runs ONCE over the lane. The
//                     plan's flattened row-local predicates filter a match
//                     vector column-major (plan constants, ops and
//                     branch-history stay hot across the whole lane);
//                     survivors evaluate assignments / selections / head
//                     args into a staging buffer of head rows;
//   3. emission:      a tuple-major walk in the exact scalar order —
//                     Appear event, then that tuple's staged firings in
//                     plan order (Derive/Send/Receive events, derivation
//                     records, head enqueue). Event bytes, derivation
//                     records, step counts and queue order are identical
//                     to the tuple-at-a-time path, which the differential
//                     harness pins.
// Anything the fast path cannot prove equivalent falls back to scalar:
// impure plans (a join step reads stores phase 1 is still mutating), key
// replacement (retracts mid-lane interleave events), registered callbacks
// (they observe appearances mid-lane and may insert re-entrantly), and
// lanes that could exhaust the step budget mid-batch.
bool Engine::ensure_batch_eligible(TableId tid) {
  if (tid >= batch_eligible_.size()) {
    batch_eligible_.resize(tid + 1, BatchEligible::Unknown);
    batch_step_cost_.resize(tid + 1, 0);
  }
  if (batch_eligible_[tid] != BatchEligible::Unknown) {
    return batch_eligible_[tid] == BatchEligible::Yes;
  }
  batch_eligible_[tid] = BatchEligible::No;  // until proven otherwise
  if (tid < callbacks_.size() && !callbacks_[tid].empty()) return false;
  const ndlog::TableDecl& decl = catalog_.decl(tid);
  if (!catalog_.is_event(tid) && !decl.keys.empty() &&
      decl.keys.size() < decl.arity) {
    return false;
  }
  size_t per_tuple = 1;  // the queue pop
  if (tid < triggers_by_table_.size()) {
    for (const auto& [rule_idx, body_idx] : triggers_by_table_[tid]) {
      const TriggerPlan& tp = compiled_[rule_idx].triggers[body_idx];
      if (tp.dead) continue;
      if (!tp.columnar.pure) return false;
      per_tuple += 1 + tp.steps.size();
    }
  }
  batch_step_cost_[tid] = per_tuple;
  batch_eligible_[tid] = BatchEligible::Yes;
  return true;
}

bool Engine::ensure_entry_eligible(TableId tid) {
  if (tid >= entry_eligible_.size()) {
    entry_eligible_.resize(tid + 1, BatchEligible::Unknown);
  }
  if (entry_eligible_[tid] != BatchEligible::Unknown) {
    return entry_eligible_[tid] == BatchEligible::Yes;
  }
  entry_eligible_[tid] = BatchEligible::No;  // until proven otherwise
  if (!ensure_batch_eligible(tid)) return false;
  if (!catalog_.is_event(tid)) {
    // A stored run is store-passed up front, before any tuple's cascade
    // runs; that is only equivalent to the interleaved scalar order if no
    // cascade can read or write this table's store. No rule may derive
    // into it (a cascade insert would race the pre-stored run's support
    // and appearance accounting), and no live plan may join against it (a
    // cascade firing would see later run tuples the scalar order had not
    // stored yet). Events need neither check: they are never stored.
    for (const CompiledRule& cr : compiled_) {
      if (cr.head_table == tid) return false;
      for (const TriggerPlan& tp : cr.triggers) {
        if (tp.dead) continue;
        for (const AtomStep& st : tp.steps) {
          if (st.table == tid && st.access != AtomStep::Access::TriggerSelf) {
            return false;
          }
        }
      }
    }
  }
  entry_eligible_[tid] = BatchEligible::Yes;
  return true;
}

template <typename RowAt, typename TagsAt>
void Engine::columnar_fire(const LaneView& lv, RowAt row_at, TagsAt in_tags,
                           std::vector<std::vector<StagedFiring>>& firings) {
  const size_t nplans =
      lv.tid < triggers_by_table_.size() ? triggers_by_table_[lv.tid].size()
                                         : 0;
  if (firings.size() < nplans) firings.resize(nplans);
  for (size_t p = 0; p < nplans; ++p) firings[p].clear();
  if (nplans == 0) return;
  // Struct-of-arrays predicate reads: when the lane's rows are stored and
  // the table has a hot-column mirror, each predicate's column values are
  // read slot-indexed from the per-column vectors instead of through each
  // row's heap vector. The mirror holds exactly the union of predicate
  // columns (computed at construction), so every predicate column
  // resolves; reads stay behind the same arity checks as the row path.
  const std::vector<uint32_t>* soa = nullptr;
  if (lv.stores != nullptr && lv.tid < soa_specs_.size() &&
      !soa_specs_[lv.tid].empty()) {
    soa = &soa_specs_[lv.tid];
  }
  auto soa_k = [&](uint32_t col) {
    return static_cast<size_t>(
        std::lower_bound(soa->begin(), soa->end(), col) - soa->begin());
  };
  // Filters match_ by one flattened predicate, column-major.
  auto filter_pred = [&](const ColumnarPred& pr) {
    size_t w = 0;
    if (soa != nullptr) {
      const size_t k1 = soa_k(pr.col);
      if (pr.kind == ColumnarPred::Kind::ConstEq) {
        for (uint32_t i : match_) {
          if (pr.cval == lv.stores[i]->soa_at(k1, lv.slots[i])) {
            match_[w++] = i;
          }
        }
      } else {
        const size_t k2 = soa_k(pr.col2);
        for (uint32_t i : match_) {
          const TableStore* s = lv.stores[i];
          if (s->soa_at(k1, lv.slots[i]) == s->soa_at(k2, lv.slots[i])) {
            match_[w++] = i;
          }
        }
      }
    } else {
      for (uint32_t i : match_) {
        const Row& row = row_at(i);
        const bool ok = pr.kind == ColumnarPred::Kind::ConstEq
                            ? pr.cval == row[pr.col]
                            : row[pr.col] == row[pr.col2];
        if (ok) match_[w++] = i;
      }
    }
    match_.resize(w);
  };
  size_t ord = 0;
  for (const auto& [rule_idx, body_idx] : triggers_by_table_[lv.tid]) {
    const size_t my_ord = ord++;
    const CompiledRule& cr = compiled_[rule_idx];
    const TriggerPlan& tp = cr.triggers[body_idx];
    if (tp.dead) continue;
    const ColumnarPlan& cp = tp.columnar;
    const bool pushdown = opt_.pushdown_selections;
    // Rebuilds the frame for one lane row: every slot a pure plan binds
    // comes from the trigger row. The col guard mirrors the scalar
    // path: a step whose arity check has not yet passed for this row
    // cannot have bound its slots either, and no selection evaluated
    // before that point may read them.
    auto bind_frame = [&](const Row& row) {
      frame_.reset(cr.nslots);
      for (const auto& [slot, col] : cp.slot_cols) {
        if (col < row.size()) frame_.bind(slot, row[col]);
      }
    };
    auto filter_sels = [&](const std::vector<uint32_t>& sels) {
      size_t w = 0;
      for (uint32_t i : match_) {
        bind_frame(row_at(i));
        if (eval_pushed_sels(cr, sels)) match_[w++] = i;
      }
      match_.resize(w);
    };
    // Group 0 — the trigger atom. Failures here are charge-free, exactly
    // like fire_rules' pre-exec_step filtering.
    match_.clear();
    for (size_t i = 0; i < lv.n; ++i) {
      if (!lv.appears[i]) continue;
      if (opt_.tag_mode && (in_tags(i) & rule_restrict_[rule_idx]) == 0) {
        continue;
      }
      if (row_at(i).size() != tp.arity) continue;
      match_.push_back(static_cast<uint32_t>(i));
    }
    for (const ColumnarPred& pr : cp.groups[0].preds) filter_pred(pr);
    if (pushdown && !cp.groups[0].sels.empty()) {
      filter_sels(cp.groups[0].sels);
    }
    // Groups 1..n — the TriggerSelf steps, one step charge per surviving
    // row at each boundary (the exec_step calls the scalar path makes).
    // Entry lanes divert the charges into a per-row counter so emission
    // can charge each tuple exactly where the scalar order would.
    for (size_t g = 0;; ++g) {
      if (lv.charges != nullptr) {
        for (uint32_t i : match_) ++lv.charges[i];
      } else {
        steps_ += match_.size();
      }
      if (g + 1 == cp.groups.size()) break;
      const ColumnarGroup& grp = cp.groups[g + 1];
      size_t w = 0;
      for (uint32_t i : match_) {
        if (row_at(i).size() == grp.arity) match_[w++] = i;
      }
      match_.resize(w);
      for (const ColumnarPred& pr : grp.preds) filter_pred(pr);
      if (pushdown && !grp.sels.empty()) filter_sels(grp.sels);
    }
    // Finish the survivors. Flat plans (no assignments, all selections
    // pushed, bare-variable/constant head args) build head rows straight
    // from the trigger columns — no Frame anywhere on the columnar path.
    if (pushdown && cp.flat_finish) {
      for (uint32_t i : match_) {
        const Row& row = row_at(i);
        StagedFiring sf;
        sf.row = i;
        sf.mask = opt_.tag_mode ? (in_tags(i) & rule_restrict_[rule_idx])
                                : in_tags(i);
        sf.head = acquire_row();
        sf.head.reserve(cp.head_cols.size());
        for (const ColumnarPlan::HeadCol& hc : cp.head_cols) {
          sf.head.push_back(hc.is_const ? hc.cval : row[hc.col]);
        }
        firings[my_ord].push_back(std::move(sf));
      }
      continue;
    }
    // General finish: assignments, unpushed selections, head args —
    // finish_rule's body over the rebuilt frame.
    const uint64_t pushed = pushdown ? tp.pushed_mask : 0;
    for (uint32_t i : match_) {
      bind_frame(row_at(i));
      bool ok = true;
      for (const CompiledAssign& asg : cr.assigns) {
        Value v;
        if (!asg.expr.eval(frame_, v)) {
          ok = false;
          break;
        }
        frame_.rebind(asg.slot, std::move(v));
      }
      for (size_t si = 0; ok && si < cr.sels.size(); ++si) {
        if (si < 64 && ((pushed >> si) & 1)) continue;
        const CompiledSelection& sel = cr.sels[si];
        Value sa, sb;
        const Value* a = sel.lhs.eval_ref(frame_, sa);
        const Value* b = sel.rhs.eval_ref(frame_, sb);
        if (a == nullptr || b == nullptr || !ndlog::cmp_eval(sel.op, *a, *b)) {
          ok = false;
        }
      }
      if (!ok) continue;
      StagedFiring sf;
      sf.row = i;
      sf.mask = opt_.tag_mode ? (in_tags(i) & rule_restrict_[rule_idx])
                              : in_tags(i);
      sf.head = acquire_row();
      sf.head.reserve(cr.head_args.size());
      for (const SlotExpr& arg : cr.head_args) {
        Value v;
        if (!arg.eval(frame_, v)) {
          ok = false;
          break;
        }
        sf.head.push_back(std::move(v));
      }
      if (!ok) {
        release_row(std::move(sf.head));
        continue;
      }
      firings[my_ord].push_back(std::move(sf));
    }
  }
}

bool Engine::run_batch_lane() {
  const TableId tid = queue_.front().table_id;
  if (!ensure_batch_eligible(tid)) return false;

  size_t lane = 2;  // caller verified the first two entries share tid
  while (lane < queue_.size() && queue_[lane].table_id == tid) ++lane;
  // Step headroom: with the worst case pre-charged, no divergence can hit
  // mid-batch (the scalar path charges at most the same, so it would not
  // have diverged on this lane either).
  if (steps_ + lane * batch_step_cost_[tid] > opt_.max_steps) return false;

  lane_.clear();
  for (size_t i = 0; i < lane; ++i) {
    lane_.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  steps_ += lane;  // the scalar loop's per-pop charge
  ++batched_lanes_;
  batched_tuples_ += lane;

  // Phase 1: store pass. Sequential per tuple — a duplicate row later in
  // the lane must see the support its predecessor added.
  const bool is_event = catalog_.is_event(tid);
  lane_appears_.assign(lane, 1);
  lane_tags_.assign(lane, 0);
  lane_slots_.assign(lane, 0);
  lane_stores_.assign(lane, nullptr);
  for (size_t i = 0; i < lane; ++i) {
    PendingAppear& p = lane_[i];
    if (p.ref == kNoTupleRef && (!is_event || opt_.record_provenance)) {
      p.ref = log_.pool().intern(tid, p.tuple.row);
    }
    if (is_event) {
      lane_tags_[i] = p.tags;
      continue;
    }
    TableStore& store = node_db(p.tuple.location()).store(tid);
    if (bulk_depth_ > 0 && !store.deferred_indexing()) {
      store.set_deferred_indexing(true);
      bulk_stores_.push_back(&store);
    }
    Entry& e = store.insert_ref(p.ref);
    lane_slots_[i] = store.slot_of(e);
    lane_stores_[i] = &store;
    const bool was_present = e.support > 0;
    const TagMask new_tags = opt_.tag_mode ? (e.tags | p.tags) : kAllTags;
    e.support += 1;
    const TagMask added = opt_.tag_mode ? (new_tags & ~e.tags) : kAllTags;
    e.tags = new_tags;
    if (was_present && (!opt_.tag_mode || added == 0)) lane_appears_[i] = 0;
    lane_tags_[i] = new_tags;
  }

  // Phase 2: plan-major columnar firing into the staging buffer.
  const size_t nplans =
      tid < triggers_by_table_.size() ? triggers_by_table_[tid].size() : 0;
  LaneView lv;
  lv.tid = tid;
  lv.n = lane;
  lv.appears = lane_appears_.data();
  lv.stores = is_event ? nullptr : lane_stores_.data();
  lv.slots = lane_slots_.data();
  columnar_fire(
      lv, [this](size_t i) -> const Row& { return lane_[i].tuple.row; },
      [this](size_t i) { return lane_[i].tags; }, lane_firings_);

  // Phase 3: tuple-major emission in the scalar order.
  lane_cursor_.assign(nplans, 0);
  for (size_t i = 0; i < lane; ++i) {
    PendingAppear& p = lane_[i];
    if (!lane_appears_[i]) {
      release_row(std::move(p.tuple.row));
      continue;
    }
    const Value& node = p.tuple.location();
    NodeRef nref = p.node_ref;
    EventId appear_ev = p.cause;
    if (opt_.record_provenance) {
      if (nref == kNoNode) nref = log_.intern_node(node);
      appear_ev = log_.append(EventKind::Appear, nref, p.ref, lane_tags_[i],
                              p.cause == kNoEvent
                                  ? std::span<const EventId>{}
                                  : std::span<const EventId>{&p.cause, 1});
      history_.record(tid, p.ref);
    }
    if (!is_event) {
      // Via the slot recorded in phase 1: Entry pointers were invalidated
      // by the later inserts, but slots are stable (nothing is erased
      // between the phases), so this skips the ref->slot hash probe.
      node_db(node).store(tid).entry_at(lane_slots_[i]).appear_event =
          appear_ev;
    }
    size_t ord3 = 0;
    if (nplans > 0) {
      for (const auto& [rule_idx, body_idx] : triggers_by_table_[tid]) {
        const size_t my_ord = ord3++;
        std::vector<StagedFiring>& staged = lane_firings_[my_ord];
        size_t& cur = lane_cursor_[my_ord];
        while (cur < staged.size() && staged[cur].row == i) {
          const CompiledRule& cr = compiled_[rule_idx];
          const TriggerPlan& tp = cr.triggers[body_idx];
          const ndlog::Rule& rule = program_.rules[rule_idx];
          if (opt_.record_provenance) {
            cause_scratch_.assign(rule.body.size(), kNoEvent);
            body_scratch_.assign(rule.body.size(), kNoTupleRef);
            for (uint32_t pos : tp.columnar.body_positions) {
              cause_scratch_[pos] = appear_ev;
              body_scratch_[pos] = p.ref;
            }
          }
          Tuple head;
          head.table = rule.head.table;
          head.row = std::move(staged[cur].head);
          if (opt_.record_provenance) {
            derive(cr, rule, node, nref, std::move(head), staged[cur].mask,
                   cause_scratch_, body_scratch_);
          } else {
            derive(cr, rule, node, nref, std::move(head), staged[cur].mask, {},
                   {});
          }
          ++firings_;
          ++cur;
        }
      }
    }
    release_row(std::move(p.tuple.row));
  }
  return true;
}

bool Engine::try_insert_lane(std::span<const Tuple> run, TableId tid,
                             TagMask tags) {
  if (!ensure_entry_eligible(tid)) return false;
  const size_t n = run.size();
  const bool is_event = catalog_.is_event(tid);
  ++batched_lanes_;
  ++entry_lanes_;
  batched_tuples_ += n;

  // Phase 1: store pass (stored tables only) — sequential support/tag
  // bookkeeping, exactly the scalar handle_appear updates, with the
  // pre-image stashed so a mid-lane divergence can unwind rows whose
  // scalar turn never came. Event tables skip it entirely; their refs are
  // interned at emission so pool handles are assigned in the scalar
  // order (interleaved with the cascades' head tuples).
  entry_appears_.assign(n, 1);
  entry_tags_.assign(n, 0);
  entry_slots_.assign(n, 0);
  entry_stores_.assign(n, nullptr);
  entry_refs_.assign(n, kNoTupleRef);
  entry_charge_.assign(n, 0);
  entry_prev_support_.assign(n, 0);
  entry_prev_tags_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (is_event) {
      entry_tags_[i] = tags;
      continue;
    }
    const TupleRef ref = log_.pool().intern(tid, run[i].row);
    entry_refs_[i] = ref;
    TableStore& store = node_db(run[i].location()).store(tid);
    if (bulk_depth_ > 0 && !store.deferred_indexing()) {
      store.set_deferred_indexing(true);
      bulk_stores_.push_back(&store);
    }
    Entry& e = store.insert_ref(ref);
    entry_slots_[i] = store.slot_of(e);
    entry_stores_[i] = &store;
    entry_prev_support_[i] = e.support;
    entry_prev_tags_[i] = e.tags;
    const bool was_present = e.support > 0;
    const TagMask new_tags = opt_.tag_mode ? (e.tags | tags) : kAllTags;
    e.support += 1;
    const TagMask added = opt_.tag_mode ? (new_tags & ~e.tags) : kAllTags;
    e.tags = new_tags;
    if (was_present && (!opt_.tag_mode || added == 0)) entry_appears_[i] = 0;
    entry_tags_[i] = new_tags;
  }

  // Phase 2: plan-major columnar matching. Step charges go into the
  // per-row counter so phase 3 can charge each tuple at its scalar
  // position (the cascades in between move steps_ too).
  LaneView lv;
  lv.tid = tid;
  lv.n = n;
  lv.appears = entry_appears_.data();
  lv.stores = is_event ? nullptr : entry_stores_.data();
  lv.slots = entry_slots_.data();
  lv.charges = entry_charge_.data();
  columnar_fire(
      lv, [run](size_t i) -> const Row& { return run[i].row; },
      [tags](size_t) { return tags; }, entry_firings_);

  const size_t nplans =
      tid < triggers_by_table_.size() ? triggers_by_table_[tid].size() : 0;
  entry_cursor_.assign(nplans, 0);

  // Phase 3: per-tuple emission in the exact scalar order — Insert,
  // Appear, this tuple's firings, then its cascade run to fixpoint —
  // before the next tuple is touched.
  for (size_t i = 0; i < n; ++i) {
    if (diverged_ || steps_ + 1 + entry_charge_[i] > opt_.max_steps) {
      // The scalar path could diverge inside this tuple's own firing (or
      // already has, in a cascade): unwind what phase 1 pre-did for the
      // unemitted rows and replay them through the scalar entry point,
      // which reproduces the divergence bookkeeping exactly. The undo
      // runs in reverse so stacked duplicate-row deltas peel correctly;
      // a row whose pre-image was support 0 leaves a shell entry behind,
      // which every consumer already skips (support > 0 filters).
      for (size_t j = n; j-- > i;) {
        if (entry_stores_[j] == nullptr) continue;
        Entry& e = entry_stores_[j]->entry_at(entry_slots_[j]);
        e.support = entry_prev_support_[j];
        e.tags = entry_prev_tags_[j];
      }
      for (size_t p = 0; p < nplans; ++p) {
        std::vector<StagedFiring>& staged = entry_firings_[p];
        for (size_t cur = entry_cursor_[p]; cur < staged.size(); ++cur) {
          release_row(std::move(staged[cur].head));
        }
      }
      const std::string* last_name = nullptr;
      TableId last_id = 0;
      for (size_t j = i; j < n; ++j) {
        stage_insert(run[j], tags, last_name, last_id);
      }
      return true;
    }

    const Tuple& t = run[i];
    const Value& node = t.location();
    TupleRef ref = entry_refs_[i];
    NodeRef nref = kNoNode;
    EventId cause = kNoEvent;
    if (opt_.record_provenance) {
      if (ref == kNoTupleRef) ref = log_.pool().intern(tid, t.row);
      nref = log_.intern_node(node);
      cause = log_.append(EventKind::Insert, nref, ref, tags);
    }
    steps_ += 1 + entry_charge_[i];
    if (!entry_appears_[i]) continue;  // extra support: no new appearance

    EventId appear_ev = cause;
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, nref, ref, entry_tags_[i],
                              cause == kNoEvent
                                  ? std::span<const EventId>{}
                                  : std::span<const EventId>{&cause, 1});
      history_.record(tid, ref);
    }
    if (!is_event) {
      entry_stores_[i]->entry_at(entry_slots_[i]).appear_event = appear_ev;
    }
    if (nplans > 0) {
      size_t ord = 0;
      for (const auto& [rule_idx, body_idx] : triggers_by_table_[tid]) {
        const size_t my_ord = ord++;
        std::vector<StagedFiring>& staged = entry_firings_[my_ord];
        size_t& cur = entry_cursor_[my_ord];
        while (cur < staged.size() && staged[cur].row == i) {
          const CompiledRule& cr = compiled_[rule_idx];
          const TriggerPlan& tp = cr.triggers[body_idx];
          const ndlog::Rule& rule = program_.rules[rule_idx];
          if (opt_.record_provenance) {
            cause_scratch_.assign(rule.body.size(), kNoEvent);
            body_scratch_.assign(rule.body.size(), kNoTupleRef);
            for (uint32_t pos : tp.columnar.body_positions) {
              cause_scratch_[pos] = appear_ev;
              body_scratch_[pos] = ref;
            }
          }
          Tuple head;
          head.table = rule.head.table;
          head.row = std::move(staged[cur].head);
          if (opt_.record_provenance) {
            derive(cr, rule, node, nref, std::move(head), staged[cur].mask,
                   cause_scratch_, body_scratch_);
          } else {
            derive(cr, rule, node, nref, std::move(head), staged[cur].mask, {},
                   {});
          }
          ++firings_;
          ++cur;
        }
      }
    }
    run_queue();  // this tuple's cascade, to fixpoint, before the next
  }
  return true;
}

void Engine::handle_appear(const Tuple& tuple, TableId table_id, TagMask tags,
                           EventId cause, TupleRef ref, NodeRef nref) {
  const Value& node = tuple.location();
  const bool is_event = catalog_.is_event(table_id);
  EventId appear_ev = cause;
  // Stored tables always intern (provenance on or off): the stores key
  // their entries by pool handle, so the appearance pays the pool's
  // once-per-distinct-tuple hash instead of a Row hash per insert.
  // Transient event tables are never stored, so they only need a handle
  // when the appearance is logged.
  if (ref == kNoTupleRef && (!is_event || opt_.record_provenance)) {
    ref = log_.pool().intern(table_id, tuple.row);
  }
  if (nref == kNoNode && opt_.record_provenance) {
    nref = log_.intern_node(node);
  }

  if (!is_event) {
    TableStore& store = node_db(node).store(table_id);
    if (bulk_depth_ > 0 && !store.deferred_indexing()) {
      store.set_deferred_indexing(true);
      bulk_stores_.push_back(&store);
    }

    // Primary-key replacement: displace an existing row with the same key.
    const ndlog::TableDecl& decl = catalog_.decl(table_id);
    if (!decl.keys.empty() && decl.keys.size() < decl.arity) {
      const Row key = catalog_.key_of(table_id, tuple.row);
      const TupleRef old = store.ref_with_key(key);
      if (old != kNoTupleRef && old != ref) {  // same key, different row
        const Entry* oe = store.find_ref(old);
        if (oe != nullptr && oe->support > 0) {
          retract(node, table_id, old);
        }
      }
      store.index_key(key, ref);
    }

    Entry& e = store.insert_ref(ref);
    const bool was_present = e.support > 0;
    const TagMask new_tags = opt_.tag_mode ? (e.tags | tags) : kAllTags;
    e.support += 1;
    const TagMask added_tags = opt_.tag_mode ? (new_tags & ~e.tags) : kAllTags;
    e.tags = new_tags;
    if (was_present && (!opt_.tag_mode || added_tags == 0)) {
      // Extra support for an already-visible row: no new appearance.
      return;
    }
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, nref, ref, e.tags,
                              cause == kNoEvent
                                  ? std::span<const EventId>{}
                                  : std::span<const EventId>{&cause, 1});
      history_.record(table_id, ref);
    }
    e.appear_event = appear_ev;  // e.ref was set by insert_ref
  } else {
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, nref, ref, tags,
                              cause == kNoEvent
                                  ? std::span<const EventId>{}
                                  : std::span<const EventId>{&cause, 1});
      history_.record(table_id, ref);
    }
  }

  run_callbacks(table_id, tuple, tags);

  fire_rules(node, nref, tuple, table_id, tags, appear_ev, ref);
}

void Engine::fire_rules(const Value& node, NodeRef nref, const Tuple& trigger,
                        TableId tid, TagMask mask, EventId trigger_event,
                        TupleRef trigger_ref) {
  if (tid >= triggers_by_table_.size()) return;  // interned after construction
  const Database* db = find_node_db(node);
  for (const auto& [rule_idx, body_idx] : triggers_by_table_[tid]) {
    const CompiledRule& cr = compiled_[rule_idx];
    const TriggerPlan& tp = cr.triggers[body_idx];
    if (tp.dead) continue;
    TagMask rule_mask = mask;
    if (opt_.tag_mode) {
      rule_mask &= rule_restrict_[rule_idx];
      if (rule_mask == 0) continue;
    }
    if (trigger.row.size() != tp.arity) continue;
    frame_.reset(cr.nslots);
    if (!unify_ops(tp.trigger_ops, trigger.row, frame_)) continue;
    if (opt_.pushdown_selections && !eval_pushed_sels(cr, tp.trigger_sels)) {
      continue;
    }
    const ndlog::Rule& rule = program_.rules[rule_idx];
    if (opt_.record_provenance) {
      cause_scratch_.assign(rule.body.size(), kNoEvent);
      body_scratch_.assign(rule.body.size(), kNoTupleRef);
      cause_scratch_[body_idx] = trigger_event;
      body_scratch_[body_idx] = trigger_ref;
    }
    exec_step(cr, rule, tp, 0, db, node, nref, rule_mask, trigger,
              trigger_event, trigger_ref);
    if (diverged_) return;
  }
}

bool Engine::eval_pushed_sels(const CompiledRule& cr,
                              const std::vector<uint32_t>& sels) {
  for (uint32_t i : sels) {
    const CompiledSelection& sel = cr.sels[i];
    Value sa, sb;
    const Value* a = sel.lhs.eval_ref(frame_, sa);
    const Value* b = sel.rhs.eval_ref(frame_, sb);
    if (a == nullptr || b == nullptr || !ndlog::cmp_eval(sel.op, *a, *b)) {
      return false;
    }
  }
  return true;
}

void Engine::exec_step(const CompiledRule& cr, const ndlog::Rule& rule,
                       const TriggerPlan& tp, size_t step_idx,
                       const Database* db, const Value& node, NodeRef nref,
                       TagMask mask, const Tuple& trigger,
                       EventId trigger_event, TupleRef trigger_ref) {
  if (++steps_ > opt_.max_steps) {
    diverged_ = true;
    return;
  }
  if (step_idx == tp.steps.size()) {
    finish_rule(cr, rule, tp, node, nref, mask);
    return;
  }
  const AtomStep& st = tp.steps[step_idx];
  const bool pushdown = opt_.pushdown_selections;

  if (st.access == AtomStep::Access::TriggerSelf) {
    // Event tables cannot be joined from storage (they are transient); the
    // only way an event atom is satisfied is as the trigger itself.
    if (trigger.row.size() != st.arity) return;
    const size_t m = frame_.mark();
    if (unify_ops(st.full_ops, trigger.row, frame_) &&
        (!pushdown || eval_pushed_sels(cr, st.sels))) {
      if (opt_.record_provenance) {
        cause_scratch_[st.body_pos] = trigger_event;
        body_scratch_[st.body_pos] = trigger_ref;
      }
      exec_step(cr, rule, tp, step_idx + 1, db, node, nref, mask, trigger,
                trigger_event, trigger_ref);
    }
    frame_.undo_to(m);
    return;
  }

  if (db == nullptr) return;
  const TableStore* store = db->store_if(st.table);
  if (store == nullptr) return;

  if (st.access == AtomStep::Access::Probe && opt_.use_indexes) {
    ++index_probes_;
    // probe_key_ is scratch: dead once probe() returns, so reuse across
    // recursion levels is safe.
    probe_key_.clear();
    probe_key_.reserve(st.key.size());
    for (const KeyPart& kp : st.key) {
      probe_key_.push_back(kp.is_const ? kp.cval : frame_.slots[kp.slot]);
    }
    const TableStore::Bucket* bucket =
        store->probe(static_cast<size_t>(st.index_id), probe_key_);
    if (bucket == nullptr) return;
    for (uint32_t slot : *bucket) {
      const Entry& entry = store->entry_at(slot);
      if (entry.support <= 0) continue;
      const TagMask m2 = opt_.tag_mode ? (mask & entry.tags) : mask;
      if (opt_.tag_mode && m2 == 0) continue;
      const Row& row = store->row_at(slot);
      if (row.size() != st.arity) continue;
      const size_t m = frame_.mark();
      if (unify_ops(st.residual_ops, row, frame_) &&
          (!pushdown || eval_pushed_sels(cr, st.sels))) {
        if (opt_.record_provenance) {
          cause_scratch_[st.body_pos] = entry.appear_event;
          body_scratch_[st.body_pos] = entry.ref;
        }
        exec_step(cr, rule, tp, step_idx + 1, db, node, nref, m2, trigger,
                  trigger_event, trigger_ref);
      }
      frame_.undo_to(m);
      if (diverged_) return;
    }
    return;
  }

  // Full scan: atoms with zero bound columns, or use_indexes disabled.
  ++full_scans_;
  for (uint32_t slot = 0; slot < store->slot_count(); ++slot) {
    if (store->ref_at(slot) == kNoTupleRef) continue;
    const Entry& entry = store->entry_at(slot);
    if (entry.support <= 0) continue;
    const TagMask m2 = opt_.tag_mode ? (mask & entry.tags) : mask;
    if (opt_.tag_mode && m2 == 0) continue;
    const Row& row = store->row_at(slot);
    if (row.size() != st.arity) continue;
    const size_t m = frame_.mark();
    if (unify_ops(st.full_ops, row, frame_) &&
        (!pushdown || eval_pushed_sels(cr, st.sels))) {
      if (opt_.record_provenance) {
        cause_scratch_[st.body_pos] = entry.appear_event;
        body_scratch_[st.body_pos] = entry.ref;
      }
      exec_step(cr, rule, tp, step_idx + 1, db, node, nref, m2, trigger,
                trigger_event, trigger_ref);
    }
    frame_.undo_to(m);
    if (diverged_) return;
  }
}

void Engine::finish_rule(const CompiledRule& cr, const ndlog::Rule& rule,
                         const TriggerPlan& tp, const Value& node,
                         NodeRef nref, TagMask mask) {
  const size_t m = frame_.mark();
  // Assignments bind new slots in order, then selections filter —
  // skipping those already evaluated inside the join (pushdown); their
  // slots cannot have changed since (assignment-target selections are
  // never pushed).
  for (const CompiledAssign& asg : cr.assigns) {
    Value v;
    if (!asg.expr.eval(frame_, v)) {
      frame_.undo_to(m);
      return;
    }
    frame_.rebind(asg.slot, std::move(v));
  }
  const uint64_t pushed = opt_.pushdown_selections ? tp.pushed_mask : 0;
  for (size_t i = 0; i < cr.sels.size(); ++i) {
    if (i < 64 && ((pushed >> i) & 1)) continue;
    const CompiledSelection& sel = cr.sels[i];
    Value sa, sb;
    const Value* a = sel.lhs.eval_ref(frame_, sa);
    const Value* b = sel.rhs.eval_ref(frame_, sb);
    if (a == nullptr || b == nullptr || !ndlog::cmp_eval(sel.op, *a, *b)) {
      frame_.undo_to(m);
      return;
    }
  }
  Tuple head;
  head.table = rule.head.table;
  head.row = acquire_row();
  head.row.reserve(cr.head_args.size());
  for (const SlotExpr& arg : cr.head_args) {
    Value v;
    if (!arg.eval(frame_, v)) {
      frame_.undo_to(m);
      return;
    }
    head.row.push_back(std::move(v));
  }
  ++firings_;
  if (opt_.record_provenance) {
    derive(cr, rule, node, nref, std::move(head), mask, cause_scratch_,
           body_scratch_);
  } else {
    derive(cr, rule, node, nref, std::move(head), mask, {}, {});
  }
  frame_.undo_to(m);
}

void Engine::derive(const CompiledRule& cr, const ndlog::Rule& rule,
                    const Value& src_node, NodeRef src_ref, Tuple head,
                    TagMask mask, std::span<const EventId> cause_events,
                    std::span<const TupleRef> body_refs) {
  EventId derive_ev = kNoEvent;
  TupleRef href = kNoTupleRef;
  if (opt_.record_provenance) {
    if (src_ref == kNoNode) src_ref = log_.intern_node(src_node);
    href = log_.pool().intern(cr.head_table, head.row);
    derive_ev = log_.append(EventKind::Derive, src_ref, href, mask,
                            cause_events, cr.log_rule);
    // body_refs[i] corresponds to rule.body[i] (the repair engine's
    // symbolic re-execution relies on this alignment).
    log_.add_derivation(cr.log_rule, href, body_refs, derive_ev);
  }
  EventId cause = derive_ev;
  const Value& dst = head.location();
  const bool local_head = dst == src_node;
  if (hooks_.is_local && !local_head && !hooks_.is_local(dst)) {
    // Cross-shard head: log the Send here, ship the tuple to the owning
    // shard (which logs the Receive and runs the appearance). The
    // DerivRecord stays in this shard's log — the rule fired here, and
    // deletion cascades walk the record where the body tuples live.
    EventId send_ev = kNoEvent;
    if (opt_.record_provenance) {
      send_ev = log_.append(EventKind::Send, src_ref, href, mask,
                            derive_ev == kNoEvent
                                ? std::span<const EventId>{}
                                : std::span<const EventId>{&derive_ev, 1});
    }
    hooks_.forward(std::move(head), mask, send_ev);
    return;
  }
  NodeRef dst_ref = local_head ? src_ref : kNoNode;
  if (!local_head && opt_.record_provenance) {
    dst_ref = log_.intern_node(dst);
    const EventId send_ev =
        log_.append(EventKind::Send, src_ref, href, mask,
                    derive_ev == kNoEvent
                        ? std::span<const EventId>{}
                        : std::span<const EventId>{&derive_ev, 1});
    cause = log_.append(EventKind::Receive, dst_ref, href, mask, {&send_ev, 1});
  }
  enqueue_appear(std::move(head), cr.head_table, mask, cause, href, dst_ref);
}

void Engine::retract(const Value& node, TableId tid, TupleRef ref) {
  Database* ndb = find_node_db(node);
  if (ndb == nullptr) return;
  TableStore* store = ndb->store_if(tid);
  if (store == nullptr) return;
  Entry* e = store->find_ref(ref);
  if (e == nullptr) return;
  e->support = 0;
  const TagMask tags = e->tags;
  e->tags = 0;
  if (opt_.record_provenance) {
    log_.append(EventKind::Disappear, node, ref, tags);
  }
  // The pool row is stable forever — safe to reference across the erase.
  const Row& row = log_.row_of(ref);
  const ndlog::TableDecl& decl = catalog_.decl(tid);
  if (!decl.keys.empty() && decl.keys.size() < decl.arity) {
    const Row key = catalog_.key_of(tid, row);
    if (store->ref_with_key(key) == ref) store->unindex_key(key);
  }
  store->erase_ref(ref);

  // Cascade: every live derivation that consumed the tuple loses support.
  // The callback walk visits the index bucket directly (no snapshot
  // vector); liveness is checked at visit time, so records cascaded away
  // by the recursion below are skipped exactly as the old re-check did.
  // All of it runs on handles — heads materialize only when shipped to a
  // peer shard.
  if (!opt_.record_provenance) return;
  log_.for_each_derivation_using(ref, [&](size_t idx) {
    DerivRecord& rec = log_.derivation(idx);
    rec.live = false;
    const TupleRef href = rec.head;
    const TableId htid = log_.table_of(href);
    const Value& hloc = log_.row_of(href)[0];
    log_.append(EventKind::Underive, hloc, href, kAllTags, {}, rec.rule);
    if (catalog_.is_event(htid)) return true;  // nothing stored
    if (hooks_.is_local && !hooks_.is_local(hloc)) {
      // The derived head lives on a peer shard: ship the support decrement
      // (receive_unsupport mirrors the inline decrement below).
      hooks_.forward_retract(log_.materialize(href));
      return true;
    }
    Database* hdb = find_node_db(hloc);
    if (hdb == nullptr) return true;
    TableStore* hstore = hdb->store_if(htid);
    if (hstore == nullptr) return true;
    Entry* he = hstore->find_ref(href);
    if (he == nullptr || he->support <= 0) return true;
    he->support -= 1;
    if (he->support <= 0) retract(hloc, htid, href);
    return true;
  });
}

bool Engine::unify_ops(const std::vector<ArgOp>& ops, const Row& row,
                       Frame& f) {
  for (const ArgOp& op : ops) {
    const Value& v = row[op.col];
    switch (op.kind) {
      case ArgOp::Kind::Const:
        if (!(op.cval == v)) return false;
        break;
      case ArgOp::Kind::Bind:
        f.bind(op.slot, v);
        break;
      case ArgOp::Kind::Check:
        if (!(f.slots[op.slot] == v)) return false;
        break;
    }
  }
  return true;
}

}  // namespace mp::eval
