#include "eval/engine.h"

namespace mp::eval {

bool eval_expr(const ndlog::Expr& e, const Env& env, Value& out) {
  using ndlog::Expr;
  switch (e.kind()) {
    case Expr::Kind::Const:
      out = e.cval();
      return true;
    case Expr::Kind::Var: {
      auto it = env.find(e.var_name());
      if (it == env.end()) return false;
      out = it->second;
      return true;
    }
    case Expr::Kind::Binary: {
      Value a, b;
      if (!eval_expr(*e.lhs(), env, a) || !eval_expr(*e.rhs(), env, b)) return false;
      if (!a.is_int() || !b.is_int()) return false;
      switch (e.op()) {
        case ndlog::ArithOp::Add: out = Value(a.as_int() + b.as_int()); return true;
        case ndlog::ArithOp::Sub: out = Value(a.as_int() - b.as_int()); return true;
        case ndlog::ArithOp::Mul: out = Value(a.as_int() * b.as_int()); return true;
        case ndlog::ArithOp::Div:
          if (b.as_int() == 0) return false;
          out = Value(a.as_int() / b.as_int());
          return true;
      }
      return false;
    }
  }
  return false;
}

Engine::Engine(ndlog::Program program, EngineOptions opt)
    : program_(std::move(program)), catalog_(program_), opt_(opt) {
  log_.attach(&catalog_);  // pool TableIds == catalog TableIds
  compiled_.reserve(program_.rules.size());
  for (const auto& rule : program_.rules) {
    compiled_.push_back(compile_rule(rule, catalog_, index_specs_));
    compiled_.back().log_rule = log_.intern_rule(rule.name);
  }
  history_.attach(&catalog_, &log_.pool(), opt_.use_indexes);
  triggers_by_table_.resize(catalog_.size());
  rule_restrict_.assign(program_.rules.size(), kAllTags);
  for (size_t r = 0; r < program_.rules.size(); ++r) {
    for (size_t b = 0; b < program_.rules[r].body.size(); ++b) {
      const TableId tid = catalog_.id_of(program_.rules[r].body[b].table);
      triggers_by_table_[tid].emplace_back(static_cast<uint32_t>(r),
                                           static_cast<uint32_t>(b));
    }
  }
}

Database& Engine::node_db(const Value& node) {
  auto [it, inserted] = nodes_.try_emplace(node);
  if (inserted) it->second.init(&catalog_, &index_specs_);
  return it->second;
}

TableId Engine::intern_extern_table(const std::string& name) {
  // One-entry cache: ids are stable and names unique, so a content match
  // can never be stale; a homogeneous insert stream pays one string
  // compare instead of a catalog hash per tuple.
  if (!extern_cache_valid_ || name != extern_name_cache_) {
    extern_id_cache_ = catalog_.intern(name);
    extern_name_cache_ = name;
    extern_cache_valid_ = true;
  }
  return extern_id_cache_;
}

Row Engine::acquire_row() {
  if (row_pool_.empty()) return Row();
  Row r = std::move(row_pool_.back());
  row_pool_.pop_back();
  r.clear();  // keeps the vector's capacity for the refill
  return r;
}

void Engine::release_row(Row&& row) {
  if (row_pool_.size() < 64) row_pool_.push_back(std::move(row));
}

void Engine::dispatch_external(const Tuple& t, TableId tid, TagMask tags,
                               EventId cause, TupleRef ref) {
  if (running_ || !queue_.empty()) {
    // Re-entrant entry (from an on_appear callback): queue it so the
    // outer drain keeps sequential order.
    enqueue_appear(t, tid, tags, cause, ref);
    run_queue();
    return;
  }
  // Direct dispatch: handle the external appearance in place — no queue
  // round trip, no Tuple copy — then drain the derived work it enqueued.
  // The step accounting mirrors what the queue pop would have charged;
  // running_ is held so callbacks that insert() enqueue, as they would
  // inside a queue drain.
  if (++steps_ > opt_.max_steps) {
    diverged_ = true;
    return;
  }
  running_ = true;
  handle_appear(t, tid, tags, cause, ref);
  running_ = false;
  run_queue();
}

void Engine::insert(const Tuple& t, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  const TableId tid = intern_extern_table(t.table);
  EventId cause = kNoEvent;
  TupleRef ref = kNoTupleRef;
  if (opt_.record_provenance) {
    ref = log_.pool().intern(tid, t.row);
    cause = log_.append(EventKind::Insert, t.location(), ref, tags);
  }
  dispatch_external(t, tid, tags, cause, ref);
  maybe_autocompact();
}

EventId Engine::receive_remote(Tuple t, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  const TableId tid = intern_extern_table(t.table);
  EventId cause = kNoEvent;
  TupleRef ref = kNoTupleRef;
  if (opt_.record_provenance) {
    ref = log_.pool().intern(tid, t.row);
    cause = log_.append(EventKind::Receive, t.location(), ref, tags);
  }
  dispatch_external(t, tid, tags, cause, ref);
  maybe_autocompact();
  return cause;
}

void Engine::receive_unsupport(const Tuple& head) {
  const TableId tid = catalog_.id_of(head.table);
  if (tid == ndlog::Catalog::kNoTable) return;
  auto node_it = nodes_.find(head.location());
  if (node_it == nodes_.end()) return;
  TableStore* store = node_it->second.store_if(tid);
  if (store == nullptr) return;
  Entry* e = store->find(head.row);
  if (e == nullptr || e->support <= 0) return;
  e->support -= 1;
  if (e->support <= 0) retract(head.location(), tid, head.row);
}

void Engine::stage_insert(const Tuple& t, TagMask tags,
                          const std::string*& last_name, TableId& last_id) {
  if (last_name == nullptr || t.table != *last_name) {
    last_id = catalog_.intern(t.table);
    last_name = &t.table;
  }
  EventId cause = kNoEvent;
  TupleRef ref = kNoTupleRef;
  if (opt_.record_provenance) {
    ref = log_.pool().intern(last_id, t.row);
    cause = log_.append(EventKind::Insert, t.location(), ref, tags);
  }
  dispatch_external(t, last_id, tags, cause, ref);
}

void Engine::insert_batch(std::span<const Tuple> batch, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  begin_bulk();
  const std::string* last_name = nullptr;
  TableId last_id = 0;
  for (const Tuple& t : batch) stage_insert(t, tags, last_name, last_id);
  end_bulk();
  maybe_autocompact();
}

void Engine::insert_batch(std::span<const std::pair<Tuple, TagMask>> batch) {
  begin_bulk();
  const std::string* last_name = nullptr;
  TableId last_id = 0;
  for (const auto& [t, tags] : batch) {
    stage_insert(t, opt_.tag_mode ? tags : kAllTags, last_name, last_id);
  }
  end_bulk();
  maybe_autocompact();
}

void Engine::remove(const Tuple& t) {
  remove_one(t);
  run_queue();
  maybe_autocompact();
}

void Engine::remove_batch(std::span<const Tuple> batch) {
  for (const Tuple& t : batch) remove_one(t);
  run_queue();
  maybe_autocompact();
}

void Engine::remove_one(const Tuple& t) {
  const TableId tid = catalog_.id_of(t.table);
  if (tid == ndlog::Catalog::kNoTable) return;
  auto node_it = nodes_.find(t.location());
  if (node_it == nodes_.end()) return;
  TableStore* store = node_it->second.store_if(tid);
  if (store == nullptr) return;
  Entry* e = store->find(t.row);
  if (e == nullptr || e->support <= 0) return;
  if (opt_.record_provenance) {
    log_.append(EventKind::Delete, t.location(),
                e->ref != kNoTupleRef ? e->ref : log_.pool().intern(tid, t.row),
                e->tags);
  }
  e->support -= 1;
  if (e->support <= 0) retract(t.location(), tid, t.row);
}

void Engine::maybe_autocompact() {
  // Only at a true top level: never mid-fixpoint (events later in the
  // drain may reference live entries) and never inside an enclosing batch
  // (the outermost end flushes once).
  if (running_ || bulk_depth_ > 0) return;
  if (opt_.compact_after_events == 0 && opt_.compact_after_bytes == 0) return;
  bool over = opt_.compact_after_events != 0 &&
              log_.live_size() > opt_.compact_after_events;
  if (!over && opt_.compact_after_bytes != 0) {
    // byte_estimate() walks the live suffix, but the policy keeps that
    // suffix bounded near the threshold, so the walk stays O(threshold).
    over = log_.byte_estimate() - log_.checkpoint_bytes() >
           opt_.compact_after_bytes;
  }
  if (over) log_.compact(opt_.compact_keep_live);
}

void Engine::begin_bulk() { ++bulk_depth_; }

void Engine::end_bulk() {
  if (--bulk_depth_ > 0) return;
  // One bulk index pass per store touched while the batch was staged.
  for (TableStore* store : bulk_stores_) store->set_deferred_indexing(false);
  bulk_stores_.clear();
}

bool Engine::exists(const Value& node, const std::string& table,
                    const Row& row) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.exists(table, row);
}

std::vector<Row> Engine::rows(const Value& node, const std::string& table) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return {};
  return it->second.rows(table);
}

std::vector<Tuple> Engine::all_tuples(const std::string& table) const {
  std::vector<Tuple> out;
  const TableId tid = catalog_.id_of(table);
  if (tid == ndlog::Catalog::kNoTable) return out;
  for (const auto& [node, db] : nodes_) {
    for (Row& row : db.rows(tid)) {
      out.push_back(Tuple{table, std::move(row)});
    }
  }
  return out;
}

size_t Engine::match_tuples(
    const std::string& table, const TuplePattern& pattern,
    const std::function<bool(const Value& node, const Row& row)>& fn) const {
  size_t matched = 0;
  const TableId tid = catalog_.id_of(table);
  if (tid == ndlog::Catalog::kNoTable) return matched;
  for (const auto& [node, db] : nodes_) {
    const TableStore* store = db.store_if(tid);
    if (store == nullptr) continue;
    for (const auto& [row, entry] : store->rows()) {
      if (entry.support <= 0 || !pattern.matches(row)) continue;
      ++matched;
      if (!fn(node, row)) return matched;
    }
  }
  return matched;
}

TagMask Engine::tags_of(const Value& node, const std::string& table,
                        const Row& row) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  const TableStore* t = it->second.table(table);
  if (t == nullptr) return 0;
  const Entry* e = t->find(row);
  return (e != nullptr && e->support > 0) ? e->tags : 0;
}

const Database* Engine::db(const Value& node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void Engine::on_appear(const std::string& table,
                       std::function<void(const Tuple&, TagMask)> cb) {
  const TableId tid = catalog_.intern(table);
  if (tid >= callbacks_.size()) callbacks_.resize(tid + 1);
  callbacks_[tid].push_back(std::move(cb));
}

void Engine::run_callbacks(TableId tid, const Tuple& t, TagMask tags) {
  if (tid >= callbacks_.size()) return;
  for (const auto& cb : callbacks_[tid]) cb(t, tags);
}

void Engine::set_rule_restrict(const std::string& rule, TagMask mask) {
  // By name, not by index: duplicate rule names (invalid but possible in
  // candidate programs) must all be restricted.
  for (size_t r = 0; r < program_.rules.size(); ++r) {
    if (program_.rules[r].name == rule) rule_restrict_[r] = mask;
  }
}

void Engine::enqueue_appear(Tuple t, TableId tid, TagMask tags, EventId cause,
                            TupleRef ref) {
  queue_.push_back(PendingAppear{std::move(t), tid, tags, cause, ref});
}

void Engine::run_queue() {
  if (running_) return;  // re-entrant insert from a callback: outer loop drains
  running_ = true;
  while (!queue_.empty()) {
    if (++steps_ > opt_.max_steps) {
      diverged_ = true;
      queue_.clear();
      break;
    }
    PendingAppear p = std::move(queue_.front());
    queue_.pop_front();
    handle_appear(p.tuple, p.table_id, p.tags, p.cause, p.ref);
    release_row(std::move(p.tuple.row));
  }
  running_ = false;
}

void Engine::handle_appear(const Tuple& tuple, TableId table_id, TagMask tags,
                           EventId cause, TupleRef ref) {
  const Value& node = tuple.location();
  const bool is_event = catalog_.is_event(table_id);
  EventId appear_ev = cause;
  if (opt_.record_provenance && ref == kNoTupleRef) {
    ref = log_.pool().intern(table_id, tuple.row);
  }

  if (!is_event) {
    TableStore& store = node_db(node).store(table_id);
    if (bulk_depth_ > 0 && !store.deferred_indexing()) {
      store.set_deferred_indexing(true);
      bulk_stores_.push_back(&store);
    }

    // Primary-key replacement: displace an existing row with the same key.
    const ndlog::TableDecl& decl = catalog_.decl(table_id);
    if (!decl.keys.empty() && decl.keys.size() < decl.arity) {
      const Row key = catalog_.key_of(table_id, tuple.row);
      if (auto old = store.row_with_key(key); old && *old != tuple.row) {
        const Entry* oe = store.find(*old);
        if (oe != nullptr && oe->support > 0) {
          retract(node, table_id, *old);
        }
      }
      store.index_key(key, tuple.row);
    }

    Entry& e = store.insert(tuple.row);
    const bool was_present = e.support > 0;
    const TagMask new_tags = opt_.tag_mode ? (e.tags | tags) : kAllTags;
    e.support += 1;
    const TagMask added_tags = opt_.tag_mode ? (new_tags & ~e.tags) : kAllTags;
    e.tags = new_tags;
    if (was_present && (!opt_.tag_mode || added_tags == 0)) {
      // Extra support for an already-visible row: no new appearance.
      return;
    }
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, node, ref, e.tags,
                              cause == kNoEvent
                                  ? std::span<const EventId>{}
                                  : std::span<const EventId>{&cause, 1});
      history_.record(table_id, ref);
    }
    e.appear_event = appear_ev;
    e.ref = ref;
  } else {
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, node, ref, tags,
                              cause == kNoEvent
                                  ? std::span<const EventId>{}
                                  : std::span<const EventId>{&cause, 1});
      history_.record(table_id, ref);
    }
  }

  run_callbacks(table_id, tuple, tags);

  fire_rules(node, tuple, table_id, tags, appear_ev, ref);
}

void Engine::fire_rules(const Value& node, const Tuple& trigger, TableId tid,
                        TagMask mask, EventId trigger_event,
                        TupleRef trigger_ref) {
  if (tid >= triggers_by_table_.size()) return;  // interned after construction
  auto node_it = nodes_.find(node);
  const Database* db = node_it == nodes_.end() ? nullptr : &node_it->second;
  for (const auto& [rule_idx, body_idx] : triggers_by_table_[tid]) {
    const CompiledRule& cr = compiled_[rule_idx];
    const TriggerPlan& tp = cr.triggers[body_idx];
    if (tp.dead) continue;
    TagMask rule_mask = mask;
    if (opt_.tag_mode) {
      rule_mask &= rule_restrict_[rule_idx];
      if (rule_mask == 0) continue;
    }
    if (trigger.row.size() != tp.arity) continue;
    frame_.reset(cr.nslots);
    if (!unify_ops(tp.trigger_ops, trigger.row, frame_)) continue;
    if (opt_.pushdown_selections && !eval_pushed_sels(cr, tp.trigger_sels)) {
      continue;
    }
    const ndlog::Rule& rule = program_.rules[rule_idx];
    if (opt_.record_provenance) {
      cause_scratch_.assign(rule.body.size(), kNoEvent);
      body_scratch_.assign(rule.body.size(), kNoTupleRef);
      cause_scratch_[body_idx] = trigger_event;
      body_scratch_[body_idx] = trigger_ref;
    }
    exec_step(cr, rule, tp, 0, db, node, rule_mask, trigger, trigger_event,
              trigger_ref);
    if (diverged_) return;
  }
}

bool Engine::eval_pushed_sels(const CompiledRule& cr,
                              const std::vector<uint32_t>& sels) {
  for (uint32_t i : sels) {
    const CompiledSelection& sel = cr.sels[i];
    Value sa, sb;
    const Value* a = sel.lhs.eval_ref(frame_, sa);
    const Value* b = sel.rhs.eval_ref(frame_, sb);
    if (a == nullptr || b == nullptr || !ndlog::cmp_eval(sel.op, *a, *b)) {
      return false;
    }
  }
  return true;
}

void Engine::exec_step(const CompiledRule& cr, const ndlog::Rule& rule,
                       const TriggerPlan& tp, size_t step_idx,
                       const Database* db, const Value& node, TagMask mask,
                       const Tuple& trigger, EventId trigger_event,
                       TupleRef trigger_ref) {
  if (++steps_ > opt_.max_steps) {
    diverged_ = true;
    return;
  }
  if (step_idx == tp.steps.size()) {
    finish_rule(cr, rule, tp, node, mask);
    return;
  }
  const AtomStep& st = tp.steps[step_idx];
  const bool pushdown = opt_.pushdown_selections;

  if (st.access == AtomStep::Access::TriggerSelf) {
    // Event tables cannot be joined from storage (they are transient); the
    // only way an event atom is satisfied is as the trigger itself.
    if (trigger.row.size() != st.arity) return;
    const size_t m = frame_.mark();
    if (unify_ops(st.full_ops, trigger.row, frame_) &&
        (!pushdown || eval_pushed_sels(cr, st.sels))) {
      if (opt_.record_provenance) {
        cause_scratch_[st.body_pos] = trigger_event;
        body_scratch_[st.body_pos] = trigger_ref;
      }
      exec_step(cr, rule, tp, step_idx + 1, db, node, mask, trigger,
                trigger_event, trigger_ref);
    }
    frame_.undo_to(m);
    return;
  }

  if (db == nullptr) return;
  const TableStore* store = db->store_if(st.table);
  if (store == nullptr) return;

  if (st.access == AtomStep::Access::Probe && opt_.use_indexes) {
    ++index_probes_;
    // probe_key_ is scratch: dead once probe() returns, so reuse across
    // recursion levels is safe.
    probe_key_.clear();
    probe_key_.reserve(st.key.size());
    for (const KeyPart& kp : st.key) {
      probe_key_.push_back(kp.is_const ? kp.cval : frame_.slots[kp.slot]);
    }
    const TableStore::Bucket* bucket =
        store->probe(static_cast<size_t>(st.index_id), probe_key_);
    if (bucket == nullptr) return;
    for (const TableStore::Item* item : *bucket) {
      const Entry& entry = item->second;
      if (entry.support <= 0) continue;
      const TagMask m2 = opt_.tag_mode ? (mask & entry.tags) : mask;
      if (opt_.tag_mode && m2 == 0) continue;
      if (item->first.size() != st.arity) continue;
      const size_t m = frame_.mark();
      if (unify_ops(st.residual_ops, item->first, frame_) &&
          (!pushdown || eval_pushed_sels(cr, st.sels))) {
        if (opt_.record_provenance) {
          cause_scratch_[st.body_pos] = entry.appear_event;
          body_scratch_[st.body_pos] = entry.ref;
        }
        exec_step(cr, rule, tp, step_idx + 1, db, node, m2, trigger,
                  trigger_event, trigger_ref);
      }
      frame_.undo_to(m);
      if (diverged_) return;
    }
    return;
  }

  // Full scan: atoms with zero bound columns, or use_indexes disabled.
  ++full_scans_;
  for (const auto& item : store->rows()) {
    const Entry& entry = item.second;
    if (entry.support <= 0) continue;
    const TagMask m2 = opt_.tag_mode ? (mask & entry.tags) : mask;
    if (opt_.tag_mode && m2 == 0) continue;
    if (item.first.size() != st.arity) continue;
    const size_t m = frame_.mark();
    if (unify_ops(st.full_ops, item.first, frame_) &&
        (!pushdown || eval_pushed_sels(cr, st.sels))) {
      if (opt_.record_provenance) {
        cause_scratch_[st.body_pos] = entry.appear_event;
        body_scratch_[st.body_pos] = entry.ref;
      }
      exec_step(cr, rule, tp, step_idx + 1, db, node, m2, trigger,
                trigger_event, trigger_ref);
    }
    frame_.undo_to(m);
    if (diverged_) return;
  }
}

void Engine::finish_rule(const CompiledRule& cr, const ndlog::Rule& rule,
                         const TriggerPlan& tp, const Value& node,
                         TagMask mask) {
  const size_t m = frame_.mark();
  // Assignments bind new slots in order, then selections filter —
  // skipping those already evaluated inside the join (pushdown); their
  // slots cannot have changed since (assignment-target selections are
  // never pushed).
  for (const CompiledAssign& asg : cr.assigns) {
    Value v;
    if (!asg.expr.eval(frame_, v)) {
      frame_.undo_to(m);
      return;
    }
    frame_.rebind(asg.slot, std::move(v));
  }
  const uint64_t pushed = opt_.pushdown_selections ? tp.pushed_mask : 0;
  for (size_t i = 0; i < cr.sels.size(); ++i) {
    if (i < 64 && ((pushed >> i) & 1)) continue;
    const CompiledSelection& sel = cr.sels[i];
    Value sa, sb;
    const Value* a = sel.lhs.eval_ref(frame_, sa);
    const Value* b = sel.rhs.eval_ref(frame_, sb);
    if (a == nullptr || b == nullptr || !ndlog::cmp_eval(sel.op, *a, *b)) {
      frame_.undo_to(m);
      return;
    }
  }
  Tuple head;
  head.table = rule.head.table;
  head.row = acquire_row();
  head.row.reserve(cr.head_args.size());
  for (const SlotExpr& arg : cr.head_args) {
    Value v;
    if (!arg.eval(frame_, v)) {
      frame_.undo_to(m);
      return;
    }
    head.row.push_back(std::move(v));
  }
  ++firings_;
  if (opt_.record_provenance) {
    derive(cr, rule, node, std::move(head), mask, cause_scratch_,
           body_scratch_);
  } else {
    derive(cr, rule, node, std::move(head), mask, {}, {});
  }
  frame_.undo_to(m);
}

void Engine::derive(const CompiledRule& cr, const ndlog::Rule& rule,
                    const Value& src_node, Tuple head, TagMask mask,
                    std::span<const EventId> cause_events,
                    std::span<const TupleRef> body_refs) {
  EventId derive_ev = kNoEvent;
  TupleRef href = kNoTupleRef;
  if (opt_.record_provenance) {
    href = log_.pool().intern(cr.head_table, head.row);
    derive_ev = log_.append(EventKind::Derive, src_node, href, mask,
                            cause_events, cr.log_rule);
    // body_refs[i] corresponds to rule.body[i] (the repair engine's
    // symbolic re-execution relies on this alignment).
    log_.add_derivation(cr.log_rule, href, body_refs, derive_ev);
  }
  EventId cause = derive_ev;
  const Value& dst = head.location();
  if (hooks_.is_local && !(dst == src_node) && !hooks_.is_local(dst)) {
    // Cross-shard head: log the Send here, ship the tuple to the owning
    // shard (which logs the Receive and runs the appearance). The
    // DerivRecord stays in this shard's log — the rule fired here, and
    // deletion cascades walk the record where the body tuples live.
    EventId send_ev = kNoEvent;
    if (opt_.record_provenance) {
      send_ev = log_.append(EventKind::Send, src_node, href, mask,
                            derive_ev == kNoEvent
                                ? std::span<const EventId>{}
                                : std::span<const EventId>{&derive_ev, 1});
    }
    hooks_.forward(std::move(head), mask, send_ev);
    return;
  }
  if (!(dst == src_node) && opt_.record_provenance) {
    const EventId send_ev =
        log_.append(EventKind::Send, src_node, href, mask,
                    derive_ev == kNoEvent
                        ? std::span<const EventId>{}
                        : std::span<const EventId>{&derive_ev, 1});
    cause = log_.append(EventKind::Receive, dst, href, mask, {&send_ev, 1});
  }
  enqueue_appear(std::move(head), cr.head_table, mask, cause, href);
}

void Engine::retract(const Value& node, TableId tid, const Row& row) {
  auto node_it = nodes_.find(node);
  if (node_it == nodes_.end()) return;
  TableStore* store = node_it->second.store_if(tid);
  if (store == nullptr) return;
  Entry* e = store->find(row);
  if (e == nullptr) return;
  e->support = 0;
  const TagMask tags = e->tags;
  const TupleRef ref = e->ref;
  e->tags = 0;
  if (opt_.record_provenance) {
    log_.append(EventKind::Disappear, node,
                ref != kNoTupleRef ? ref : log_.pool().intern(tid, row), tags);
  }
  const ndlog::TableDecl& decl = catalog_.decl(tid);
  if (!decl.keys.empty() && decl.keys.size() < decl.arity) {
    const Row key = catalog_.key_of(tid, row);
    if (auto cur = store->row_with_key(key); cur && *cur == row) {
      store->unindex_key(key);
    }
  }
  store->erase(row);  // nothing below touches `row` (it may alias the entry)

  // Cascade: every live derivation that consumed the tuple loses support.
  // The callback walk visits the index bucket directly (no snapshot
  // vector); liveness is checked at visit time, so records cascaded away
  // by the recursion below are skipped exactly as the old re-check did.
  // All of it runs on handles — heads materialize only when shipped to a
  // peer shard.
  if (!opt_.record_provenance || ref == kNoTupleRef) return;
  log_.for_each_derivation_using(ref, [&](size_t idx) {
    DerivRecord& rec = log_.derivation(idx);
    rec.live = false;
    const TupleRef href = rec.head;
    const TableId htid = log_.table_of(href);
    const Row& hrow = log_.row_of(href);
    const Value& hloc = hrow[0];
    log_.append(EventKind::Underive, hloc, href, kAllTags, {}, rec.rule);
    if (catalog_.is_event(htid)) return true;  // nothing stored
    if (hooks_.is_local && !hooks_.is_local(hloc)) {
      // The derived head lives on a peer shard: ship the support decrement
      // (receive_unsupport mirrors the inline decrement below).
      hooks_.forward_retract(log_.materialize(href));
      return true;
    }
    auto dst_it = nodes_.find(hloc);
    if (dst_it == nodes_.end()) return true;
    TableStore* hstore = dst_it->second.store_if(htid);
    if (hstore == nullptr) return true;
    Entry* he = hstore->find(hrow);
    if (he == nullptr || he->support <= 0) return true;
    he->support -= 1;
    if (he->support <= 0) retract(hloc, htid, hrow);
    return true;
  });
}

bool Engine::unify_ops(const std::vector<ArgOp>& ops, const Row& row,
                       Frame& f) {
  for (const ArgOp& op : ops) {
    const Value& v = row[op.col];
    switch (op.kind) {
      case ArgOp::Kind::Const:
        if (!(op.cval == v)) return false;
        break;
      case ArgOp::Kind::Bind:
        f.bind(op.slot, v);
        break;
      case ArgOp::Kind::Check:
        if (!(f.slots[op.slot] == v)) return false;
        break;
    }
  }
  return true;
}

}  // namespace mp::eval
