#include "eval/engine.h"

namespace mp::eval {

bool eval_expr(const ndlog::Expr& e, const Env& env, Value& out) {
  using ndlog::Expr;
  switch (e.kind()) {
    case Expr::Kind::Const:
      out = e.cval();
      return true;
    case Expr::Kind::Var: {
      auto it = env.find(e.var_name());
      if (it == env.end()) return false;
      out = it->second;
      return true;
    }
    case Expr::Kind::Binary: {
      Value a, b;
      if (!eval_expr(*e.lhs(), env, a) || !eval_expr(*e.rhs(), env, b)) return false;
      if (!a.is_int() || !b.is_int()) return false;
      switch (e.op()) {
        case ndlog::ArithOp::Add: out = Value(a.as_int() + b.as_int()); return true;
        case ndlog::ArithOp::Sub: out = Value(a.as_int() - b.as_int()); return true;
        case ndlog::ArithOp::Mul: out = Value(a.as_int() * b.as_int()); return true;
        case ndlog::ArithOp::Div:
          if (b.as_int() == 0) return false;
          out = Value(a.as_int() / b.as_int());
          return true;
      }
      return false;
    }
  }
  return false;
}

Engine::Engine(ndlog::Program program, EngineOptions opt)
    : program_(std::move(program)), catalog_(program_), opt_(opt) {
  for (size_t r = 0; r < program_.rules.size(); ++r) {
    for (size_t b = 0; b < program_.rules[r].body.size(); ++b) {
      trigger_index_[program_.rules[r].body[b].table].emplace_back(r, b);
    }
  }
}

void Engine::insert(const Tuple& t, TagMask tags) {
  if (!opt_.tag_mode) tags = kAllTags;
  EventId cause = kNoEvent;
  if (opt_.record_provenance) {
    cause = log_.append(EventKind::Insert, t.location(), t, tags);
  }
  enqueue_appear(t, tags, cause);
  run_queue();
}

void Engine::remove(const Tuple& t) {
  auto node_it = nodes_.find(t.location());
  if (node_it == nodes_.end()) return;
  TableStore& store = node_it->second.table(t.table);
  Entry* e = store.find(t.row);
  if (e == nullptr || e->support <= 0) return;
  if (opt_.record_provenance) {
    log_.append(EventKind::Delete, t.location(), t, e->tags);
  }
  e->support -= 1;
  if (e->support <= 0) retract(t.location(), t);
  run_queue();
}

bool Engine::exists(const Value& node, const std::string& table,
                    const Row& row) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.exists(table, row);
}

std::vector<Row> Engine::rows(const Value& node, const std::string& table) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return {};
  return it->second.rows(table);
}

std::vector<Tuple> Engine::all_tuples(const std::string& table) const {
  std::vector<Tuple> out;
  for (const auto& [node, db] : nodes_) {
    for (Row& row : db.rows(table)) {
      out.push_back(Tuple{table, std::move(row)});
    }
  }
  return out;
}

TagMask Engine::tags_of(const Value& node, const std::string& table,
                        const Row& row) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  const TableStore* t = it->second.table(table);
  if (t == nullptr) return 0;
  const Entry* e = t->find(row);
  return (e != nullptr && e->support > 0) ? e->tags : 0;
}

const Database* Engine::db(const Value& node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void Engine::on_appear(const std::string& table,
                       std::function<void(const Tuple&, TagMask)> cb) {
  callbacks_[table].push_back(std::move(cb));
}

void Engine::set_rule_restrict(const std::string& rule, TagMask mask) {
  rule_restrict_[rule] = mask;
}

void Engine::enqueue_appear(Tuple t, TagMask tags, EventId cause) {
  queue_.push_back(PendingAppear{std::move(t), tags, cause});
}

void Engine::run_queue() {
  if (running_) return;  // re-entrant insert from a callback: outer loop drains
  running_ = true;
  while (!queue_.empty()) {
    if (++steps_ > opt_.max_steps) {
      diverged_ = true;
      queue_.clear();
      break;
    }
    PendingAppear p = std::move(queue_.front());
    queue_.erase(queue_.begin());
    handle_appear(p);
  }
  running_ = false;
}

void Engine::handle_appear(const PendingAppear& p) {
  const Value& node = p.tuple.location();
  const bool is_event = catalog_.is_event(p.tuple.table);
  EventId appear_ev = p.cause;

  if (!is_event) {
    Database& db = nodes_[node];
    TableStore& store = db.table(p.tuple.table);

    // Primary-key replacement: displace an existing row with the same key.
    const ndlog::TableDecl* decl = catalog_.find(p.tuple.table);
    if (decl != nullptr && !decl->keys.empty() &&
        decl->keys.size() < decl->arity) {
      const Row key = catalog_.key_of(p.tuple.table, p.tuple.row);
      if (auto old = store.row_with_key(key); old && *old != p.tuple.row) {
        const Entry* oe = store.find(*old);
        if (oe != nullptr && oe->support > 0) {
          retract(node, Tuple{p.tuple.table, *old});
        }
      }
      store.index_key(key, p.tuple.row);
    }

    Entry& e = store.insert(p.tuple.row);
    const bool was_present = e.support > 0;
    const TagMask new_tags = opt_.tag_mode ? (e.tags | p.tags) : kAllTags;
    e.support += 1;
    const TagMask added_tags = opt_.tag_mode ? (new_tags & ~e.tags) : kAllTags;
    e.tags = new_tags;
    if (was_present && (!opt_.tag_mode || added_tags == 0)) {
      // Extra support for an already-visible row: no new appearance.
      return;
    }
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, node, p.tuple, e.tags,
                              p.cause == kNoEvent ? std::vector<EventId>{}
                                                  : std::vector<EventId>{p.cause});
    }
    e.appear_event = appear_ev;
  } else {
    if (opt_.record_provenance) {
      appear_ev = log_.append(EventKind::Appear, node, p.tuple, p.tags,
                              p.cause == kNoEvent ? std::vector<EventId>{}
                                                  : std::vector<EventId>{p.cause});
    }
  }

  auto cb_it = callbacks_.find(p.tuple.table);
  if (cb_it != callbacks_.end()) {
    for (const auto& cb : cb_it->second) cb(p.tuple, p.tags);
  }

  fire_rules(node, p.tuple, p.tags, appear_ev);
}

void Engine::fire_rules(const Value& node, const Tuple& trigger, TagMask mask,
                        EventId trigger_event) {
  auto it = trigger_index_.find(trigger.table);
  if (it == trigger_index_.end()) return;
  for (const auto& [rule_idx, body_idx] : it->second) {
    const ndlog::Rule& rule = program_.rules[rule_idx];
    TagMask rule_mask = mask;
    if (opt_.tag_mode) {
      auto rit = rule_restrict_.find(rule.name);
      if (rit != rule_restrict_.end()) rule_mask &= rit->second;
      if (rule_mask == 0) continue;
    }
    Env env;
    if (!unify(rule.body[body_idx], trigger.row, env)) continue;
    std::vector<size_t> remaining;
    for (size_t b = 0; b < rule.body.size(); ++b) {
      if (b != body_idx) remaining.push_back(b);
    }
    std::vector<EventId> causes{trigger_event};
    std::vector<Tuple> body_tuples{trigger};
    join_rest(rule, node, remaining, env, rule_mask, causes, body_tuples,
              trigger_event, trigger);
  }
}

void Engine::join_rest(const ndlog::Rule& rule, const Value& node,
                       std::vector<size_t>& remaining, Env& env, TagMask mask,
                       std::vector<EventId>& cause_events,
                       std::vector<Tuple>& body_tuples, EventId trigger_event,
                       const Tuple& trigger) {
  if (++steps_ > opt_.max_steps) {
    diverged_ = true;
    return;
  }
  if (remaining.empty()) {
    finish_rule(rule, node, env, mask, cause_events, body_tuples);
    return;
  }
  const size_t atom_idx = remaining.back();
  remaining.pop_back();
  const ndlog::Atom& atom = rule.body[atom_idx];

  // Event tables cannot be joined from storage (they are transient); the
  // only way an event atom is satisfied is as the trigger itself.
  if (!catalog_.is_event(atom.table)) {
    auto node_it = nodes_.find(node);
    if (node_it != nodes_.end()) {
      const Database& node_db = node_it->second;
      const TableStore* store = node_db.table(atom.table);
      if (store != nullptr) {
        for (const auto& [row, entry] : store->rows()) {
          if (entry.support <= 0) continue;
          TagMask m = opt_.tag_mode ? (mask & entry.tags) : mask;
          if (opt_.tag_mode && m == 0) continue;
          Env saved = env;
          if (unify(atom, row, env)) {
            cause_events.push_back(entry.appear_event);
            body_tuples.push_back(Tuple{atom.table, row});
            join_rest(rule, node, remaining, env, m, cause_events, body_tuples,
                      trigger_event, trigger);
            cause_events.pop_back();
            body_tuples.pop_back();
          }
          env = std::move(saved);
        }
      }
    }
  } else if (atom.table == trigger.table) {
    // Self-join with the triggering event tuple (rare but legal).
    Env saved = env;
    if (unify(atom, trigger.row, env)) {
      cause_events.push_back(trigger_event);
      body_tuples.push_back(trigger);
      join_rest(rule, node, remaining, env, mask, cause_events, body_tuples,
                trigger_event, trigger);
      cause_events.pop_back();
      body_tuples.pop_back();
    }
    env = std::move(saved);
  }
  remaining.push_back(atom_idx);
}

void Engine::finish_rule(const ndlog::Rule& rule, const Value& node, Env env,
                         TagMask mask, std::vector<EventId> cause_events,
                         std::vector<Tuple> body_tuples) {
  // Assignments bind new variables in order, then selections filter.
  for (const auto& asg : rule.assigns) {
    Value v;
    if (!eval_expr(*asg.expr, env, v)) return;
    env[asg.var] = std::move(v);
  }
  for (const auto& sel : rule.sels) {
    Value a, b;
    if (!eval_expr(*sel.lhs, env, a) || !eval_expr(*sel.rhs, env, b)) return;
    if (!ndlog::cmp_eval(sel.op, a, b)) return;
  }
  Tuple head;
  head.table = rule.head.table;
  head.row.reserve(rule.head.args.size());
  for (const auto& arg : rule.head.args) {
    Value v;
    if (!eval_expr(*arg, env, v)) return;
    head.row.push_back(std::move(v));
  }
  ++firings_;
  derive(rule, node, std::move(head), mask, std::move(cause_events),
         std::move(body_tuples));
}

void Engine::derive(const ndlog::Rule& rule, const Value& src_node, Tuple head,
                    TagMask mask, std::vector<EventId> cause_events,
                    std::vector<Tuple> body_tuples) {
  EventId derive_ev = kNoEvent;
  if (opt_.record_provenance) {
    derive_ev = log_.append(EventKind::Derive, src_node, head, mask,
                            cause_events, rule.name);
    DerivRecord rec;
    rec.derive_event = derive_ev;
    rec.rule = rule.name;
    rec.head = head;
    rec.body = body_tuples;
    log_.add_derivation(std::move(rec));
  }
  EventId cause = derive_ev;
  const Value& dst = head.location();
  if (!(dst == src_node) && opt_.record_provenance) {
    const EventId send_ev =
        log_.append(EventKind::Send, src_node, head, mask,
                    derive_ev == kNoEvent ? std::vector<EventId>{}
                                          : std::vector<EventId>{derive_ev});
    cause = log_.append(EventKind::Receive, dst, head, mask, {send_ev});
  }
  enqueue_appear(std::move(head), mask, cause);
}

void Engine::retract(const Value& node, const Tuple& t) {
  auto node_it = nodes_.find(node);
  if (node_it == nodes_.end()) return;
  TableStore& store = node_it->second.table(t.table);
  Entry* e = store.find(t.row);
  if (e == nullptr) return;
  e->support = 0;
  const TagMask tags = e->tags;
  e->tags = 0;
  if (opt_.record_provenance) {
    log_.append(EventKind::Disappear, node, t, tags);
  }
  const ndlog::TableDecl* decl = catalog_.find(t.table);
  if (decl != nullptr && !decl->keys.empty() && decl->keys.size() < decl->arity) {
    const Row key = catalog_.key_of(t.table, t.row);
    if (auto cur = store.row_with_key(key); cur && *cur == t.row) {
      store.unindex_key(key);
    }
  }
  store.erase(t.row);

  // Cascade: every live derivation that consumed t loses support.
  if (!opt_.record_provenance) return;
  for (size_t idx : log_.derivations_using(t)) {
    DerivRecord& rec = log_.derivation(idx);
    if (!rec.live) continue;
    rec.live = false;
    log_.append(EventKind::Underive, rec.head.location(), rec.head, kAllTags,
                {}, rec.rule);
    if (catalog_.is_event(rec.head.table)) continue;  // nothing stored
    auto dst_it = nodes_.find(rec.head.location());
    if (dst_it == nodes_.end()) continue;
    TableStore& hstore = dst_it->second.table(rec.head.table);
    Entry* he = hstore.find(rec.head.row);
    if (he == nullptr || he->support <= 0) continue;
    he->support -= 1;
    if (he->support <= 0) retract(rec.head.location(), rec.head);
  }
}

bool Engine::unify(const ndlog::Atom& atom, const Row& row, Env& env) {
  if (atom.args.size() != row.size()) return false;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const ndlog::Expr& arg = *atom.args[i];
    if (arg.is_const()) {
      if (!(arg.cval() == row[i])) return false;
    } else if (arg.is_var()) {
      auto [it, inserted] = env.try_emplace(arg.var_name(), row[i]);
      if (!inserted && !(it->second == row[i])) return false;
    } else {
      return false;  // binary exprs are not legal atom args
    }
  }
  return true;
}

}  // namespace mp::eval
