// Distributed NDlog evaluation engine.
//
// Each simulated node (controller, switch, host) holds a Database; rules
// fire in an event-driven fashion: when a tuple appears at a node, every
// rule with a matching body atom joins the remaining atoms against that
// node's materialized state, evaluates assignments then selections, and
// derives the head at the head's location (shipping a message if remote).
//
// - Event tables (declared `event`) are transient: they trigger rules and
//   callbacks but are not stored (NDlog message semantics).
// - Materialized tables use derivation-support counting; deleting a base
//   tuple cascades through recorded derivations (counting algorithm).
// - Tables with declared primary keys follow key-replacement semantics:
//   a new row with an existing key displaces the old row.
// - Tag mode (Section 4.4): every tuple carries a candidate bitmask; a
//   rule firing ANDs the masks of its body tuples and the rule's own
//   restriction mask; derived tuples accumulate tags. This implements the
//   paper's multi-query backtesting ("one tag per repair candidate").
// - All activity is recorded in the EventLog for provenance and replay.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/database.h"
#include "eval/event_log.h"
#include "ndlog/ast.h"
#include "ndlog/schema.h"

namespace mp::eval {

// Variable bindings during a join.
using Env = std::unordered_map<std::string, Value>;

// Evaluates an expression under bindings; returns false if a variable is
// unbound or arithmetic is invalid (e.g. division by zero, string arith).
bool eval_expr(const ndlog::Expr& e, const Env& env, Value& out);

struct EngineOptions {
  bool record_provenance = true;  // turn off to measure overhead (S5.4)
  bool tag_mode = false;
  size_t max_steps = 1'000'000;   // guard against runaway candidate programs
};

class Engine {
 public:
  explicit Engine(ndlog::Program program, EngineOptions opt = {});

  // External base-tuple insertion at tuple.location(). Runs the rule queue
  // to fixpoint before returning.
  void insert(const Tuple& t, TagMask tags = kAllTags);
  // External deletion of a base tuple; cascades through derivations.
  void remove(const Tuple& t);

  bool exists(const Value& node, const std::string& table, const Row& row) const;
  std::vector<Row> rows(const Value& node, const std::string& table) const;
  // All currently-live tuples of `table` across every node.
  std::vector<Tuple> all_tuples(const std::string& table) const;
  TagMask tags_of(const Value& node, const std::string& table, const Row& row) const;
  const Database* db(const Value& node) const;

  // Called whenever a tuple of `table` appears anywhere (controller proxy
  // hooks FlowTable/packetOut derivations here).
  void on_appear(const std::string& table,
                 std::function<void(const Tuple&, TagMask)> cb);

  // Restrict a rule to a candidate tag mask (multi-query backtesting).
  void set_rule_restrict(const std::string& rule, TagMask mask);

  EventLog& log() { return log_; }
  const EventLog& log() const { return log_; }
  const ndlog::Program& program() const { return program_; }
  const ndlog::Catalog& catalog() const { return catalog_; }

  bool diverged() const { return diverged_; }
  size_t steps() const { return steps_; }
  size_t rule_firings() const { return firings_; }

 private:
  struct PendingAppear {
    Tuple tuple;
    TagMask tags;
    EventId cause;  // event that produced it (Insert/Receive/Derive)
  };

  void enqueue_appear(Tuple t, TagMask tags, EventId cause);
  void run_queue();
  void handle_appear(const PendingAppear& p);
  void fire_rules(const Value& node, const Tuple& trigger, TagMask mask,
                  EventId trigger_event);
  void join_rest(const ndlog::Rule& rule, const Value& node,
                 std::vector<size_t>& remaining, Env& env, TagMask mask,
                 std::vector<EventId>& cause_events,
                 std::vector<Tuple>& body_tuples, EventId trigger_event,
                 const Tuple& trigger);
  void finish_rule(const ndlog::Rule& rule, const Value& node, Env env,
                   TagMask mask, std::vector<EventId> cause_events,
                   std::vector<Tuple> body_tuples);
  void derive(const ndlog::Rule& rule, const Value& src_node, Tuple head,
              TagMask mask, std::vector<EventId> cause_events,
              std::vector<Tuple> body_tuples);
  void retract(const Value& node, const Tuple& t);

  static bool unify(const ndlog::Atom& atom, const Row& row, Env& env);

  ndlog::Program program_;
  ndlog::Catalog catalog_;
  EngineOptions opt_;
  std::map<Value, Database> nodes_;
  EventLog log_;
  std::vector<PendingAppear> queue_;
  std::unordered_map<std::string, std::vector<std::function<void(const Tuple&, TagMask)>>>
      callbacks_;
  std::unordered_map<std::string, TagMask> rule_restrict_;
  // body-atom trigger index: table name -> (rule idx, body atom idx)
  std::unordered_map<std::string, std::vector<std::pair<size_t, size_t>>> trigger_index_;
  bool diverged_ = false;
  size_t steps_ = 0;
  size_t firings_ = 0;
  bool running_ = false;
};

}  // namespace mp::eval
