// Distributed NDlog evaluation engine.
//
// Each simulated node (controller, switch, host) holds a Database; rules
// fire in an event-driven fashion: when a tuple appears at a node, every
// rule with a matching body atom joins the remaining atoms against that
// node's materialized state, evaluates assignments then selections, and
// derives the head at the head's location (shipping a message if remote).
//
// - Rules are compiled once at construction (see eval/plan.h): table and
//   variable names are interned to dense ids, the join environment is a
//   flat slot frame with an undo trail, and every body atom with at least
//   one join-time-bound column is executed as a hash-index probe against
//   the TableStore's secondary indexes. Full scans remain only for atoms
//   with zero bound columns (or when EngineOptions::use_indexes is off,
//   which exists to cross-check the two paths in tests).
// - Event tables (declared `event`) are transient: they trigger rules and
//   callbacks but are not stored (NDlog message semantics).
// - Materialized tables use derivation-support counting; deleting a base
//   tuple cascades through recorded derivations (counting algorithm).
// - Tables with declared primary keys follow key-replacement semantics:
//   a new row with an existing key displaces the old row.
// - Tag mode (Section 4.4): every tuple carries a candidate bitmask; a
//   rule firing ANDs the masks of its body tuples and the rule's own
//   restriction mask; derived tuples accumulate tags. This implements the
//   paper's multi-query backtesting ("one tag per repair candidate").
// - All activity is recorded in the EventLog for provenance and replay.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/database.h"
#include "eval/event_log.h"
#include "eval/history.h"
#include "eval/plan.h"
#include "ndlog/ast.h"
#include "ndlog/schema.h"
#include "storage/segment_store.h"

namespace mp::eval {

// String-keyed variable bindings. The engine's own join path runs on the
// slot Frame from eval/plan.h; this map remains the interchange format for
// the repair engine's symbolic re-execution (src/repair/forest.cpp).
using Env = std::unordered_map<std::string, Value>;

// Evaluates an expression under bindings; returns false if a variable is
// unbound or arithmetic is invalid (e.g. division by zero, string arith).
bool eval_expr(const ndlog::Expr& e, const Env& env, Value& out);

struct EngineOptions {
  bool record_provenance = true;  // turn off to measure overhead (S5.4)
  bool tag_mode = false;
  bool use_indexes = true;        // off: force full scans (testing only)
  // Evaluate selections whose variables are bound mid-join during the
  // owning atom's probe/scan step instead of only at rule finish. Off:
  // finish-only evaluation (differential cross-check mode); the final
  // fixpoint, event log and derivations are identical either way (pinned
  // by tests/differential_test.cpp).
  bool pushdown_selections = true;
  // Columnar batched firing: when consecutive work-queue entries target
  // the same table (a cascade fan-out) and every trigger plan for that
  // table is pure (TriggerSelf-only), the lane is executed in three
  // phases — store pass, plan-major columnar matching into a staging
  // buffer, then tuple-major emission in the exact scalar order. Off:
  // tuple-at-a-time dispatch (differential cross-check mode); the event
  // log, derivations, step counts and fixpoint are identical either way
  // (pinned by tests/differential_test.cpp).
  bool batch_firing = true;
  // Struct-of-arrays hot columns: every TableStore of a columnar-eligible
  // table keeps the columns its plans' flattened predicates read in
  // per-column Value vectors (written on insert), and the batched firing
  // pass filters lanes through those contiguous columns instead of
  // chasing each row's heap vector. Off: the columnar pass reads rows
  // (differential cross-check mode); results are identical either way
  // (pinned by tests/differential_test.cpp). No effect unless
  // batch_firing is on.
  bool soa_columns = true;
  size_t max_steps = 1'000'000;   // guard against runaway candidate programs
  // Auto-compaction policy (the ROADMAP's "mechanism only, no policy"
  // item): after a top-level insert/remove reaches fixpoint, if the log's
  // live suffix exceeds compact_after_events events or compact_after_bytes
  // serialized bytes, the engine calls EventLog::compact() down to
  // compact_keep_live live events. 0 disables a threshold (both default
  // off: compaction drops in-memory Event structs, so provenance-graph
  // consumers that walk the live suffix must opt in deliberately). Event
  // ids, event_time() and replay stay valid across auto-compactions.
  size_t compact_after_events = 0;
  size_t compact_after_bytes = 0;
  size_t compact_keep_live = 256;
  // Durable event-log segments (src/storage). Non-empty: the engine owns
  // a SegmentStore rooted here and attaches it as the log's checkpoint
  // sink, so compact() sections rotate into append-only segment files
  // instead of accumulating in RAM; segment_store carries the rotation /
  // group-commit / fsync policy knobs. The directory must not already
  // hold events for a fresh engine (ids would collide) — to continue from
  // an existing directory, recover the store yourself, replay it into the
  // engine, then attach it via log().set_spill() (the wiring is pinned by
  // storage_test's RecoveryContinuation).
  std::string segment_dir;
  storage::SegmentStoreOptions segment_store;
};

class Engine {
 public:
  explicit Engine(ndlog::Program program, EngineOptions opt = {});
  // Publishes outstanding obs deltas (see publish_obs) before teardown.
  ~Engine();
  // Compiled plans and per-node stores point into catalog_/index_specs_.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // External base-tuple insertion at tuple.location(). Runs the rule queue
  // to fixpoint before returning.
  void insert(const Tuple& t, TagMask tags = kAllTags);
  // External deletion of a base tuple; cascades through derivations.
  void remove(const Tuple& t);

  // Batched insertion. Exactly equivalent to inserting each tuple in order
  // with insert() — identical final table states, EventLog contents (and
  // order), derivation records and firing counts — which the differential
  // harness (tests/batch_test.cpp, tests/differential_test.cpp) enforces.
  // The batch win is amortization, not a different evaluation order: every
  // store touched by the batch switches to deferred secondary-index
  // maintenance (one bulk pass per store, flushed lazily on probe and at
  // batch end; see TableStore::set_deferred_indexing), and table interning
  // is cached across the staging loop. Each staged tuple's derived closure
  // still runs to fixpoint before the next tuple is staged: letting queued
  // derived appearances race later batch tuples would change key-
  // replacement winners (last-appearance-wins is order-dependent) and
  // orphan tuples whose producing derivation was cascaded away while they
  // were still queued.
  void insert_batch(std::span<const Tuple> batch, TagMask tags = kAllTags);
  // Same, with a per-tuple tag mask (multi-query candidate insertion).
  void insert_batch(std::span<const std::pair<Tuple, TagMask>> batch);
  // Batched deletion: applies every removal (and its cascade) in order,
  // draining the work queue once at the end.
  void remove_batch(std::span<const Tuple> batch);

  // Explicit bulk-mode bracket: between begin_batch() and end_batch(),
  // single-tuple insert()/remove()/receive_remote() calls run with the
  // same deferred secondary-index maintenance as insert_batch (one bulk
  // pass per touched store, flushed at the outermost end). The sharded
  // runtime uses this to apply its per-shard streams tuple-at-a-time —
  // it needs the log position between tuples for the canonical merge —
  // without giving up the batch amortization. Nestable; equivalence with
  // un-bracketed evaluation is pinned by the differential harness.
  void begin_batch() { begin_bulk(); }
  void end_batch() {
    end_bulk();
    maybe_autocompact();
  }

  bool exists(const Value& node, const std::string& table, const Row& row) const;
  std::vector<Row> rows(const Value& node, const std::string& table) const;
  // All currently-live tuples of `table` across every node.
  std::vector<Tuple> all_tuples(const std::string& table) const;
  // Pattern-filtered, allocation-light variant: visits every currently-live
  // tuple of `table` matching `pattern` with its owning node — no Tuple is
  // materialized and no vector built. `fn` returns false to stop early.
  // Returns the number of matches visited.
  size_t match_tuples(const std::string& table, const TuplePattern& pattern,
                      const std::function<bool(const Value& node,
                                               const Row& row)>& fn) const;
  TagMask tags_of(const Value& node, const std::string& table, const Row& row) const;
  const Database* db(const Value& node) const;

  // Called whenever a tuple of `table` appears anywhere (controller proxy
  // hooks FlowTable/packetOut derivations here).
  void on_appear(const std::string& table,
                 std::function<void(const Tuple&, TagMask)> cb);

  // Restrict a rule to a candidate tag mask (multi-query backtesting).
  void set_rule_restrict(const std::string& rule, TagMask mask);

  // --- sharded-runtime hooks (src/runtime) -----------------------------
  // A ShardedEngine gives every shard its own Engine over a partition of
  // the node space. The hooks reroute the two places where evaluation
  // crosses a node boundary: a derivation whose head lands on a non-local
  // node is logged as a Send here and handed to `forward` (the peer shard
  // logs the matching Receive via receive_remote), and a deletion cascade
  // that reaches a non-local derived head hands the support decrement to
  // `forward_retract` (applied by the peer via receive_unsupport, which
  // logs no extra events — exactly mirroring the serial engine's inline
  // decrement). With no hooks installed (the default) behaviour is
  // unchanged.
  struct ShardHooks {
    std::function<bool(const Value& node)> is_local;
    std::function<void(Tuple t, TagMask tags, EventId send_event)> forward;
    std::function<void(Tuple head)> forward_retract;
  };
  void set_shard_hooks(ShardHooks hooks) { hooks_ = std::move(hooks); }
  // Delivers a tuple shipped by a peer shard: appends the Receive event to
  // this engine's log (its cross-shard cause is reconnected at merge
  // time), dispatches the appearance and runs to fixpoint. Returns the
  // Receive event's local id (kNoEvent with provenance off).
  EventId receive_remote(Tuple t, TagMask tags);
  // Applies a cross-shard deletion cascade step: the local copy of `head`
  // (derived remotely, shipped here) loses one unit of support.
  void receive_unsupport(const Tuple& head);

  EventLog& log() { return log_; }
  const EventLog& log() const { return log_; }
  // The durable segment store when EngineOptions::segment_dir is set
  // (nullptr otherwise).
  storage::SegmentStore* segments() { return segments_.get(); }
  const storage::SegmentStore* segments() const { return segments_.get(); }
  // Indexed historical-tuple store (every Appear is recorded here when
  // provenance recording is on); the repair and provenance layers' history
  // lookups probe it instead of scanning the log. The non-const accessor
  // exists so tests can re-attach the store in forced-scan mode and
  // cross-check the two probe paths.
  HistoryStore& history() { return history_; }
  const HistoryStore& history() const { return history_; }
  const ndlog::Program& program() const { return program_; }
  const ndlog::Catalog& catalog() const { return catalog_; }

  bool diverged() const { return diverged_; }
  size_t steps() const { return steps_; }
  size_t rule_firings() const { return firings_; }
  // Join-path access statistics: secondary-index probes vs. full table
  // scans executed by atom steps (the trigger atom itself is neither).
  size_t index_probes() const { return index_probes_; }
  size_t full_scans() const { return full_scans_; }
  // Columnar batched-firing statistics: lanes taken and tuples they
  // absorbed (tests assert the fast path actually engaged).
  size_t batched_lanes() const { return batched_lanes_; }
  size_t batched_tuples() const { return batched_tuples_; }
  // Lanes formed at the insert_batch entry point (try_insert_lane); they
  // count toward batched_lanes()/batched_tuples() as well.
  size_t entry_lanes() const { return entry_lanes_; }

  // --- observability (src/obs) -----------------------------------------
  // The per-engine counters above are the exact, test-pinned numbers for
  // THIS engine; the process-wide obs registry carries their cumulative
  // sum across every engine under `eval.engine.*`. Publication is
  // deliberately off the hot path: publish_obs() adds the delta since the
  // last publish into the registry (and sets the eval.engine.log_events
  // gauge) — called automatically from the destructor, and explicitly by
  // exporters (the pipeline, smoke's --metrics-out) that want the
  // registry current while engines are still alive. No-op when
  // obs::set_enabled(false); counters themselves never reset (windowed
  // readings come from obs::Snapshot::delta — see src/obs/README.md).
  void publish_obs();

 private:
  struct PendingAppear {
    Tuple tuple;
    TableId table_id = 0;
    TagMask tags = 0;
    EventId cause = kNoEvent;  // event that produced it (Insert/Receive/Derive)
    TupleRef ref = kNoTupleRef;  // interned handle (provenance on)
    NodeRef node_ref = kNoNode;  // interned location (provenance on); saves
                                 // re-interning tuple.location() per append
  };

  Database& node_db(const Value& node);
  TableId intern_extern_table(const std::string& name);
  Row acquire_row();
  void release_row(Row&& row);
  // Shared external-tuple dispatch (insert / receive_remote /
  // stage_insert): handle_appear in place at a true top level — no queue
  // round trip or Tuple copy — falling back to the queue when re-entrant.
  void dispatch_external(const Tuple& t, TableId tid, TagMask tags,
                         EventId cause, TupleRef ref, NodeRef nref);
  void enqueue_appear(Tuple t, TableId tid, TagMask tags, EventId cause,
                      TupleRef ref, NodeRef nref);
  // One insert_batch element: logs the Insert event, then dispatches the
  // appearance directly into handle_appear (no queue round trip) and runs
  // its derived closure to fixpoint; falls back to the queue when called
  // re-entrantly. `last_name`/`last_id` cache the previous table interning
  // so homogeneous batches hash each table name once.
  void stage_insert(const Tuple& t, TagMask tags, const std::string*& last_name,
                    TableId& last_id);
  void remove_one(const Tuple& t);
  // Bulk (deferred-index) mode brackets for insert_batch; nestable so
  // re-entrant batches from callbacks flush once, at the outermost end.
  void begin_bulk();
  void end_bulk();
  // Applies the EngineOptions auto-compaction policy; called when a
  // top-level mutation (never a nested or mid-fixpoint one) completes.
  void maybe_autocompact();
  // One staged columnar firing: the lane row it came from and the head
  // row it derived (mask = the firing's tag mask).
  struct StagedFiring {
    uint32_t row = 0;  // index into the lane
    TagMask mask = 0;
    Row head;
  };
  struct BulkBracket;  // RAII begin_bulk/end_bulk (defined in engine.cpp)
  void run_queue();
  // The drain loop proper; run_queue wraps it in the running_ bracket and
  // an unwind path (reset + queue discard) for exceptions thrown by
  // foreign code — callbacks, shard hooks, injected faults.
  void run_queue_body();
  // Columnar batched firing over a lane of consecutive same-table queue
  // entries (see the comment at the definition). Returns true when it
  // consumed the lane; false = not eligible, caller runs the scalar pop.
  bool run_batch_lane();
  // Computes (and caches) whether `tid` is eligible for columnar batched
  // firing, filling batch_step_cost_[tid] on the first Yes.
  bool ensure_batch_eligible(TableId tid);
  // Entry-lane eligibility (insert_batch lanes): batch-eligible AND safe
  // to pre-store a whole run before any tuple's cascade runs — see
  // try_insert_lane.
  bool ensure_entry_eligible(TableId tid);
  // Columnar lane formation at the insert_batch entry point: a run of >=2
  // consecutive same-table batch tuples is store-passed, matched plan-
  // major (shared columnar_fire), then emitted per tuple in the exact
  // scalar order with each tuple's cascade run to fixpoint before the
  // next. Returns true when it consumed the run; false = not eligible,
  // caller stages the run tuple-at-a-time.
  bool try_insert_lane(std::span<const Tuple> run, TableId tid, TagMask tags);
  // One row of lane input for columnar_fire, plus where its side outputs
  // go. `stores`/`slots` are per-row (stored lanes; nullptr for event
  // lanes) and feed the SoA predicate reads; `charges` non-null redirects
  // the per-group step charges into a per-row counter (entry lanes charge
  // at emission to keep the scalar steps_ trajectory) instead of steps_.
  struct LaneView {
    TableId tid = 0;
    size_t n = 0;
    const uint8_t* appears = nullptr;
    TableStore* const* stores = nullptr;
    const uint32_t* slots = nullptr;
    uint32_t* charges = nullptr;
  };
  // Plan-major columnar matching over a lane: runs every trigger plan of
  // lv.tid once across the lane's rows (row_at(i) -> const Row&,
  // in_tags(i) -> incoming TagMask), staging surviving head rows into
  // `firings` (one vector per plan, rows ascending). Shared by
  // run_batch_lane (queue lanes) and try_insert_lane (entry lanes).
  template <typename RowAt, typename TagsAt>
  void columnar_fire(const LaneView& lv, RowAt row_at, TagsAt in_tags,
                     std::vector<std::vector<StagedFiring>>& firings);
  void handle_appear(const Tuple& tuple, TableId table_id, TagMask tags,
                     EventId cause, TupleRef ref, NodeRef nref = kNoNode);
  void fire_rules(const Value& node, NodeRef nref, const Tuple& trigger,
                  TableId tid, TagMask mask, EventId trigger_event,
                  TupleRef trigger_ref);
  void exec_step(const CompiledRule& cr, const ndlog::Rule& rule,
                 const TriggerPlan& tp, size_t step_idx, const Database* db,
                 const Value& node, NodeRef nref, TagMask mask,
                 const Tuple& trigger, EventId trigger_event,
                 TupleRef trigger_ref);
  void run_callbacks(TableId tid, const Tuple& t, TagMask tags);
  void finish_rule(const CompiledRule& cr, const ndlog::Rule& rule,
                   const TriggerPlan& tp, const Value& node, NodeRef nref,
                   TagMask mask);
  // Evaluates pushed-down selections `sels` on the current frame; false =
  // some selection failed (prune this join branch).
  bool eval_pushed_sels(const CompiledRule& cr,
                        const std::vector<uint32_t>& sels);
  void derive(const CompiledRule& cr, const ndlog::Rule& rule,
              const Value& src_node, NodeRef src_ref, Tuple head, TagMask mask,
              std::span<const EventId> cause_events,
              std::span<const TupleRef> body_refs);
  void retract(const Value& node, TableId tid, TupleRef ref);

  static bool unify_ops(const std::vector<ArgOp>& ops, const Row& row,
                        Frame& f);

  // Cached result of the last nodes_ lookup (key points at the map node,
  // which is stable — nodes are never erased). A homogeneous stream pays
  // one Value compare instead of a tree walk per dispatch.
  Database* find_node_db(const Value& node);

  ndlog::Program program_;
  ndlog::Catalog catalog_;
  EngineOptions opt_;
  IndexSpecs index_specs_;
  std::vector<CompiledRule> compiled_;  // one per program rule
  // body-atom trigger index: TableId -> (rule idx, body atom idx)
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> triggers_by_table_;
  std::vector<TagMask> rule_restrict_;  // per rule idx, default kAllTags
  ShardHooks hooks_;  // empty functions = single-engine (serial) mode
  std::map<Value, Database> nodes_;
  // Two-entry node-db cache (keys point at map nodes, which are stable —
  // nodes are never erased). Two entries, not one: an external insert's
  // cascade alternates between the source node and the rule head's
  // destination every tuple, which thrashes a single slot into two tree
  // walks per tuple. MRU first; see find_node_db.
  const Value* node_cache_key_ = nullptr;
  Database* node_cache_db_ = nullptr;
  const Value* node_cache_key2_ = nullptr;
  Database* node_cache_db2_ = nullptr;
  // Durable checkpoint sink (EngineOptions::segment_dir); declared before
  // log_ so it outlives the log that spills into it.
  std::unique_ptr<storage::SegmentStore> segments_;
  EventLog log_;
  HistoryStore history_;
  std::deque<PendingAppear> queue_;
  // Appearance callbacks keyed by interned TableId (no string hash on the
  // appear path); slot resized on demand by on_appear().
  std::vector<std::vector<std::function<void(const Tuple&, TagMask)>>>
      callbacks_;
  // Join scratch, reused across firings (the join path is not re-entrant:
  // callbacks and derivations only enqueue work). Body provenance is
  // collected as interned handles — no Tuple is materialized on the join
  // path.
  Frame frame_;
  Row probe_key_;
  std::vector<EventId> cause_scratch_;
  std::vector<TupleRef> body_scratch_;
  // Recycled Row capacity for derived heads: finish_rule takes a row here,
  // run_queue returns it after the appearance is handled, so the
  // derive -> enqueue -> dispatch round trip does not malloc per firing.
  std::vector<Row> row_pool_;
  // One-entry table-interning cache for the external insert/receive entry
  // points (homogeneous streams hash the table name once, not per tuple).
  std::string extern_name_cache_;
  TableId extern_id_cache_ = 0;
  bool extern_cache_valid_ = false;
  // Bulk-mode state: stores switched to deferred indexing by the current
  // insert_batch (flushed when the outermost batch finishes).
  int bulk_depth_ = 0;
  std::vector<TableStore*> bulk_stores_;
  // Columnar batched-firing state (run_batch_lane). The eligibility of a
  // table is static apart from callback registration, so it is computed
  // once per table and cached; on_appear() invalidates the slot.
  enum class BatchEligible : uint8_t { Unknown, No, Yes };
  std::vector<BatchEligible> batch_eligible_;
  std::vector<size_t> batch_step_cost_;  // worst-case step charge per tuple
  std::vector<BatchEligible> entry_eligible_;  // insert_batch lanes
  // Per-table hot columns for the TableStore struct-of-arrays mirrors
  // (EngineOptions::soa_columns): the sorted union of every columnar
  // predicate column across a table's (all-pure) trigger plans. Fixed at
  // construction, shared by every node's stores via Database::init.
  SoaSpecs soa_specs_;
  // Lane scratch, reused across lanes (the batched path is not re-entrant:
  // eligible lanes have no callbacks, and derivations only enqueue).
  std::vector<PendingAppear> lane_;
  std::vector<uint8_t> lane_appears_;
  std::vector<TagMask> lane_tags_;  // post-merge tags the Appear records
  std::vector<uint32_t> lane_slots_;   // store slot per stored lane tuple
  std::vector<TableStore*> lane_stores_;  // store per stored lane tuple
  std::vector<uint32_t> match_;     // surviving lane indices, per plan
  std::vector<std::vector<StagedFiring>> lane_firings_;  // per plan
  std::vector<size_t> lane_cursor_;  // per-plan emission cursor
  // Entry-lane scratch (try_insert_lane). Separate from the queue-lane
  // arrays above: an entry lane's per-tuple cascades call run_queue,
  // whose own lanes clobber the lane_* scratch mid-emission.
  std::vector<uint8_t> entry_appears_;
  std::vector<TagMask> entry_tags_;      // post-merge tags per row
  std::vector<uint32_t> entry_slots_;
  std::vector<TableStore*> entry_stores_;
  std::vector<TupleRef> entry_refs_;
  std::vector<uint32_t> entry_charge_;   // per-row step charge (matching)
  std::vector<int> entry_prev_support_;  // store-pass undo (bail path)
  std::vector<TagMask> entry_prev_tags_;
  std::vector<std::vector<StagedFiring>> entry_firings_;
  std::vector<size_t> entry_cursor_;
  bool diverged_ = false;
  size_t steps_ = 0;
  size_t firings_ = 0;
  size_t index_probes_ = 0;
  size_t full_scans_ = 0;
  size_t batched_lanes_ = 0;
  size_t batched_tuples_ = 0;
  size_t entry_lanes_ = 0;
  // Counter values as of the last publish_obs() (same order as the
  // publication table in engine.cpp).
  size_t obs_published_[8] = {};
  bool running_ = false;
};

}  // namespace mp::eval
