// HistoryStore: the indexed historical-tuple layer carved out of EventLog.
//
// The paper's meta-provenance "history lookups" (Sections 3.1/4.2) ask one
// question over and over: which tuples of table T were *ever* observed
// matching a partially-bound pattern? The event log answers what happened
// and in what order; this store answers the lookup question without a
// linear walk. The split mirrors append-only log systems: an immutable
// compact record (EventLog, checkpointable) plus rebuildable secondary
// indexes (this store).
//
// - The store holds TupleRef handles into the engine's TuplePool (the same
//   interned storage the EventLog records), keyed by the catalog's dense
//   TableId and kept in first-appearance order. Interning makes dedup a
//   handle compare: record() is one flag test per appearance — the pool
//   already guarantees one handle per distinct tuple — instead of a
//   per-table hash-set insert of a full Tuple.
// - Secondary hash indexes reuse the engine's IndexSpecs registry and the
//   TableStore key-projection scheme: each distinct set of Eq-bound
//   columns a probe uses is registered on demand, built retroactively
//   over the recorded tuples once, and maintained incrementally on every
//   record() after that. Buckets hold positions in first-appearance
//   order, so an index hit enumerates exactly the same matches, in the
//   same order, as the linear scan it replaces.
// - probe() falls back to the ordered scan only for patterns with zero
//   Eq-bound columns (or when the owning engine runs with
//   EngineOptions::use_indexes off, the cross-checking test mode).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/plan.h"
#include "eval/tuple.h"
#include "eval/tuple_pool.h"
#include "ndlog/ast.h"
#include "ndlog/schema.h"

namespace mp::eval {

// A pattern constrains some columns of a table's rows. These types used to
// live in provenance/query.h; they moved into the evaluation layer so
// HistoryStore::probe and Engine::match_tuples can accept them without a
// dependency cycle (mp::prov keeps aliases for the old names).
struct FieldConstraint {
  size_t col = 0;
  ndlog::CmpOp op = ndlog::CmpOp::Eq;
  Value value;
  std::string to_string() const;
};

struct TuplePattern {
  std::string table;
  std::vector<FieldConstraint> fields;
  bool matches(const Row& row) const;
  std::string to_string() const;
};

class HistoryStore {
 public:
  // Wires the catalog used to resolve string-keyed lookups, the tuple pool
  // the recorded handles point into, and the index mode (false = every
  // probe is an ordered scan; used to cross-check the two paths in tests).
  // Called once by the owning engine; tests re-attach to flip the mode.
  void attach(const ndlog::Catalog* catalog, const TuplePool* pool,
              bool use_indexes = true) {
    catalog_ = catalog;
    pool_ = pool;
    use_indexes_ = use_indexes;
  }

  // Records an observed tuple handle (first appearance wins; duplicates
  // are ignored — a one-flag handle compare, no hashing). Returns true if
  // the tuple was new. Maintains every secondary index already registered
  // for the table. `table` must be pool_->table(t).
  bool record(TableId table, TupleRef t);

  // All recorded tuple handles of a table, in first-appearance order.
  const std::vector<TupleRef>& rows(TableId table) const;
  const std::vector<TupleRef>& rows(const std::string& table) const;

  // Handle resolution (pool passthrough).
  const Row& row_of(TupleRef t) const { return pool_->row(t); }
  Tuple materialize(TupleRef t) const {
    return Tuple{catalog_->name_of(pool_->table(t)), pool_->row(t)};
  }

  // Visits every recorded tuple of `table` matching `pattern`, in
  // first-appearance order; `fn` returns false to stop early. Patterns
  // with at least one Eq-constrained column hit a secondary hash index
  // (registered and built on first use); the rest of the pattern filters
  // the bucket. Returns the number of candidate tuples examined (bucket
  // size on an index hit, full table history on the fallback scan) — the
  // quantity ExploreStats::history_tuples_scanned accumulates.
  size_t probe(TableId table, const TuplePattern& pattern,
               const std::function<bool(TupleRef)>& fn) const;
  // Same, resolving `pattern.table` through the catalog (unknown table:
  // zero matches).
  size_t probe(const TuplePattern& pattern,
               const std::function<bool(TupleRef)>& fn) const;

  size_t total() const { return total_; }
  // Access-path counters (mirrors Engine::index_probes/full_scans).
  size_t index_probes() const { return index_probes_; }
  size_t full_scans() const { return full_scans_; }

  void clear();

 private:
  struct PerTable {
    std::vector<TupleRef> rows;  // first-appearance order
    // One bucket map per registered column set (parallel to the specs_
    // entry for this table); buckets hold positions into `rows`. Mutable
    // members: indexes are a rebuildable cache registered/built lazily by
    // const probes, exactly like TableStore's. A deque, not a vector: a
    // probe callback may itself probe the same table with a fresh column
    // set, and the resulting emplace_back must not invalidate the outer
    // probe's reference to its bucket map.
    mutable std::deque<std::unordered_map<Row, std::vector<uint32_t>, RowHash>>
        indexes;
  };

  PerTable& table_slot(TableId table);
  const PerTable* table_if(TableId table) const {
    return table < tables_.size() ? &tables_[table] : nullptr;
  }
  // Registers `cols` for `table` if needed and builds the new index
  // retroactively; returns the dense index id.
  size_t ensure_index(TableId table, const PerTable& pt,
                      std::vector<uint32_t> cols) const;

  const ndlog::Catalog* catalog_ = nullptr;
  const TuplePool* pool_ = nullptr;
  bool use_indexes_ = true;
  mutable IndexSpecs specs_;       // Eq-column sets registered by probes
  std::deque<PerTable> tables_;    // by TableId; deque: rows() refs stay valid
  std::vector<uint8_t> recorded_;  // by TupleRef: handle already recorded
  size_t total_ = 0;
  mutable size_t index_probes_ = 0;
  mutable size_t full_scans_ = 0;
};

}  // namespace mp::eval
