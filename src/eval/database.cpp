#include "eval/database.h"

#include <algorithm>

namespace mp::eval {

Entry* TableStore::find(const Row& row) {
  auto it = rows_.find(row);
  return it == rows_.end() ? nullptr : &it->second;
}

const Entry* TableStore::find(const Row& row) const {
  auto it = rows_.find(row);
  return it == rows_.end() ? nullptr : &it->second;
}

Entry& TableStore::insert(const Row& row) {
  auto [it, inserted] = rows_.try_emplace(row);
  if (inserted && index_specs_ != nullptr) {
    if (deferred_) {
      index_backlog_.push_back(&*it);  // Items are node-stable
    } else {
      add_to_indexes(*it);
    }
  }
  return it->second;
}

void TableStore::erase(const Row& row) {
  auto it = rows_.find(row);
  if (it == rows_.end()) return;
  if (index_specs_ != nullptr) {
    // Flush before unindexing: the victim may still sit in the backlog,
    // and a backlog entry must never dangle past the row's lifetime.
    if (!index_backlog_.empty()) flush_index_backlog();
    remove_from_indexes(*it);
  }
  rows_.erase(it);
}

void TableStore::set_deferred_indexing(bool on) {
  deferred_ = on;
  if (!on && !index_backlog_.empty()) flush_index_backlog();
}

void TableStore::flush_index_backlog() const {
  // No pre-reserve: repeated flushes on a growing index would force a
  // full rehash per flush (the bucket count is already grown geometrically
  // by the inserts themselves).
  for (const Item* item : index_backlog_) add_to_indexes(*item);
  index_backlog_.clear();
}

void TableStore::add_to_indexes(const Item& item) const {
  Row key;
  for (size_t i = 0; i < index_specs_->size(); ++i) {
    if (!project_key(item.first, (*index_specs_)[i], key)) continue;
    indexes_[i][std::move(key)].push_back(&item);
    key = Row();  // moved-from: make reuse explicit
  }
}

void TableStore::remove_from_indexes(const Item& item) {
  Row key;
  for (size_t i = 0; i < index_specs_->size(); ++i) {
    if (!project_key(item.first, (*index_specs_)[i], key)) continue;
    auto bit = indexes_[i].find(key);
    if (bit == indexes_[i].end()) continue;
    Bucket& bucket = bit->second;
    auto pos = std::find(bucket.begin(), bucket.end(), &item);
    if (pos != bucket.end()) {
      *pos = bucket.back();
      bucket.pop_back();
    }
    if (bucket.empty()) indexes_[i].erase(bit);
  }
}

std::optional<Row> TableStore::row_with_key(const Row& key) const {
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return std::nullopt;
  return it->second;
}

void TableStore::index_key(const Row& key, const Row& row) {
  key_index_[key] = row;
}

void TableStore::unindex_key(const Row& key) { key_index_.erase(key); }

TableStore& Database::store(TableId id) {
  if (id >= stores_.size()) stores_.resize(id + 1);
  auto& slot = stores_[id];
  if (slot == nullptr) {
    slot = std::make_unique<TableStore>();
    if (specs_ != nullptr) slot->configure_indexes(specs_->for_table(id));
  }
  return *slot;
}

std::vector<Row> Database::rows(const std::string& table) const {
  if (catalog_ == nullptr) return {};
  const TableId id = catalog_->id_of(table);
  if (id == ndlog::Catalog::kNoTable) return {};
  return rows(id);
}

std::vector<Row> Database::rows(TableId id) const {
  std::vector<Row> out;
  const TableStore* t = store_if(id);
  if (t == nullptr) return out;
  for (const auto& [row, entry] : t->rows()) {
    if (entry.support > 0) out.push_back(row);
  }
  return out;
}

size_t Database::tuple_count() const {
  size_t n = 0;
  for (const auto& t : stores_) {
    if (t == nullptr) continue;
    for (const auto& [row, entry] : t->rows()) {
      if (entry.support > 0) ++n;
    }
  }
  return n;
}

}  // namespace mp::eval
