#include "eval/database.h"

namespace mp::eval {

Entry* TableStore::find(const Row& row) {
  auto it = rows_.find(row);
  return it == rows_.end() ? nullptr : &it->second;
}

const Entry* TableStore::find(const Row& row) const {
  auto it = rows_.find(row);
  return it == rows_.end() ? nullptr : &it->second;
}

Entry& TableStore::insert(const Row& row) { return rows_[row]; }

void TableStore::erase(const Row& row) { rows_.erase(row); }

std::optional<Row> TableStore::row_with_key(const Row& key) const {
  auto it = key_index_.find(key);
  if (it == key_index_.end()) return std::nullopt;
  return it->second;
}

void TableStore::index_key(const Row& key, const Row& row) {
  key_index_[key] = row;
}

void TableStore::unindex_key(const Row& key) { key_index_.erase(key); }

std::vector<Row> Database::rows(const std::string& table) const {
  std::vector<Row> out;
  const TableStore* t = this->table(table);
  if (t == nullptr) return out;
  for (const auto& [row, entry] : t->rows()) {
    if (entry.support > 0) out.push_back(row);
  }
  return out;
}

size_t Database::tuple_count() const {
  size_t n = 0;
  for (const auto& [name, t] : tables_) {
    for (const auto& [row, entry] : t.rows()) {
      if (entry.support > 0) ++n;
    }
  }
  return n;
}

}  // namespace mp::eval
