#include "eval/database.h"

#include <algorithm>

namespace mp::eval {

uint32_t TableStore::lookup_slot(TupleRef ref) const {
  if (map_count_ == 0 || ref == kNoTupleRef) return kNoSlot;
  size_t b = ref_bucket(ref, map_mask_);
  while (map_[b].first != 0) {
    if (map_[b].first == ref + 1) return map_[b].second;
    b = (b + 1) & map_mask_;
  }
  return kNoSlot;
}

void TableStore::map_grow() {
  const size_t cap = map_.empty() ? 16 : map_.size() * 2;
  std::vector<std::pair<uint32_t, uint32_t>> old = std::move(map_);
  map_.assign(cap, {0, 0});
  map_mask_ = cap - 1;
  for (const auto& [key, slot] : old) {
    if (key == 0) continue;
    size_t b = ref_bucket(key - 1, map_mask_);
    while (map_[b].first != 0) b = (b + 1) & map_mask_;
    map_[b] = {key, slot};
  }
}

void TableStore::map_put(TupleRef ref, uint32_t slot) {
  if ((map_count_ + 1) * 2 > map_.size()) map_grow();
  size_t b = ref_bucket(ref, map_mask_);
  while (map_[b].first != 0) b = (b + 1) & map_mask_;
  map_[b] = {ref + 1, slot};
  ++map_count_;
}

void TableStore::map_erase(TupleRef ref) {
  size_t b = ref_bucket(ref, map_mask_);
  while (map_[b].first != ref + 1) {
    if (map_[b].first == 0) return;  // absent
    b = (b + 1) & map_mask_;
  }
  // Backward-shift deletion: pull every displaced follower of the probe
  // chain into the hole so lookups never need tombstones.
  size_t hole = b;
  size_t i = (b + 1) & map_mask_;
  while (map_[i].first != 0) {
    const size_t home = ref_bucket(map_[i].first - 1, map_mask_);
    if (((i - home) & map_mask_) >= ((i - hole) & map_mask_)) {
      map_[hole] = map_[i];
      hole = i;
    }
    i = (i + 1) & map_mask_;
  }
  map_[hole] = {0, 0};
  --map_count_;
}

Entry& TableStore::insert_ref(TupleRef ref) {
  assert(ref != kNoTupleRef);
  const uint32_t existing = lookup_slot(ref);
  if (existing != kNoSlot) return entries_[existing];
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = Entry{};
    slot_refs_[slot] = ref;
  } else {
    slot = static_cast<uint32_t>(entries_.size());
    entries_.emplace_back();
    slot_refs_.push_back(ref);
  }
  entries_[slot].ref = ref;
  map_put(ref, slot);
  ++live_;
  if (soa_cols_ != nullptr) write_soa(slot);
  if (index_specs_ != nullptr) {
    if (deferred_) {
      index_backlog_.push_back(slot);
    } else {
      add_to_indexes(slot);
    }
  }
  return entries_[slot];
}

void TableStore::erase_ref(TupleRef ref) {
  const uint32_t slot = lookup_slot(ref);
  if (slot == kNoSlot) return;
  if (index_specs_ != nullptr) {
    // Flush before unindexing: the victim may still sit in the backlog,
    // and a backlog slot must never dangle past the entry's lifetime
    // (the slot id is reused by the next insert).
    if (!index_backlog_.empty()) flush_index_backlog();
    remove_from_indexes(slot);
  }
  map_erase(ref);
  slot_refs_[slot] = kNoTupleRef;
  free_slots_.push_back(slot);
  --live_;
  if (soa_cols_ != nullptr) {
    // Drop the mirror's Value payloads with the row (strings would
    // otherwise stay pinned until the slot is reused).
    for (auto& col : soa_) col[slot] = Value();
  }
}

void TableStore::write_soa(uint32_t slot) {
  const Row& row = pool_->row(slot_refs_[slot]);
  for (size_t k = 0; k < soa_cols_->size(); ++k) {
    auto& col = soa_[k];
    if (slot >= col.size()) col.resize(slot + 1);
    const uint32_t c = (*soa_cols_)[k];
    col[slot] = c < row.size() ? row[c] : Value();
  }
}

void TableStore::set_deferred_indexing(bool on) {
  deferred_ = on;
  if (!on && !index_backlog_.empty()) flush_index_backlog();
}

void TableStore::flush_index_backlog() const {
  // No pre-reserve: repeated flushes on a growing index would force a
  // full rehash per flush (the bucket count is already grown geometrically
  // by the inserts themselves).
  for (uint32_t slot : index_backlog_) add_to_indexes(slot);
  index_backlog_.clear();
}

void TableStore::add_to_indexes(uint32_t slot) const {
  const Row& row = pool_->row(slot_refs_[slot]);
  Row key;
  for (size_t i = 0; i < index_specs_->size(); ++i) {
    if (!project_key(row, (*index_specs_)[i], key)) continue;
    indexes_[i][std::move(key)].push_back(slot);
    key = Row();  // moved-from: make reuse explicit
  }
}

void TableStore::remove_from_indexes(uint32_t slot) {
  const Row& row = pool_->row(slot_refs_[slot]);
  Row key;
  for (size_t i = 0; i < index_specs_->size(); ++i) {
    if (!project_key(row, (*index_specs_)[i], key)) continue;
    auto bit = indexes_[i].find(key);
    if (bit == indexes_[i].end()) continue;
    Bucket& bucket = bit->second;
    auto pos = std::find(bucket.begin(), bucket.end(), slot);
    if (pos != bucket.end()) {
      *pos = bucket.back();
      bucket.pop_back();
    }
    if (bucket.empty()) indexes_[i].erase(bit);
  }
}

TableStore& Database::store(TableId id) {
  if (id >= stores_.size()) stores_.resize(id + 1);
  auto& slot = stores_[id];
  if (slot == nullptr) {
    slot = std::make_unique<TableStore>();
    slot->attach(pool_, id);
    if (specs_ != nullptr) slot->configure_indexes(specs_->for_table(id));
    if (soa_ != nullptr && id < soa_->size() && !(*soa_)[id].empty()) {
      slot->configure_soa(&(*soa_)[id]);
    }
  }
  return *slot;
}

std::vector<Row> Database::rows(const std::string& table) const {
  if (catalog_ == nullptr) return {};
  const TableId id = catalog_->id_of(table);
  if (id == ndlog::Catalog::kNoTable) return {};
  return rows(id);
}

std::vector<Row> Database::rows(TableId id) const {
  std::vector<Row> out;
  const TableStore* t = store_if(id);
  if (t == nullptr) return out;
  for (uint32_t slot = 0; slot < t->slot_count(); ++slot) {
    if (t->ref_at(slot) == kNoTupleRef) continue;
    if (t->entry_at(slot).support > 0) out.push_back(t->row_at(slot));
  }
  return out;
}

size_t Database::tuple_count() const {
  size_t n = 0;
  for (const auto& t : stores_) {
    if (t == nullptr) continue;
    for (uint32_t slot = 0; slot < t->slot_count(); ++slot) {
      if (t->ref_at(slot) == kNoTupleRef) continue;
      if (t->entry_at(slot).support > 0) ++n;
    }
  }
  return n;
}

}  // namespace mp::eval
