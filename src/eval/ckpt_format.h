// Serialized checkpoint format primitives, shared by the EventLog's
// in-RAM checkpoint (eval/event_log.cpp) and the durable segment store
// (src/storage), whose SegmentReader must decode the exact same bytes
// with no live engine attached. One definition of the layout so the two
// decoders cannot drift.
//
// Entry layout v2 (little-endian, 22-byte fixed header):
//   u64 tags | u8 kind | u8 ncauses | u16 table_id | u16 rule_id |
//   u16 nvals | u16 node_id | u32 payload_len
// followed by payload: nvals row values (u8 tag, then i64 or u16 len +
// bytes), ncauses x u64 cause ids.
//
// v2 dropped the leading u64 time of v1: times are assigned densely in
// id order (EventLog::event_time() == id + 1), and both decoders already
// know every entry's id from its position — the in-RAM checkpoint from
// the entry index, the segment reader from the chunk header's first_id.
// Ten redundant bytes per entry bought nothing. ncauses also narrowed
// u16 -> u8, matching the 32-byte in-memory Event (an event's causes are
// one per body atom or a single link; the writer asserts the cap).
//
// String-table records (name blob): u8 kind (0 = table, 1 = rule) |
// u16 id | u16 len | bytes, or for nodes: u8 kind (2) | u16 id |
// serialized Value.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/value.h"

namespace mp::eval::ckpt {

inline constexpr size_t kHeaderBytes = 22;
inline constexpr uint16_t kNoRuleSerialized = 0xffff;

// Fixed byte offsets of the fields inside an entry header (the load path
// patches the u16 ids in place when translating a foreign checkpoint into
// the loading log's id space).
inline constexpr size_t kKindOffset = 8;
inline constexpr size_t kNCausesOffset = 9;
inline constexpr size_t kTableIdOffset = 10;
inline constexpr size_t kRuleIdOffset = 12;
inline constexpr size_t kNValsOffset = 14;
inline constexpr size_t kNodeIdOffset = 16;
inline constexpr size_t kPayloadLenOffset = 18;

// String-table record kinds.
inline constexpr uint8_t kNameTable = 0;
inline constexpr uint8_t kNameRule = 1;
inline constexpr uint8_t kNameNode = 2;

inline void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
inline void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void put_value(std::vector<uint8_t>& out, const Value& v) {
  out.push_back(v.is_int() ? 0 : 1);
  if (v.is_int()) {
    put_u64(out, static_cast<uint64_t>(v.as_int()));
  } else {
    put_u16(out, static_cast<uint16_t>(v.as_str().size()));
    out.insert(out.end(), v.as_str().begin(), v.as_str().end());
  }
}
inline size_t value_bytes(const Value& v) {
  return v.is_int() ? 1 + 8 : 1 + 2 + v.as_str().size();
}

inline uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline void set_u16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline uint32_t get_u32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
inline uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
inline Value get_value(const uint8_t*& p) {
  const uint8_t tag = *p++;
  if (tag == 0) {
    const uint64_t v = get_u64(p);
    p += 8;
    return Value(static_cast<int64_t>(v));
  }
  const uint16_t len = get_u16(p);
  p += 2;
  Value v = Value::str(std::string_view(reinterpret_cast<const char*>(p), len));
  p += len;
  return v;
}

// Size of one string-table record for a table/rule name.
inline size_t name_record_bytes(std::string_view name) {
  return 1 + 2 + 2 + name.size();
}

}  // namespace mp::eval::ckpt
