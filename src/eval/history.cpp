#include "eval/history.h"

#include <algorithm>

namespace mp::eval {

std::string FieldConstraint::to_string() const {
  return "col" + std::to_string(col) + " " + ndlog::to_string(op) + " " +
         value.to_string();
}

bool TuplePattern::matches(const Row& row) const {
  for (const auto& f : fields) {
    if (f.col >= row.size()) return false;
    if (!ndlog::cmp_eval(f.op, row[f.col], f.value)) return false;
  }
  return true;
}

std::string TuplePattern::to_string() const {
  std::string out = table + "[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += fields[i].to_string();
  }
  out += "]";
  return out;
}

HistoryStore::PerTable& HistoryStore::table_slot(TableId table) {
  if (table >= tables_.size()) tables_.resize(table + 1);
  return tables_[table];
}

bool HistoryStore::record(TableId table, TupleRef t) {
  // Interned handles make dedup a flag test: the pool guarantees one
  // handle per distinct (table, row), so "seen this handle" is exactly
  // "seen this tuple".
  if (t >= recorded_.size()) recorded_.resize(t + 1, 0);
  if (recorded_[t]) return false;
  recorded_[t] = 1;
  PerTable& pt = table_slot(table);
  const auto pos = static_cast<uint32_t>(pt.rows.size());
  pt.rows.push_back(t);
  ++total_;
  if (const auto* sets = specs_.for_table(table)) {
    // Indexes are registered (and back-filled) by probe; here we only
    // append the new position to each existing one.
    const Row& row = pool_->row(t);
    Row key;
    for (size_t i = 0; i < pt.indexes.size(); ++i) {
      if (!project_key(row, (*sets)[i], key)) continue;
      pt.indexes[i][std::move(key)].push_back(pos);
      key = Row();  // moved-from: make reuse explicit
    }
  }
  return true;
}

const std::vector<TupleRef>& HistoryStore::rows(TableId table) const {
  static const std::vector<TupleRef> kEmpty;
  const PerTable* pt = table_if(table);
  return pt == nullptr ? kEmpty : pt->rows;
}

const std::vector<TupleRef>& HistoryStore::rows(
    const std::string& table) const {
  static const std::vector<TupleRef> kEmpty;
  if (catalog_ == nullptr) return kEmpty;
  const TableId id = catalog_->id_of(table);
  return id == ndlog::Catalog::kNoTable ? kEmpty : rows(id);
}

size_t HistoryStore::ensure_index(TableId table, const PerTable& pt,
                                  std::vector<uint32_t> cols) const {
  const auto id =
      static_cast<size_t>(specs_.ensure(table, std::move(cols)));
  if (id < pt.indexes.size()) return id;  // already built
  const auto& sets = *specs_.for_table(table);
  Row key;
  while (pt.indexes.size() <= id) {
    const std::vector<uint32_t>& set = sets[pt.indexes.size()];
    auto& buckets = pt.indexes.emplace_back();
    // Retroactive build: positions appended ascending keeps every bucket
    // in first-appearance order, matching the scan the index replaces.
    for (uint32_t pos = 0; pos < pt.rows.size(); ++pos) {
      if (!project_key(pool_->row(pt.rows[pos]), set, key)) continue;
      buckets[std::move(key)].push_back(pos);
      key = Row();
    }
  }
  return id;
}

size_t HistoryStore::probe(TableId table, const TuplePattern& pattern,
                           const std::function<bool(TupleRef)>& fn) const {
  const PerTable* pt = table_if(table);
  if (pt == nullptr || pt->rows.empty()) return 0;

  // The Eq-constrained column set is the probe key; everything else (and
  // contradictory duplicate Eq constraints) filters via matches().
  std::vector<uint32_t> cols;
  if (use_indexes_) {
    for (const FieldConstraint& f : pattern.fields) {
      if (f.op != ndlog::CmpOp::Eq) continue;
      cols.push_back(static_cast<uint32_t>(f.col));
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }

  if (cols.empty()) {
    ++full_scans_;
    for (TupleRef t : pt->rows) {
      if (pattern.matches(pool_->row(t)) && !fn(t)) break;
    }
    return pt->rows.size();
  }

  ++index_probes_;
  const size_t id = ensure_index(table, *pt, cols);
  Row key;
  key.reserve(cols.size());
  for (uint32_t c : cols) {
    for (const FieldConstraint& f : pattern.fields) {
      if (f.op == ndlog::CmpOp::Eq && f.col == c) {
        key.push_back(f.value);  // first Eq per column builds the key
        break;
      }
    }
  }
  const auto& buckets = pt->indexes[id];
  auto it = buckets.find(key);
  if (it == buckets.end()) return 0;
  for (uint32_t pos : it->second) {
    const TupleRef t = pt->rows[pos];
    if (pattern.matches(pool_->row(t)) && !fn(t)) break;
  }
  return it->second.size();
}

size_t HistoryStore::probe(const TuplePattern& pattern,
                           const std::function<bool(TupleRef)>& fn) const {
  if (catalog_ == nullptr) return 0;
  const TableId id = catalog_->id_of(pattern.table);
  if (id == ndlog::Catalog::kNoTable) return 0;
  return probe(id, pattern, fn);
}

void HistoryStore::clear() {
  tables_.clear();
  recorded_.clear();
  specs_ = IndexSpecs();
  total_ = 0;
  index_probes_ = 0;
  full_scans_ = 0;
}

}  // namespace mp::eval
