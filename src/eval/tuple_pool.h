// TuplePool: per-engine interned tuple storage (the provenance fast path).
//
// Provenance recording used to copy a full Tuple (heap-owning table string
// + Row vector) into every Event, DerivRecord head/body slot and history
// entry. The pool stores each distinct (table, row) pair exactly once and
// hands out a 32-bit TupleRef; the slot keeps the dense TableId and the
// precomputed hash, so
//   - appending an event is a handle store, not a Tuple copy,
//   - equality anywhere downstream (history dedup, derivation-index
//     lookups) is a handle compare,
//   - the hash is computed once per distinct tuple, ever.
//
// Slots live in a deque so Row references stay stable forever: handles are
// never invalidated — not by pool growth, not by EventLog compaction
// (which drops Event structs but leaves the pool alone). The pool is
// append-only; it holds exactly the distinct-tuple set the HistoryStore
// needs anyway, so the marginal memory over the pre-pool layout is
// negative (events/derivations now share what history already stored).
//
// Dedup is an open-addressed index over the slots (refs + precomputed
// hashes, no keys duplicated). TableIds are whatever id space the owner
// uses — the engine's catalog ids, or a standalone EventLog's private
// catalog (see EventLog::attach); handles from different pools are only
// comparable after remapping (ShardedEngine::merged_log does this).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "eval/tuple.h"
#include "ndlog/schema.h"

namespace mp::eval {

// Same alias eval/plan.h declares (redeclaration of an identical alias is
// well-formed); event_log.h only needs this header.
using TableId = ndlog::Catalog::TableId;

using TupleRef = uint32_t;
inline constexpr TupleRef kNoTupleRef = ~TupleRef{0};

class TuplePool {
 public:

  // Interns (table, row); returns the existing handle if already present.
  TupleRef intern(TableId table, const Row& row);
  TupleRef intern(TableId table, Row&& row);
  // Lookup without insertion; kNoTupleRef when absent.
  TupleRef find(TableId table, const Row& row) const;

  TableId table(TupleRef r) const { return slots_[r].table; }
  const Row& row(TupleRef r) const { return slots_[r].row; }
  size_t hash(TupleRef r) const { return slots_[r].hash; }

  // Number of distinct tuples interned; refs are dense in [0, size()).
  size_t size() const { return slots_.size(); }
  void clear();

 private:
  struct Slot {
    Row row;
    size_t hash = 0;
    TableId table = 0;
  };

  static size_t key_hash(TableId table, const Row& row) {
    return hash_combine(0x9e3779b97f4a7c15ULL ^ table, hash_row(row));
  }
  // Probe for (table, row, h); returns the matching ref or the first empty
  // bucket index encoded as kNoTupleRef via `bucket_out`.
  TupleRef probe(TableId table, const Row& row, size_t h,
                 size_t* bucket_out) const;
  // Appends the slot and fills the probed bucket (shared intern tail).
  TupleRef insert_slot(size_t bucket, size_t h, TableId table, Row&& row);
  void grow();

  std::deque<Slot> slots_;         // ref -> slot; deque: rows stay stable
  std::vector<uint32_t> buckets_;  // open addressing; ref + 1, 0 = empty
  size_t mask_ = 0;                // buckets_.size() - 1 (power of two)
};

}  // namespace mp::eval
