// Append-only event log: the runtime's provenance record (Section 3.1).
// Every insert / derive / appear / send / receive / delete is logged with a
// logical timestamp and causal links. Three consumers read it:
//   - provenance graph construction (src/provenance),
//   - derivation-record lookups for meta-provenance (src/repair) — the
//     historical-tuple side of those lookups lives in the HistoryStore
//     (eval/history.h), carved out of this class so it can be indexed and
//     rebuilt independently of the immutable record,
//   - backtest replay and storage accounting (src/backtest, Section 5.4).
//
// Records are fixed-width handles into interned storage, not heap-owning
// structs: an Event carries a TupleRef into the log's TuplePool (32-bit
// handle; the pooled slot keeps the dense TableId and precomputed hash), an
// interned RuleId, and an (offset, count) view into the log's cause arena.
// DerivRecords likewise hold the head as a TupleRef and the body as a view
// into a TupleRef arena. Appending an event is therefore a few integer
// stores plus an arena copy of the cause ids — no table-string, Row or
// vector allocation — which is what closes the provenance-recording gap
// on the packet-processing hot path (BENCH_engine.json
// `provenance_overhead`). Consumers that need materialized tuples go
// through tuple_of()/materialize(); equality tests anywhere downstream
// are handle compares.
//
// Table names resolve through an ndlog::Catalog: an engine attach()es its
// own catalog (so TableIds match the engine's id space); a standalone log
// (merged shard logs, tests) owns a private catalog and interns lazily.
//
// The log is checkpointable: compact() serializes the oldest events into a
// fixed-header format (Section 5.4, layout in eval/ckpt_format.h) and
// drops their in-memory Event copies, so the record no longer grows
// without bound. Table and rule names are written once per checkpoint
// section into a string-table section (ckpt names blob) the first time an
// id is referenced; entries store the 16-bit ids. Ids stay stable across
// compaction — the id space is [0, size()), of which [base_id(), size())
// is held live — and replay (backtest::replay_base_stream) walks
// checkpoint + live suffix through for_each_event(). TupleRefs survive
// compaction: the pool is never truncated, so handles held by the history
// store or table entries remain valid (pinned by
// tests/tuple_pool_test.cpp).
//
// Checkpoints are recovery artifacts, not views of the live interners:
// load_checkpoint() installs a serialized checkpoint written by ANOTHER
// log as this log's compacted prefix, translating every 16-bit id through
// the checkpoint's own string-table section (never by assuming the writer
// shared this log's id space). A CheckpointSink (src/storage's durable
// segment store) can be attached with set_spill(): compact() sections
// then rotate into append-only segment files instead of accumulating in
// RAM, and for_each_event() streams the spilled prefix back through the
// sink's standalone decoder.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "eval/tuple.h"
#include "eval/tuple_pool.h"
#include "ndlog/schema.h"

namespace mp::eval {

using EventId = uint64_t;
using Time = uint64_t;
inline constexpr EventId kNoEvent = ~0ULL;

// Interned rule name (EventLog::intern_rule / rule_name).
using RuleId = uint32_t;
inline constexpr RuleId kNoRule = ~RuleId{0};

// Interned event-location Value (EventLog::intern_node / node_value).
// Fixed-width handle so Event stays trivially copyable: the old
// `Value node` member made every Event carry (and every log-vector
// growth copy) a 48-byte Value with a live std::string.
using NodeRef = uint32_t;
inline constexpr NodeRef kNoNode = ~NodeRef{0};

enum class EventKind : uint8_t {
  Insert,     // base tuple inserted externally
  Delete,     // base tuple deleted externally
  Derive,     // rule produced a tuple
  Underive,   // rule-produced support lost
  Appear,     // tuple became visible at a node
  Disappear,  // tuple vanished from a node
  Send,       // +tuple shipped to a remote node
  Receive,    // +tuple arrived from a remote node
};

const char* to_string(EventKind k);

// Tag bit marking a checkpoint-decoded Event whose causes live outside
// the arena: the low 63 bits of causes_begin then hold the address of the
// decoding cursor's (or segment reader's) own cause buffer, so a span
// taken from one decode survives decodes through other cursors. The bit
// is unreachable as a real arena offset (the arena would have to hold
// 2^60 ids) and never set in a user-space pointer on any supported
// platform.
inline constexpr uint64_t kDecodedCauseTag = 1ULL << 63;

// Events carry no timestamp field: append assigns logical times 1, 2, 3,
// ... in id order, so an event's time is always id + 1 (event_time()).
// Dropping the redundant u64 shrinks the live record from 48 to 40 bytes;
// the checkpoint format still stores the explicit u64 time per entry.
struct Event {
  EventId id = kNoEvent;
  uint64_t causes_begin = 0;     // absolute offset into the cause arena,
                                 // or kDecodedCauseTag | buffer address
  TagMask tags = kAllTags;
  NodeRef node = kNoNode;        // where it happened (EventLog::node_value)
  TupleRef tuple = kNoTupleRef;  // into the owning log's TuplePool
  RuleId rule = kNoRule;         // rule for Derive/Underive
  uint16_t ncauses = 0;          // direct causal predecessors
  EventKind kind = EventKind::Insert;
};
// The live suffix is a vector<Event> appended to on every recorded step;
// trivial copyability keeps its geometric growth a memmove.
static_assert(std::is_trivially_copyable_v<Event>);

// A derivation record links a derived head tuple to the concrete body
// tuples that produced it; used for positive provenance trees and for
// support-count cascade on deletion. head/body are handles; body refs live
// in the owning log's body arena (EventLog::body_of).
struct DerivRecord {
  EventId derive_event = kNoEvent;
  uint64_t body_begin = 0;      // offset into the body-ref arena
  TupleRef head = kNoTupleRef;
  RuleId rule = kNoRule;
  // Next record with the same head, in insertion order (the head index is
  // an intrusive FIFO chain, not a per-ref vector: appending a derivation
  // allocates nothing).
  uint32_t next_same_head = ~uint32_t{0};
  uint16_t nbody = 0;
  bool live = true;  // false once the derivation has been retracted
};

// A checkpoint entry decoded with no pool, catalog or engine attached:
// names and location values are materialized from the checkpoint's own
// string-table section. This is what the durable segment store's
// standalone reader yields (storage::SegmentReader) and what the EventLog
// re-interns into pool-backed Events when replaying its spilled prefix.
// Views point into the producing reader's scratch and are valid only
// until it decodes the next entry.
struct RawEvent {
  EventId id = kNoEvent;         // time - 1 (times are dense in id order)
  TagMask tags = kAllTags;
  EventKind kind = EventKind::Insert;
  std::string_view table;
  std::string_view rule;         // empty = no rule
  const Value* node = nullptr;   // where it happened
  const Row* row = nullptr;      // decoded row values
  std::span<const EventId> causes;
};

// A durable home for compacted checkpoint sections. src/storage
// implements this over append-only segment files; the log hands every
// compact() section to the sink (dropping the RAM copy) and streams the
// spilled prefix back through replay_raw() when walking the full record.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  // Appends one serialized checkpoint section: `entries` covers events
  // [first_id, first_id + count) in the eval/ckpt_format.h entry layout,
  // `names` holds the string-table records the section references (each
  // section is self-contained: the log resets its name dedup per section
  // so a sink may rotate to a new segment file at any section boundary).
  virtual void append_section(EventId first_id, size_t count,
                              std::span<const uint8_t> entries,
                              std::span<const uint8_t> names) = 0;
  // Streams events [0, events()) in id order; `fn` returns false to stop.
  virtual void replay_raw(
      const std::function<bool(const RawEvent&)>& fn) const = 0;
  // Events held (contiguous id range [0, events())).
  virtual size_t events() const = 0;
  // On-disk footprint in bytes (file headers and chunk framing included).
  virtual size_t bytes() const = 0;
};

class EventLog {
 public:
  EventLog() {
    // Own a private catalog until (unless) an engine attach()es its own,
    // so names() is a plain dereference — never a lazy const mutation.
    own_names_ = std::make_unique<ndlog::Catalog>();
    names_ = own_names_.get();
  }
  EventLog(EventLog&&) = default;
  EventLog& operator=(EventLog&&) = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Uses `catalog` as the table-name space (the owning engine's), so
  // TableIds inside TupleRefs match the engine's ids. Must be called
  // before the first append. Without attach() the log uses its own
  // private catalog (standalone logs: merged shard logs, tests).
  void attach(ndlog::Catalog* catalog) { names_ = catalog; }

  TuplePool& pool() { return pool_; }
  const TuplePool& pool() const { return pool_; }

  // --- interning --------------------------------------------------------
  RuleId intern_rule(const std::string& name);
  const std::string& rule_name(RuleId id) const {
    static const std::string kEmpty;
    return id == kNoRule ? kEmpty : rule_names_[id];
  }
  // Interns an event-location Value to a dense handle. Two-entry cache:
  // the append hot path alternates between at most two nodes for long
  // external runs (a homogeneous stream's source location and the rule
  // head's destination), so the common case is a Value equality compare,
  // not a hash. Two entries, not one — a single entry thrashes on every
  // source -> destination transition within one insert's cascade.
  NodeRef intern_node(const Value& node) {
    if (node_cache_ref_ != kNoNode && node_values_[node_cache_ref_] == node) {
      return node_cache_ref_;
    }
    if (node_cache_ref2_ != kNoNode &&
        node_values_[node_cache_ref2_] == node) {
      std::swap(node_cache_ref_, node_cache_ref2_);  // keep MRU first
      return node_cache_ref_;
    }
    auto [it, inserted] =
        node_ids_.try_emplace(node, static_cast<NodeRef>(node_values_.size()));
    if (inserted) node_values_.push_back(node);
    node_cache_ref2_ = node_cache_ref_;
    node_cache_ref_ = it->second;
    return it->second;
  }
  const Value& node_value(NodeRef id) const {
    static const Value kNone;
    return id == kNoNode ? kNone : node_values_[id];
  }
  TupleRef intern_tuple(const std::string& table, const Row& row) {
    return pool_.intern(names().intern(table), row);
  }
  TupleRef intern_tuple(const Tuple& t) { return intern_tuple(t.table, t.row); }
  // Lookup without insertion (const contexts); kNoTupleRef when the tuple
  // was never recorded.
  TupleRef find_ref(const Tuple& t) const;

  // --- append (hot path) ------------------------------------------------
  // `tuple` must be a handle from this log's pool; `causes` is copied into
  // the cause arena. No allocation beyond amortized arena growth.
  EventId append(EventKind kind, const Value& node, TupleRef tuple,
                 TagMask tags, std::span<const EventId> causes = {},
                 RuleId rule = kNoRule);
  // Materialized variant (merge, replay, tests): interns the tuple (and
  // rule name) first.
  EventId append(EventKind kind, const Value& node, const Tuple& tuple,
                 TagMask tags, const std::vector<EventId>& causes = {},
                 const std::string& rule = {});

  // Appends a derivation record; `body` is copied into the body arena.
  // body[i] corresponds to rule.body[i]. Returns the record index.
  size_t add_derivation(RuleId rule, TupleRef head,
                        std::span<const TupleRef> body, EventId derive_event,
                        bool live = true);

  // --- access -----------------------------------------------------------
  // Live (un-compacted) suffix of the log; events()[i] has id base_id()+i.
  const std::vector<Event>& events() const { return events_; }
  // Valid only for live ids (id >= base_id()); compacted events are
  // reachable through for_each_event() / event_time().
  const Event& event(EventId id) const {
    assert(id >= base_id_ && id - base_id_ < events_.size());
    return events_[id - base_id_];
  }
  // Causal predecessors of `e`. For live events (and copies of them) the
  // span points into the cause arena: valid until the next append (which
  // may reallocate the arena) or compact (which may drop the prefix —
  // a copy of an event compacted since it was taken yields an empty
  // span; resolve through for_each_event instead). For checkpoint-decoded
  // events the span points into the producing DecodeCursor's (or segment
  // reader's) own buffer: valid until THAT cursor decodes its next entry,
  // so nested iteration — holding one decode's causes while another
  // cursor decodes — is safe (pinned by history_test).
  std::span<const EventId> causes_of(const Event& e) const;

  // Handle resolution.
  const Row& row_of(TupleRef r) const { return pool_.row(r); }
  TableId table_of(TupleRef r) const { return pool_.table(r); }
  const std::string& table_name(TupleRef r) const {
    return names().name_of(pool_.table(r));
  }
  Tuple materialize(TupleRef r) const {
    return Tuple{table_name(r), pool_.row(r)};
  }
  Tuple tuple_of(const Event& e) const { return materialize(e.tuple); }
  // Exact pre-pool Event::to_string() formatting (replay / trace output).
  std::string to_string(const Event& e) const;

  const std::vector<DerivRecord>& derivations() const { return derivations_; }
  DerivRecord& derivation(size_t idx) { return derivations_[idx]; }
  std::span<const TupleRef> body_of(const DerivRecord& rec) const {
    return {body_arena_.data() + rec.body_begin, rec.nbody};
  }
  Tuple head_of(const DerivRecord& rec) const { return materialize(rec.head); }

  // Indices of live derivation records whose head equals `t`.
  std::vector<size_t> derivations_of(TupleRef t) const;
  std::vector<size_t> derivations_of(const Tuple& t) const {
    return derivations_of(find_ref(t));
  }
  // Indices of live derivation records with `t` among their body tuples.
  std::vector<size_t> derivations_using(TupleRef t) const;
  std::vector<size_t> derivations_using(const Tuple& t) const {
    return derivations_using(find_ref(t));
  }
  // Allocation-light variants: visit indices of live records in insertion
  // order; `fn` returns false to stop. Templated so hot callers (retract
  // cascades) pay no std::function wrapping per call.
  template <typename Fn>
  void for_each_derivation_of(TupleRef t, Fn&& fn) const {
    constexpr uint32_t kNone = ~uint32_t{0};
    if (t == kNoTupleRef || t >= head_index_.size()) return;
    for (uint32_t idx = head_index_[t].first; idx != kNone;
         idx = derivations_[idx].next_same_head) {
      if (derivations_[idx].live && !fn(static_cast<size_t>(idx))) return;
    }
  }
  template <typename Fn>
  void for_each_derivation_using(TupleRef t, Fn&& fn) const {
    constexpr uint32_t kNone = ~uint32_t{0};
    if (t == kNoTupleRef || t >= body_index_.size()) return;
    for (uint32_t pos = body_index_[t].first; pos != kNone;
         pos = body_links_[pos].next) {
      const uint32_t idx = body_links_[pos].record;
      if (derivations_[idx].live && !fn(static_cast<size_t>(idx))) return;
    }
  }
  bool has_derivation_of(TupleRef t) const;
  bool has_derivation_of(const Tuple& t) const {
    return has_derivation_of(find_ref(t));
  }

  // Logical clock: times are assigned densely in append order, so the
  // current time is simply the event count.
  Time now() const { return size(); }

  // --- checkpoint + truncate (event-log compaction, Section 5.4) -------
  // Serializes all but the newest `keep_live` live events into the
  // checkpoint (the RAM buffer, or the attached CheckpointSink) and
  // erases their Event structs. Returns the number of events compacted.
  // Compaction stops early at the first event that exceeds the format's
  // u16 fields (a >64 KiB string, >65535 row values / causes, or a
  // table/rule id >= 0xffff — nothing the runtime produces): such an
  // event and everything after it stay live rather than corrupting the
  // decode. Derivation records (and the TuplePool) are unaffected;
  // derive_event ids remain resolvable via event_time().
  size_t compact(size_t keep_live = 0);
  EventId base_id() const { return base_id_; }
  size_t live_size() const { return events_.size(); }
  // Serialized checkpoint footprint: spilled segment bytes (if a sink is
  // attached) plus RAM entry bytes plus the string-table (names) section.
  size_t checkpoint_bytes() const {
    return spilled_bytes() + ckpt_.size() + ckpt_names_.size();
  }
  // Timestamp of any event, live or checkpointed: times are assigned
  // densely in append order, so this is id + 1 (the checkpoint stores the
  // explicit u64 too, for the on-disk format's sake).
  Time event_time(EventId id) const { return id + 1; }

  // Per-cursor decode state: each cursor owns the cause storage for the
  // checkpoint entries it decodes (the decoded Event's causes_begin
  // carries kDecodedCauseTag plus the buffer address, which causes_of()
  // resolves). A cursor's current event and causes stay valid until ITS
  // next decode — never clobbered by another cursor, which the old shared
  // mutable scratch silently did.
  class DecodeCursor {
   public:
    std::span<const EventId> causes() const {
      return {causes_.data(), causes_.size()};
    }

   private:
    friend class EventLog;
    std::vector<EventId> causes_;
  };

  // Walks the full event sequence in id order: the spilled prefix (sink
  // replay, re-interned into this log's pool), then RAM-checkpointed
  // entries decoded through a local cursor, then the live suffix in
  // place. Each decoded Event is valid only for the duration of the call.
  void for_each_event(const std::function<void(const Event&)>& fn) const;

  // Installs a serialized checkpoint — the exact bytes
  // checkpoint_entries()/checkpoint_names() expose — as this log's
  // compacted prefix. The log must be empty. Every 16-bit id in the
  // entries is translated through the checkpoint's OWN string-table
  // section (names re-interned into this log's catalog/interners, rows
  // interned into its pool), so a checkpoint written by a
  // differently-interned engine decodes identically here — decode never
  // assumes the writer shared this log's id space (pinned by
  // history_test's scrambled-catalog round trip).
  void load_checkpoint(std::span<const uint8_t> entries,
                       std::span<const uint8_t> names);
  // The RAM checkpoint sections in serialized form (a sink-attached log
  // keeps these empty; the bytes live in the segment files instead).
  std::span<const uint8_t> checkpoint_entries() const { return ckpt_; }
  std::span<const uint8_t> checkpoint_names() const { return ckpt_names_; }

  // Attaches (or detaches, with nullptr) a durable checkpoint sink.
  // Subsequent compact() sections go to the sink instead of RAM; an
  // existing RAM checkpoint is drained into it first, and live events the
  // sink already holds (recovery continuation: the caller replayed the
  // sink into this engine, then attached it) are dropped from RAM as
  // already-durable. Name dedup resets so every section is
  // self-contained. The sink must outlive the log (or be detached first).
  void set_spill(CheckpointSink* sink);
  CheckpointSink* spill() const { return spill_; }

  // Exact size of `e`'s entry in the serialized checkpoint format (header
  // + row values + cause ids; names and node values are accounted
  // separately, once per distinct id). byte_estimate() sums this over all
  // events plus the name records.
  size_t serialized_bytes(const Event& e) const;

  // On-disk footprint of the log in the serialized format: bytes already
  // written durably (segment files when a sink is attached — exact,
  // framing included — plus any RAM checkpoint sections) plus what
  // compacting the live suffix would add in entry + name-record payload
  // (computed on demand — it's a cold accessor, and append stays free of
  // accounting work).
  size_t byte_estimate() const;
  // Total events ever appended (compacted + live); ids are dense in
  // [0, size()).
  size_t size() const { return base_id_ + events_.size(); }
  void clear();

 private:
  ndlog::Catalog& names() { return *names_; }
  const ndlog::Catalog& names() const { return *names_; }
  void write_name_record(std::vector<uint8_t>& out, uint8_t kind, uint16_t id,
                         const std::string& name);
  void write_node_record(std::vector<uint8_t>& out, uint16_t id,
                         const Value& node);
  bool fits_checkpoint_format(const Event& e) const;
  void serialize(const Event& e, std::vector<uint8_t>& out) const;
  // Decodes RAM-checkpoint entry `entry` (index into ckpt_offsets_) into
  // `cur`'s storage.
  Event decode(size_t entry, DecodeCursor& cur) const;
  // Erases the oldest `n` live Event structs (after they became durable)
  // and drops the cause-arena prefix they owned.
  void drop_live_prefix(size_t n);
  // Streams the sink's events through fn as pool-backed Events (every
  // name/node/tuple in a self-spilled prefix is already interned, so this
  // is pure lookup — never an intern).
  void replay_spilled(const std::function<void(const Event&)>& fn) const;
  size_t spilled_bytes() const {
    return spill_ != nullptr ? spill_->bytes() : 0;
  }

  ndlog::Catalog* names_ = nullptr;  // attached or own_names_.get()
  std::unique_ptr<ndlog::Catalog> own_names_;
  TuplePool pool_;
  std::vector<std::string> rule_names_;
  std::unordered_map<std::string, RuleId> rule_ids_;
  // Node interner (intern_node / node_value). A deque: node_value() hands
  // out references that must survive later interns. Like the pool and the
  // rule interner, never truncated — NodeRefs inside checkpointed entries
  // stay resolvable forever.
  std::deque<Value> node_values_;
  std::unordered_map<Value, NodeRef, ValueHash> node_ids_;
  NodeRef node_cache_ref_ = kNoNode;
  NodeRef node_cache_ref2_ = kNoNode;

  std::vector<Event> events_;  // live suffix; events_[i].id == base_id_ + i
  // Cause arena: every event's causes are one contiguous run; compaction
  // drops the prefix below the first live event (cause_base_ rebases).
  std::vector<EventId> cause_arena_;
  uint64_t cause_base_ = 0;
  std::vector<DerivRecord> derivations_;
  std::vector<TupleRef> body_arena_;  // DerivRecord body refs
  // Derivation indexes addressed directly by the dense TupleRef (the pool
  // hands out ids contiguously): lookup is an array load, not a hash.
  // Both are intrusive FIFO chains — (first, last) record per ref, links
  // in next_same_head / body_links_ — so appending a derivation is a few
  // integer stores, never a per-ref vector allocation.
  struct ChainHead {
    uint32_t first = ~uint32_t{0};
    uint32_t last = ~uint32_t{0};
  };
  struct BodyLink {
    uint32_t record = ~uint32_t{0};  // derivation index of this occurrence
    uint32_t next = ~uint32_t{0};    // next body_links_ pos with same ref
  };
  std::vector<ChainHead> head_index_;      // by head TupleRef
  std::vector<ChainHead> body_index_;      // by body TupleRef
  std::vector<BodyLink> body_links_;       // parallel to body_arena_

  std::vector<uint8_t> ckpt_;          // serialized compacted entries (RAM)
  std::vector<size_t> ckpt_offsets_;   // entry i starts at ckpt_[offsets[i]]
  std::vector<uint8_t> ckpt_names_;    // string-table section (names, once)
  // Name-dedup per checkpoint unit: once per log lifetime for the RAM
  // checkpoint, reset per section when a sink is attached (each spilled
  // section must be self-contained so segments can rotate between any
  // two sections).
  std::vector<uint8_t> table_name_written_;  // by TableId
  std::vector<uint8_t> rule_name_written_;   // by RuleId
  std::vector<uint8_t> node_written_;        // by NodeRef
  CheckpointSink* spill_ = nullptr;
  EventId base_id_ = 0;
};

}  // namespace mp::eval
