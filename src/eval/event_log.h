// Append-only event log: the runtime's provenance record (Section 3.1).
// Every insert / derive / appear / send / receive / delete is logged with a
// logical timestamp and causal links. Three consumers read it:
//   - provenance graph construction (src/provenance),
//   - derivation-record lookups for meta-provenance (src/repair) — the
//     historical-tuple side of those lookups lives in the HistoryStore
//     (eval/history.h), carved out of this class so it can be indexed and
//     rebuilt independently of the immutable record,
//   - backtest replay and storage accounting (src/backtest, Section 5.4).
//
// Records are fixed-width handles into interned storage, not heap-owning
// structs: an Event carries a TupleRef into the log's TuplePool (32-bit
// handle; the pooled slot keeps the dense TableId and precomputed hash), an
// interned RuleId, and an (offset, count) view into the log's cause arena.
// DerivRecords likewise hold the head as a TupleRef and the body as a view
// into a TupleRef arena. Appending an event is therefore a few integer
// stores plus an arena copy of the cause ids — no table-string, Row or
// vector allocation — which is what closes the provenance-recording gap
// on the packet-processing hot path (BENCH_engine.json
// `provenance_overhead`). Consumers that need materialized tuples go
// through tuple_of()/materialize(); equality tests anywhere downstream
// are handle compares.
//
// Table names resolve through an ndlog::Catalog: an engine attach()es its
// own catalog (so TableIds match the engine's id space); a standalone log
// (merged shard logs, tests) owns a private catalog and interns lazily.
//
// The log is checkpointable: compact() serializes the oldest events into a
// fixed-header format (Section 5.4, layout in eval/ckpt_format.h) and
// drops their in-memory Event copies, so the record no longer grows
// without bound. Table and rule names are written once per checkpoint
// section into a string-table section (ckpt names blob) the first time an
// id is referenced; entries store the 16-bit ids. Ids stay stable across
// compaction — the id space is [0, size()), of which [base_id(), size())
// is held live — and replay (backtest::replay_base_stream) walks
// checkpoint + live suffix through for_each_event(). TupleRefs survive
// compaction: the pool is never truncated, so handles held by the history
// store or table entries remain valid (pinned by
// tests/tuple_pool_test.cpp).
//
// Checkpoints are recovery artifacts, not views of the live interners:
// load_checkpoint() installs a serialized checkpoint written by ANOTHER
// log as this log's compacted prefix, translating every 16-bit id through
// the checkpoint's own string-table section (never by assuming the writer
// shared this log's id space). A CheckpointSink (src/storage's durable
// segment store) can be attached with set_spill(): compact() sections
// then rotate into append-only segment files instead of accumulating in
// RAM, and for_each_event() streams the spilled prefix back through the
// sink's standalone decoder.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "eval/tuple.h"
#include "eval/tuple_pool.h"
#include "ndlog/schema.h"

namespace mp::eval {

using EventId = uint64_t;
using Time = uint64_t;
inline constexpr EventId kNoEvent = ~0ULL;

// Interned rule name (EventLog::intern_rule / rule_name). Event stores
// rule ids in 16 bits (the checkpoint format always did), so the no-rule
// sentinel is 0xffff — the same value the serialized format uses — and a
// u16 Event::rule compares against it correctly under integer promotion.
// intern_rule() asserts the id space stays below the sentinel.
using RuleId = uint32_t;
inline constexpr RuleId kNoRule = 0xffff;

// Interned event-location Value (EventLog::intern_node / node_value).
// Fixed-width handle so Event stays trivially copyable: the old
// `Value node` member made every Event carry (and every log-vector
// growth copy) a 48-byte Value with a live std::string.
using NodeRef = uint32_t;
inline constexpr NodeRef kNoNode = ~NodeRef{0};

enum class EventKind : uint8_t {
  Insert,     // base tuple inserted externally
  Delete,     // base tuple deleted externally
  Derive,     // rule produced a tuple
  Underive,   // rule-produced support lost
  Appear,     // tuple became visible at a node
  Disappear,  // tuple vanished from a node
  Send,       // +tuple shipped to a remote node
  Receive,    // +tuple arrived from a remote node
};

const char* to_string(EventKind k);

// Tag bit marking a checkpoint-decoded Event whose causes live outside
// the arena: the low 31 bits of causes_begin then hold a slot index into
// the log's cursor-buffer registry (cursor_bufs_), where the producing
// DecodeCursor (or the spilled-prefix replay) publishes the address of
// its own cause buffer. A span taken from one decode therefore survives
// decodes through other cursors, exactly as the PR 7 tagged-pointer
// scheme guaranteed — the indirection exists because a 64-bit pointer no
// longer fits the 32-bit field. The bit is unreachable as a real arena
// offset (append asserts the arena stays below 2^31 ids).
inline constexpr uint32_t kDecodedCauseTag = 1u << 31;

// 32-byte event record (wave 3; was 40 bytes, before that 48).
//   - No timestamp field: append assigns logical times 1, 2, 3, ... in id
//     order, so an event's time is always id + 1 (event_time()).
//   - causes_begin is a u32 offset RELATIVE to the current start of the
//     cause arena. compact() rebases live offsets to 0 when it drops the
//     arena prefix, so offsets never grow past the live arena size.
//   - gen is the log's 4-bit rebase generation: every rebase bumps it and
//     re-stamps the live events, so causes_of() can reject a stale COPY of
//     an event taken before a rebase (its offset now points at the wrong
//     ids). Live references are always current. The counter wraps mod 16 —
//     detection of copies held across 16+ rebases is best-effort, which
//     matches the old `causes_begin < cause_base_` check (it too passed
//     stale copies whose absolute offset happened to stay above the base).
//   - rule is the u16 id space the checkpoint format always used
//     (kNoRule == 0xffff fits); ncauses is capped at 255 by append (causes
//     per event = rule body size or 1).
struct Event {
  EventId id = kNoEvent;
  TagMask tags = kAllTags;
  uint32_t causes_begin = 0;     // arena-relative offset, or
                                 // kDecodedCauseTag | cursor-buffer slot
  NodeRef node = kNoNode;        // where it happened (EventLog::node_value)
  TupleRef tuple = kNoTupleRef;  // into the owning log's TuplePool
  uint16_t rule = static_cast<uint16_t>(kNoRule);  // for Derive/Underive
  uint8_t ncauses = 0;           // direct causal predecessors
  EventKind kind : 4 {EventKind::Insert};
  uint8_t gen : 4 {0};           // cause-arena rebase generation
};
// The live suffix is a vector<Event> appended to on every recorded step;
// trivial copyability keeps its geometric growth a memmove, and the exact
// 32-byte size keeps two events per cache line on the append hot path.
static_assert(std::is_trivially_copyable_v<Event>);
static_assert(sizeof(Event) == 32);

// A derivation record links a derived head tuple to the concrete body
// tuples that produced it; used for positive provenance trees and for
// support-count cascade on deletion. head/body are handles; body refs live
// in the owning log's body arena (EventLog::body_of).
struct DerivRecord {
  EventId derive_event = kNoEvent;
  uint64_t body_begin = 0;      // offset into the body-ref arena
  TupleRef head = kNoTupleRef;
  RuleId rule = kNoRule;
  // Previous record with the same head (the head index is an intrusive
  // chain, not a per-ref vector: appending a derivation allocates
  // nothing). Linked BACKWARD — the new record points at the old tail —
  // so an append writes only the hot just-pushed record and the chain
  // head, never a cold old record (the forward link used to be the one
  // guaranteed cache miss per derivation on the recording hot path).
  // Readers walk back and reverse (for_each_derivation_of), preserving
  // insertion-order visitation.
  uint32_t prev_same_head = ~uint32_t{0};
  uint16_t nbody = 0;
  bool live = true;  // false once the derivation has been retracted
};

// A checkpoint entry decoded with no pool, catalog or engine attached:
// names and location values are materialized from the checkpoint's own
// string-table section. This is what the durable segment store's
// standalone reader yields (storage::SegmentReader) and what the EventLog
// re-interns into pool-backed Events when replaying its spilled prefix.
// Views point into the producing reader's scratch and are valid only
// until it decodes the next entry.
struct RawEvent {
  EventId id = kNoEvent;         // time - 1 (times are dense in id order)
  TagMask tags = kAllTags;
  EventKind kind = EventKind::Insert;
  std::string_view table;
  std::string_view rule;         // empty = no rule
  const Value* node = nullptr;   // where it happened
  const Row* row = nullptr;      // decoded row values
  std::span<const EventId> causes;
};

// A durable home for compacted checkpoint sections. src/storage
// implements this over append-only segment files; the log hands every
// compact() section to the sink (dropping the RAM copy) and streams the
// spilled prefix back through replay_raw() when walking the full record.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  // Appends one serialized checkpoint section: `entries` covers events
  // [first_id, first_id + count) in the eval/ckpt_format.h entry layout,
  // `names` holds the string-table records the section references (each
  // section is self-contained: the log resets its name dedup per section
  // so a sink may rotate to a new segment file at any section boundary).
  // Returns true iff the sink accepted the section (it then counts toward
  // events() and replays through replay_raw). A sink that has latched
  // failed() returns false; compact() then keeps the section in RAM
  // instead — graceful degradation, no event is lost in-process.
  virtual bool append_section(EventId first_id, size_t count,
                              std::span<const uint8_t> entries,
                              std::span<const uint8_t> names) = 0;
  // Sticky terminal-failure latch: once true, every future append_section
  // returns false and the log stops offering sections (the sink's
  // existing events stay replayable).
  virtual bool failed() const { return false; }
  // Streams events [0, events()) in id order; `fn` returns false to stop.
  virtual void replay_raw(
      const std::function<bool(const RawEvent&)>& fn) const = 0;
  // Events held (contiguous id range [0, events())).
  virtual size_t events() const = 0;
  // On-disk footprint in bytes (file headers and chunk framing included).
  virtual size_t bytes() const = 0;
};

class EventLog {
 public:
  EventLog() {
    // Own a private catalog until (unless) an engine attach()es its own,
    // so names() is a plain dereference — never a lazy const mutation.
    own_names_ = std::make_unique<ndlog::Catalog>();
    names_ = own_names_.get();
  }
  EventLog(EventLog&&) = default;
  EventLog& operator=(EventLog&&) = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Uses `catalog` as the table-name space (the owning engine's), so
  // TableIds inside TupleRefs match the engine's ids. Must be called
  // before the first append. Without attach() the log uses its own
  // private catalog (standalone logs: merged shard logs, tests).
  void attach(ndlog::Catalog* catalog) { names_ = catalog; }

  TuplePool& pool() { return pool_; }
  const TuplePool& pool() const { return pool_; }

  // --- interning --------------------------------------------------------
  RuleId intern_rule(const std::string& name);
  const std::string& rule_name(RuleId id) const {
    static const std::string kEmpty;
    return id == kNoRule ? kEmpty : rule_names_[id];
  }
  // Interns an event-location Value to a dense handle. Two-entry cache:
  // the append hot path alternates between at most two nodes for long
  // external runs (a homogeneous stream's source location and the rule
  // head's destination), so the common case is a Value equality compare,
  // not a hash. Two entries, not one — a single entry thrashes on every
  // source -> destination transition within one insert's cascade.
  NodeRef intern_node(const Value& node) {
    if (node_cache_ref_ != kNoNode && node_values_[node_cache_ref_] == node) {
      return node_cache_ref_;
    }
    if (node_cache_ref2_ != kNoNode &&
        node_values_[node_cache_ref2_] == node) {
      std::swap(node_cache_ref_, node_cache_ref2_);  // keep MRU first
      return node_cache_ref_;
    }
    auto [it, inserted] =
        node_ids_.try_emplace(node, static_cast<NodeRef>(node_values_.size()));
    if (inserted) node_values_.push_back(node);
    node_cache_ref2_ = node_cache_ref_;
    node_cache_ref_ = it->second;
    return it->second;
  }
  const Value& node_value(NodeRef id) const {
    static const Value kNone;
    return id == kNoNode ? kNone : node_values_[id];
  }
  TupleRef intern_tuple(const std::string& table, const Row& row) {
    return pool_.intern(names().intern(table), row);
  }
  TupleRef intern_tuple(const Tuple& t) { return intern_tuple(t.table, t.row); }
  // Lookup without insertion (const contexts); kNoTupleRef when the tuple
  // was never recorded.
  TupleRef find_ref(const Tuple& t) const;

  // --- append (hot path) ------------------------------------------------
  // Primary form: every handle pre-interned, inline so the 32-byte record
  // build fuses into the caller. `tuple` must be a handle from this log's
  // pool, `node` from intern_node(); `causes` is copied into the cause
  // arena. No allocation beyond amortized arena growth.
  EventId append(EventKind kind, NodeRef node, TupleRef tuple, TagMask tags,
                 std::span<const EventId> causes = {}, RuleId rule = kNoRule) {
    // ncauses is 8 bits wide; nothing the runtime produces comes close
    // (causes per event = rule body size or 1), so cap instead of
    // recording a mod-256 count that would silently drop causal edges.
    assert(causes.size() <= 0xff);
    if (causes.size() > 0xff) causes = causes.first(0xff);
    assert(rule == kNoRule || rule < kNoRule);
    // Arena offsets must stay below the decoded-cause tag bit.
    assert(cause_arena_.size() + causes.size() < kDecodedCauseTag);
    const EventId id = size();
    // Build the record in registers and push it in one store: emplace_back()
    // followed by field-at-a-time writes costs a zero-init plus scattered
    // stores into freshly grown heap memory on this 40%-of-profile path.
    Event e;
    e.id = id;
    e.tags = tags;
    e.causes_begin = static_cast<uint32_t>(cause_arena_.size());
    e.node = node;
    e.tuple = tuple;
    e.rule = static_cast<uint16_t>(rule);
    e.ncauses = static_cast<uint8_t>(causes.size());
    e.kind = kind;
    e.gen = gen_;
    events_.push_back(e);
    // `causes` may alias this log's own arena (a span from causes_of(),
    // the natural way to duplicate an event): copy by index so push_back's
    // reallocation cannot invalidate the source mid-copy.
    const EventId* arena_begin = cause_arena_.data();
    if (!causes.empty() && causes.data() >= arena_begin &&
        causes.data() < arena_begin + cause_arena_.size()) {
      const size_t off = static_cast<size_t>(causes.data() - arena_begin);
      const size_t n = causes.size();
      for (size_t i = 0; i < n; ++i) {
        cause_arena_.push_back(cause_arena_[off + i]);
      }
    } else {
      cause_arena_.insert(cause_arena_.end(), causes.begin(), causes.end());
    }
    return id;
  }
  // Value-node form (interns the location first).
  EventId append(EventKind kind, const Value& node, TupleRef tuple,
                 TagMask tags, std::span<const EventId> causes = {},
                 RuleId rule = kNoRule) {
    return append(kind, intern_node(node), tuple, tags, causes, rule);
  }
  // Materialized variant (merge, replay, tests): interns the tuple (and
  // rule name) first.
  EventId append(EventKind kind, const Value& node, const Tuple& tuple,
                 TagMask tags, const std::vector<EventId>& causes = {},
                 const std::string& rule = {});

  // Appends a derivation record; `body` is copied into the body arena.
  // body[i] corresponds to rule.body[i]. Returns the record index.
  size_t add_derivation(RuleId rule, TupleRef head,
                        std::span<const TupleRef> body, EventId derive_event,
                        bool live = true);

  // --- access -----------------------------------------------------------
  // Live (un-compacted) suffix of the log; events()[i] has id base_id()+i.
  const std::deque<Event>& events() const { return events_; }
  // Valid only for live ids (id >= base_id()); compacted events are
  // reachable through for_each_event() / event_time().
  const Event& event(EventId id) const {
    assert(id >= base_id_ && id - base_id_ < events_.size());
    return events_[id - base_id_];
  }
  // Causal predecessors of `e`. For live events (and copies of them) the
  // span points into the cause arena: valid until the next append (which
  // may reallocate the arena) or compact (which may drop the prefix —
  // a copy of an event compacted since it was taken yields an empty
  // span; resolve through for_each_event instead). For checkpoint-decoded
  // events the span points into the producing DecodeCursor's (or segment
  // reader's) own buffer: valid until THAT cursor decodes its next entry,
  // so nested iteration — holding one decode's causes while another
  // cursor decodes — is safe (pinned by history_test).
  std::span<const EventId> causes_of(const Event& e) const;

  // Handle resolution.
  const Row& row_of(TupleRef r) const { return pool_.row(r); }
  TableId table_of(TupleRef r) const { return pool_.table(r); }
  const std::string& table_name(TupleRef r) const {
    return names().name_of(pool_.table(r));
  }
  Tuple materialize(TupleRef r) const {
    return Tuple{table_name(r), pool_.row(r)};
  }
  Tuple tuple_of(const Event& e) const { return materialize(e.tuple); }
  // Exact pre-pool Event::to_string() formatting (replay / trace output).
  std::string to_string(const Event& e) const;

  const std::vector<DerivRecord>& derivations() const { return derivations_; }
  DerivRecord& derivation(size_t idx) { return derivations_[idx]; }
  std::span<const TupleRef> body_of(const DerivRecord& rec) const {
    return {body_arena_.data() + rec.body_begin, rec.nbody};
  }
  Tuple head_of(const DerivRecord& rec) const { return materialize(rec.head); }

  // Indices of live derivation records whose head equals `t`.
  std::vector<size_t> derivations_of(TupleRef t) const;
  std::vector<size_t> derivations_of(const Tuple& t) const {
    return derivations_of(find_ref(t));
  }
  // Indices of live derivation records with `t` among their body tuples.
  std::vector<size_t> derivations_using(TupleRef t) const;
  std::vector<size_t> derivations_using(const Tuple& t) const {
    return derivations_using(find_ref(t));
  }
  // Visit indices of live records in insertion order; `fn` returns false
  // to stop. Templated so hot callers (retract cascades) pay no
  // std::function wrapping per call. The chains are stored newest-first
  // (see DerivRecord::prev_same_head), so visitation collects the chain
  // and reverses — a per-call vector on the cold query path bought the
  // append path its missing cache line.
  template <typename Fn>
  void for_each_derivation_of(TupleRef t, Fn&& fn) const {
    constexpr uint32_t kNone = ~uint32_t{0};
    if (t == kNoTupleRef || t >= head_index_.size()) return;
    std::vector<uint32_t> chain;
    for (uint32_t idx = head_index_[t]; idx != kNone;
         idx = derivations_[idx].prev_same_head) {
      chain.push_back(idx);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (derivations_[*it].live && !fn(static_cast<size_t>(*it))) return;
    }
  }
  template <typename Fn>
  void for_each_derivation_using(TupleRef t, Fn&& fn) const {
    constexpr uint32_t kNone = ~uint32_t{0};
    if (t == kNoTupleRef || t >= body_index_.size()) return;
    std::vector<uint32_t> chain;
    for (uint32_t pos = body_index_[t]; pos != kNone;
         pos = body_links_[pos].prev) {
      chain.push_back(body_links_[pos].record);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (derivations_[*it].live && !fn(static_cast<size_t>(*it))) return;
    }
  }
  bool has_derivation_of(TupleRef t) const;
  bool has_derivation_of(const Tuple& t) const {
    return has_derivation_of(find_ref(t));
  }

  // Logical clock: times are assigned densely in append order, so the
  // current time is simply the event count.
  Time now() const { return size(); }

  // --- checkpoint + truncate (event-log compaction, Section 5.4) -------
  // Serializes all but the newest `keep_live` live events into the
  // checkpoint (the RAM buffer, or the attached CheckpointSink) and
  // erases their Event structs. Returns the number of events compacted.
  // Compaction stops early at the first event that exceeds the format's
  // u16 fields (a >64 KiB string, >65535 row values / causes, or a
  // table/rule id >= 0xffff — nothing the runtime produces): such an
  // event and everything after it stay live rather than corrupting the
  // decode. Derivation records (and the TuplePool) are unaffected;
  // derive_event ids remain resolvable via event_time().
  size_t compact(size_t keep_live = 0);
  EventId base_id() const { return base_id_; }
  size_t live_size() const { return events_.size(); }
  // Serialized checkpoint footprint: spilled segment bytes (if a sink is
  // attached) plus RAM entry bytes plus the string-table (names) section.
  size_t checkpoint_bytes() const {
    return spilled_bytes() + ckpt_.size() + ckpt_names_.size();
  }
  // Timestamp of any event, live or checkpointed: times are assigned
  // densely in append order, so this is id + 1 (the checkpoint stores the
  // explicit u64 too, for the on-disk format's sake).
  Time event_time(EventId id) const { return id + 1; }

  // Per-cursor decode state: each cursor owns the cause storage for the
  // checkpoint entries it decodes. On first decode the cursor acquires a
  // slot in the log's cursor-buffer registry; the decoded Event's
  // causes_begin carries kDecodedCauseTag plus that slot index, and the
  // registry entry is refreshed to the cursor's current buffer address on
  // every decode (the buffer may reallocate). A cursor's current event
  // and causes stay valid until ITS next decode — never clobbered by
  // another cursor. The destructor releases the slot; a cursor must not
  // outlive the log it decoded from (all current uses are call-scoped).
  class DecodeCursor {
   public:
    DecodeCursor() = default;
    ~DecodeCursor();
    DecodeCursor(const DecodeCursor&) = delete;
    DecodeCursor& operator=(const DecodeCursor&) = delete;

    std::span<const EventId> causes() const {
      return {causes_.data(), causes_.size()};
    }

   private:
    friend class EventLog;
    std::vector<EventId> causes_;
    const EventLog* owner_ = nullptr;  // set once a registry slot is held
    uint32_t slot_ = 0;
  };

  // Walks the full event sequence in id order: the spilled prefix (sink
  // replay, re-interned into this log's pool), then RAM-checkpointed
  // entries decoded through a local cursor, then the live suffix in
  // place. Each decoded Event is valid only for the duration of the call.
  void for_each_event(const std::function<void(const Event&)>& fn) const;

  // Installs a serialized checkpoint — the exact bytes
  // checkpoint_entries()/checkpoint_names() expose — as this log's
  // compacted prefix. The log must be empty. Every 16-bit id in the
  // entries is translated through the checkpoint's OWN string-table
  // section (names re-interned into this log's catalog/interners, rows
  // interned into its pool), so a checkpoint written by a
  // differently-interned engine decodes identically here — decode never
  // assumes the writer shared this log's id space (pinned by
  // history_test's scrambled-catalog round trip).
  void load_checkpoint(std::span<const uint8_t> entries,
                       std::span<const uint8_t> names);
  // The RAM checkpoint sections in serialized form (a sink-attached log
  // keeps these empty; the bytes live in the segment files instead).
  std::span<const uint8_t> checkpoint_entries() const { return ckpt_; }
  std::span<const uint8_t> checkpoint_names() const { return ckpt_names_; }

  // Attaches (or detaches, with nullptr) a durable checkpoint sink.
  // Subsequent compact() sections go to the sink instead of RAM; an
  // existing RAM checkpoint is drained into it first, and live events the
  // sink already holds (recovery continuation: the caller replayed the
  // sink into this engine, then attached it) are dropped from RAM as
  // already-durable. Name dedup resets so every section is
  // self-contained. The sink must outlive the log (or be detached first).
  void set_spill(CheckpointSink* sink);
  CheckpointSink* spill() const { return spill_; }

  // Exact size of `e`'s entry in the serialized checkpoint format (header
  // + row values + cause ids; names and node values are accounted
  // separately, once per distinct id). byte_estimate() sums this over all
  // events plus the name records.
  size_t serialized_bytes(const Event& e) const;

  // On-disk footprint of the log in the serialized format: bytes already
  // written durably (segment files when a sink is attached — exact,
  // framing included — plus any RAM checkpoint sections) plus what
  // compacting the live suffix would add in entry + name-record payload
  // (computed on demand — it's a cold accessor, and append stays free of
  // accounting work).
  size_t byte_estimate() const;
  // Total events ever appended (compacted + live); ids are dense in
  // [0, size()).
  size_t size() const { return base_id_ + events_.size(); }
  void clear();

 private:
  ndlog::Catalog& names() { return *names_; }
  const ndlog::Catalog& names() const { return *names_; }
  void write_name_record(std::vector<uint8_t>& out, uint8_t kind, uint16_t id,
                         const std::string& name);
  void write_node_record(std::vector<uint8_t>& out, uint16_t id,
                         const Value& node);
  bool fits_checkpoint_format(const Event& e) const;
  void serialize(const Event& e, std::vector<uint8_t>& out) const;
  // Decodes RAM-checkpoint entry `entry` (index into ckpt_offsets_) into
  // `cur`'s storage.
  Event decode(size_t entry, DecodeCursor& cur) const;
  // Erases the oldest `n` live Event structs (after they became durable)
  // and drops the cause-arena prefix they owned.
  void drop_live_prefix(size_t n);
  // Streams the sink's events through fn as pool-backed Events (every
  // name/node/tuple in a self-spilled prefix is already interned, so this
  // is pure lookup — never an intern).
  void replay_spilled(const std::function<void(const Event&)>& fn) const;
  size_t spilled_bytes() const {
    return spill_ != nullptr ? spill_->bytes() : 0;
  }

  ndlog::Catalog* names_ = nullptr;  // attached or own_names_.get()
  std::unique_ptr<ndlog::Catalog> own_names_;
  TuplePool pool_;
  std::vector<std::string> rule_names_;
  std::unordered_map<std::string, RuleId> rule_ids_;
  // Node interner (intern_node / node_value). A deque: node_value() hands
  // out references that must survive later interns. Like the pool and the
  // rule interner, never truncated — NodeRefs inside checkpointed entries
  // stay resolvable forever.
  std::deque<Value> node_values_;
  std::unordered_map<Value, NodeRef, ValueHash> node_ids_;
  NodeRef node_cache_ref_ = kNoNode;
  NodeRef node_cache_ref2_ = kNoNode;

  std::deque<Event> events_;  // live suffix; events_[i].id == base_id_ + i
  // Cause arena: every event's causes are one contiguous run, addressed by
  // arena-relative u32 offsets. Compaction drops the prefix below the
  // first live event and rebases the live offsets back to 0, bumping gen_
  // and re-stamping the live events (drop_live_prefix).
  std::vector<EventId> cause_arena_;
  uint8_t gen_ = 0;  // rebase generation, wraps mod 16 (Event::gen)
  std::vector<DerivRecord> derivations_;
  std::vector<TupleRef> body_arena_;  // DerivRecord body refs
  // Derivation indexes addressed directly by the dense TupleRef (the pool
  // hands out ids contiguously): lookup is an array load, not a hash.
  // Both are intrusive chains linked newest-first — the per-ref entry
  // holds the NEWEST record, each record points at its predecessor — so
  // appending a derivation writes only the chain head and the record
  // being pushed (both hot), never the cold previous tail. Readers
  // reverse at visitation (for_each_derivation_of/_using).
  struct BodyLink {
    uint32_t record = ~uint32_t{0};  // derivation index of this occurrence
    uint32_t prev = ~uint32_t{0};    // previous body_links_ pos, same ref
  };
  std::vector<uint32_t> head_index_;       // by head TupleRef: newest record
  std::vector<uint32_t> body_index_;       // by body TupleRef: newest link
  std::vector<BodyLink> body_links_;       // parallel to body_arena_

  std::vector<uint8_t> ckpt_;          // serialized compacted entries (RAM)
  std::vector<size_t> ckpt_offsets_;   // entry i starts at ckpt_[offsets[i]]
  std::vector<uint8_t> ckpt_names_;    // string-table section (names, once)
  // Name-dedup per checkpoint unit: once per log lifetime for the RAM
  // checkpoint, reset per section when a sink is attached (each spilled
  // section must be self-contained so segments can rotate between any
  // two sections).
  std::vector<uint8_t> table_name_written_;  // by TableId
  std::vector<uint8_t> rule_name_written_;   // by RuleId
  std::vector<uint8_t> node_written_;        // by NodeRef
  CheckpointSink* spill_ = nullptr;
  EventId base_id_ = 0;

  // Cursor-buffer registry (see DecodeCursor): slot -> current cause
  // buffer of the holding cursor. Mutable because decoding is a const
  // read of the log. The free list recycles released slots so the
  // registry stays as small as the peak number of live cursors.
  uint32_t acquire_cursor_slot() const {
    if (!cursor_free_.empty()) {
      const uint32_t s = cursor_free_.back();
      cursor_free_.pop_back();
      return s;
    }
    cursor_bufs_.push_back(nullptr);
    return static_cast<uint32_t>(cursor_bufs_.size() - 1);
  }
  void release_cursor_slot(uint32_t slot) const {
    cursor_bufs_[slot] = nullptr;
    cursor_free_.push_back(slot);
  }
  mutable std::vector<const EventId*> cursor_bufs_;
  mutable std::vector<uint32_t> cursor_free_;
};

inline EventLog::DecodeCursor::~DecodeCursor() {
  if (owner_ != nullptr) owner_->release_cursor_slot(slot_);
}

}  // namespace mp::eval
