// Append-only event log: the runtime's provenance record (Section 3.1).
// Every insert / derive / appear / send / receive / delete is logged with a
// logical timestamp and causal links. Three consumers read it:
//   - provenance graph construction (src/provenance),
//   - derivation-record lookups for meta-provenance (src/repair) — the
//     historical-tuple side of those lookups lives in the HistoryStore
//     (eval/history.h), carved out of this class so it can be indexed and
//     rebuilt independently of the immutable record,
//   - backtest replay and storage accounting (src/backtest, Section 5.4).
//
// The log is checkpointable: compact() serializes the oldest events into
// the paper's ~120 B/entry fixed-header format (Section 5.4) and drops
// their in-memory Event (and Tuple) copies, so the record no longer grows
// without bound. Ids stay stable across compaction — the id space is
// [0, size()), of which [base_id(), size()) is held live — and replay
// (backtest::replay_base_stream) walks checkpoint + live suffix through
// for_each_event().
//
// Serialized entry layout (little-endian, 32-byte fixed header):
//   u64 time | u64 tags | u8 kind | u8 reserved | u16 table_len |
//   u16 rule_len | u16 nvals | u16 ncauses | u16 reserved | u32 payload_len
// followed by payload: node value, nvals row values (u8 tag, then i64 or
// u16 len + bytes), table bytes, rule bytes, ncauses x u64 cause ids.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "eval/tuple.h"

namespace mp::eval {

using EventId = uint64_t;
using Time = uint64_t;
inline constexpr EventId kNoEvent = ~0ULL;

enum class EventKind : uint8_t {
  Insert,     // base tuple inserted externally
  Delete,     // base tuple deleted externally
  Derive,     // rule produced a tuple
  Underive,   // rule-produced support lost
  Appear,     // tuple became visible at a node
  Disappear,  // tuple vanished from a node
  Send,       // +tuple shipped to a remote node
  Receive,    // +tuple arrived from a remote node
};

const char* to_string(EventKind k);

struct Event {
  EventId id = kNoEvent;
  EventKind kind = EventKind::Insert;
  Time time = 0;
  Value node;       // where the event happened
  Tuple tuple;
  std::string rule;              // rule name for Derive/Underive
  std::vector<EventId> causes;   // direct causal predecessors
  TagMask tags = kAllTags;
  std::string to_string() const;
};

// A derivation record links a derived head tuple to the concrete body
// tuples that produced it; used for positive provenance trees and for
// support-count cascade on deletion.
struct DerivRecord {
  EventId derive_event = kNoEvent;
  std::string rule;
  Tuple head;
  std::vector<Tuple> body;
  bool live = true;  // false once the derivation has been retracted
};

class EventLog {
 public:
  EventId append(EventKind kind, Value node, Tuple tuple, TagMask tags,
                 std::vector<EventId> causes = {}, std::string rule = {});

  size_t add_derivation(DerivRecord rec);  // returns record index

  // Live (un-compacted) suffix of the log; events()[i] has id base_id()+i.
  const std::vector<Event>& events() const { return events_; }
  // Valid only for live ids (id >= base_id()); compacted events are
  // reachable through for_each_event() / event_time().
  const Event& event(EventId id) const {
    assert(id >= base_id_ && id - base_id_ < events_.size());
    return events_[id - base_id_];
  }
  const std::vector<DerivRecord>& derivations() const { return derivations_; }
  DerivRecord& derivation(size_t idx) { return derivations_[idx]; }

  // Indices of live derivation records whose head equals `t`.
  std::vector<size_t> derivations_of(const Tuple& t) const;
  // Indices of live derivation records with `t` among their body tuples.
  std::vector<size_t> derivations_using(const Tuple& t) const;
  // Allocation-light variants: visit indices of live records in insertion
  // order; `fn` returns false to stop.
  void for_each_derivation_of(const Tuple& t,
                              const std::function<bool(size_t)>& fn) const;
  void for_each_derivation_using(const Tuple& t,
                                 const std::function<bool(size_t)>& fn) const;
  bool has_derivation_of(const Tuple& t) const;

  Time now() const { return time_; }
  Time tick() { return ++time_; }

  // --- checkpoint + truncate (event-log compaction, Section 5.4) -------
  // Serializes all but the newest `keep_live` live events into the
  // checkpoint buffer and erases their Event structs. Returns the number
  // of events compacted. Compaction stops early at the first event that
  // exceeds the format's u16 length fields (a >64 KiB string or >65535
  // row values / causes — nothing the runtime produces): such an event
  // and everything after it stay live rather than corrupting the decode.
  // Derivation records are unaffected; their derive_event ids remain
  // resolvable via event_time().
  size_t compact(size_t keep_live = 0);
  EventId base_id() const { return base_id_; }
  size_t live_size() const { return events_.size(); }
  size_t checkpoint_bytes() const { return ckpt_.size(); }
  // Timestamp of any event, live or checkpointed.
  Time event_time(EventId id) const;
  // Walks the full event sequence in id order: each checkpointed entry is
  // decoded into a scratch Event (valid only for the duration of the
  // call), then the live suffix is visited in place.
  void for_each_event(const std::function<void(const Event&)>& fn) const;
  // Exact size of `e` in the serialized checkpoint format; byte_estimate()
  // is the sum of this over all events, compacted or live.
  static size_t serialized_bytes(const Event& e);

  // On-disk footprint of the log in the serialized format above: bytes
  // already written to the checkpoint plus what compacting the live
  // suffix would write (computed on demand — it's a cold accessor, and
  // append stays free of accounting work). The paper reports ~120-byte
  // entries.
  size_t byte_estimate() const;
  // Total events ever appended (compacted + live); ids are dense in
  // [0, size()).
  size_t size() const { return base_id_ + events_.size(); }
  void clear();

 private:
  void serialize(const Event& e, std::vector<uint8_t>& out) const;
  Event decode(size_t entry) const;  // entry index into ckpt_offsets_

  std::vector<Event> events_;  // live suffix; events_[i].id == base_id_ + i
  std::vector<DerivRecord> derivations_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> head_index_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> body_index_;
  std::vector<uint8_t> ckpt_;          // serialized compacted prefix
  std::vector<size_t> ckpt_offsets_;   // entry i starts at ckpt_[offsets[i]]
  EventId base_id_ = 0;
  Time time_ = 0;
};

}  // namespace mp::eval
