// Append-only event log: the runtime's provenance record (Section 3.1).
// Every insert / derive / appear / send / receive / delete is logged with a
// logical timestamp and causal links. Three consumers read it:
//   - provenance graph construction (src/provenance),
//   - meta-provenance "history lookups" (src/repair),
//   - backtest replay and storage accounting (src/backtest, Section 5.4).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eval/tuple.h"

namespace mp::eval {

using EventId = uint64_t;
using Time = uint64_t;
inline constexpr EventId kNoEvent = ~0ULL;

enum class EventKind : uint8_t {
  Insert,     // base tuple inserted externally
  Delete,     // base tuple deleted externally
  Derive,     // rule produced a tuple
  Underive,   // rule-produced support lost
  Appear,     // tuple became visible at a node
  Disappear,  // tuple vanished from a node
  Send,       // +tuple shipped to a remote node
  Receive,    // +tuple arrived from a remote node
};

const char* to_string(EventKind k);

struct Event {
  EventId id = kNoEvent;
  EventKind kind = EventKind::Insert;
  Time time = 0;
  Value node;       // where the event happened
  Tuple tuple;
  std::string rule;              // rule name for Derive/Underive
  std::vector<EventId> causes;   // direct causal predecessors
  TagMask tags = kAllTags;
  std::string to_string() const;
};

// A derivation record links a derived head tuple to the concrete body
// tuples that produced it; used for positive provenance trees and for
// support-count cascade on deletion.
struct DerivRecord {
  EventId derive_event = kNoEvent;
  std::string rule;
  Tuple head;
  std::vector<Tuple> body;
  bool live = true;  // false once the derivation has been retracted
};

class EventLog {
 public:
  EventId append(EventKind kind, Value node, Tuple tuple, TagMask tags,
                 std::vector<EventId> causes = {}, std::string rule = {});

  size_t add_derivation(DerivRecord rec);  // returns record index

  const std::vector<Event>& events() const { return events_; }
  const Event& event(EventId id) const { return events_[id]; }
  const std::vector<DerivRecord>& derivations() const { return derivations_; }
  DerivRecord& derivation(size_t idx) { return derivations_[idx]; }

  // Indices of live derivation records whose head equals `t`.
  std::vector<size_t> derivations_of(const Tuple& t) const;
  // Indices of live derivation records with `t` among their body tuples.
  std::vector<size_t> derivations_using(const Tuple& t) const;

  // Historical relation contents: every row ever observed in `table`,
  // across all nodes (includes transient event tuples). This is the data
  // the paper's "history lookups" walk when expanding meta provenance.
  const std::vector<Tuple>& history(const std::string& table) const;
  size_t history_size() const { return history_total_; }

  Time now() const { return time_; }
  Time tick() { return ++time_; }

  // Rough on-disk footprint of the log if each event were serialized as a
  // fixed header plus its values; the paper reports ~120-byte entries.
  size_t byte_estimate() const;
  size_t size() const { return events_.size(); }
  void clear();

 private:
  std::vector<Event> events_;
  std::vector<DerivRecord> derivations_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> head_index_;
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> body_index_;
  std::unordered_map<std::string, std::vector<Tuple>> history_;
  std::unordered_map<Tuple, char, TupleHash> history_seen_;
  size_t history_total_ = 0;
  Time time_ = 0;
};

}  // namespace mp::eval
