#include "fault/fault.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/rng.h"

namespace mp::fault {

struct Registry::Impl {
  struct Point {
    Policy policy;
    uint64_t hits = 0;
    uint64_t fires = 0;
    Rng rng{1};
  };
  mutable std::mutex mu;
  // std::map: iteration is already name-sorted for points(), and node
  // stability means nothing here is performance-sensitive (fault builds
  // only).
  std::map<std::string, Point> points;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

void Registry::configure(const std::string& name, Policy policy) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Point& pt = impl_->points[name];
  pt.policy = policy;
  pt.hits = 0;
  pt.fires = 0;
  pt.rng = Rng{policy.seed};
}

void Registry::clear(const std::string& name) { configure(name, Policy{}); }

void Registry::clear_all() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->points.clear();
}

int Registry::hit(const char* name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Point& pt = impl_->points[name];
  ++pt.hits;
  bool fire = false;
  switch (pt.policy.mode) {
    case Policy::Mode::kOff:
      break;
    case Policy::Mode::kNth:
      fire = pt.hits == pt.policy.n;
      break;
    case Policy::Mode::kEveryK:
      fire = pt.policy.n != 0 && pt.hits % pt.policy.n == 0;
      break;
    case Policy::Mode::kOneShot:
      fire = pt.fires == 0;
      break;
    case Policy::Mode::kAlways:
      fire = true;
      break;
    case Policy::Mode::kRandom:
      fire = pt.rng.chance(pt.policy.probability);
      break;
  }
  if (!fire) return 0;
  ++pt.fires;
  return pt.policy.error_code;
}

std::vector<PointStats> Registry::points() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<PointStats> out;
  out.reserve(impl_->points.size());
  for (const auto& [name, pt] : impl_->points) {
    out.push_back(PointStats{name, pt.hits, pt.fires});
  }
  return out;
}

uint64_t Registry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.fires;
}

uint64_t Registry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.hits;
}

}  // namespace mp::fault
