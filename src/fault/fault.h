// Deterministic failpoint registry (fault injection; see README.md).
//
// A failpoint is a named site in production code wrapped by one of the
// MP_FAILPOINT macros:
//
//   if (const int ec = MP_FAILPOINT("storage.segment.write")) {
//     errno = ec;          // behave exactly as if the syscall failed
//     return -1;
//   }
//   MP_FAILPOINT_THROW("runtime.mailbox.enqueue");  // throws InjectedFault
//
// In the default build the value form expands to the integer literal 0
// and the throw form to (void)0, so the wrapping branch folds away —
// zero cost, no registry reference, pinned by tools/check.sh's bench
// floor. With -DMP_FAULTS=ON (tools/check.sh CHECK_FAULTS=1 builds a
// side tree with it) every crossing consults the process-wide Registry:
// tests arm a trigger Policy per point — fire on exactly the Nth hit,
// every Kth hit, once, always, or seeded-random — and an armed point
// "fires" by returning its configured error payload (an errno value).
// Policies are deterministic by construction (the random mode takes an
// explicit seed), so fault sweeps are reproducible run to run.
//
// Points are interned dynamically on first hit: a dry run with nothing
// armed enumerates every failpoint the workload crosses (points()), which
// is how tests/fault_test.cpp sweeps "every failpoint x fire-on-hit-N"
// without a hand-maintained list.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mp::fault {

// True when this build compiled the failpoint sites in (-DMP_FAULTS=ON).
constexpr bool compiled_in() {
#ifdef MP_FAULTS
  return true;
#else
  return false;
#endif
}

// Trigger policy for one failpoint. Hit counting starts at 1 and resets
// every time the point is (re)configured, so `kNth, n=3` fires on the
// third crossing after arming regardless of earlier traffic.
struct Policy {
  enum class Mode : uint8_t {
    kOff,      // never fires (the state of an unarmed point)
    kNth,      // fires on exactly the n-th hit after arming
    kEveryK,   // fires on every k-th hit (n == k)
    kOneShot,  // fires on the first hit after arming, then disarms
    kAlways,   // fires on every hit
    kRandom,   // fires with `probability` per hit, seeded by `seed`
  };
  Mode mode = Mode::kOff;
  uint64_t n = 1;            // kNth / kEveryK parameter
  double probability = 0.0;  // kRandom parameter
  uint64_t seed = 1;         // kRandom: explicit seed => reproducible
  int error_code = 5;        // payload returned when firing (EIO)
};

// What a point has seen since it was last configured (or first hit).
struct PointStats {
  std::string name;
  uint64_t hits = 0;   // crossings since the last configure/clear
  uint64_t fires = 0;  // crossings that fired
};

// Process-wide failpoint table. All operations take a mutex — failpoints
// exist only in MP_FAULTS builds, whose hot paths are test workloads —
// so hit() is safe from the sharded runtime's worker threads.
class Registry {
 public:
  static Registry& global();

  // Arms `name` (interning the point if it was never crossed) and resets
  // its hit/fire counters, so kNth counts from this call.
  void configure(const std::string& name, Policy policy);
  // Disarms one point (counters reset; the point stays enumerable).
  void clear(const std::string& name);
  // Disarms every point and forgets all counters and interned names.
  void clear_all();

  // Records a crossing of `name`; returns the policy's error payload if
  // the point fired, 0 otherwise. Interns unknown names so a dry run
  // enumerates the workload's failpoints.
  int hit(const char* name);

  // Every point ever crossed or configured, sorted by name (deterministic
  // sweep order), with its current counters.
  std::vector<PointStats> points() const;
  // Fire count of one point (0 if never crossed).
  uint64_t fires(const std::string& name) const;
  uint64_t hits(const std::string& name) const;

 private:
  struct Impl;
  Impl* impl_;  // leaked singleton state (never destructed, like obs)
  Registry();
};

// The exception MP_FAILPOINT_THROW raises: carries the point name and the
// configured error payload so tests can assert which injection surfaced.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string point, int code)
      : std::runtime_error("injected fault at " + point +
                           " (code " + std::to_string(code) + ")"),
        point_(std::move(point)),
        code_(code) {}
  const std::string& point() const { return point_; }
  int code() const { return code_; }

 private:
  std::string point_;
  int code_;
};

}  // namespace mp::fault

// Value form: evaluates to the error payload (an errno value) when the
// point fires, 0 otherwise. Compiles to the literal 0 without MP_FAULTS.
#ifdef MP_FAULTS
#define MP_FAILPOINT(name) (::mp::fault::Registry::global().hit(name))
#else
#define MP_FAILPOINT(name) 0
#endif

// Throw form: raises fault::InjectedFault when the point fires. Used at
// sites whose natural failure mode is an exception unwinding through the
// runtime (mailbox hooks, round bodies) rather than a syscall errno.
#ifdef MP_FAULTS
#define MP_FAILPOINT_THROW(name)                                       \
  do {                                                                 \
    if (const int mp_fp_ec_ = ::mp::fault::Registry::global().hit(name)) \
      throw ::mp::fault::InjectedFault(name, mp_fp_ec_);               \
  } while (0)
#else
#define MP_FAILPOINT_THROW(name) ((void)0)
#endif
