#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace mp {

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty() ? 0.0 : 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const size_t n = a.size(), m = b.size();
  size_t i = 0, j = 0;
  double d = 0.0;
  while (i < n && j < m) {
    const double x = std::min(a[i], b[j]);
    while (i < n && a[i] <= x) ++i;
    while (j < m && b[j] <= x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(n);
    const double fb = static_cast<double>(j) / static_cast<double>(m);
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

double ks_critical(size_t n, size_t m, double alpha) {
  if (n == 0 || m == 0) return 1.0;
  // c(alpha) = sqrt(-ln(alpha/2) / 2); c(0.05) ~= 1.3581.
  const double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  const double nn = static_cast<double>(n), mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

double ks_pvalue(double d, size_t n, size_t m) {
  if (n == 0 || m == 0) return 1.0;
  const double nn = static_cast<double>(n), mm = static_cast<double>(m);
  const double en = std::sqrt(nn * mm / (nn + mm));
  // Asymptotic Kolmogorov distribution with the Stephens correction.
  const double lambda = (en + 0.12 + 0.11 / en) * d;
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        2.0 * std::pow(-1.0, k - 1) * std::exp(-2.0 * lambda * lambda * k * k);
    sum += term;
    if (std::fabs(term) < 1e-12) break;
  }
  return std::clamp(sum, 0.0, 1.0);
}

KsResult ks_test(const std::vector<double>& a, const std::vector<double>& b,
                 double alpha) {
  KsResult r;
  r.statistic = ks_statistic(a, b);
  r.critical = ks_critical(a.size(), b.size(), alpha);
  r.pvalue = ks_pvalue(r.statistic, a.size(), b.size());
  r.significant = r.statistic > r.critical;
  return r;
}

void CountDistribution::add(const std::string& key, double amount) {
  counts_[key] += amount;
}

double CountDistribution::total() const {
  double t = 0.0;
  for (const auto& [k, v] : counts_) t += v;
  return t;
}

std::pair<std::vector<double>, std::vector<double>>
CountDistribution::aligned_fractions(const CountDistribution& a,
                                     const CountDistribution& b) {
  const double ta = std::max(a.total(), 1.0);
  const double tb = std::max(b.total(), 1.0);
  std::vector<double> va, vb;
  auto ia = a.counts_.begin();
  auto ib = b.counts_.begin();
  while (ia != a.counts_.end() || ib != b.counts_.end()) {
    if (ib == b.counts_.end() || (ia != a.counts_.end() && ia->first < ib->first)) {
      va.push_back(ia->second / ta);
      vb.push_back(0.0);
      ++ia;
    } else if (ia == a.counts_.end() || ib->first < ia->first) {
      va.push_back(0.0);
      vb.push_back(ib->second / tb);
      ++ib;
    } else {
      va.push_back(ia->second / ta);
      vb.push_back(ib->second / tb);
      ++ia;
      ++ib;
    }
  }
  return {std::move(va), std::move(vb)};
}

KsResult ks_test(const CountDistribution& a, const CountDistribution& b,
                 double alpha) {
  auto [va, vb] = CountDistribution::aligned_fractions(a, b);
  // Two-sample KS over the per-host traffic distribution: hosts are the
  // (ordered) categories, samples are delivered packets, and D is the
  // maximum cumulative-share difference. Sample sizes are the packet
  // counts, so the critical value reflects evidence volume.
  KsResult r;
  double cum_a = 0.0, cum_b = 0.0, d = 0.0;
  for (size_t i = 0; i < va.size(); ++i) {
    cum_a += va[i];
    cum_b += vb[i];
    d = std::max(d, std::fabs(cum_a - cum_b));
  }
  r.statistic = d;
  const size_t n = std::max<size_t>(1, static_cast<size_t>(a.total()));
  const size_t m = std::max<size_t>(1, static_cast<size_t>(b.total()));
  r.critical = ks_critical(n, m, alpha);
  r.pvalue = ks_pvalue(r.statistic, n, m);
  r.significant = r.statistic > r.critical;
  return r;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace mp
