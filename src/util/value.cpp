#include "util/value.h"

namespace mp {

std::string Value::to_string() const {
  if (kind_ == Kind::Int) return std::to_string(int_);
  return str_;
}

size_t Value::hash() const {
  if (kind_ == Kind::Int) {
    return std::hash<int64_t>{}(int_) * 0x9e3779b97f4a7c15ULL;
  }
  return std::hash<std::string>{}(str_);
}

std::string row_to_string(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ",";
    out += row[i].to_string();
  }
  out += ")";
  return out;
}

size_t hash_row(const Row& row) {
  size_t seed = row.size();
  for (const Value& v : row) seed = hash_combine(seed, v.hash());
  return seed;
}

}  // namespace mp
