// Dynamically-typed values carried by tuples in the datalog engine, the
// SDN simulator and the repair engine. Values are either 64-bit integers
// or interned-ish small strings; the wildcard "*" (used by flow-entry
// match fields and JID wildcards in the meta model) is an ordinary string
// value with helper accessors.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mp {

class Value {
 public:
  enum class Kind : uint8_t { Int, Str };

  Value() : kind_(Kind::Int), int_(0) {}
  Value(int64_t v) : kind_(Kind::Int), int_(v) {}  // NOLINT(google-explicit-constructor)
  Value(int v) : kind_(Kind::Int), int_(v) {}      // NOLINT(google-explicit-constructor)
  explicit Value(std::string s) : kind_(Kind::Str), str_(std::move(s)) {}

  static Value str(std::string_view s) { return Value(std::string(s)); }
  static Value wildcard() { return Value(std::string("*")); }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_str() const { return kind_ == Kind::Str; }
  bool is_wildcard() const { return kind_ == Kind::Str && str_ == "*"; }

  int64_t as_int() const { return int_; }
  const std::string& as_str() const { return str_; }

  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return false;
    return kind_ == Kind::Int ? int_ == o.int_ : str_ == o.str_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  // Ints order before strings; gives a total order for sorted containers.
  std::strong_ordering operator<=>(const Value& o) const {
    if (kind_ != o.kind_) return kind_ <=> o.kind_;
    if (kind_ == Kind::Int) return int_ <=> o.int_;
    return str_.compare(o.str_) <=> 0;
  }

  std::string to_string() const;
  size_t hash() const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  std::string str_;
};

using Row = std::vector<Value>;

std::string row_to_string(const Row& row);
size_t hash_row(const Row& row);

// Combine hashes (boost-style).
inline size_t hash_combine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.hash(); }
};
struct RowHash {
  size_t operator()(const Row& r) const { return hash_row(r); }
};

}  // namespace mp
