#include "util/strings.h"

#include <cstdio>

namespace mp {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string lpad(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string rpad(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mp
