// Small string utilities shared by the parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mp {

std::vector<std::string> split(std::string_view s, char sep);
std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string lpad(std::string s, size_t width);
std::string rpad(std::string s, size_t width);
// printf-style float formatting without <format> (gcc 12 lacks std::format).
std::string fmt_double(double v, int precision);

}  // namespace mp
