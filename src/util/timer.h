// Wall-clock timing for the benches; phase accounting matches the paper's
// Figure 9 breakdown (history lookups / constraint solving / patch
// generation / replay).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/phase.h"

namespace mp {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates named phase durations; used to produce Fig 9a/9c/10 style
// breakdowns. Phases are interned process-wide (src/obs/phase.h): the
// hot add(PhaseId) path is one vector index, no string lookup; the
// string-keyed API remains at the edges. Instances are not thread-safe —
// each worker accumulates its own clock and merge()s.
class PhaseClock {
 public:
  void add(obs::PhaseId id, double seconds) {
    if (id >= acc_.size()) acc_.resize(id + 1, 0.0);
    acc_[id] += seconds;
  }
  void add(const std::string& phase, double seconds) {
    add(obs::phase_id(phase), seconds);
  }
  double get(obs::PhaseId id) const { return id < acc_.size() ? acc_[id] : 0.0; }
  double get(const std::string& phase) const {
    return get(obs::phase_id(phase));
  }
  double total() const {
    double t = 0;
    for (double v : acc_) t += v;
    return t;
  }
  // String-keyed view for reports; zero-accumulation phases are omitted,
  // matching the old map behaviour.
  std::map<std::string, double> phases() const {
    std::map<std::string, double> out;
    for (obs::PhaseId id = 0; id < acc_.size(); ++id) {
      if (acc_[id] != 0.0) out.emplace(obs::phase_name(id), acc_[id]);
    }
    return out;
  }
  void merge(const PhaseClock& o) {
    if (o.acc_.size() > acc_.size()) acc_.resize(o.acc_.size(), 0.0);
    for (size_t id = 0; id < o.acc_.size(); ++id) acc_[id] += o.acc_[id];
  }

 private:
  std::vector<double> acc_;  // indexed by obs::PhaseId
};

// RAII phase scope; prefer the PhaseId constructor (intern once, at the
// call site) over the string one on anything resembling a hot path.
class PhaseScope {
 public:
  PhaseScope(PhaseClock& clock, obs::PhaseId id) : clock_(clock), id_(id) {}
  PhaseScope(PhaseClock& clock, const std::string& phase)
      : clock_(clock), id_(obs::phase_id(phase)) {}
  ~PhaseScope() { clock_.add(id_, timer_.seconds()); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseClock& clock_;
  obs::PhaseId id_;
  Timer timer_;
};

}  // namespace mp
