// Wall-clock timing for the benches; phase accounting matches the paper's
// Figure 9 breakdown (history lookups / constraint solving / patch
// generation / replay).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace mp {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates named phase durations; used to produce Fig 9a/9c/10 style
// breakdowns.
class PhaseClock {
 public:
  void add(const std::string& phase, double seconds) { acc_[phase] += seconds; }
  double get(const std::string& phase) const {
    auto it = acc_.find(phase);
    return it == acc_.end() ? 0.0 : it->second;
  }
  double total() const {
    double t = 0;
    for (const auto& [k, v] : acc_) t += v;
    return t;
  }
  const std::map<std::string, double>& phases() const { return acc_; }
  void merge(const PhaseClock& o) {
    for (const auto& [k, v] : o.acc_) acc_[k] += v;
  }

 private:
  std::map<std::string, double> acc_;
};

// RAII phase scope.
class PhaseScope {
 public:
  PhaseScope(PhaseClock& clock, std::string phase)
      : clock_(clock), phase_(std::move(phase)) {}
  ~PhaseScope() { clock_.add(phase_, timer_.seconds()); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseClock& clock_;
  std::string phase_;
  Timer timer_;
};

}  // namespace mp
