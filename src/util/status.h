// Minimal error surface for components that can fail in production
// (today: the durable segment store's I/O path). Deliberately tiny — a
// code, the failing syscall's errno, and a human-readable message — not
// a general result<T> framework: the storage layer reports failure
// through a sticky Status latch (SegmentStore::status()), and callers
// that want exceptions get storage::IoError wrapping the same Status.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace mp {

enum class StatusCode : uint8_t {
  kOk = 0,
  kIoError,         // open/write failed with a non-transient errno
  kNoSpace,         // ENOSPC: retrying cannot help
  kRetryExhausted,  // a transient error persisted past the retry budget
  kUnavailable,     // the component latched failed() earlier (sticky)
};

inline const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kNoSpace: return "NO_SPACE";
    case StatusCode::kRetryExhausted: return "RETRY_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message, int sys_errno = 0)
      : code_(code), sys_errno_(sys_errno), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  int sys_errno() const { return sys_errno_; }
  const std::string& message() const { return message_; }

  // "IO_ERROR: write seg-000001.mpseg: No space left on device (errno 28)"
  std::string to_string() const {
    if (ok()) return "OK";
    std::string out = mp::to_string(code_);
    out += ": ";
    out += message_;
    if (sys_errno_ != 0) {
      out += ": ";
      out += std::strerror(sys_errno_);
      out += " (errno " + std::to_string(sys_errno_) + ")";
    }
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  int sys_errno_ = 0;
  std::string message_;
};

}  // namespace mp
