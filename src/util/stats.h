// Statistics used by the backtester: per-key count distributions and the
// two-sample Kolmogorov-Smirnov test the paper uses (significance 0.05)
// to reject repairs that distort the network-wide traffic distribution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mp {

// Two-sample KS statistic D = sup_x |F1(x) - F2(x)| over two empirical
// samples. Samples need not be sorted or equal length.
double ks_statistic(std::vector<double> a, std::vector<double> b);

// Critical value for the two-sample KS test at significance alpha.
// c(0.05) = 1.358; threshold = c * sqrt((n+m)/(n*m)).
double ks_critical(size_t n, size_t m, double alpha = 0.05);

// Approximate p-value for the two-sample KS statistic (asymptotic
// Kolmogorov distribution).
double ks_pvalue(double d, size_t n, size_t m);

struct KsResult {
  double statistic = 0.0;   // D
  double critical = 0.0;    // threshold at alpha
  double pvalue = 1.0;
  bool significant = false; // true => distributions differ => reject repair
};

KsResult ks_test(const std::vector<double>& a, const std::vector<double>& b,
                 double alpha = 0.05);

// Distribution of a counter keyed by host/name. Used for "traffic
// distribution at end hosts" (Section 4.3).
class CountDistribution {
 public:
  void add(const std::string& key, double amount = 1.0);
  double total() const;
  // Values aligned on the union of keys of *this and other (missing = 0),
  // normalised to fractions of the total so KS compares shapes.
  static std::pair<std::vector<double>, std::vector<double>> aligned_fractions(
      const CountDistribution& a, const CountDistribution& b);
  const std::map<std::string, double>& counts() const { return counts_; }
  double get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, double> counts_;
};

// KS test between two keyed distributions: compares the per-key traffic
// shares. This mirrors the paper's use: a repair that shifts a noticeable
// share of traffic between hosts yields a large D.
KsResult ks_test(const CountDistribution& a, const CountDistribution& b,
                 double alpha = 0.05);

// Simple summary helpers for benches.
double mean(const std::vector<double>& xs);
double percentile(std::vector<double> xs, double p);  // p in [0,100]

}  // namespace mp
