// Minimal fork/join helper shared by the parallel call sites (the sharded
// runtime's round workers, the backtester's candidate-replay pool).
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mp {

// Runs every thunk concurrently — thunks[1..] each on a fresh thread,
// thunks[0] on the calling thread — joins them all, then rethrows the
// first exception any thunk raised (an exception escaping a thread body
// would std::terminate). Thunks must not touch shared mutable state
// without their own synchronization.
inline void run_thunks_parallel(std::vector<std::function<void()>> thunks) {
  if (thunks.empty()) return;
  if (thunks.size() == 1) {
    thunks[0]();
    return;
  }
  std::exception_ptr error;
  std::mutex error_mu;
  auto guarded = [&](const std::function<void()>& work) {
    try {
      work();
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(thunks.size() - 1);
  try {
    for (size_t i = 1; i < thunks.size(); ++i) {
      workers.emplace_back([&guarded, &thunks, i] { guarded(thunks[i]); });
    }
  } catch (...) {
    // Thread creation failed (e.g. EAGAIN under thread exhaustion): join
    // what was spawned before rethrowing — unwinding past joinable
    // std::threads would std::terminate.
    for (std::thread& w : workers) w.join();
    throw;
  }
  guarded(thunks[0]);
  for (std::thread& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mp
