// Deterministic RNG (xorshift128+). All stochastic behaviour in the
// simulator and traffic generator flows through this so that every test,
// example and bench is reproducible.
#pragma once

#include <cstdint>

namespace mp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid poor low-entropy states.
    s_[0] = splitmix(seed);
    s_[1] = splitmix(s_[0]);
  }

  uint64_t next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability p.
  bool chance(double p) { return uniform() < p; }

  // Zipf-ish skewed pick in [0, n): rank r chosen with weight 1/(r+1).
  uint64_t zipf(uint64_t n);

 private:
  static uint64_t splitmix(uint64_t& x) {
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t splitmix(uint64_t&& x) {
    uint64_t v = x;
    return splitmix(v);
  }

  uint64_t s_[2];
};

inline uint64_t Rng::zipf(uint64_t n) {
  if (n <= 1) return 0;
  // Inverse-CDF on the harmonic weights, approximated via exp sampling:
  // pick u in (0,1], return floor(n^u) - 1 which is ~1/x distributed.
  double u = uniform();
  if (u <= 0.0) u = 1e-12;
  double x = 1.0;
  double nn = static_cast<double>(n);
  // n^u computed via exp(u * ln n)
  x = __builtin_exp(u * __builtin_log(nn));
  uint64_t r = static_cast<uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace mp
