// Backtest metrics (Section 4.3): per-host traffic distributions act as
// the "test suite". A candidate repair must (a) fix the symptom and
// (b) leave the rest of the distribution statistically unchanged
// (two-sample KS test at alpha = 0.05 against the pre-repair run).
#pragma once

#include "sdn/network.h"
#include "util/stats.h"

namespace mp::backtest {

struct ReplayOutcome {
  CountDistribution per_host;       // host -> delivered packets
  CountDistribution per_host_port;  // "host:dpt" -> delivered packets
  bool symptom_fixed = false;
  size_t delivered = 0;
  size_t dropped = 0;
  size_t packet_ins = 0;
  double seconds = 0.0;
  bool valid = true;  // false if the candidate program failed to apply
};

ReplayOutcome outcome_from_stats(const sdn::DeliveryStats& stats);

// KS comparison of two outcomes' per-host distributions.
KsResult compare(const ReplayOutcome& baseline, const ReplayOutcome& repaired,
                 double alpha = 0.05);

}  // namespace mp::backtest
