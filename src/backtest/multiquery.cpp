#include "backtest/multiquery.h"

namespace mp::backtest {

eval::TagMask CombinedProgram::config_mask(const eval::Tuple& t) const {
  eval::TagMask mask = candidate_count >= eval::kMaxTags
                           ? eval::kAllTags
                           : (eval::TagMask{1} << candidate_count) - 1;
  for (const auto& [tuple, tags] : deletions) {
    if (tuple == t) mask &= ~tags;
  }
  return mask;
}

CombinedProgram build_backtest_program(
    const ndlog::Program& base,
    const std::vector<repair::RepairCandidate>& candidates) {
  CombinedProgram out;
  out.program = base;
  out.candidate_count = std::min(candidates.size(), eval::kMaxTags);
  const eval::TagMask all =
      out.candidate_count >= eval::kMaxTags
          ? eval::kAllTags
          : (eval::TagMask{1} << out.candidate_count) - 1;
  for (const auto& rule : base.rules) out.rule_restrict[rule.name] = all;

  for (size_t i = 0; i < out.candidate_count; ++i) {
    const eval::TagMask bit = eval::TagMask{1} << i;
    auto prog = repair::apply_candidate(base, candidates[i]);
    if (!prog) {
      out.invalid.push_back(i);
      // An invalid candidate participates with the unmodified program.
      continue;
    }
    // Diff against the base program by rule name + printed form.
    for (const auto& rule : prog->rules) {
      const ndlog::Rule* orig = base.find_rule(rule.name);
      if (orig != nullptr && orig->to_string() == rule.to_string()) continue;
      // Modified or new rule: add a tagged copy.
      ndlog::Rule copy = rule;
      copy.name = rule.name + "#" + std::to_string(i);
      out.program.rules.push_back(copy);
      out.rule_restrict[copy.name] = bit;
      if (orig != nullptr) out.rule_restrict[orig->name] &= ~bit;
    }
    // Rules deleted by the candidate: restrict the original away.
    for (const auto& rule : base.rules) {
      if (prog->find_rule(rule.name) == nullptr) {
        out.rule_restrict[rule.name] &= ~bit;
      }
    }
    for (const eval::Tuple& t : repair::candidate_insertions(candidates[i])) {
      out.insertions.emplace_back(t, bit);
    }
    for (const eval::Tuple& t : repair::candidate_deletions(candidates[i])) {
      out.deletions.emplace_back(t, bit);
    }
  }
  return out;
}

}  // namespace mp::backtest
