#include "backtest/metrics.h"

namespace mp::backtest {

ReplayOutcome outcome_from_stats(const sdn::DeliveryStats& stats) {
  ReplayOutcome o;
  o.per_host = stats.per_host;
  o.per_host_port = stats.per_host_port;
  o.delivered = stats.delivered;
  o.dropped = stats.dropped;
  o.packet_ins = stats.packet_ins;
  return o;
}

KsResult compare(const ReplayOutcome& baseline, const ReplayOutcome& repaired,
                 double alpha) {
  return ks_test(baseline.per_host, repaired.per_host, alpha);
}

}  // namespace mp::backtest
