#include "backtest/replay.h"

namespace mp::backtest {

std::vector<ReplayOutcome> ReplayHarness::replay_joint(
    const std::vector<repair::RepairCandidate>& cands) {
  std::vector<ReplayOutcome> out;
  out.reserve(cands.size());
  for (const auto& c : cands) out.push_back(replay(c));
  return out;
}

}  // namespace mp::backtest
