#include "backtest/replay.h"

namespace mp::backtest {

size_t replay_base_stream(const eval::EventLog& log, eval::Engine& into) {
  size_t applied = 0;
  std::vector<std::pair<eval::Tuple, eval::TagMask>> inserts;
  std::vector<eval::Tuple> removes;
  auto flush_inserts = [&] {
    if (inserts.empty()) return;
    into.insert_batch(inserts);
    inserts.clear();
  };
  auto flush_removes = [&] {
    if (removes.empty()) return;
    into.remove_batch(removes);
    removes.clear();
  };
  // for_each_event walks checkpoint + live suffix in id order, so a
  // compacted log replays exactly like an uncompacted one.
  log.for_each_event([&](const eval::Event& ev) {
    if (ev.kind == eval::EventKind::Insert) {
      flush_removes();
      inserts.emplace_back(log.tuple_of(ev), ev.tags);
      ++applied;
    } else if (ev.kind == eval::EventKind::Delete) {
      flush_inserts();
      removes.push_back(log.tuple_of(ev));
      ++applied;
    }
  });
  flush_inserts();
  flush_removes();
  return applied;
}

size_t replay_base_stream(const storage::SegmentStore& store,
                          eval::Engine& into) {
  size_t applied = 0;
  std::vector<std::pair<eval::Tuple, eval::TagMask>> inserts;
  std::vector<eval::Tuple> removes;
  auto flush_inserts = [&] {
    if (inserts.empty()) return;
    into.insert_batch(inserts);
    inserts.clear();
  };
  auto flush_removes = [&] {
    if (removes.empty()) return;
    into.remove_batch(removes);
    removes.clear();
  };
  // RawEvent views live only until the reader's next decode, so the
  // batched tuples are materialized here (strings/rows copied once per
  // base event; derived events are skipped without materializing).
  store.replay_raw([&](const eval::RawEvent& re) {
    if (re.kind == eval::EventKind::Insert) {
      flush_removes();
      inserts.emplace_back(eval::Tuple{std::string(re.table), *re.row},
                           re.tags);
      ++applied;
    } else if (re.kind == eval::EventKind::Delete) {
      flush_inserts();
      removes.push_back(eval::Tuple{std::string(re.table), *re.row});
      ++applied;
    }
    return true;
  });
  flush_inserts();
  flush_removes();
  return applied;
}

std::vector<ReplayOutcome> ReplayHarness::replay_joint(
    const std::vector<repair::RepairCandidate>& cands) {
  std::vector<ReplayOutcome> out;
  out.reserve(cands.size());
  for (const auto& c : cands) out.push_back(replay(c));
  return out;
}

}  // namespace mp::backtest
