#include "backtest/backtester.h"

#include <algorithm>
#include <atomic>

#include "obs/obs.h"
#include "obs/span.h"
#include "util/threads.h"
#include "util/timer.h"

namespace mp::backtest {

std::vector<const BacktestEntry*> BacktestReport::ranked_accepted() const {
  std::vector<const BacktestEntry*> out;
  for (const auto& e : entries) {
    if (e.accepted) out.push_back(&e);
  }
  std::sort(out.begin(), out.end(),
            [](const BacktestEntry* a, const BacktestEntry* b) {
              if (a->ks.statistic != b->ks.statistic) {
                return a->ks.statistic < b->ks.statistic;
              }
              return a->candidate.cost < b->candidate.cost;
            });
  return out;
}

BacktestReport Backtester::run(
    ReplayHarness& harness,
    const std::vector<repair::RepairCandidate>& candidates) const {
  static const obs::PhaseId kSpanBacktest = obs::phase_id("backtest.run");
  obs::Span span(kSpanBacktest);
  const uint64_t t0 = obs::now_ns();
  BacktestReport report;
  Timer timer;
  const ReplayOutcome baseline = harness.replay_baseline();

  std::vector<ReplayOutcome> outcomes;
  if (cfg_.use_multiquery) {
    outcomes = harness.replay_joint(candidates);
  } else if (cfg_.shards > 1 && candidates.size() > 1 &&
             harness.concurrent_replays()) {
    // Candidate replays on the worker pool: each replay is independent
    // (own network + engine; the baseline above is already cached), so
    // workers just claim the next candidate index. Outcomes land at their
    // candidate's slot — identical results and order to the loop below.
    outcomes.assign(candidates.size(), ReplayOutcome{});
    std::atomic<size_t> next{0};
    std::function<void()> work = [&] {
      for (size_t i; (i = next.fetch_add(1)) < candidates.size();) {
        outcomes[i] = harness.replay(candidates[i]);
      }
    };
    run_thunks_parallel(std::vector<std::function<void()>>(
        std::min(cfg_.shards, candidates.size()), work));
  } else {
    outcomes.reserve(candidates.size());
    for (const auto& c : candidates) outcomes.push_back(harness.replay(c));
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    BacktestEntry e;
    e.candidate = candidates[i];
    e.outcome = outcomes[i];
    e.effective = e.outcome.valid && e.outcome.symptom_fixed;
    e.ks = compare(baseline, e.outcome, cfg_.alpha);
    // Control-plane load gate: repairs that flood the controller with
    // PacketIns (e.g. retargeting a FlowMod-producing rule, Q4) are side
    // effects the per-host KS cannot see.
    const bool ctrl_ok =
        e.outcome.packet_ins <= baseline.packet_ins * 2 + 16;
    e.accepted = e.effective && !e.ks.significant && ctrl_ok;
    e.candidate.effective = e.effective;
    e.candidate.accepted = e.accepted;
    e.candidate.ks_statistic = e.ks.statistic;
    if (e.effective) ++report.effective_count;
    if (e.accepted) ++report.accepted_count;
    report.entries.push_back(std::move(e));
  }
  report.replay_seconds = timer.seconds();
  if (obs::enabled()) {
    static obs::Histogram& lat =
        obs::Registry::global().histogram("repair.backtest.latency_ns");
    lat.record(obs::now_ns() - t0);
  }
  return report;
}

}  // namespace mp::backtest
