// Multi-query backtesting (Section 4.4): all candidates are merged into a
// single "backtesting program". Rules a candidate modifies are copied,
// restricted to that candidate's tag; the original rule is restricted away
// from the tags that modified or deleted it. Base-tuple insertions carry
// the candidate's tag; deletions mask the candidate's tag off the config
// tuple. Shared computation (the unmodified bulk of the program) then runs
// once for all candidates.
#pragma once

#include <map>

#include "eval/tuple.h"
#include "ndlog/ast.h"
#include "repair/change.h"

namespace mp::backtest {

struct CombinedProgram {
  ndlog::Program program;
  // Tag restriction per rule name (applied via Engine::set_rule_restrict).
  std::map<std::string, eval::TagMask> rule_restrict;
  // Per-candidate base-tuple insertions (tagged).
  std::vector<std::pair<eval::Tuple, eval::TagMask>> insertions;
  // Tuples a candidate deletes: config insertion must mask these tags off.
  std::vector<std::pair<eval::Tuple, eval::TagMask>> deletions;
  // Candidates whose program failed to apply (reported invalid).
  std::vector<size_t> invalid;
  size_t candidate_count = 0;

  // Mask to insert a config tuple with (all tags minus deleters).
  eval::TagMask config_mask(const eval::Tuple& t) const;
};

// Builds the combined program for up to 64 candidates.
CombinedProgram build_backtest_program(
    const ndlog::Program& base,
    const std::vector<repair::RepairCandidate>& candidates);

}  // namespace mp::backtest
