// The backtester (Sections 4.3-4.4): filters and ranks repair candidates.
// A candidate is *effective* if the scenario's symptom predicate holds
// after replay; it is *accepted* if, additionally, the per-host traffic
// distribution is statistically indistinguishable from the pre-repair
// baseline (two-sample KS test, alpha = 0.05). Survivors are ranked by
// (KS statistic, cost): least side effects first, as in Table 2.
#pragma once

#include "backtest/replay.h"

namespace mp::backtest {

struct BacktestConfig {
  double alpha = 0.05;
  bool use_multiquery = false;
  // Worker threads for sequential candidate replays (each candidate's
  // replay builds its own network + engine, so replays are independent).
  // Takes effect when > 1, multiquery is off and the harness reports
  // concurrent_replays(); outcomes are identical to the sequential loop,
  // in the same candidate order. Tag-mode multiquery replay is already
  // one joint run and is never parallelized here.
  size_t shards = 1;
};

struct BacktestEntry {
  repair::RepairCandidate candidate;
  ReplayOutcome outcome;
  KsResult ks;
  bool effective = false;
  bool accepted = false;
};

struct BacktestReport {
  std::vector<BacktestEntry> entries;  // in candidate order
  size_t effective_count = 0;
  size_t accepted_count = 0;
  double replay_seconds = 0.0;

  // Accepted candidates, ranked by least disturbance then cost.
  std::vector<const BacktestEntry*> ranked_accepted() const;
};

class Backtester {
 public:
  explicit Backtester(BacktestConfig cfg = {}) : cfg_(cfg) {}

  BacktestReport run(ReplayHarness& harness,
                     const std::vector<repair::RepairCandidate>& candidates) const;

 private:
  BacktestConfig cfg_;
};

}  // namespace mp::backtest
