// Replay harness interface: something that can re-run the recorded
// workload under a candidate repair. Scenarios implement it on top of the
// SDN simulator (scenarios/pipeline.h); tests implement lightweight fakes.
#pragma once

#include <vector>

#include "backtest/metrics.h"
#include "repair/change.h"

namespace mp::backtest {

class ReplayHarness {
 public:
  virtual ~ReplayHarness() = default;

  // Replays the workload with the original (buggy) program.
  virtual ReplayOutcome replay_baseline() = 0;

  // Replays the workload with one candidate applied.
  virtual ReplayOutcome replay(const repair::RepairCandidate& cand) = 0;

  // Joint replay of many candidates; default falls back to a sequential
  // loop. The scenario pipeline overrides this with tag-mode multi-query
  // evaluation (Section 4.4).
  virtual std::vector<ReplayOutcome> replay_joint(
      const std::vector<repair::RepairCandidate>& cands);
};

}  // namespace mp::backtest
