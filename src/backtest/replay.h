// Replay harness interface: something that can re-run the recorded
// workload under a candidate repair. Scenarios implement it on top of the
// SDN simulator (scenarios/pipeline.h); tests implement lightweight fakes.
#pragma once

#include <vector>

#include "backtest/metrics.h"
#include "eval/engine.h"
#include "repair/change.h"

namespace mp::backtest {

// Re-applies the external base stream of a recorded event log into a fresh
// engine: runs of consecutive Insert events become one insert_batch and
// runs of Delete events one remove_batch, preserving the stream's relative
// order (the recorded tag masks ride along for tag-mode engines). Reads
// the log through EventLog::for_each_event, so a compacted log replays
// its serialized checkpoint prefix and live suffix identically to an
// uncompacted one. This is how backtests rebuild base state from a
// recorded run without re-running the simulation. Returns the number of
// log events applied.
size_t replay_base_stream(const eval::EventLog& log, eval::Engine& into);

// Same, streaming straight from durable segment files (mmap-backed, see
// src/storage): events are decoded one at a time from the store's own
// string tables, so a backtest can rebuild base state from a history
// larger than RAM — no EventLog, pool or catalog is materialized for the
// recorded run. This is also the crash-recovery path: construct a
// SegmentStore over the directory (recovery runs in its constructor),
// replay it here, then attach it to the engine's log with set_spill() to
// continue appending where the durable prefix ends.
size_t replay_base_stream(const storage::SegmentStore& store,
                          eval::Engine& into);

class ReplayHarness {
 public:
  virtual ~ReplayHarness() = default;

  // Replays the workload with the original (buggy) program.
  virtual ReplayOutcome replay_baseline() = 0;

  // Replays the workload with one candidate applied.
  virtual ReplayOutcome replay(const repair::RepairCandidate& cand) = 0;

  // True when replay() may be called from several worker threads at once
  // (after replay_baseline() has been called once). The Backtester's
  // `shards` knob parallelizes sequential candidate replays only for
  // harnesses that opt in; each replay must then touch only state local
  // to its own call. Default: sequential only.
  virtual bool concurrent_replays() const { return false; }

  // Joint replay of many candidates; default falls back to a sequential
  // loop. The scenario pipeline overrides this with tag-mode multi-query
  // evaluation (Section 4.4).
  virtual std::vector<ReplayOutcome> replay_joint(
      const std::vector<repair::RepairCandidate>& cands);
};

}  // namespace mp::backtest
