#include "storage/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <filesystem>

#include "eval/ckpt_format.h"
#include "obs/obs.h"

namespace mp::storage {

namespace fs = std::filesystem;

namespace {

// storage.segment.* instruments (process-cumulative across stores).
// Registered once; relaxed-atomic adds after that.
struct SegmentObs {
  obs::Counter& bytes_written;
  obs::Counter& flushes;
  obs::Counter& fsyncs;
  obs::Counter& rotations;
  obs::Counter& sections;
  obs::Counter& recovered_events;
  obs::Counter& dropped_bytes;
  static SegmentObs& get() {
    obs::Registry& r = obs::Registry::global();
    static SegmentObs o{r.counter("storage.segment.bytes_written"),
                        r.counter("storage.segment.flushes"),
                        r.counter("storage.segment.fsyncs"),
                        r.counter("storage.segment.rotations"),
                        r.counter("storage.segment.sections"),
                        r.counter("storage.segment.recovered_events"),
                        r.counter("storage.segment.dropped_bytes")};
    return o;
  }
};

std::string segment_path(const std::string& dir, size_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06zu.mpseg", seq);
  return dir + "/" + name;
}

void write_all(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      assert(false && "segment write failed");
      return;
    }
    p += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
}

}  // namespace

SegmentStore::SegmentStore(std::string dir, SegmentStoreOptions opt)
    : dir_(std::move(dir)), opt_(opt) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  recover();
}

SegmentStore::~SegmentStore() {
  flush(opt_.fsync != FsyncPolicy::kNever);
  if (fd_ >= 0) ::close(fd_);
}

void SegmentStore::recover() {
  // Segment names embed a zero-padded sequence number, so lexicographic
  // order is id order.
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir_, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("seg-", 0) == 0 &&
        name.size() > 10 && name.substr(name.size() - 6) == ".mpseg") {
      paths.push_back(ent.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  size_t i = 0;
  for (; i < paths.size(); ++i) {
    SegmentReader r(paths[i]);
    // A segment must pick up exactly where the previous one ended; a bad
    // header or an id gap means this file (and everything after it) holds
    // nothing recoverable.
    if (!r.ok() || r.first_id() != events_) break;
    if (r.valid_bytes() < r.file_bytes()) {
      // Torn tail: truncate to the durable prefix. Later files cannot be
      // valid (they would leave an id gap), so the loop below drops them.
      dropped_bytes_ += r.file_bytes() - r.valid_bytes();
      ::truncate(paths[i].c_str(), static_cast<off_t>(r.valid_bytes()));
    }
    segments_.push_back(SegmentMeta{paths[i], r.first_id(), r.events(),
                                    r.valid_bytes()});
    events_ += r.events();
    disk_bytes_ += r.valid_bytes();
    if (r.valid_bytes() < r.file_bytes()) {
      ++i;
      break;
    }
  }
  for (; i < paths.size(); ++i) {
    std::error_code rm_ec;
    dropped_bytes_ += fs::file_size(paths[i], rm_ec);
    fs::remove(paths[i], rm_ec);
  }
  recovered_events_ = events_;
  if (obs::enabled()) {
    SegmentObs::get().recovered_events.add(recovered_events_);
    SegmentObs::get().dropped_bytes.add(dropped_bytes_);
  }
}

void SegmentStore::open_new_segment() {
  assert(buffer_.empty());
  const std::string path = segment_path(dir_, segments_.size());
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  assert(fd_ >= 0 && "cannot create segment file");
  segments_.push_back(SegmentMeta{path, events_, 0, 0});
  // File header goes through the group buffer like everything else.
  buffer_.insert(buffer_.end(), kFileMagic, kFileMagic + sizeof(kFileMagic));
  eval::ckpt::put_u16(buffer_, kFormatVersion);
  eval::ckpt::put_u64(buffer_, events_);
}

void SegmentStore::open_last_for_append() {
  fd_ = ::open(segments_.back().path.c_str(), O_WRONLY | O_APPEND);
  assert(fd_ >= 0 && "cannot reopen segment for append");
}

void SegmentStore::rotate() {
  flush(opt_.fsync != FsyncPolicy::kNever);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  open_new_segment();
  if (obs::enabled()) SegmentObs::get().rotations.inc();
}

void SegmentStore::flush(bool sync) const {
  if (!buffer_.empty() && fd_ >= 0) {
    write_all(fd_, buffer_.data(), buffer_.size());
    disk_bytes_ += buffer_.size();
    const_cast<SegmentStore*>(this)->segments_.back().flushed_bytes +=
        buffer_.size();
    if (obs::enabled()) {
      SegmentObs::get().bytes_written.add(buffer_.size());
      SegmentObs::get().flushes.inc();
    }
    buffer_.clear();
  }
  if (sync && fd_ >= 0) {
    ::fsync(fd_);
    if (obs::enabled()) SegmentObs::get().fsyncs.inc();
  }
}

void SegmentStore::append_section(eval::EventId first_id, size_t count,
                                  std::span<const uint8_t> entries,
                                  std::span<const uint8_t> names) {
  assert(first_id == events_ && "sections must arrive in id order");
  (void)first_id;
  if (fd_ < 0) {
    if (segments_.empty()) {
      open_new_segment();
    } else {
      open_last_for_append();
    }
  }
  const size_t incoming =
      2 * kChunkHeaderBytes + entries.size() + names.size();
  // Rotate at section boundaries only (each section is self-contained),
  // and never on an empty segment — an oversized section must still land
  // somewhere.
  if (segments_.back().events > 0 &&
      segments_.back().flushed_bytes + buffer_.size() + incoming >
          opt_.rotate_bytes) {
    rotate();
  }
  append_chunk_header(buffer_, kChunkNames, events_,
                      0, names.data(), static_cast<uint32_t>(names.size()));
  buffer_.insert(buffer_.end(), names.begin(), names.end());
  append_chunk_header(buffer_, kChunkEntries, events_,
                      static_cast<uint32_t>(count), entries.data(),
                      static_cast<uint32_t>(entries.size()));
  buffer_.insert(buffer_.end(), entries.begin(), entries.end());
  segments_.back().events += count;
  events_ += count;
  if (obs::enabled()) SegmentObs::get().sections.inc();
  if (opt_.fsync == FsyncPolicy::kOnAppend) {
    flush(true);
  } else if (buffer_.size() >= opt_.group_buffer_bytes) {
    flush(false);
  }
}

void SegmentStore::replay_raw(
    const std::function<bool(const eval::RawEvent&)>& fn) const {
  flush(false);  // readers mmap the files; pending bytes must be visible
  for (const SegmentMeta& meta : segments_) {
    bool stopped = false;
    SegmentReader r(meta.path);
    r.for_each([&](const eval::RawEvent& re) {
      if (!fn(re)) {
        stopped = true;
        return false;
      }
      return true;
    });
    if (stopped) return;
  }
}

}  // namespace mp::storage
