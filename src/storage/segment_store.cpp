#include "storage/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "eval/ckpt_format.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace mp::storage {

namespace fs = std::filesystem;

namespace {

// storage.segment.* instruments (process-cumulative across stores), plus
// the storage.{write_errors,retries,degraded} error surface.
// Registered once; relaxed-atomic adds after that.
struct SegmentObs {
  obs::Counter& bytes_written;
  obs::Counter& flushes;
  obs::Counter& fsyncs;
  obs::Counter& rotations;
  obs::Counter& sections;
  obs::Counter& recovered_events;
  obs::Counter& dropped_bytes;
  obs::Counter& write_errors;
  obs::Counter& retries;
  obs::Counter& degraded;
  static SegmentObs& get() {
    obs::Registry& r = obs::Registry::global();
    static SegmentObs o{r.counter("storage.segment.bytes_written"),
                        r.counter("storage.segment.flushes"),
                        r.counter("storage.segment.fsyncs"),
                        r.counter("storage.segment.rotations"),
                        r.counter("storage.segment.sections"),
                        r.counter("storage.segment.recovered_events"),
                        r.counter("storage.segment.dropped_bytes"),
                        r.counter("storage.write_errors"),
                        r.counter("storage.retries"),
                        r.counter("storage.degraded")};
    return o;
  }
};

std::string segment_path(const std::string& dir, size_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06zu.mpseg", seq);
  return dir + "/" + name;
}

// Syscall wrappers carrying the failpoints (fault builds only; the
// macros are the literal 0 otherwise and the branches fold away).
// "storage.segment.short_write" genuinely writes half the request — the
// caller must cope with real partial progress, not a simulated flag.
ssize_t fp_write(int fd, const uint8_t* p, size_t n) {
  if (const int ec = MP_FAILPOINT("storage.segment.write")) {
    errno = ec;
    return -1;
  }
  if (MP_FAILPOINT("storage.segment.short_write") != 0 && n > 1) {
    n /= 2;
  }
  return ::write(fd, p, n);
}

int fp_fsync(int fd) {
  if (const int ec = MP_FAILPOINT("storage.segment.fsync")) {
    errno = ec;
    return -1;
  }
  return ::fsync(fd);
}

int fp_open(const char* path, int flags, mode_t mode) {
  if (const int ec = MP_FAILPOINT("storage.segment.open")) {
    errno = ec;
    return -1;
  }
  return ::open(path, flags, mode);
}

bool transient_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK;
}

}  // namespace

SegmentStore::SegmentStore(std::string dir, SegmentStoreOptions opt)
    : dir_(std::move(dir)), opt_(opt) {
  if (const int ec = MP_FAILPOINT("storage.segment.mkdir")) {
    fail(Status(StatusCode::kIoError, "create segment dir " + dir_, ec));
    return;
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!fs::is_directory(dir_)) {
    // Unwritable parent, or a regular file squatting on the path: the
    // store latches failed() at attach time (or throws under kFailStop)
    // and stays an inert, interrogable object.
    fail(Status(StatusCode::kIoError, "create segment dir " + dir_,
                ec.value() != 0 ? ec.value() : ENOTDIR));
    return;
  }
  recover();
}

SegmentStore::~SegmentStore() {
  try {
    flush(opt_.fsync != FsyncPolicy::kNever);
  } catch (const IoError&) {
    // kFailStop stores throw on the failing call, but never from here.
  }
  if (fd_ >= 0) ::close(fd_);
}

void SegmentStore::fail(Status s) const {
  if (!failed_) {
    failed_ = true;
    status_ = std::move(s);
    if (obs::enabled()) SegmentObs::get().degraded.inc();
  }
  if (opt_.on_error == ErrorPolicy::kFailStop) throw IoError(status_);
}

void SegmentStore::recover() {
  // Segment names embed a zero-padded sequence number, so lexicographic
  // order is id order.
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir_, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("seg-", 0) == 0 &&
        name.size() > 10 && name.substr(name.size() - 6) == ".mpseg") {
      paths.push_back(ent.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  size_t i = 0;
  for (; i < paths.size(); ++i) {
    SegmentReader r(paths[i]);
    // A segment must pick up exactly where the previous one ended; a bad
    // header or an id gap means this file (and everything after it) holds
    // nothing recoverable. A zero-length file (crash between open and the
    // first header write) lands here too: !ok(), dropped below.
    if (!r.ok() || r.first_id() != events_) break;
    if (r.valid_bytes() < r.file_bytes()) {
      // Torn tail: truncate to the durable prefix. Later files cannot be
      // valid (they would leave an id gap), so the loop below drops them.
      dropped_bytes_ += r.file_bytes() - r.valid_bytes();
      ::truncate(paths[i].c_str(), static_cast<off_t>(r.valid_bytes()));
    }
    segments_.push_back(SegmentMeta{paths[i], r.first_id(), r.events(),
                                    r.valid_bytes()});
    events_ += r.events();
    disk_bytes_ += r.valid_bytes();
    if (r.valid_bytes() < r.file_bytes()) {
      ++i;
      break;
    }
  }
  for (; i < paths.size(); ++i) {
    std::error_code rm_ec;
    dropped_bytes_ += fs::file_size(paths[i], rm_ec);
    fs::remove(paths[i], rm_ec);
  }
  recovered_events_ = events_;
  buffer_first_id_ = events_;
  if (obs::enabled()) {
    SegmentObs::get().recovered_events.add(recovered_events_);
    SegmentObs::get().dropped_bytes.add(dropped_bytes_);
  }
}

bool SegmentStore::open_new_segment() {
  assert(buffer_.empty());
  const std::string path = segment_path(dir_, segments_.size());
  fd_ = fp_open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    fail(Status(StatusCode::kIoError, "create segment " + path, errno));
    return false;
  }
  segments_.push_back(SegmentMeta{path, events_, 0, 0});
  buffer_first_id_ = events_;
  // File header goes through the group buffer like everything else.
  buffer_.insert(buffer_.end(), kFileMagic, kFileMagic + sizeof(kFileMagic));
  eval::ckpt::put_u16(buffer_, kFormatVersion);
  eval::ckpt::put_u64(buffer_, events_);
  return true;
}

bool SegmentStore::open_last_for_append() {
  fd_ = fp_open(segments_.back().path.c_str(), O_WRONLY | O_APPEND, 0);
  if (fd_ < 0) {
    fail(Status(StatusCode::kIoError,
                "reopen segment " + segments_.back().path, errno));
    return false;
  }
  return true;
}

void SegmentStore::rotate() {
  flush(opt_.fsync != FsyncPolicy::kNever);
  // A failed flush aborts the rotation: the retained buffer belongs to
  // the current segment (the buffer must never span a segment boundary).
  if (failed_) return;
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  if (!open_new_segment()) return;
  if (obs::enabled()) SegmentObs::get().rotations.inc();
}

Status SegmentStore::write_all(int fd, const uint8_t* p, size_t n) const {
  uint32_t attempts = 0;
  uint32_t backoff = opt_.backoff_initial_us;
  while (n > 0) {
    const ssize_t w = fp_write(fd, p, n);
    if (w > 0) {
      // A short write is not an error: advance past what landed and keep
      // going, with a fresh retry budget (progress was made).
      p += static_cast<size_t>(w);
      n -= static_cast<size_t>(w);
      attempts = 0;
      backoff = opt_.backoff_initial_us;
      continue;
    }
    if (w < 0 && errno == EINTR) continue;  // always retried, never counted
    const int err = w < 0 ? errno : 0;  // w == 0: no progress, no errno
    ++write_errors_;
    if (obs::enabled()) SegmentObs::get().write_errors.inc();
    if (w < 0 && !transient_errno(err)) {
      return Status(err == ENOSPC ? StatusCode::kNoSpace
                                  : StatusCode::kIoError,
                    "write " + segments_.back().path, err);
    }
    if (attempts >= opt_.max_retries) {
      return Status(StatusCode::kRetryExhausted,
                    "write " + segments_.back().path, err);
    }
    ++attempts;
    ++retries_;
    if (obs::enabled()) SegmentObs::get().retries.inc();
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    backoff = std::min(backoff * 2, opt_.backoff_cap_us);
  }
  return Status();
}

Status SegmentStore::fsync_with_retry(int fd) const {
  uint32_t attempts = 0;
  uint32_t backoff = opt_.backoff_initial_us;
  while (fp_fsync(fd) != 0) {
    if (errno == EINTR) continue;
    ++write_errors_;
    if (obs::enabled()) SegmentObs::get().write_errors.inc();
    if (!transient_errno(errno) || attempts >= opt_.max_retries) {
      return Status(errno == ENOSPC ? StatusCode::kNoSpace
                                    : StatusCode::kIoError,
                    "fsync " + segments_.back().path, errno);
    }
    ++attempts;
    ++retries_;
    if (obs::enabled()) SegmentObs::get().retries.inc();
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    backoff = std::min(backoff * 2, opt_.backoff_cap_us);
  }
  return Status();
}

void SegmentStore::flush(bool sync) const {
  // Sticky: once failed, the buffer is the accepted-but-not-durable tail
  // and must be RETAINED — replay_raw decodes it in place, and clearing
  // it would lose accepted events in-process.
  if (failed_) return;
  if (!buffer_.empty() && fd_ >= 0) {
    Status st = write_all(fd_, buffer_.data(), buffer_.size());
    if (!st.ok()) {
      // The file may hold a partial copy of the buffer (complete sections
      // included); disk accounting stays conservative and replay dedups
      // by event id.
      fail(std::move(st));
      return;
    }
    disk_bytes_ += buffer_.size();
    const_cast<SegmentStore*>(this)->segments_.back().flushed_bytes +=
        buffer_.size();
    if (obs::enabled()) {
      SegmentObs::get().bytes_written.add(buffer_.size());
      SegmentObs::get().flushes.inc();
    }
    buffer_.clear();
    buffer_first_id_ = events_;
  }
  if (sync && fd_ >= 0) {
    Status st = fsync_with_retry(fd_);
    if (!st.ok()) {
      fail(std::move(st));
      return;
    }
    if (obs::enabled()) SegmentObs::get().fsyncs.inc();
  }
}

bool SegmentStore::append_section(eval::EventId first_id, size_t count,
                                  std::span<const uint8_t> entries,
                                  std::span<const uint8_t> names) {
  if (failed_) return false;
  assert(first_id == events_ && "sections must arrive in id order");
  (void)first_id;
  if (fd_ < 0) {
    const bool opened =
        segments_.empty() ? open_new_segment() : open_last_for_append();
    if (!opened) return false;  // nothing buffered; failed() latched
  }
  const size_t incoming =
      2 * kChunkHeaderBytes + entries.size() + names.size();
  // Rotate at section boundaries only (each section is self-contained),
  // and never on an empty segment — an oversized section must still land
  // somewhere.
  if (segments_.back().events > 0 &&
      segments_.back().flushed_bytes + buffer_.size() + incoming >
          opt_.rotate_bytes) {
    rotate();
    if (failed_) return false;
  }
  if (buffer_.empty()) buffer_first_id_ = events_;
  append_chunk_header(buffer_, kChunkNames, events_,
                      0, names.data(), static_cast<uint32_t>(names.size()));
  buffer_.insert(buffer_.end(), names.begin(), names.end());
  append_chunk_header(buffer_, kChunkEntries, events_,
                      static_cast<uint32_t>(count), entries.data(),
                      static_cast<uint32_t>(entries.size()));
  buffer_.insert(buffer_.end(), entries.begin(), entries.end());
  segments_.back().events += count;
  events_ += count;
  if (obs::enabled()) SegmentObs::get().sections.inc();
  // The section is accepted from here on: its bytes are in the buffer. A
  // flush failure below latches failed() (or throws, kFailStop) but does
  // not un-accept — the retained buffer keeps the events replayable.
  if (opt_.fsync == FsyncPolicy::kOnAppend) {
    flush(true);
  } else if (buffer_.size() >= opt_.group_buffer_bytes) {
    flush(false);
  }
  return true;
}

void SegmentStore::replay_raw(
    const std::function<bool(const eval::RawEvent&)>& fn) const {
  flush(false);  // readers mmap the files; pending bytes must be visible
  // `next` is the only id accepted: duplicates below it (a partially
  // flushed buffer re-decoded from RAM) are skipped, and a gap above it
  // (a segment deleted out from under the store) ends the replay at the
  // contiguous prefix instead of replaying a hole.
  uint64_t next = 0;
  bool stopped = false;
  auto emit = [&](const eval::RawEvent& re) {
    if (re.id < next) return true;
    if (re.id != next) return false;
    ++next;
    if (!fn(re)) {
      stopped = true;
      return false;
    }
    return true;
  };
  for (const SegmentMeta& meta : segments_) {
    SegmentReader r(meta.path);
    if (!r.ok() || r.first_id() > next) break;
    r.for_each(emit);
    if (stopped) return;
  }
  if (failed_ && !buffer_.empty()) {
    // Degraded store: the retained group buffer holds the accepted tail
    // that never became durable. Decode it in place (it may or may not
    // start with a file header, depending on where the failure hit).
    SegmentReader r(buffer_.data(), buffer_.size(), buffer_first_id_);
    r.for_each(emit);
  }
}

}  // namespace mp::storage
