// Durable segment files for EventLog checkpoints (ROADMAP "Durable
// segmented event-log store"; write-path shape after the append-only
// sequential-zone discipline in the log-structured-storage related work —
// see PAPERS.md).
//
// A segment is an append-only file of CRC-framed chunks:
//
//   file header (16 B):  "MPSEG\0" | u16 version | u64 first_event_id
//   chunk header (32 B): u32 chunk magic | u8 kind | u8[3] pad |
//                        u64 first_event_id | u32 count |
//                        u32 payload_len | u32 payload_crc32 |
//                        u32 header_crc32 (over the first 28 bytes)
//
// Each EventLog::compact() section lands as two chunks: a names chunk
// (kind 0, the section's string-table records) immediately followed by an
// entries chunk (kind 1, `count` serialized entries in the
// eval/ckpt_format.h layout covering events [first_event_id,
// first_event_id + count)). Sections are self-contained — the log resets
// its name dedup per section — so a segment boundary can fall between any
// two sections and every segment decodes standalone.
//
// Recovery invariant: a crash can tear only the tail. SegmentReader walks
// chunks front to back and stops at the first invalid header, CRC
// mismatch, payload overrun, or id discontinuity; valid_bytes() is the
// end of the last complete section before that point, so truncating the
// file there (SegmentStore does on open) yields exactly the durable
// prefix. The kill-at-every-byte sweep in tests/storage_test.cpp pins
// this for all truncation offsets.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/event_log.h"

namespace mp::storage {

inline constexpr char kFileMagic[6] = {'M', 'P', 'S', 'E', 'G', '\0'};
// Version 2: entries use the 22-byte eval/ckpt_format.h header (no
// per-entry time field — ids come from the chunk header's first_event_id
// — and ncauses narrowed to u8). Version-1 segments are rejected on open;
// recovery of a v1 store requires replaying it with a v1 build first.
inline constexpr uint16_t kFormatVersion = 2;
inline constexpr size_t kFileHeaderBytes = 16;
inline constexpr uint32_t kChunkMagic = 0x314b4843;  // "CHK1"
inline constexpr size_t kChunkHeaderBytes = 32;
inline constexpr uint8_t kChunkNames = 0;
inline constexpr uint8_t kChunkEntries = 1;

// When segment writes reach the disk (SegmentStoreOptions::fsync).
enum class FsyncPolicy : uint8_t {
  kNever,     // leave it to the OS (tests, benchmarks)
  kOnRotate,  // fsync when a segment is sealed (bounded loss: one segment)
  kOnAppend,  // fsync every flushed append (group commit is the batching)
};

// Self-contained CRC-32 (IEEE, reflected 0xEDB88320) — the framing
// checksum; no external zlib dependency.
uint32_t crc32(const uint8_t* data, size_t n, uint32_t seed = 0);

// Serializes a chunk header into `out` (the payload follows separately).
void append_chunk_header(std::vector<uint8_t>& out, uint8_t kind,
                         uint64_t first_event_id, uint32_t count,
                         const uint8_t* payload, uint32_t payload_len);

// Read-only mmap view of one segment file, decoding events with no live
// engine, catalog or pool attached: table/rule names and node values come
// from the segment's own names chunks (string_views point into the map
// and stay valid for the reader's lifetime; per-event row/cause scratch
// is valid until the next decoded event).
class SegmentReader {
 public:
  explicit SegmentReader(const std::string& path);
  // In-memory view (no mmap, nothing owned): decodes a chunk stream held
  // in RAM — how a degraded store replays its retained group buffer
  // (SegmentStore::replay_raw). If `data` begins with a segment file
  // header it is parsed normally; otherwise the stream is taken to start
  // at a chunk boundary with `fallback_first_id` as its first event id
  // (the buffer of a mid-segment flush carries no header). `data` must
  // outlive the reader.
  SegmentReader(const uint8_t* data, size_t size, uint64_t fallback_first_id);
  ~SegmentReader();
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  // File header parsed and version understood. A reader that is !ok()
  // holds no events and zero valid bytes.
  bool ok() const { return ok_; }
  uint64_t first_id() const { return first_id_; }
  // Events in the valid (CRC-complete, id-contiguous) prefix.
  size_t events() const { return events_; }
  // Byte length of the valid prefix: end of its last complete section.
  // valid_bytes() < file_bytes() means a torn tail was detected.
  size_t valid_bytes() const { return valid_bytes_; }
  size_t file_bytes() const { return size_; }

  // Streams the valid prefix's events in id order; `fn` returns false to
  // stop. Returns the number of events visited.
  size_t for_each(const std::function<bool(const eval::RawEvent&)>& fn) const;

 private:
  void validate();

  bool ok_ = false;
  bool mem_view_ = false;  // borrowed RAM stream: no munmap, header optional
  uint64_t first_id_ = 0;
  size_t events_ = 0;
  size_t valid_bytes_ = 0;
  size_t begin_ = kFileHeaderBytes;  // offset of the first chunk
  const uint8_t* data_ = nullptr;  // mmap base (nullptr if open failed)
  size_t size_ = 0;
};

}  // namespace mp::storage
