// SegmentStore: the durable CheckpointSink (see eval/event_log.h).
//
// EventLog::compact() sections are framed into CRC'd chunks (format in
// storage/segment.h) and group-committed sequentially into append-only
// segment files `dir/seg-NNNNNN.mpseg`. Writes accumulate in a RAM buffer
// and hit the file when the buffer crosses group_buffer_bytes (or on
// flush()/fsync policy); a segment seals and the store rotates to a fresh
// file when it crosses rotate_bytes — always at a section boundary, so
// every segment decodes standalone.
//
// Construction is crash recovery: scan the directory, validate each
// segment front to back with SegmentReader (CRC + id continuity),
// truncate the torn tail of the last usable segment, delete anything
// after the first unusable one, and resume appending where the durable
// prefix ends. A store therefore always exposes a contiguous event range
// [0, events()) regardless of how the previous process died.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/event_log.h"
#include "storage/segment.h"

namespace mp::storage {

struct SegmentStoreOptions {
  size_t rotate_bytes = 4u << 20;        // seal a segment past this size
  size_t group_buffer_bytes = 256u << 10;  // group-commit threshold
  FsyncPolicy fsync = FsyncPolicy::kNever;
};

class SegmentStore final : public eval::CheckpointSink {
 public:
  // Creates `dir` if needed and recovers whatever segments it holds.
  explicit SegmentStore(std::string dir, SegmentStoreOptions opt = {});
  ~SegmentStore() override;
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  // --- CheckpointSink ---------------------------------------------------
  void append_section(eval::EventId first_id, size_t count,
                      std::span<const uint8_t> entries,
                      std::span<const uint8_t> names) override;
  void replay_raw(
      const std::function<bool(const eval::RawEvent&)>& fn) const override;
  size_t events() const override { return events_; }
  // Durable footprint: flushed file bytes plus the pending group buffer.
  size_t bytes() const override { return disk_bytes_ + buffer_.size(); }

  // Writes the group buffer through to the current segment file
  // (optionally fsyncing). Logically const: moves queued bytes to disk
  // without changing the store's contents — replay_raw flushes first so
  // the mmap readers see everything appended.
  void flush(bool sync) const;

  size_t segment_count() const { return segments_.size(); }
  const std::string& dir() const { return dir_; }
  // Recovery report: events found durable at construction, and bytes
  // discarded as torn/unreachable.
  size_t recovered_events() const { return recovered_events_; }
  size_t dropped_bytes() const { return dropped_bytes_; }

 private:
  struct SegmentMeta {
    std::string path;
    uint64_t first_id = 0;
    size_t events = 0;
    size_t flushed_bytes = 0;  // bytes actually in the file
  };

  void recover();
  void open_new_segment();
  void open_last_for_append();
  void rotate();

  std::string dir_;
  SegmentStoreOptions opt_;
  std::vector<SegmentMeta> segments_;  // in id order; back() is current
  size_t events_ = 0;
  size_t recovered_events_ = 0;
  size_t dropped_bytes_ = 0;
  // Group-commit state (mutable: flush() is logically const, see above).
  mutable std::vector<uint8_t> buffer_;
  mutable size_t disk_bytes_ = 0;  // flushed bytes across all segments
  mutable int fd_ = -1;            // current segment, positioned at end
};

}  // namespace mp::storage
