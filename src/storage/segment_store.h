// SegmentStore: the durable CheckpointSink (see eval/event_log.h).
//
// EventLog::compact() sections are framed into CRC'd chunks (format in
// storage/segment.h) and group-committed sequentially into append-only
// segment files `dir/seg-NNNNNN.mpseg`. Writes accumulate in a RAM buffer
// and hit the file when the buffer crosses group_buffer_bytes (or on
// flush()/fsync policy); a segment seals and the store rotates to a fresh
// file when it crosses rotate_bytes — always at a section boundary, so
// every segment decodes standalone.
//
// Construction is crash recovery: scan the directory, validate each
// segment front to back with SegmentReader (CRC + id continuity),
// truncate the torn tail of the last usable segment, delete anything
// after the first unusable one, and resume appending where the durable
// prefix ends. A store therefore always exposes a contiguous event range
// [0, events()) regardless of how the previous process died.
//
// Error handling (full contract table in src/storage/README.md): every
// I/O call goes through a bounded retry loop — EINTR retries free,
// transient conditions (EAGAIN, zero-length writes, failed fsync) retry
// up to SegmentStoreOptions::max_retries with exponential backoff, and a
// short write just advances the buffer pointer. A terminal error
// (ENOSPC/EIO/exhausted retries) latches the sticky failed() state. Under
// ErrorPolicy::kDegrade (default) the store stays silently alive: the
// group buffer is RETAINED (never discarded), so the accepted event range
// [0, events()) remains fully replayable in-process — replay_raw decodes
// the durable file prefix, then the retained buffer via SegmentReader's
// memory view. A failed() sink makes EventLog::compact() fall back to
// in-RAM checkpoints, so no in-process event is ever lost; only
// durability of the un-flushed tail is. Under kFailStop the latching call
// throws storage::IoError instead (never from the destructor).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/event_log.h"
#include "storage/segment.h"
#include "util/status.h"

namespace mp::storage {

// What a terminal I/O error does to the store (SegmentStoreOptions).
enum class ErrorPolicy : uint8_t {
  kDegrade,   // latch sticky failed(); the engine continues on RAM ckpts
  kFailStop,  // the failing call throws storage::IoError
};

// Thrown by ErrorPolicy::kFailStop stores on terminal I/O errors.
class IoError : public std::runtime_error {
 public:
  explicit IoError(Status s)
      : std::runtime_error(s.to_string()), status_(std::move(s)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

struct SegmentStoreOptions {
  size_t rotate_bytes = 4u << 20;        // seal a segment past this size
  size_t group_buffer_bytes = 256u << 10;  // group-commit threshold
  FsyncPolicy fsync = FsyncPolicy::kNever;
  // Transient-error retry budget: EAGAIN, zero-length writes and failed
  // fsyncs retry up to max_retries times, sleeping backoff_initial_us
  // before the first retry and doubling up to backoff_cap_us. Any write
  // progress resets the budget. EINTR always retries and never counts.
  uint32_t max_retries = 8;
  uint32_t backoff_initial_us = 16;
  uint32_t backoff_cap_us = 2048;
  ErrorPolicy on_error = ErrorPolicy::kDegrade;
};

class SegmentStore final : public eval::CheckpointSink {
 public:
  // Creates `dir` if needed and recovers whatever segments it holds. A
  // directory that cannot be created/used latches failed() immediately
  // (or throws under kFailStop): the store is then a valid but inert
  // object callers can interrogate.
  explicit SegmentStore(std::string dir, SegmentStoreOptions opt = {});
  ~SegmentStore() override;
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  // --- CheckpointSink ---------------------------------------------------
  // Returns true iff the section was accepted (its bytes entered the
  // group buffer). A failed() store rejects sections; a flush failure
  // AFTER acceptance latches failed() but does not un-accept — the bytes
  // stay in the retained buffer and remain replayable in-process.
  bool append_section(eval::EventId first_id, size_t count,
                      std::span<const uint8_t> entries,
                      std::span<const uint8_t> names) override;
  void replay_raw(
      const std::function<bool(const eval::RawEvent&)>& fn) const override;
  size_t events() const override { return events_; }
  // Durable footprint: flushed file bytes plus the pending group buffer.
  size_t bytes() const override { return disk_bytes_ + buffer_.size(); }
  // Sticky terminal-failure latch (see file comment).
  bool failed() const override { return failed_; }

  // The first terminal error, if any (OK while !failed()).
  const Status& status() const { return status_; }

  // Writes the group buffer through to the current segment file
  // (optionally fsyncing). Logically const: moves queued bytes to disk
  // without changing the store's contents — replay_raw flushes first so
  // the mmap readers see everything appended. No-op once failed().
  void flush(bool sync) const;

  size_t segment_count() const { return segments_.size(); }
  const std::string& dir() const { return dir_; }
  // Recovery report: events found durable at construction, and bytes
  // discarded as torn/unreachable.
  size_t recovered_events() const { return recovered_events_; }
  size_t dropped_bytes() const { return dropped_bytes_; }
  // Local I/O-error accounting (process-cumulative counterparts live in
  // obs as storage.write_errors / storage.retries / storage.degraded).
  size_t write_errors() const { return write_errors_; }
  size_t retries() const { return retries_; }

 private:
  struct SegmentMeta {
    std::string path;
    uint64_t first_id = 0;
    size_t events = 0;
    size_t flushed_bytes = 0;  // bytes actually in the file
  };

  void recover();
  bool open_new_segment();
  bool open_last_for_append();
  void rotate();
  // Retry loop around ::write (see SegmentStoreOptions). Returns the
  // first terminal Status; partial progress advances the pointer.
  Status write_all(int fd, const uint8_t* p, size_t n) const;
  Status fsync_with_retry(int fd) const;
  // Latches the sticky failed() state (first error wins) and, under
  // kFailStop, throws IoError (the destructor catches it).
  void fail(Status s) const;

  std::string dir_;
  SegmentStoreOptions opt_;
  std::vector<SegmentMeta> segments_;  // in id order; back() is current
  size_t events_ = 0;
  size_t recovered_events_ = 0;
  size_t dropped_bytes_ = 0;
  // Group-commit state (mutable: flush() is logically const, see above).
  mutable std::vector<uint8_t> buffer_;
  mutable size_t disk_bytes_ = 0;  // flushed bytes across all segments
  mutable int fd_ = -1;            // current segment, positioned at end
  // First event id covered by the buffer's chunk stream (meaningful while
  // the buffer is non-empty; replay of a degraded store's retained buffer
  // decodes from here).
  mutable uint64_t buffer_first_id_ = 0;
  // Failure latch + accounting (mutable: a const flush() can fail).
  mutable bool failed_ = false;
  mutable Status status_;
  mutable size_t write_errors_ = 0;
  mutable size_t retries_ = 0;
};

}  // namespace mp::storage
