#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "eval/ckpt_format.h"

namespace mp::storage {

namespace ckpt = mp::eval::ckpt;

uint32_t crc32(const uint8_t* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) c = kTable[(c ^ data[i]) & 0xff] ^ (c >> 8);
  return ~c;
}

void append_chunk_header(std::vector<uint8_t>& out, uint8_t kind,
                         uint64_t first_event_id, uint32_t count,
                         const uint8_t* payload, uint32_t payload_len) {
  const size_t start = out.size();
  ckpt::put_u32(out, kChunkMagic);
  out.push_back(kind);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  ckpt::put_u64(out, first_event_id);
  ckpt::put_u32(out, count);
  ckpt::put_u32(out, payload_len);
  ckpt::put_u32(out, crc32(payload, payload_len));
  // Header CRC over the 28 bytes above: a write torn inside the header
  // itself is caught without trusting payload_len.
  ckpt::put_u32(out, crc32(out.data() + start, kChunkHeaderBytes - 4));
}

SegmentReader::SegmentReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return;
  }
  size_ = static_cast<size_t>(st.st_size);
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    size_ = 0;
    return;
  }
  data_ = static_cast<const uint8_t*>(map);
  validate();
}

SegmentReader::SegmentReader(const uint8_t* data, size_t size,
                             uint64_t fallback_first_id)
    : mem_view_(true), first_id_(fallback_first_id), data_(data),
      size_(size) {
  validate();
}

SegmentReader::~SegmentReader() {
  if (data_ != nullptr && !mem_view_) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

void SegmentReader::validate() {
  const bool has_header =
      size_ >= kFileHeaderBytes &&
      std::memcmp(data_, kFileMagic, sizeof(kFileMagic)) == 0;
  if (has_header) {
    if (ckpt::get_u16(data_ + 6) != kFormatVersion) return;
    first_id_ = ckpt::get_u64(data_ + 8);
    begin_ = kFileHeaderBytes;
  } else if (mem_view_) {
    // A headerless RAM stream (mid-segment group buffer): chunks start at
    // offset 0 and first_id_ keeps the caller's fallback.
    begin_ = 0;
  } else {
    return;  // files must open with a header
  }
  ok_ = true;
  valid_bytes_ = begin_;
  // Walk chunks; the valid prefix ends at the first torn or out-of-place
  // chunk. valid_bytes_ only advances past a complete section (its
  // entries chunk): a trailing lone names chunk carries no events and is
  // dropped with the tail.
  size_t pos = begin_;
  while (pos + kChunkHeaderBytes <= size_) {
    const uint8_t* h = data_ + pos;
    if (ckpt::get_u32(h) != kChunkMagic) break;
    if (crc32(h, kChunkHeaderBytes - 4) !=
        ckpt::get_u32(h + kChunkHeaderBytes - 4)) {
      break;
    }
    const uint8_t kind = h[4];
    const uint64_t chunk_first = ckpt::get_u64(h + 8);
    const uint32_t count = ckpt::get_u32(h + 16);
    const uint32_t payload_len = ckpt::get_u32(h + 20);
    if (kind != kChunkNames && kind != kChunkEntries) break;
    if (pos + kChunkHeaderBytes + payload_len > size_) break;  // torn tail
    const uint8_t* payload = h + kChunkHeaderBytes;
    if (crc32(payload, payload_len) != ckpt::get_u32(h + 24)) break;
    if (kind == kChunkEntries) {
      // Sections must cover a contiguous id range from the file header's
      // first id: a gap means lost data, not a usable suffix.
      if (chunk_first != first_id_ + events_) break;
      events_ += count;
      valid_bytes_ = pos + kChunkHeaderBytes + payload_len;
    }
    pos += kChunkHeaderBytes + payload_len;
  }
}

size_t SegmentReader::for_each(
    const std::function<bool(const eval::RawEvent&)>& fn) const {
  if (!ok_) return 0;
  // Per-segment name tables, rebuilt at every names chunk (each section
  // is self-contained). Name/rule views point into the mmap; node Values
  // are materialized once per record.
  std::vector<std::string_view> tables;
  std::vector<std::string_view> rules;
  std::vector<Value> nodes;
  Row row;
  std::vector<eval::EventId> causes;
  size_t visited = 0;
  size_t pos = begin_;
  while (pos + kChunkHeaderBytes <= valid_bytes_) {
    const uint8_t* h = data_ + pos;
    const uint8_t kind = h[4];
    const uint32_t count = ckpt::get_u32(h + 16);
    const uint32_t payload_len = ckpt::get_u32(h + 20);
    const uint8_t* p = h + kChunkHeaderBytes;
    const uint8_t* end = p + payload_len;
    if (kind == kChunkNames) {
      tables.clear();
      rules.clear();
      nodes.clear();
      while (p < end) {
        const uint8_t rec_kind = *p++;
        const uint16_t id = ckpt::get_u16(p);
        p += 2;
        if (rec_kind == ckpt::kNameNode) {
          Value v = ckpt::get_value(p);
          if (id >= nodes.size()) nodes.resize(id + 1);
          nodes[id] = std::move(v);
        } else {
          const uint16_t len = ckpt::get_u16(p);
          p += 2;
          const std::string_view name(reinterpret_cast<const char*>(p), len);
          p += len;
          auto& table = rec_kind == ckpt::kNameTable ? tables : rules;
          if (id >= table.size()) table.resize(id + 1);
          table[id] = name;
        }
      }
    } else {
      const uint64_t chunk_first = ckpt::get_u64(h + 8);
      for (uint32_t i = 0; i < count && p < end; ++i) {
        eval::RawEvent re;
        // v2 entries carry no time; ids are dense from the chunk header.
        re.id = chunk_first + i;
        re.tags = ckpt::get_u64(p);
        re.kind = static_cast<eval::EventKind>(p[ckpt::kKindOffset]);
        const uint8_t ncauses = p[ckpt::kNCausesOffset];
        const uint16_t table_id = ckpt::get_u16(p + ckpt::kTableIdOffset);
        const uint16_t rule_id = ckpt::get_u16(p + ckpt::kRuleIdOffset);
        const uint16_t nvals = ckpt::get_u16(p + ckpt::kNValsOffset);
        const uint16_t node_id = ckpt::get_u16(p + ckpt::kNodeIdOffset);
        const uint32_t entry_payload =
            ckpt::get_u32(p + ckpt::kPayloadLenOffset);
        const uint8_t* next = p + ckpt::kHeaderBytes + entry_payload;
        // CRC already vouched for the bytes; these guards keep a
        // miswritten (not torn) file from walking out of bounds.
        if (next > end || table_id >= tables.size() ||
            node_id >= nodes.size() ||
            (rule_id != ckpt::kNoRuleSerialized && rule_id >= rules.size())) {
          return visited;
        }
        p += ckpt::kHeaderBytes;
        row.clear();
        row.reserve(nvals);
        for (uint16_t v = 0; v < nvals; ++v) row.push_back(ckpt::get_value(p));
        causes.clear();
        causes.reserve(ncauses);
        for (uint16_t c = 0; c < ncauses; ++c) {
          causes.push_back(ckpt::get_u64(p));
          p += 8;
        }
        re.table = tables[table_id];
        re.rule = rule_id == ckpt::kNoRuleSerialized ? std::string_view{}
                                                     : rules[rule_id];
        re.node = &nodes[node_id];
        re.row = &row;
        re.causes = {causes.data(), causes.size()};
        ++visited;
        if (!fn(re)) return visited;
        p = next;
      }
    }
    pos += kChunkHeaderBytes + payload_len;
  }
  return visited;
}

}  // namespace mp::storage
