// Section 5.4 runtime overhead: Cbench-style PacketIn stress through the
// controller with provenance maintenance on vs off (latency + throughput),
// and the storage footprint of the runtime logs (the paper: +4.2% latency,
// -9.8% throughput, ~120-byte log entries at 11-20 MB/s per switch).
#include <benchmark/benchmark.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <string>

#include "fault/fault.h"
#include "ndlog/parser.h"
#include "perf_counters.h"
#include "runtime/sharded_engine.h"
#include "scenarios/pipeline.h"

namespace {

using namespace mp;

// Reports the measured-region counters (bench/perf_counters.h) as
// per-tuple rates. Hardware rows appear only when perf_event_open was
// granted; the software block (getrusage + steady clock) is reported
// whenever sampled, so locked-down containers still record cpu
// utilisation / fault / context-switch rates instead of nothing.
void report_perf(benchmark::State& state,
                 const mp::bench::PerfCounters::Sample& sample,
                 double tuples_per_iteration = 1.0) {
  if (state.iterations() == 0) return;
  const double n =
      static_cast<double>(state.iterations()) * tuples_per_iteration;
  if (sample.valid) {
    state.counters["cycles_per_tuple"] =
        static_cast<double>(sample.cycles) / n;
    state.counters["instructions_per_tuple"] =
        static_cast<double>(sample.instructions) / n;
    state.counters["cache_misses_per_tuple"] =
        static_cast<double>(sample.cache_misses) / n;
    state.counters["branch_misses_per_tuple"] =
        static_cast<double>(sample.branch_misses) / n;
  }
  if (sample.sw_valid && sample.wall_ns > 0) {
    state.counters["cpu_utilisation"] =
        static_cast<double>(sample.cpu_user_ns + sample.cpu_sys_ns) /
        static_cast<double>(sample.wall_ns);
    state.counters["minor_faults_per_mtuple"] =
        static_cast<double>(sample.minor_faults) * 1e6 / n;
    state.counters["ctx_switches_per_sec"] =
        static_cast<double>(sample.ctx_switches) * 1e9 /
        static_cast<double>(sample.wall_ns);
  }
}

const char* kProgram =
    "table FlowTable/4.\nevent PacketIn/4.\n"
    "r1 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 1, "
    "Hdr == 80, Prt := 2.\n"
    "r2 FlowTable(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == 1, "
    "Hdr == 53, Prt := 3.\n";

// PacketIn processing latency with provenance recording enabled/disabled.
// With recording on, the per-event storage cost (serialized-format bytes
// per logged event) is reported too — the interned record layout stores
// handles + 16-bit ids per entry, names once per checkpoint, so this is
// the number the `provenance_overhead` rows in BENCH_engine.json track
// alongside throughput.
void BM_PacketInProcessing(benchmark::State& state) {
  eval::EngineOptions opt;
  opt.record_provenance = state.range(0) != 0;
  opt.max_steps = ~size_t{0} >> 1;  // steps accumulate across iterations
  eval::Engine engine(ndlog::parse_program(kProgram), opt);
  int64_t src = 0;
  mp::bench::PerfCounters perf;
  perf.start();
  for (auto _ : state) {
    eval::Tuple t{"PacketIn",
                  {Value::str("C"), Value(1), Value(80), Value(src++ % 4096)}};
    engine.insert(t);
    benchmark::DoNotOptimize(engine.rule_firings());
  }
  const auto sample = perf.stop();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  report_perf(state, sample);
  if (opt.record_provenance && engine.log().size() > 0) {
    const double nevents = static_cast<double>(engine.log().size());
    state.counters["bytes_per_event"] =
        static_cast<double>(engine.log().byte_estimate()) / nevents;
    // The pre-interning entry layout carried the table and rule names
    // inline in every entry (no string table); its size over this exact
    // workload = interned entry + name lengths, reported so the
    // provenance_overhead rows can track the layout's bytes/event drop.
    size_t stringly = 0;
    for (const eval::Event& ev : engine.log().events()) {
      stringly += engine.log().serialized_bytes(ev) +
                  engine.log().table_name(ev.tuple).size() +
                  engine.log().rule_name(ev.rule).size();
    }
    state.counters["bytes_per_event_stringly"] =
        static_cast<double>(stringly) / nevents;
    state.counters["events_per_tuple"] =
        nevents / static_cast<double>(state.iterations());
  }
  state.SetLabel(opt.record_provenance ? "provenance ON" : "provenance OFF");
}
BENCHMARK(BM_PacketInProcessing)->Arg(0)->Arg(1);

// The same workload arriving in bursts through insert_batch: a run of
// same-table PacketIn tuples forms an entry lane (Engine::try_insert_lane)
// and the trigger plans match columnar over the whole run instead of
// re-dispatching per tuple. This is the arrival model the batched entry
// point exists for — a switch delivers packet-in messages in batches, not
// one syscall each — measured on the identical program and tuple stream
// as BM_PacketInProcessing so the two rows are directly comparable.
// range(0) toggles provenance recording.
void BM_PacketInBatchedArrival(benchmark::State& state) {
  constexpr size_t kBurst = 64;
  eval::EngineOptions opt;
  opt.record_provenance = state.range(0) != 0;
  opt.max_steps = ~size_t{0} >> 1;
  eval::Engine engine(ndlog::parse_program(kProgram), opt);
  std::vector<eval::Tuple> burst;
  burst.reserve(kBurst);
  int64_t src = 0;
  mp::bench::PerfCounters perf;
  perf.start();
  for (auto _ : state) {
    burst.clear();
    for (size_t i = 0; i < kBurst; ++i) {
      burst.push_back(eval::Tuple{
          "PacketIn",
          {Value::str("C"), Value(1), Value(80), Value(src++ % 4096)}});
    }
    engine.insert_batch(burst);
    benchmark::DoNotOptimize(engine.rule_firings());
  }
  const auto sample = perf.stop();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBurst));
  report_perf(state, sample, static_cast<double>(kBurst));
  if (opt.record_provenance && engine.log().size() > 0) {
    state.counters["bytes_per_event"] =
        static_cast<double>(engine.log().byte_estimate()) /
        static_cast<double>(engine.log().size());
  }
  state.counters["entry_lanes"] =
      static_cast<double>(engine.entry_lanes());  // must be > 0: lanes formed
  state.SetLabel(opt.record_provenance ? "provenance ON" : "provenance OFF");
}
BENCHMARK(BM_PacketInBatchedArrival)->Arg(0)->Arg(1);

// Columnar batched rule firing over cascade fan-out: every PacketIn fires
// eight stat rules whose heads all land in one table, so the derived
// appearances form an 8-tuple lane at the front of the work queue — the
// shape Engine::run_batch_lane accelerates. The Stat lane then meets
// eight selective Tally rules (each keyed to one stat id), the columnar
// sweet spot: the scalar path pays a frame reset + unification per
// (tuple, plan) pair — 64 per lane — where the plan-major pass filters
// each plan's match vector with one constant-compare sweep and the flat
// finish builds the single surviving head row straight from the trigger
// columns. range(0) toggles EngineOptions::batch_firing; both paths are
// byte-identical on the event log (tests/differential_test.cpp), so the
// delta is pure constant factor. range(1) toggles provenance recording
// (ON is the paper's operating point; OFF isolates the evaluation path
// from log-append cost). tools/run_bench.sh records the rows in
// BENCH_engine.json (columnar_firing).
void BM_CascadeFanout(benchmark::State& state) {
  std::string prog = "table Stat/3.\ntable Tally/3.\nevent PacketIn/3.\n";
  for (int k = 1; k <= 8; ++k) {
    prog += "s" + std::to_string(k) + " Stat(@S,H," + std::to_string(k) +
            ") :- PacketIn(@S,H,P), P == 80.\n";
    prog += "t" + std::to_string(k) + " Tally(@S," + std::to_string(k) +
            ",H) :- Stat(@S,H,K), K == " + std::to_string(k) + ".\n";
  }
  eval::EngineOptions opt;
  opt.batch_firing = state.range(0) != 0;
  opt.record_provenance = state.range(1) != 0;
  opt.max_steps = ~size_t{0} >> 1;
  eval::Engine engine(ndlog::parse_program(prog), opt);
  int64_t h = 0;
  mp::bench::PerfCounters perf;
  perf.start();
  for (auto _ : state) {
    engine.insert(
        eval::Tuple{"PacketIn", {Value(1), Value(h++ % 8192), Value(80)}});
    benchmark::DoNotOptimize(engine.rule_firings());
  }
  const auto sample = perf.stop();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  report_perf(state, sample);
  state.counters["batched_lanes"] =
      static_cast<double>(engine.batched_lanes());
  state.SetLabel(std::string(opt.batch_firing ? "columnar batched firing"
                                              : "tuple-at-a-time") +
                 (opt.record_provenance ? ", provenance ON"
                                        : ", provenance OFF"));
}
BENCHMARK(BM_CascadeFanout)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

// Join-heavy rule firing: a trigger event joined against two materialized
// tables of `range(0)` rows each, with the join columns bound by the
// trigger. With secondary indexes (range(1)=1) each atom is a hash-probe
// hitting one row; with indexes disabled every atom re-scans its whole
// TableStore, so per-insert cost degrades from O(matches) to O(rows).
// tools/run_bench.sh records both throughputs in BENCH_engine.json.
void BM_JoinHeavyRuleFiring(benchmark::State& state) {
  const int64_t n = state.range(0);
  eval::EngineOptions opt;
  opt.record_provenance = false;
  opt.use_indexes = state.range(1) != 0;
  opt.max_steps = ~size_t{0} >> 1;  // steps accumulate across iterations
  eval::Engine engine(
      ndlog::parse_program(
          "table Neighbor/3.\ntable Cost/3.\ntable Out/4.\nevent Query/2.\n"
          "r1 Out(@S,N,W,C) :- Query(@S,N), Neighbor(@S,N,W), Cost(@S,N,C)."),
      opt);
  for (int64_t i = 0; i < n; ++i) {
    engine.insert(eval::Tuple{"Neighbor", {Value(1), Value(i), Value(i * 3)}});
    engine.insert(eval::Tuple{"Cost", {Value(1), Value(i), Value(i * 7)}});
  }
  int64_t k = 0;
  for (auto _ : state) {
    engine.insert(eval::Tuple{"Query", {Value(1), Value(k++ % n)}});
    benchmark::DoNotOptimize(engine.rule_firings());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["firings_per_sec"] = benchmark::Counter(
      static_cast<double>(engine.rule_firings()), benchmark::Counter::kIsRate);
  state.SetLabel(opt.use_indexes ? "indexes ON" : "forced full scans");
}
BENCHMARK(BM_JoinHeavyRuleFiring)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// Bulk-loading the join-heavy base tables into a fresh engine (the config
// load / backtest-replay pattern): one insert_batch vs. the equivalent
// single-insert loop over the same tuples. The batch path dispatches each
// staged tuple directly (no work-queue round trip or Tuple copy), caches
// table interning across the staging loop, and defers secondary-index
// maintenance to one bulk pass per table; both paths reach the identical
// fixpoint (see tests/batch_test.cpp). Engine construction is excluded via
// manual timing so iterations stay stationary. range(0) = rows per table,
// range(1) selects the path. tools/run_bench.sh records both throughputs
// in BENCH_engine.json.
void BM_JoinHeavyBatchInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool batched = state.range(1) != 0;
  eval::EngineOptions opt;
  opt.record_provenance = false;
  opt.max_steps = ~size_t{0} >> 1;
  const ndlog::Program program = ndlog::parse_program(
      "table Neighbor/3.\ntable Cost/3.\ntable Out/4.\nevent Query/2.\n"
      "r1 Out(@S,N,W,C) :- Query(@S,N), Neighbor(@S,N,W), Cost(@S,N,C).");
  std::vector<eval::Tuple> batch;
  batch.reserve(static_cast<size_t>(2 * n));
  for (int64_t i = 0; i < n; ++i) {
    batch.push_back(eval::Tuple{"Neighbor", {Value(1), Value(i), Value(i * 3)}});
    batch.push_back(eval::Tuple{"Cost", {Value(1), Value(i), Value(i * 7)}});
  }
  for (auto _ : state) {
    eval::Engine engine(program, opt);
    const auto start = std::chrono::steady_clock::now();
    if (batched) {
      engine.insert_batch(batch);
    } else {
      for (const eval::Tuple& t : batch) engine.insert(t);
    }
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(engine.steps());
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  state.SetLabel(batched ? "insert_batch" : "single-insert loop");
}
BENCHMARK(BM_JoinHeavyBatchInsert)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->UseManualTime();

// Repair-exploration history lookup: the HistoryStore probe the forest
// explorer issues for every bound-column pattern (eval/history.h), over a
// table with range(0) recorded tuples. With indexes (range(1)=1) a lookup
// visits one bucket; in forced-scan mode it walks the entire recorded
// history per lookup — the pre-HistoryStore behaviour of
// repair/forest.cpp's linear filters. tools/run_bench.sh records both
// throughputs in BENCH_engine.json (history_probe).
void BM_RepairHistoryProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  eval::EngineOptions opt;
  opt.use_indexes = state.range(1) != 0;
  opt.max_steps = ~size_t{0} >> 1;
  eval::Engine engine(ndlog::parse_program("table Hist/4.\n"), opt);
  std::vector<eval::Tuple> batch;
  batch.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    batch.push_back(eval::Tuple{
        "Hist", {Value(1), Value(i), Value(i % 97), Value(i * 3)}});
  }
  engine.insert_batch(batch);
  int64_t k = 0;
  size_t matches = 0;
  for (auto _ : state) {
    eval::TuplePattern pat;
    pat.table = "Hist";
    pat.fields = {{1, ndlog::CmpOp::Eq, Value(k++ % n)},
                  {2, ndlog::CmpOp::Ge, Value(0)}};
    engine.history().probe(pat, [&](eval::TupleRef) {
      ++matches;
      return true;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(opt.use_indexes ? "indexed probe" : "forced history scan");
}
BENCHMARK(BM_RepairHistoryProbe)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// Sharded end-to-end evaluation (src/runtime): a Q2-style forwarding
// workload — per-switch route/cost state, PacketIn events spread across
// 64 switch nodes, a join-heavy local rule plus a neighbor advertisement
// whose head lands on another node (cross-shard messages when the
// neighbor hashes to a different shard). range(0) = worker count; 0 runs
// the plain serial Engine over the identical stream (the scaling
// baseline). Provenance stays ON (the paper's operating point): per-shard
// logs absorb the append traffic in parallel, and merged_log() is
// excluded (post-run analysis, not evaluation). Engine construction and
// the static config load are untimed; tools/run_bench.sh records the
// sharded_eval scaling rows in BENCH_engine.json.
void BM_ShardedEval(benchmark::State& state) {
  const int64_t workers = state.range(0);
  constexpr int64_t kSwitches = 64;
  constexpr int64_t kDsts = 24;
  constexpr int64_t kNextHops = 6;
  constexpr int64_t kPackets = 6144;
  const ndlog::Program program = ndlog::parse_program(
      "table Route/3.\ntable Cost/3.\ntable Out/4.\ntable Advert/3.\n"
      "event PacketIn/2.\n"
      "r1 Out(@S,D,N,C) :- PacketIn(@S,D), Route(@S,D,N), Cost(@S,N,C).\n"
      "r2 Advert(@N,S,D) :- Out(@S,D,N,C), C < 3.\n");
  std::vector<eval::Tuple> config;
  for (int64_t s = 1; s <= kSwitches; ++s) {
    for (int64_t d = 0; d < kDsts; ++d) {
      for (int64_t n = 0; n < kNextHops; ++n) {
        config.push_back(eval::Tuple{
            "Route", {Value(s), Value(d), Value((s + d + n) % kSwitches + 1)}});
      }
    }
    for (int64_t n = 1; n <= kSwitches; ++n) {
      config.push_back(eval::Tuple{"Cost", {Value(s), Value(n), Value(n % 7)}});
    }
  }
  std::vector<eval::Tuple> events;
  events.reserve(kPackets);
  for (int64_t i = 0; i < kPackets; ++i) {
    events.push_back(eval::Tuple{
        "PacketIn", {Value(i % kSwitches + 1), Value(i % kDsts)}});
  }
  eval::EngineOptions eopt;
  eopt.max_steps = ~size_t{0} >> 1;
  for (auto _ : state) {
    std::chrono::steady_clock::time_point start, end;
    if (workers == 0) {
      eval::Engine engine(program, eopt);
      engine.insert_batch(config);
      start = std::chrono::steady_clock::now();
      engine.insert_batch(events);
      end = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.rule_firings());
    } else {
      runtime::ShardedOptions sopt;
      sopt.engine = eopt;
      runtime::ShardedEngine engine(
          program, runtime::ShardPlan(static_cast<uint32_t>(workers)), sopt);
      engine.insert_batch(config);
      start = std::chrono::steady_clock::now();
      engine.insert_batch(events);
      end = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.rule_firings());
    }
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
  state.SetLabel(workers == 0 ? "serial Engine"
                              : std::to_string(workers) + " shard worker(s)");
}
BENCHMARK(BM_ShardedEval)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime();

// Flow-table lookup cost (switch fast path).
void BM_FlowTableLookup(benchmark::State& state) {
  sdn::FlowTable ft;
  for (int i = 0; i < state.range(0); ++i) {
    sdn::FlowEntry e;
    e.match = {{sdn::Field::Dip, Value(i)}};
    e.priority = -1;
    e.action = sdn::Action::output(1);
    ft.add(e);
  }
  sdn::Packet p;
  p.dip = state.range(0) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft.lookup(p, 1));
  }
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(128)->Arg(1024);

// End-to-end controller path (Cbench-like): a packet misses at the
// switch, the controller evaluates the program, installs an entry and
// releases the packet. This is the unit the paper's +4.2% latency /
// -9.8% throughput numbers refer to; most of the cost is packet handling,
// with provenance maintenance a fraction on top.
void BM_EndToEndPacketIn(benchmark::State& state) {
  eval::EngineOptions opt;
  opt.record_provenance = state.range(0) != 0;
  opt.max_steps = ~size_t{0} >> 1;  // steps accumulate across iterations
  sdn::Network net;
  net.add_switch(1);
  net.add_host({1, "H", 42, 0, 1, 2});
  eval::Engine engine(ndlog::parse_program(kProgram), opt);
  sdn::ControllerBindings bindings;
  bindings.encode_packet_in = [](int64_t sw, int64_t, const sdn::Packet& p) {
    return eval::Tuple{"PacketIn",
                       {Value::str("C"), Value(sw), Value(p.dpt), Value(p.sip)}};
  };
  bindings.decode_flow =
      [](const eval::Tuple& t) -> std::optional<sdn::InstallSpec> {
    sdn::InstallSpec spec;
    spec.sw = t.row[0].as_int();
    spec.entry.match = {{sdn::Field::Dpt, t.row[1]},
                        {sdn::Field::Sip, t.row[2]}};
    spec.entry.action = sdn::Action::output(2);
    return spec;
  };
  sdn::NdlogController controller(net, engine, bindings);
  net.set_controller(&controller);
  int64_t src = 0;
  for (auto _ : state) {
    sdn::Packet p;
    p.dpt = 80;
    p.sip = src++;  // fresh flow every time: always a miss + PacketIn
    net.inject(1, 1, p, /*record=*/opt.record_provenance);
    benchmark::DoNotOptimize(net.stats().packet_ins);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(opt.record_provenance ? "recording ON" : "recording OFF");
}
BENCHMARK(BM_EndToEndPacketIn)->Arg(0)->Arg(1);

// Durable segment store, write side (src/storage): PacketIn stream with
// provenance recording on and auto-compaction spilling every checkpoint
// section into rotating segment files through the group-commit buffer.
// bytes_per_second is sequential segment-write bandwidth (serialized
// sections, headers included); items_per_second is end-to-end inserts/s
// with durability in the loop. tools/run_bench.sh records both in the
// `durable_log` section of BENCH_engine.json.
void BM_SegmentWrite(benchmark::State& state) {
  const std::string dir = "/tmp/mp_bench_segments_write";
  std::filesystem::remove_all(dir);
  eval::EngineOptions opt;
  opt.max_steps = ~size_t{0} >> 1;  // steps accumulate across iterations
  opt.compact_after_events = 4096;
  opt.compact_keep_live = 0;
  opt.segment_dir = dir;
  eval::Engine engine(ndlog::parse_program(kProgram), opt);
  int64_t src = 0;
  for (auto _ : state) {
    eval::Tuple t{"PacketIn",
                  {Value::str("C"), Value(1), Value(80), Value(src++ % 4096)}};
    engine.insert(t);
    benchmark::DoNotOptimize(engine.rule_firings());
  }
  engine.log().compact(0);  // seal the tail so bytes() covers every event
  engine.segments()->flush(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(engine.segments()->bytes()));
  state.counters["segment_files"] =
      static_cast<double>(engine.segments()->segment_count());
  state.counters["events"] = static_cast<double>(engine.segments()->events());
}
BENCHMARK(BM_SegmentWrite);

// The same write-side workload with a 1-in-1000 injected fault mix —
// EINTR on write(2) plus genuine short writes — through the retry loop
// (src/storage/README.md). The MB/s delta against BM_SegmentWrite is the
// price of riding out a flaky disk; the store must finish un-degraded.
// Requires the failpoint sites: the benchmark skips itself unless built
// with -DMP_FAULTS=ON (tools/run_bench.sh then records the row as
// `durable_log_faulty` in BENCH_engine.json from the -faults side
// build's binary).
void BM_SegmentWriteFaulty(benchmark::State& state) {
  if (!fault::compiled_in()) {
    state.SkipWithError("failpoints not compiled in (needs -DMP_FAULTS=ON)");
    return;
  }
  fault::Registry& reg = fault::Registry::global();
  fault::Policy every;
  every.mode = fault::Policy::Mode::kEveryK;
  every.n = 1000;
  every.error_code = EINTR;
  reg.configure("storage.segment.write", every);
  every.error_code = 1;  // trigger only: the site halves the write length
  reg.configure("storage.segment.short_write", every);

  const std::string dir = "/tmp/mp_bench_segments_write_faulty";
  std::filesystem::remove_all(dir);
  eval::EngineOptions opt;
  opt.max_steps = ~size_t{0} >> 1;
  // Tighter compaction + a small group buffer than BM_SegmentWrite: the
  // write path must issue thousands of write(2) calls per run so a
  // 1-in-1000 per-syscall mix genuinely engages (injected_faults > 0
  // below); bandwidth is therefore measured at a section-per-flush
  // cadence, not the big-buffer cadence of the fault-free row.
  opt.compact_after_events = 512;
  opt.compact_keep_live = 0;
  opt.segment_dir = dir;
  opt.segment_store.group_buffer_bytes = 4096;
  eval::Engine engine(ndlog::parse_program(kProgram), opt);
  int64_t src = 0;
  for (auto _ : state) {
    eval::Tuple t{"PacketIn",
                  {Value::str("C"), Value(1), Value(80), Value(src++ % 4096)}};
    engine.insert(t);
    benchmark::DoNotOptimize(engine.rule_firings());
  }
  engine.log().compact(0);
  engine.segments()->flush(false);
  if (engine.segments()->failed()) {
    state.SkipWithError("store degraded under transient faults");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(engine.segments()->bytes()));
  state.counters["injected_faults"] = static_cast<double>(
      reg.fires("storage.segment.write") +
      reg.fires("storage.segment.short_write"));
  reg.clear_all();
}
BENCHMARK(BM_SegmentWriteFaulty);

// Durable segment store, read side: each iteration is a cold reload — a
// recovery scan (header + CRC validation of every chunk) followed by a
// full mmap-backed standalone decode of every event, no live engine or
// catalog. items_per_second is events decoded per second, the rate that
// bounds crash-recovery time.
void BM_SegmentReload(benchmark::State& state) {
  const std::string dir = "/tmp/mp_bench_segments_reload";
  std::filesystem::remove_all(dir);
  size_t total_events = 0;
  {
    eval::EngineOptions opt;
    opt.max_steps = ~size_t{0} >> 1;
    opt.segment_dir = dir;
    eval::Engine engine(ndlog::parse_program(kProgram), opt);
    int64_t src = 0;
    for (int i = 0; i < 20000; ++i) {
      engine.insert(eval::Tuple{"PacketIn",
                                {Value::str("C"), Value(1), Value(80),
                                 Value(src++ % 4096)}});
    }
    engine.log().compact(0);
    total_events = engine.segments()->events();
  }  // engine destruction flushes the store
  size_t sink = 0;
  for (auto _ : state) {
    storage::SegmentStore store(dir);
    store.replay_raw([&](const eval::RawEvent& re) {
      sink += re.causes.size() + re.row->size();
      return true;
    });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * total_events));
  state.counters["events"] = static_cast<double>(total_events);
}
BENCHMARK(BM_SegmentReload);

// Mini-solver throughput on repair-sized constraint pools.
void BM_MiniSolver(benchmark::State& state) {
  for (auto _ : state) {
    solver::ConstraintPool pool;
    pool.add(solver::Term::constant(Value(6)), ndlog::CmpOp::Lt,
             solver::Term::variable("K"));
    pool.add(solver::Term::variable("K"), ndlog::CmpOp::Ne,
             solver::Term::constant(Value(9)));
    benchmark::DoNotOptimize(solver::MiniSolver::solve(pool));
  }
}
BENCHMARK(BM_MiniSolver);

}  // namespace

int main(int argc, char** argv) {
  // Storage accounting (printed once, before the timed benchmarks).
  {
    using namespace mp;
    auto s = scenario::q1_copy_paste({});
    scenario::ScenarioHarness harness(s);
    auto& run = harness.buggy_run();
    const auto& rec = run.net().recorder();
    const size_t packets = rec.ingress().size();
    const double pkt_bytes = static_cast<double>(rec.packet_log_bytes());
    const double prov_bytes = static_cast<double>(run.engine().log().byte_estimate());
    std::printf("=== Section 5.4 storage ===\n");
    std::printf("packet log: %zu entries x 120 B = %.2f MB (%.1f B/packet)\n",
                packets, pkt_bytes / 1e6,
                packets ? pkt_bytes / packets : 0.0);
    std::printf("provenance log: %.2f MB for %zu events (%.1f B/event)\n",
                prov_bytes / 1e6, run.engine().log().size(),
                run.engine().log().size()
                    ? prov_bytes / run.engine().log().size()
                    : 0.0);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
