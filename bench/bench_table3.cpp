// Table 3: candidates generated / passing backtest for the Trema and
// Pyretic frontends, per scenario; Q4 is not expressible in Pyretic.
#include "bench/bench_util.h"
#include "langs/table3.h"
#include "meta/meta_model.h"

int main() {
  using namespace mp;
  bench::header("Table 3: Trema and Pyretic results (generated/passed)");
  auto trema = langs::run_trema_scenarios();
  auto pyretic = langs::run_pyretic_scenarios();
  std::printf("%-26s", "");
  for (const auto& c : trema) std::printf("%8s", c.scenario.c_str());
  std::printf("\n%-26s", "Trema (Ruby)");
  for (const auto& c : trema) {
    std::printf("%5zu/%zu", c.generated, c.passed);
  }
  std::printf("\n%-26s", "Pyretic (DSL + Python)");
  for (const auto& c : pyretic) {
    if (c.supported) {
      std::printf("%5zu/%zu", c.generated, c.passed);
    } else {
      std::printf("%8s", "-");
    }
  }
  std::printf("\n\nmeta models: Trema %zu rules / %zu tuple types, "
              "Pyretic %zu / %zu (paper: 42/32 and 53/41)\n",
              meta::trema_meta_model().rule_count(),
              meta::trema_meta_model().tuple_count(),
              meta::pyretic_meta_model().rule_count(),
              meta::pyretic_meta_model().tuple_count());
  std::printf("(paper: Trema 7/2 10/2 11/2 10/2 14/3; Pyretic 4/2 11/2 9/2 "
              "- 14/3; Q4 unreproducible in Pyretic)\n");
  return 0;
}
