// Minimal perf_event_open wrapper for the bench binaries: hardware
// cache-miss / branch-miss / cycle / instruction counts around a measured
// region, reported next to throughput in BENCH_engine.json.
//
// Containers and locked-down kernels routinely deny the syscall
// (perf_event_paranoid, seccomp): every failure path degrades to
// available() == false and the caller simply omits the counters — the
// throughput rows must never depend on perf access.
#pragma once

#include <cstdint>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace mp::bench {

class PerfCounters {
 public:
  struct Sample {
    bool valid = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_misses = 0;
    uint64_t branch_misses = 0;
  };

#if defined(__linux__)
  PerfCounters() {
    fds_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    fds_[1] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    fds_[2] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    fds_[3] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
    // All-or-nothing: partial counter sets would skew derived ratios.
    for (int fd : fds_) {
      if (fd < 0) {
        close_all();
        return;
      }
    }
    available_ = true;
  }
  ~PerfCounters() { close_all(); }
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return available_; }

  void start() {
    if (!available_) return;
    for (int fd : fds_) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }

  Sample stop() {
    Sample s;
    if (!available_) return s;
    uint64_t vals[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
      if (::read(fds_[i], &vals[i], sizeof(vals[i])) !=
          static_cast<ssize_t>(sizeof(vals[i]))) {
        return s;  // valid stays false
      }
    }
    s.valid = true;
    s.cycles = vals[0];
    s.instructions = vals[1];
    s.cache_misses = vals[2];
    s.branch_misses = vals[3];
    return s;
  }

 private:
  static int open_counter(uint32_t type, uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  }
  void close_all() {
    for (int& fd : fds_) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    available_ = false;
  }
  int fds_[4] = {-1, -1, -1, -1};
  bool available_ = false;
#else
  bool available() const { return false; }
  void start() {}
  Sample stop() { return {}; }
#endif
};

}  // namespace mp::bench
