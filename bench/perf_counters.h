// Minimal perf_event_open wrapper for the bench binaries: hardware
// cache-miss / branch-miss / cycle / instruction counts around a measured
// region, reported next to throughput in BENCH_engine.json.
//
// Containers and locked-down kernels routinely deny the syscall
// (perf_event_paranoid, seccomp): every failure path degrades to
// available() == false and the caller simply omits the hardware counters —
// the throughput rows must never depend on perf access. A portable
// software sample (getrusage + steady clock: cpu utilisation, page faults,
// context switches) is taken alongside regardless, so the perf_counters
// section of BENCH_engine.json always carries something more useful than
// `available: false`.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define MP_BENCH_HAVE_RUSAGE 1
#endif

namespace mp::bench {

class PerfCounters {
 public:
  struct Sample {
    // Hardware block (perf_event_open); valid only when the kernel
    // granted all four counters.
    bool valid = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_misses = 0;
    uint64_t branch_misses = 0;
    // Software block (getrusage deltas + steady-clock wall time); valid
    // on any unix-like host, independent of perf access.
    bool sw_valid = false;
    uint64_t wall_ns = 0;
    uint64_t cpu_user_ns = 0;
    uint64_t cpu_sys_ns = 0;
    uint64_t minor_faults = 0;
    uint64_t major_faults = 0;
    uint64_t ctx_switches = 0;  // voluntary + involuntary
  };

  bool available() const { return available_; }

  void start() {
    start_hw();
    start_sw();
  }

  Sample stop() {
    Sample s = stop_hw();
    stop_sw(s);
    return s;
  }

#if defined(__linux__)
  PerfCounters() {
    fds_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    fds_[1] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    fds_[2] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    fds_[3] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
    // All-or-nothing: partial counter sets would skew derived ratios.
    for (int fd : fds_) {
      if (fd < 0) {
        close_all();
        return;
      }
    }
    available_ = true;
  }
  ~PerfCounters() { close_all(); }
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

 private:
  void start_hw() {
    if (!available_) return;
    for (int fd : fds_) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }

  Sample stop_hw() {
    Sample s;
    if (!available_) return s;
    uint64_t vals[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
      if (::read(fds_[i], &vals[i], sizeof(vals[i])) !=
          static_cast<ssize_t>(sizeof(vals[i]))) {
        return s;  // valid stays false
      }
    }
    s.valid = true;
    s.cycles = vals[0];
    s.instructions = vals[1];
    s.cache_misses = vals[2];
    s.branch_misses = vals[3];
    return s;
  }

  static int open_counter(uint32_t type, uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  }
  void close_all() {
    for (int& fd : fds_) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    available_ = false;
  }
  int fds_[4] = {-1, -1, -1, -1};
#else
 private:
  void start_hw() {}
  Sample stop_hw() { return {}; }
#endif

#if defined(MP_BENCH_HAVE_RUSAGE)
  static uint64_t tv_ns(const timeval& tv) {
    return static_cast<uint64_t>(tv.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(tv.tv_usec) * 1'000ull;
  }

  void start_sw() {
    sw_started_ = getrusage(RUSAGE_SELF, &ru_start_) == 0;
    t_start_ = std::chrono::steady_clock::now();
  }

  void stop_sw(Sample& s) {
    const auto t_end = std::chrono::steady_clock::now();
    rusage ru_end;
    if (!sw_started_ || getrusage(RUSAGE_SELF, &ru_end) != 0) return;
    s.sw_valid = true;
    s.wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start_)
            .count());
    s.cpu_user_ns = tv_ns(ru_end.ru_utime) - tv_ns(ru_start_.ru_utime);
    s.cpu_sys_ns = tv_ns(ru_end.ru_stime) - tv_ns(ru_start_.ru_stime);
    s.minor_faults =
        static_cast<uint64_t>(ru_end.ru_minflt - ru_start_.ru_minflt);
    s.major_faults =
        static_cast<uint64_t>(ru_end.ru_majflt - ru_start_.ru_majflt);
    s.ctx_switches =
        static_cast<uint64_t>((ru_end.ru_nvcsw - ru_start_.ru_nvcsw) +
                              (ru_end.ru_nivcsw - ru_start_.ru_nivcsw));
  }

  rusage ru_start_{};
  bool sw_started_ = false;
#else
  void start_sw() { t_start_ = std::chrono::steady_clock::now(); }
  void stop_sw(Sample&) {}
#endif

  std::chrono::steady_clock::time_point t_start_{};
  bool available_ = false;
};

}  // namespace mp::bench
