// Figure 9c: scalability of the repair-generation phase with network
// size, Q1 on grown campus topologies (19 -> 169 switches in the paper).
// The shape to check: turnaround grows roughly linearly with network
// size, dominated by history lookups and replay.
#include "bench/bench_util.h"
#include "scenarios/pipeline.h"

int main() {
  using namespace mp;
  bench::header("Figure 9c: Q1 turnaround vs number of switches");
  std::printf("%-10s %8s %12s %12s %12s %12s\n", "switches", "hosts",
              "history(s)", "solving(s)", "replay(s)", "total(s)");
  for (size_t switches : {19u, 49u, 79u, 109u, 139u, 169u}) {
    sdn::CampusOptions campus;
    campus.total_switches = switches;
    campus.core_count = 8;
    campus.hosts_per_edge = 5;
    auto s = scenario::q1_copy_paste(campus);
    scenario::PipelineOptions opt;
    opt.multiquery = true;
    opt.max_backtested = 8;
    auto r = scenario::run_pipeline(s, opt);
    const size_t hosts = (switches - 12) * 5;
    std::printf("%-10zu %8zu %12.4f %12.4f %12.4f %12.4f\n", switches, hosts,
                r.phases.get("history lookups"),
                r.phases.get("constraint solving"), r.phases.get("replay"),
                r.total_seconds);
  }
  return 0;
}
