// Figure 9b: time to backtest the first k repair candidates of Q1,
// sequentially vs jointly with multi-query optimization (Section 4.4).
// The paper: ~2 min sequential vs ~40 s joint for 9 candidates; the shape
// to check is sequential growing ~linearly in k while joint grows much
// more slowly (shared computation).
#include "bench/bench_util.h"
#include "scenarios/pipeline.h"
#include "util/timer.h"

int main() {
  using namespace mp;
  auto s = scenario::q1_copy_paste({});
  scenario::ScenarioHarness harness(s);
  harness.replay_baseline();

  // Generate the candidate list once.
  repair::RepairGenerator gen(harness.buggy_run().engine(), s.space);
  auto report = gen.generate(s.symptoms[0]);
  auto& cands = report.candidates;
  if (cands.size() > 9) cands.resize(9);

  bench::header("Figure 9b: joint backtesting of the first k candidates");
  std::printf("%-4s %16s %16s %10s\n", "k", "sequential(s)", "multiquery(s)",
              "speedup");
  for (size_t k = 1; k <= cands.size(); ++k) {
    std::vector<repair::RepairCandidate> first_k(cands.begin(),
                                                 cands.begin() + k);
    Timer seq_t;
    for (const auto& c : first_k) harness.replay(c);
    const double seq = seq_t.seconds();
    Timer joint_t;
    harness.replay_joint(first_k);
    const double joint = joint_t.seconds();
    std::printf("%-4zu %16.3f %16.3f %9.2fx\n", k, seq, joint,
                joint > 0 ? seq / joint : 0.0);
  }
  return 0;
}
