// Figure 9a: time to generate repairs per scenario, broken down into the
// paper's phases (history lookups / constraint solving / patch generation
// / replay). The paper reports < 25 s per scenario on 2013 hardware; the
// shape to check is the per-phase breakdown and scenario ordering.
#include "bench/bench_util.h"
#include "scenarios/pipeline.h"

int main() {
  using namespace mp;
  bench::header("Figure 9a: repair generation turnaround, phase breakdown");
  std::printf("%-5s %12s %12s %12s %12s %12s\n", "Q", "history(s)",
              "solving(s)", "patching(s)", "replay(s)", "total(s)");
  for (const auto& s : scenario::all_scenarios()) {
    scenario::PipelineOptions opt;
    opt.multiquery = true;
    auto r = scenario::run_pipeline(s, opt);
    std::printf("%-5s %12.4f %12.4f %12.4f %12.4f %12.4f\n", s.id.c_str(),
                r.phases.get("history lookups"),
                r.phases.get("constraint solving"),
                r.phases.get("patch generation"), r.phases.get("replay"),
                r.total_seconds);
  }
  return 0;
}
