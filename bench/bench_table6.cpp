// Table 6 (appendix E): candidate repair listings with KS statistics and
// decisions for scenarios Q2-Q5.
#include "bench/bench_util.h"
#include "scenarios/pipeline.h"

int main() {
  using namespace mp;
  for (const auto& s : scenario::all_scenarios()) {
    if (s.id == "Q1") continue;  // Q1 is Table 2
    scenario::PipelineOptions opt;
    opt.multiquery = true;
    auto r = scenario::run_pipeline(s, opt);
    bench::header("Table 6 (" + s.id + "): " + s.query);
    char label = 'A';
    for (const auto& e : r.backtest.entries) {
      std::printf("%c  %-72s (%s) KS=%.5f\n", label++,
                  e.candidate.description.c_str(),
                  e.accepted ? "accepted" : "rejected", e.ks.statistic);
    }
    std::printf("   -> %zu candidates, %zu effective, %zu accepted\n",
                r.candidates, r.effective, r.accepted);
  }
  return 0;
}
