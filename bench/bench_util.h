// Shared helpers for the bench binaries: paper-style table printing.
#pragma once

#include <cstdio>
#include <string>

#include "util/strings.h"

namespace mp::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::string& left, const std::string& right) {
  std::printf("%s %s\n", rpad(left, 68).c_str(), right.c_str());
}

}  // namespace mp::bench
