// Ablations of the design choices DESIGN.md calls out:
//  (a) cost model: Pan-et-al-weighted costs vs uniform costs -- where does
//      the ground-truth repair rank in the candidate list?
//  (b) KS significance level: how many candidates survive at alpha = 0.20,
//      0.05 (the paper's choice) and 0.01?
//  (c) multi-query optimization on/off at the pipeline level.
#include "bench/bench_util.h"
#include "scenarios/pipeline.h"
#include "util/timer.h"

int main() {
  using namespace mp;

  // (a) cost-model ablation on Q1.
  {
    bench::header("Ablation (a): cost model vs rank of the ground-truth fix");
    auto s = scenario::q1_copy_paste({});
    scenario::ScenarioHarness harness(s);
    auto rank_of_truth = [&](const repair::CostModel& model) -> int {
      repair::RepairGenerator gen(harness.buggy_run().engine(), s.space, model);
      auto cands = gen.generate(s.symptoms[0]).candidates;
      for (size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].description.find("Swi == 2 in r7 to Swi == 3") !=
            std::string::npos) {
          return static_cast<int>(i) + 1;
        }
      }
      return -1;
    };
    repair::CostModel weighted;  // defaults = bug-fix-pattern weights
    repair::CostModel uniform;
    uniform.change_const_near = uniform.change_const_base = uniform.change_op =
        uniform.change_var = uniform.delete_sel = uniform.change_assign_const =
            uniform.change_assign_var = uniform.delete_atom =
                uniform.change_head = uniform.copy_rule = uniform.delete_rule =
                    uniform.insert_tuple = uniform.delete_tuple = 3.0;
    std::printf("weighted (Pan et al. [41]) cost model: truth at rank %d\n",
                rank_of_truth(weighted));
    std::printf("uniform cost model:                    truth at rank %d\n",
                rank_of_truth(uniform));
  }

  // (b) KS alpha sweep on Q1.
  {
    bench::header("Ablation (b): KS significance level vs accepted repairs");
    auto s = scenario::q1_copy_paste({});
    scenario::ScenarioHarness harness(s);
    repair::RepairGenerator gen(harness.buggy_run().engine(), s.space);
    auto cands = gen.generate(s.symptoms[0]).candidates;
    if (cands.size() > 16) cands.resize(16);
    for (double alpha : {0.20, 0.05, 0.01}) {
      backtest::BacktestConfig cfg;
      cfg.alpha = alpha;
      cfg.use_multiquery = true;
      backtest::Backtester tester(cfg);
      auto report = tester.run(harness, cands);
      std::printf("alpha=%.2f: %zu effective, %zu accepted\n", alpha,
                  report.effective_count, report.accepted_count);
    }
    std::printf("(looser alpha admits repairs with visible side effects;\n"
                " tighter alpha starts rejecting the true fix)\n");
  }

  // (c) pipeline with and without multi-query backtesting.
  {
    bench::header("Ablation (c): pipeline runtime, sequential vs multi-query");
    for (bool mq : {false, true}) {
      auto s = scenario::q1_copy_paste({});
      scenario::PipelineOptions opt;
      opt.multiquery = mq;
      Timer t;
      auto r = scenario::run_pipeline(s, opt);
      std::printf("%-12s: %.2fs total, %zu/%zu accepted\n",
                  mq ? "multi-query" : "sequential", t.seconds(), r.accepted,
                  r.candidates);
    }
  }
  return 0;
}
