// Figure 10 (appendix A): scalability of repair generation with program
// size. The Q1 program is padded with synthetic-but-evaluated policies of
// an operational-zone switch (extra rules over extra tables), 100 -> 900
// lines. The shape: turnaround grows ~linearly; the number of accepted
// repairs stays stable because costly trees are pruned early.
#include "bench/bench_util.h"
#include "ndlog/parser.h"
#include "scenarios/pipeline.h"

int main() {
  using namespace mp;
  bench::header("Figure 10: Q1 turnaround vs program size (lines)");
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "lines", "history(s)",
              "solving(s)", "total(s)", "cands", "accepted");
  for (size_t lines : {100u, 300u, 500u, 700u, 900u}) {
    auto s = scenario::q1_copy_paste({});
    // Pad with operational-zone policies: rules that react to PacketIn on
    // other switches and feed auxiliary tables (evaluated but orthogonal).
    std::string extra;
    size_t added = 0;
    for (size_t i = 0; s.program.line_count() + added < lines; ++i) {
      extra += "table Zone" + std::to_string(i) + "/4.\n";
      extra += "z" + std::to_string(i) + " Zone" + std::to_string(i) +
               "(@Swi,Hdr,Src,Prt) :- PacketIn(@C,Swi,Hdr,Src), Swi == " +
               std::to_string(100 + i % 50) + ", Hdr == " +
               std::to_string(1000 + i) + ", Prt := " +
               std::to_string(i % 8) + ".\n";
      added += 2;
    }
    auto padded = ndlog::parse_program(s.program.to_string() + extra);
    s.program = std::move(padded);
    scenario::PipelineOptions opt;
    opt.multiquery = true;
    auto r = scenario::run_pipeline(s, opt);
    std::printf("%-8zu %12.4f %12.4f %12.4f %10zu %10zu\n",
                s.program.line_count(), r.phases.get("history lookups"),
                r.phases.get("constraint solving"), r.total_seconds,
                r.candidates, r.accepted);
  }
  return 0;
}
