// End-to-end tests: the change algebra, the forest explorer on small
// programs, the language frontends, and the five paper scenarios run
// through the full pipeline (generation + multi-query backtesting).
#include <gtest/gtest.h>

#include "langs/imp/imp.h"
#include "langs/netcore/netcore.h"
#include "ndlog/parser.h"
#include "ndlog/validate.h"
#include "repair/generator.h"
#include "scenarios/pipeline.h"

namespace mp {
namespace {

using repair::Change;
using repair::ChangeKind;
using repair::RepairCandidate;

ndlog::Program tiny() {
  return ndlog::parse_program(
      "table A/3.\nevent B/3.\n"
      "r1 A(@X,P,Q) :- B(@X,P,V), P == 2, V != 3, Q := 7.");
}

TEST(Change, ApplyConstAndOperator) {
  auto p = tiny();
  Change c;
  c.kind = ChangeKind::ChangeSelConst;
  c.rule = "r1";
  c.index = 0;
  c.side = 1;
  c.new_value = Value(5);
  ASSERT_TRUE(c.apply(p));
  EXPECT_NE(p.find_rule("r1")->to_string().find("P == 5"), std::string::npos);
  Change op;
  op.kind = ChangeKind::ChangeSelOp;
  op.rule = "r1";
  op.index = 1;
  op.new_op = ndlog::CmpOp::Lt;
  ASSERT_TRUE(op.apply(p));
  EXPECT_NE(p.find_rule("r1")->to_string().find("V < 3"), std::string::npos);
}

TEST(Change, DeleteSelAndGuards) {
  auto p = tiny();
  Change del;
  del.kind = ChangeKind::DeleteSel;
  del.rule = "r1";
  del.index = 0;
  ASSERT_TRUE(del.apply(p));
  EXPECT_EQ(p.find_rule("r1")->sels.size(), 1u);
  Change bad;
  bad.kind = ChangeKind::DeleteSel;
  bad.rule = "r1";
  bad.index = 9;
  EXPECT_FALSE(bad.apply(p));
  Change atom;
  atom.kind = ChangeKind::DeleteBodyAtom;
  atom.rule = "r1";
  atom.index = 0;
  EXPECT_FALSE(atom.apply(p)) << "a rule must keep at least one body atom";
}

TEST(Change, AssignRewrites) {
  auto p = tiny();
  Change c;
  c.kind = ChangeKind::ChangeAssignConst;
  c.rule = "r1";
  c.index = 0;
  c.new_value = Value(9);
  ASSERT_TRUE(c.apply(p));
  Change v;
  v.kind = ChangeKind::ChangeAssignVar;
  v.rule = "r1";
  v.index = 0;
  v.new_value = Value::str("V");
  ASSERT_TRUE(v.apply(p));
  EXPECT_NE(p.find_rule("r1")->to_string().find("Q := V"), std::string::npos);
}

TEST(Change, CopyRetargetValidatesArity) {
  auto p = ndlog::parse_program(
      "table A/3.\ntable T/3.\ntable W/2.\nevent B/3.\n"
      "r1 A(@X,P,V) :- B(@X,P,V), P == 2.");
  Change good;
  good.kind = ChangeKind::CopyRuleRetarget;
  good.rule = "r1";
  good.new_head_table = "T";
  ASSERT_TRUE(good.apply(p));
  EXPECT_EQ(p.rules.size(), 2u);
  EXPECT_TRUE(ndlog::is_valid(p));
  Change bad;
  bad.kind = ChangeKind::CopyRuleRetarget;
  bad.rule = "r1";
  bad.new_head_table = "W";  // arity mismatch, no permutation
  EXPECT_FALSE(bad.apply(p));
}

TEST(Change, ApplyCandidateRejectsInvalid) {
  auto p = tiny();
  RepairCandidate c;
  Change ch;
  ch.kind = ChangeKind::ChangeSelConst;
  ch.rule = "missing-rule";
  c.changes.push_back(ch);
  EXPECT_FALSE(repair::apply_candidate(p, c).has_value());
}

TEST(CostModel, OrdersPlausibility) {
  const auto& m = repair::default_cost_model();
  auto p = tiny();
  Change near;
  near.kind = ChangeKind::ChangeSelConst;
  near.rule = "r1";
  near.index = 0;
  near.side = 1;
  near.new_value = Value(3);  // 2 -> 3: off-by-one
  Change far = near;
  far.new_value = Value(99);
  Change del;
  del.kind = ChangeKind::DeleteSel;
  Change rule_del;
  rule_del.kind = ChangeKind::DeleteRule;
  EXPECT_LT(m.cost(near, p), m.cost(far, p));
  EXPECT_LT(m.cost(far, p), m.cost(del, p));
  EXPECT_LT(m.cost(del, p), m.cost(rule_del, p));
}

// --- forest explorer on a micro program --------------------------------

TEST(Forest, MissingTupleYieldsConstOpDeleteRepairs) {
  eval::Engine e(ndlog::parse_program(
      "table A/2.\nevent B/2.\nr1 A(@X,Q) :- B(@X,Q), Q == 2."));
  e.insert(eval::Tuple{"B", {Value(1), Value(7)}});
  repair::Symptom sym;
  sym.pattern.table = "A";
  sym.pattern.fields = {{1, ndlog::CmpOp::Eq, Value(7)}};
  repair::RepairSpaceConfig cfg;
  repair::ForestExplorer explorer(e, cfg);
  auto cands = explorer.explore(sym);
  ASSERT_FALSE(cands.empty());
  bool has_const = false, has_op = false, has_del = false;
  for (const auto& c : cands) {
    for (const auto& ch : c.changes) {
      if (ch.kind == ChangeKind::ChangeSelConst && ch.new_value == Value(7)) {
        has_const = true;
      }
      if (ch.kind == ChangeKind::ChangeSelOp) has_op = true;
      if (ch.kind == ChangeKind::DeleteSel) has_del = true;
    }
  }
  EXPECT_TRUE(has_const);
  EXPECT_TRUE(has_op);
  EXPECT_TRUE(has_del);
  // Cost order: candidates must be non-decreasing.
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LE(cands[i - 1].cost, cands[i].cost);
  }
  // Every candidate must apply cleanly.
  for (const auto& c : cands) {
    EXPECT_TRUE(repair::apply_candidate(e.program(), c).has_value())
        << c.description;
  }
}

TEST(Forest, UnwantedTupleYieldsBreakingRepairs) {
  eval::Engine e(ndlog::parse_program(
      "table A/2.\ntable B/2.\nr1 A(@X,Q) :- B(@X,Q), Q > 0."));
  e.insert(eval::Tuple{"B", {Value(1), Value(7)}});
  ASSERT_TRUE(e.exists(Value(1), "A", {Value(1), Value(7)}));
  repair::Symptom sym;
  sym.polarity = repair::Symptom::Polarity::Unwanted;
  sym.pattern.table = "A";
  sym.pattern.fields = {{1, ndlog::CmpOp::Eq, Value(7)}};
  repair::RepairSpaceConfig cfg;
  repair::ForestExplorer explorer(e, cfg);
  auto cands = explorer.explore(sym);
  ASSERT_FALSE(cands.empty());
  bool kills = false;
  for (const auto& c : cands) {
    auto prog = repair::apply_candidate(e.program(), c);
    if (!prog) continue;
    eval::Engine e2(*prog);
    bool deleted_base = false;
    for (const auto& d : repair::candidate_deletions(c)) {
      if (d.table == "B") deleted_base = true;
    }
    if (!deleted_base) e2.insert(eval::Tuple{"B", {Value(1), Value(7)}});
    if (!e2.exists(Value(1), "A", {Value(1), Value(7)})) kills = true;
  }
  EXPECT_TRUE(kills) << "at least one repair must remove the tuple";
}

TEST(Forest, RecursesThroughMissingBodyTuples) {
  eval::Engine e(ndlog::parse_program(
      "table A/2.\ntable M/2.\nevent B/2.\n"
      "r1 A(@X,Q) :- M(@X,Q), Q > 0.\n"
      "r2 M(@X,Q) :- B(@X,Q), Q > 100."));
  e.insert(eval::Tuple{"B", {Value(1), Value(7)}});  // blocked by Q > 100
  repair::Symptom sym;
  sym.pattern.table = "A";
  sym.pattern.fields = {{1, ndlog::CmpOp::Eq, Value(7)}};
  repair::RepairSpaceConfig cfg;
  repair::ForestExplorer explorer(e, cfg);
  auto cands = explorer.explore(sym);
  bool touches_r2 = false;
  for (const auto& c : cands) {
    for (const auto& ch : c.changes) {
      if (ch.rule == "r2") touches_r2 = true;
    }
  }
  EXPECT_TRUE(touches_r2) << "the fix lies one derivation deeper (r2)";
}

TEST(Generator, ReportsPhases) {
  eval::Engine e(ndlog::parse_program(
      "table A/2.\nevent B/2.\nr1 A(@X,Q) :- B(@X,Q), Q == 2."));
  e.insert(eval::Tuple{"B", {Value(1), Value(7)}});
  repair::Symptom sym;
  sym.pattern.table = "A";
  sym.pattern.fields = {{1, ndlog::CmpOp::Eq, Value(7)}};
  repair::RepairGenerator gen(e, {});
  auto report = gen.generate(sym);
  EXPECT_FALSE(report.candidates.empty());
  EXPECT_GT(report.phases.total(), 0.0);
  EXPECT_GT(report.stats.solver.calls, 0u);
}

// --- language frontends -------------------------------------------------

TEST(Imp, CondAndInstallSemantics) {
  using namespace imp;
  Cond c{Operand::pkt(sdn::Field::Dpt), ndlog::CmpOp::Eq, Operand::literal(80)};
  sdn::Packet p;
  p.dpt = 80;
  EXPECT_TRUE(c.eval(1, 0, p));
  p.dpt = 53;
  EXPECT_FALSE(c.eval(1, 0, p));
  EXPECT_FALSE(Program{}.to_string().empty());
}

TEST(Imp, RepairsFixSingleFailingGuard) {
  using namespace imp;
  Program prog;
  prog.blocks = {{{Cond{Operand::switch_id(), ndlog::CmpOp::Eq,
                        Operand::literal(2)}},
                  {Install{{sdn::Field::Dpt}, Operand::literal(2), true}}}};
  ImpSymptom sym;
  sym.sw = 3;
  sym.want_port = 2;
  auto cands = generate_repairs(prog, sym);
  ASSERT_GT(cands.size(), 2u);
  bool lit_fix = false;
  for (const auto& c : cands) {
    if (c.kind == ImpChangeKind::ChangeLit && c.new_lit == 3) {
      lit_fix = true;
      Program fixed = c.apply(prog);
      EXPECT_TRUE(fixed.blocks[0].guard[0].eval(3, 0, sym.packet));
    }
  }
  EXPECT_TRUE(lit_fix);
}

TEST(Netcore, PolicyEvaluation) {
  using netcore::Policy;
  auto pol = Policy::par(
      Policy::match_sw(1, Policy::match(sdn::Field::Dpt, 80, Policy::fwd(2))),
      Policy::match_sw(2, Policy::drop()));
  sdn::Packet p;
  p.dpt = 80;
  EXPECT_EQ(eval_policy(pol, 1, 0, p), std::vector<int64_t>{2});
  EXPECT_TRUE(eval_policy(pol, 2, 0, p).empty());
  p.dpt = 53;
  EXPECT_TRUE(eval_policy(pol, 1, 0, p).empty());
  EXPECT_GT(pol->size(), 4u);
  EXPECT_FALSE(pol->to_string().empty());
}

TEST(Netcore, MatchValueRepairRebuildsTree) {
  using netcore::Policy;
  auto pol = Policy::match_sw(2, Policy::match(sdn::Field::Dpt, 80,
                                               Policy::fwd(2)));
  netcore::NetcoreSymptom sym;
  sym.sw = 3;
  sym.packet.dpt = 80;
  sym.want_port = 2;
  auto cands = netcore::generate_repairs(pol, sym);
  bool fixed_any = false;
  for (const auto& c : cands) {
    if (c.kind != netcore::NetcoreChange::Kind::ChangeMatchValue) continue;
    auto repaired = c.apply(pol);
    if (!eval_policy(repaired, 3, 0, sym.packet).empty()) fixed_any = true;
  }
  EXPECT_TRUE(fixed_any);
  // Equality-only: no operator mutations may exist in the netcore space
  // (the paper: operator repairs are "disallowed because of the syntax of
  // match").
  for (const auto& c : cands) {
    const std::string d = c.describe(pol);
    EXPECT_EQ(d.find("!="), std::string::npos) << d;
    EXPECT_EQ(d.find(" > "), std::string::npos) << d;
  }
}

// --- full scenarios -------------------------------------------------------

class ScenarioPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioPipeline, GeneratesAndAcceptsPaperLikeRepairs) {
  for (auto& s : scenario::all_scenarios()) {
    if (s.id != GetParam()) continue;
    scenario::PipelineOptions opt;
    opt.multiquery = true;
    auto r = scenario::run_pipeline(s, opt);
    EXPECT_GE(r.candidates, 5u) << s.id;
    EXPECT_GE(r.effective, 1u) << s.id;
    EXPECT_GE(r.accepted, 1u) << s.id;
    EXPECT_LT(r.accepted, r.candidates) << s.id << ": gate must reject some";
    // The ground-truth fix (or its equivalent) must be accepted.
    bool truth_accepted = false;
    for (const auto& e : r.backtest.entries) {
      if (e.accepted) truth_accepted = true;
    }
    EXPECT_TRUE(truth_accepted);
    return;
  }
  FAIL() << "scenario not found";
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioPipeline,
                         ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5"));

TEST(Scenario, GroundTruthProgramsFixSymptoms) {
  for (auto& s : scenario::all_scenarios()) {
    // Replaying the *fixed* program must satisfy the symptom predicate.
    scenario::ScenarioHarness harness(s);
    auto base = harness.replay_baseline();
    EXPECT_FALSE(base.symptom_fixed);
    // Wrap the fixed program as a "candidate" via rule-by-rule diffs is
    // complex; instead run it directly.
    eval::EngineOptions eopts;
    scenario::ScenarioRun run(s, s.fixed, eopts);
    run.insert_config();
    run.replay(harness.workload());
    auto out = backtest::outcome_from_stats(run.net().stats());
    EXPECT_TRUE(s.symptom_fixed(out, base, run.engine(), eval::kAllTags))
        << s.id << ": the ground-truth fix must cure the symptom";
  }
}

TEST(Scenario, SequentialAndJointBacktestsAgree) {
  auto s = scenario::q1_copy_paste({});
  scenario::ScenarioHarness h(s);
  repair::RepairCandidate fix;
  Change c;
  c.kind = ChangeKind::ChangeSelConst;
  c.rule = "r7";
  c.index = 0;
  c.side = 1;
  c.new_value = Value(3);
  fix.changes.push_back(c);
  auto seq = h.replay(fix);
  auto joint = h.replay_joint({fix});
  ASSERT_EQ(joint.size(), 1u);
  EXPECT_EQ(seq.delivered, joint[0].delivered);
  EXPECT_EQ(seq.dropped, joint[0].dropped);
  EXPECT_EQ(seq.symptom_fixed, joint[0].symptom_fixed);
  EXPECT_EQ(seq.per_host.counts(), joint[0].per_host.counts());
}

}  // namespace
}  // namespace mp

// --- imp text frontend ----------------------------------------------------

#include "langs/imp/parser.h"

namespace mp {
namespace {

TEST(ImpParser, ParsesHandler) {
  auto prog = imp::parse_program(R"(
    # load balancer, buggy copy of the S2 block
    def packet_in(sw, pkt) {
      if (sw == 1 && pkt.dpt == 80 && pkt.bucket == 1) {
        install(match(dpt, bucket), out(2));
      }
      if (sw == 2 && pkt.dpt == 80) { install(match(dpt), out(1), no_packet_out); }
    }
  )");
  ASSERT_EQ(prog.blocks.size(), 2u);
  EXPECT_EQ(prog.blocks[0].guard.size(), 3u);
  EXPECT_EQ(prog.blocks[0].body[0].match_fields.size(), 2u);
  EXPECT_TRUE(prog.blocks[0].body[0].send_packet_out);
  EXPECT_FALSE(prog.blocks[1].body[0].send_packet_out);
  EXPECT_EQ(prog.name, "packet_in");
}

TEST(ImpParser, ParsedProgramExecutes) {
  auto prog = imp::parse_program(
      "def packet_in(sw, pkt) {"
      "  if (sw == 1 && pkt.dpt == 80) { install(match(dpt), out(3)); }"
      "}");
  sdn::Network net;
  net.add_switch(1);
  net.add_host({1, "H", 9, 0, 1, 3});
  imp::ImpController ctrl(net, prog);
  net.set_controller(&ctrl);
  sdn::Packet p;
  p.dpt = 80;
  net.inject(1, 1, p);
  EXPECT_EQ(net.stats().per_host.get("H"), 1.0);
}

TEST(ImpParser, RejectsBadSyntax) {
  EXPECT_THROW(imp::parse_program("def x { }"), imp::ImpParseError);
  EXPECT_THROW(imp::parse_program(
                   "def packet_in(sw, pkt) { if (pkt.zzz == 1) { } }"),
               imp::ImpParseError);
  EXPECT_THROW(imp::parse_program(
                   "def packet_in(sw, pkt) { if (sw ~ 1) { } }"),
               imp::ImpParseError);
}

TEST(ImpParser, RoundTripsWithRepairSpace) {
  auto prog = imp::parse_program(
      "def packet_in(sw, pkt) {"
      "  if (sw == 2 && pkt.dpt == 80) { install(match(dpt), out(2)); }"
      "}");
  imp::ImpSymptom sym;
  sym.sw = 3;
  sym.packet.dpt = 80;
  sym.want_port = 2;
  auto cands = imp::generate_repairs(prog, sym);
  EXPECT_GE(cands.size(), 4u);
}

}  // namespace
}  // namespace mp

// --- netcore text frontend ------------------------------------------------

#include "langs/netcore/parser.h"

namespace mp {
namespace {

TEST(NetcoreParser, ParsesCompositePolicy) {
  auto pol = netcore::parse_policy(R"(
    # Q1-style policy
    match(switch=1)[ match(dpt=80)[ match(bucket=1)[fwd(2)]
                                  | match(bucket=2)[fwd(3)] ]
                   | match(dpt=53)[fwd(3)] ]
    | match(switch=2)[ match(dpt=80)[fwd(1)] ]
  )");
  sdn::Packet p;
  p.dpt = 80;
  p.bucket = 2;
  EXPECT_EQ(eval_policy(pol, 1, 0, p), std::vector<int64_t>{3});
  EXPECT_EQ(eval_policy(pol, 2, 0, p), std::vector<int64_t>{1});
  p.dpt = 22;
  EXPECT_TRUE(eval_policy(pol, 1, 0, p).empty());
}

TEST(NetcoreParser, SequentialAndModify) {
  auto pol = netcore::parse_policy(
      "match(dpt=80)[fwd(1)] >> modify(dip=9)[fwd(2)]");
  sdn::Packet p;
  p.dpt = 80;
  EXPECT_EQ(eval_policy(pol, 1, 0, p), std::vector<int64_t>{2});
  p.dpt = 53;
  EXPECT_TRUE(eval_policy(pol, 1, 0, p).empty());
}

TEST(NetcoreParser, RejectsBadSyntax) {
  EXPECT_THROW(netcore::parse_policy("fwd()"), netcore::NetcoreParseError);
  EXPECT_THROW(netcore::parse_policy("match(zzz=1)[drop]"),
               netcore::NetcoreParseError);
  EXPECT_THROW(netcore::parse_policy("modify(switch=3)[drop]"),
               netcore::NetcoreParseError);
  EXPECT_THROW(netcore::parse_policy("fwd(1) fwd(2)"),
               netcore::NetcoreParseError);
}

TEST(NetcoreParser, RoundTripThroughPrinter) {
  auto pol = netcore::parse_policy(
      "match(switch=2)[match(dpt=80)[fwd(2)]] | drop");
  EXPECT_FALSE(pol->to_string().empty());
  EXPECT_EQ(pol->size(), 5u);
}

}  // namespace
}  // namespace mp
