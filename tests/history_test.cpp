// HistoryStore + event-log compaction coverage:
//   - probe vs. linear-scan equivalence (randomized patterns over every
//     scenario's real history, indexed path vs. forced-scan path vs. a
//     hand-rolled filter — same tuples, same order),
//   - checkpoint -> truncate -> replay round trip (identical final tables
//     and event-sequence hash, byte accounting in the serialized format
//     within 2x of the paper's ~120 B/entry),
//   - repair regression: the explorer's output (repair sets + costs) is
//     byte-identical whether history lookups hit the secondary indexes or
//     the ordered scan they replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "backtest/replay.h"
#include "eval/engine.h"
#include "eval/history.h"
#include "ndlog/parser.h"
#include "repair/forest.h"
#include "scenarios/scenario.h"
#include "sdn/topology.h"
#include "test_util.h"
#include "util/rng.h"

namespace mp::eval {
namespace {

std::vector<std::string> probe_result(const HistoryStore& h,
                                      const TuplePattern& pat) {
  std::vector<std::string> out;
  h.probe(pat, [&](TupleRef ref) {
    out.push_back(h.materialize(ref).to_string());
    return true;
  });
  return out;
}

// The oracle: the pre-refactor linear filter over the per-table history.
std::vector<std::string> linear_result(const HistoryStore& h,
                                       const TuplePattern& pat) {
  std::vector<std::string> out;
  for (TupleRef ref : h.rows(pat.table)) {
    if (pat.matches(h.row_of(ref))) {
      out.push_back(h.materialize(ref).to_string());
    }
  }
  return out;
}

TEST(HistoryProbe, MatchesLinearScanOnAllScenarios) {
  Rng rng(2024);
  const std::vector<ndlog::CmpOp> ops = {ndlog::CmpOp::Eq, ndlog::CmpOp::Eq,
                                         ndlog::CmpOp::Ne, ndlog::CmpOp::Lt,
                                         ndlog::CmpOp::Ge};
  for (const scenario::Scenario& s : scenario::all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    Engine engine(s.program);
    engine.insert_batch(scenario::engine_trace(s, 1500));
    ASSERT_GT(engine.history().total(), 0u);

    size_t nonempty = 0;
    for (ndlog::Catalog::TableId id = 0; id < engine.catalog().size(); ++id) {
      const std::string& table = engine.catalog().name_of(id);
      const auto& hist = engine.history().rows(table);
      for (int trial = 0; trial < 40; ++trial) {
        TuplePattern pat;
        pat.table = table;
        const size_t nfields = rng.below(4);
        for (size_t f = 0; f < nfields; ++f) {
          FieldConstraint fc;
          fc.op = ops[rng.below(ops.size())];
          if (!hist.empty()) {
            // Draw column/value from a real row so patterns actually hit.
            const Row& row =
                engine.history().row_of(hist[rng.below(hist.size())]);
            if (row.empty()) continue;
            fc.col = rng.below(row.size() + 1);  // may exceed arity
            fc.value = fc.col < row.size() && rng.chance(0.8)
                           ? row[fc.col]
                           : Value(rng.range(0, 99));
          } else {
            fc.col = rng.below(4);
            fc.value = Value(rng.range(0, 99));
          }
          pat.fields.push_back(std::move(fc));
        }
        const auto want = linear_result(engine.history(), pat);
        EXPECT_EQ(probe_result(engine.history(), pat), want)
            << "pattern " << pat.to_string();
        // Forced-scan mode must agree too (it IS the linear filter).
        engine.history().attach(&engine.catalog(), &engine.log().pool(), false);
        EXPECT_EQ(probe_result(engine.history(), pat), want)
            << "scan-mode pattern " << pat.to_string();
        engine.history().attach(&engine.catalog(), &engine.log().pool(), true);
        nonempty += want.empty() ? 0 : 1;
      }
    }
    EXPECT_GT(nonempty, 0u) << "patterns never matched: test is vacuous";
    EXPECT_GT(engine.history().index_probes(), 0u);
  }
}

TEST(HistoryProbe, IndexHitVisitsOnlyTheBucket) {
  Engine e(ndlog::parse_program("table T/3.\n"));
  for (int i = 0; i < 100; ++i) {
    e.insert(Tuple{"T", {Value(1), Value(i % 10), Value(i)}});
  }
  TuplePattern pat;
  pat.table = "T";
  pat.fields = {{1, ndlog::CmpOp::Eq, Value(3)}};
  size_t matches = 0;
  const size_t scanned = e.history().probe(pat, [&](TupleRef) {
    ++matches;
    return true;
  });
  EXPECT_EQ(matches, 10u);
  EXPECT_EQ(scanned, 10u);  // bucket only, not the 100-row history
  EXPECT_EQ(e.history().full_scans(), 0u);
}

// --- checkpoint + truncate + replay ------------------------------------

std::map<std::string, std::multiset<std::string>> table_snapshot(
    const Engine& e) {
  std::map<std::string, std::multiset<std::string>> out;
  for (ndlog::Catalog::TableId id = 0; id < e.catalog().size(); ++id) {
    const std::string& name = e.catalog().name_of(id);
    auto& rows = out[name];
    for (const Tuple& t : e.all_tuples(name)) rows.insert(t.to_string());
  }
  return out;
}

// FNV-1a over the (kind, tuple) sequence of the *full* log, checkpointed
// prefix included (same hash the differential harness uses).
using testutil::event_sequence_hash;

TEST(EventLogCheckpoint, RoundTripReplayReproducesTablesAndHash) {
  const scenario::Scenario s = scenario::q1_copy_paste({});
  Engine original(s.program);
  original.insert_batch(scenario::engine_trace(s, 800));
  ASSERT_GT(original.log().size(), 100u);

  const auto want_tables = table_snapshot(original);
  const uint64_t want_hash = event_sequence_hash(original.log());
  const size_t want_events = original.log().size();
  const size_t want_bytes = original.log().byte_estimate();
  const Time t5 = original.log().event_time(5);

  // Compact all but the newest quarter; ids, accounting and the decoded
  // event sequence must be unaffected.
  const size_t keep = original.log().live_size() / 4;
  const size_t compacted = original.log().compact(keep);
  EXPECT_GT(compacted, 0u);
  EXPECT_EQ(original.log().live_size(), keep);
  EXPECT_EQ(original.log().base_id(), compacted);
  EXPECT_EQ(original.log().size(), want_events);
  EXPECT_GT(original.log().checkpoint_bytes(), 0u);
  EXPECT_EQ(original.log().byte_estimate(), want_bytes)
      << "compaction must not change the serialized-format accounting";
  EXPECT_EQ(original.log().event_time(5), t5);
  EXPECT_EQ(event_sequence_hash(original.log()), want_hash)
      << "checkpoint decode must reproduce the event sequence";

  // Storage accounting: the interned format stores 16-bit table/rule ids
  // per entry (names once, in the checkpoint string table), so entries
  // land below the paper's ~120 B/entry — but must stay in the same
  // order of magnitude (32 B header + node + row values + causes).
  const double per_entry =
      static_cast<double>(want_bytes) / static_cast<double>(want_events);
  EXPECT_GE(per_entry, 40.0);
  EXPECT_LE(per_entry, 240.0);

  // Replay checkpoint + live suffix into a fresh engine through the
  // batched insert path: same fixpoint, same full event sequence.
  Engine rebuilt(s.program);
  const size_t applied = backtest::replay_base_stream(original.log(), rebuilt);
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(table_snapshot(rebuilt), want_tables);
  EXPECT_EQ(rebuilt.log().size(), want_events);
  EXPECT_EQ(event_sequence_hash(rebuilt.log()), want_hash);
}

TEST(EventLogCheckpoint, SerializedBytesMatchesWhatCompactionWrites) {
  Engine e(ndlog::parse_program(
      "table A/2.\nevent B/2.\nr1 A(@X,Q) :- B(@X,Q), Q > 0."));
  e.insert(Tuple{"B", {Value(1), Value(5)}});
  e.insert(Tuple{"B", {Value::str("node-seven"), Value(6)}});
  // byte_estimate = per-entry bytes plus the string-table records the
  // checkpoint writes once per distinct table/rule name.
  size_t entry_bytes = 0;
  for (const Event& ev : e.log().events()) {
    entry_bytes += e.log().serialized_bytes(ev);
  }
  const size_t want = e.log().byte_estimate();
  EXPECT_GT(want, entry_bytes) << "names section must be accounted";
  e.log().compact();
  EXPECT_EQ(e.log().live_size(), 0u);
  EXPECT_EQ(e.log().checkpoint_bytes(), want)
      << "byte_estimate must agree with what compaction actually writes";
}

// The EngineOptions auto-compaction policy: once the live suffix crosses
// the configured threshold, a top-level insert triggers
// EventLog::compact(compact_keep_live) — and event ids, timestamps, the
// decoded sequence and replay all stay stable across the automatic
// truncations.
TEST(EventLogCheckpoint, AutoCompactionKeepsIdsStable) {
  const scenario::Scenario s = scenario::q1_copy_paste({});
  Engine plain(s.program);
  const std::vector<Tuple> trace = scenario::engine_trace(s, 600);
  for (const Tuple& t : trace) plain.insert(t);

  EngineOptions opt;
  opt.compact_after_events = 200;
  opt.compact_keep_live = 50;
  Engine compacting(s.program, opt);
  for (const Tuple& t : trace) compacting.insert(t);

  // Compaction actually auto-triggered (repeatedly), bounding the live
  // suffix near the policy's knee...
  EXPECT_GT(compacting.log().base_id(), 0u);
  EXPECT_GT(compacting.log().checkpoint_bytes(), 0u);
  EXPECT_LE(compacting.log().live_size(), opt.compact_after_events + 64);
  // ...without perturbing evaluation or the id space.
  EXPECT_EQ(compacting.log().size(), plain.log().size());
  EXPECT_EQ(compacting.rule_firings(), plain.rule_firings());
  EXPECT_EQ(event_sequence_hash(compacting.log()),
            event_sequence_hash(plain.log()));
  EXPECT_EQ(table_snapshot(compacting), table_snapshot(plain));
  for (EventId id : {EventId{0}, EventId{17},
                     EventId{compacting.log().size() - 1}}) {
    EXPECT_EQ(compacting.log().event_time(id), plain.log().event_time(id))
        << "event " << id << " must stay addressable after auto-compaction";
  }

  // Replay of the auto-compacted log reproduces the same fixpoint.
  Engine rebuilt(s.program);
  backtest::replay_base_stream(compacting.log(), rebuilt);
  EXPECT_EQ(table_snapshot(rebuilt), table_snapshot(plain));

  // The byte threshold triggers on its own too.
  EngineOptions bopt;
  bopt.compact_after_bytes = 16 * 1024;
  bopt.compact_keep_live = 50;
  Engine bytes_engine(s.program, bopt);
  for (const Tuple& t : trace) bytes_engine.insert(t);
  EXPECT_GT(bytes_engine.log().base_id(), 0u);
  EXPECT_EQ(event_sequence_hash(bytes_engine.log()),
            event_sequence_hash(plain.log()));
}

TEST(EventLogCheckpoint, CompactedDeleteEventsReplayToo) {
  const char* prog = "table A/2.\ntable B/3.\n";
  Engine original(ndlog::parse_program(prog));
  for (int i = 0; i < 20; ++i) {
    original.insert(Tuple{"A", {Value(1), Value(i)}});
    original.insert(Tuple{"B", {Value(2), Value(i), Value(i * 3)}});
  }
  for (int i = 0; i < 10; i += 2) {
    original.remove(Tuple{"A", {Value(1), Value(i)}});
  }
  const auto want_tables = table_snapshot(original);
  const uint64_t want_hash = event_sequence_hash(original.log());
  original.log().compact(3);

  Engine rebuilt(ndlog::parse_program(prog));
  backtest::replay_base_stream(original.log(), rebuilt);
  EXPECT_EQ(table_snapshot(rebuilt), want_tables);
  EXPECT_EQ(event_sequence_hash(rebuilt.log()), want_hash);
}

// Regression (PR 7): a decoded event's cause span used to point into one
// shared mutable scratch vector that the next decode silently clobbered,
// so nested iteration — holding one checkpoint-decoded event's causes
// while walking the rest of the checkpoint, exactly what segment replay
// does — read garbage. Each for_each_event pass now decodes through its
// own cursor; the outer span must survive a full inner pass untouched.
TEST(EventLogCheckpoint, DecodedCausesSurviveInterleavedDecodes) {
  const scenario::Scenario s = scenario::q1_copy_paste({});
  Engine e(s.program);
  e.insert_batch(scenario::engine_trace(s, 300));
  e.log().compact(0);  // everything decodes from the checkpoint
  const EventLog& log = e.log();

  // Ground truth, collected one event per decode (no interleaving).
  std::map<EventId, std::vector<EventId>> want;
  log.for_each_event([&](const Event& ev) {
    const auto c = log.causes_of(ev);
    want[ev.id].assign(c.begin(), c.end());
  });
  size_t with_causes = 0;
  for (const auto& [id, c] : want) with_causes += c.empty() ? 0 : 1;
  ASSERT_GT(with_causes, 10u) << "fixture records no causal links";

  // Adversarial interleaving: while holding each outer event's span, run
  // a complete inner decode pass over the same checkpoint, then read the
  // outer span.
  size_t checked = 0;
  log.for_each_event([&](const Event& outer) {
    const auto span = log.causes_of(outer);
    if (span.empty()) return;
    uint64_t inner_sum = 0;
    log.for_each_event([&](const Event& inner) {
      for (EventId c : log.causes_of(inner)) inner_sum += c;
    });
    ASSERT_GT(inner_sum, 0u);
    EXPECT_TRUE(std::equal(span.begin(), span.end(), want[outer.id].begin(),
                           want[outer.id].end()))
        << "event " << outer.id
        << ": cause span clobbered by interleaved decodes";
    ++checked;
  });
  EXPECT_EQ(checked, with_causes);
}

// Regression (PR 7): checkpoint decode used to resolve the serialized
// 16-bit table/rule/node ids through the attached live catalog — correct
// only for the log that wrote the checkpoint. A checkpoint must decode
// through its own string-table section, so loading it into a fresh
// standalone log whose interners are deliberately scrambled (junk names
// interned first, shifting every id) reproduces the byte-identical event
// sequence.
TEST(EventLogCheckpoint, CheckpointDecodesSelfContainedIntoScrambledCatalog) {
  const scenario::Scenario s = scenario::q1_copy_paste({});
  Engine e(s.program);
  e.insert_batch(scenario::engine_trace(s, 300));
  std::vector<std::string> want;
  e.log().for_each_event([&](const Event& ev) {
    std::string line = e.log().to_string(ev);
    for (EventId c : e.log().causes_of(ev)) line += " <" + std::to_string(c) + ">";
    want.push_back(std::move(line));
  });
  e.log().compact(0);
  ASSERT_EQ(e.log().live_size(), 0u);

  // A standalone log (private catalog), scrambled so no id can happen to
  // line up with the writer's: every table/rule/node id space is shifted
  // before the checkpoint is loaded.
  EventLog fresh;
  for (int i = 0; i < 7; ++i) {
    const std::string junk = "zz_junk_" + std::to_string(i);
    fresh.intern_tuple(junk, Row{Value(i)});
    fresh.intern_rule(junk);
    fresh.intern_node(Value::str(junk));
  }
  fresh.load_checkpoint(e.log().checkpoint_entries(),
                        e.log().checkpoint_names());
  ASSERT_EQ(fresh.size(), want.size());
  ASSERT_EQ(fresh.base_id(), want.size());

  std::vector<std::string> got;
  fresh.for_each_event([&](const Event& ev) {
    std::string line = fresh.to_string(ev);
    for (EventId c : fresh.causes_of(ev)) line += " <" + std::to_string(c) + ">";
    got.push_back(std::move(line));
  });
  EXPECT_EQ(got, want) << "decode leaked the writer's id space";
  // And the loaded checkpoint re-serializes: a second-generation log
  // loads the first copy's bytes and still agrees.
  EventLog second;
  second.load_checkpoint(fresh.checkpoint_entries(), fresh.checkpoint_names());
  EXPECT_EQ(event_sequence_hash(second), event_sequence_hash(fresh));
}

// --- repair regression --------------------------------------------------

// One line per candidate (cost + description + change count, the shared
// testutil canonical form), so any drift in the repair sets, their costs
// or their order fails the comparison.
using testutil::explore_all;

TEST(RepairRegression, ExplorerOutputIdenticalIndexedVsScan) {
  size_t index_probes = 0;
  size_t full_scans = 0;
  for (const scenario::Scenario& s : scenario::all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    Engine engine(s.program);
    engine.insert_batch(scenario::engine_trace(s, 1500));

    const auto indexed = explore_all(s, engine);
    EXPECT_FALSE(indexed.empty());
    index_probes += engine.history().index_probes();
    full_scans += engine.history().full_scans();
    // Forced-scan history is exactly the legacy linear filtering the
    // refactor replaced; the explorer must not be able to tell.
    engine.history().attach(&engine.catalog(), &engine.log().pool(), false);
    const auto scanned = explore_all(s, engine);
    engine.history().attach(&engine.catalog(), &engine.log().pool(), true);
    EXPECT_EQ(indexed, scanned);
  }
  // In aggregate the five scenarios exercise both access paths (a
  // single-atom rule only ever yields the fallback scan; multi-atom joins
  // and bound-column symptom patterns yield index hits).
  EXPECT_GT(index_probes, 0u);
  EXPECT_GT(full_scans, 0u);
}

}  // namespace
}  // namespace mp::eval
