// Observability subsystem coverage (src/obs):
//   - registry: one instrument per name (dedup), kind mismatches return a
//     sink that never reaches the snapshot,
//   - histogram: log2 bucket placement, bucket bounds, quantiles on known
//     distributions (p50/p99), snapshot JSON well-formedness,
//   - snapshot/delta: counters and histogram buckets subtract, gauges
//     keep their current level — the contract that makes per-scenario
//     metric sections possible even though registry counters are
//     process-cumulative,
//   - spans: per-thread ring buffers merge in a deterministic
//     (start_ns, thread, seq) order regardless of drain timing; full
//     rings drop new records and count them,
//   - phase interning: PhaseClock accumulates by dense id with the
//     string API preserved at the edges,
//   - engine pin: Engine accessor counters survive log compaction
//     unchanged, and publish_obs() pushes exactly the increment since
//     the previous publish into the registry.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "eval/engine.h"
#include "ndlog/parser.h"
#include "obs/obs.h"
#include "obs/phase.h"
#include "obs/span.h"
#include "test_util.h"
#include "util/timer.h"

namespace mp::obs {
namespace {

TEST(Registry, OneInstrumentPerName) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("test.registry.dedup");
  Counter& b = reg.counter("test.registry.dedup");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  b.add(3);
  EXPECT_EQ(a.value(), before + 3);
}

TEST(Registry, KindMismatchReturnsSink) {
  Registry& reg = Registry::global();
  reg.counter("test.registry.kind");
  Gauge& g = reg.gauge("test.registry.kind");  // wrong kind: sink
  g.set(42);
  const Snapshot snap = reg.snapshot();
  const InstrumentValue* v = snap.find("test.registry.kind");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, Kind::Counter);
  EXPECT_EQ(v->value, 0);
}

TEST(Histogram, BucketPlacement) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~uint64_t{0}), 64u);
  // Bounds bracket every member of the bucket.
  for (uint64_t v : {uint64_t{1}, uint64_t{7}, uint64_t{1000},
                     uint64_t{1} << 40}) {
    const size_t b = Histogram::bucket_of(v);
    EXPECT_GE(v, Histogram::bucket_lower(b));
    EXPECT_LE(v, Histogram::bucket_upper(b));
  }
}

TEST(Histogram, QuantilesOnKnownDistribution) {
  Histogram h;
  // 90 values in [8,15] (bucket 4), 10 values in [1024,2047] (bucket 11).
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1500);
  HistogramData d;
  d.buckets.resize(Histogram::kBuckets);
  for (size_t b = 0; b < Histogram::kBuckets; ++b) d.buckets[b] = h.bucket(b);
  d.count = h.count();
  d.sum = h.sum();
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.sum, 90u * 10 + 10u * 1500);
  // p50 lands inside the low bucket, p99 inside the high one.
  EXPECT_GE(d.p50(), 8.0);
  EXPECT_LE(d.p50(), 15.0);
  EXPECT_GE(d.p99(), 1024.0);
  EXPECT_LE(d.p99(), 2047.0);
  EXPECT_DOUBLE_EQ(d.mean(), static_cast<double>(d.sum) / 100.0);
}

TEST(Snapshot, DeltaSubtractsCountersKeepsGauges) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("test.delta.counter");
  Gauge& g = reg.gauge("test.delta.gauge");
  Histogram& h = reg.histogram("test.delta.hist");
  c.add(5);
  g.set(10);
  h.record(100);
  const Snapshot before = reg.snapshot();
  c.add(7);
  g.set(3);  // gauge goes *down*: delta must report the current level
  h.record(100);
  h.record(100000);
  const Snapshot after = reg.snapshot();
  const Snapshot d = after.delta(before);
  EXPECT_EQ(d.find("test.delta.counter")->value, 7);
  EXPECT_EQ(d.find("test.delta.gauge")->value, 3);
  const InstrumentValue* hv = d.find("test.delta.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->hist.count, 2u);
  EXPECT_EQ(hv->hist.sum, 100100u);
}

TEST(Snapshot, JsonParsesAndHasSections) {
  Registry::global().counter("test.json.counter").inc();
  const std::string js = snapshot_json();
  // Structural sanity without a JSON parser: the three sections appear in
  // order and braces balance.
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"histograms\""), std::string::npos);
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < js.size(); ++i) {
    const char ch = js[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
    } else if (ch == '"') {
      in_str = true;
    } else if (ch == '{') {
      ++depth;
    } else if (ch == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(Spans, DeterministicMergeAcrossThreads) {
  set_trace_enabled(true);
  drain_all_spans();  // clear anything earlier tests recorded
  const PhaseId p = phase_id("test.span.merge");
  // Two injector threads with interleaved synthetic timestamps plus the
  // main thread; merge order must be (start_ns, thread, seq) no matter
  // how the threads raced.
  record_span(p, 50, 1);
  std::thread t1([&] {
    record_span(p, 10, 1);
    record_span(p, 30, 1);
  });
  t1.join();
  std::thread t2([&] {
    record_span(p, 20, 1);
    record_span(p, 30, 1);
  });
  t2.join();
  const std::vector<SpanRecord> spans = drain_all_spans();
  ASSERT_EQ(spans.size(), 5u);
  std::vector<uint64_t> starts;
  for (const SpanRecord& s : spans) starts.push_back(s.start_ns);
  EXPECT_EQ(starts, (std::vector<uint64_t>{10, 20, 30, 30, 50}));
  // The two 30s tie-break by thread registration index.
  EXPECT_LT(spans[2].thread, spans[3].thread);
  // A second drain over the same (now-empty) buffers is empty: drains
  // consume.
  EXPECT_TRUE(drain_all_spans().empty());
}

TEST(Spans, FullRingDropsAndCounts) {
  set_trace_enabled(true);
  const uint64_t dropped_before = dropped_spans();
  set_span_capacity(4);
  const PhaseId p = phase_id("test.span.drop");
  std::thread t([&] {
    for (int i = 0; i < 10; ++i) record_span(p, i, 1);
  });
  t.join();
  set_span_capacity(8192);
  const std::vector<SpanRecord> spans = drain_all_spans();
  size_t ours = 0;
  for (const SpanRecord& s : spans) ours += s.phase == p;
  EXPECT_EQ(ours, 4u);
  EXPECT_EQ(dropped_spans() - dropped_before, 6u);
}

TEST(Phases, InternedIdsPreserveStringApi) {
  const PhaseId a = phase_id("test.phase.alpha");
  EXPECT_EQ(phase_id("test.phase.alpha"), a);
  EXPECT_EQ(phase_name(a), "test.phase.alpha");
  mp::PhaseClock clock;
  clock.add(a, 1.5);
  clock.add("test.phase.alpha", 0.5);
  clock.add("test.phase.beta", 2.0);
  EXPECT_DOUBLE_EQ(clock.get(a), 2.0);
  EXPECT_DOUBLE_EQ(clock.get("test.phase.alpha"), 2.0);
  EXPECT_DOUBLE_EQ(clock.total(), 4.0);
  const auto phases = clock.phases();
  ASSERT_EQ(phases.count("test.phase.beta"), 1u);
  EXPECT_DOUBLE_EQ(phases.at("test.phase.beta"), 2.0);
  mp::PhaseClock other;
  other.add(a, 1.0);
  clock.merge(other);
  EXPECT_DOUBLE_EQ(clock.get(a), 3.0);
}

TEST(EnginePin, CountersSurviveCompactAndPublishDeltas) {
  set_enabled(true);
  eval::Engine e(ndlog::parse_program(testutil::ring_program(6)));
  e.insert_batch(testutil::ring_trace(4, 8));
  const size_t steps = e.steps();
  const size_t firings = e.rule_firings();
  ASSERT_GT(firings, 0u);
  Registry& reg = Registry::global();
  const Snapshot before = reg.snapshot();
  e.publish_obs();
  const Snapshot mid = reg.snapshot();
  // First publish pushes the full engine totals into the registry.
  EXPECT_EQ(mid.delta(before).find("eval.engine.rule_firings")->value,
            static_cast<int64_t>(firings));
  // Compaction must not disturb the engine accessors (the historical
  // inconsistency this subsystem fixes: counters survive compact() and
  // delta() makes windows over them well-defined).
  e.log().compact(0);
  EXPECT_EQ(e.steps(), steps);
  EXPECT_EQ(e.rule_firings(), firings);
  // Re-publishing with no new work adds nothing.
  e.publish_obs();
  EXPECT_EQ(reg.snapshot().delta(mid).find("eval.engine.rule_firings")->value,
            0);
  // More work publishes exactly the increment.
  e.insert_batch(testutil::ring_trace(4, 2));
  const size_t new_firings = e.rule_firings();
  ASSERT_GT(new_firings, firings);
  e.publish_obs();
  EXPECT_EQ(reg.snapshot().delta(mid).find("eval.engine.rule_firings")->value,
            static_cast<int64_t>(new_firings - firings));
}

}  // namespace
}  // namespace mp::obs
