// Unit tests for the NDlog frontend: lexer, parser, printer, validation.
#include <gtest/gtest.h>

#include "ndlog/lexer.h"
#include "ndlog/parser.h"
#include "ndlog/validate.h"

namespace mp::ndlog {
namespace {

TEST(Lexer, TokenizesRule) {
  auto toks = lex("r1 A(@X,P) :- B(@X,Q), Q == 2, P := Q + 1.");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks.front().kind, TokKind::Ident);
  EXPECT_EQ(toks.front().text, "r1");
  EXPECT_EQ(toks.back().kind, TokKind::End);
}

TEST(Lexer, SkipsComments) {
  auto toks = lex("// a comment\nr1 // trailing\n");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "r1");
}

TEST(Lexer, TwoCharOperators) {
  auto toks = lex(":- := == != <= >=");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokKind::Derives);
  EXPECT_EQ(toks[1].kind, TokKind::Assign);
  EXPECT_EQ(toks[2].kind, TokKind::EqEq);
  EXPECT_EQ(toks[3].kind, TokKind::NotEq);
  EXPECT_EQ(toks[4].kind, TokKind::Le);
  EXPECT_EQ(toks[5].kind, TokKind::Ge);
}

TEST(Lexer, ReportsPosition) {
  try {
    lex("r1 $bad");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.col(), 4u);
  }
}

TEST(Parser, ParsesTableDecl) {
  Program p = parse_program("table FlowTable/4 keys(0,1).\nevent PacketIn/3.");
  ASSERT_EQ(p.tables.size(), 2u);
  EXPECT_EQ(p.tables[0].name, "FlowTable");
  EXPECT_EQ(p.tables[0].arity, 4u);
  EXPECT_EQ(p.tables[0].keys, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(p.tables[0].kind, TableKind::Materialized);
  EXPECT_EQ(p.tables[1].kind, TableKind::Event);
}

TEST(Parser, ParsesRuleShape) {
  Rule r = parse_rule(
      "r7 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 2, "
      "Hdr == 80, Prt := 2.");
  EXPECT_EQ(r.name, "r7");
  EXPECT_EQ(r.head.table, "FlowTable");
  ASSERT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.body[0].table, "PacketIn");
  ASSERT_EQ(r.sels.size(), 2u);
  EXPECT_EQ(r.sels[0].op, CmpOp::Eq);
  ASSERT_EQ(r.assigns.size(), 1u);
  EXPECT_EQ(r.assigns[0].var, "Prt");
}

TEST(Parser, NegativeConstantsAndWildcards) {
  Rule r = parse_rule("r A(@X,P,Q) :- B(@X,Y), P := -1, Q := *.");
  ASSERT_EQ(r.assigns.size(), 2u);
  ASSERT_TRUE(r.assigns[0].expr->is_const());
  EXPECT_EQ(r.assigns[0].expr->cval().as_int(), -1);
  ASSERT_TRUE(r.assigns[1].expr->is_const());
  EXPECT_TRUE(r.assigns[1].expr->cval().is_wildcard());
}

TEST(Parser, ArithmeticPrecedence) {
  Rule r = parse_rule("r A(@X,P) :- B(@X,Y), P := Y + 2 * 3.");
  const Expr& e = *r.assigns[0].expr;
  ASSERT_EQ(e.kind(), Expr::Kind::Binary);
  EXPECT_EQ(e.op(), ArithOp::Add);
  EXPECT_EQ(e.rhs()->op(), ArithOp::Mul);
}

TEST(Parser, RoundTripsThroughPrinter) {
  const char* src =
      "r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), "
      "WebLoadBalancer(@C,Hdr,Prt), Swi == 1, Hdr == 80.";
  Rule r = parse_rule(src);
  Rule r2 = parse_rule(r.to_string());
  EXPECT_EQ(r.to_string(), r2.to_string());
}

TEST(Parser, RejectsGarbage) {
  EXPECT_THROW(parse_rule("r1 A(@X :- B(@X)."), ParseError);
  EXPECT_THROW(parse_rule("r1 A(@X) :- ."), ParseError);
  EXPECT_THROW(parse_program("table Foo."), ParseError);
}

TEST(Validate, AcceptsWellFormedProgram) {
  Program p = parse_program(
      "table A/2.\nevent B/2.\n"
      "r1 A(@X,P) :- B(@X,Q), Q == 2, P := Q + 1.");
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validate, CatchesUndeclaredTable) {
  Program p = parse_program("table A/2.\nr1 A(@X,P) :- B(@X,P), P == 1.");
  auto errs = validate(p);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("undeclared"), std::string::npos);
}

TEST(Validate, CatchesArityMismatch) {
  Program p = parse_program("table A/2.\nevent B/3.\nr1 A(@X,P,Q) :- B(@X,P,Q).");
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validate, CatchesUnboundVariables) {
  Program p = parse_program("table A/2.\nevent B/2.\nr1 A(@X,Z) :- B(@X,Q).");
  auto errs = validate(p);
  ASSERT_FALSE(errs.empty());
  EXPECT_NE(errs[0].find("unbound"), std::string::npos);
}

TEST(Validate, CatchesSelectionOnUnbound) {
  Program p =
      parse_program("table A/2.\nevent B/2.\nr1 A(@X,Q) :- B(@X,Q), W == 2.");
  EXPECT_FALSE(validate(p).empty());
}

TEST(Ast, CmpEval) {
  EXPECT_TRUE(cmp_eval(CmpOp::Eq, Value(3), Value(3)));
  EXPECT_TRUE(cmp_eval(CmpOp::Ne, Value(3), Value(4)));
  EXPECT_TRUE(cmp_eval(CmpOp::Lt, Value(3), Value(4)));
  EXPECT_TRUE(cmp_eval(CmpOp::Ge, Value(4), Value(4)));
  EXPECT_FALSE(cmp_eval(CmpOp::Gt, Value(4), Value(4)));
  EXPECT_TRUE(cmp_eval(CmpOp::Eq, Value::str("a"), Value::str("a")));
}

TEST(Ast, NegateOp) {
  for (CmpOp op : all_cmp_ops()) {
    // negate(negate(op)) == op, and exactly one of (op, negate(op)) holds.
    EXPECT_EQ(negate(negate(op)), op);
    EXPECT_NE(cmp_eval(op, Value(1), Value(2)),
              cmp_eval(negate(op), Value(1), Value(2)));
  }
}

TEST(Ast, ProgramFindersAndPrinting) {
  Program p = parse_program(
      "table A/2.\nevent B/2.\nr1 A(@X,P) :- B(@X,P), P == 1.");
  EXPECT_NE(p.find_table("A"), nullptr);
  EXPECT_EQ(p.find_table("Z"), nullptr);
  EXPECT_NE(p.find_rule("r1"), nullptr);
  EXPECT_EQ(p.find_rule("zz"), nullptr);
  EXPECT_EQ(p.line_count(), 3u);
  Program p2 = parse_program(p.to_string());
  EXPECT_EQ(p.to_string(), p2.to_string());
}

}  // namespace
}  // namespace mp::ndlog
