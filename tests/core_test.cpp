// Unit + property tests for util (Value, stats, strings, rng), the mini
// solver, and the meta model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "eval/engine.h"
#include "meta/extract.h"
#include "meta/meta_model.h"
#include "ndlog/parser.h"
#include "ndlog/validate.h"
#include "solver/mini_solver.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/value.h"

namespace mp {
namespace {

using ndlog::CmpOp;
using solver::ConstraintPool;
using solver::MiniSolver;
using solver::Term;

TEST(Value, IntAndStringBasics) {
  Value a(42), b(42), c(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(c, a);
  EXPECT_EQ(a.to_string(), "42");
  Value s = Value::str("xyz");
  EXPECT_TRUE(s.is_str());
  EXPECT_NE(a, s);
  EXPECT_LT(a, s);  // ints order before strings
  EXPECT_TRUE(Value::wildcard().is_wildcard());
  EXPECT_FALSE(Value::str("x").is_wildcard());
}

TEST(Value, HashConsistency) {
  EXPECT_EQ(Value(5).hash(), Value(5).hash());
  EXPECT_EQ(Value::str("ab").hash(), Value::str("ab").hash());
  Row r1 = {Value(1), Value::str("a")};
  Row r2 = {Value(1), Value::str("a")};
  EXPECT_EQ(hash_row(r1), hash_row(r2));
}

TEST(Strings, SplitTrimJoinPad) {
  EXPECT_EQ(split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(trim("  x \n"), "x");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(lpad("7", 3), "  7");
  EXPECT_EQ(rpad("7", 3), "7  ");
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangesInBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.zipf(10), 10u);
  }
}

TEST(Rng, ZipfIsSkewed) {
  Rng r(5);
  size_t low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = r.zipf(100);
    if (v < 10) ++low;
    if (v >= 90) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(Stats, KsIdenticalSamplesIsZero) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(Stats, KsDisjointSamplesIsOne) {
  EXPECT_DOUBLE_EQ(ks_statistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(Stats, KsCriticalShrinksWithSamples) {
  EXPECT_GT(ks_critical(10, 10), ks_critical(1000, 1000));
  EXPECT_NEAR(ks_critical(1000, 1000), 1.3581 * std::sqrt(2.0 / 1000), 1e-3);
}

TEST(Stats, KsPValueMonotone) {
  EXPECT_GT(ks_pvalue(0.01, 100, 100), ks_pvalue(0.5, 100, 100));
  EXPECT_LE(ks_pvalue(0.9, 1000, 1000), 1e-6);
}

TEST(Stats, DistributionGateDetectsShift) {
  CountDistribution base, same, shifted;
  for (int i = 0; i < 50; ++i) {
    base.add("h" + std::to_string(i), 100);
    same.add("h" + std::to_string(i), 100);
    shifted.add("h" + std::to_string(i), i == 0 ? 400 : 100);
  }
  EXPECT_FALSE(ks_test(base, same).significant);
  EXPECT_TRUE(ks_test(base, shifted).significant);
}

TEST(Stats, DistributionSmallChangeInsignificant) {
  CountDistribution base, nudged;
  for (int i = 0; i < 50; ++i) {
    base.add("h" + std::to_string(i), 200);
    nudged.add("h" + std::to_string(i), 200);
  }
  nudged.add("new-host", 5);
  EXPECT_FALSE(ks_test(base, nudged).significant);
}

TEST(Stats, MeanAndPercentile) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
}

// --- solver ---------------------------------------------------------------

TEST(Solver, SolvesSimpleEquality) {
  ConstraintPool pool;
  pool.eq("x", Value(3));
  auto a = MiniSolver::solve(pool);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->at("x"), Value(3));
}

TEST(Solver, DetectsContradiction) {
  ConstraintPool pool;
  pool.eq("x", Value(3));
  pool.eq("x", Value(4));
  EXPECT_FALSE(MiniSolver::satisfiable(pool));
}

TEST(Solver, PropagatesEqualityChains) {
  ConstraintPool pool;
  pool.add(Term::variable("a"), CmpOp::Eq, Term::variable("b"));
  pool.add(Term::variable("b"), CmpOp::Eq, Term::variable("c"));
  pool.eq("c", Value(9));
  auto a = MiniSolver::solve(pool);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->at("a"), Value(9));
}

TEST(Solver, OrderingChain) {
  ConstraintPool pool;
  pool.add(Term::variable("a"), CmpOp::Lt, Term::variable("b"));
  pool.add(Term::variable("b"), CmpOp::Lt, Term::variable("c"));
  pool.add(Term::variable("c"), CmpOp::Le, Term::constant(Value(2)));
  pool.add(Term::variable("a"), CmpOp::Ge, Term::constant(Value(0)));
  auto a = MiniSolver::solve(pool);
  ASSERT_TRUE(a);
  EXPECT_LT(a->at("a").as_int(), a->at("b").as_int());
  EXPECT_LT(a->at("b").as_int(), a->at("c").as_int());
  EXPECT_LE(a->at("c").as_int(), 2);
}

TEST(Solver, ImpossibleOrderingCycle) {
  ConstraintPool pool;
  pool.add(Term::variable("a"), CmpOp::Lt, Term::variable("b"));
  pool.add(Term::variable("b"), CmpOp::Lt, Term::variable("a"));
  EXPECT_FALSE(MiniSolver::satisfiable(pool));
}

TEST(Solver, SelfComparisons) {
  ConstraintPool lt;
  lt.add(Term::variable("x"), CmpOp::Lt, Term::variable("x"));
  EXPECT_FALSE(MiniSolver::satisfiable(lt));
  ConstraintPool le;
  le.add(Term::variable("x"), CmpOp::Le, Term::variable("x"));
  EXPECT_TRUE(MiniSolver::satisfiable(le));
}

TEST(Solver, ExclusionsRespected) {
  ConstraintPool pool;
  pool.add(Term::variable("x"), CmpOp::Ge, Term::constant(Value(0)));
  pool.add(Term::variable("x"), CmpOp::Le, Term::constant(Value(2)));
  pool.add(Term::variable("x"), CmpOp::Ne, Term::constant(Value(0)));
  pool.add(Term::variable("x"), CmpOp::Ne, Term::constant(Value(1)));
  auto a = MiniSolver::solve(pool);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->at("x"), Value(2));
}

TEST(Solver, StringEquality) {
  ConstraintPool pool;
  pool.eq("s", Value::str("C"));
  auto a = MiniSolver::solve(pool);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->at("s"), Value::str("C"));
  pool.add(Term::variable("s"), CmpOp::Ne, Term::constant(Value::str("C")));
  EXPECT_FALSE(MiniSolver::satisfiable(pool));
}

TEST(Solver, NegationFindsViolation) {
  ConstraintPool keep, negate;
  negate.add(Term::constant(Value(6)), CmpOp::Lt, Term::variable("K"));
  auto a = MiniSolver::solve_negation(keep, negate);
  ASSERT_TRUE(a);
  EXPECT_FALSE(ndlog::cmp_eval(CmpOp::Lt, Value(6), a->at("K")));
}

// Property sweep: for every operator and constant, the solved value must
// actually satisfy (x op K) -- the core contract the repair engine uses.
class SolverOpSweep
    : public ::testing::TestWithParam<std::tuple<CmpOp, int64_t>> {};

TEST_P(SolverOpSweep, SolutionSatisfiesConstraint) {
  const auto [op, x] = GetParam();
  ConstraintPool pool;
  pool.add(Term::constant(Value(x)), op, Term::variable("K"));
  auto a = MiniSolver::solve(pool);
  ASSERT_TRUE(a) << "op=" << ndlog::to_string(op) << " x=" << x;
  EXPECT_TRUE(ndlog::cmp_eval(op, Value(x), a->at("K")));
}

TEST_P(SolverOpSweep, NegationViolatesConstraint) {
  const auto [op, x] = GetParam();
  ConstraintPool keep, negate;
  negate.add(Term::constant(Value(x)), op, Term::variable("K"));
  auto a = MiniSolver::solve_negation(keep, negate);
  ASSERT_TRUE(a);
  EXPECT_FALSE(ndlog::cmp_eval(op, Value(x), a->at("K")));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndValues, SolverOpSweep,
    ::testing::Combine(::testing::ValuesIn(ndlog::all_cmp_ops()),
                       ::testing::Values<int64_t>(-7, -1, 0, 1, 2, 6, 80,
                                                  2008)));

// --- meta model -------------------------------------------------------

TEST(MetaModel, PaperCounts) {
  // Section 3.2 / Section 5.8: uDlog 15 rules / 13 tuples, NDlog 23/23,
  // Trema 42/32, Pyretic 53/41.
  EXPECT_EQ(meta::udlog_meta_model().rule_count(), 15u);
  EXPECT_EQ(meta::udlog_meta_model().tuple_count(), 13u);
  EXPECT_EQ(meta::ndlog_meta_model().rule_count(), 23u);
  EXPECT_EQ(meta::ndlog_meta_model().tuple_count(), 23u);
  EXPECT_EQ(meta::trema_meta_model().rule_count(), 42u);
  EXPECT_EQ(meta::trema_meta_model().tuple_count(), 32u);
  EXPECT_EQ(meta::pyretic_meta_model().rule_count(), 53u);
  EXPECT_EQ(meta::pyretic_meta_model().tuple_count(), 41u);
}

TEST(MetaModel, LookupAndUniqueness) {
  const auto& m = meta::udlog_meta_model();
  EXPECT_NE(m.find_rule("h2"), nullptr);
  EXPECT_EQ(m.find_rule("zz"), nullptr);
  for (auto lang : {meta::Language::UDlog, meta::Language::NDlog,
                    meta::Language::Trema, meta::Language::Pyretic}) {
    const auto& model = meta::meta_model(lang);
    std::set<std::string> names;
    for (const auto& r : model.rules) {
      EXPECT_TRUE(names.insert(r.name).second)
          << to_string(lang) << " duplicate rule " << r.name;
    }
  }
}

TEST(MetaExtract, FindsAllSyntacticSites) {
  auto p = ndlog::parse_program(
      "table A/3.\nevent B/3.\n"
      "r1 A(@X,P,Q) :- B(@X,P,V), P == 2, V != 3, Q := 7.");
  auto tuples = meta::program_meta_tuples(p);
  size_t heads = 0, preds = 0, consts = 0, opers = 0, assigns = 0;
  for (const auto& t : tuples) {
    switch (t.kind) {
      case meta::MetaKind::HeadFunc: ++heads; break;
      case meta::MetaKind::PredFunc: ++preds; break;
      case meta::MetaKind::Const: ++consts; break;
      case meta::MetaKind::Oper: ++opers; break;
      case meta::MetaKind::Assign: ++assigns; break;
      default: break;
    }
  }
  EXPECT_EQ(heads, 1u);
  EXPECT_EQ(preds, 1u);
  EXPECT_EQ(consts, 3u);  // 2, 3, 7
  EXPECT_EQ(opers, 2u);
  EXPECT_EQ(assigns, 1u);
  EXPECT_EQ(meta::constants_of(p).size(), 3u);
  EXPECT_EQ(meta::operators_of(p).size(), 2u);
}

TEST(MetaExtract, SyntaxRefRoundTrip) {
  meta::SyntaxRef ref{"r7", meta::SyntaxRef::Site::SelRhs, 0, 1};
  EXPECT_NE(ref.to_string().find("r7"), std::string::npos);
  meta::SyntaxRef same = ref;
  EXPECT_TRUE(ref == same);
}

}  // namespace
}  // namespace mp

// --- meta program (Figure 4): program-as-data round trip ----------------
#include "meta/meta_program.h"  // NOLINT: test-only late include


namespace mp {
namespace {

// Meta-level evaluation (driven purely by meta tuples) must agree with the
// direct engine on uDlog-fragment programs.
class MetaProgramAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(MetaProgramAgreement, MetaEvalMatchesEngine) {
  auto program = ndlog::parse_program(GetParam());
  ASSERT_TRUE(meta::in_udlog_fragment(program));
  auto mp_prog = meta::build_meta_program(program);
  ASSERT_FALSE(mp_prog.facts.empty());

  std::vector<eval::Tuple> base = {
      {"B", {Value(1), Value(2), Value(5)}},
      {"B", {Value(1), Value(3), Value(7)}},
      {"B", {Value(2), Value(2), Value(9)}},
      {"Cfg", {Value(1), Value(2), Value(100)}},
      {"Cfg", {Value(1), Value(9), Value(200)}},
  };
  // Engine evaluation.
  eval::Engine engine(program);
  for (const auto& t : base) {
    if (program.find_table(t.table) != nullptr) engine.insert(t);
  }
  std::set<std::string> engine_derived;
  for (const auto& decl : program.tables) {
    bool is_base = decl.name == "B" || decl.name == "Cfg";
    if (is_base) continue;
    for (const auto& t : engine.all_tuples(decl.name)) {
      engine_derived.insert(t.to_string());
    }
  }
  // Meta-level evaluation from the meta tuples alone.
  std::vector<eval::Tuple> usable;
  for (const auto& t : base) {
    if (program.find_table(t.table) != nullptr) usable.push_back(t);
  }
  std::set<std::string> meta_derived;
  for (const auto& t : meta::meta_eval(program, mp_prog, usable)) {
    meta_derived.insert(t.to_string());
  }
  EXPECT_EQ(engine_derived, meta_derived);
}

INSTANTIATE_TEST_SUITE_P(
    Fragment, MetaProgramAgreement,
    ::testing::Values(
        "table A/3.\ntable B/3.\nr1 A(@X,P,V) :- B(@X,P,V), P == 2.",
        "table A/3.\ntable B/3.\nr1 A(@X,P,V) :- B(@X,P,V), V > 4, V < 9.",
        "table A/3.\ntable B/3.\nr1 A(@X,P,Q) :- B(@X,P,V), P != 9, Q := 7.",
        "table A/4.\ntable B/3.\ntable Cfg/3.\n"
        "r1 A(@X,P,V,W) :- B(@X,P,V), Cfg(@X,P,W), V >= 5.",
        "table A/3.\ntable M/3.\ntable B/3.\n"
        "r1 M(@X,P,V) :- B(@X,P,V), P >= 2.\n"
        "r2 A(@X,P,V) :- M(@X,P,V), V <= 7."));

TEST(MetaProgram, MutatedProgramStaysInAgreement) {
  // Apply a repair-style change, re-extract the meta program, re-check
  // agreement: the "program as data" view follows program edits.
  auto program = ndlog::parse_program(
      "table A/3.\ntable B/3.\nr1 A(@X,P,V) :- B(@X,P,V), P == 2.");
  ndlog::Rule* r = program.find_rule("r1");
  r->sels[0].rhs = ndlog::Expr::constant(Value(3));
  auto mp_prog = meta::build_meta_program(program);
  std::vector<eval::Tuple> base = {{"B", {Value(1), Value(3), Value(8)}}};
  eval::Engine engine(program);
  engine.insert(base[0]);
  auto meta_out = meta::meta_eval(program, mp_prog, base);
  ASSERT_EQ(meta_out.size(), 1u);
  EXPECT_TRUE(engine.exists(Value(1), "A", meta_out[0].row));
}

TEST(MetaProgram, FragmentDetection) {
  EXPECT_TRUE(meta::in_udlog_fragment(ndlog::parse_program(
      "table A/2.\ntable B/2.\nr1 A(@X,V) :- B(@X,V), V > 0.")));
  EXPECT_FALSE(meta::in_udlog_fragment(ndlog::parse_program(
      "table A/2.\ntable B/2.\nr1 A(@X,Q) :- B(@X,V), Q := V + 1.")));
}

}  // namespace
}  // namespace mp

// --- property: engine vs meta-eval on random fragment programs ----------

#include "util/rng.h"

namespace mp {
namespace {

// Generates a random valid uDlog-fragment program over base tables B/3 and
// Cfg/3 with derived tables D0..Dk, all atoms sharing the location var.
ndlog::Program random_fragment_program(Rng& rng) {
  std::string src = "table B/3.\ntable Cfg/3.\n";
  const size_t n_rules = 1 + rng.below(4);
  for (size_t i = 0; i < n_rules; ++i) {
    src += "table D" + std::to_string(i) + "/3.\n";
  }
  static const char* ops[] = {"==", "!=", "<", ">", "<=", ">="};
  for (size_t i = 0; i < n_rules; ++i) {
    const bool join = rng.chance(0.4);
    std::string body = "B(@X,P,V)";
    if (join) body += ", Cfg(@X,P,W)";
    std::string sels;
    const size_t n_sels = 1 + rng.below(2);
    for (size_t k = 0; k < n_sels; ++k) {
      const char* var = rng.chance(0.5) ? "P" : "V";
      sels += std::string(", ") + var + " " + ops[rng.below(6)] + " " +
              std::to_string(rng.range(0, 9));
    }
    const std::string head_v = join && rng.chance(0.5) ? "W" : "V";
    src += "r" + std::to_string(i) + " D" + std::to_string(i) +
           "(@X,P," + head_v + ") :- " + body + sels + ".\n";
  }
  return ndlog::parse_program(src);
}

class EngineMetaEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineMetaEquivalence, RandomProgramsAgree) {
  Rng rng(GetParam());
  auto program = random_fragment_program(rng);
  ASSERT_TRUE(ndlog::validate(program).empty()) << program.to_string();
  ASSERT_TRUE(meta::in_udlog_fragment(program));
  auto mp_prog = meta::build_meta_program(program);

  std::vector<eval::Tuple> base;
  for (int i = 0; i < 8; ++i) {
    base.push_back({"B", {Value(rng.range(1, 2)), Value(rng.range(0, 9)),
                          Value(rng.range(0, 9))}});
  }
  for (int i = 0; i < 4; ++i) {
    base.push_back({"Cfg", {Value(rng.range(1, 2)), Value(rng.range(0, 9)),
                            Value(rng.range(0, 9))}});
  }
  eval::Engine engine(program);
  for (const auto& t : base) engine.insert(t);
  std::set<std::string> engine_out;
  for (const auto& decl : program.tables) {
    if (decl.name == "B" || decl.name == "Cfg") continue;
    for (const auto& t : engine.all_tuples(decl.name)) {
      engine_out.insert(t.to_string());
    }
  }
  std::set<std::string> meta_out;
  for (const auto& t : meta::meta_eval(program, mp_prog, base)) {
    meta_out.insert(t.to_string());
  }
  EXPECT_EQ(engine_out, meta_out) << program.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineMetaEquivalence,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace mp
