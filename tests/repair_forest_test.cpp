// Regression tests for repair/forest.cpp's symbolic re-execution. The
// explorer reconstructs a variable environment from DerivRecord.body and
// relies on the engine's guarantee (since the compiled-plan change) that
// rec.body[i] is aligned with rule.body[i] *regardless of which atom
// triggered the firing*. A join-ordered record — what the engine produced
// before that change — unifies the wrong tuples against the wrong atoms
// and silently degrades every positive-symptom repair to rule deletion.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "eval/engine.h"
#include "ndlog/parser.h"
#include "repair/generator.h"

namespace mp::repair {
namespace {

eval::Tuple t(const std::string& table, std::initializer_list<Value> vals) {
  return eval::Tuple{table, Row(vals)};
}

// Insert order chooses the trigger atom: inserting Mid last makes the
// firing's trigger the *second* body atom, so join order (trigger first)
// and body order disagree — exactly the case the alignment guarantee is
// about.
const char* kProgram =
    "table Base/2.\ntable Mid/3.\ntable Bad/3.\n"
    "r1 Bad(@X,V,W) :- Base(@X,V), Mid(@X,V,W), W > 5.\n";

TEST(ForestRegression, DerivRecordBodyIsInRuleBodyOrder) {
  eval::Engine e(ndlog::parse_program(kProgram));
  e.insert(t("Base", {Value(1), Value(4)}));
  e.insert(t("Mid", {Value(1), Value(4), Value(9)}));  // trigger = body[1]
  ASSERT_TRUE(e.exists(Value(1), "Bad", {Value(1), Value(4), Value(9)}));

  const auto derivs =
      e.log().derivations_of(t("Bad", {Value(1), Value(4), Value(9)}));
  ASSERT_EQ(derivs.size(), 1u);
  const eval::DerivRecord& rec = e.log().derivations()[derivs[0]];
  const auto body = e.log().body_of(rec);
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(e.log().table_name(body[0]), "Base");
  EXPECT_EQ(e.log().table_name(body[1]), "Mid");
}

// With a correctly aligned record the explorer can re-execute the rule
// symbolically and propose *selection* edits for an unwanted tuple; if the
// environment reconstruction failed it could only offer structural
// repairs (delete the rule / delete a base tuple).
TEST(ForestRegression, UnwantedTupleYieldsSelectionEditsAfterLateTrigger) {
  eval::Engine e(ndlog::parse_program(kProgram));
  e.insert(t("Base", {Value(1), Value(4)}));
  e.insert(t("Mid", {Value(1), Value(4), Value(9)}));

  Symptom sym;
  sym.polarity = Symptom::Polarity::Unwanted;
  sym.pattern.table = "Bad";
  sym.pattern.fields = {{2, ndlog::CmpOp::Eq, Value(9)}};
  ForestExplorer explorer(e, RepairSpaceConfig{});
  const auto cands = explorer.explore(sym);
  ASSERT_FALSE(cands.empty());

  bool saw_selection_edit = false;
  bool saw_rule_delete = false;
  for (const RepairCandidate& c : cands) {
    for (const Change& ch : c.changes) {
      if (ch.rule == "r1" && (ch.kind == ChangeKind::ChangeSelOp ||
                              ch.kind == ChangeKind::ChangeSelConst)) {
        saw_selection_edit = true;
      }
      if (ch.kind == ChangeKind::DeleteRule) saw_rule_delete = true;
    }
  }
  EXPECT_TRUE(saw_selection_edit)
      << "environment reconstruction failed: only structural repairs left";
  EXPECT_TRUE(saw_rule_delete);
}

// Same program driven in the opposite order (trigger = body[0]) must give
// the explorer the same repair options: alignment is order-independent.
TEST(ForestRegression, SelectionEditsIndependentOfTriggerAtom) {
  auto explore_with_order = [](bool mid_first) {
    eval::Engine e(ndlog::parse_program(kProgram));
    if (mid_first) {
      e.insert(t("Mid", {Value(1), Value(4), Value(9)}));
      e.insert(t("Base", {Value(1), Value(4)}));
    } else {
      e.insert(t("Base", {Value(1), Value(4)}));
      e.insert(t("Mid", {Value(1), Value(4), Value(9)}));
    }
    Symptom sym;
    sym.polarity = Symptom::Polarity::Unwanted;
    sym.pattern.table = "Bad";
    sym.pattern.fields = {{2, ndlog::CmpOp::Eq, Value(9)}};
    ForestExplorer explorer(e, RepairSpaceConfig{});
    std::multiset<std::string> descriptions;
    for (const RepairCandidate& c : explorer.explore(sym)) {
      descriptions.insert(c.description);
    }
    return descriptions;
  };
  const auto trigger_first = explore_with_order(true);
  const auto trigger_second = explore_with_order(false);
  EXPECT_FALSE(trigger_first.empty());
  EXPECT_EQ(trigger_first, trigger_second);
}

// Assignments re-execute on top of the reconstructed environment; a head
// value computed from the second (trigger) atom's variables must survive
// the round trip through the derivation record.
TEST(ForestRegression, AssignmentReExecutionUsesAlignedEnvironment) {
  eval::Engine e(ndlog::parse_program(
      "table Base/2.\ntable Mid/3.\ntable Bad/2.\n"
      "r1 Bad(@X,P) :- Base(@X,V), Mid(@X,V,W), P := W * 2, W > 2.\n"));
  e.insert(t("Base", {Value(1), Value(4)}));
  e.insert(t("Mid", {Value(1), Value(4), Value(9)}));  // trigger = body[1]
  ASSERT_TRUE(e.exists(Value(1), "Bad", {Value(1), Value(18)}));

  Symptom sym;
  sym.polarity = Symptom::Polarity::Unwanted;
  sym.pattern.table = "Bad";
  sym.pattern.fields = {{1, ndlog::CmpOp::Eq, Value(18)}};
  ForestExplorer explorer(e, RepairSpaceConfig{});
  bool saw_selection_edit = false;
  for (const RepairCandidate& c : explorer.explore(sym)) {
    for (const Change& ch : c.changes) {
      if (ch.rule == "r1" && (ch.kind == ChangeKind::ChangeSelOp ||
                              ch.kind == ChangeKind::ChangeSelConst)) {
        saw_selection_edit = true;
      }
    }
  }
  // W > 2 can only be proposed for breaking if W was reconstructed as 9
  // through the Mid atom at body position 1.
  EXPECT_TRUE(saw_selection_edit);
}

}  // namespace
}  // namespace mp::repair
