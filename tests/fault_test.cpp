// Fault-injection coverage (src/fault + the hardened error paths it
// exercises):
//   - registry semantics: every trigger policy fires deterministically,
//     configure resets counters, dry runs enumerate the workload's
//     failpoints,
//   - the zero-cost contract: in a default build the MP_FAILPOINT macros
//     compile to nothing, so a storage workload interns no points,
//   - storage sweep (every storage.* failpoint x fire-on-hit-N): a
//     terminal injected error must never crash or lose an in-process
//     event — the engine's full log stays byte-identical to a no-store
//     reference, the store either survives or latches sticky failed()
//     (ErrorPolicy::kDegrade), and a fresh recovery of the directory
//     yields a clean prefix of the reference sequence,
//   - transient errors (EINTR / EAGAIN / short writes) retry to full
//     byte-identical durability with no degradation,
//   - ErrorPolicy::kFailStop surfaces storage::IoError instead,
//   - sharded runtime: a shard round throwing mid-flight rethrows
//     cleanly after the barrier (no deadlock, no leaked thread, engine
//     still usable), and ShardedOptions::round_retries recovers
//     pre-work failures to a differential-equal run.
// Labelled `fault`: tools/check.sh CHECK_FAULTS=1 builds a -DMP_FAULTS=ON
// side tree and runs exactly this suite there; in the default build the
// injection sweeps GTEST_SKIP themselves and only the registry and
// zero-cost tests run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "fault/fault.h"
#include "ndlog/parser.h"
#include "runtime/sharded_engine.h"
#include "storage/segment_store.h"
#include "test_util.h"

namespace mp::fault {
namespace {

namespace fs = std::filesystem;

using eval::Engine;
using eval::EngineOptions;
using storage::SegmentStore;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mp_fault/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir + "/segs";  // the store itself creates the leaf directory
}

// Canonical event line (same form as storage_test): the log's to_string
// plus the cause list, so id/node/row/rule AND causal-link drift all fail.
std::string log_line(const eval::EventLog& log, const eval::Event& ev) {
  std::string out = log.to_string(ev);
  for (eval::EventId c : log.causes_of(ev)) out += " <" + std::to_string(c) + ">";
  return out;
}

std::string raw_line(const eval::RawEvent& re) {
  std::string out = eval::to_string(re.kind);
  out += "(t=" + std::to_string(re.id + 1) + ", @" + re.node->to_string() +
         ", " + eval::Tuple{std::string(re.table), *re.row}.to_string();
  if (!re.rule.empty()) out += ", rule=" + std::string(re.rule);
  out += ")";
  for (eval::EventId c : re.causes) out += " <" + std::to_string(c) + ">";
  return out;
}

std::vector<std::string> log_lines(const eval::EventLog& log) {
  std::vector<std::string> out;
  log.for_each_event(
      [&](const eval::Event& ev) { out.push_back(log_line(log, ev)); });
  return out;
}

std::vector<std::string> store_lines(const SegmentStore& store) {
  std::vector<std::string> out;
  store.replay_raw([&](const eval::RawEvent& re) {
    out.push_back(raw_line(re));
    return true;
  });
  return out;
}

ndlog::Program ring_prog() {
  return ndlog::parse_program(testutil::ring_program(24));
}

// Store knobs that cross the write/fsync failpoints often: tiny group
// buffer (flush per section), small segments (several rotations), fsync
// on every append, zero backoff so retry sweeps stay fast.
EngineOptions faulty_engine_opts(const std::string& dir) {
  EngineOptions opt;
  opt.segment_dir = dir;
  opt.segment_store.rotate_bytes = 4 << 10;
  opt.segment_store.group_buffer_bytes = 512;
  opt.segment_store.fsync = storage::FsyncPolicy::kOnAppend;
  opt.segment_store.backoff_initial_us = 0;
  return opt;
}

// The storage workload under test: the ring trace in chunks with a
// compact after each, so sections stream into the store throughout.
void run_storage_workload(Engine& e) {
  const std::vector<eval::Tuple> trace = testutil::ring_trace(8, 6);
  const size_t chunk = trace.size() / 5 + 1;
  for (size_t i = 0; i < trace.size(); i += chunk) {
    const size_t n = std::min(chunk, trace.size() - i);
    e.insert_batch(std::span<const eval::Tuple>(trace.data() + i, n));
    e.log().compact(0);
  }
}

// The no-store reference for the workload above.
std::vector<std::string> reference_lines() {
  Engine plain(ring_prog());
  run_storage_workload(plain);
  return log_lines(plain.log());
}

// ---------------------------------------------------------------------
// Registry semantics (run in every build: the registry class is always
// compiled; only the macro sites come and go).
// ---------------------------------------------------------------------

TEST(FaultRegistry, PolicyModesFireDeterministically) {
  Registry& reg = Registry::global();
  reg.clear_all();

  Policy nth;
  nth.mode = Policy::Mode::kNth;
  nth.n = 3;
  nth.error_code = ENOSPC;
  reg.configure("p.nth", nth);
  std::vector<int> got;
  for (int i = 0; i < 6; ++i) got.push_back(reg.hit("p.nth"));
  EXPECT_EQ(got, (std::vector<int>{0, 0, ENOSPC, 0, 0, 0}));
  EXPECT_EQ(reg.hits("p.nth"), 6u);
  EXPECT_EQ(reg.fires("p.nth"), 1u);

  Policy every;
  every.mode = Policy::Mode::kEveryK;
  every.n = 2;
  every.error_code = EIO;
  reg.configure("p.every", every);
  got.clear();
  for (int i = 0; i < 6; ++i) got.push_back(reg.hit("p.every"));
  EXPECT_EQ(got, (std::vector<int>{0, EIO, 0, EIO, 0, EIO}));

  Policy once;
  once.mode = Policy::Mode::kOneShot;
  once.error_code = EAGAIN;
  reg.configure("p.once", once);
  EXPECT_EQ(reg.hit("p.once"), EAGAIN);
  EXPECT_EQ(reg.hit("p.once"), 0);
  EXPECT_EQ(reg.hit("p.once"), 0);
  EXPECT_EQ(reg.fires("p.once"), 1u);

  Policy always;
  always.mode = Policy::Mode::kAlways;
  always.error_code = EINTR;
  reg.configure("p.always", always);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(reg.hit("p.always"), EINTR);

  // Unarmed points never fire but are interned (dry-run enumeration).
  EXPECT_EQ(reg.hit("p.unarmed"), 0);
  EXPECT_EQ(reg.hits("p.unarmed"), 1u);
  EXPECT_EQ(reg.fires("p.unarmed"), 0u);
  reg.clear_all();
}

TEST(FaultRegistry, RandomModeIsSeedDeterministic) {
  Registry& reg = Registry::global();
  reg.clear_all();
  Policy rnd;
  rnd.mode = Policy::Mode::kRandom;
  rnd.probability = 0.5;
  rnd.seed = 42;
  rnd.error_code = EIO;

  auto pattern = [&] {
    reg.configure("p.rnd", rnd);
    std::vector<int> out;
    for (int i = 0; i < 64; ++i) out.push_back(reg.hit("p.rnd"));
    return out;
  };
  const std::vector<int> a = pattern();
  const std::vector<int> b = pattern();
  EXPECT_EQ(a, b) << "same seed must reproduce the same fire pattern";
  const uint64_t fires = reg.fires("p.rnd");
  EXPECT_GT(fires, 8u);   // p=0.5 over 64 hits: both tails are
  EXPECT_LT(fires, 56u);  // astronomically unlikely
  reg.clear_all();
}

TEST(FaultRegistry, ConfigureResetsCountersAndPointsEnumerateSorted) {
  Registry& reg = Registry::global();
  reg.clear_all();
  reg.hit("b.point");
  reg.hit("a.point");
  reg.hit("a.point");
  const std::vector<PointStats> pts = reg.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].name, "a.point");
  EXPECT_EQ(pts[0].hits, 2u);
  EXPECT_EQ(pts[1].name, "b.point");

  Policy nth;
  nth.mode = Policy::Mode::kNth;
  nth.n = 1;
  reg.configure("a.point", nth);  // counters reset: next hit is the 1st
  EXPECT_EQ(reg.hits("a.point"), 0u);
  EXPECT_NE(reg.hit("a.point"), 0);

  reg.clear("a.point");  // disarmed but still enumerable
  EXPECT_EQ(reg.hit("a.point"), 0);
  EXPECT_EQ(reg.points().size(), 2u);
  reg.clear_all();
  EXPECT_TRUE(reg.points().empty());
}

// The zero-cost half of the contract: without MP_FAULTS the macros are
// literals, so a storage workload crosses no failpoint and interns no
// point name. (The other half — the compiled-in sites enumerating — is
// the sweep's dry run below; the perf half is tools/check.sh's bench
// floor, measured on this same default build.)
TEST(FaultRegistry, DefaultBuildCompilesFailpointsOut) {
  if (compiled_in()) GTEST_SKIP() << "MP_FAULTS build: sites compiled in";
  Registry::global().clear_all();
  const std::string dir = fresh_dir("zero_cost");
  {
    Engine e(ring_prog(), faulty_engine_opts(dir));
    run_storage_workload(e);
  }
  EXPECT_TRUE(Registry::global().points().empty())
      << "a default build must not consult the registry";
}

// ---------------------------------------------------------------------
// Storage injection sweeps (MP_FAULTS builds only).
// ---------------------------------------------------------------------

TEST(FaultSweep, StorageFailpointsByHitCountDegradeCleanly) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  const std::vector<std::string> want = reference_lines();
  ASSERT_GT(want.size(), 100u);

  // Dry run: nothing armed; enumerate every failpoint the workload
  // crosses. This is how new storage failpoints join the sweep without a
  // hand-maintained list.
  reg.clear_all();
  {
    Engine e(ring_prog(), faulty_engine_opts(fresh_dir("dry_run")));
    run_storage_workload(e);
  }
  std::vector<std::string> points;
  for (const PointStats& p : reg.points()) {
    if (p.name.rfind("storage.", 0) == 0) points.push_back(p.name);
  }
  for (const char* must : {"storage.segment.mkdir", "storage.segment.open",
                           "storage.segment.write", "storage.segment.fsync",
                           "storage.segment.short_write"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), must), points.end())
        << "dry run did not cross " << must;
  }

  for (const std::string& point : points) {
    for (const uint64_t n : {1u, 2u, 7u}) {
      SCOPED_TRACE(point + " on hit " + std::to_string(n));
      reg.clear_all();
      Policy p;
      p.mode = Policy::Mode::kNth;
      p.n = n;
      // ENOSPC and EIO are both terminal; alternating exercises the
      // kNoSpace and kIoError status paths.
      p.error_code = n % 2 == 1 ? ENOSPC : EIO;
      reg.configure(point, p);

      const std::string dir =
          fresh_dir("sweep_" + point + "_" + std::to_string(n));
      {
        // kDegrade (the default): nothing here may throw or crash.
        Engine e(ring_prog(), faulty_engine_opts(dir));
        run_storage_workload(e);
        // Zero in-process event loss, degraded or not: the full log —
        // durable prefix, retained buffer, RAM-fallback checkpoints and
        // live suffix stitched together — is byte-identical to the
        // no-store reference.
        EXPECT_EQ(log_lines(e.log()), want);
        const SegmentStore* store = e.segments();
        // short_write never makes a store fail (partial progress is not
        // an error); terminal points that actually fired must latch.
        if (store != nullptr && store->failed()) {
          EXPECT_GE(reg.fires(point), 1u);
          EXPECT_FALSE(store->status().ok());
        }
        // The engine stays live either way.
        e.insert(eval::Tuple{"Token", {Value(1), Value(99), Value(0)}});
        EXPECT_GT(e.log().size(), want.size());
      }

      reg.clear_all();  // recovery below must see no injection
      if (fs::is_directory(dir)) {
        // Whatever reached the directory recovers as a clean contiguous
        // prefix of the reference sequence — never reordered, torn or
        // interleaved garbage.
        SegmentStore rec(dir);
        const std::vector<std::string> got = store_lines(rec);
        ASSERT_LE(got.size(), want.size() + 50u);  // + the extra insert
        for (size_t i = 0; i < got.size() && i < want.size(); ++i) {
          ASSERT_EQ(got[i], want[i]) << "divergence at recovered event " << i;
        }
        EXPECT_EQ(rec.recovered_events(), got.size());
      }
    }
  }
  reg.clear_all();
}

TEST(FaultSweep, TransientErrorsRetryToByteIdenticalDurability) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  const std::vector<std::string> want = reference_lines();

  struct Case {
    const char* point;
    Policy::Mode mode;
    uint64_t n;
    int code;
  };
  const Case cases[] = {
      // EINTR: retried unconditionally, never counted against the budget.
      {"storage.segment.write", Policy::Mode::kEveryK, 2, EINTR},
      // EAGAIN: counted, backed off, retried within the budget.
      {"storage.segment.write", Policy::Mode::kEveryK, 3, EAGAIN},
      {"storage.segment.fsync", Policy::Mode::kEveryK, 3, EAGAIN},
      // Short writes on every call: progress, not an error.
      {"storage.segment.short_write", Policy::Mode::kAlways, 0, 1},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.point) + " code " + std::to_string(c.code));
    reg.clear_all();
    Policy p;
    p.mode = c.mode;
    p.n = c.n;
    p.error_code = c.code;
    reg.configure(c.point, p);

    const std::string dir = fresh_dir(std::string("transient_") + c.point +
                                      "_" + std::to_string(c.code));
    {
      Engine e(ring_prog(), faulty_engine_opts(dir));
      run_storage_workload(e);
      ASSERT_NE(e.segments(), nullptr);
      EXPECT_FALSE(e.segments()->failed())
          << "transient errors must never degrade the store: "
          << e.segments()->status().to_string();
      EXPECT_GE(reg.fires(c.point), 1u) << "injection never triggered";
      if (c.code == EAGAIN) {
        EXPECT_GT(e.segments()->retries(), 0u);
        EXPECT_GT(e.segments()->write_errors(), 0u);
      }
      EXPECT_EQ(log_lines(e.log()), want);
    }
    reg.clear_all();
    // Full byte-identical durability: the retries hid the faults
    // completely.
    SegmentStore rec(dir);
    EXPECT_EQ(rec.recovered_events(), want.size());
    EXPECT_EQ(store_lines(rec), want);
  }
}

TEST(FaultSweep, RetryExhaustionLatchesDegradedWithNoEventLoss) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  const std::vector<std::string> want = reference_lines();

  reg.clear_all();
  Policy p;
  p.mode = Policy::Mode::kAlways;  // EAGAIN forever: the budget must bound it
  p.error_code = EAGAIN;
  reg.configure("storage.segment.write", p);

  EngineOptions opt = faulty_engine_opts(fresh_dir("exhaustion"));
  opt.segment_store.max_retries = 2;
  Engine e(ring_prog(), opt);
  run_storage_workload(e);
  ASSERT_NE(e.segments(), nullptr);
  EXPECT_TRUE(e.segments()->failed());
  EXPECT_EQ(e.segments()->status().code(), StatusCode::kRetryExhausted)
      << e.segments()->status().to_string();
  EXPECT_GT(e.segments()->retries(), 0u);
  // Degraded, not lossy: RAM fallback + retained buffer keep the full
  // sequence replayable in-process.
  EXPECT_EQ(log_lines(e.log()), want);
  reg.clear_all();
}

TEST(FaultSweep, FailStopPolicyThrowsIoErrorAndEngineStaysUsable) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  reg.clear_all();
  Policy p;
  p.mode = Policy::Mode::kNth;
  p.n = 1;
  p.error_code = ENOSPC;
  reg.configure("storage.segment.write", p);

  EngineOptions opt = faulty_engine_opts(fresh_dir("failstop"));
  opt.segment_store.on_error = storage::ErrorPolicy::kFailStop;
  Engine e(ring_prog(), opt);
  const std::vector<eval::Tuple> trace = testutil::ring_trace(8, 6);
  e.insert_batch(trace);
  EXPECT_THROW(e.log().compact(0), storage::IoError);
  ASSERT_NE(e.segments(), nullptr);
  EXPECT_TRUE(e.segments()->failed());
  EXPECT_EQ(e.segments()->status().code(), StatusCode::kNoSpace);
  reg.clear_all();

  // After the throw the engine is still consistent: the failed store is
  // sticky (no second throw), compaction falls back to RAM, inserts run.
  const size_t before = e.log().size();
  e.insert(eval::Tuple{"Token", {Value(2), Value(77), Value(0)}});
  EXPECT_GT(e.log().size(), before);
  EXPECT_NO_THROW(e.log().compact(0));
  EXPECT_EQ(e.log().live_size(), 0u);
}

TEST(FaultSweep, AttachTimeFaultYieldsInertStoreAndRamOnlyEngine) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  const std::vector<std::string> want = reference_lines();

  reg.clear_all();
  Policy p;
  p.mode = Policy::Mode::kOneShot;
  p.error_code = EACCES;
  reg.configure("storage.segment.mkdir", p);

  Engine e(ring_prog(), faulty_engine_opts(fresh_dir("attach")));
  ASSERT_NE(e.segments(), nullptr);
  EXPECT_TRUE(e.segments()->failed());
  EXPECT_EQ(e.segments()->status().code(), StatusCode::kIoError);
  // The engine never attached the failed store as a spill: it runs pure
  // RAM checkpoints and stays byte-identical to the reference.
  run_storage_workload(e);
  EXPECT_EQ(log_lines(e.log()), want);
  EXPECT_EQ(e.segments()->events(), 0u);
  reg.clear_all();
}

// ---------------------------------------------------------------------
// Sharded-runtime injection (MP_FAULTS builds only).
// ---------------------------------------------------------------------

runtime::ShardedOptions parallel_opts(size_t retries = 0) {
  runtime::ShardedOptions opt;
  opt.min_parallel_work = 1;  // force real worker threads
  opt.round_retries = retries;
  return opt;
}

TEST(FaultSweep, ShardRoundFaultRethrowsAfterBarrierAndEngineSurvives) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  const std::vector<eval::Tuple> trace = testutil::ring_trace(8, 6);

  for (const char* point :
       {"runtime.round.begin", "runtime.mailbox.dequeue",
        "runtime.mailbox.enqueue"}) {
    SCOPED_TRACE(point);
    reg.clear_all();
    Policy p;
    p.mode = Policy::Mode::kNth;
    p.n = 3;
    reg.configure(point, p);

    runtime::ShardedEngine se(ring_prog(), runtime::ShardPlan(4),
                              parallel_opts());
    // The worker's exception must cross the barrier and surface here —
    // the test completing at all proves no deadlock and no leaked
    // joinable thread (the dtor would abort on one).
    EXPECT_THROW(se.insert_batch(trace), InjectedFault);
    EXPECT_GE(reg.fires(point), 1u);
    reg.clear_all();

    // Quiescent and usable after: pending work was discarded, a fresh
    // insert runs to fixpoint normally.
    se.insert(eval::Tuple{"Token", {Value(3), Value(88), Value(0)}});
    EXPECT_TRUE(se.exists(Value(3), "Seen", {Value(3), Value(88), Value(0)}));
  }
}

TEST(FaultSweep, PreWorkRoundFaultsRetryToDifferentialEqual) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  const ndlog::Program program = ring_prog();
  const std::vector<eval::Tuple> trace = testutil::ring_trace(8, 6);

  Engine serial(program);
  for (const eval::Tuple& t : trace) serial.insert(t);
  const auto want = testutil::table_multisets(serial);

  // Both pre-work failpoints fire before the round touches the engine,
  // so round_retries absorbs them completely.
  for (const char* point :
       {"runtime.round.begin", "runtime.mailbox.dequeue"}) {
    SCOPED_TRACE(point);
    reg.clear_all();
    Policy p;
    p.mode = Policy::Mode::kNth;
    p.n = 3;
    reg.configure(point, p);

    runtime::ShardedEngine se(program, runtime::ShardPlan(4),
                              parallel_opts(/*retries=*/2));
    se.insert_batch(trace);  // must not throw: the one failure is retried
    EXPECT_EQ(reg.fires(point), 1u);
    EXPECT_EQ(testutil::table_multisets(se), want)
        << "retried run diverged from the serial engine";
    reg.clear_all();
  }
}

TEST(FaultSweep, MidRoundFaultIsNotRetriedEvenWithBudget) {
  if (!compiled_in()) GTEST_SKIP() << "needs -DMP_FAULTS=ON (CHECK_FAULTS=1)";
  Registry& reg = Registry::global();
  reg.clear_all();
  // The enqueue hook fires deep inside a shard engine's cascade — after
  // engine work began. Retrying would double-apply the round's prefix,
  // so even a generous budget must rethrow instead.
  Policy p;
  p.mode = Policy::Mode::kNth;
  p.n = 5;
  reg.configure("runtime.mailbox.enqueue", p);

  runtime::ShardedEngine se(ring_prog(), runtime::ShardPlan(4),
                            parallel_opts(/*retries=*/10));
  EXPECT_THROW(se.insert_batch(testutil::ring_trace(8, 6)), InjectedFault);
  EXPECT_EQ(reg.fires("runtime.mailbox.enqueue"), 1u)
      << "a mid-round fault must not be retried";
  reg.clear_all();
}

}  // namespace
}  // namespace mp::fault
