// Shared helpers for the test suites (not part of the library).
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "eval/event_log.h"
#include "repair/forest.h"
#include "runtime/sharded_engine.h"
#include "scenarios/scenario.h"

namespace mp::testutil {

// The repair explorer's output for every symptom of a scenario, one line
// per candidate (cost + description + change count), so any drift in the
// repair sets, their costs or their order fails a byte comparison. Both
// the differential and history suites assert on this canonical form.
inline std::vector<std::string> explore_all(const scenario::Scenario& s,
                                            const eval::Engine& engine) {
  std::vector<std::string> out;
  for (const repair::Symptom& sym : s.symptoms) {
    repair::ForestExplorer explorer(engine, s.space);
    for (const repair::RepairCandidate& c : explorer.explore(sym)) {
      out.push_back(std::to_string(c.cost) + " | " + c.description +
                    " | changes=" + std::to_string(c.changes.size()));
    }
  }
  return out;
}

inline uint64_t fnv1a(uint64_t h, const std::string& line) {
  for (const char c : line) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Events carry interned TupleRefs; the canonical line materializes the
// tuple through the owning log.
inline std::string event_line(const eval::EventLog& log,
                              const eval::Event& ev) {
  return std::string(eval::to_string(ev.kind)) + " " +
         log.tuple_of(ev).to_string();
}

// FNV-1a over the (kind, tuple) event sequence of the full log,
// checkpointed prefix included: two logs agree iff they recorded the same
// events in the same order.
inline uint64_t event_sequence_hash(const eval::EventLog& log) {
  uint64_t h = 1469598103934665603ull;
  log.for_each_event(
      [&](const eval::Event& ev) { h = fnv1a(h, event_line(log, ev)); });
  return h;
}

// Order-canonical variant: the (kind, tuple) lines are sorted before
// hashing, so two logs agree iff their event *multisets* agree. This is
// the cross-schedule comparison — a sharded run interleaves independent
// shards' events differently than the serial engine, but must produce
// exactly the same set of them.
inline uint64_t event_multiset_hash(const eval::EventLog& log) {
  std::vector<std::string> lines;
  lines.reserve(log.size());
  log.for_each_event(
      [&](const eval::Event& ev) { lines.push_back(event_line(log, ev)); });
  std::sort(lines.begin(), lines.end());
  uint64_t h = 1469598103934665603ull;
  for (const std::string& line : lines) h = fnv1a(h, line + "\n");
  return h;
}

// Per-table row multisets across every node — the cross-engine table
// comparison both the differential and runtime suites assert on. One
// canonical form for any engine-like source: the serial Engine and the
// ShardedEngine overloads both delegate here.
template <typename EngineLike>
std::map<std::string, std::multiset<std::string>> table_multisets_of(
    const ndlog::Catalog& cat, const EngineLike& e) {
  std::map<std::string, std::multiset<std::string>> out;
  for (ndlog::Catalog::TableId id = 0; id < cat.size(); ++id) {
    const std::string& name = cat.name_of(id);
    auto& rows = out[name];
    for (const eval::Tuple& t : e.all_tuples(name)) rows.insert(t.to_string());
  }
  return out;
}

inline std::map<std::string, std::multiset<std::string>> table_multisets(
    const eval::Engine& e) {
  return table_multisets_of(e.catalog(), e);
}

inline std::map<std::string, std::multiset<std::string>> table_multisets(
    const runtime::ShardedEngine& se) {
  return table_multisets_of(se.shard(0).catalog(), se);
}

// The adversarial cross-shard fixture shared by the runtime and
// differential suites: a directed token ring where every hop is a remote
// Send (ping-pong across shards when neighbours are placed apart), Last is
// keyed per (node, token) so each revisit displaces the previous hop's row
// (cross-shard Underive/Disappear traffic), and the hub replica at node
// 100 makes the displacement's support decrement cross shards too.
inline std::string ring_program(int64_t hop_cap) {
  return
      "table NextHop/2.\n"
      "table HubAt/2.\n"
      "table Seen/3.\n"
      "table Last/3 keys(0,1).\n"
      "table Mirror/4.\n"
      "event Token/3.\n"
      "r1 Token(@M,T,HH) :- Token(@N,T,H), NextHop(@N,M), H < " +
      std::to_string(hop_cap) +
      ", HH := H + 1.\n"
      "r2 Seen(@N,T,H) :- Token(@N,T,H).\n"
      "r3 Last(@N,T,H) :- Token(@N,T,H).\n"
      "r4 Mirror(@Hub,N,T,H) :- Last(@N,T,H), HubAt(@N,Hub).\n";
}

inline std::vector<eval::Tuple> ring_trace(int64_t nodes, int64_t tokens) {
  std::vector<eval::Tuple> trace;
  for (int64_t n = 1; n <= nodes; ++n) {
    trace.push_back(eval::Tuple{"NextHop", {Value(n), Value(n % nodes + 1)}});
    trace.push_back(eval::Tuple{"HubAt", {Value(n), Value(100)}});
  }
  for (int64_t t = 0; t < tokens; ++t) {
    trace.push_back(
        eval::Tuple{"Token", {Value(t % nodes + 1), Value(t), Value(0)}});
  }
  return trace;
}

}  // namespace mp::testutil
