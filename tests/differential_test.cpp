// Differential equivalence harness: every scenario's controller program is
// driven at the engine level both tuple-at-a-time and through
// Engine::insert_batch at batch sizes {1, 7, 64, whole-trace}. The batched
// runs must reach the identical fixpoint: same final table states on every
// node, same event-log length, same derivation count and same rule-firing
// count. The tuple stream is the scenario's real workload (config tuples +
// the PacketIn encoding of every recorded injection), so this exercises
// each scenario's actual rules, joins and cross-node derivations — the
// safety net that later batching/sharding changes are tested against.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "scenarios/scenario.h"
#include "sdn/topology.h"

namespace mp::scenario {
namespace {

struct EngineSnapshot {
  std::map<std::string, std::multiset<std::string>> tables;
  size_t log_events = 0;
  size_t derivations = 0;
  size_t firings = 0;
  // FNV-1a over the (kind, tuple) event sequence: batched evaluation keeps
  // the per-tuple order, so even the exact log sequence must agree.
  uint64_t event_sequence_hash = 1469598103934665603ull;
};

void expect_equal(const EngineSnapshot& got, const EngineSnapshot& want,
                  const std::string& what) {
  EXPECT_EQ(got.firings, want.firings) << what;
  EXPECT_EQ(got.log_events, want.log_events) << what;
  EXPECT_EQ(got.derivations, want.derivations) << what;
  EXPECT_EQ(got.event_sequence_hash, want.event_sequence_hash) << what;
  ASSERT_EQ(got.tables.size(), want.tables.size()) << what;
  for (const auto& [table, rows] : want.tables) {
    auto it = got.tables.find(table);
    ASSERT_NE(it, got.tables.end()) << what << " table " << table;
    EXPECT_EQ(it->second, rows) << what << " table " << table;
  }
}

EngineSnapshot snapshot(const eval::Engine& engine) {
  EngineSnapshot snap;
  const ndlog::Catalog& cat = engine.catalog();
  for (ndlog::Catalog::TableId id = 0; id < cat.size(); ++id) {
    const std::string& name = cat.name_of(id);
    auto& rows = snap.tables[name];
    for (const eval::Tuple& t : engine.all_tuples(name)) {
      rows.insert(t.to_string());
    }
  }
  snap.log_events = engine.log().size();
  snap.derivations = engine.log().derivations().size();
  snap.firings = engine.rule_firings();
  for (const eval::Event& ev : engine.log().events()) {
    const std::string line =
        std::string(eval::to_string(ev.kind)) + " " + ev.tuple.to_string();
    for (const char c : line) {
      snap.event_sequence_hash ^= static_cast<unsigned char>(c);
      snap.event_sequence_hash *= 1099511628211ull;
    }
  }
  return snap;
}

// The scenario's engine-level tuple trace: the PacketIn encoding of every
// workload injection (the same encoding the controller proxy applies on a
// flow-table miss), capped to keep the five-scenario sweep fast.
std::vector<eval::Tuple> scenario_trace(const Scenario& s, size_t cap) {
  sdn::Network probe;
  sdn::Campus campus = sdn::build_campus(probe, s.campus);
  if (s.wire_app) s.wire_app(probe, campus);
  const std::vector<sdn::Injection> work = s.make_workload(probe);
  const sdn::ControllerBindings bindings = s.make_bindings();
  std::vector<eval::Tuple> trace;
  trace.reserve(std::min(cap, work.size()));
  for (const sdn::Injection& inj : work) {
    if (trace.size() >= cap) break;
    trace.push_back(bindings.encode_packet_in(inj.sw, inj.port, inj.packet));
  }
  return trace;
}

// batch_size 0 = tuple-at-a-time baseline.
EngineSnapshot run_trace(const Scenario& s,
                         const std::vector<eval::Tuple>& trace,
                         size_t batch_size) {
  eval::Engine engine(s.program);
  if (batch_size == 0) {
    for (const eval::Tuple& t : s.config_tuples) engine.insert(t);
    for (const eval::Tuple& t : trace) engine.insert(t);
  } else {
    engine.insert_batch(s.config_tuples);
    for (size_t i = 0; i < trace.size(); i += batch_size) {
      const size_t n = std::min(batch_size, trace.size() - i);
      engine.insert_batch(std::span<const eval::Tuple>(trace.data() + i, n));
    }
  }
  return snapshot(engine);
}

TEST(Differential, AllScenariosBatchedMatchesSequential) {
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = scenario_trace(s, 4000);
    ASSERT_FALSE(trace.empty());
    const EngineSnapshot baseline = run_trace(s, trace, 0);
    EXPECT_GT(baseline.firings, 0u) << "trace must exercise the rules";
    for (size_t batch_size :
         {size_t{1}, size_t{7}, size_t{64}, trace.size()}) {
      expect_equal(run_trace(s, trace, batch_size), baseline,
                   s.id + " batch_size=" + std::to_string(batch_size));
    }
  }
}

}  // namespace
}  // namespace mp::scenario
