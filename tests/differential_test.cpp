// Differential equivalence harness: every scenario's controller program is
// driven at the engine level both tuple-at-a-time and through
// Engine::insert_batch at batch sizes {1, 7, 64, whole-trace}, and — since
// PR 4 — through the sharded runtime (runtime::ShardedEngine) at shard
// counts {1, 2, 4, 8}. The batched runs must reach the identical fixpoint:
// same final table states on every node, same event-log length, same
// derivation count and same rule-firing count. Sharded runs must reach the
// same fixpoint with the same event multiset; their canonical merged
// EventLog must carry the external stream in the exact serial order, so
// replaying it (backtest::replay_base_stream) reconstructs the serial
// engine bit-for-bit and the repair explorer's output is byte-identical.
// The tuple stream is the scenario's real workload (config tuples + the
// PacketIn encoding of every recorded injection), so this exercises each
// scenario's actual rules, joins and cross-node derivations — the safety
// net that later batching/sharding changes are tested against.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "backtest/replay.h"
#include "obs/obs.h"
#include "storage/segment_store.h"
#include "ndlog/parser.h"
#include "repair/forest.h"
#include "runtime/sharded_engine.h"
#include "scenarios/scenario.h"
#include "sdn/topology.h"
#include "test_util.h"

namespace mp::scenario {
namespace {

using testutil::event_multiset_hash;
using testutil::event_sequence_hash;
using testutil::table_multisets;

struct EngineSnapshot {
  std::map<std::string, std::multiset<std::string>> tables;
  size_t log_events = 0;
  size_t derivations = 0;
  size_t firings = 0;
  // FNV-1a over the (kind, tuple) event sequence: batched evaluation keeps
  // the per-tuple order, so even the exact log sequence must agree.
  uint64_t event_sequence_hash = 1469598103934665603ull;
};

void expect_equal(const EngineSnapshot& got, const EngineSnapshot& want,
                  const std::string& what) {
  EXPECT_EQ(got.firings, want.firings) << what;
  EXPECT_EQ(got.log_events, want.log_events) << what;
  EXPECT_EQ(got.derivations, want.derivations) << what;
  EXPECT_EQ(got.event_sequence_hash, want.event_sequence_hash) << what;
  ASSERT_EQ(got.tables.size(), want.tables.size()) << what;
  for (const auto& [table, rows] : want.tables) {
    auto it = got.tables.find(table);
    ASSERT_NE(it, got.tables.end()) << what << " table " << table;
    EXPECT_EQ(it->second, rows) << what << " table " << table;
  }
}

EngineSnapshot snapshot(const eval::Engine& engine) {
  EngineSnapshot snap;
  snap.tables = table_multisets(engine);
  snap.log_events = engine.log().size();
  snap.derivations = engine.log().derivations().size();
  snap.firings = engine.rule_firings();
  snap.event_sequence_hash = event_sequence_hash(engine.log());
  return snap;
}

using testutil::explore_all;

// batch_size 0 = tuple-at-a-time baseline.
EngineSnapshot run_trace(const Scenario& s,
                         const std::vector<eval::Tuple>& trace,
                         size_t batch_size, eval::EngineOptions opt = {}) {
  eval::Engine engine(s.program, opt);
  if (batch_size == 0) {
    for (const eval::Tuple& t : trace) engine.insert(t);
  } else {
    for (size_t i = 0; i < trace.size(); i += batch_size) {
      const size_t n = std::min(batch_size, trace.size() - i);
      engine.insert_batch(std::span<const eval::Tuple>(trace.data() + i, n));
    }
  }
  return snapshot(engine);
}

TEST(Differential, AllScenariosBatchedMatchesSequential) {
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 4000);
    ASSERT_GT(trace.size(), s.config_tuples.size());
    const EngineSnapshot baseline = run_trace(s, trace, 0);
    EXPECT_GT(baseline.firings, 0u) << "trace must exercise the rules";
    for (size_t batch_size :
         {size_t{1}, size_t{7}, size_t{64}, trace.size()}) {
      expect_equal(run_trace(s, trace, batch_size), baseline,
                   s.id + " batch_size=" + std::to_string(batch_size));
    }
  }
}

// Selection pushdown (join-time evaluation of bound selections) prunes
// candidate rows earlier but must not change anything observable: same
// fixpoint, same exact event sequence, same derivations, same repair
// output — against finish-only evaluation (pushdown_selections = false,
// the pre-pushdown engine).
TEST(Differential, SelectionPushdownMatchesFinishOnlyEvaluation) {
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 2500);

    eval::EngineOptions finish_only;
    finish_only.pushdown_selections = false;
    eval::Engine pushed(s.program);
    eval::Engine finish(s.program, finish_only);
    for (const eval::Tuple& t : trace) {
      pushed.insert(t);
      finish.insert(t);
    }
    const EngineSnapshot want = snapshot(pushed);
    expect_equal(want, snapshot(finish), s.id + " pushdown");
    EXPECT_EQ(explore_all(s, pushed), explore_all(s, finish))
        << "repair exploration must not observe the evaluation order";
    // Finish-only evaluation through the batched path agrees too
    // (pushdown x batching compose).
    expect_equal(run_trace(s, trace, 64, finish_only), want,
                 s.id + " pushdown-off batched");
  }
}

// Columnar batched firing (Engine::run_batch_lane) reorders the work of a
// same-table queue lane into store/match/emit phases; the observable
// behaviour must be byte-identical to tuple-at-a-time dispatch. Sweep:
// batch_firing {on (the default), off} x use_indexes {on, off} on every
// scenario, comparing the exact event sequence, firing/derivation counts,
// final tables, and the repair explorer's output. The lane counters prove
// the batched configurations actually exercised the columnar path — an
// equivalence test that silently fell back to scalar would pin nothing.
TEST(Differential, BatchFiringMatchesTupleAtATime) {
  size_t lanes_engaged = 0;
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 2500);

    for (bool indexes : {true, false}) {
      SCOPED_TRACE(indexes ? "indexes on" : "indexes off");
      eval::EngineOptions scalar_opt;
      scalar_opt.use_indexes = indexes;
      scalar_opt.batch_firing = false;
      eval::EngineOptions lane_opt;
      lane_opt.use_indexes = indexes;  // batch_firing stays default-on

      eval::Engine scalar(s.program, scalar_opt);
      eval::Engine lanes(s.program, lane_opt);
      for (const eval::Tuple& t : trace) {
        scalar.insert(t);
        lanes.insert(t);
      }
      EXPECT_EQ(scalar.batched_lanes(), 0u)
          << "batch_firing=false must never take the columnar path";
      lanes_engaged += lanes.batched_lanes();

      const EngineSnapshot want = snapshot(scalar);
      expect_equal(snapshot(lanes), want, s.id + " batch firing");
      EXPECT_EQ(explore_all(s, lanes), explore_all(s, scalar))
          << "repair exploration must not observe the firing strategy";
    }
    // Batched inserts funnel whole traces through one fixpoint drain —
    // the lane-friendliest entry point; it must agree with the scalar
    // tuple-at-a-time baseline too (batching x batch_firing compose).
    eval::EngineOptions scalar_opt;
    scalar_opt.batch_firing = false;
    expect_equal(run_trace(s, trace, 64), run_trace(s, trace, 0, scalar_opt),
                 s.id + " insert_batch with lanes vs scalar singles");
  }
  EXPECT_GT(lanes_engaged, 0u)
      << "no scenario formed a lane: the sweep never tested batch firing";
}

// The SoA mirror columns are a pure read-path acceleration: lane predicate
// evaluation reads contiguous per-column arrays instead of chasing
// slot -> Row indirections. Disabling them (soa_columns = false) must be
// observationally invisible on every scenario, through both the
// insert_batch entry lanes and the queue-drain lanes.
TEST(Differential, SoaColumnsOffMatchesDefaultOnAllScenarios) {
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 2500);

    eval::EngineOptions no_soa;
    no_soa.soa_columns = false;
    const EngineSnapshot want = run_trace(s, trace, 64);
    EXPECT_GT(want.firings, 0u);
    expect_equal(run_trace(s, trace, 64, no_soa), want, s.id + " SoA off");
    // Tuple-at-a-time still funnels cascades through queue lanes, whose
    // predicate path also reads the mirror — cover it without batching.
    expect_equal(run_trace(s, trace, 0, no_soa), run_trace(s, trace, 0),
                 s.id + " SoA off, tuple-at-a-time");
  }
}

// Observability is pure observation: turning the obs switch off
// (obs::set_enabled(false), which silences every publishing site — engine
// counter publication, storage/sharded instruments, latency histograms,
// span recording) must leave evaluation byte-identical. Same exact event
// sequence, same tables, same derivations, same repair output, on every
// scenario, through both the tuple-at-a-time and batched entry points.
TEST(Differential, ObsOffMatchesObsOnAllScenarios) {
  struct Restore {
    ~Restore() { obs::set_enabled(true); }
  } restore;
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 2500);

    obs::set_enabled(true);
    eval::Engine on(s.program);
    for (const eval::Tuple& t : trace) on.insert(t);
    const EngineSnapshot want = snapshot(on);
    EXPECT_GT(want.firings, 0u);
    const std::vector<std::string> want_repairs = explore_all(s, on);
    const EngineSnapshot want_batched = run_trace(s, trace, 64);

    obs::set_enabled(false);
    eval::Engine off(s.program);
    for (const eval::Tuple& t : trace) off.insert(t);
    expect_equal(snapshot(off), want, s.id + " obs off");
    EXPECT_EQ(explore_all(s, off), want_repairs)
        << "repair output must not observe the metrics switch";
    expect_equal(run_trace(s, trace, 64), want_batched,
                 s.id + " obs off batched");
    obs::set_enabled(true);
  }
}

// The ShardedEngine-vs-Engine equivalence sweep: identical final tables,
// equal event multisets (canonical hash), and a canonical merged log whose
// replay rebuilds the serial engine bit-for-bit — which makes the repair
// explorer's output byte-identical to the single-threaded engine's.
TEST(Differential, ShardedMatchesSerialOnAllScenarios) {
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 1200);

    eval::Engine serial(s.program);
    for (const eval::Tuple& t : trace) serial.insert(t);
    const EngineSnapshot want = snapshot(serial);
    const uint64_t want_canonical = event_multiset_hash(serial.log());
    const std::vector<std::string> want_repairs = explore_all(s, serial);
    EXPECT_FALSE(want_repairs.empty());

    for (uint32_t shards : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      runtime::ShardedEngine se(s.program, runtime::ShardPlan(shards));
      se.insert_batch(trace);
      EXPECT_FALSE(se.diverged());
      EXPECT_EQ(table_multisets(se), want.tables);
      EXPECT_EQ(se.rule_firings(), want.firings);

      const eval::EventLog merged = se.merged_log();
      EXPECT_EQ(merged.size(), want.log_events);
      EXPECT_EQ(merged.derivations().size(), want.derivations);
      EXPECT_EQ(event_multiset_hash(merged), want_canonical)
          << "sharded run must produce the serial event multiset";
      if (shards == 1) {
        EXPECT_EQ(event_sequence_hash(merged), want.event_sequence_hash)
            << "one shard must replay the serial schedule exactly";
      }

      // The canonical merge keeps the external stream in serial order, so
      // replaying it rebuilds the single-threaded engine exactly...
      eval::Engine rebuilt(s.program);
      const size_t applied = backtest::replay_base_stream(merged, rebuilt);
      EXPECT_GT(applied, 0u);
      expect_equal(snapshot(rebuilt), want,
                   s.id + " replay of merged log, shards=" +
                       std::to_string(shards));
      // ...and repair exploration on top of it is byte-identical.
      EXPECT_EQ(explore_all(s, rebuilt), want_repairs);
    }
  }
}

// Durable-segment round trip row (PR 7): the same auto-compacting run
// with its checkpoint sections spilled to segment files (src/storage)
// must be observably identical to the in-RAM checkpoint engine — same
// fixpoint, same full event sequence walked back through the mmap'd
// segments — and a reload from the segment files ALONE (fresh process:
// recovery scan + replay_base_stream over the store, no source EventLog)
// must rebuild the identical snapshot on every scenario.
TEST(Differential, SegmentReloadMatchesInRamCheckpointOnAllScenarios) {
  for (const Scenario& s : all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::vector<eval::Tuple> trace = engine_trace(s, 1200);

    eval::EngineOptions ram_opt;
    ram_opt.compact_after_events = 150;
    ram_opt.compact_keep_live = 40;
    const EngineSnapshot want = run_trace(s, trace, 64, ram_opt);
    EXPECT_GT(want.firings, 0u);

    const std::string dir =
        ::testing::TempDir() + "mp_differential_segments/" + s.id;
    std::filesystem::remove_all(dir);
    eval::EngineOptions seg_opt = ram_opt;
    seg_opt.segment_dir = dir;
    seg_opt.segment_store.rotate_bytes = 16 << 10;
    {
      eval::Engine engine(s.program, seg_opt);
      for (size_t i = 0; i < trace.size(); i += 64) {
        const size_t n = std::min<size_t>(64, trace.size() - i);
        engine.insert_batch(std::span<const eval::Tuple>(trace.data() + i, n));
      }
      ASSERT_NE(engine.segments(), nullptr);
      EXPECT_GT(engine.segments()->events(), 0u)
          << "auto-compaction never spilled: the row pins nothing";
      expect_equal(snapshot(engine), want, s.id + " spilled");
      engine.log().compact(0);  // seal the full history into the store
      EXPECT_EQ(testutil::event_sequence_hash(engine.log()),
                want.event_sequence_hash)
          << "fully-spilled log must still walk the identical sequence";
    }

    storage::SegmentStore store(dir);
    EXPECT_EQ(store.recovered_events(), want.log_events);
    eval::Engine rebuilt(s.program);
    const size_t applied = backtest::replay_base_stream(store, rebuilt);
    EXPECT_GT(applied, 0u);
    expect_equal(snapshot(rebuilt), want, s.id + " segment reload");
  }
}

// Adversarial cross-shard stream: a directed token ring whose nodes are
// explicitly placed round-robin across shards, so EVERY hop is a remote
// Send/Receive ping-ponging between shards. Last is keyed per
// (node, token): each revisit displaces the previous hop's row
// (cross-shard Underive/Disappear traffic), and the hub replica makes the
// displacement's support decrement cross shards as well.
TEST(Differential, CrossShardPingPongMatchesSerial) {
  // The shared token-ring fixture (testutil::ring_program / ring_trace)
  // at a deeper hop cap than the runtime suite's.
  const ndlog::Program program =
      ndlog::parse_program(testutil::ring_program(32));
  const int64_t nodes = 6;
  const std::vector<eval::Tuple> trace = testutil::ring_trace(nodes, 8);

  eval::Engine serial(program);
  for (const eval::Tuple& t : trace) serial.insert(t);
  const EngineSnapshot want = snapshot(serial);
  const uint64_t want_canonical = event_multiset_hash(serial.log());
  EXPECT_GT(want.firings, 100u);

  for (uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    runtime::ShardPlan plan(shards);
    // Ring neighbours always live on different shards (and the hub on its
    // own): every hop of every token is a cross-shard message.
    for (int64_t n = 1; n <= nodes; ++n) {
      plan.place(Value(n), static_cast<uint32_t>(n) % shards);
    }
    plan.place(Value(100), shards - 1);
    runtime::ShardedEngine se(program, plan);
    se.insert_batch(trace);
    EXPECT_FALSE(se.diverged());
    EXPECT_GT(se.messages_shipped(), 0u);
    EXPECT_EQ(table_multisets(se), want.tables);
    EXPECT_EQ(se.rule_firings(), want.firings);
    const eval::EventLog merged = se.merged_log();
    EXPECT_EQ(event_multiset_hash(merged), want_canonical);

    eval::Engine rebuilt(program);
    backtest::replay_base_stream(merged, rebuilt);
    expect_equal(snapshot(rebuilt), want,
                 "ping-pong replay, shards=" + std::to_string(shards));
  }
}

}  // namespace
}  // namespace mp::scenario
