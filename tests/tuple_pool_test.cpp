// TuplePool unit coverage (the interned-tuple provenance fast path):
//   - intern/find dedup semantics and precomputed hashes,
//   - handle stability: refs (and the Rows they resolve to) survive pool
//     growth and EventLog compaction (the pool is never truncated),
//   - cross-shard handle remap: ShardedEngine::merged_log re-interns every
//     shard-local handle into the merged log's private pool, so handle
//     round trips (materialize -> find_ref) are identities there,
//   - interning-on/off cross-check: replaying a log's materialized events
//     through the legacy string-based append into a standalone EventLog
//     (its own catalog + pool) reproduces the exact event sequence on all
//     five scenarios — the handle representation is observationally
//     equivalent to the string representation it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "eval/engine.h"
#include "eval/tuple_pool.h"
#include "ndlog/parser.h"
#include "runtime/sharded_engine.h"
#include "scenarios/scenario.h"
#include "sdn/topology.h"
#include "test_util.h"

namespace mp::eval {
namespace {

TEST(TuplePool, InternDedupsAndFindsWithoutInserting) {
  TuplePool pool;
  const Row r1 = {Value(1), Value(2)};
  const Row r2 = {Value(1), Value::str("x")};
  const TupleRef a = pool.intern(0, r1);
  const TupleRef b = pool.intern(0, r2);
  const TupleRef c = pool.intern(1, r1);  // same row, different table
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.intern(0, r1), a) << "re-intern must dedup to the handle";
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.find(0, r1), a);
  EXPECT_EQ(pool.find(0, {Value(9)}), kNoTupleRef);
  EXPECT_EQ(pool.size(), 3u) << "find must not insert";
  EXPECT_EQ(pool.table(a), 0u);
  EXPECT_EQ(pool.row(b), r2);
  EXPECT_EQ(pool.hash(a), pool.hash(pool.intern(0, r1)));
}

TEST(TuplePool, HandlesAndRowsStableAcrossGrowth) {
  TuplePool pool;
  const TupleRef first = pool.intern(0, {Value(-1), Value(-2)});
  const Row* first_row = &pool.row(first);
  for (int64_t i = 0; i < 20000; ++i) {
    pool.intern(0, {Value(i), Value(i * 3)});
  }
  // The dedup index rehashed many times; slots must not have moved.
  EXPECT_EQ(&pool.row(first), first_row);
  EXPECT_EQ(pool.row(first)[0], Value(-1));
  EXPECT_EQ(pool.find(0, {Value(-1), Value(-2)}), first);
}

TEST(TuplePool, HandlesSurviveEventLogCompaction) {
  const scenario::Scenario s = scenario::q1_copy_paste({});
  Engine e(s.program);
  e.insert_batch(scenario::engine_trace(s, 600));
  ASSERT_GT(e.log().size(), 100u);

  // Snapshot every live event's handle resolution before compacting.
  std::vector<std::string> before;
  for (const Event& ev : e.log().events()) {
    before.push_back(e.log().tuple_of(ev).to_string());
  }
  const size_t pool_size = e.log().pool().size();
  const uint64_t want_hash = testutil::event_sequence_hash(e.log());

  e.log().compact(e.log().live_size() / 4);
  EXPECT_EQ(e.log().pool().size(), pool_size)
      << "compaction must never truncate the pool";
  // History handles recorded before compaction still resolve.
  for (ndlog::Catalog::TableId id = 0; id < e.catalog().size(); ++id) {
    for (TupleRef ref : e.history().rows(id)) {
      EXPECT_EQ(e.log().table_of(ref), id);
      EXPECT_FALSE(e.log().materialize(ref).to_string().empty());
    }
  }
  // Decoded checkpoint entries resolve to the same tuples as the live
  // events they replaced.
  std::vector<std::string> after;
  e.log().for_each_event([&](const Event& ev) {
    after.push_back(e.log().tuple_of(ev).to_string());
  });
  EXPECT_EQ(after, before);
  EXPECT_EQ(testutil::event_sequence_hash(e.log()), want_hash);
}

TEST(TuplePool, MergedLogRemapsHandlesAcrossShardPools) {
  const ndlog::Program program =
      ndlog::parse_program(testutil::ring_program(16));
  runtime::ShardedEngine se(program, runtime::ShardPlan(4));
  se.insert_batch(testutil::ring_trace(6, 4));
  ASSERT_FALSE(se.diverged());
  const EventLog merged = se.merged_log();
  ASSERT_GT(merged.size(), 0u);

  // Every merged handle is a member of the merged pool (round-trip
  // identity), even though it originated in one of four disjoint pools.
  merged.for_each_event([&](const Event& ev) {
    ASSERT_NE(ev.tuple, kNoTupleRef);
    EXPECT_EQ(merged.find_ref(merged.tuple_of(ev)), ev.tuple);
  });
  for (const DerivRecord& rec : merged.derivations()) {
    EXPECT_EQ(merged.find_ref(merged.head_of(rec)), rec.head);
    for (TupleRef b : merged.body_of(rec)) {
      EXPECT_NE(b, kNoTupleRef);
      EXPECT_EQ(merged.find_ref(merged.materialize(b)), b);
    }
  }
  // The merged pool holds at most the union of distinct shard tuples.
  size_t shard_total = 0;
  for (size_t sh = 0; sh < se.shards(); ++sh) {
    shard_total += se.shard(sh).log().pool().size();
  }
  EXPECT_LE(merged.pool().size(), shard_total);
}

// Interning-on/off cross-check: rebuild each scenario log through the
// legacy string-materializing append (a standalone EventLog with its own
// catalog and pool, i.e. "interning off" from the producer's point of
// view) and require the exact event sequence, causal links and rule names
// to survive the round trip.
TEST(TuplePool, StringRoundTripReproducesEventSequenceOnAllScenarios) {
  for (const scenario::Scenario& s : scenario::all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    Engine e(s.program);
    e.insert_batch(scenario::engine_trace(s, 1200));
    ASSERT_GT(e.log().size(), 0u);

    EventLog rebuilt;
    e.log().for_each_event([&](const Event& ev) {
      const auto causes = e.log().causes_of(ev);
      rebuilt.append(ev.kind, e.log().node_value(ev.node),
                     e.log().tuple_of(ev), ev.tags,
                     {causes.begin(), causes.end()},
                     e.log().rule_name(ev.rule));
    });
    ASSERT_EQ(rebuilt.size(), e.log().size());
    EXPECT_EQ(testutil::event_sequence_hash(rebuilt),
              testutil::event_sequence_hash(e.log()));
    for (size_t i = 0; i < rebuilt.size(); ++i) {
      const Event& a = e.log().event(i);
      const Event& b = rebuilt.event(i);
      ASSERT_EQ(e.log().to_string(a), rebuilt.to_string(b)) << "event " << i;
      const auto ca = e.log().causes_of(a);
      const auto cb = rebuilt.causes_of(b);
      ASSERT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()))
          << "event " << i;
    }
  }
}

}  // namespace
}  // namespace mp::eval
