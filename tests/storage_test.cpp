// Durable segment-store coverage (src/storage):
//   - standalone round trip: segments written through the engine's
//     checkpoint spill decode byte-identically (full to_string format,
//     causes included) with no engine, catalog or pool attached,
//   - kill-at-every-byte crash sweep: the newest segment is truncated at
//     each byte offset, recovery must come back with exactly the durable
//     prefix (monotone in the cut point, line-identical to the reference
//     sequence, tables matching a replay of that prefix's base stream),
//   - recovery continuation: recover -> replay -> set_spill -> keep
//     appending equals one uninterrupted engine,
//   - store mechanics: rotation at section boundaries, group-commit
//     buffering, fsync policy knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "backtest/replay.h"
#include "eval/engine.h"
#include "ndlog/parser.h"
#include "scenarios/scenario.h"
#include "storage/segment.h"
#include "storage/segment_store.h"
#include "test_util.h"

namespace mp::storage {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mp_storage/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Canonical event line: the EventLog's exact to_string format plus the
// cause list, so the comparison pins ids, node values, rows, rule names
// AND causal links.
std::string log_line(const eval::EventLog& log, const eval::Event& ev) {
  std::string out = log.to_string(ev);
  for (eval::EventId c : log.causes_of(ev)) out += " <" + std::to_string(c) + ">";
  return out;
}

// The same line rebuilt from a standalone RawEvent — no log involved.
std::string raw_line(const eval::RawEvent& re) {
  std::string out = eval::to_string(re.kind);
  out += "(t=" + std::to_string(re.id + 1) + ", @" + re.node->to_string() +
         ", " + eval::Tuple{std::string(re.table), *re.row}.to_string();
  if (!re.rule.empty()) out += ", rule=" + std::string(re.rule);
  out += ")";
  for (eval::EventId c : re.causes) out += " <" + std::to_string(c) + ">";
  return out;
}

std::vector<std::string> log_lines(const eval::EventLog& log) {
  std::vector<std::string> out;
  log.for_each_event(
      [&](const eval::Event& ev) { out.push_back(log_line(log, ev)); });
  return out;
}

std::vector<std::string> store_lines(const SegmentStore& store) {
  std::vector<std::string> out;
  store.replay_raw([&](const eval::RawEvent& re) {
    out.push_back(raw_line(re));
    return true;
  });
  return out;
}

// Inserts a scenario trace in chunks, compacting after each so the store
// accumulates several self-contained sections.
void run_with_sections(eval::Engine& e, const std::vector<eval::Tuple>& trace,
                       size_t chunk) {
  for (size_t i = 0; i < trace.size(); i += chunk) {
    const size_t n = std::min(chunk, trace.size() - i);
    e.insert_batch(std::span<const eval::Tuple>(trace.data() + i, n));
    e.log().compact(0);
  }
}

TEST(SegmentStore, StandaloneReaderDecodesByteIdenticalSequence) {
  for (const scenario::Scenario& s : scenario::all_scenarios()) {
    SCOPED_TRACE("scenario " + s.id);
    const std::string dir = fresh_dir("roundtrip_" + s.id);
    const std::vector<eval::Tuple> trace = scenario::engine_trace(s, 400);

    // Reference: an identical engine with no storage attached.
    eval::Engine plain(s.program);
    plain.insert_batch(trace);
    const std::vector<std::string> want = log_lines(plain.log());
    ASSERT_GT(want.size(), 50u);

    eval::EngineOptions opt;
    opt.segment_dir = dir;
    opt.segment_store.rotate_bytes = 8 << 10;  // several segments
    {
      eval::Engine e(s.program, opt);
      run_with_sections(e, trace, trace.size() / 7 + 1);
      ASSERT_EQ(e.log().live_size(), 0u);
      ASSERT_EQ(e.log().size(), want.size());
      // Spill replay through the log agrees with the in-RAM reference.
      EXPECT_EQ(log_lines(e.log()), want);
      ASSERT_GT(e.segments()->segment_count(), 1u)
          << "rotation never triggered: sweep is single-segment";
      // byte_estimate() is exact for a fully-spilled log: every byte is
      // on disk (or queued in the group buffer) and accounted.
      EXPECT_EQ(e.log().byte_estimate(), e.segments()->bytes());
    }  // engine gone: nothing live remains

    // Standalone decode: a fresh store over the directory, no engine, no
    // catalog, no pool. Byte-identical event sequence is the acceptance
    // criterion for the self-contained format.
    SegmentStore store(dir);
    EXPECT_EQ(store.recovered_events(), want.size());
    EXPECT_EQ(store.dropped_bytes(), 0u);
    EXPECT_EQ(store_lines(store), want);

    // And per-file: each segment decodes on its own (sections are
    // self-contained, so a reader never needs a previous segment).
    size_t total = 0;
    for (size_t i = 0; i < store.segment_count(); ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "seg-%06zu.mpseg", i);
      SegmentReader r(dir + "/" + name);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.first_id(), total);
      total += r.events();
    }
    EXPECT_EQ(total, want.size());
  }
}

TEST(SegmentStore, ReplayBaseStreamRebuildsTablesWithoutAnEventLog) {
  const scenario::Scenario s = scenario::all_scenarios().front();
  const std::string dir = fresh_dir("replay_base");
  const std::vector<eval::Tuple> trace = scenario::engine_trace(s, 400);

  eval::Engine plain(s.program);
  plain.insert_batch(trace);

  eval::EngineOptions opt;
  opt.segment_dir = dir;
  {
    eval::Engine e(s.program, opt);
    run_with_sections(e, trace, 64);
  }

  // The mmap-backed replay path: SegmentStore -> fresh engine, no source
  // EventLog materialized anywhere.
  SegmentStore store(dir);
  eval::Engine rebuilt(s.program);
  const size_t applied = backtest::replay_base_stream(store, rebuilt);
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(testutil::table_multisets(rebuilt), testutil::table_multisets(plain));
  EXPECT_EQ(testutil::event_sequence_hash(rebuilt.log()),
            testutil::event_sequence_hash(plain.log()));
}

// --- crash recovery -----------------------------------------------------

struct BaseEv {
  size_t event_idx;  // position in the full event sequence
  bool insert;
  eval::Tuple tuple;
  eval::TagMask tags;
};

std::vector<BaseEv> base_stream(const eval::EventLog& log) {
  std::vector<BaseEv> out;
  size_t idx = 0;
  log.for_each_event([&](const eval::Event& ev) {
    if (ev.kind == eval::EventKind::Insert) {
      out.push_back(BaseEv{idx, true, log.tuple_of(ev), ev.tags});
    } else if (ev.kind == eval::EventKind::Delete) {
      out.push_back(BaseEv{idx, false, log.tuple_of(ev), ev.tags});
    }
    ++idx;
  });
  return out;
}

// Tables after applying the base events that fall inside the first
// `prefix` events of the recorded sequence.
std::map<std::string, std::multiset<std::string>> tables_at_prefix(
    const scenario::Scenario& s, const std::vector<BaseEv>& base,
    size_t prefix) {
  eval::Engine e(s.program);
  for (const BaseEv& b : base) {
    if (b.event_idx >= prefix) break;
    if (b.insert) {
      e.insert(b.tuple, b.tags);
    } else {
      e.remove(b.tuple);
    }
  }
  return testutil::table_multisets(e);
}

// Kill-at-every-byte sweep: the reference run writes several segments;
// the newest one is then truncated at every byte offset, and recovery
// over the mutilated directory must yield exactly the durable prefix —
// never garbage, never a crash, monotonically more events as the cut
// moves right. MP_CRASH_SWEEP=all (tools/check.sh CHECK_CRASH=1) sweeps
// every scenario at every offset; the default sweeps the first scenario
// exhaustively and strides through the rest.
TEST(SegmentStore, CrashRecoverySweepRecoversDurablePrefixAtEveryOffset) {
  const char* mode = std::getenv("MP_CRASH_SWEEP");
  const bool exhaustive_all = mode != nullptr && std::string(mode) == "all";
  const auto scenarios = scenario::all_scenarios();
  for (size_t si = 0; si < scenarios.size(); ++si) {
    const scenario::Scenario& s = scenarios[si];
    SCOPED_TRACE("scenario " + s.id);
    const size_t stride = (exhaustive_all || si == 0) ? 1 : 7;
    const std::string dir = fresh_dir("crash_" + s.id);
    const std::vector<eval::Tuple> trace = scenario::engine_trace(s, 120);

    eval::Engine plain(s.program);
    plain.insert_batch(trace);
    const std::vector<std::string> ref_lines = log_lines(plain.log());
    const std::vector<BaseEv> base = base_stream(plain.log());

    eval::EngineOptions opt;
    opt.segment_dir = dir;
    opt.segment_store.rotate_bytes = 12 << 10;
    {
      eval::Engine e(s.program, opt);
      run_with_sections(e, trace, 16);
      e.segments()->flush(true);
    }

    // Newest segment + a pristine copy of its bytes. Earlier (sealed)
    // segments are untouched by a crash — group commit writes strictly
    // sequentially — so the per-cut work validates the newest file; full
    // directory recovery (SegmentStore, which also exercises the
    // truncate-to-valid-prefix path) runs at every section boundary.
    std::vector<std::string> seg_files;
    for (const auto& ent : fs::directory_iterator(dir)) {
      seg_files.push_back(ent.path().string());
    }
    std::sort(seg_files.begin(), seg_files.end());
    ASSERT_GT(seg_files.size(), 1u) << "sweep needs a multi-segment dir";
    const std::string newest = seg_files.back();
    std::vector<char> pristine;
    {
      std::ifstream in(newest, std::ios::binary);
      pristine.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(pristine.empty());
    const size_t sealed_events = [&] {
      SegmentReader r(newest);
      EXPECT_TRUE(r.ok());
      EXPECT_GT(r.events(), 0u);
      return static_cast<size_t>(r.first_id());
    }();

    // Every cut offset for the exhaustive sweep; a strided subset always
    // includes the full file so the final check is never skipped.
    std::vector<size_t> cuts;
    for (size_t cut = 0; cut < pristine.size(); cut += stride) {
      cuts.push_back(cut);
    }
    cuts.push_back(pristine.size());

    size_t prev_events = 0;
    size_t boundaries = 0;
    for (const size_t cut : cuts) {
      // Simulate the kill: the newest file holds only its first `cut`
      // bytes.
      {
        std::ofstream out(newest, std::ios::binary | std::ios::trunc);
        out.write(pristine.data(), static_cast<std::streamsize>(cut));
      }
      SegmentReader r(newest);
      const size_t k = r.ok() ? r.events() : 0;
      ASSERT_GE(k, prev_events) << "cut=" << cut
          << ": recovery went backwards as the tail grew";
      ASSERT_LE(sealed_events + k, ref_lines.size());
      size_t at = sealed_events;
      bool lines_ok = true;
      r.for_each([&](const eval::RawEvent& re) {
        lines_ok = lines_ok && raw_line(re) == ref_lines[at];
        ++at;
        return lines_ok;
      });
      ASSERT_TRUE(lines_ok) << "cut=" << cut
          << ": recovered event " << at - 1 << " diverges from the reference";
      ASSERT_EQ(at, sealed_events + k) << "cut=" << cut;
      if (k != prev_events) {
        // A new section became durable: full directory recovery, and a
        // replay of the recovered base stream must reproduce exactly the
        // prefix's tables.
        ++boundaries;
        SegmentStore store(dir, SegmentStoreOptions{});
        ASSERT_EQ(store.events(), sealed_events + k) << "cut=" << cut;
        eval::Engine rec(s.program);
        backtest::replay_base_stream(store, rec);
        EXPECT_EQ(testutil::table_multisets(rec),
                  tables_at_prefix(s, base, sealed_events + k))
            << "cut=" << cut;
      }
      prev_events = k;
    }
    EXPECT_GT(boundaries, 1u) << "sweep never crossed a section boundary";
    EXPECT_EQ(sealed_events + prev_events, ref_lines.size())
        << "the untruncated file must recover everything";
  }
}

TEST(SegmentStore, RecoveryContinuationMatchesUninterruptedRun) {
  const scenario::Scenario s = scenario::all_scenarios().front();
  const std::vector<eval::Tuple> trace = scenario::engine_trace(s, 300);
  const size_t split = trace.size() / 2;
  const std::span<const eval::Tuple> first(trace.data(), split);
  const std::span<const eval::Tuple> rest(trace.data() + split,
                                          trace.size() - split);

  // Reference: one uninterrupted engine over the whole trace.
  eval::Engine ref(s.program);
  ref.insert_batch(trace);

  // Crashing run: first half, fully compacted into segments, process dies.
  const std::string dir = fresh_dir("continue");
  eval::EngineOptions opt;
  opt.segment_dir = dir;
  {
    eval::Engine e(s.program, opt);
    run_with_sections(e, std::vector<eval::Tuple>(first.begin(), first.end()),
                      48);
  }

  // Recovery: recover the store, replay it into a fresh engine, attach it
  // as the spill (adopting the already-durable prefix), keep going.
  SegmentStore store(dir, SegmentStoreOptions{});
  ASSERT_GT(store.recovered_events(), 0u);
  eval::Engine cont(s.program);
  backtest::replay_base_stream(store, cont);
  ASSERT_EQ(cont.log().size(), store.events())
      << "replay must regenerate exactly the durable event range";
  cont.log().set_spill(&store);
  EXPECT_EQ(cont.log().base_id(), store.events())
      << "set_spill must adopt the durable prefix";
  EXPECT_EQ(cont.log().live_size(), 0u);
  cont.insert_batch(rest);
  cont.log().compact(0);

  EXPECT_EQ(testutil::table_multisets(cont), testutil::table_multisets(ref));
  EXPECT_EQ(cont.log().size(), ref.log().size());
  EXPECT_EQ(testutil::event_sequence_hash(cont.log()),
            testutil::event_sequence_hash(ref.log()));
  // The continued store holds the full history, standalone-decodable.
  EXPECT_EQ(store_lines(store), log_lines(ref.log()));
}

// --- cause-arena rebase generations -------------------------------------

// The 32-byte Event stores its cause run as an arena-relative u32 offset
// plus a 4-bit rebase generation; every compaction drops the dead arena
// prefix and re-stamps the live suffix under the next generation (wrapping
// mod 16). Compact often enough for the generation counter to wrap several
// times and the whole history — live suffix, RAM checkpoint, spilled
// segments — must still decode byte-identically, cause lists included.
TEST(SegmentStore, RebaseGenerationWrapRoundTrip) {
  const std::string dir = fresh_dir("rebase_wrap");
  SegmentStore store(dir, SegmentStoreOptions{});

  eval::EventLog ref;      // never compacted
  eval::EventLog log;      // RAM checkpoint, compacted every round
  eval::EventLog spilled;  // identical appends, sections spill to the store
  spilled.set_spill(&store);

  auto append_all = [&](eval::EventKind kind, const Value& node,
                        const eval::Tuple& tup, eval::TagMask tags,
                        const std::vector<eval::EventId>& causes,
                        const std::string& rule) {
    ref.append(kind, node, tup, tags, causes, rule);
    log.append(kind, node, tup, tags, causes, rule);
    spilled.append(kind, node, tup, tags, causes, rule);
  };

  // 40 rounds x one rebase per compact = the 4-bit generation wraps twice
  // and ends mid-cycle, so stale-generation offsets would mis-decode both
  // early and late in the run.
  constexpr size_t kRounds = 40;
  constexpr size_t kPerRound = 6;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t k = 0; k < kPerRound; ++k) {
      const auto n = static_cast<eval::EventId>(ref.size());
      std::vector<eval::EventId> causes;
      if (n >= 1) causes.push_back(n - 1);
      if (n >= 4) causes.push_back(n - 4);  // reaches into compacted ids
      const eval::Tuple tup{"T", {Value(1), Value(static_cast<int64_t>(n))}};
      const auto kind = k % 3 == 2 ? eval::EventKind::Derive
                                   : eval::EventKind::Insert;
      append_all(kind, Value(1), tup, eval::TagMask{n % 4},
                 kind == eval::EventKind::Derive ? causes
                                                 : std::vector<eval::EventId>{},
                 kind == eval::EventKind::Derive ? "rw" : std::string{});
    }
    log.compact(3);
    spilled.compact(3);
    ASSERT_EQ(log.base_id(), spilled.base_id());
    if (round % 8 == 7) {
      // Decode through the checkpoint + re-stamped live suffix mid-run,
      // not only after the final rebase.
      EXPECT_EQ(log_lines(log), log_lines(ref)) << "round " << round;
    }
  }
  ASSERT_GT(log.base_id(), 16u * kPerRound) << "generation never wrapped";
  EXPECT_EQ(log_lines(log), log_lines(ref));
  EXPECT_EQ(log_lines(spilled), log_lines(ref));

  // The serialized RAM checkpoint alone rebuilds the compacted prefix in a
  // fresh log (fresh interners: decode can't lean on shared ids).
  eval::EventLog fresh;
  fresh.load_checkpoint(log.checkpoint_entries(), log.checkpoint_names());
  ASSERT_EQ(fresh.size(), log.base_id());
  const std::vector<std::string> want = log_lines(ref);
  const std::vector<std::string> got = log_lines(fresh);
  ASSERT_LE(got.size(), want.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
      << "checkpoint decode diverged from the uncompacted reference";

  // Seal the rest into the store: the standalone segment decoder (fresh
  // process, no EventLog) walks the identical sequence.
  spilled.compact(0);
  store.flush(false);
  EXPECT_EQ(store_lines(store), want);
  SegmentStore reloaded(dir, SegmentStoreOptions{});
  EXPECT_EQ(reloaded.recovered_events(), want.size());
  EXPECT_EQ(store_lines(reloaded), want);
}

// --- store mechanics ----------------------------------------------------

eval::Engine make_toy(const std::string& dir, FsyncPolicy fsync,
                      size_t rotate, size_t group_buffer = 256u << 10) {
  eval::EngineOptions opt;
  opt.segment_dir = dir;
  opt.segment_store.fsync = fsync;
  opt.segment_store.rotate_bytes = rotate;
  opt.segment_store.group_buffer_bytes = group_buffer;
  return eval::Engine(ndlog::parse_program("table T/2.\n"), opt);
}

TEST(SegmentStore, RotatesAtSectionBoundariesOnly) {
  const std::string dir = fresh_dir("rotate");
  eval::Engine e = make_toy(dir, FsyncPolicy::kOnRotate, 2 << 10);
  for (int i = 0; i < 400; ++i) {
    e.insert(eval::Tuple{"T", {Value(i), Value(i * 2)}});
    if (i % 50 == 49) e.log().compact(0);
  }
  ASSERT_GT(e.segments()->segment_count(), 1u);
  e.segments()->flush(false);
  // Every segment but the newest is sealed past none of the rotation
  // threshold by more than one section, and each decodes standalone with
  // a contiguous id range.
  size_t total = 0;
  for (size_t i = 0; i < e.segments()->segment_count(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%06zu.mpseg", i);
    SegmentReader r(dir + "/" + name);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ(r.first_id(), total) << name;
    EXPECT_EQ(r.valid_bytes(), r.file_bytes()) << name;
    total += r.events();
  }
  EXPECT_EQ(total, e.log().base_id());
}

TEST(SegmentStore, GroupCommitBuffersUntilThresholdOrFsyncPolicy) {
  // kNever + huge buffer: sections stay in RAM until an explicit flush.
  const std::string buffered_dir = fresh_dir("buffered");
  {
    eval::Engine e = make_toy(buffered_dir, FsyncPolicy::kNever, 4u << 20,
                              4u << 20);
    for (int i = 0; i < 50; ++i) e.insert(eval::Tuple{"T", {Value(i), Value(i)}});
    e.log().compact(0);
    const size_t queued = e.segments()->bytes();
    ASSERT_GT(queued, 0u);
    EXPECT_LT(fs::file_size(buffered_dir + "/seg-000000.mpseg"), queued)
        << "group commit must be buffering, not writing through";
    e.segments()->flush(false);
    EXPECT_EQ(fs::file_size(buffered_dir + "/seg-000000.mpseg"), queued);
  }
  // kOnAppend: every section is on disk the moment append_section returns.
  const std::string synced_dir = fresh_dir("synced");
  eval::Engine e = make_toy(synced_dir, FsyncPolicy::kOnAppend, 4u << 20);
  for (int i = 0; i < 50; ++i) e.insert(eval::Tuple{"T", {Value(i), Value(i)}});
  e.log().compact(0);
  EXPECT_EQ(fs::file_size(synced_dir + "/seg-000000.mpseg"),
            e.segments()->bytes());
}

TEST(SegmentStore, RecoveryDropsUnreachableLaterSegments) {
  const std::string dir = fresh_dir("gap");
  {
    eval::Engine e = make_toy(dir, FsyncPolicy::kNever, 1 << 10);
    for (int i = 0; i < 300; ++i) {
      e.insert(eval::Tuple{"T", {Value(i), Value(i)}});
      if (i % 30 == 29) e.log().compact(0);
    }
    ASSERT_GT(e.segments()->segment_count(), 2u);
  }
  // Corrupt a middle segment's header: everything after it is an id gap
  // and must be dropped, not replayed out of order.
  {
    std::ofstream out(dir + "/seg-000001.mpseg",
                      std::ios::binary | std::ios::in);
    out.seekp(0);
    out.write("XXXXXX", 6);
  }
  SegmentStore store(dir, SegmentStoreOptions{});
  SegmentReader first(dir + "/seg-000000.mpseg");
  EXPECT_EQ(store.events(), first.events());
  EXPECT_EQ(store.segment_count(), 1u);
  EXPECT_GT(store.dropped_bytes(), 0u);
  EXPECT_FALSE(fs::exists(dir + "/seg-000001.mpseg"));
}

TEST(SegmentStore, UnusableDirectoryLatchesFailedAtAttach) {
  // A regular file squatting on the segment-dir path (the portable stand-
  // in for an unwritable parent — chmod is a no-op for root, which CI
  // runs as): create_directories cannot win, and the store must come up
  // as an inert failed() object instead of crashing or asserting.
  const std::string parent = fresh_dir("squat");
  const std::string path = parent + "/segs";
  { std::ofstream(path) << "not a directory"; }

  SegmentStore store(path, SegmentStoreOptions{});  // kDegrade default
  EXPECT_TRUE(store.failed());
  EXPECT_FALSE(store.status().ok());
  EXPECT_EQ(store.events(), 0u);
  // Inert but safe to poke: appends are rejected, replay yields nothing,
  // flush is a no-op.
  std::vector<uint8_t> none;
  EXPECT_FALSE(store.append_section(0, 0, none, none));
  size_t replayed = 0;
  store.replay_raw([&](const eval::RawEvent&) {
    ++replayed;
    return true;
  });
  EXPECT_EQ(replayed, 0u);
  store.flush(true);

  // kFailStop: the same condition surfaces as IoError from the ctor.
  SegmentStoreOptions strict;
  strict.on_error = ErrorPolicy::kFailStop;
  EXPECT_THROW(SegmentStore(path, strict), IoError);

  // An engine handed the unusable path degrades to RAM checkpoints and
  // keeps its full event sequence.
  eval::EngineOptions opt;
  opt.segment_dir = path;
  eval::Engine e(ndlog::parse_program("table T/2.\n"), opt);
  ASSERT_NE(e.segments(), nullptr);
  EXPECT_TRUE(e.segments()->failed());
  for (int i = 0; i < 20; ++i) e.insert(eval::Tuple{"T", {Value(i), Value(i)}});
  const size_t logged = e.log().size();
  ASSERT_GE(logged, 20u);
  e.log().compact(0);
  EXPECT_EQ(e.log().size(), logged);
  EXPECT_EQ(e.log().live_size(), 0u);
  size_t seen = 0;
  e.log().for_each_event([&](const eval::Event&) { ++seen; });
  EXPECT_EQ(seen, logged);
}

TEST(SegmentStore, SegmentDeletedUnderOpenReaderStaysReadable) {
  const std::string dir = fresh_dir("unlinked");
  {
    eval::Engine e = make_toy(dir, FsyncPolicy::kNever, 1 << 10);
    for (int i = 0; i < 300; ++i) {
      e.insert(eval::Tuple{"T", {Value(i), Value(i)}});
      if (i % 30 == 29) e.log().compact(0);
    }
    ASSERT_GT(e.segments()->segment_count(), 2u);
  }
  SegmentStore store(dir, SegmentStoreOptions{});
  const size_t total = store.events();
  SegmentReader first(dir + "/seg-000000.mpseg");
  ASSERT_TRUE(first.ok());
  const size_t first_events = first.events();
  ASSERT_LT(first_events, total);

  // Open a reader on the second segment, then delete its file. The mmap
  // keeps the pages alive (POSIX unlink semantics), so the open reader
  // decodes in full.
  SegmentReader open_reader(dir + "/seg-000001.mpseg");
  ASSERT_TRUE(open_reader.ok());
  fs::remove(dir + "/seg-000001.mpseg");
  size_t via_open = 0;
  open_reader.for_each([&](const eval::RawEvent&) {
    ++via_open;
    return true;
  });
  EXPECT_EQ(via_open, open_reader.events());

  // The store, on its next replay, must notice the hole and stop at the
  // contiguous prefix — never skip over it into later segments.
  size_t replayed = 0;
  eval::EventId last = 0;
  store.replay_raw([&](const eval::RawEvent& re) {
    last = re.id;
    ++replayed;
    return true;
  });
  EXPECT_EQ(replayed, first_events);
  if (replayed > 0) EXPECT_EQ(last, first_events - 1);
}

TEST(SegmentStore, ZeroLengthSegmentFileIsDroppedCleanly) {
  const std::string dir = fresh_dir("zerolen");
  {
    eval::Engine e = make_toy(dir, FsyncPolicy::kNever, 1 << 10);
    for (int i = 0; i < 120; ++i) {
      e.insert(eval::Tuple{"T", {Value(i), Value(i)}});
      if (i % 30 == 29) e.log().compact(0);
    }
    ASSERT_GT(e.segments()->segment_count(), 1u);
  }
  // A crash between open_new_segment's open() and the header flush leaves
  // a zero-length file at the next sequence number.
  const size_t durable = SegmentStore(dir, SegmentStoreOptions{}).events();
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06zu.mpseg",
                SegmentStore(dir, SegmentStoreOptions{}).segment_count());
  { std::ofstream(dir + "/" + name, std::ios::binary); }
  ASSERT_EQ(fs::file_size(dir + "/" + name), 0u);

  SegmentStore store(dir, SegmentStoreOptions{});
  EXPECT_FALSE(store.failed());
  EXPECT_EQ(store.events(), durable);
  EXPECT_FALSE(fs::exists(dir + "/" + name))
      << "recovery must remove the stillborn segment";
  // And the store resumes appending exactly where the prefix ends: the
  // continuation run equals an uninterrupted one (id continuity).
  size_t replayed = 0;
  store.replay_raw([&](const eval::RawEvent&) {
    ++replayed;
    return true;
  });
  EXPECT_EQ(replayed, durable);
}

}  // namespace
}  // namespace mp::storage
